package ursa_test

import (
	"testing"

	"ursa"
)

// TestCompilationDeterminism: compiling the same input twice must emit
// byte-identical programs — every heuristic in the allocator breaks ties
// deterministically, so results are reproducible across runs despite Go's
// randomized map iteration.
func TestCompilationDeterminism(t *testing.T) {
	k := ursa.KernelByName("fir8")
	m := ursa.VLIW(4, 6)
	render := func() string {
		f, err := ursa.ParseKernel(k.Source, 2)
		if err != nil {
			t.Fatal(err)
		}
		fp, _, err := ursa.CompileFunc(f, m, ursa.URSA)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, prog := range fp.Blocks {
			out += prog.String()
		}
		return out
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs from run 0:\n%s\nvs\n%s", i+1, got, first)
		}
	}
}

// TestAllPipelinesDeterministic extends the check to the baselines on the
// paper example.
func TestAllPipelinesDeterministic(t *testing.T) {
	m := ursa.VLIW(4, 4)
	for _, method := range ursa.Methods {
		render := func() string {
			f := ursa.PaperExample(true)
			prog, _, err := ursa.CompileBlock(f.Blocks[0], m, method)
			if err != nil {
				t.Fatalf("%s: %v", method, err)
			}
			return prog.String()
		}
		first := render()
		for i := 0; i < 3; i++ {
			if got := render(); got != first {
				t.Fatalf("%s: nondeterministic output", method)
			}
		}
	}
}
