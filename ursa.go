// Package ursa is the public API of this reproduction of
//
//	Berson, Gupta, Soffa: "URSA: A Unified ReSource Allocator for
//	Registers and Functional Units in VLIW Architectures" (1993).
//
// URSA replaces the classic register-allocation/instruction-scheduling
// phase ordering with unified resource allocation: it measures, on a
// dependence DAG, the maximum number of functional units and registers any
// schedule could demand (minimum chain decompositions of per-resource reuse
// partial orders — Dilworth's theorem realized by bipartite matching), then
// applies DAG transformations — functional-unit sequencing, register
// sequencing, and spilling — until the worst case fits the target machine,
// and only then assigns concrete resources and emits VLIW code.
//
// The package exposes the full pipeline plus the baselines the paper argues
// against (prepass scheduling, postpass scheduling after graph coloring,
// and register-sensitive integrated list scheduling), a parameterizable
// VLIW machine model and simulator, a small kernel language front end,
// Fisher-style trace scheduling, and the paper's software-pipelining
// extension. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// the reproduced results.
//
// Quickstart:
//
//	f := ursa.MustParseIR(src)             // three-address code
//	g, _ := ursa.BuildDAG(f.Blocks[0])     // dependence DAG
//	m := ursa.VLIW(2, 4)                   // 2 FUs, 4 registers per file
//	rep, _ := ursa.Allocate(g, m)          // URSA: measure + transform
//	prog, _ := ursa.Emit(g, m)             // assign + emit VLIW words
//	res, _ := ursa.Simulate(prog, init)    // run on the machine model
package ursa

import (
	"io"
	"time"

	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/modsched"
	"ursa/internal/opt"
	"ursa/internal/pipeline"
	"ursa/internal/reuse"
	"ursa/internal/sched"
	"ursa/internal/store"
	"ursa/internal/target"
	"ursa/internal/vliwsim"
	"ursa/internal/workload"
)

// Core types, aliased so callers work directly with the library's data
// structures.
type (
	// Machine describes a target VLIW configuration.
	Machine = machine.Config
	// Func is a function of three-address IR.
	Func = ir.Func
	// Block is a basic block.
	Block = ir.Block
	// Instr is one instruction.
	Instr = ir.Instr
	// State is an interpreter/simulator machine state.
	State = ir.State
	// Addr is a symbolic memory address.
	Addr = ir.Addr
	// Graph is a dependence DAG under allocation.
	Graph = dag.Graph
	// Program is emitted VLIW code.
	Program = assign.Program
	// FuncProgram is a whole compiled function (one Program per block).
	FuncProgram = pipeline.FuncProgram
	// Report describes a URSA allocation run.
	Report = core.Report
	// Stats reports a pipeline compilation/execution.
	Stats = pipeline.Stats
	// SimResult reports a simulation.
	SimResult = vliwsim.Result
	// Method selects a compilation pipeline.
	Method = pipeline.Method
	// Kernel is a named benchmark program.
	Kernel = workload.Kernel
	// AllocOptions tunes the URSA driver.
	AllocOptions = core.Options
	// Policy selects how register and FU transformations interleave.
	Policy = core.Policy
	// CompileOptions configures a pipeline run (optimization, URSA driver
	// tuning, and the worker count for per-block parallel compilation).
	CompileOptions = pipeline.Options
	// Job is one independent compilation work item for RunJobs.
	Job = pipeline.Job
	// JobResult carries one job's outputs.
	JobResult = pipeline.JobResult
	// ResultCache is the tiered compile-result cache (memory → disk →
	// peer) consulted by CompileFuncCached via CompileOptions.Results.
	ResultCache = store.TieredCache
	// CachedFunc is a compile that went through the result cache: the
	// serving tier, the (possibly cache-served) listings, and — when this
	// process compiled — the in-memory program.
	CachedFunc = pipeline.CachedFunc
)

// Compilation pipelines.
const (
	// URSA is the paper's unified allocator.
	URSA = pipeline.URSA
	// Prepass schedules first and patches spill code in afterwards.
	Prepass = pipeline.Prepass
	// Postpass colors registers first, then schedules around the reuse
	// dependences.
	Postpass = pipeline.Postpass
	// IntegratedList is register-pressure-sensitive list scheduling in the
	// style of Goodman & Hsu.
	IntegratedList = pipeline.IntegratedList
	// Exact runs the branch-and-bound optimal solver; it refuses blocks
	// over its node limit, so it is excluded from Methods sweeps and
	// listed only in AllMethods.
	Exact = pipeline.Exact
)

// Transformation-interleaving policies (paper §5).
const (
	// Integrated scores register and FU transformations together.
	Integrated = core.Integrated
	// RegistersFirst runs the register phase before the FU phase.
	RegistersFirst = core.RegistersFirst
	// FUsFirst runs the FU phase first (for ablations).
	FUsFirst = core.FUsFirst
)

// Methods lists all heuristic pipelines in presentation order.
var Methods = pipeline.Methods

// AllMethods additionally includes the node-count-guarded Exact lane.
var AllMethods = pipeline.AllMethods

// VLIW returns the paper's homogeneous machine model: width functional
// units, regs registers in each register file, unit latencies.
func VLIW(width, regs int) *Machine { return machine.VLIW(width, regs) }

// Heterogeneous returns a machine with per-class functional units.
func Heterogeneous(ialu, falu, mem, br, intRegs, fpRegs int) *Machine {
	return machine.Heterogeneous(ialu, falu, mem, br, intRegs, fpRegs)
}

// RealisticLatency is a multi-cycle latency model (mul 2, div 4, memory 2)
// assignable to Machine.Latency.
func RealisticLatency(op ir.Op) int { return machine.RealisticLatency(op) }

// Preset is a named machine configuration from the target catalog — the
// paper's evaluation range plus the clustered, wide-superscalar, and
// exposed-datapath families.
type Preset = target.Preset

// Presets lists the target catalog in presentation order.
func Presets() []Preset { return target.Presets() }

// PresetByName returns the named preset, or nil.
func PresetByName(name string) *Preset { return target.ByName(name) }

// ParseMachineSpec parses a JSON machine spec (the /v1/machines wire form)
// into a validated configuration.
func ParseMachineSpec(data []byte) (*Machine, error) { return machine.ParseSpec(data) }

// MarshalMachineSpec renders a configuration as canonical JSON, the
// inverse of ParseMachineSpec.
func MarshalMachineSpec(m *Machine) ([]byte, error) { return machine.MarshalSpec(m) }

// ParseIR parses textual three-address IR (see internal/ir's format).
func ParseIR(src string) (*Func, error) { return ir.Parse(src) }

// MustParseIR is ParseIR that panics on error.
func MustParseIR(src string) *Func { return ir.MustParse(src) }

// ParseKernel compiles a kernel-language program (see internal/frontend)
// to IR, unrolling constant-trip `for` loops by the given factor (0 or 1
// disables unrolling).
func ParseKernel(src string, unroll int) (*Func, error) {
	u, err := frontend.Compile(src, frontend.Options{Unroll: unroll})
	if err != nil {
		return nil, err
	}
	return u.Func, nil
}

// NewState returns an empty machine state for interpretation or simulation.
func NewState() *State { return ir.NewState() }

// BuildDAG constructs the dependence DAG of a straight-line
// single-assignment block.
func BuildDAG(b *Block) (*Graph, error) { return dag.Build(b) }

// Allocate runs URSA's unified allocation on the DAG (mutating it) against
// the machine, with default options.
func Allocate(g *Graph, m *Machine) (*Report, error) {
	return core.Run(g, core.Options{Machine: m})
}

// AllocateOpts runs URSA with explicit options (policy, trace writer,
// transformation restrictions). The Machine field of opts is overridden.
func AllocateOpts(g *Graph, m *Machine, opts AllocOptions) (*Report, error) {
	opts.Machine = m
	return core.Run(g, opts)
}

// Requirements measures the DAG's current worst-case demand for every
// resource of the machine (paper §3), without transforming anything.
func Requirements(g *Graph, m *Machine) map[string]int {
	out := map[string]int{}
	for _, r := range core.Resources(g, m) {
		out[r.Name] = measure.Measure(r.Build(g)).Width
	}
	return out
}

// FURequirement measures the DAG's worst-case demand for homogeneous
// functional units.
func FURequirement(g *Graph) int {
	return measure.Measure(reuse.FU(g, reuse.AllFUs)).Width
}

// RegRequirement measures the DAG's worst-case demand for integer
// registers.
func RegRequirement(g *Graph) int {
	return measure.Measure(reuse.Reg(g, ir.ClassInt)).Width
}

// Emit schedules the (transformed) DAG and assigns physical registers,
// returning executable VLIW code. If the schedule's pressure exceeds the
// machine (URSA left residual excess, or Allocate was skipped), spill code
// is patched in.
func Emit(g *Graph, m *Machine) (*Program, error) {
	prog, _, err := assign.Emit(g, m, sched.Options{})
	return prog, err
}

// Simulate executes a program on the machine model from a copy of init.
func Simulate(p *Program, init *State) (*SimResult, error) {
	return vliwsim.Run(p, init)
}

// CompileBlock runs one complete pipeline (URSA or a baseline) on a block.
func CompileBlock(b *Block, m *Machine, method Method) (*Program, *Stats, error) {
	return pipeline.Compile(b, m, method, pipeline.Options{})
}

// EvaluateBlock compiles a block, executes it, verifies the result against
// the sequential interpreter, and returns statistics.
func EvaluateBlock(b *Block, m *Machine, method Method, init *State) (*Stats, error) {
	return pipeline.Evaluate(b, m, method, init, pipeline.Options{})
}

// CompileFunc compiles every block of a function through the pipeline.
func CompileFunc(f *Func, m *Machine, method Method) (*FuncProgram, *Stats, error) {
	return pipeline.CompileFunc(f, m, method, pipeline.Options{})
}

// CompileFuncOpts is CompileFunc with explicit options. Setting
// opts.Workers compiles the function's blocks concurrently; the emitted
// program is identical at every worker count.
func CompileFuncOpts(f *Func, m *Machine, method Method, opts CompileOptions) (*FuncProgram, *Stats, error) {
	return pipeline.CompileFunc(f, m, method, opts)
}

// CacheConfig assembles a tiered compile-result cache for
// OpenResultCacheConfig. The zero value is a memory-only cache with the
// default budget.
type CacheConfig struct {
	// Dir, when non-empty, adds a persistent content-addressed disk tier
	// under that directory.
	Dir string
	// MemBudget bounds the memory tier in bytes (<= 0: 64 MiB).
	MemBudget int64
	// DiskBudget bounds the disk tier in bytes (<= 0: 1 GiB).
	DiskBudget int64
	// PeerURL, when non-empty, adds a remote ursad peer tier
	// ("http://host:8347") consulted on local misses.
	PeerURL string
	// PeerTimeout bounds one peer round-trip (<= 0:
	// store.DefaultPeerTimeout, 2s). Raise it for high-latency links,
	// lower it when a local recompile is cheaper than a slow peer.
	PeerTimeout time.Duration
}

// OpenResultCacheConfig assembles a tiered compile-result cache
// (memory → disk → peer) from cfg. Set the result on
// CompileOptions.Results and compile with CompileFuncCached; see
// docs/CACHE.md.
func OpenResultCacheConfig(cfg CacheConfig) (*ResultCache, error) {
	var disk *store.Store
	if cfg.Dir != "" {
		var err error
		if disk, err = store.Open(cfg.Dir, cfg.DiskBudget); err != nil {
			return nil, err
		}
	}
	var peer *store.PeerClient
	if cfg.PeerURL != "" {
		var err error
		if peer, err = store.NewPeer(cfg.PeerURL, cfg.PeerTimeout); err != nil {
			return nil, err
		}
	}
	return store.NewTiered(cfg.MemBudget, disk, peer), nil
}

// OpenResultCache is OpenResultCacheConfig with positional arguments and
// the default peer timeout, kept for existing callers.
func OpenResultCache(dir string, memBudget, diskBudget int64, peerURL string) (*ResultCache, error) {
	return OpenResultCacheConfig(CacheConfig{
		Dir: dir, MemBudget: memBudget, DiskBudget: diskBudget, PeerURL: peerURL,
	})
}

// CompileFuncCached is CompileFuncOpts behind the tiered result cache in
// opts.Results: a warm key returns the previously emitted listings and
// statistics (byte-identical to the cold compile) without running the
// allocator. The returned CachedFunc names the serving tier; its Prog
// field is non-nil only when this process actually compiled.
func CompileFuncCached(f *Func, m *Machine, method Method, opts CompileOptions) (*CachedFunc, *Stats, error) {
	return pipeline.CompileFuncCached(f, m, method, opts)
}

// RunJobs compiles (and, for jobs with an Init state, executes and
// verifies) a batch of independent function × method jobs across the given
// number of workers (0 or negative: GOMAXPROCS; 1: inline). Results arrive
// in submission order regardless of the worker count; the batch is
// fail-fast, and a panic in one job is captured as that job's error.
func RunJobs(jobs []Job, workers int) ([]JobResult, error) {
	return pipeline.RunJobs(jobs, workers)
}

// EvaluateFunc compiles and runs a whole function, verifying its memory
// effects against the interpreter. maxCycles bounds execution.
func EvaluateFunc(f *Func, m *Machine, method Method, init *State, maxCycles int) (*Stats, error) {
	return pipeline.EvaluateFunc(f, m, method, init, maxCycles, pipeline.Options{})
}

// Loop pipelining (iterative modulo scheduling driven by URSA's kernel
// measurement; see docs/LOOPS.md).
type (
	// LoopResult is the outcome of software-pipelining a function: the
	// transformed IR plus one LoopReport per pipelined loop.
	LoopResult = modsched.Result
	// LoopReport describes one pipelined loop — achieved initiation
	// interval against the resMII/recMII lower bounds, the modulo
	// variable expansion unroll factor, and kernel size.
	LoopReport = modsched.LoopReport
	// LoopOptions tunes the II and unroll search.
	LoopOptions = modsched.Options
)

// ErrNoLoop reports that a function contains no canonical counted loop the
// modulo scheduler can pipeline.
var ErrNoLoop = modsched.ErrNoLoop

// PipelineLoops software-pipelines every canonical counted loop in f for
// machine m: it computes MII = max(resMII, recMII) from the loop-carried
// dependence graph, searches upward for the smallest initiation interval
// with a feasible modulo schedule, picks a modulo-variable-expansion unroll
// whose flattened kernel URSA can allocate spill-free, and emits
// guard/kernel/remainder blocks as ordinary IR. The input is not mutated.
func PipelineLoops(f *Func, m *Machine) (*LoopResult, error) {
	return modsched.Pipeline(f, m, modsched.Options{})
}

// CompileLoopFunc software-pipelines f's loops (PipelineLoops) and then
// compiles the transformed function with the requested method, returning
// the per-loop reports alongside the program.
func CompileLoopFunc(f *Func, m *Machine, method Method, opts CompileOptions) (*FuncProgram, *Stats, *LoopResult, error) {
	return pipeline.CompileLoopFunc(f, m, method, opts)
}

// CompileLoopFuncCached is CompileLoopFunc behind the tiered result cache
// in opts.Results, under a cache key domain-separated from the straight
// compile's so the two artifact families never collide.
func CompileLoopFuncCached(f *Func, m *Machine, method Method, opts CompileOptions) (*CachedFunc, *Stats, *LoopResult, error) {
	return pipeline.CompileLoopCached(f, m, method, opts)
}

// OptStats counts the rewrites Optimize performed.
type OptStats = opt.Stats

// Optimize runs the block-local scalar optimizations (constant folding,
// copy propagation, CSE, dead code elimination) on every block of the
// function, in place, and returns the rewrite counts. Semantics are
// preserved exactly.
func Optimize(f *Func) OptStats { return opt.Func(f) }

// Kernels returns the built-in benchmark suite.
func Kernels() []*Kernel { return workload.Kernels() }

// KernelByName returns a built-in kernel, or nil.
func KernelByName(name string) *Kernel { return workload.KernelByName(name) }

// PaperExample returns the paper's Figure 2 block (store=true appends the
// consuming store), and PaperInit its canonical input.
func PaperExample(store bool) *Func { return workload.PaperExample(store) }

// PaperInit returns the canonical input state for PaperExample.
func PaperInit() *State { return workload.PaperInit() }

// Dot renders a DAG in Graphviz format.
func Dot(g *Graph, title string) string { return g.Dot(title) }

// ReuseDotFU renders the functional-unit Reuse DAG (paper §3, Def. 4).
func ReuseDotFU(g *Graph, title string) string {
	return reuse.FU(g, reuse.AllFUs).Dot(title)
}

// ReuseDotReg renders the integer-register Reuse DAG with each value's
// selected kill (paper §3.2).
func ReuseDotReg(g *Graph, title string) string {
	return reuse.Reg(g, ir.ClassInt).Dot(title)
}

// TraceWriter is accepted by AllocOptions.Trace.
type TraceWriter = io.Writer
