; The paper's Figure 2 example in textual IR.
func paper {
entry:
	v = load V[0]       ; A
	w = muli v, 2       ; B
	x = muli v, 3       ; C
	y = addi v, 5       ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = muli y, 2      ; G
	t4 = divi y, 3      ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
	store Z[0], z
}
