// Quickstart: compile the paper's Figure 2 example with URSA onto a small
// VLIW and watch every phase: measurement, reduction, assignment, and
// simulation. This is the worked example of the README.
package main

import (
	"fmt"
	"log"
	"os"

	"ursa"
)

func main() {
	// The block of Figure 2: eleven instructions, constants folded into
	// immediates, the final value consumed by a store.
	f := ursa.PaperExample(true)
	fmt.Println("input program:")
	fmt.Print(f.String())

	// Build the dependence DAG and measure its worst-case demands: no
	// schedule can need more than these, and some schedule needs exactly
	// this much (Dilworth's theorem on the reuse partial orders).
	g, err := ursa.BuildDAG(f.Blocks[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst-case requirements: %d functional units, %d registers\n",
		ursa.FURequirement(g), ursa.RegRequirement(g))

	// Target the machine of Figure 3(d): 2 functional units, 3 registers.
	m := ursa.VLIW(2, 3)
	fmt.Printf("target machine: %s\n\n", m)

	// Phase 1+2: measurement and reduction, with the transformation trace.
	rep, err := ursa.AllocateOpts(g, m, ursa.AllocOptions{Trace: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallocation: fits=%v after %d transformations (%d spills)\n",
		rep.Fits, rep.Iterations, rep.SpillsInserted)
	for _, a := range rep.Applied {
		fmt.Printf("  applied %-8s %-40s excess %d -> %d\n", a.Kind, a.Note, a.ExcessBefore, a.ExcessAfter)
	}

	// Phase 3: assignment and code generation.
	prog, err := ursa.Emit(g, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemitted VLIW code (%d words):\n%s", prog.Cycles(), prog.String())

	// Execute on the simulated machine and check the arithmetic:
	// V[0] = 7 must produce Z[0] = 28.
	res, err := ursa.Simulate(prog, ursa.PaperInit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: %d cycles, %.2f instructions/cycle\n", res.Cycles, res.Utilization())
	fmt.Printf("Z[0] = %d (expected 28)\n", res.State.Mem[ursa.Addr{Sym: "Z", Off: 0}].Int())
}
