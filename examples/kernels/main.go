// Kernels: compile the built-in DSP/scientific kernel suite through all
// four pipelines — URSA and the three phase-ordered baselines — on a
// register-constrained VLIW, execute each result on the simulator with
// verification, and print the comparison the paper's introduction argues
// for: unified allocation avoids both the prepass scheduler's spill
// patching and the postpass scheduler's reuse-dependence serialization.
package main

import (
	"flag"
	"fmt"
	"log"

	"ursa"
)

func main() {
	width := flag.Int("width", 4, "functional units")
	regs := flag.Int("regs", 6, "registers per file")
	unroll := flag.Int("unroll", 2, "loop unroll factor")
	flag.Parse()

	m := ursa.VLIW(*width, *regs)
	fmt.Printf("machine: %s, unroll %d\n\n", m, *unroll)
	fmt.Printf("%-10s %-16s %8s %8s %7s %7s %6s\n",
		"kernel", "pipeline", "cycles", "ipc", "spills", "regs", "ok")

	for _, k := range ursa.Kernels() {
		f, err := ursa.ParseKernel(k.Source, *unroll)
		if err != nil {
			log.Fatalf("%s: %v", k.Name, err)
		}
		for _, method := range ursa.Methods {
			st, err := ursa.EvaluateFunc(f, m, method, k.State(1), 50_000_000)
			if err != nil {
				log.Fatalf("%s/%s: %v", k.Name, method, err)
			}
			fmt.Printf("%-10s %-16s %8d %8.2f %7d %7d %6v\n",
				k.Name, method, st.Cycles, st.Utilization, st.SpillOps,
				st.RegsUsed[0]+st.RegsUsed[1], st.Verified)
		}
		fmt.Println()
	}
}
