// Tradeoff: a compiler/architecture co-design sweep. For one kernel, vary
// the machine's issue width and register-file size and chart where extra
// hardware stops paying off under each pipeline — the crossover analysis a
// VLIW architect would run with this library. URSA's curve shows the paper's
// point: with unified allocation the compiler exploits small register files
// gracefully instead of falling off a spill cliff.
package main

import (
	"flag"
	"fmt"
	"log"

	"ursa"
)

func main() {
	name := flag.String("kernel", "poly", "kernel to sweep")
	unroll := flag.Int("unroll", 2, "loop unroll factor")
	flag.Parse()

	k := ursa.KernelByName(*name)
	if k == nil {
		log.Fatalf("unknown kernel %q (try: fir8 dot saxpy hydro tridiag matmul4 poly fft2 stencil3 maxloc)", *name)
	}
	f, err := ursa.ParseKernel(k.Source, *unroll)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %s, unroll %d\n\n", k.Name, *unroll)

	fmt.Println("register sweep at width 4 (cycles):")
	fmt.Printf("%6s", "regs")
	for _, m := range ursa.Methods {
		fmt.Printf(" %16s", m)
	}
	fmt.Println()
	for _, regs := range []int{3, 4, 6, 8, 12, 16} {
		fmt.Printf("%6d", regs)
		for _, method := range ursa.Methods {
			st, err := ursa.EvaluateFunc(f, ursa.VLIW(4, regs), method, k.State(1), 50_000_000)
			if err != nil {
				log.Fatalf("regs=%d %s: %v", regs, method, err)
			}
			fmt.Printf(" %16d", st.Cycles)
		}
		fmt.Println()
	}

	fmt.Println("\nwidth sweep at 8 registers (cycles):")
	fmt.Printf("%6s", "width")
	for _, m := range ursa.Methods {
		fmt.Printf(" %16s", m)
	}
	fmt.Println()
	for _, width := range []int{1, 2, 4, 8} {
		fmt.Printf("%6d", width)
		for _, method := range ursa.Methods {
			st, err := ursa.EvaluateFunc(f, ursa.VLIW(width, 8), method, k.State(1), 50_000_000)
			if err != nil {
				log.Fatalf("width=%d %s: %v", width, method, err)
			}
			fmt.Printf(" %16d", st.Cycles)
		}
		fmt.Println()
	}
}
