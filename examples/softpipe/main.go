// Softpipe: the paper's §6 future-work extension in action. Unroll loop
// kernels by increasing factors and let URSA's unified allocation constrain
// the widened bodies to the machine — resource-constrained software
// pipelining. Cycles per original iteration fall until the register file or
// the functional units saturate; every point is verified on the simulator.
package main

import (
	"flag"
	"fmt"
	"log"

	"ursa"
	"ursa/internal/pipeline"
	"ursa/internal/softpipe"
)

func main() {
	width := flag.Int("width", 4, "functional units")
	regs := flag.Int("regs", 12, "registers per file")
	flag.Parse()

	m := ursa.VLIW(*width, *regs)
	fmt.Printf("machine: %s\n\n%s\n", m, softpipe.RowHeader)

	for _, name := range []string{"saxpy", "dot", "stencil3", "hydro", "fir8"} {
		k := ursa.KernelByName(name)
		res, err := softpipe.Sweep(k.Name, k.Source, k.N, k.State(1), m,
			pipeline.URSA, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, row := range res.Rows() {
			fmt.Println(row)
		}
		best := res.Best()
		fmt.Printf("  -> best unroll %d: %.2f cycles/iter (%.2fx over rolled)\n\n",
			best.Unroll, best.CyclesPerIter,
			res.Points[0].CyclesPerIter/best.CyclesPerIter)
	}
}
