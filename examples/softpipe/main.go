// Softpipe: two routes to software pipelining, side by side. The paper's
// §6 future-work extension — unroll the loop and let URSA's unified
// allocation constrain the widened body — is the baseline sweep; against
// it runs internal/modsched, true iterative modulo scheduling whose
// candidate IIs are accepted or rejected by URSA's measurement of the
// flattened kernel. Every row is executed on the simulator and the
// modulo-scheduled result is diff-checked against the interpreter.
package main

import (
	"flag"
	"fmt"
	"log"

	"ursa"
	"ursa/internal/pipeline"
	"ursa/internal/softpipe"
)

func main() {
	width := flag.Int("width", 4, "functional units")
	regs := flag.Int("regs", 12, "registers per file")
	flag.Parse()

	m := ursa.VLIW(*width, *regs)
	fmt.Printf("machine: %s\n\n%s\n", m, softpipe.RowHeader)

	for _, name := range []string{"saxpy", "dot", "stencil3", "hydro", "fir8"} {
		k := ursa.KernelByName(name)
		res, err := softpipe.Sweep(k.Name, k.Source, k.N, k.State(1), m,
			pipeline.URSA, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, row := range res.Rows() {
			fmt.Println(row)
		}
		best := res.Best()
		fmt.Printf("  -> best unroll %d: %.2f cycles/iter (%.2fx over rolled)\n",
			best.Unroll, best.CyclesPerIter,
			res.Points[0].CyclesPerIter/best.CyclesPerIter)
		modschedRow(k, m, best.CyclesPerIter)
		fmt.Println()
	}
}

// modschedRow pipelines the kernel's loop by modulo scheduling, runs the
// compiled result, verifies its memory against the interpreter on the
// original function, and prints cycles/iter next to the sweep's best.
func modschedRow(k *ursa.Kernel, m *ursa.Machine, sweepBest float64) {
	const budget = softpipe.DefaultBudget
	f, err := ursa.ParseKernel(k.Source, 0)
	if err != nil {
		log.Fatalf("%s: parse: %v", k.Name, err)
	}
	fp, _, ms, err := ursa.CompileLoopFunc(f, m, ursa.URSA, ursa.CompileOptions{})
	if err != nil {
		fmt.Printf("  -> modsched: skipped (%v)\n", err)
		return
	}
	res, err := fp.Run(k.State(1), budget)
	if err != nil {
		log.Fatalf("%s: modsched run: %v", k.Name, err)
	}
	ref := k.State(1)
	if _, err := ref.Run(f, budget); err != nil {
		log.Fatalf("%s: interp: %v", k.Name, err)
	}
	verified := sameMem(ref, res.State)
	l := ms.Primary()
	cpi := float64(res.Cycles) / float64(k.N)
	fmt.Printf("  -> modsched: II=%d vs MII=%d (res=%d rec=%d), unroll=%d: %.2f cycles/iter (%.2fx vs best sweep), verified=%v\n",
		l.II, l.MII, l.ResMII, l.RecMII, l.Unroll, cpi, sweepBest/cpi, verified)
}

// sameMem reports whether two states agree on every non-spill memory cell.
func sameMem(a, b *ursa.State) bool {
	for _, pair := range [][2]*ursa.State{{a, b}, {b, a}} {
		for addr, w := range pair[0].Mem {
			if len(addr.Sym) >= 5 && addr.Sym[:5] == "spill" {
				continue
			}
			if pair[1].Mem[addr] != w {
				return false
			}
		}
	}
	return true
}
