// Benchmarks: one testing.B target per reproduced table and figure (see
// DESIGN.md's experiment index). Each BenchmarkFx/BenchmarkTx regenerates
// its experiment end to end; run `go test -bench . -benchtime 1x` for one
// full regeneration of everything, or use cmd/ursabench to print the
// tables. The Micro benchmarks isolate the allocator's hot paths.
package ursa_test

import (
	"testing"

	"ursa"
	"ursa/internal/experiments"
	"ursa/internal/measure"
	"ursa/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tbl.String())
		}
	}
}

// Paper figures.

func BenchmarkFig2Measurement(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkFig3Transformations(b *testing.B) { benchExperiment(b, "F3") }
func BenchmarkURSAConvergence(b *testing.B)     { benchExperiment(b, "F1") }

// Constructed evaluation tables.

func BenchmarkT1PhaseOrdering(b *testing.B)        { benchExperiment(b, "T1") }
func BenchmarkT2RegisterSweep(b *testing.B)        { benchExperiment(b, "T2") }
func BenchmarkT3FUSweep(b *testing.B)              { benchExperiment(b, "T3") }
func BenchmarkT4MeasurementScaling(b *testing.B)   { benchExperiment(b, "T4") }
func BenchmarkT5TransformOrdering(b *testing.B)    { benchExperiment(b, "T5") }
func BenchmarkT6SpillVsSequence(b *testing.B)      { benchExperiment(b, "T6") }
func BenchmarkT7SoftwarePipelining(b *testing.B)   { benchExperiment(b, "T7") }
func BenchmarkT8ResourceClasses(b *testing.B)      { benchExperiment(b, "T8") }
func BenchmarkT9TraceScheduling(b *testing.B)      { benchExperiment(b, "T9") }
func BenchmarkT10PipelinedUnits(b *testing.B)      { benchExperiment(b, "T10") }
func BenchmarkT11OptimizerAblation(b *testing.B)   { benchExperiment(b, "T11") }
func BenchmarkT12SuperscalarInOrder(b *testing.B)  { benchExperiment(b, "T12") }
func BenchmarkT13PrioritizedMatching(b *testing.B) { benchExperiment(b, "T13") }

// Micro-benchmarks on the allocator's hot paths.

func BenchmarkMicroMeasurePaper(b *testing.B) {
	f := ursa.PaperExample(false)
	g, err := ursa.BuildDAG(f.Blocks[0])
	if err != nil {
		b.Fatal(err)
	}
	m := ursa.VLIW(2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ursa.Requirements(g, m)
	}
}

func BenchmarkMicroAllocatePaper(b *testing.B) {
	f := ursa.PaperExample(true)
	m := ursa.VLIW(2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := ursa.BuildDAG(f.Blocks[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ursa.Allocate(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroCompileKernel(b *testing.B) {
	k := ursa.KernelByName("dot")
	f, err := ursa.ParseKernel(k.Source, 2)
	if err != nil {
		b.Fatal(err)
	}
	m := ursa.VLIW(4, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ursa.CompileFunc(f, m, ursa.URSA); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-driver benchmarks: the whole kernel suite × every pipeline as
// one job batch, at different worker counts. Compare SuiteCompileJ1 with
// SuiteCompileJ4/J8 for the driver's wall-clock speedup; the compiled
// output is identical at every worker count.

func suiteJobs(b *testing.B) []ursa.Job {
	b.Helper()
	entries, err := workload.Suite(2)
	if err != nil {
		b.Fatal(err)
	}
	m := ursa.VLIW(4, 6)
	var jobs []ursa.Job
	for _, e := range entries {
		for _, method := range ursa.Methods {
			jobs = append(jobs, ursa.Job{
				Name: e.Kernel.Name, Func: e.Func, Machine: m, Method: method,
			})
		}
	}
	return jobs
}

func benchSuiteCompile(b *testing.B, workers int) {
	jobs := suiteJobs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ursa.RunJobs(jobs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteCompileJ1(b *testing.B) { benchSuiteCompile(b, 1) }
func BenchmarkSuiteCompileJ4(b *testing.B) { benchSuiteCompile(b, 4) }
func BenchmarkSuiteCompileJ8(b *testing.B) { benchSuiteCompile(b, 8) }

// BenchmarkMicroAllocateCached isolates the measurement cache: URSA
// allocation of a register-pressured block with a cache kept warm across
// iterations. Compare with BenchmarkMicroAllocateUncached (a fresh cache
// every run, the default).
func BenchmarkMicroAllocateCached(b *testing.B) {
	f := workload.LayeredBlock(8, 3)
	m := ursa.VLIW(4, 4)
	cache := measure.NewCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := ursa.BuildDAG(f.Blocks[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ursa.AllocateOpts(g, m, ursa.AllocOptions{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroAllocateUncached(b *testing.B) {
	f := workload.LayeredBlock(8, 3)
	m := ursa.VLIW(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := ursa.BuildDAG(f.Blocks[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ursa.Allocate(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSimulate(b *testing.B) {
	k := ursa.KernelByName("dot")
	f, err := ursa.ParseKernel(k.Source, 2)
	if err != nil {
		b.Fatal(err)
	}
	m := ursa.VLIW(4, 8)
	fp, _, err := ursa.CompileFunc(f, m, ursa.URSA)
	if err != nil {
		b.Fatal(err)
	}
	init := k.State(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fp.Run(init.Clone(), 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
