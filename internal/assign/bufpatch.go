package assign

import (
	"fmt"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// EmitWithBufferSpills emits code for a buffered exposed-datapath machine
// whose worst-case output-buffer width exceeds the depth the machine
// provides, so the buffer-aware list scheduler deadlocked. It linearizes
// the DAG, evicts buffered values to memory spill slots so that in-order
// execution never holds more than Units×BufferDepth values of a class at
// once, bounds register pressure with the usual spill patching, and packs
// the result sequentially — one instruction per word, so the in-order
// buffer guarantee survives packing. This is the buffered analogue of the
// register-pressure fallback in EmitWithSpills: the schedule stretches,
// but code is always emitted.
func EmitWithBufferSpills(g *dag.Graph, m *machine.Config) (*Program, error) {
	f := g.Func
	lin := topoInstrs(g)
	patched, bspills, err := insertBufferSpills(f, lin, m, g.LiveOut)
	if err != nil {
		return nil, err
	}
	seq, outRename, rspills, err := insertSpills(f, patched, m, g.LiveOut)
	if err != nil {
		return nil, err
	}
	prog, physSeq, err := assignLinear(f, seq, m, g.LiveOut, outRename)
	if err != nil {
		return nil, err
	}
	prog.Words = packPhys(prog.Func, physSeq, m, true)
	prog.Spills = bspills + rspills
	fillBlock(prog)
	return prog, nil
}

// topoInstrs linearizes the graph's instructions in a topological order of
// the dependence edges, lowest node id first among the ready — a
// deterministic order close to the original program order.
func topoInstrs(g *dag.Graph) []*ir.Instr {
	n := g.NumNodes()
	indeg := make([]int, n)
	for _, e := range g.Edges() {
		indeg[e[1]]++
	}
	var ready []int
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []*ir.Instr
	for len(ready) > 0 {
		sort.Ints(ready)
		id := ready[0]
		ready = ready[1:]
		if in := g.Nodes[id].Instr; in != nil {
			out = append(out, in)
		}
		for _, s := range g.Succs(id) {
			if indeg[s]--; indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

func distinctUses(in *ir.Instr) []ir.VReg {
	var out []ir.VReg
	for _, u := range in.Uses() {
		dup := false
		for _, v := range out {
			if v == u {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, u)
		}
	}
	return out
}

// insertBufferSpills rewrites a linear instruction sequence so that, when
// executed strictly in order, at most Units×BufferDepth non-live-out
// values of each producer class sit in output buffers at once — the same
// free-at-last-reader rule the scheduler and the static audit use. A
// value whose slot must turn over is evicted with a SpillStore (its final
// read, freeing the slot); later readers reload it under a fresh name
// that feeds exactly one instruction, so reloads hold their slot only for
// that instant. Returns the patched sequence and the eviction count.
func insertBufferSpills(f *ir.Func, lin []*ir.Instr, m *machine.Config, liveOut map[ir.VReg]bool) ([]*ir.Instr, int, error) {
	// Remaining reading instructions per original value (distinct per
	// instruction, matching the scheduler's per-issue decrement).
	rem := map[ir.VReg]int{}
	for _, in := range lin {
		for _, u := range distinctUses(in) {
			rem[u]++
		}
	}
	occ := make([]int, machine.NumFUClasses)
	buffered := map[ir.VReg]bool{}
	clsOf := map[ir.VReg]machine.FUClass{}
	evicted := map[ir.VReg]bool{}
	isReload := map[ir.VReg]bool{}
	slot := func(v ir.VReg) string { return "spillb." + f.NameOf(v) }

	nextUse := func(v ir.VReg, i int) int {
		for j := i; j < len(lin); j++ {
			for _, u := range lin[j].Uses() {
				if u == v {
					return j
				}
			}
		}
		return len(lin) + 1
	}

	var out []*ir.Instr
	spills := 0
	evict := func(v ir.VReg) {
		out = append(out, &ir.Instr{Op: ir.SpillStore, Args: []ir.VReg{v}, Sym: slot(v)})
		spills++
		delete(buffered, v)
		evicted[v] = true
		occ[clsOf[v]]--
	}
	// pickVictim returns the unpinned buffered value of the class with the
	// farthest next use, or NoReg when every slot is pinned.
	pickVictim := func(cl machine.FUClass, i int, pinned map[ir.VReg]bool) ir.VReg {
		victim, far := ir.NoReg, -1
		for v := range buffered {
			if clsOf[v] != cl || pinned[v] {
				continue
			}
			nu := nextUse(v, i)
			if victim == ir.NoReg || nu > far || (nu == far && v < victim) {
				far, victim = nu, v
			}
		}
		return victim
	}
	// ensure frees slots of the class until occupancy (less the headroom
	// the current instruction's own last reads are about to release) drops
	// below capacity. Pinned values — the current instruction's operands —
	// are never victims.
	ensure := func(cl machine.FUClass, i, headroom int, pinned map[ir.VReg]bool) error {
		for occ[cl]-headroom >= m.BufferCap(cl) {
			victim := pickVictim(cl, i, pinned)
			if victim == ir.NoReg {
				return fmt.Errorf("assign: %s output buffers too small (capacity %d, all slots pinned)",
					cl, m.BufferCap(cl))
			}
			evict(victim)
		}
		return nil
	}

	replaceUse := func(in *ir.Instr, from, to ir.VReg) {
		for k, a := range in.Args {
			if a == from {
				in.Args[k] = to
			}
		}
		if in.Index == from {
			in.Index = to
		}
	}

	for i, in := range lin {
		cur := in.Clone()
		pinned := map[ir.VReg]bool{}
		for _, u := range cur.Uses() {
			pinned[u] = true
		}
		// Reload operands whose value was evicted. Each reload feeds only
		// this instruction, so its slot frees the moment cur issues.
		addReload := func(u ir.VReg) (ir.VReg, error) {
			nv := f.NewReg(f.NameOf(u)+".b", f.ClassOf(u))
			rl := &ir.Instr{Op: ir.SpillLoad, Dst: nv, Sym: slot(u)}
			rcl := m.ClassFor(rl.Kind())
			if err := ensure(rcl, i, 0, pinned); err != nil {
				return ir.NoReg, err
			}
			out = append(out, rl)
			buffered[nv] = true
			clsOf[nv] = rcl
			isReload[nv] = true
			occ[rcl]++
			pinned[nv] = true
			return nv, nil
		}
		for _, u := range distinctUses(in) {
			if !evicted[u] {
				continue
			}
			nv, err := addReload(u)
			if err != nil {
				return nil, 0, err
			}
			replaceUse(cur, u, nv)
		}

		d := cur.Dst
		dcl := m.ClassFor(cur.Kind())
		if d != ir.NoReg && !liveOut[d] {
			// Slots the current instruction's own last reads release are
			// available to its result (readers free before the write takes
			// a slot, exactly as the audit counts).
			headroom := func() int {
				h := 0
				for _, u := range distinctUses(cur) {
					if buffered[u] && clsOf[u] == dcl && (isReload[u] || rem[u] == 1) {
						h++
					}
				}
				return h
			}
			for occ[dcl]-headroom() >= m.BufferCap(dcl) {
				if victim := pickVictim(dcl, i+1, pinned); victim != ir.NoReg {
					evict(victim)
					continue
				}
				// Every slot of the class feeds this instruction. Reroute
				// one still-needed operand through memory: its store is its
				// final direct read, and the single-use reload frees here.
				op := ir.NoReg
				for _, u := range distinctUses(cur) {
					if buffered[u] && clsOf[u] == dcl && !isReload[u] && rem[u] > 1 &&
						(op == ir.NoReg || u < op) {
						op = u
					}
				}
				if op == ir.NoReg {
					return nil, 0, fmt.Errorf("assign: %s output buffers too small for %s", dcl, f.NameOf(d))
				}
				evict(op)
				nv, err := addReload(op)
				if err != nil {
					return nil, 0, err
				}
				replaceUse(cur, op, nv)
			}
		}

		// Issue: last reads free their slots, then the result takes one.
		for _, u := range distinctUses(cur) {
			if isReload[u] {
				delete(buffered, u)
				occ[clsOf[u]]--
				continue
			}
			if rem[u]--; rem[u] == 0 && buffered[u] {
				delete(buffered, u)
				occ[clsOf[u]]--
			}
		}
		out = append(out, cur)
		if d != ir.NoReg && !liveOut[d] {
			buffered[d] = true
			clsOf[d] = dcl
			occ[dcl]++
		}
	}
	return out, spills, nil
}
