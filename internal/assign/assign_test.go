package assign

import (
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
	store Z[0], z
}
`

func buildPaper(t testing.TB) (*ir.Func, *dag.Graph) {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f, g
}

func TestRegistersCleanAssignment(t *testing.T) {
	_, g := buildPaper(t)
	m := machine.VLIW(4, 8)
	s, err := sched.List(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	prog, err := Registers(s, m)
	if err != nil {
		t.Fatalf("Registers: %v", err)
	}
	if prog.Spills != 0 {
		t.Errorf("clean assignment inserted %d spills", prog.Spills)
	}
	if prog.RegsUsed[ir.ClassInt] > 8 {
		t.Errorf("used %d registers, machine has 8", prog.RegsUsed[ir.ClassInt])
	}
	if got := len(prog.Instrs()); got != 12 {
		t.Errorf("emitted %d instructions, want 12", got)
	}
	if err := ir.Verify(prog.Func); err != nil {
		t.Errorf("emitted function invalid: %v", err)
	}
}

func TestRegistersFailsUnderPressure(t *testing.T) {
	_, g := buildPaper(t)
	m := machine.VLIW(4, 2) // far below the width of 5
	s, err := sched.List(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	_, err = Registers(s, m)
	if err == nil {
		t.Fatal("assignment succeeded with 2 registers")
	}
	if _, ok := err.(*ErrPressure); !ok {
		t.Fatalf("error = %v, want *ErrPressure", err)
	}
}

func TestEmitWithSpillsRecovers(t *testing.T) {
	_, g := buildPaper(t)
	m := machine.VLIW(4, 3)
	s, err := sched.List(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	prog, err := EmitWithSpills(s, m)
	if err != nil {
		t.Fatalf("EmitWithSpills: %v", err)
	}
	if prog.Spills == 0 {
		t.Error("no spills inserted despite pressure > 3")
	}
	if prog.RegsUsed[ir.ClassInt] > 3 {
		t.Errorf("used %d registers, machine has 3", prog.RegsUsed[ir.ClassInt])
	}
}

func TestEmitFallsBack(t *testing.T) {
	_, g := buildPaper(t)
	m := machine.VLIW(4, 3)
	prog, _, err := Emit(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	if prog.Spills == 0 {
		t.Error("fallback path not taken")
	}
}

func randomBlockWithStores(rng *rand.Rand, n int) *ir.Func {
	f := ir.NewFunc("rand")
	b := f.NewBlock("entry")
	var vals []ir.VReg
	for i := 0; i < n; i++ {
		dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
		switch {
		case len(vals) == 0 || rng.Intn(5) == 0:
			b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i % 8)})
		case rng.Intn(4) == 0:
			a := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.MulI, Dst: dst, Args: []ir.VReg{a}, Imm: int64(1 + rng.Intn(5))})
		default:
			a := vals[rng.Intn(len(vals))]
			c := vals[rng.Intn(len(vals))]
			op := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor}[rng.Intn(4)]
			b.Append(&ir.Instr{Op: op, Dst: dst, Args: []ir.VReg{a, c}})
		}
		vals = append(vals, dst)
		if rng.Intn(6) == 0 {
			b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{dst}, Sym: "OUT", Off: int64(i)})
		}
	}
	b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{vals[len(vals)-1]}, Sym: "OUT", Off: 999})
	// Consume otherwise-dead values so the block has no live-outs: a
	// machine cannot end a region with more register-resident results than
	// it has registers.
	used := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	for i, v := range vals {
		if !used[v] {
			b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{v}, Sym: "DEAD", Off: int64(i)})
		}
	}
	return f
}

// TestEmitRandomPrograms checks the full emit path (clean or spilled) on
// random programs and machines: the emitted function must verify, register
// usage must respect the machine, and instruction counts must cover every
// original operation.
func TestEmitRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		f := randomBlockWithStores(rng, 5+rng.Intn(20))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := machine.VLIW(1+rng.Intn(4), 2+rng.Intn(8))
		if rng.Intn(2) == 0 {
			m.Latency = machine.RealisticLatency
		}
		prog, _, err := Emit(g, m, sched.Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): Emit: %v", trial, m.Name, err)
		}
		if err := ir.Verify(prog.Func); err != nil {
			t.Fatalf("trial %d: invalid emitted code: %v", trial, err)
		}
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			if prog.RegsUsed[c] > m.Regs[c] {
				t.Fatalf("trial %d: class %s used %d of %d regs",
					trial, c, prog.RegsUsed[c], m.Regs[c])
			}
		}
		want := len(f.Blocks[0].Instrs)
		if got := len(prog.Instrs()); got < want {
			t.Fatalf("trial %d: emitted %d instructions, original had %d", trial, got, want)
		}
	}
}
