package assign_test

import (
	"testing"

	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

const paperSrcExt = `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
	store Z[0], z
}
`

// TestEmitAfterURSANeedsNoSpills checks URSA's promise: after a fitting
// allocation, assignment succeeds without last-resort spills for the
// schedules the list scheduler produces. (External test package: core
// imports assign for its outcome-based attempt selection.)
func TestEmitAfterURSANeedsNoSpills(t *testing.T) {
	for _, regs := range []int{3, 4, 5} {
		f := ir.MustParse(paperSrcExt)
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		m := machine.VLIW(4, regs)
		rep, err := core.Run(g, core.Options{Machine: m})
		if err != nil {
			t.Fatalf("regs=%d: URSA: %v", regs, err)
		}
		if !rep.Fits && !rep.ScheduleClean {
			t.Fatalf("regs=%d: URSA neither fit nor clean: %v", regs, rep.FinalWidths)
		}
		prog, _, err := assign.Emit(g, m, sched.Options{})
		if err != nil {
			t.Fatalf("regs=%d: Emit: %v", regs, err)
		}
		if prog.Spills != 0 {
			t.Errorf("regs=%d: assignment inserted %d spills after URSA fit", regs, prog.Spills)
		}
		if prog.RegsUsed[ir.ClassInt] > regs {
			t.Errorf("regs=%d: used %d registers", regs, prog.RegsUsed[ir.ClassInt])
		}
	}
}
