package assign

import (
	"fmt"
	"sort"

	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

// EmitWithSpills assigns registers to a schedule whose pressure exceeds the
// machine by inserting spill code into the linearized schedule and then
// re-packing the instructions in order. This is the fate of a prepass
// scheduler that ignored registers (§1): each spill store/load occupies a
// memory unit and usually stretches the schedule.
//
// Pipeline: linearize -> insert spills (virtual registers, pressure now
// bounded) -> assign physical registers over the linear order -> pack the
// physical-register sequence into VLIW words, honoring RAW/WAR/WAW on the
// physical registers so register reuse stays ordered even though packing
// may overlap independent instructions.
func EmitWithSpills(s *sched.Schedule, m *machine.Config) (*Program, error) {
	g := s.Graph
	f := g.Func

	var lin []*ir.Instr
	for _, p := range s.Placements {
		lin = append(lin, g.Nodes[p.Node].Instr)
	}

	patched, outRename, spills, err := insertSpills(f, lin, m, g.LiveOut)
	if err != nil {
		return nil, err
	}
	prog, physSeq, err := assignLinear(f, patched, m, g.LiveOut, outRename)
	if err != nil {
		return nil, err
	}
	prog.Words = packPhys(prog.Func, physSeq, m, false)
	prog.Spills = spills
	fillBlock(prog)
	return prog, nil
}

// insertSpills runs a linear-scan allocator over the instruction sequence,
// inserting SpillStore/SpillLoad instructions (still over virtual
// registers) so that at every point at most m.Regs[c] values of class c are
// register-resident. Reloads define fresh registers (live-range splitting),
// so the later linear assignment sees disjoint intervals. A definition may
// take the slot of an operand dying at the same instruction (reads happen
// before writes). Live-out values still sitting in spill slots at the end
// are reloaded; the returned rename map gives each live-out original's
// final register name. Also returns the spill-store count.
func insertSpills(f *ir.Func, lin []*ir.Instr, m *machine.Config, liveOut map[ir.VReg]bool) ([]*ir.Instr, map[ir.VReg]ir.VReg, int, error) {
	n := len(lin)
	lastUse := map[ir.VReg]int{} // by original register, over lin indices
	defCluster := map[ir.VReg]uint8{}
	for i, in := range lin {
		for _, u := range in.Uses() {
			lastUse[u] = i
		}
		if in.Dst != ir.NoReg {
			defCluster[in.Dst] = in.Cluster
		}
	}

	cur := map[ir.VReg]ir.VReg{}   // original -> current (post-reload) name
	resident := map[ir.VReg]bool{} // original names currently in registers
	spilled := map[ir.VReg]bool{}  // original names whose value lives in the slot
	stored := map[ir.VReg]bool{}   // slot already written (values are immutable)
	slot := func(v ir.VReg) string { return "spillp." + f.NameOf(v) }
	curName := func(v ir.VReg) ir.VReg {
		if nv, ok := cur[v]; ok {
			return nv
		}
		return v
	}
	// Residency is per register file: on clustered machines each cluster's
	// file fills and spills independently.
	countClass := func(c ir.Class, cl uint8) int {
		k := 0
		for v := range resident {
			if f.ClassOf(v) == c && defCluster[v] == cl {
				k++
			}
		}
		return k
	}
	nextUseAfter := func(v ir.VReg, i int) int {
		for j := i; j < n; j++ {
			for _, u := range lin[j].Uses() {
				if u == v {
					return j
				}
			}
		}
		return n + 1
	}

	var out []*ir.Instr
	spills := 0
	evict := func(v ir.VReg) {
		if !stored[v] {
			out = append(out, &ir.Instr{
				Op: ir.SpillStore, Args: []ir.VReg{curName(v)}, Sym: slot(v),
				Cluster: defCluster[v],
			})
			stored[v] = true
			spills++
		}
		delete(resident, v)
		spilled[v] = true
	}
	ensure := func(c ir.Class, cl uint8, i int, pinned map[ir.VReg]bool) error {
		for countClass(c, cl) >= m.Regs[c] {
			victim, far := ir.NoReg, -1
			for v := range resident {
				if f.ClassOf(v) != c || defCluster[v] != cl || pinned[v] {
					continue
				}
				nu := nextUseAfter(v, i)
				if liveOut[v] && nu > n {
					nu = n // live-outs are used "at the end"
				}
				if nu > far || (nu == far && v < victim) {
					far, victim = nu, v
				}
			}
			if victim == ir.NoReg {
				return fmt.Errorf("assign: cannot spill: all %s registers pinned (machine too small)", c)
			}
			evict(victim)
		}
		return nil
	}

	for i, in := range lin {
		// All operands must be simultaneously resident to issue.
		pinned := map[ir.VReg]bool{}
		for _, u := range in.Uses() {
			pinned[u] = true
		}
		for _, u := range in.Uses() {
			switch {
			case spilled[u]:
				if err := ensure(f.ClassOf(u), defCluster[u], i, pinned); err != nil {
					return nil, nil, 0, err
				}
				nv := f.NewReg(f.NameOf(u)+".p", f.ClassOf(u))
				out = append(out, &ir.Instr{
					Op: ir.SpillLoad, Dst: nv, Sym: slot(u), Cluster: defCluster[u],
				})
				cur[u] = nv
				defCluster[nv] = defCluster[u]
				delete(spilled, u)
				resident[u] = true
			case !resident[u]:
				// Live-in: becomes resident on first touch.
				if err := ensure(f.ClassOf(u), defCluster[u], i, pinned); err != nil {
					return nil, nil, 0, err
				}
				resident[u] = true
			}
		}
		// Operands dying here free their slots before the write lands.
		for _, u := range in.Uses() {
			if lastUse[u] == i && !liveOut[u] {
				delete(resident, u)
			}
		}
		if in.Dst != ir.NoReg && !resident[in.Dst] {
			// Surviving operands of this instruction may themselves be
			// evicted (the store reads the register before the write
			// lands), so nothing is pinned here.
			if err := ensure(f.ClassOf(in.Dst), in.Cluster, i+1, nil); err != nil {
				return nil, nil, 0, err
			}
			resident[in.Dst] = true
		}
		patched := in.Clone()
		for k, a := range patched.Args {
			patched.Args[k] = curName(a)
		}
		if patched.Index != ir.NoReg {
			patched.Index = curName(patched.Index)
		}
		out = append(out, patched)
	}
	// Reload live-out values that ended up in spill slots, pinning
	// already-reloaded ones so they are not re-evicted. The reloads must
	// precede a terminating branch, which stays last.
	var trailingBranch *ir.Instr
	if len(out) > 0 && out[len(out)-1].IsBranch() {
		trailingBranch = out[len(out)-1]
		out = out[:len(out)-1]
	}
	outs := make([]ir.VReg, 0, len(liveOut))
	for v := range liveOut {
		outs = append(outs, v)
	}
	sortRegs(outs)
	pinned := map[ir.VReg]bool{}
	for _, v := range outs {
		pinned[v] = true
	}
	for _, v := range outs {
		if !spilled[v] {
			continue
		}
		if err := ensure(f.ClassOf(v), defCluster[v], n, pinned); err != nil {
			return nil, nil, 0, err
		}
		nv := f.NewReg(f.NameOf(v)+".p", f.ClassOf(v))
		out = append(out, &ir.Instr{
			Op: ir.SpillLoad, Dst: nv, Sym: slot(v), Cluster: defCluster[v],
		})
		cur[v] = nv
		defCluster[nv] = defCluster[v]
		delete(spilled, v)
		resident[v] = true
	}
	if trailingBranch != nil {
		out = append(out, trailingBranch)
	}
	outRename := map[ir.VReg]ir.VReg{}
	for _, v := range outs {
		outRename[v] = curName(v)
	}
	return out, outRename, spills, nil
}

func sortRegs(rs []ir.VReg) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

// assignLinear maps the virtual registers of an ordered sequence onto
// physical registers, freeing each register after its holder's last touch
// in sequence order. The returned sequence is over the fresh physical
// function; the later packing phase keeps reuse ordered via WAR/WAW edges.
func assignLinear(f *ir.Func, seq []*ir.Instr, m *machine.Config, liveOut map[ir.VReg]bool, outRename map[ir.VReg]ir.VReg) (*Program, []*ir.Instr, error) {
	// The registers held to the very end are the FINAL names of the
	// live-out values; originals that were spilled and reloaded under a
	// fresh name release their registers at the eviction store.
	held := map[ir.VReg]bool{}
	for _, fin := range outRename {
		held[fin] = true
	}
	ps := newPhysSpace(f.Name+".vliw", m)
	assignMap := map[ir.VReg]ir.VReg{}
	free := ps.freeLists()
	used := [ir.NumClasses]map[ir.VReg]bool{}
	for c := range used {
		used[c] = map[ir.VReg]bool{}
	}
	lastTouch := map[ir.VReg]int{}
	defCluster := map[ir.VReg]uint8{}
	for i, in := range seq {
		for _, u := range in.Uses() {
			lastTouch[u] = i
		}
		if in.Dst != ir.NoReg {
			if _, seen := lastTouch[in.Dst]; !seen {
				lastTouch[in.Dst] = i
			}
			defCluster[in.Dst] = in.Cluster
		}
	}
	alloc := func(v ir.VReg) error {
		if _, ok := assignMap[v]; ok {
			return nil
		}
		c, k := f.ClassOf(v), int(defCluster[v])
		if len(free[c][k]) == 0 {
			return &ErrPressure{Class: c, Value: f.NameOf(v)}
		}
		assignMap[v] = free[c][k][0]
		used[c][free[c][k][0]] = true
		free[c][k] = free[c][k][1:]
		return nil
	}

	prog := &Program{Func: ps.f, Machine: m, OutMap: map[ir.VReg]ir.VReg{}}
	var physSeq []*ir.Instr
	for i, in := range seq {
		for _, u := range in.Uses() {
			if err := alloc(u); err != nil {
				return nil, nil, err
			}
		}
		out := in.Clone()
		for k, a := range out.Args {
			out.Args[k] = assignMap[a]
		}
		if out.Index != ir.NoReg {
			out.Index = assignMap[out.Index]
		}
		release := func(v ir.VReg) {
			if lastTouch[v] == i && !held[v] {
				if p, ok := assignMap[v]; ok {
					c, k := f.ClassOf(v), int(defCluster[v])
					free[c][k] = append(free[c][k], p)
					delete(assignMap, v)
				}
			}
		}
		// Operands dying here free their registers before the result is
		// written: the definition may reuse a dying operand's register
		// (reads at cycle start, writes at cycle end).
		for _, u := range in.Uses() {
			release(u)
		}
		if in.Dst != ir.NoReg {
			if err := alloc(in.Dst); err != nil {
				return nil, nil, err
			}
			out.Dst = assignMap[in.Dst]
		}
		physSeq = append(physSeq, out)
		if in.Dst != ir.NoReg {
			release(in.Dst)
		}
	}
	for v := range liveOut {
		fin := v
		if r, ok := outRename[v]; ok {
			fin = r
		}
		if p, ok := assignMap[fin]; ok {
			prog.OutMap[v] = p
		}
	}
	for c := range used {
		prog.RegsUsed[c] = len(used[c])
	}
	return prog, physSeq, nil
}

// packPhys compacts an ordered physical-register sequence into VLIW words.
// Each instruction issues at the earliest cycle respecting RAW/WAW (wait
// for the writer to finish), WAR (write strictly after the last read),
// memory ordering per symbol, and unit availability. With seqOnly set the
// words carry at most one instruction each, in sequence order — packing
// then cannot reorder around the buffer-eviction pass's in-order
// occupancy guarantee.
func packPhys(pf *ir.Func, seq []*ir.Instr, m *machine.Config, seqOnly bool) [][]*ir.Instr {
	type ev struct {
		write int // cycle after the last write completes
		read  int // last cycle the location is read
	}
	regEv := map[ir.VReg]*ev{}
	memEv := map[string]*ev{}
	busy := map[machine.FUClass][]int{}
	for _, cl := range m.FUClasses() {
		busy[cl] = make([]int, m.TotalUnits(cl))
	}
	issuedAt := map[int]int{} // per-cycle issue count (global issue width)

	makespan := 0
	maxIssue := 0 // latest issue cycle so far; branches may not precede it
	floor := 0    // earliest issue cycle allowed after a branch
	cycles := make([]int, len(seq))
	for i, in := range seq {
		start := floor
		if seqOnly && i > 0 && cycles[i-1]+1 > start {
			start = cycles[i-1] + 1
		}
		if in.IsBranch() {
			// A taken branch squashes all later words, so every earlier
			// instruction must have issued by the branch's cycle, and
			// nothing may issue after it until the next block.
			if maxIssue > start {
				start = maxIssue
			}
		}
		raw := func(e *ev) {
			if e != nil && e.write > start {
				start = e.write
			}
		}
		war := func(e *ev) {
			if e == nil {
				return
			}
			if e.write > start {
				start = e.write // WAW
			}
			if e.read+1 > start {
				start = e.read + 1 // WAR
			}
		}
		for _, u := range in.Uses() {
			raw(regEv[u])
		}
		if in.Dst != ir.NoReg {
			war(regEv[in.Dst])
		}
		if in.IsMem() {
			if in.IsStore() {
				war(memEv[in.Sym])
			} else {
				raw(memEv[in.Sym])
			}
		}
		cl := m.ClassFor(in.Kind())
		lat := m.LatencyOf(in.Op)
		// Clustered instructions only see their own cluster's unit slice;
		// the XFER bus is machine-wide.
		lo, hi := 0, len(busy[cl])
		if m.Clusters > 1 && cl != machine.XFER {
			per := m.Units.Get(cl)
			lo = int(in.Cluster) * per
			hi = lo + per
		}
		cycle := start
		for {
			if m.IssueWidth > 0 && issuedAt[cycle] >= m.IssueWidth {
				cycle++
				continue
			}
			unit := -1
			for u := lo; u < hi; u++ {
				if busy[cl][u] <= cycle {
					unit = u
					break
				}
			}
			if unit >= 0 {
				busy[cl][unit] = cycle + m.OccupancyOf(in.Op)
				break
			}
			cycle++
		}
		issuedAt[cycle]++
		cycles[i] = cycle
		if cycle > maxIssue {
			maxIssue = cycle
		}
		if in.IsBranch() {
			floor = cycle + 1
		}
		if cycle+lat > makespan {
			makespan = cycle + lat
		}
		touchRead := func(evs map[ir.VReg]*ev, k ir.VReg) {
			if evs[k] == nil {
				evs[k] = &ev{}
			}
			if cycle > evs[k].read {
				evs[k].read = cycle
			}
		}
		for _, u := range in.Uses() {
			touchRead(regEv, u)
		}
		if in.Dst != ir.NoReg {
			if regEv[in.Dst] == nil {
				regEv[in.Dst] = &ev{}
			}
			regEv[in.Dst].write = cycle + lat
		}
		if in.IsMem() {
			if memEv[in.Sym] == nil {
				memEv[in.Sym] = &ev{}
			}
			if in.IsStore() {
				memEv[in.Sym].write = cycle + lat
			} else if cycle > memEv[in.Sym].read {
				memEv[in.Sym].read = cycle
			}
		}
	}

	words := make([][]*ir.Instr, makespan)
	for i, in := range seq {
		words[cycles[i]] = append(words[cycles[i]], in)
	}
	return words
}
