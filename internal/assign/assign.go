// Package assign implements URSA's resource assignment phase (§2): mapping
// the scheduled DAG's virtual values onto physical registers and emitting
// VLIW instruction words. When the allocation phase left residual excess —
// or when a phase-ordered baseline scheduled without regard for registers —
// assignment falls back to spill patching: spill code is inserted into the
// linearized schedule and the instructions are re-packed in order, the
// classic cost the paper's unified approach avoids.
package assign

import (
	"errors"
	"fmt"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

// Program is executable VLIW code: instruction words over physical
// registers.
type Program struct {
	// Func holds the physical register space; its single block lists the
	// instructions in issue order (for printing and verification).
	Func    *ir.Func
	Machine *machine.Config
	// Words is the VLIW schedule: Words[c] are the instructions issued in
	// cycle c (possibly empty).
	Words [][]*ir.Instr
	// Spills counts spill stores inserted during assignment (URSA's own
	// DAG-level spills appear as ordinary instructions, not here).
	Spills int
	// RegsUsed is the number of distinct physical registers touched per
	// class.
	RegsUsed [ir.NumClasses]int
	// OutMap maps original live-out virtual registers to the physical
	// register holding them at the end.
	OutMap map[ir.VReg]ir.VReg
}

// Cycles returns the makespan.
func (p *Program) Cycles() int { return len(p.Words) }

// Instrs returns all instructions in issue order.
func (p *Program) Instrs() []*ir.Instr {
	var out []*ir.Instr
	for _, w := range p.Words {
		out = append(out, w...)
	}
	return out
}

// String renders the program one word per line.
func (p *Program) String() string {
	var sb []byte
	for c, w := range p.Words {
		sb = append(sb, fmt.Sprintf("%4d:", c)...)
		if len(w) == 0 {
			sb = append(sb, "  (stall)"...)
		}
		for _, in := range w {
			sb = append(sb, "  ["...)
			sb = append(sb, p.Func.InstrString(in)...)
			sb = append(sb, ']')
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// physSpace pre-allocates the machine's register files in a fresh function.
// On clustered machines every cluster owns a private copy of each file
// (regs[class][cluster]); unclustered machines have a single cluster 0 and
// keep the historical register names.
type physSpace struct {
	f    *ir.Func
	regs [ir.NumClasses][][]ir.VReg
}

func newPhysSpace(name string, m *machine.Config) *physSpace {
	ps := &physSpace{f: ir.NewFunc(name)}
	nc := m.NumClusters()
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		prefix := "r"
		if c == ir.ClassFP {
			prefix = "f"
		}
		ps.regs[c] = make([][]ir.VReg, nc)
		for k := 0; k < nc; k++ {
			for i := 0; i < m.Regs[c]; i++ {
				name := fmt.Sprintf("%s%d", prefix, i)
				if nc > 1 {
					name = fmt.Sprintf("c%d.%s", k, name)
				}
				ps.regs[c][k] = append(ps.regs[c][k], ps.f.NewReg(name, c))
			}
		}
	}
	return ps
}

// freeLists copies the physical files into per-(class, cluster) free lists.
func (ps *physSpace) freeLists() [ir.NumClasses][][]ir.VReg {
	var free [ir.NumClasses][][]ir.VReg
	for c := range ps.regs {
		free[c] = make([][]ir.VReg, len(ps.regs[c]))
		for k := range ps.regs[c] {
			free[c][k] = append([]ir.VReg(nil), ps.regs[c][k]...)
		}
	}
	return free
}

// Registers performs clean register assignment on a schedule whose pressure
// fits the machine, returning the emitted program. It fails with
// ErrPressure if any cycle needs more registers than the file provides; the
// caller then falls back to EmitWithSpills.
func Registers(s *sched.Schedule, m *machine.Config) (*Program, error) {
	g := s.Graph
	f := g.Func
	ps := newPhysSpace(f.Name+".vliw", m)

	// lastUse[v] = last issue cycle reading v; defCycle[v] = issue cycle.
	lastUse := map[ir.VReg]int{}
	defCycle := map[ir.VReg]int{}
	for _, p := range s.Placements {
		in := g.Nodes[p.Node].Instr
		if in.Dst != ir.NoReg {
			defCycle[in.Dst] = p.Cycle
		}
		for _, u := range in.Uses() {
			if p.Cycle > lastUse[u] {
				lastUse[u] = p.Cycle
			}
			if _, ok := lastUse[u]; !ok {
				lastUse[u] = p.Cycle
			}
		}
	}

	// Values allocate from their defining instruction's cluster file
	// (live-ins default to cluster 0; clustered pipelines reject live-ins
	// upstream).
	clusterOf := map[ir.VReg]uint8{}
	for _, p := range s.Placements {
		in := g.Nodes[p.Node].Instr
		if in.Dst != ir.NoReg {
			clusterOf[in.Dst] = in.Cluster
		}
	}

	// Free lists per (class, cluster); live-ins allocated up front.
	free := ps.freeLists()
	assign := map[ir.VReg]ir.VReg{}
	used := [ir.NumClasses]map[ir.VReg]bool{}
	for c := range used {
		used[c] = map[ir.VReg]bool{}
	}
	alloc := func(v ir.VReg) (ir.VReg, error) {
		c := f.ClassOf(v)
		k := int(clusterOf[v])
		if len(free[c][k]) == 0 {
			return ir.NoReg, &ErrPressure{Class: c, Value: f.NameOf(v)}
		}
		p := free[c][k][0]
		free[c][k] = free[c][k][1:]
		assign[v] = p
		used[c][p] = true
		return p, nil
	}
	releaseAt := map[int][]ir.VReg{} // cycle -> values whose last use is here
	var liveIns []ir.VReg
	seen := map[ir.VReg]bool{}
	for _, p := range s.Placements {
		in := g.Nodes[p.Node].Instr
		for _, u := range in.Uses() {
			if _, defined := defCycle[u]; !defined && !seen[u] {
				seen[u] = true
				liveIns = append(liveIns, u)
			}
		}
	}
	sort.Slice(liveIns, func(i, j int) bool { return liveIns[i] < liveIns[j] })
	for _, v := range liveIns {
		if _, err := alloc(v); err != nil {
			return nil, err
		}
		releaseAt[lastUse[v]] = append(releaseAt[lastUse[v]], v)
	}

	// Walk cycles: free expiring values first, then allocate this cycle's
	// definitions (reads happen at cycle start, writes at cycle end).
	byCycle := map[int][]sched.Placement{}
	for _, p := range s.Placements {
		byCycle[p.Cycle] = append(byCycle[p.Cycle], p)
	}
	prog := &Program{
		Func:    ps.f,
		Machine: m,
		Words:   make([][]*ir.Instr, s.Cycles),
		OutMap:  map[ir.VReg]ir.VReg{},
	}
	rename := func(in *ir.Instr) (*ir.Instr, error) {
		out := in.Clone()
		for i, a := range out.Args {
			p, ok := assign[a]
			if !ok {
				return nil, fmt.Errorf("assign: %s read before allocation", f.NameOf(a))
			}
			out.Args[i] = p
		}
		if out.Index != ir.NoReg {
			p, ok := assign[out.Index]
			if !ok {
				return nil, fmt.Errorf("assign: index %s read before allocation", f.NameOf(out.Index))
			}
			out.Index = p
		}
		if out.Dst != ir.NoReg {
			out.Dst = assign[out.Dst]
		}
		return out, nil
	}

	for cycle := 0; cycle < s.Cycles; cycle++ {
		for _, v := range releaseAt[cycle] {
			if g.LiveOut[v] {
				continue
			}
			c, k := f.ClassOf(v), int(clusterOf[v])
			free[c][k] = append(free[c][k], assign[v])
		}
		for _, p := range byCycle[cycle] {
			in := g.Nodes[p.Node].Instr
			if in.Dst != ir.NoReg {
				if _, err := alloc(in.Dst); err != nil {
					return nil, err
				}
				end, hasUse := lastUse[in.Dst], true
				if _, ok := lastUse[in.Dst]; !ok {
					hasUse = false
				}
				switch {
				case g.LiveOut[in.Dst]:
					// Held to the end.
				case hasUse:
					releaseAt[end] = append(releaseAt[end], in.Dst)
				default:
					// Dead value: free immediately after its cycle.
					releaseAt[cycle+1] = append(releaseAt[cycle+1], in.Dst)
				}
			}
			out, err := rename(in)
			if err != nil {
				return nil, err
			}
			prog.Words[cycle] = append(prog.Words[cycle], out)
		}
	}
	for v := range g.LiveOut {
		if p, ok := assign[v]; ok {
			prog.OutMap[v] = p
		}
	}
	for c := range used {
		prog.RegsUsed[c] = len(used[c])
	}
	fillBlock(prog)
	return prog, nil
}

// ErrPressure reports that a schedule demands more registers than the file
// holds.
type ErrPressure struct {
	Class ir.Class
	Value string
}

func (e *ErrPressure) Error() string {
	return fmt.Sprintf("assign: out of %s registers allocating %s", e.Class, e.Value)
}

func fillBlock(p *Program) {
	b := p.Func.NewBlock("entry")
	for _, w := range p.Words {
		for _, in := range w {
			b.Append(in)
		}
	}
}

// Emit schedules the DAG and assigns registers, falling back to spill
// patching when the schedule's pressure exceeds the machine. It returns the
// program and the (pre-patch) schedule; the schedule is nil when the
// buffer-eviction fallback emitted sequentially instead.
func Emit(g *dag.Graph, m *machine.Config, opts sched.Options) (*Program, *sched.Schedule, error) {
	s, err := sched.List(g, m, opts)
	if err != nil {
		if errors.Is(err, sched.ErrBuffer) {
			// The block's worst-case buffer width exceeds the machine's
			// depth, so no buffer-blind order is safe: fall back to
			// sequential emission with memory eviction, the buffered
			// analogue of the register spill patching below.
			prog, perr := EmitWithBufferSpills(g, m)
			if perr != nil {
				return nil, nil, perr
			}
			return prog, nil, nil
		}
		return nil, nil, err
	}
	prog, err := Registers(s, m)
	if err == nil {
		return prog, s, nil
	}
	if _, ok := err.(*ErrPressure); !ok {
		return nil, nil, err
	}
	prog, err = EmitWithSpills(s, m)
	if err != nil {
		return nil, nil, err
	}
	return prog, s, nil
}
