package assign

import (
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

// FromSchedule emits a program from a schedule whose graph already uses
// physical registers (the postpass pipeline: register allocation ran before
// scheduling, so no assignment is needed). outMap carries the allocator's
// live-out locations and spills its spill count.
func FromSchedule(s *sched.Schedule, m *machine.Config, outMap map[ir.VReg]ir.VReg, spills int) *Program {
	g := s.Graph
	prog := &Program{
		Func:    g.Func,
		Machine: m,
		Words:   make([][]*ir.Instr, s.Cycles),
		Spills:  spills,
		OutMap:  map[ir.VReg]ir.VReg{},
	}
	used := [ir.NumClasses]map[ir.VReg]bool{}
	for c := range used {
		used[c] = map[ir.VReg]bool{}
	}
	for _, p := range s.Placements {
		in := g.Nodes[p.Node].Instr
		prog.Words[p.Cycle] = append(prog.Words[p.Cycle], in)
		for _, u := range in.Uses() {
			used[g.Func.ClassOf(u)][u] = true
		}
		if in.Dst != ir.NoReg {
			used[g.Func.ClassOf(in.Dst)][in.Dst] = true
		}
	}
	for orig, phys := range outMap {
		prog.OutMap[orig] = phys
	}
	for c := range used {
		prog.RegsUsed[c] = len(used[c])
	}
	return prog
}
