package reuse

import (
	"ursa/internal/dag"
	"ursa/internal/order"
)

// UpdateClosure derives the reuse structure of the graph after sequencing
// edges were added, given reach — the graph's updated node-reachability
// closure, typically maintained in place via order.Relation.AddClosureEdge.
// Sequencing adds no instructions and removes no uses, so the item set is
// unchanged and CanReuse_R can only gain pairs; the returned structure
// shares Items (and Kill, for register resources) with r and carries the
// recomputed Rel. The transitive reduction is not recomputed — it is needed
// only for rendering, never for measurement — so the result's Reduced is
// nil and the result must not be fed to candidate generation or Dot.
//
// For functional-unit resources the update always succeeds: CanReuse_FU is
// reachability restricted to the items. For register resources the kill
// selection is recomputed against the new closure first; added reachability
// can demote a use from maximal or shift the greedy minimum cover, and when
// the kill vector changes the old matching is no longer guaranteed to stay
// valid, so UpdateClosure reports ok=false and the caller must fall back to
// a full rebuild (the same fallback spill candidates always take, since
// they restructure values).
func (r *Reuse) UpdateClosure(g *dag.Graph, reach *order.Relation) (nr *Reuse, ok bool) {
	kill := r.Kill
	if r.IsReg {
		kill = SelectKills(g, r.Items, reach)
		for i := range kill {
			if kill[i] != r.Kill[i] {
				return nil, false
			}
		}
	}

	nr = &Reuse{
		Graph:  g,
		Items:  r.Items,
		Kill:   kill,
		IsReg:  r.IsReg,
		Class:  r.Class,
		byNode: r.byNode,
	}
	nr.Rel = order.NewRelation(len(r.Items))
	if r.IsReg {
		for i := range r.Items {
			k := kill[i]
			if k < 0 {
				continue
			}
			row := reach.Row(k)
			for j, b := range r.Items {
				if i != j && (k == b.Node || row.Has(b.Node)) {
					nr.Rel.Add(i, j)
				}
			}
		}
	} else {
		for i, a := range r.Items {
			row := reach.Row(a.Node)
			for j, b := range r.Items {
				if i != j && row.Has(b.Node) {
					nr.Rel.Add(i, j)
				}
			}
		}
	}
	return nr, true
}
