// Package reuse constructs the Reuse DAGs of paper §3: for each resource, a
// strict partial order CanReuse_R over the resource-holding items, where
// (a, b) ∈ CanReuse_R means no schedule can execute b while a's resource
// instance is still in use. Minimum chain decompositions of these orders
// yield the maximum resource requirements (Theorem 1 / Dilworth).
//
// Functional units: an FU is busy only while its instruction executes, so
// CanReuse_FU is exactly DAG reachability restricted to the instructions
// that run on that FU family (§3.2, non-pipelined machines).
//
// Registers: a register is busy from its defining instruction until the
// value's killing use executes. URSA assumes no specific schedule, so the
// kill is chosen to maximize worst-case requirements; choosing the kills is
// NP-complete (Theorem 2, reduction from minimum cover), approximated here
// by greedy minimum cover exactly as the paper prescribes.
package reuse

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/order"
)

// Item is one resource-holding entity.
//
// For a functional-unit resource an item is an instruction node. For a
// register resource an item is a value: a region-defined value (Node = its
// defining node) or a live-in value (Node = the graph root, Reg = the
// incoming register).
type Item struct {
	Node int     // producer node id in the dependence DAG
	Reg  ir.VReg // the value's register; NoReg for FU items
}

// Reuse is the reuse structure for one resource over one dependence DAG.
type Reuse struct {
	Graph *dag.Graph
	Items []Item

	// Rel is CanReuse_R over item indices (transitively closed).
	Rel *order.Relation
	// Reduced is Rel's transitive reduction: the Reuse_R DAG of Def. 4.
	Reduced *order.Relation
	// Kill maps item index -> killer node id in the graph (register
	// resources only; -1 means killed at the leaf / live-out).
	Kill []int
	// IsReg records whether this is a register-class structure (built by
	// Reg, with Class the register class) rather than a functional-unit
	// structure (built by FU). UpdateClosure needs the distinction: FU
	// orders follow reachability directly, register orders go through kill
	// selection.
	IsReg bool
	Class ir.Class

	byNode map[int]int // producer node -> item index (first item per node)
}

// ItemIndexByNode returns the item produced at the given node, or -1. For
// register resources the root node may produce several live-in items; the
// lowest-indexed one is returned.
func (r *Reuse) ItemIndexByNode(node int) int {
	if i, ok := r.byNode[node]; ok {
		return i
	}
	return -1
}

// NumItems returns the number of resource-holding items.
func (r *Reuse) NumItems() int { return len(r.Items) }

// String summarizes the reuse structure.
func (r *Reuse) String() string {
	return fmt.Sprintf("reuse{%d items, %d pairs}", len(r.Items), r.Rel.Pairs())
}

// FU builds the Reuse DAG for a functional-unit family: the instructions
// selected by member (e.g. all instructions on a homogeneous machine, or
// only the memory ops for a load/store unit).
func FU(g *dag.Graph, member func(*dag.Node) bool) *Reuse {
	r := &Reuse{Graph: g, byNode: make(map[int]int)}
	for _, n := range g.Nodes {
		if n.IsPseudo() || !member(n) {
			continue
		}
		r.byNode[n.ID] = len(r.Items)
		r.Items = append(r.Items, Item{Node: n.ID})
	}
	reach := g.Reach()
	r.Rel = order.NewRelation(len(r.Items))
	for i, a := range r.Items {
		row := reach.Row(a.Node)
		for j, b := range r.Items {
			if i != j && row.Has(b.Node) {
				r.Rel.Add(i, j)
			}
		}
	}
	r.Reduced = r.Rel.TransitiveReduction()
	return r
}

// AllFUs is the member predicate selecting every instruction: the paper's
// homogeneous-FU model.
func AllFUs(n *dag.Node) bool { return true }

// KindFUs returns a member predicate selecting instructions of one
// functional-unit kind.
func KindFUs(k ir.Kind) func(*dag.Node) bool {
	return func(n *dag.Node) bool { return n.Instr != nil && n.Instr.Kind() == k }
}

// Reg builds the Reuse DAG for the register class c. Items are the values
// of that class: region-defined values plus live-in registers (produced at
// the root, occupying a register from region entry until their kill).
// Values in g.LiveOut are killed at the leaf and hence never reusable.
func Reg(g *dag.Graph, c ir.Class) *Reuse {
	f := g.Func
	return Values(g, c,
		func(n *dag.Node) bool { return f.ClassOf(n.Instr.Dst) == c },
		func(v ir.VReg) bool { return f.ClassOf(v) == c })
}

// Values builds the Reuse DAG for an arbitrary value-holding resource:
// region-defined values selected by include (called only for nodes with a
// destination) plus, when liveIn is non-nil, the used-but-region-undefined
// registers liveIn selects, produced at the root. Reg is the register-class
// instance; per-cluster register files (values defined on one cluster) and
// exposed-datapath output buffers (non-live-out values of one producer FU
// class, both register classes) are narrower or skew value sets over the
// same worst-case kill-selection machinery — a buffer slot, like a
// register, frees when the value's last (kill) reader issues, so
// CanReuse_Reg's structure transfers unchanged. The class tag c labels the
// structure for incremental updates; value sets spanning classes may pass
// any class.
func Values(g *dag.Graph, c ir.Class, include func(n *dag.Node) bool, liveIn func(v ir.VReg) bool) *Reuse {
	r := &Reuse{Graph: g, IsReg: true, Class: c, byNode: make(map[int]int)}

	// Region-defined values. The defined set tracks every definition, not
	// just the included ones: a region-defined value excluded by the filter
	// must not come back as a live-in.
	defined := make(map[ir.VReg]bool)
	for _, n := range g.Nodes {
		if n.Instr == nil || n.Instr.Dst == ir.NoReg {
			continue
		}
		defined[n.Instr.Dst] = true
		if !include(n) {
			continue
		}
		idx := len(r.Items)
		r.Items = append(r.Items, Item{Node: n.ID, Reg: n.Instr.Dst})
		if _, ok := r.byNode[n.ID]; !ok {
			r.byNode[n.ID] = idx
		}
	}
	// Live-in values: used but not defined in the region.
	liveInSet := make(map[ir.VReg]bool)
	if liveIn != nil {
		for _, n := range g.Nodes {
			if n.Instr == nil {
				continue
			}
			for _, u := range n.Instr.Uses() {
				if !defined[u] && liveIn(u) {
					liveInSet[u] = true
				}
			}
		}
	}
	liveInRegs := make([]ir.VReg, 0, len(liveInSet))
	for v := range liveInSet {
		liveInRegs = append(liveInRegs, v)
	}
	sort.Slice(liveInRegs, func(i, j int) bool { return liveInRegs[i] < liveInRegs[j] })
	for _, v := range liveInRegs {
		idx := len(r.Items)
		r.Items = append(r.Items, Item{Node: g.Root, Reg: v})
		if _, ok := r.byNode[g.Root]; !ok {
			r.byNode[g.Root] = idx
		}
	}

	reach := g.Reach()
	r.Kill = SelectKills(g, r.Items, reach)

	// CanReuse_Reg: (a, b) iff Kill(a) == producer(b) or Kill(a) reaches
	// producer(b). Killed-at-leaf values relate to nothing.
	r.Rel = order.NewRelation(len(r.Items))
	for i := range r.Items {
		k := r.Kill[i]
		if k < 0 {
			continue
		}
		for j, b := range r.Items {
			if i == j {
				continue
			}
			if k == b.Node || reach.Has(k, b.Node) {
				r.Rel.Add(i, j)
			}
		}
	}
	r.Reduced = r.Rel.TransitiveReduction()
	return r
}

// SelectKills chooses, for every value item, the use node assumed to kill it
// under the worst-case schedule. Candidates are the value's maximal uses
// (uses with no other use of the same value downstream); live-out values and
// values with no uses are killed at the leaf (-1). Kills are chosen by
// greedy minimum cover — pick the node that kills the most still-unkilled
// values — maximizing the number of dependents that can be simultaneously
// live with their ancestors (paper §3.2). Ties prefer deeper nodes, then
// lower node ids, keeping results deterministic.
func SelectKills(g *dag.Graph, items []Item, reach *order.Relation) []int {
	kill := make([]int, len(items))
	cands := make([][]int, len(items)) // per item: candidate killer nodes
	candOf := make(map[int][]int)      // killer node -> item indices it can kill

	for i, it := range items {
		kill[i] = -1
		if g.LiveOut[it.Reg] {
			continue // dies at leaf by definition
		}
		uses := g.UseNodes(it.Reg)
		var maximal []int
		for _, u := range uses {
			isMax := true
			for _, w := range uses {
				if w != u && reach.Has(u, w) {
					isMax = false
					break
				}
			}
			if isMax {
				maximal = append(maximal, u)
			}
		}
		if len(maximal) == 0 {
			continue // no uses: holds its register to the leaf
		}
		cands[i] = maximal
		for _, u := range maximal {
			candOf[u] = append(candOf[u], i)
		}
	}

	depth := g.Depths()
	remaining := make(map[int]bool)
	for i := range items {
		if len(cands[i]) > 0 {
			remaining[i] = true
		}
	}
	for len(remaining) > 0 {
		// Pick the candidate killer covering the most remaining values.
		best, bestCover := -1, -1
		for u, is := range candOf {
			cover := 0
			for _, i := range is {
				if remaining[i] {
					cover++
				}
			}
			if cover == 0 {
				continue
			}
			if cover > bestCover ||
				(cover == bestCover && (depth[u] > depth[best] ||
					(depth[u] == depth[best] && u < best))) {
				best, bestCover = u, cover
			}
		}
		if best == -1 {
			break
		}
		for _, i := range candOf[best] {
			if remaining[i] {
				kill[i] = best
				delete(remaining, i)
			}
		}
		delete(candOf, best)
	}
	return kill
}

// Dot renders the Reuse DAG (the transitive reduction of CanReuse, Def. 4)
// in Graphviz format: one node per resource-holding item, labelled with its
// producer, one edge per reuse pair.
func (r *Reuse) Dot(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	f := r.Graph.Func
	for i, it := range r.Items {
		label := r.Graph.Nodes[it.Node].Name
		if it.Reg != ir.NoReg {
			label = f.NameOf(it.Reg)
			if it.Node == r.Graph.Root {
				label += " (live-in)"
			}
		}
		if r.Kill != nil && r.Kill[i] >= 0 {
			label += fmt.Sprintf("\\nkill: %s", r.Graph.Nodes[r.Kill[i]].Name)
		}
		fmt.Fprintf(&sb, "  i%d [label=\"%s\"];\n", i, label)
	}
	for a := 0; a < r.NumItems(); a++ {
		r.Reduced.Row(a).ForEach(func(b int) {
			fmt.Fprintf(&sb, "  i%d -> i%d;\n", a, b)
		})
	}
	sb.WriteString("}\n")
	return sb.String()
}
