package reuse

import (
	"math/rand"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/order"
)

func relEqual(a, b *order.Relation) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if !a.Row(i).SubsetOf(b.Row(i)) || !b.Row(i).SubsetOf(a.Row(i)) {
			return false
		}
	}
	return true
}

// addRandomSeqEdge adds one cycle-safe sequencing edge between instruction
// nodes and maintains the closure, reporting whether it found one.
func addRandomSeqEdge(rng *rand.Rand, g *dag.Graph, reach *order.Relation) bool {
	nodes := g.InstrNodes()
	for tries := 0; tries < 50; tries++ {
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		if a == b || g.HasEdge(a, b) || reach.Has(b, a) {
			continue
		}
		g.AddEdge(a, b, dag.EdgeSeq)
		reach.AddClosureEdge(a, b)
		return true
	}
	return false
}

// TestSelectKillsIntoMatchesSelectKills drives one reused scratch across many
// random graphs and edge insertions, requiring the pooled kill selection to
// reproduce SelectKills exactly.
func TestSelectKillsIntoMatchesSelectKills(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ks KillScratch
	for trial := 0; trial < 60; trial++ {
		f := randomBlock(rng, 4+rng.Intn(12))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := Reg(g, ir.ClassInt)
		reach := g.Reach()
		for step := 0; step < 3; step++ {
			want := SelectKills(g, r.Items, reach)
			ks.PrecomputeUses(g, r.Items)
			got := SelectKillsInto(g, r.Items, reach, g.Depths(), &ks)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d step %d: kill[%d] = %d, want %d",
						trial, step, i, got[i], want[i])
				}
			}
			if !addRandomSeqEdge(rng, g, reach) {
				break
			}
		}
	}
}

// TestUpdateClosureIntoMatchesUpdateClosure checks the pooled closure update
// against the allocating one: same ok verdict, and on success an identical
// relation and kill vector.
func TestUpdateClosureIntoMatchesUpdateClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var ks KillScratch
	for trial := 0; trial < 60; trial++ {
		f := randomBlock(rng, 4+rng.Intn(12))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, r := range []*Reuse{FU(g, AllFUs), Reg(g, ir.ClassInt)} {
			reach := g.Reach()
			if !addRandomSeqEdge(rng, g, reach) {
				continue
			}
			if r.IsReg {
				ks.PrecomputeUses(g, r.Items)
			}
			want, wantOK := r.UpdateClosure(g, reach)
			dst := &Reuse{Rel: order.NewRelation(r.NumItems())}
			gotOK := r.UpdateClosureInto(g, reach, g.Depths(), &ks, dst)
			if gotOK != wantOK {
				t.Fatalf("trial %d: ok = %v, want %v", trial, gotOK, wantOK)
			}
			if !wantOK {
				continue
			}
			if !relEqual(dst.Rel, want.Rel) {
				t.Fatalf("trial %d: relations differ", trial)
			}
			for i := range want.Kill {
				if dst.Kill[i] != want.Kill[i] {
					t.Fatalf("trial %d: kill[%d] differs", trial, i)
				}
			}
			// Edges added by both graphs mutate the shared g; rebuild for the
			// next resource so each starts from a consistent closure.
		}
	}
}
