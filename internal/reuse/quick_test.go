package reuse_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/measure"
	"ursa/internal/order"
	"ursa/internal/reuse"
)

// blockGen produces random closed straight-line blocks for quick checks.
type blockGen struct {
	g *dag.Graph
}

// Generate implements quick.Generator.
func (blockGen) Generate(rand *rand.Rand, size int) reflect.Value {
	f := ir.NewFunc("q")
	b := f.NewBlock("entry")
	var vals []ir.VReg
	n := 3 + rand.Intn(10)
	for i := 0; i < n; i++ {
		dst := f.NewReg("", ir.ClassInt)
		switch {
		case len(vals) == 0 || rand.Intn(4) == 0:
			b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i)})
		case rand.Intn(3) == 0:
			a := vals[rand.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.AddI, Dst: dst, Args: []ir.VReg{a}, Imm: 1})
		default:
			a := vals[rand.Intn(len(vals))]
			c := vals[rand.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.Add, Dst: dst, Args: []ir.VReg{a, c}})
		}
		vals = append(vals, dst)
	}
	g, err := dag.Build(b)
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(blockGen{g})
}

// TestQuickWidthEqualsDilworth: the matching width equals the brute-force
// maximum antichain for both resources on arbitrary random blocks.
func TestQuickWidthEqualsDilworth(t *testing.T) {
	f := func(bg blockGen) bool {
		for _, r := range []*reuse.Reuse{reuse.FU(bg.g, reuse.AllFUs), reuse.Reg(bg.g, ir.ClassInt)} {
			res := measure.Measure(r)
			if res.Width != len(order.MaxAntichainBrute(r.Rel, nil)) {
				return false
			}
			if order.ValidateDecomposition(r.Rel, res.Chains) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRegWidthBounds: register width is at least 1 and at most the
// item count, and the FU width is bounded by the instruction count.
func TestQuickRegWidthBounds(t *testing.T) {
	f := func(bg blockGen) bool {
		r := reuse.Reg(bg.g, ir.ClassInt)
		w := measure.Measure(r).Width
		if w < 1 || w > r.NumItems() {
			return false
		}
		fu := reuse.FU(bg.g, reuse.AllFUs)
		wf := measure.Measure(fu).Width
		return wf >= 1 && wf <= len(bg.g.InstrNodes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickSequencingMonotone: adding a random sequence edge never
// increases the FU width (§5) — the edge only adds reachability pairs to
// CanReuse_FU, so antichains can only shrink. The register width carries
// no such theorem: it is measured over the heuristic Kill() selection
// (greedy minimum cover of an NP-complete problem, Thm. 2), and a new
// edge can shift the selected kills to a wider relation. For registers we
// check the sound bounds only.
func TestQuickSequencingMonotone(t *testing.T) {
	f := func(bg blockGen, a, b uint8) bool {
		g := bg.g
		nodes := g.InstrNodes()
		x := nodes[int(a)%len(nodes)]
		y := nodes[int(b)%len(nodes)]
		if x == y || g.HasEdge(x, y) || g.HasPath(y, x) {
			return true // not a legal new edge; trivially fine
		}
		fu0 := measure.Measure(reuse.FU(g, reuse.AllFUs)).Width
		cl := g.Clone()
		cl.AddEdge(x, y, dag.EdgeSeq)
		fu1 := measure.Measure(reuse.FU(cl, reuse.AllFUs)).Width
		if fu1 > fu0 {
			return false
		}
		r := reuse.Reg(cl, ir.ClassInt)
		rg1 := measure.Measure(r).Width
		return rg1 >= 1 && rg1 <= r.NumItems()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
