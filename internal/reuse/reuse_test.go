package reuse

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/order"
)

// paperSrc is Figure 2 of the paper: constants are immediates, so the
// region's values are exactly the 11 nodes A..K.
const paperSrc = `
func paper {
entry:
	v = load V[0]       ; A
	w = muli v, 2       ; B
	x = muli v, 3       ; C
	y = addi v, 5       ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = muli y, 2      ; G
	t4 = divi y, 3      ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
}
`

func paperGraph(t testing.TB) *dag.Graph {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func itemByReg(r *Reuse, name string) int {
	f := r.Graph.Func
	for i, it := range r.Items {
		if it.Reg != ir.NoReg && f.NameOf(it.Reg) == name {
			return i
		}
	}
	return -1
}

func TestFUReuseIsReachability(t *testing.T) {
	g := paperGraph(t)
	r := FU(g, AllFUs)
	if r.NumItems() != 11 {
		t.Fatalf("items = %d, want 11", r.NumItems())
	}
	if err := r.Rel.IsStrictPartialOrder(); err != nil {
		t.Fatalf("CanReuse_FU not a strict partial order: %v", err)
	}
	// A reaches everything; G and H independent.
	a := r.ItemIndexByNode(g.DefNode(g.Func.Reg("v")))
	gg := r.ItemIndexByNode(g.DefNode(g.Func.Reg("t3")))
	hh := r.ItemIndexByNode(g.DefNode(g.Func.Reg("t4")))
	if !r.Rel.Has(a, gg) || !r.Rel.Has(a, hh) {
		t.Error("A must relate to G and H")
	}
	if r.Rel.Comparable(gg, hh) {
		t.Error("G and H must be incomparable")
	}
	// Width by brute force must be 4, the paper's FU requirement.
	if w := len(order.MaxAntichainBrute(r.Rel, nil)); w != 4 {
		t.Errorf("FU width = %d, want 4", w)
	}
}

func TestKindFUsSelectsSubset(t *testing.T) {
	g := paperGraph(t)
	r := FU(g, KindFUs(ir.KindMem))
	if r.NumItems() != 1 { // only the load
		t.Errorf("mem items = %d, want 1", r.NumItems())
	}
	r = FU(g, KindFUs(ir.KindIArith))
	if r.NumItems() != 10 {
		t.Errorf("ialu items = %d, want 10", r.NumItems())
	}
}

func TestRegReusePaperExample(t *testing.T) {
	g := paperGraph(t)
	r := Reg(g, ir.ClassInt)
	if r.NumItems() != 11 {
		t.Fatalf("items = %d, want 11", r.NumItems())
	}
	if err := r.Rel.IsStrictPartialOrder(); err != nil {
		t.Fatalf("CanReuse_Reg not a strict partial order: %v", err)
	}
	// The paper's headline number: five registers.
	if w := len(order.MaxAntichainBrute(r.Rel, nil)); w != 5 {
		t.Errorf("register width = %d, want 5", w)
	}
	// z is live-out: it must relate to nothing (never reusable).
	z := itemByReg(r, "z")
	if got := r.Rel.Row(z).Count(); got != 0 {
		t.Errorf("live-out z has %d reuse successors, want 0", got)
	}
	if r.Kill[z] != -1 {
		t.Errorf("Kill(z) = %d, want -1 (leaf)", r.Kill[z])
	}
}

func TestKillMinimumCoverHardCase(t *testing.T) {
	// Paper §3.2: in sub-DAG {B,C,E,F}, the minimum cover picks one node
	// to kill both B and C, so CanReuse relates B and C to that node only,
	// and the sub-DAG needs three allocation chains.
	g := paperGraph(t)
	r := Reg(g, ir.ClassInt)
	w := itemByReg(r, "w") // B's value
	x := itemByReg(r, "x") // C's value
	if r.Kill[w] != r.Kill[x] {
		t.Errorf("Kill(w)=%d, Kill(x)=%d: minimum cover must share the killer",
			r.Kill[w], r.Kill[x])
	}
	killer := r.Kill[w]
	e := g.DefNode(g.Func.Reg("t1"))
	f := g.DefNode(g.Func.Reg("t2"))
	if killer != e && killer != f {
		t.Errorf("shared killer = node %d, want E (%d) or F (%d)", killer, e, f)
	}
	// Width of the {w, x, t1, t2} sub-order must be 3 (paper).
	sub := []int{w, x, itemByReg(r, "t1"), itemByReg(r, "t2")}
	if got := len(order.MaxAntichainBrute(r.Rel, sub)); got != 3 {
		t.Errorf("sub-DAG width = %d, want 3", got)
	}
}

func TestKillPrefersMaximalUses(t *testing.T) {
	// d's uses are u1 and u2 with u1 -> u2: only u2 can be the kill.
	f := ir.MustParse(`
entry:
	d = const 1
	u1 = addi d, 1
	u2 = add u1, d
	store O[0], u2
`)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := Reg(g, ir.ClassInt)
	d := itemByReg(r, "d")
	u2 := g.DefNode(f.Reg("u2"))
	if r.Kill[d] != u2 {
		t.Errorf("Kill(d) = node %d, want u2 (%d)", r.Kill[d], u2)
	}
}

func TestLiveInRegistersAreItems(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = add p, q
	b = add a, p
	store O[0], b
`)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := Reg(g, ir.ClassInt)
	if r.NumItems() != 4 { // a, b, p, q
		t.Fatalf("items = %d, want 4 (a, b + live-ins p, q)", r.NumItems())
	}
	p := itemByReg(r, "p")
	q := itemByReg(r, "q")
	if r.Items[p].Node != g.Root || r.Items[q].Node != g.Root {
		t.Error("live-in items must be produced at the root")
	}
	// Live-ins are mutually incomparable (each pins its own register).
	if r.Rel.Comparable(p, q) {
		t.Error("live-in values must be incomparable")
	}
	// p is killed at b (its maximal use), so p relates to nothing after b
	// except... b itself defines a value; q's kill is a.
	a := itemByReg(r, "a")
	if !r.Rel.Has(q, a) && r.Kill[q] != g.DefNode(f.Reg("a")) {
		t.Errorf("q should be killed at a and reusable there")
	}
}

func TestFPClassSeparation(t *testing.T) {
	f := ir.MustParse(`
entry:
	i = const 1
	x = constf 2.0
	y = fmuli x, 3
	j = addi i, 1
	store O[0], j
	storef P[0], y
`)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ri := Reg(g, ir.ClassInt)
	rf := Reg(g, ir.ClassFP)
	if ri.NumItems() != 2 {
		t.Errorf("int items = %d, want 2 (i, j)", ri.NumItems())
	}
	if rf.NumItems() != 2 {
		t.Errorf("fp items = %d, want 2 (x, y)", rf.NumItems())
	}
}

// randomBlock emits a random straight-line single-assignment block with n
// value-producing instructions.
func randomBlock(rng *rand.Rand, n int) *ir.Func {
	f := ir.NewFunc("rand")
	b := f.NewBlock("entry")
	var vals []ir.VReg
	for i := 0; i < n; i++ {
		dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
		switch {
		case len(vals) == 0 || rng.Intn(4) == 0:
			b.Append(&ir.Instr{Op: ir.ConstI, Dst: dst, Imm: int64(rng.Intn(100))})
		case rng.Intn(3) == 0:
			a := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.AddI, Dst: dst, Args: []ir.VReg{a}, Imm: int64(rng.Intn(10))})
		default:
			a := vals[rng.Intn(len(vals))]
			c := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.Add, Dst: dst, Args: []ir.VReg{a, c}})
		}
		vals = append(vals, dst)
	}
	return f
}

func TestRegReuseIsPartialOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		f := randomBlock(rng, 4+rng.Intn(8))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, r := range []*Reuse{Reg(g, ir.ClassInt), FU(g, AllFUs)} {
			if err := r.Rel.IsStrictPartialOrder(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			red := r.Reduced.TransitiveClosure()
			for a := 0; a < r.NumItems(); a++ {
				for b := 0; b < r.NumItems(); b++ {
					if red.Has(a, b) != r.Rel.Has(a, b) {
						t.Fatalf("trial %d: reduction loses information", trial)
					}
				}
			}
		}
	}
}

func TestKillNeverPrecedesProducer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		f := randomBlock(rng, 4+rng.Intn(10))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		reach := g.Reach()
		r := Reg(g, ir.ClassInt)
		for i, it := range r.Items {
			k := r.Kill[i]
			if k < 0 {
				continue
			}
			if !reach.Has(it.Node, k) {
				t.Fatalf("trial %d: kill node %d does not follow producer %d", trial, k, it.Node)
			}
		}
	}
}

func TestReuseDot(t *testing.T) {
	g := paperGraph(t)
	dot := Reg(g, ir.ClassInt).Dot("paper")
	for _, want := range []string{"digraph", "kill:", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Reuse DOT missing %q", want)
		}
	}
	fuDot := FU(g, AllFUs).Dot("paper")
	if !strings.Contains(fuDot, "digraph") {
		t.Error("FU DOT malformed")
	}
}
