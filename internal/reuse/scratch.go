package reuse

import (
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/order"
)

// KillScratch holds the reusable state behind SelectKillsInto and
// UpdateClosureInto: per-value use lists precomputed once per reduction
// iteration, plus the kill-selection working buffers that SelectKills would
// otherwise allocate per candidate. One scratch belongs to one evaluator
// worker; the zero value is ready to use.
type KillScratch struct {
	// uses[i] lists the nodes reading item i's register, in id order —
	// filled by PrecomputeUses. Sequencing edges never change uses, so one
	// precomputation serves every seq candidate of an iteration.
	uses [][]int

	useArena []int   // backing storage for uses
	byReg    [][]int // register -> use-node list, reused across calls

	kill      []int
	maximal   []int
	candNode  []int   // candidate killer node ids, in first-seen order
	candItems [][]int // per candidate killer: item indices it can kill
	candIdx   []int   // node id -> index into candNode+1, 0 = absent
	candDead  []bool  // candidate killer consumed by the greedy cover
	remaining []bool
}

// PrecomputeUses fills the scratch's per-item use lists for the given item
// set: the same lists g.UseNodes returns, computed in one pass over the
// instructions instead of one pass per item.
func (ks *KillScratch) PrecomputeUses(g *dag.Graph, items []Item) {
	nr := g.Func.NumRegs()
	if cap(ks.byReg) < nr {
		ks.byReg = make([][]int, nr)
	}
	ks.byReg = ks.byReg[:nr]
	for i := range ks.byReg {
		ks.byReg[i] = ks.byReg[i][:0]
	}
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		for _, u := range n.Instr.Uses() {
			if u <= 0 || int(u) >= nr {
				continue
			}
			l := ks.byReg[u]
			// A node reading the register through several operands counts
			// once, matching UseNodes' per-node dedupe.
			if len(l) > 0 && l[len(l)-1] == n.ID {
				continue
			}
			ks.byReg[u] = append(l, n.ID)
		}
	}
	if cap(ks.uses) < len(items) {
		ks.uses = make([][]int, len(items))
	}
	ks.uses = ks.uses[:len(items)]
	for i, it := range items {
		if it.Reg == ir.NoReg {
			ks.uses[i] = nil
			continue
		}
		ks.uses[i] = ks.byReg[it.Reg]
	}
}

// SelectKillsInto is SelectKills with every allocation hoisted into the
// scratch: use lists come from PrecomputeUses, node depths from the caller
// (depth must equal g.Depths() for the current graph), and the greedy
// minimum cover runs over slice-backed candidate tables. The returned slice
// is owned by the scratch — valid until the next call — and its contents are
// identical to SelectKills' for the same inputs: the cover's
// (cover, depth, node-id) selection key is a total order, so replacing map
// iteration with slice iteration cannot change any pick.
func SelectKillsInto(g *dag.Graph, items []Item, reach *order.Relation, depth []int, ks *KillScratch) []int {
	n := len(items)
	ks.kill = growInts(ks.kill, n)
	kill := ks.kill
	nn := g.NumNodes()
	ks.candIdx = growInts(ks.candIdx, nn)
	candIdx := ks.candIdx
	clear(candIdx)
	ks.candNode = ks.candNode[:0]
	ks.remaining = growBools(ks.remaining, n)
	remaining := ks.remaining
	nRemaining := 0
	for i := range ks.candItems {
		ks.candItems[i] = ks.candItems[i][:0]
	}

	for i, it := range items {
		kill[i] = -1
		remaining[i] = false
		if g.LiveOut[it.Reg] {
			continue
		}
		uses := ks.uses[i]
		maximal := ks.maximal[:0]
		for _, u := range uses {
			isMax := true
			for _, w := range uses {
				if w != u && reach.Has(u, w) {
					isMax = false
					break
				}
			}
			if isMax {
				maximal = append(maximal, u)
			}
		}
		ks.maximal = maximal
		if len(maximal) == 0 {
			continue
		}
		remaining[i] = true
		nRemaining++
		for _, u := range maximal {
			ci := candIdx[u] - 1
			if ci < 0 {
				ci = len(ks.candNode)
				candIdx[u] = ci + 1
				ks.candNode = append(ks.candNode, u)
				if ci == len(ks.candItems) {
					ks.candItems = append(ks.candItems, nil)
				}
			}
			ks.candItems[ci] = append(ks.candItems[ci], i)
		}
	}

	ks.candDead = growBools(ks.candDead, len(ks.candNode))
	dead := ks.candDead
	for i := range dead {
		dead[i] = false
	}
	for nRemaining > 0 {
		best, bestCover := -1, -1
		for ci, u := range ks.candNode {
			if dead[ci] {
				continue
			}
			cover := 0
			for _, i := range ks.candItems[ci] {
				if remaining[i] {
					cover++
				}
			}
			if cover == 0 {
				continue
			}
			if cover > bestCover ||
				(cover == bestCover && (depth[u] > depth[best] ||
					(depth[u] == depth[best] && u < best))) {
				best, bestCover = u, cover
			}
		}
		if best == -1 {
			break
		}
		bi := candIdx[best] - 1
		for _, i := range ks.candItems[bi] {
			if remaining[i] {
				kill[i] = best
				remaining[i] = false
				nRemaining--
			}
		}
		dead[bi] = true
	}
	return kill
}

// UpdateClosureInto is UpdateClosure writing into caller-owned storage: dst
// receives the updated structure and dst.Rel must already hold a cleared
// relation over len(r.Items) items (the evaluator keeps one per worker and
// Resets it between candidates). depth must equal g.Depths() for the current
// graph; the scratch must have PrecomputeUses run for this iteration's item
// set. Reports false exactly when UpdateClosure would — the kill vector
// shifted and the caller must fall back to a full rebuild.
func (r *Reuse) UpdateClosureInto(g *dag.Graph, reach *order.Relation, depth []int, ks *KillScratch, dst *Reuse) bool {
	if r.IsReg {
		kill := SelectKillsInto(g, r.Items, reach, depth, ks)
		for i := range kill {
			if kill[i] != r.Kill[i] {
				return false
			}
		}
	}

	rel := dst.Rel
	*dst = Reuse{
		Graph:  g,
		Items:  r.Items,
		Rel:    rel,
		Kill:   r.Kill,
		IsReg:  r.IsReg,
		Class:  r.Class,
		byNode: r.byNode,
	}
	if r.IsReg {
		for i := range r.Items {
			k := r.Kill[i]
			if k < 0 {
				continue
			}
			row := reach.Row(k)
			for j, b := range r.Items {
				if i != j && (k == b.Node || row.Has(b.Node)) {
					rel.Add(i, j)
				}
			}
		}
	} else {
		for i, a := range r.Items {
			row := reach.Row(a.Node)
			for j, b := range r.Items {
				if i != j && row.Has(b.Node) {
					rel.Add(i, j)
				}
			}
		}
	}
	return true
}

// growInts returns a length-n int slice reusing s's storage when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growBools returns a length-n bool slice reusing s's storage when possible.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
