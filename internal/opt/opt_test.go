package opt

import (
	"math/rand"
	"testing"

	"ursa/internal/ir"
	"ursa/internal/workload"
)

func TestConstantFolding(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = const 6
	b = const 7
	c = mul a, b
	d = addi c, 1
	store O[0], d
`)
	st := Block(f.Blocks[0])
	if st.Folded < 2 {
		t.Errorf("folded = %d, want >= 2", st.Folded)
	}
	// After folding + DCE only the final constant and the store remain.
	if got := len(f.Blocks[0].Instrs); got != 2 {
		t.Errorf("instrs = %d, want 2:\n%s", got, f.String())
	}
	run := ir.NewState()
	if _, err := run.Run(f, 100); err != nil {
		t.Fatal(err)
	}
	if got := run.Mem[ir.Addr{Sym: "O"}].Int(); got != 43 {
		t.Errorf("O[0] = %d, want 43", got)
	}
}

func TestCopyPropagation(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	b = mov a
	c = addi b, 1
	store O[0], c
`)
	st := Block(f.Blocks[0])
	if st.CopyProp == 0 {
		t.Error("no copies propagated")
	}
	if st.DCE == 0 {
		t.Error("dead mov not removed")
	}
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.Mov {
			t.Error("mov survived")
		}
	}
}

func TestCSEPureAndCommutative(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	b = load A[1]
	x = add a, b
	y = add b, a
	z = mul x, y
	store O[0], z
`)
	st := Block(f.Blocks[0])
	if st.CSE == 0 {
		t.Error("commutative duplicate not eliminated")
	}
	adds := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.Add {
			adds++
		}
	}
	if adds != 1 {
		t.Errorf("adds = %d, want 1", adds)
	}
}

func TestCSELoadsRespectStores(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	b = load A[0]
	store A[0], b
	c = load A[0]
	d = load B[0]
	store O[0], a
	store O[1], c
	store O[2], d
`)
	st := Block(f.Blocks[0])
	if st.CSE != 1 {
		t.Errorf("CSE = %d, want exactly 1 (only the pre-store duplicate)", st.CSE)
	}
	loads := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.IsLoad() {
			loads++
		}
	}
	if loads != 3 { // A[0] once, A[0] after the store, B[0]
		t.Errorf("loads = %d, want 3", loads)
	}
}

func TestDCEKeepsLiveOuts(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	b = addi a, 1
`)
	// b is defined-but-unused: the region's live-out. It must survive.
	st := Block(f.Blocks[0])
	if st.DCE != 0 {
		t.Errorf("DCE removed %d instructions from a fully live block", st.DCE)
	}
	if len(f.Blocks[0].Instrs) != 2 {
		t.Error("live-out computation removed")
	}
}

// TestOptPreservesSemanticsRandom: optimized random blocks compute the same
// memory state as the originals for random inputs.
func TestOptPreservesSemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		f := workload.RandomBlock(rng, 8+rng.Intn(24), 0.4)
		init := workload.RandomInit(rng.Int63())

		ref := init.Clone()
		for _, in := range f.Blocks[0].Instrs {
			ref.Exec(f, in)
		}

		stats := Func(f)
		got := init.Clone()
		for _, in := range f.Blocks[0].Instrs {
			got.Exec(f, in)
		}
		for addr, want := range ref.Mem {
			if got.Mem[addr] != want {
				t.Fatalf("trial %d (%s): mem %v = %d, want %d",
					trial, stats.String(), addr, got.Mem[addr].Int(), want.Int())
			}
		}
		if err := ir.VerifySSA(f.Blocks[0]); err != nil {
			t.Fatalf("trial %d: optimized block not SSA: %v", trial, err)
		}
	}
}

// TestOptShrinksKernels: the kernel suite must not grow, and at least some
// kernels must shrink (the frontend emits redundant per-use loads that CSE
// folds away).
func TestOptShrinksKernels(t *testing.T) {
	shrunk := 0
	for _, k := range workload.Kernels() {
		u, err := k.Unit(2)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		count := func() int {
			n := 0
			for _, b := range u.Func.Blocks {
				n += len(b.Instrs)
			}
			return n
		}
		before := count()
		stats := Func(u.Func)
		after := count()
		if after > before {
			t.Errorf("%s: grew %d -> %d", k.Name, before, after)
		}
		if after < before {
			shrunk++
		}
		// Still runs correctly.
		ref := k.State(3)
		if _, err := ref.Run(u.Func, 10_000_000); err != nil {
			t.Fatalf("%s after opt (%s): %v", k.Name, stats.String(), err)
		}
	}
	if shrunk == 0 {
		t.Error("no kernel shrank")
	}
}

func TestAlgebraicSimplification(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	b = addi a, 0
	c = muli b, 8
	d = muli c, 1
	e = divi d, 1
	g = xori e, 0
	z = muli g, 0
	store O[0], g
	store O[1], z
`)
	st := Block(f.Blocks[0])
	if st.Simplify < 5 {
		t.Errorf("simplified = %d, want >= 5\n%s", st.Simplify, f.String())
	}
	// x*8 must have become a shift.
	hasShift := false
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.ShlI && in.Imm == 3 {
			hasShift = true
		}
		if in.Op == ir.Mov {
			t.Error("mov survived copy propagation")
		}
	}
	if !hasShift {
		t.Errorf("muli x,8 not strength-reduced:\n%s", f.String())
	}
	// Semantics: O[0] = A[0]*8, O[1] = 0.
	run := ir.NewState()
	run.StoreInt("A", 0, 5)
	if _, err := run.Run(f, 100); err != nil {
		t.Fatal(err)
	}
	if got := run.Mem[ir.Addr{Sym: "O", Off: 0}].Int(); got != 40 {
		t.Errorf("O[0] = %d, want 40", got)
	}
	if got := run.Mem[ir.Addr{Sym: "O", Off: 1}].Int(); got != 0 {
		t.Errorf("O[1] = %d, want 0", got)
	}
}
