// Package opt implements the block-local scalar optimizations a 1990s
// trace-scheduling compiler would run before allocation: constant folding,
// copy propagation, common subexpression elimination (with memory epochs so
// loads are only merged when no possibly-aliasing store intervenes), and
// dead code elimination. Cleaner blocks give URSA smaller DAGs and more
// honest resource measurements; all passes preserve semantics exactly,
// which the tests check against the interpreter.
package opt

import (
	"fmt"
	"strings"

	"ursa/internal/ir"
)

// Stats counts the rewrites each pass performed.
type Stats struct {
	Folded   int // instructions replaced by constants
	Simplify int // algebraic identities and strength reductions
	CopyProp int // moves forwarded
	CSE      int // redundant pure instructions removed
	DCE      int // dead instructions removed
}

// Add accumulates another run's counts.
func (s *Stats) Add(o Stats) {
	s.Folded += o.Folded
	s.Simplify += o.Simplify
	s.CopyProp += o.CopyProp
	s.CSE += o.CSE
	s.DCE += o.DCE
}

// Total returns the number of rewrites.
func (s *Stats) Total() int { return s.Folded + s.Simplify + s.CopyProp + s.CSE + s.DCE }

// String renders the counts.
func (s *Stats) String() string {
	return fmt.Sprintf("fold=%d simp=%d copy=%d cse=%d dce=%d",
		s.Folded, s.Simplify, s.CopyProp, s.CSE, s.DCE)
}

// Func optimizes every block of a function in place and returns the
// combined counts.
func Func(f *ir.Func) Stats {
	var total Stats
	for _, b := range f.Blocks {
		total.Add(Block(b))
	}
	return total
}

// Block optimizes one straight-line single-assignment block in place,
// iterating the passes to a fixed point. Values that were live-out on
// entry (defined but never used, the region convention) are preserved.
func Block(b *ir.Block) Stats {
	var total Stats
	liveOut := liveOutSet(b)
	for pass := 0; pass < 8; pass++ {
		var s Stats
		s.Folded = foldConstants(b)
		s.Simplify = simplifyAlgebraic(b)
		s.CopyProp = propagateCopies(b)
		s.CSE = eliminateCommon(b)
		s.DCE = eliminateDead(b, liveOut)
		total.Add(s)
		if s.Total() == 0 {
			break
		}
	}
	b.Renumber()
	return total
}

func liveOutSet(b *ir.Block) map[ir.VReg]bool {
	used := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	lo := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		if in.Dst != ir.NoReg && !used[in.Dst] {
			lo[in.Dst] = true
		}
	}
	return lo
}

// foldConstants replaces instructions whose operands are all known
// constants with a single constant materialization, evaluating through the
// interpreter so folding can never disagree with execution.
func foldConstants(b *ir.Block) int {
	f := b.Func
	known := map[ir.VReg]ir.Word{}
	count := 0
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.ConstI, ir.ConstF:
			st := &ir.State{Regs: map[ir.VReg]ir.Word{}, Mem: map[ir.Addr]ir.Word{}}
			st.Exec(f, in)
			known[in.Dst] = st.Regs[in.Dst]
			continue
		}
		if in.Dst == ir.NoReg || in.IsMem() || in.IsBranch() {
			continue
		}
		allKnown := len(in.Uses()) > 0
		for _, u := range in.Uses() {
			if _, ok := known[u]; !ok {
				allKnown = false
				break
			}
		}
		if !allKnown {
			continue
		}
		st := &ir.State{Regs: map[ir.VReg]ir.Word{}, Mem: map[ir.Addr]ir.Word{}}
		for _, u := range in.Uses() {
			st.Regs[u] = known[u]
		}
		st.Exec(f, in)
		val := st.Regs[in.Dst]
		known[in.Dst] = val
		if f.ClassOf(in.Dst) == ir.ClassFP {
			*in = ir.Instr{ID: in.ID, Op: ir.ConstF, Dst: in.Dst, FImm: val.Float()}
		} else {
			*in = ir.Instr{ID: in.ID, Op: ir.ConstI, Dst: in.Dst, Imm: val.Int()}
		}
		count++
	}
	return count
}

// propagateCopies rewires uses of `dst = mov src` to src directly.
func propagateCopies(b *ir.Block) int {
	alias := map[ir.VReg]ir.VReg{}
	resolve := func(v ir.VReg) ir.VReg {
		for {
			nv, ok := alias[v]
			if !ok {
				return v
			}
			v = nv
		}
	}
	count := 0
	for _, in := range b.Instrs {
		for i, a := range in.Args {
			if r := resolve(a); r != a {
				in.Args[i] = r
				count++
			}
		}
		if in.Index != ir.NoReg {
			if r := resolve(in.Index); r != in.Index {
				in.Index = r
				count++
			}
		}
		if in.Op == ir.Mov {
			alias[in.Dst] = in.Args[0]
		}
	}
	return count
}

// cseKey identifies a pure computation; loads embed a per-symbol memory
// epoch so they only merge when no possibly-aliasing store intervened.
func cseKey(f *ir.Func, in *ir.Instr, epoch map[string]int) (string, bool) {
	info := ir.Info(in.Op)
	switch {
	case in.IsBranch(), in.IsStore(), in.Dst == ir.NoReg:
		return "", false
	case in.Op == ir.SpillLoad:
		return "", false // spill slots are single-value; leave them alone
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%g|%s|%d|%d", in.Op, in.Imm, in.FImm, in.Sym, in.Off, in.Index)
	args := in.Args
	if info.Commutative && len(args) == 2 && args[0] > args[1] {
		args = []ir.VReg{args[1], args[0]}
	}
	for _, a := range args {
		fmt.Fprintf(&sb, "|%d", a)
	}
	if in.IsLoad() {
		fmt.Fprintf(&sb, "|e%d", epoch[in.Sym])
	}
	return sb.String(), true
}

// eliminateCommon removes instructions that recompute an available value,
// rewriting later uses to the first definition.
func eliminateCommon(b *ir.Block) int {
	f := b.Func
	avail := map[string]ir.VReg{}
	alias := map[ir.VReg]ir.VReg{}
	epoch := map[string]int{}
	count := 0
	var kept []*ir.Instr
	for _, in := range b.Instrs {
		for i, a := range in.Args {
			if r, ok := alias[a]; ok {
				in.Args[i] = r
			}
		}
		if in.Index != ir.NoReg {
			if r, ok := alias[in.Index]; ok {
				in.Index = r
			}
		}
		if in.IsStore() {
			epoch[in.Sym]++
			kept = append(kept, in)
			continue
		}
		key, ok := cseKey(f, in, epoch)
		if !ok {
			kept = append(kept, in)
			continue
		}
		if prev, dup := avail[key]; dup && f.ClassOf(prev) == f.ClassOf(in.Dst) {
			alias[in.Dst] = prev
			count++
			continue
		}
		avail[key] = in.Dst
		kept = append(kept, in)
	}
	b.Instrs = kept
	return count
}

// eliminateDead removes pure instructions whose results are never used and
// were not live-out on entry.
func eliminateDead(b *ir.Block, liveOut map[ir.VReg]bool) int {
	count := 0
	for {
		uses := map[ir.VReg]int{}
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				uses[u]++
			}
		}
		removed := false
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			dead := in.Dst != ir.NoReg && uses[in.Dst] == 0 && !liveOut[in.Dst] &&
				!in.IsBranch() && !in.IsStore() && in.Op != ir.SpillLoad
			if dead {
				count++
				removed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
		if !removed {
			return count
		}
	}
}

// simplifyAlgebraic applies identity and strength-reduction rewrites:
// x+0, x-0, x*1, x/1, x|0, x^0, x&0, x*0, x<<0, x>>0, and x*2^k -> x<<k.
// Returns the rewrite count.
func simplifyAlgebraic(b *ir.Block) int {
	count := 0
	for _, in := range b.Instrs {
		if in.Dst == ir.NoReg {
			continue
		}
		switch in.Op {
		case ir.AddI, ir.SubI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI:
			if in.Imm == 0 {
				*in = ir.Instr{ID: in.ID, Op: ir.Mov, Dst: in.Dst, Args: []ir.VReg{in.Args[0]}}
				count++
			}
		case ir.MulI:
			switch {
			case in.Imm == 1:
				*in = ir.Instr{ID: in.ID, Op: ir.Mov, Dst: in.Dst, Args: []ir.VReg{in.Args[0]}}
				count++
			case in.Imm == 0:
				*in = ir.Instr{ID: in.ID, Op: ir.ConstI, Dst: in.Dst, Imm: 0}
				count++
			case in.Imm > 1 && in.Imm&(in.Imm-1) == 0:
				shift := 0
				for v := in.Imm; v > 1; v >>= 1 {
					shift++
				}
				*in = ir.Instr{ID: in.ID, Op: ir.ShlI, Dst: in.Dst,
					Args: []ir.VReg{in.Args[0]}, Imm: int64(shift)}
				count++
			}
		case ir.DivI:
			if in.Imm == 1 {
				*in = ir.Instr{ID: in.ID, Op: ir.Mov, Dst: in.Dst, Args: []ir.VReg{in.Args[0]}}
				count++
			}
		case ir.AndI:
			if in.Imm == 0 {
				*in = ir.Instr{ID: in.ID, Op: ir.ConstI, Dst: in.Dst, Imm: 0}
				count++
			}
		case ir.FMulI:
			if in.FImm == 1 {
				*in = ir.Instr{ID: in.ID, Op: ir.Mov, Dst: in.Dst, Args: []ir.VReg{in.Args[0]}}
				count++
			}
		case ir.FAddI, ir.FSubI:
			if in.FImm == 0 {
				*in = ir.Instr{ID: in.ID, Op: ir.Mov, Dst: in.Dst, Args: []ir.VReg{in.Args[0]}}
				count++
			}
		}
	}
	return count
}
