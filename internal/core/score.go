package core

import (
	"fmt"

	"ursa/internal/dag"
	"ursa/internal/measure"
)

// ScoreCandidates runs a single candidate-evaluation round on the graph:
// measure every resource, generate the current iteration's reduction
// candidates, and score each one exactly as the reduction loop would
// (incrementally or, with Options.DisableIncremental, by clone and full
// remeasure). It returns the number of candidates scored and commits
// nothing — tentative applications happen on scratch state only.
//
// This is the hook behind the BenchmarkPickBest perf-trajectory benchmark:
// it times precisely the per-iteration work the incremental engine
// replaces, without the variable number of iterations a full Run adds on
// top. It is also a convenient probe for how many moves the allocator is
// choosing from on a given graph.
func ScoreCandidates(g *dag.Graph, opts Options) (int, error) {
	m := opts.Machine
	if m == nil {
		return 0, fmt.Errorf("core: no machine configured")
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if opts.Cache == nil {
		opts.Cache = measure.NewCache()
	}
	resources := Resources(g, m)
	lat := func(n *dag.Node) int { return m.LatencyOf(n.Instr.Op) }

	ev := newEvaluator(g, resources, lat, &opts)
	defer ev.close()
	st := ev.state()
	cands := collectCandidates(g, resources, st.results, opts, st.hammocks)
	if len(cands) == 0 {
		return 0, nil
	}
	outs, err := ev.evalAll(cands)
	if err != nil {
		return 0, err
	}
	pickBest(outs, st.excess, styleDefault)
	return len(cands), nil
}
