//go:build race

package core

// raceEnabled trims the heavyweight fuzz sweeps under the race detector:
// the detector slows the reduction loop by an order of magnitude, and the
// same seeds run at full width in the plain test pass.
const raceEnabled = true
