package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/transform"
)

func seqOutcome(note string, excess, crit, edges int, ok bool) evalOutcome {
	es := make([][2]int, edges)
	return evalOutcome{
		s:      scored{cand: &transform.Candidate{Kind: transform.RegSequence, Edges: es, Note: note}, resource: "reg.int"},
		ok:     ok,
		excess: excess,
		crit:   crit,
	}
}

func spillOutcome(note string, excess, crit int, ok bool) evalOutcome {
	return evalOutcome{
		s: scored{cand: &transform.Candidate{Kind: transform.Spill, Note: note,
			Spill: &transform.SpillSpec{Def: 0}}, resource: "reg.int"},
		ok:     ok,
		excess: excess,
		crit:   crit,
	}
}

// TestPickPlateauSpillOnly: plateau moves are restricted to spill
// candidates at or below the current excess, ranked by (excess, crit, Note).
func TestPickPlateauSpillOnly(t *testing.T) {
	cur := 3
	evals := []evalOutcome{
		seqOutcome("seq-equal", cur, 1, 2, true), // sequencing never plateaus
		spillOutcome("worse", cur+1, 1, true),    // above current excess
		spillOutcome("failed", cur, 1, false),    // failed tentative apply
		spillOutcome("slow", cur, 9, true),
		spillOutcome("fast", cur, 4, true),
	}
	best, excess, improved := pickPlateau(evals, cur)
	if !improved {
		t.Fatal("pickPlateau found no move despite eligible spills")
	}
	if best.cand.Kind != transform.Spill {
		t.Fatalf("plateau move is %s, want spill", best.cand.Kind)
	}
	if best.cand.Note != "fast" || excess != cur {
		t.Errorf("picked %q at excess %d, want %q at %d", best.cand.Note, excess, "fast", cur)
	}

	// Sequencing-only outcomes: no plateau move at all.
	if _, _, ok := pickPlateau(evals[:1], cur); ok {
		t.Error("pickPlateau accepted a sequencing candidate")
	}
}

// TestPickBestTieBreakStyles pins each style's tie-breaking order at equal
// excess reduction, and that the winner is independent of input order (the
// ranking sort is unstable; full tie-breaks make it deterministic anyway).
func TestPickBestTieBreakStyles(t *testing.T) {
	cur := 5
	evals := []evalOutcome{
		seqOutcome("big-slow", 4, 9, 4, true), // most edges, worst crit
		seqOutcome("small-fast", 4, 2, 1, true),
		spillOutcome("spill", 4, 6, true),
		seqOutcome("failed", 3, 1, 9, false), // would win, but apply failed
	}
	want := map[scoreStyle]string{
		styleDefault:    "small-fast", // min crit, seq before spill
		styleAggressive: "big-slow",   // most edges first
		styleSpillFirst: "spill",      // spill rank first
	}
	rng := rand.New(rand.NewSource(1))
	for style, wantNote := range want {
		for shuffle := 0; shuffle < 8; shuffle++ {
			perm := make([]evalOutcome, len(evals))
			copy(perm, evals)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			best, excess, improved := pickBest(perm, cur, style)
			if !improved || best.cand.Note != wantNote || excess != 4 {
				t.Fatalf("style %d shuffle %d: picked %q (excess %d, improved %v), want %q",
					style, shuffle, best.cand.Note, excess, improved, wantNote)
			}
		}
	}

	// No candidate strictly below the current excess: not improved.
	if _, _, ok := pickBest(evals, 4, styleDefault); ok {
		t.Error("pickBest improved without an excess reduction")
	}
}

// plateauMachines are heterogeneous configs with a single memory unit:
// spilling trades register excess for fu.mem excess, which is what makes
// excess-preserving (plateau) moves appear in real runs.
func plateauMachines() []*machine.Config {
	return []*machine.Config{
		machine.Heterogeneous(2, 1, 1, 1, 2, 8),
		machine.Heterogeneous(3, 1, 1, 1, 3, 8),
	}
}

// TestPlateauMovesAreSpillsAndBounded sweeps workloads known to hit the
// plateau path and checks the loop's invariants: every excess-preserving
// committed move is a spill, and the per-phase budget caps them at 4.
func TestPlateauMovesAreSpillsAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sawPlateau := false
	for trial := 0; trial < 8; trial++ {
		f := randomBlock(rng, 10+rng.Intn(20))
		for _, m := range plateauMachines() {
			for _, noSeq := range []bool{false, true} {
				// Private Func per run: committed spills extend the name
				// table, which would shift later runs' spill-reload names.
				cl := f.Clone()
				g, err := dag.Build(cl.Blocks[0])
				if err != nil {
					t.Fatal(err)
				}
				rep, err := runOnce(g, Options{Machine: m, Cache: measure.NewCache(),
					DisableSequencing: noSeq}, styleDefault)
				if err != nil {
					t.Fatal(err)
				}
				plateau := 0
				for _, a := range rep.Applied {
					if a.ExcessAfter >= a.ExcessBefore {
						plateau++
						if a.Kind != transform.Spill {
							t.Errorf("trial %d %s: plateau move is %s, want spill", trial, m.Name, a.Kind)
						}
					}
				}
				// Integrated policy runs a single phase, so the budget of 4
				// bounds the whole run.
				if plateau > 4 {
					t.Errorf("trial %d %s: %d plateau moves exceed the budget of 4", trial, m.Name, plateau)
				}
				sawPlateau = sawPlateau || plateau > 0
			}
		}
	}
	if !sawPlateau {
		t.Fatal("sweep never exercised the plateau path; workload needs retuning")
	}
}

// TestStyleDeterminismAcrossWorkers: for every tie-break style, the full
// applied-transformation sequence is identical whether candidates are
// evaluated inline, across 4 or 8 workers, or by the pre-engine
// full-remeasure path — the engine changes cost only, never choice.
func TestStyleDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	machines := append(plateauMachines(), machine.VLIW(2, 3), machine.VLIW(1, 4))
	for trial := 0; trial < 6; trial++ {
		f := randomBlock(rng, 10+rng.Intn(16))
		for _, m := range machines {
			for _, style := range []scoreStyle{styleDefault, styleAggressive, styleSpillFirst} {
				variants := []Options{
					{Machine: m, Workers: 1},
					{Machine: m, Workers: 4},
					{Machine: m, Workers: 8},
					{Machine: m, Workers: 1, DisableIncremental: true},
				}
				var ref *Report
				for vi, opts := range variants {
					// Private Func per variant (see above): without this,
					// spill-reload register names drift across variants and
					// mask the real comparison.
					cl := f.Clone()
					g, err := dag.Build(cl.Blocks[0])
					if err != nil {
						t.Fatal(err)
					}
					opts.Cache = measure.NewCache()
					rep, err := runOnce(g, opts, style)
					if err != nil {
						t.Fatalf("trial %d %s style %d variant %d: %v", trial, m.Name, style, vi, err)
					}
					if vi == 0 {
						ref = rep
						continue
					}
					if !reflect.DeepEqual(rep.Applied, ref.Applied) {
						t.Errorf("trial %d %s style %d variant %d: applied sequence diverged\n got %+v\nwant %+v",
							trial, m.Name, style, vi, rep.Applied, ref.Applied)
					}
					if rep.Iterations != ref.Iterations || rep.SpillsInserted != ref.SpillsInserted ||
						!reflect.DeepEqual(rep.FinalWidths, ref.FinalWidths) {
						t.Errorf("trial %d %s style %d variant %d: report diverged (%d iters / %d spills / %v, want %d / %d / %v)",
							trial, m.Name, style, vi, rep.Iterations, rep.SpillsInserted, rep.FinalWidths,
							ref.Iterations, ref.SpillsInserted, ref.FinalWidths)
					}
				}
			}
		}
	}
}
