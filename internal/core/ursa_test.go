package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]       ; A
	w = muli v, 2       ; B
	x = muli v, 3       ; C
	y = addi v, 5       ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = muli y, 2      ; G
	t4 = divi y, 3      ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
}
`

func paperGraph(t testing.TB) *dag.Graph {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestRunPaperFitsGenerousMachine(t *testing.T) {
	g := paperGraph(t)
	rep, err := Run(g, Options{Machine: machine.VLIW(4, 5)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Fits {
		t.Errorf("4 FUs / 5 regs must fit untransformed: %+v", rep.FinalWidths)
	}
	if rep.Iterations != 0 {
		t.Errorf("no transformations expected, got %d", rep.Iterations)
	}
	if rep.InitialWidths["fu"] != 4 || rep.InitialWidths["reg.int"] != 5 {
		t.Errorf("initial widths = %v, want fu=4 reg.int=5", rep.InitialWidths)
	}
}

// TestFig3dCombined reproduces Figure 3(d): the combination of
// transformations reduces the example to 2 functional units and 3 registers.
func TestFig3dCombined(t *testing.T) {
	g := paperGraph(t)
	rep, err := Run(g, Options{Machine: machine.VLIW(2, 3)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Fits {
		t.Fatalf("URSA did not fit 2 FUs / 3 regs: widths %v after %d iters (applied %+v)",
			rep.FinalWidths, rep.Iterations, rep.Applied)
	}
	if rep.FinalWidths["fu"] > 2 || rep.FinalWidths["reg.int"] > 3 {
		t.Errorf("final widths %v exceed machine", rep.FinalWidths)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("transformed graph invalid: %v", err)
	}
}

func TestRunPreservesSemantics(t *testing.T) {
	f := ir.MustParse(paperSrc)
	ref := ir.NewState()
	ref.StoreInt("V", 0, 9)
	got := ref.Clone()
	if _, err := ref.Run(f, 1000); err != nil {
		t.Fatalf("reference: %v", err)
	}

	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Run(g, Options{Machine: machine.VLIW(2, 3)}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, n := range g.TopoOrder() {
		if g.Nodes[n].Instr != nil {
			got.Exec(g.Func, g.Nodes[n].Instr)
		}
	}
	z := g.Func.Reg("z")
	if got.Regs[z] != ref.Regs[z] {
		t.Errorf("z = %d, want %d", got.Regs[z].Int(), ref.Regs[z].Int())
	}
}

func TestPoliciesAllConverge(t *testing.T) {
	for _, p := range []Policy{Integrated, RegistersFirst, FUsFirst} {
		t.Run(p.String(), func(t *testing.T) {
			g := paperGraph(t)
			rep, err := Run(g, Options{Machine: machine.VLIW(3, 4), Policy: p})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !rep.Fits && !rep.ScheduleClean {
				t.Errorf("policy %s: widths %v neither fit 3 FUs / 4 regs nor schedule cleanly",
					p, rep.FinalWidths)
			}
		})
	}
}

func TestDisableSpillsStillSequences(t *testing.T) {
	g := paperGraph(t)
	rep, err := Run(g, Options{Machine: machine.VLIW(4, 4), DisableSpills: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SpillsInserted != 0 {
		t.Errorf("spills inserted despite DisableSpills: %d", rep.SpillsInserted)
	}
	if !rep.Fits && !rep.ScheduleClean {
		t.Errorf("sequencing alone should reach 4 regs (or a clean schedule): %v", rep.FinalWidths)
	}
}

func TestResourcesHeterogeneous(t *testing.T) {
	g := paperGraph(t)
	m := machine.Heterogeneous(2, 1, 1, 1, 8, 8)
	rs := Resources(g, m)
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Name] = true
	}
	for _, want := range []string{"fu.ialu", "fu.mem", "reg.int"} {
		if !names[want] {
			t.Errorf("missing resource %s in %v", want, names)
		}
	}
	if names["reg.fp"] {
		t.Error("reg.fp reported for integer-only code")
	}
	rep, err := Run(g, Options{Machine: m})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Fits && !rep.ScheduleClean {
		t.Errorf("heterogeneous run neither fits nor schedules cleanly: %v", rep.FinalWidths)
	}
}

func TestRunRejectsBadMachine(t *testing.T) {
	g := paperGraph(t)
	if _, err := Run(g, Options{}); err == nil {
		t.Error("nil machine accepted")
	}
	bad := machine.VLIW(0, 8)
	if _, err := Run(g, Options{Machine: bad}); err == nil {
		t.Error("0-unit machine accepted")
	}
	bad2 := machine.VLIW(2, 8)
	bad2.Regs[ir.ClassInt] = 0
	if _, err := Run(g, Options{Machine: bad2}); err == nil {
		t.Error("0-register machine accepted")
	}
}

func randomBlock(rng *rand.Rand, n int) *ir.Func {
	f := ir.NewFunc("rand")
	b := f.NewBlock("entry")
	var vals []ir.VReg
	for i := 0; i < n; i++ {
		dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
		switch {
		case len(vals) == 0 || rng.Intn(5) == 0:
			b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i)})
		case rng.Intn(3) == 0:
			a := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.MulI, Dst: dst, Args: []ir.VReg{a}, Imm: 3})
		default:
			a := vals[rng.Intn(len(vals))]
			c := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.Add, Dst: dst, Args: []ir.VReg{a, c}})
		}
		vals = append(vals, dst)
	}
	// Store the last value so it is consumed.
	b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{vals[len(vals)-1]}, Sym: "OUT"})
	return f
}

// TestConvergenceProperty: over random DAGs and machines, URSA terminates,
// leaves a valid DAG, never increases total excess, and preserves program
// semantics under any topological execution.
func TestConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	machines := []*machine.Config{
		machine.VLIW(1, 4), machine.VLIW(2, 3), machine.VLIW(2, 6),
		machine.VLIW(4, 4), machine.VLIW(8, 16),
	}
	for trial := 0; trial < 25; trial++ {
		f := randomBlock(rng, 6+rng.Intn(14))
		m := machines[rng.Intn(len(machines))]

		ref := ir.NewState()
		for i := int64(0); i < 32; i++ {
			ref.StoreInt("A", i, rng.Int63n(100))
		}
		init := ref.Clone()
		if _, err := ref.Run(f, 10000); err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		rep, err := Run(g, Options{Machine: m})
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		if err := g.Check(); err != nil {
			t.Fatalf("trial %d: invalid graph after URSA: %v", trial, err)
		}
		for name, w := range rep.FinalWidths {
			if w > rep.InitialWidths[name] {
				t.Errorf("trial %d: width %s grew %d -> %d", trial, name,
					rep.InitialWidths[name], w)
			}
		}
		got := init
		for _, n := range g.TopoOrder() {
			if g.Nodes[n].Instr != nil {
				got.Exec(g.Func, g.Nodes[n].Instr)
			}
		}
		if got.Mem[ir.Addr{Sym: "OUT", Off: 0}] != ref.Mem[ir.Addr{Sym: "OUT", Off: 0}] {
			t.Errorf("trial %d (machine %s): OUT = %d, want %d", trial, m.Name,
				got.Mem[ir.Addr{Sym: "OUT", Off: 0}].Int(),
				ref.Mem[ir.Addr{Sym: "OUT", Off: 0}].Int())
		}
	}
}
