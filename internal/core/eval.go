package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/dag"
	"ursa/internal/driver"
	"ursa/internal/measure"
	"ursa/internal/metrics"
	"ursa/internal/order"
	"ursa/internal/reuse"
	"ursa/internal/transform"
)

// evalOutcome is the measured effect of tentatively applying one candidate:
// the total over-limit width and the critical path of the transformed
// graph. ok is false when the candidate turned out inapplicable (its Apply
// failed), in which case the selection ignores it — exactly as the old
// clone-and-apply loop skipped candidates whose Apply errored.
type evalOutcome struct {
	s      scored
	ok     bool
	excess int
	crit   int
}

// iterState is the per-iteration committed state every candidate is scored
// against: the committed graph's hammocks and nest levels plus its
// measurements. It is derived once per committed generation (memoized in
// the evaluator), shared by the main loop and by speculating workers.
type iterState struct {
	hammocks []*dag.Hammock
	levels   []int
	results  map[string]*measure.Result
	excess   int
}

// evaluator scores reduction candidates. One evaluator lives for a whole
// runOnce: it owns the committed graph's transitive closure (maintained in
// place across commits), the memoized per-generation iteration state, and
// one reusable scratch per worker, and fans candidates out via
// internal/driver.
//
// Two evaluation paths exist:
//
//   - The incremental path (the default) applies the candidate to the
//     worker's scratch graph through a reusable transform.UndoLog.
//     Sequencing-only candidates then update the scratch copy of the
//     closure with order.Relation.AddClosureEdge, rederive each resource's
//     reuse pairs into pooled relation storage
//     (reuse.Reuse.UpdateClosureInto), and warm-start the matching from the
//     committed measurement with a pooled matcher
//     (measure.ChainsDeltaWidth). Spill payloads — which add nodes and
//     rewrite operands, so no cheap delta exists — are measured from
//     scratch through the cache and reverted via the same undo log. In
//     steady state the path allocates nothing: graphs, closures, relations,
//     matchers, and analysis buffers all reset in place across candidates
//     and across reduction iterations.
//   - Options.DisableIncremental reverts to the pre-engine reference path:
//     clone the graph per candidate, apply, re-measure everything from
//     scratch. The differential delta oracle in internal/check compares the
//     two on every fuzz case.
//
// Both paths produce the same widths (a maximum matching is a maximum
// matching however it is reached), so the selection is bit-identical across
// paths and across worker counts.
//
// Between a commit and the next iteration's evaluation, workers the main
// thread is not using may speculatively pre-score this iteration's
// surviving candidates against the just-committed graph (speculate); the
// next evalAll first joins the speculation and then reuses every completed
// outcome whose candidate key reappears, evaluating only the rest.
type evaluator struct {
	g         *dag.Graph
	resources []Resource
	lat       func(*dag.Node) int
	opts      *Options
	workers   int
	scratches []*evalScratch

	// gen counts committed transformations; it tags which graph state the
	// memoized iteration state, the closure, and each scratch describe.
	gen   int
	reach *order.Relation // committed graph's closure (incremental mode)
	// commits[i] records the transformation that moved generation i to i+1,
	// so stale scratches can replay instead of re-cloning.
	commits []commitRec

	stOnce *sync.Once
	st     *iterState

	// Candidate dedupe state, reused across iterations.
	keyBuf  []byte
	keyIdx  map[transform.CandKey]int
	keys    []transform.CandKey
	slot    []int
	uniq    []int
	batchNs atomic.Int64 // summed per-job busy time of the current batch

	// Speculation state. specOuts[i]/specDone[i] are written by exactly one
	// worker; wg.Wait() publishes them to the main thread.
	specActive bool
	specGen    int
	specCands  []scored
	specKeys   []transform.CandKey
	specIdx    map[transform.CandKey]int
	specOuts   []evalOutcome
	specDone   []bool
	specNext   atomic.Int64
	specCancel atomic.Bool
	specWG     sync.WaitGroup
}

// commitRec describes one committed transformation for scratch replay.
type commitRec struct {
	spill bool
	edges [][2]int
}

// evalScratch is one worker's private reusable state: a clone of the
// committed graph (with a cloned Func) that candidates mutate and revert, a
// closure buffer reset from the committed closure per candidate, the undo
// log, and the per-resource measurement scratch.
type evalScratch struct {
	g     *dag.Graph
	gen   int // generation sc.g matches
	reach *order.Relation
	log   transform.UndoLog
	topo  dag.Scratch
	delta measure.DeltaScratch
	res   []scratchRes
}

// scratchRes is one worker's per-resource measurement scratch: the pooled
// relation UpdateClosureInto fills, the reuse value wrapping it, and the
// kill-selection scratch with its per-generation use-list tag.
type scratchRes struct {
	rel     *order.Relation
	ru      reuse.Reuse
	ks      reuse.KillScratch
	usesGen int
}

func newEvaluator(g *dag.Graph, resources []Resource, lat func(*dag.Node) int, opts *Options) *evaluator {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Candidate evaluation is pure CPU: more workers than P only adds
	// scheduling overhead without any added throughput, so the pool is
	// capped at GOMAXPROCS regardless of -j.
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	e := &evaluator{
		g:         g,
		resources: resources,
		lat:       lat,
		opts:      opts,
		workers:   workers,
		scratches: make([]*evalScratch, workers),
		stOnce:    new(sync.Once),
		keyIdx:    make(map[transform.CandKey]int),
	}
	if !opts.DisableIncremental {
		e.reach = g.Reach()
	}
	return e
}

// state returns the committed iteration state for the current generation,
// computing it at most once per generation. Safe for concurrent use by the
// main loop and speculating workers; the measurement cache's flight
// coalescing already makes the underlying measurements single-flight, and
// the once makes the hammock analysis so too.
func (e *evaluator) state() *iterState {
	e.stOnce.Do(func() {
		st := &iterState{results: make(map[string]*measure.Result, len(e.resources))}
		st.hammocks = e.g.Hammocks()
		st.levels = e.g.NestLevels(st.hammocks)
		for _, r := range e.resources {
			res := e.opts.Cache.Measure(e.g, r.Name, r.Build)
			st.results[r.Name] = res
			if d := res.Width - r.Limit; d > 0 {
				st.excess += d
			}
		}
		e.st = st
	})
	return e.st
}

// commit records that the candidate was just applied to the committed
// graph: it joins any running speculation beforehand (the speculating
// workers read e.g), advances the generation, invalidates the memoized
// iteration state, and updates the closure — in place for sequencing
// commits, recomputed for spills (which add nodes).
//
// The caller must call commit after every Candidate.Apply on e.g and
// before the next state or evalAll.
func (e *evaluator) commit(c *transform.Candidate) {
	e.drainSpec()
	rec := commitRec{spill: !c.SeqOnly()}
	if !rec.spill {
		rec.edges = c.Edges
	}
	e.commits = append(e.commits, rec)
	e.gen++
	e.stOnce = new(sync.Once)
	e.st = nil
	if e.reach != nil {
		if rec.spill {
			e.reach = e.g.Reach()
		} else {
			for _, ed := range rec.edges {
				e.reach.AddClosureEdge(ed[0], ed[1])
			}
		}
	}
}

// close joins any outstanding speculation. Must be called before the
// committed graph escapes the evaluator's control.
func (e *evaluator) close() { e.drainSpec() }

// scratch returns worker w's scratch state, building it on first use and
// bringing its graph up to the committed generation: sequencing commits are
// replayed as plain edge insertions; a spill commit (which restructures
// instructions) forces a fresh clone. Iterations whose candidates all take
// the full path never pay for clones.
func (e *evaluator) scratch(w int) *evalScratch {
	sc := e.scratches[w]
	if sc == nil {
		sc = &evalScratch{res: make([]scratchRes, len(e.resources))}
		sc.gen = -1
		e.scratches[w] = sc
	}
	if sc.gen != e.gen {
		rebuild := sc.g == nil
		for gi := sc.gen; !rebuild && gi < e.gen; gi++ {
			if gi < 0 || e.commits[gi].spill {
				rebuild = true
			}
		}
		if rebuild {
			sc.g = e.g.Clone()
			sc.g.Func = e.g.Func.Clone()
			for i := range sc.res {
				sc.res[i].usesGen = -1
			}
		} else {
			for gi := sc.gen; gi < e.gen; gi++ {
				for _, ed := range e.commits[gi].edges {
					sc.g.AddEdge(ed[0], ed[1], dag.EdgeSeq)
				}
			}
		}
		sc.gen = e.gen
	}
	return sc
}

// evalAll scores every candidate and returns the outcomes in candidate
// order. Candidates with identical effect (equal transform.Candidate key)
// are measured once and share the measurement; the returned slice still
// carries one entry per input candidate so the selection sort ranks exactly
// the sequence the pre-engine code ranked, ties included. Completed
// speculative outcomes for the current generation are consumed instead of
// re-evaluated.
func (e *evaluator) evalAll(cands []scored) ([]evalOutcome, error) {
	e.drainSpec()
	st := e.state()

	if cap(e.slot) < len(cands) {
		e.slot = make([]int, len(cands))
		e.keys = make([]transform.CandKey, 0, len(cands))
	}
	e.slot = e.slot[:len(cands)]
	e.uniq = e.uniq[:0]
	e.keys = e.keys[:0]
	clear(e.keyIdx)
	for i, s := range cands {
		var k transform.CandKey
		k, e.keyBuf = s.cand.FixedKey(e.keyBuf)
		if j, ok := e.keyIdx[k]; ok {
			e.slot[i] = j
			continue
		}
		e.keyIdx[k] = len(e.uniq)
		e.slot[i] = len(e.uniq)
		e.uniq = append(e.uniq, i)
		e.keys = append(e.keys, k)
	}

	// Harvest completed speculation for keys that reappeared this
	// generation. outs is indexed by uniq slot; -1 marks "evaluate".
	outs := make([]evalOutcome, len(e.uniq))
	todo := e.uniq[:0:0]
	todoSlot := make([]int, 0, len(e.uniq))
	hits := 0
	for j, i := range e.uniq {
		if o, ok := e.specLookup(e.keys[j]); ok {
			o.s = cands[i]
			outs[j] = o
			hits++
			continue
		}
		todo = append(todo, i)
		todoSlot = append(todoSlot, j)
	}
	if hits > 0 {
		metrics.AddSpeculativeHits(uint64(hits))
	}
	metrics.AddCandidateEvals(uint64(len(todo)))

	e.batchNs.Store(0)
	start := time.Now()
	_, _, err := driver.MapWorkers(len(todo), func(w, j int) (struct{}, error) {
		t0 := time.Now()
		s := cands[todo[j]]
		if e.opts.DisableIncremental {
			outs[todoSlot[j]] = e.evalFull(s)
		} else {
			outs[todoSlot[j]] = e.evalIncremental(e.scratch(w), st, s)
		}
		e.batchNs.Add(int64(time.Since(t0)))
		return struct{}{}, nil
	}, driver.Options{Workers: e.workers, KeepGoing: true})
	if err != nil {
		// Jobs never return errors themselves; this is a recovered panic
		// from a measurement, which the old inline loop would have
		// propagated. Do the same instead of silently dropping candidates.
		return nil, err
	}
	if n := len(todo); n > 0 {
		wall := int64(time.Since(start))
		busy := e.batchNs.Load()
		w := e.workers
		if w > n {
			w = n
		}
		metrics.AddEvalBusyNanos(uint64(busy))
		if idle := int64(w)*wall - busy; idle > 0 {
			metrics.AddEvalIdleNanos(uint64(idle))
		}
	}

	all := make([]evalOutcome, len(cands))
	for i := range cands {
		o := outs[e.slot[i]]
		o.s = cands[i] // each entry keeps its own resource label and Note
		all[i] = o
	}
	return all, nil
}

// evalIncremental scores a candidate on the worker's scratch graph through
// the reusable undo log: apply, measure, revert. Sequencing-only candidates
// are measured by pooled closure update plus warm-started matching; spill
// payloads (and register resources whose kill selection shifted) fall back
// to a full from-scratch measurement through the cache.
func (e *evaluator) evalIncremental(sc *evalScratch, st *iterState, s scored) evalOutcome {
	if err := s.cand.ApplyLog(sc.g, &sc.log); err != nil {
		return evalOutcome{s: s}
	}
	defer sc.log.Revert()

	excess := 0
	if s.cand.SeqOnly() {
		if sc.reach == nil || sc.reach.Size() != e.reach.Size() {
			sc.reach = order.NewRelation(e.reach.Size())
		}
		sc.reach.CopyFrom(e.reach)
		for _, ed := range sc.log.Added() {
			sc.reach.AddClosureEdge(ed[0], ed[1])
		}
		depths := sc.g.DepthsInto(&sc.topo)
		for ri := range e.resources {
			r := &e.resources[ri]
			prev := st.results[r.Name]
			rs := &sc.res[ri]
			n := prev.R.NumItems()
			if rs.rel == nil || rs.rel.Size() != n {
				rs.rel = order.NewRelation(n)
			} else {
				rs.rel.Reset()
			}
			if r.IsRegister && rs.usesGen != e.gen {
				rs.ks.PrecomputeUses(sc.g, prev.R.Items)
				rs.usesGen = e.gen
			}
			rs.ru.Rel = rs.rel
			var w int
			if prev.R.UpdateClosureInto(sc.g, sc.reach, depths, &rs.ks, &rs.ru) {
				w = measure.ChainsDeltaWidth(prev, &rs.ru, st.levels, &sc.delta)
			} else {
				// Kill selection shifted: the old matching may no longer be
				// a matching of the new order. Full rebuild for this
				// resource.
				w = e.opts.Cache.Measure(sc.g, r.Name, r.Build).Width
			}
			if d := w - r.Limit; d > 0 {
				excess += d
			}
		}
	} else {
		// Spills restructure values — they add nodes and rewrite uses — so
		// no cheap delta exists; re-measure every resource from scratch
		// through the cache, which still collapses repeats of the same
		// transformed state across styles and plateau scans.
		for ri := range e.resources {
			r := &e.resources[ri]
			res := e.opts.Cache.Measure(sc.g, r.Name, r.Build)
			if d := res.Width - r.Limit; d > 0 {
				excess += d
			}
		}
	}
	crit := sc.g.CriticalPathLen(e.lat, &sc.topo)
	return evalOutcome{s: s, ok: true, excess: excess, crit: crit}
}

// evalFull scores a candidate the pre-engine way: clone, apply, re-measure
// everything from scratch. Kept as the reference implementation for the
// differential delta oracle and the full-path benchmarks.
func (e *evaluator) evalFull(s scored) evalOutcome {
	cl := e.g.Clone()
	cl.Func = e.g.Func.Clone()
	if err := s.cand.Apply(cl); err != nil {
		return evalOutcome{s: s}
	}
	excess := 0
	for _, r := range e.resources {
		res := e.opts.Cache.Measure(cl, r.Name, r.Build)
		if d := res.Width - r.Limit; d > 0 {
			excess += d
		}
	}
	crit, _ := cl.CriticalPath(e.lat)
	return evalOutcome{s: s, ok: true, excess: excess, crit: crit}
}

// speculate pre-scores the sequencing-only candidates that were not just
// committed against the just-committed graph, on the workers the main
// thread leaves idle while it remeasures the committed graph and generates
// the next iteration's candidates. Speculative results are tagged with the
// generation they were computed for; evalAll consumes the completed ones
// whose keys reappear and the rest are discarded. Evaluation on a scratch
// graph with the committed state as input is deterministic, so a consumed
// speculative outcome is bit-identical to what evalAll would have computed.
//
// cands and keyed are the just-evaluated iteration's candidates with their
// slot mapping (evalAll's dedupe state is still current when runOnce calls
// this), committed is the applied candidate. Speculation requires at least
// two workers and the incremental path.
func (e *evaluator) speculate(cands []scored, committed *transform.Candidate) {
	if e.workers <= 1 || e.opts.DisableIncremental || e.specActive {
		return
	}
	var ck transform.CandKey
	ck, e.keyBuf = committed.FixedKey(e.keyBuf)

	e.specCands = e.specCands[:0]
	e.specKeys = e.specKeys[:0]
	if e.specIdx == nil {
		e.specIdx = make(map[transform.CandKey]int)
	}
	clear(e.specIdx)
	for _, s := range cands {
		if !s.cand.SeqOnly() {
			continue
		}
		var k transform.CandKey
		k, e.keyBuf = s.cand.FixedKey(e.keyBuf)
		if k == ck {
			continue
		}
		if _, dup := e.specIdx[k]; dup {
			continue
		}
		e.specIdx[k] = len(e.specCands)
		e.specCands = append(e.specCands, s)
		e.specKeys = append(e.specKeys, k)
	}
	if len(e.specCands) == 0 {
		return
	}
	if cap(e.specOuts) < len(e.specCands) {
		e.specOuts = make([]evalOutcome, len(e.specCands))
		e.specDone = make([]bool, len(e.specCands))
	}
	e.specOuts = e.specOuts[:len(e.specCands)]
	e.specDone = e.specDone[:len(e.specCands)]
	for i := range e.specDone {
		e.specDone[i] = false
	}
	e.specGen = e.gen
	e.specNext.Store(0)
	e.specCancel.Store(false)
	e.specActive = true

	// Leave one worker's worth of CPU for the main thread's own remeasure
	// and candidate generation.
	nw := e.workers - 1
	if nw > len(e.specCands) {
		nw = len(e.specCands)
	}
	e.specWG.Add(nw)
	for w := 1; w <= nw; w++ {
		go func(worker int) {
			defer e.specWG.Done()
			st := e.state()
			sc := e.scratch(worker)
			for {
				if e.specCancel.Load() {
					return
				}
				i := int(e.specNext.Add(1)) - 1
				if i >= len(e.specCands) {
					return
				}
				e.specOuts[i] = e.evalIncremental(sc, st, e.specCands[i])
				e.specDone[i] = true
				metrics.AddSpeculativeEvals(1)
			}
		}(w)
	}
}

// drainSpec stops in-progress speculation and waits for the workers to
// finish their current jobs. Completed outcomes stay available to
// specLookup until the next commit invalidates them.
func (e *evaluator) drainSpec() {
	if !e.specActive {
		return
	}
	e.specCancel.Store(true)
	e.specWG.Wait()
	e.specActive = false
}

// specLookup returns the completed speculative outcome for the key, if one
// was computed for the current generation. Only valid after drainSpec.
func (e *evaluator) specLookup(k transform.CandKey) (evalOutcome, bool) {
	if e.specGen != e.gen || len(e.specKeys) == 0 {
		return evalOutcome{}, false
	}
	if i, ok := e.specIdx[k]; ok && e.specDone[i] {
		return e.specOuts[i], true
	}
	return evalOutcome{}, false
}

// kindRanks returns the §5 kind preference for the style, indexed by
// transform.Kind: at equal impact sequencing beats spilling (no extra
// memory traffic); styleSpillFirst flips this. Copy-spills sort with the
// spills — they add the same memory traffic — but after them, since they
// additionally forfeit a single-cycle bus transfer.
func kindRanks(style scoreStyle) [transform.NumKinds]int {
	if style == styleSpillFirst {
		return [transform.NumKinds]int{
			transform.FUSequence: 3, transform.RegSequence: 2,
			transform.Spill: 0, transform.CopySpill: 1,
		}
	}
	return [transform.NumKinds]int{
		transform.FUSequence: 1, transform.RegSequence: 0,
		transform.Spill: 2, transform.CopySpill: 3,
	}
}
