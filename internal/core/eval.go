package core

import (
	"runtime"

	"ursa/internal/dag"
	"ursa/internal/driver"
	"ursa/internal/measure"
	"ursa/internal/metrics"
	"ursa/internal/order"
	"ursa/internal/transform"
)

// evalOutcome is the measured effect of tentatively applying one candidate:
// the total over-limit width and the critical path of the transformed
// graph. ok is false when the candidate turned out inapplicable (its Apply
// failed), in which case the selection ignores it — exactly as the old
// clone-and-apply loop skipped candidates whose Apply errored.
type evalOutcome struct {
	s      scored
	ok     bool
	excess int
	crit   int
}

// evaluator scores one reduction iteration's candidates. It owns the
// hoisted per-iteration state — the committed graph's hammock nest levels,
// its transitive closure, and the committed measurements — plus one scratch
// graph per worker, and fans the candidates out via internal/driver.
//
// Two evaluation paths exist:
//
//   - Sequencing-only candidates apply their edges to the worker's scratch
//     graph in place, update the scratch copy of the closure with
//     order.Relation.AddClosureEdge, derive each resource's new reuse pairs
//     from the closure (reuse.Reuse.UpdateClosure), warm-start the matching
//     from the committed measurement (measure.ChainsDelta), and undo the
//     edges. No clone, no closure recomputation, no from-scratch matching.
//   - Spill candidates (and everything when Options.DisableIncremental is
//     set, or when a register resource's kill selection shifted under the
//     new closure) fall back to the old path: clone the graph, apply, and
//     re-measure every resource from scratch through the cache. Spills
//     restructure values — they add nodes and rewrite uses — so no cheap
//     delta exists. The scratch clones carry a private ir.Func so tentative
//     spill applies can allocate their reload registers without racing on
//     the real function.
//
// Both paths produce the same widths (a maximum matching is a maximum
// matching however it is reached; the delta oracle in internal/check holds
// this to account on every fuzz case), so the selection is bit-identical
// across paths and across worker counts.
type evaluator struct {
	g         *dag.Graph
	resources []Resource
	results   map[string]*measure.Result
	levels    []int
	reach     *order.Relation
	lat       func(*dag.Node) int
	opts      *Options
	workers   int
	scratches []*evalScratch
}

// evalScratch is one worker's private state: a clone of the iteration's
// graph (with a cloned Func) that seq candidates mutate and undo, and a
// closure buffer reset from the committed closure per candidate.
type evalScratch struct {
	g     *dag.Graph
	reach *order.Relation
}

func newEvaluator(g *dag.Graph, resources []Resource, results map[string]*measure.Result,
	levels []int, lat func(*dag.Node) int, opts *Options) *evaluator {

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &evaluator{
		g:         g,
		resources: resources,
		results:   results,
		levels:    levels,
		lat:       lat,
		opts:      opts,
		workers:   workers,
		scratches: make([]*evalScratch, workers),
	}
	if !opts.DisableIncremental {
		e.reach = g.Reach()
	}
	return e
}

// scratch returns worker w's scratch state, building it on first use so
// iterations whose candidates all take the full path never pay for clones.
func (e *evaluator) scratch(w int) *evalScratch {
	if e.scratches[w] == nil {
		cl := e.g.Clone()
		cl.Func = e.g.Func.Clone()
		e.scratches[w] = &evalScratch{g: cl, reach: order.NewRelation(e.reach.Size())}
	}
	return e.scratches[w]
}

// evalAll scores every candidate and returns the outcomes in candidate
// order. Candidates with identical effect (equal transform.Candidate.Key)
// are measured once and share the measurement; the returned slice still
// carries one entry per input candidate so the selection sort ranks exactly
// the sequence the pre-engine code ranked, ties included.
func (e *evaluator) evalAll(cands []scored) ([]evalOutcome, error) {
	slot := make([]int, len(cands))
	uniq := make([]int, 0, len(cands))
	firstIdx := make(map[string]int, len(cands))
	for i, s := range cands {
		k := s.cand.Key()
		if j, ok := firstIdx[k]; ok {
			slot[i] = j
			continue
		}
		firstIdx[k] = len(uniq)
		slot[i] = len(uniq)
		uniq = append(uniq, i)
	}
	metrics.AddCandidateEvals(uint64(len(uniq)))

	outs, _, err := driver.MapWorkers(len(uniq), func(w, j int) (evalOutcome, error) {
		s := cands[uniq[j]]
		if e.opts.DisableIncremental || !s.cand.SeqOnly() {
			return e.evalFull(s), nil
		}
		return e.evalSeq(e.scratch(w), s), nil
	}, driver.Options{Workers: e.workers, KeepGoing: true})
	if err != nil {
		// Jobs never return errors themselves; this is a recovered panic
		// from a measurement, which the old inline loop would have
		// propagated. Do the same instead of silently dropping candidates.
		return nil, err
	}

	all := make([]evalOutcome, len(cands))
	for i := range cands {
		o := outs[slot[i]]
		o.s = cands[i] // each entry keeps its own resource label and Note
		all[i] = o
	}
	return all, nil
}

// evalSeq scores a sequencing-only candidate incrementally on the worker's
// scratch graph: apply, delta-measure, undo.
func (e *evaluator) evalSeq(sc *evalScratch, s scored) evalOutcome {
	added, undo, err := s.cand.ApplyUndo(sc.g)
	if err != nil {
		return evalOutcome{s: s}
	}
	defer undo()
	sc.reach.CopyFrom(e.reach)
	for _, ed := range added {
		sc.reach.AddClosureEdge(ed[0], ed[1])
	}
	excess := 0
	for _, r := range e.resources {
		prev := e.results[r.Name]
		var w int
		if ru, ok := prev.R.UpdateClosure(sc.g, sc.reach); ok {
			w = measure.ChainsDelta(prev, ru, e.levels).Width
		} else {
			// Kill selection shifted: the old matching may no longer be a
			// matching of the new order. Full rebuild for this resource.
			w = e.opts.Cache.Measure(sc.g, r.Name, r.Build).Width
		}
		if d := w - r.Limit; d > 0 {
			excess += d
		}
	}
	crit, _ := sc.g.CriticalPath(e.lat)
	return evalOutcome{s: s, ok: true, excess: excess, crit: crit}
}

// evalFull scores a candidate the pre-engine way: clone, apply, re-measure
// everything from scratch (through the cache, which still catches repeats
// of the same transformed state across styles and plateau scans).
func (e *evaluator) evalFull(s scored) evalOutcome {
	cl := e.g.Clone()
	cl.Func = e.g.Func.Clone()
	if err := s.cand.Apply(cl); err != nil {
		return evalOutcome{s: s}
	}
	excess := 0
	for _, r := range e.resources {
		res := e.opts.Cache.Measure(cl, r.Name, r.Build)
		if d := res.Width - r.Limit; d > 0 {
			excess += d
		}
	}
	crit, _ := cl.CriticalPath(e.lat)
	return evalOutcome{s: s, ok: true, excess: excess, crit: crit}
}

// kindRanks returns the §5 kind preference for the style: at equal impact
// sequencing beats spilling (no extra memory traffic); styleSpillFirst
// flips this.
func kindRanks(style scoreStyle) map[transform.Kind]int {
	if style == styleSpillFirst {
		return map[transform.Kind]int{
			transform.Spill:       0,
			transform.RegSequence: 1,
			transform.FUSequence:  2,
		}
	}
	return map[transform.Kind]int{
		transform.RegSequence: 0,
		transform.FUSequence:  1,
		transform.Spill:       2,
	}
}
