package core

import (
	"reflect"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/workload"
)

// TestMeasurementCacheReuse: the transform loop's re-measurements hit the
// cache (the loop revisits states it already scored), and a run served by
// a warm shared cache reports exactly what a cold run reports.
func TestMeasurementCacheReuse(t *testing.T) {
	build := func() *dag.Graph {
		g, err := dag.Build(workload.LayeredBlock(8, 3).Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	m := machine.VLIW(4, 4)

	shared := measure.NewCache()
	cold := build()
	coldRep, err := Run(cold, Options{Machine: m, Cache: shared})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := shared.Stats()
	if hits == 0 {
		t.Fatalf("no cache hits in a pressured run (misses=%d); the transform loop should revisit measured states", misses)
	}

	warm := build()
	warmRep, err := Run(warm, Options{Machine: m, Cache: shared})
	if err != nil {
		t.Fatal(err)
	}
	h2, m2 := shared.Stats()
	if m2 != misses {
		t.Fatalf("warm run missed %d times; an identical input must be fully served from the cache", m2-misses)
	}
	if h2 <= hits {
		t.Fatal("warm run recorded no hits")
	}
	if !reflect.DeepEqual(coldRep, warmRep) {
		t.Fatalf("warm report differs from cold:\n%+v\nvs\n%+v", warmRep, coldRep)
	}
	if cold.Fingerprint() != warm.Fingerprint() {
		t.Fatal("the two runs transformed their graphs differently")
	}
}

// TestCacheAcrossLimits: widths are limit-independent, so a cache shared
// across a register sweep must serve the same machine-width measurements
// while the reports still reflect each machine's own limits.
func TestCacheAcrossLimits(t *testing.T) {
	shared := measure.NewCache()
	var initial []map[string]int
	for _, regs := range []int{4, 6, 12} {
		g, err := dag.Build(workload.LayeredBlock(6, 3).Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(g, Options{Machine: machine.VLIW(4, regs), Cache: shared})
		if err != nil {
			t.Fatal(err)
		}
		initial = append(initial, rep.InitialWidths)
		if rep.Limits["reg.int"] != regs {
			t.Fatalf("limits not per-machine: %v", rep.Limits)
		}
	}
	for i := 1; i < len(initial); i++ {
		if !reflect.DeepEqual(initial[i], initial[0]) {
			t.Fatalf("initial widths differ across the sweep: %v vs %v", initial[i], initial[0])
		}
	}
}
