package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/metrics"
)

// runVariant compiles a private clone of f under opts and returns the
// report. Each variant gets its own Func and cache so spill-reload register
// names and memoized measurements cannot leak between the runs being
// compared.
func runVariant(t *testing.T, f *ir.Func, opts Options, style scoreStyle) *Report {
	t.Helper()
	cl := f.Clone()
	g, err := dag.Build(cl.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opts.Cache = measure.NewCache()
	rep, err := runOnce(g, opts, style)
	if err != nil {
		t.Fatalf("runOnce: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("invalid graph after run: %v", err)
	}
	return rep
}

func reportsEqual(a, b *Report) string {
	if !reflect.DeepEqual(a.Applied, b.Applied) {
		return fmt.Sprintf("applied sequence diverged:\n got %+v\nwant %+v", b.Applied, a.Applied)
	}
	if a.Iterations != b.Iterations || a.SpillsInserted != b.SpillsInserted {
		return fmt.Sprintf("iters/spills diverged: %d/%d vs %d/%d",
			b.Iterations, b.SpillsInserted, a.Iterations, a.SpillsInserted)
	}
	if !reflect.DeepEqual(a.FinalWidths, b.FinalWidths) {
		return fmt.Sprintf("final widths diverged: %v vs %v", b.FinalWidths, a.FinalWidths)
	}
	if a.Fits != b.Fits || a.ScheduleClean != b.ScheduleClean {
		return fmt.Sprintf("fit verdict diverged: fits=%v clean=%v vs fits=%v clean=%v",
			b.Fits, b.ScheduleClean, a.Fits, a.ScheduleClean)
	}
	return ""
}

// TestFreshVsPooledEvaluator: over 500 fuzzed blocks, machines, and
// tie-break styles, the pooled incremental evaluator (persistent scratch
// arenas, slab relations, warm-started matchers) commits exactly the same
// transformation sequence as the fresh clone-per-candidate reference path
// (DisableIncremental). This is the contract that lets every pool reset
// protocol change land without re-auditing the reduction loop: any missed
// reset or stale arena state shows up as a diverged Applied sequence.
func TestFreshVsPooledEvaluator(t *testing.T) {
	trials := 500
	if testing.Short() || raceEnabled {
		trials = 60
	}
	rng := rand.New(rand.NewSource(11))
	machines := []*machine.Config{
		machine.VLIW(1, 3), machine.VLIW(1, 4), machine.VLIW(2, 3),
		machine.VLIW(2, 4), machine.VLIW(3, 4), machine.VLIW(4, 6),
	}
	styles := []scoreStyle{styleDefault, styleAggressive, styleSpillFirst}
	for trial := 0; trial < trials; trial++ {
		f := randomBlock(rng, 6+rng.Intn(16))
		m := machines[rng.Intn(len(machines))]
		style := styles[trial%len(styles)]

		fresh := runVariant(t, f, Options{Machine: m, Workers: 1, DisableIncremental: true}, style)
		pooled := runVariant(t, f, Options{Machine: m, Workers: 1}, style)
		if diff := reportsEqual(fresh, pooled); diff != "" {
			t.Fatalf("trial %d (%s, style %d): %s", trial, m.Name, style, diff)
		}
	}
}

// TestSpeculationDeterminismAcrossWorkers: with speculation actually
// engaged (workers > 1 requires GOMAXPROCS > 1, which this test forces),
// the applied sequence at -j 4 and -j 8 is identical to -j 1, where
// speculation is structurally off. Run under -race this also sweeps the
// speculating goroutines — scratch arenas, the shared iteration state, and
// the measurement cache's flight coalescing — for data races.
func TestSpeculationDeterminismAcrossWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	trials := 12
	if testing.Short() {
		trials = 4
	}
	specBefore := metrics.SpeculativeEvals()
	rng := rand.New(rand.NewSource(17))
	machines := []*machine.Config{machine.VLIW(1, 3), machine.VLIW(2, 3), machine.VLIW(1, 4)}
	for trial := 0; trial < trials; trial++ {
		f := randomBlock(rng, 14+rng.Intn(12))
		m := machines[trial%len(machines)]
		for _, style := range []scoreStyle{styleDefault, styleSpillFirst} {
			ref := runVariant(t, f, Options{Machine: m, Workers: 1}, style)
			for _, w := range []int{4, 8} {
				rep := runVariant(t, f, Options{Machine: m, Workers: w}, style)
				if diff := reportsEqual(ref, rep); diff != "" {
					t.Fatalf("trial %d (%s, style %d, -j %d): %s", trial, m.Name, style, w, diff)
				}
			}
		}
	}
	if metrics.SpeculativeEvals() == specBefore {
		t.Error("sweep never engaged speculation; workload needs retuning")
	}
}
