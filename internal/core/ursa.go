// Package core implements the top-level URSA algorithm (paper Figure 1):
// measure the requirements of every resource, locate the regions with
// excess, and repeatedly apply the reduction transformation that best
// combines requirement reduction with minimal critical-path growth, until
// the dependence DAG's worst-case requirements fit the target machine.
//
// Per §5, transformations for different resources can be applied in an
// integrated manner (every candidate for every over-subscribed resource is
// scored each round) or in phases (registers first, then functional units —
// the ordering §5 argues for — or the reverse, provided for ablation).
package core

import (
	"fmt"
	"io"
	"sort"

	"ursa/internal/assign"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/reuse"
	"ursa/internal/sched"
	"ursa/internal/transform"
)

// Policy selects how transformations for different resources interleave.
type Policy uint8

// Policies.
const (
	// Integrated scores all candidates for all over-limit resources
	// together every round (§5's integrated application).
	Integrated Policy = iota
	// RegistersFirst reduces register excess to fit, then functional
	// units: the phase ordering §5 recommends.
	RegistersFirst
	// FUsFirst reduces functional-unit excess first; provided for the
	// transformation-ordering ablation.
	FUsFirst
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Integrated:
		return "integrated"
	case RegistersFirst:
		return "registers-first"
	case FUsFirst:
		return "fus-first"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Options configures a URSA run.
type Options struct {
	Machine *machine.Config
	Policy  Policy
	// MaxIters bounds the transformation loop; 0 means 8·N+16 where N is
	// the node count. Residual excess after the bound is left for the
	// assignment phase, as §2 allows.
	MaxIters int
	// Trace, when non-nil, receives a line per measurement and applied
	// transformation.
	Trace io.Writer
	// DisableSpills restricts reduction to sequencing transformations
	// (for the spill-vs-sequence ablation).
	DisableSpills bool
	// DisableSequencing restricts register reduction to spills.
	DisableSequencing bool
	// Cache, when non-nil, memoizes measurements across the run (and, if
	// the caller shares one, across runs). Widths are independent of the
	// machine's limits, so a shared cache is sound across register-file and
	// FU-count sweeps; it must not be shared between machines that map the
	// same resource name onto different instruction sets. When nil, Run
	// creates a private cache for its internal re-measurements.
	Cache *measure.Cache
	// Workers bounds the concurrent candidate evaluations per reduction
	// iteration (driver semantics: zero or negative means GOMAXPROCS, one
	// evaluates inline). Results are bit-identical across worker counts —
	// outcomes are collected by candidate index and ranked by a
	// deterministic sort.
	Workers int
	// DisableIncremental reverts candidate scoring to the pre-engine
	// behavior: clone the graph per candidate and re-measure every
	// resource from scratch. Kept as the reference implementation for the
	// differential delta oracle and as the baseline the reduction-loop
	// benchmarks compare against.
	DisableIncremental bool
}

// A Resource pairs a reuse-structure builder with its machine limit.
type Resource struct {
	Name       string
	Limit      int
	IsRegister bool
	// IsBuffer marks an exposed-datapath output-buffer resource: a
	// value-holding resource (reduced like registers, by sequencing value
	// lifetimes or spilling) whose items span both register classes.
	IsBuffer bool
	Class    ir.Class // register class, when IsRegister && !IsBuffer
	Build    func(g *dag.Graph) *reuse.Reuse
}

// Resources derives the resource list for a graph on a machine: one
// functional-unit resource per FU class (a single one for homogeneous
// machines, replicated per cluster on clustered machines, plus the shared
// inter-cluster transfer bus), one register resource per register class
// used by the code (per cluster on clustered machines), one output-buffer
// resource per FU class on buffered exposed-datapath machines, and a
// machine-wide issue resource when the machine caps total issue width.
func Resources(g *dag.Graph, m *machine.Config) []Resource {
	var rs []Resource
	nc := m.NumClusters()
	if m.Homogeneous && nc == 1 {
		rs = append(rs, Resource{
			Name:  "fu",
			Limit: m.Units[machine.ANY],
			Build: func(g *dag.Graph) *reuse.Reuse { return reuse.FU(g, reuse.AllFUs) },
		})
	} else {
		for _, cl := range m.FUClasses() {
			cl := cl
			if cl == machine.XFER {
				// The transfer bus is machine-wide, and its instructions
				// are exactly the inter-cluster copies.
				rs = append(rs, Resource{
					Name:  "fu.xfer",
					Limit: m.Units.Get(machine.XFER),
					Build: func(g *dag.Graph) *reuse.Reuse {
						return reuse.FU(g, func(n *dag.Node) bool { return n.Instr.IsCopy() })
					},
				})
				continue
			}
			kinds := m.KindsOf(cl)
			member := func(n *dag.Node) bool {
				for _, k := range kinds {
					if n.Instr.Kind() == k {
						return true
					}
				}
				return false
			}
			if nc == 1 {
				rs = append(rs, Resource{
					Name:  "fu." + cl.String(),
					Limit: m.Units[cl],
					Build: func(g *dag.Graph) *reuse.Reuse { return reuse.FU(g, member) },
				})
				continue
			}
			for k := 0; k < nc; k++ {
				k := k
				name := fmt.Sprintf("fu.c%d", k)
				if !m.Homogeneous {
					name = fmt.Sprintf("fu.%s.c%d", cl, k)
				}
				rs = append(rs, Resource{
					Name:  name,
					Limit: m.Units[cl],
					Build: func(g *dag.Graph) *reuse.Reuse {
						return reuse.FU(g, func(n *dag.Node) bool {
							return int(n.Instr.Cluster) == k && member(n)
						})
					},
				})
			}
		}
	}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		c := c
		if !classUsed(g, c) {
			continue
		}
		if nc == 1 {
			rs = append(rs, Resource{
				Name:       "reg." + c.String(),
				Limit:      m.Regs[c],
				IsRegister: true,
				Class:      c,
				Build:      func(g *dag.Graph) *reuse.Reuse { return reuse.Reg(g, c) },
			})
			continue
		}
		for k := 0; k < nc; k++ {
			k := k
			rs = append(rs, Resource{
				Name:       fmt.Sprintf("reg.%s.c%d", c, k),
				Limit:      m.Regs[c],
				IsRegister: true,
				Class:      c,
				Build: func(g *dag.Graph) *reuse.Reuse {
					f := g.Func
					var liveIn func(ir.VReg) bool
					if k == 0 {
						// Live-in values arrive in cluster 0's file (the
						// clustered pipelines reject live-ins upstream, so
						// this is a core-level convention, not a hot path).
						liveIn = func(v ir.VReg) bool { return f.ClassOf(v) == c }
					}
					return reuse.Values(g, c, func(n *dag.Node) bool {
						return int(n.Instr.Cluster) == k && f.ClassOf(n.Instr.Dst) == c
					}, liveIn)
				},
			})
		}
	}
	if m.BufferDepth > 0 {
		for _, cl := range m.FUClasses() {
			cl := cl
			name := "buf"
			if !m.Homogeneous {
				name = "buf." + cl.String()
			}
			rs = append(rs, Resource{
				Name:       name,
				Limit:      m.BufferCap(cl),
				IsRegister: true,
				IsBuffer:   true,
				Build: func(g *dag.Graph) *reuse.Reuse {
					// A buffer slot holds every non-live-out value its class
					// produces — either register class — from issue until the
					// worst-case kill reader issues; live-outs stream to the
					// register file at writeback and hold no slot.
					return reuse.Values(g, ir.ClassInt, func(n *dag.Node) bool {
						return !g.LiveOut[n.Instr.Dst] && m.ClassFor(n.Instr.Kind()) == cl
					}, nil)
				},
			})
		}
	}
	if m.IssueWidth > 0 {
		rs = append(rs, Resource{
			Name:  "issue",
			Limit: m.IssueWidth,
			Build: func(g *dag.Graph) *reuse.Reuse { return reuse.FU(g, reuse.AllFUs) },
		})
	}
	return rs
}

func classUsed(g *dag.Graph, c ir.Class) bool {
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		if n.Instr.Dst != ir.NoReg && g.Func.ClassOf(n.Instr.Dst) == c {
			return true
		}
		for _, u := range n.Instr.Uses() {
			if g.Func.ClassOf(u) == c {
				return true
			}
		}
	}
	return false
}

// Applied records one committed transformation.
type Applied struct {
	Resource string
	Kind     transform.Kind
	Note     string
	// Excess totals (sum over resources of width minus limit, clamped at
	// zero) before and after the application.
	ExcessBefore, ExcessAfter int
}

// Report summarizes a URSA run.
type Report struct {
	Machine       string
	Policy        Policy
	Iterations    int
	Applied       []Applied
	InitialWidths map[string]int
	FinalWidths   map[string]int
	Limits        map[string]int
	// Fits is true when every final width is within its limit; when false
	// the assignment phase must absorb the residue (§2).
	Fits bool
	// ScheduleClean is true when the chosen option's emitted schedule
	// needed no assignment-phase spill patching — the operational goal
	// even when the worst-case widths (Fits) still exceed the machine.
	ScheduleClean bool
	// CritBefore/CritAfter are critical-path lengths under the machine's
	// latencies.
	CritBefore, CritAfter int
	SpillsInserted        int
}

// TotalExcess sums the over-limit amounts of the final widths.
func (r *Report) TotalExcess() int {
	total := 0
	for name, w := range r.FinalWidths {
		if d := w - r.Limits[name]; d > 0 {
			total += d
		}
	}
	return total
}

// Run executes URSA's allocation phase on the graph, mutating it, and
// returns the report. The graph afterwards encodes, through its added
// sequence edges and spill code, a program whose worst-case resource
// demands (usually) fit the machine; assignment and code generation follow.
//
// The transformation-selection heuristic is greedy, so a first attempt can
// occasionally strand itself with residual excess; Run then retries from
// the untransformed graph with the spill-first tie-break and keeps the
// better outcome, before leaving any remaining excess to the assignment
// phase (§2).
func Run(g *dag.Graph, opts Options) (*Report, error) {
	m := opts.Machine
	if m == nil {
		return nil, fmt.Errorf("core: no machine configured")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opts.Cache == nil {
		// One cache across the baseline and every retry style: they all
		// start from clones of the same graph and re-measure overlapping
		// transformed states.
		opts.Cache = measure.NewCache()
	}
	if m.Clusters > 1 || m.BufferDepth > 0 {
		// Copy-spill candidates rewrite an opcode in place, which the
		// incremental engine's undo log cannot restore, and the extended
		// target models have no delta oracle coverage yet; both run on the
		// full-clone reference evaluation path.
		opts.DisableIncremental = true
	}
	styles := []scoreStyle{styleDefault, styleAggressive}
	if !opts.DisableSpills {
		styles = append(styles, styleSpillFirst)
	}
	var bestG *dag.Graph
	var bestRep *Report
	bestCost := -1
	consider := func(cl *dag.Graph, rep *Report) {
		cost := emittedCost(cl, m)
		if bestRep == nil || cost < bestCost ||
			(cost == bestCost && rep.Fits && !bestRep.Fits) {
			bestG, bestRep, bestCost = cl, rep, cost
		}
	}
	// §1: "The allocation option that has the best overall effect can then
	// be selected." The untransformed DAG is itself an option: when the
	// list scheduler's own choice of schedule stays within the registers,
	// the worst-case excess never materializes and transformation would
	// only lengthen the schedule.
	{
		cl := g.Clone()
		base := opts
		base.MaxIters = -1
		rep, err := runOnce(cl, base, styleDefault)
		if err != nil {
			return nil, err
		}
		consider(cl, rep)
	}
	for _, style := range styles {
		cl := g.Clone()
		rep, err := runOnce(cl, opts, style)
		if err != nil {
			return nil, err
		}
		consider(cl, rep)
		if bestRep.Fits {
			break
		}
	}
	g.ReplaceWith(bestG)
	bestRep.ScheduleClean = bestCost&(1<<12-1) == 0
	return bestRep, nil
}

// emittedCost scores an allocation outcome by its overall effect: primarily
// the length of the schedule the assignment phase would emit, then the
// number of assignment-phase spill stores (memory traffic), encoded
// lexicographically.
func emittedCost(g *dag.Graph, m *machine.Config) int {
	prog, _, err := assign.Emit(g, m, sched.Options{})
	if err != nil {
		return 1 << 30
	}
	return len(prog.Words)<<12 | min(prog.Spills, 1<<12-1)
}

// scoreStyle selects the tie-breaking order used when comparing candidate
// transformations of equal excess reduction.
type scoreStyle uint8

const (
	// styleDefault: minimal critical-path growth, then the §5 kind order
	// (sequencing before spilling).
	styleDefault scoreStyle = iota
	// styleAggressive: the largest move (most sequence edges) first —
	// escapes states where the locally-cheapest move strands the search.
	styleAggressive
	// styleSpillFirst: spills before sequencing at equal excess.
	styleSpillFirst
)

func runOnce(g *dag.Graph, opts Options, style scoreStyle) (*Report, error) {
	m := opts.Machine
	resources := Resources(g, m)
	maxIters := opts.MaxIters
	switch {
	case maxIters < 0:
		maxIters = 0 // measurement-only run (the untransformed baseline)
	case maxIters == 0:
		maxIters = 8*len(g.Nodes) + 16
	}
	lat := func(n *dag.Node) int { return m.LatencyOf(n.Instr.Op) }

	rep := &Report{
		Machine:       m.Name,
		Policy:        opts.Policy,
		InitialWidths: map[string]int{},
		FinalWidths:   map[string]int{},
		Limits:        map[string]int{},
	}
	rep.CritBefore, _ = g.CriticalPath(lat)
	for _, r := range resources {
		rep.Limits[r.Name] = r.Limit
	}

	// One evaluator for the whole run: its scratch graphs, closures, and
	// measurement buffers persist across reduction iterations, and between
	// iterations its idle workers pre-score surviving candidates.
	ev := newEvaluator(g, resources, lat, &opts)
	defer ev.close()

	st := ev.state()
	results, excess := st.results, st.excess
	for name, res := range results {
		rep.InitialWidths[name] = res.Width
	}
	tracef(opts.Trace, "ursa: %s initial widths %v excess %d", m.Name, rep.InitialWidths, excess)

	// phases returns the resource groups to attack in order under the
	// configured policy.
	phases := func() [][]Resource {
		switch opts.Policy {
		case RegistersFirst:
			return [][]Resource{filterRes(resources, true), filterRes(resources, false)}
		case FUsFirst:
			return [][]Resource{filterRes(resources, false), filterRes(resources, true)}
		default:
			return [][]Resource{resources}
		}
	}()

	for _, phase := range phases {
		// Plateau moves: when no candidate strictly reduces total excess, a
		// bounded number of excess-preserving transformations may still be
		// committed — the paper notes a single application often cannot
		// remove all excess, and the follow-up candidates only appear on
		// the transformed DAG.
		plateau := 4
		for rep.Iterations < maxIters && excess > 0 {
			// One Hammocks pass per iteration (memoized in the evaluator's
			// generation state), shared by excess-set location, the delta
			// measurements' priority levels, and speculating workers.
			st := ev.state()
			cands := collectCandidates(g, phase, st.results, opts, st.hammocks)
			if len(cands) == 0 {
				break
			}
			outs, err := ev.evalAll(cands)
			if err != nil {
				return nil, err
			}
			best, bestExcess, improved := pickBest(outs, excess, style)
			if !improved {
				if plateau == 0 {
					break
				}
				best, bestExcess, improved = pickPlateau(outs, excess)
				if !improved {
					break
				}
				plateau--
			}
			if err := best.cand.Apply(g); err != nil {
				// The scratch applied cleanly, so the real graph must too.
				return nil, fmt.Errorf("core: committing %s: %v", best.cand, err)
			}
			ev.commit(best.cand)
			// While this thread remeasures the committed graph and builds
			// the next candidate list, idle workers pre-score the surviving
			// candidates against it.
			ev.speculate(cands, best.cand)
			rep.Iterations++
			if best.cand.Kind == transform.Spill || best.cand.Kind == transform.CopySpill {
				rep.SpillsInserted++
			}
			rep.Applied = append(rep.Applied, Applied{
				Resource:     best.resource,
				Kind:         best.cand.Kind,
				Note:         best.cand.Note,
				ExcessBefore: excess,
				ExcessAfter:  bestExcess,
			})
			tracef(opts.Trace, "ursa: applied %s (%s): excess %d -> %d",
				best.cand.Kind, best.cand.Note, excess, bestExcess)
			nst := ev.state()
			results, excess = nst.results, nst.excess
		}
	}

	for name, res := range results {
		rep.FinalWidths[name] = res.Width
	}
	rep.Fits = rep.TotalExcess() == 0
	rep.CritAfter, _ = g.CriticalPath(lat)
	tracef(opts.Trace, "ursa: final widths %v fits=%v crit %d -> %d",
		rep.FinalWidths, rep.Fits, rep.CritBefore, rep.CritAfter)
	return rep, nil
}

func filterRes(rs []Resource, registers bool) []Resource {
	var out []Resource
	for _, r := range rs {
		if r.IsRegister == registers {
			out = append(out, r)
		}
	}
	return out
}

type scored struct {
	cand     *transform.Candidate
	resource string
}

// collectCandidates generates reduction candidates for every over-limit
// resource in the group, using the innermost and outermost excessive sets.
// hammocks is the committed graph's hammock list, computed once per
// iteration by the caller. The innermost and outermost sets (and different
// generators) routinely emit candidates with identical effect; those are
// kept in place — the selection ranks the exact historical sequence — but
// the evaluator canonicalizes them by transform.Candidate.Key and measures
// each distinct effect once.
func collectCandidates(g *dag.Graph, group []Resource, results map[string]*measure.Result, opts Options, hammocks []*dag.Hammock) []scored {
	var out []scored
	for _, r := range group {
		res := results[r.Name]
		if res == nil || res.Width <= r.Limit {
			continue
		}
		sets := measure.FindExcess(res, hammocks, r.Limit)
		if len(sets) == 0 {
			continue
		}
		targets := []*measure.ExcessSet{sets[0]}
		if len(sets) > 1 {
			targets = append(targets, sets[len(sets)-1])
		}
		for _, set := range targets {
			if r.IsRegister {
				if !opts.DisableSequencing {
					for _, c := range transform.RegSeqCandidates(g, res, set) {
						out = append(out, scored{c, r.Name})
					}
				}
				if !opts.DisableSpills {
					for _, c := range transform.SpillCandidates(g, res, set) {
						out = append(out, scored{c, r.Name})
					}
				}
			} else {
				for _, c := range transform.FUCandidates(g, res, set) {
					out = append(out, scored{c, r.Name})
				}
			}
			if opts.Machine.Clusters > 1 && !opts.DisableSpills {
				// Any inter-cluster copy caught in an excess set — holding
				// the bus, or holding the register its destination defines —
				// can alternatively go through memory.
				for _, c := range transform.CopySpillCandidates(g, res, set) {
					out = append(out, scored{c, r.Name})
				}
			}
		}
	}
	return out
}

// pickBest ranks the evaluated outcomes and returns the candidate
// minimizing (total excess, critical path, kind rank). improved is false
// when no candidate strictly reduces total excess. The tentative
// application and measurement happen beforehand in evaluator.evalAll —
// concurrently, on per-worker scratch graphs — but the ranking here sees
// the outcomes in candidate order, so the winner is the same one the old
// inline clone-apply-measure loop picked.
func pickBest(evals []evalOutcome, curExcess int, style scoreStyle) (scored, int, bool) {
	type outcome struct {
		s      scored
		excess int
		crit   int
		rank   int
		size   int // number of edges the move adds
	}
	kindRank := kindRanks(style)
	var outs []outcome
	for _, o := range evals {
		if !o.ok {
			continue
		}
		outs = append(outs, outcome{o.s, o.excess, o.crit, kindRank[o.s.cand.Kind], len(o.s.cand.Edges)})
	}
	if len(outs) == 0 {
		return scored{}, curExcess, false
	}
	sort.Slice(outs, func(i, j int) bool {
		if outs[i].excess != outs[j].excess {
			return outs[i].excess < outs[j].excess
		}
		switch style {
		case styleAggressive:
			if outs[i].size != outs[j].size {
				return outs[i].size > outs[j].size
			}
			if outs[i].crit != outs[j].crit {
				return outs[i].crit < outs[j].crit
			}
		case styleSpillFirst:
			if outs[i].rank != outs[j].rank {
				return outs[i].rank < outs[j].rank
			}
			if outs[i].crit != outs[j].crit {
				return outs[i].crit < outs[j].crit
			}
		default:
			if outs[i].crit != outs[j].crit {
				return outs[i].crit < outs[j].crit
			}
		}
		if outs[i].rank != outs[j].rank {
			return outs[i].rank < outs[j].rank
		}
		return outs[i].s.cand.Note < outs[j].s.cand.Note
	})
	best := outs[0]
	if best.excess >= curExcess {
		return scored{}, curExcess, false
	}
	return best.s, best.excess, true
}

// pickPlateau returns the best candidate whose total excess equals the
// current one (an excess-preserving move), preferring spills — they change
// the DAG's value structure and open reductions sequencing cannot reach.
// It reuses the iteration's outcomes: the old code re-applied and
// re-measured every spill candidate here, which the measurement cache
// collapsed into pure repeats anyway.
func pickPlateau(evals []evalOutcome, curExcess int) (scored, int, bool) {
	type outcome struct {
		s      scored
		excess int
		crit   int
	}
	var outs []outcome
	for _, o := range evals {
		if o.s.cand.Kind != transform.Spill && o.s.cand.Kind != transform.CopySpill {
			// Sequencing-only plateau moves just narrow the DAG without
			// changing its value structure; restrict plateaus to spills
			// (copy-spills restructure values the same way).
			continue
		}
		if !o.ok || o.excess > curExcess {
			continue
		}
		outs = append(outs, outcome{o.s, o.excess, o.crit})
	}
	if len(outs) == 0 {
		return scored{}, curExcess, false
	}
	sort.Slice(outs, func(i, j int) bool {
		if outs[i].excess != outs[j].excess {
			return outs[i].excess < outs[j].excess
		}
		if outs[i].crit != outs[j].crit {
			return outs[i].crit < outs[j].crit
		}
		return outs[i].s.cand.Note < outs[j].s.cand.Note
	})
	best := outs[0]
	return best.s, best.excess, true
}

func tracef(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
