package driver

import (
	"testing"
	"time"
)

// The pool's wall-clock win comes from overlapping jobs. CPU-bound batches
// need real cores to show it (see the root package's SuiteCompile
// benchmarks); blocking jobs show the overlap on any machine, including a
// single-CPU CI runner: 16 five-millisecond jobs take ~80ms at one worker
// and ~20ms at four.
func benchBlockedMap(b *testing.B, workers int) {
	const n, d = 16, 5 * time.Millisecond
	for i := 0; i < b.N; i++ {
		_, _, err := Map(n, func(int) (struct{}, error) {
			time.Sleep(d)
			return struct{}{}, nil
		}, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapBlockedJ1(b *testing.B) { benchBlockedMap(b, 1) }
func BenchmarkMapBlockedJ4(b *testing.B) { benchBlockedMap(b, 4) }
