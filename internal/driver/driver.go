// Package driver is the parallel compilation driver's substrate: a bounded
// worker pool that fans a batch of independent jobs out across GOMAXPROCS
// (or -j N) workers while keeping every observable result deterministic.
//
// Three properties make the pool safe to put under a compiler:
//
//   - Deterministic ordering: results are collected by job index, never by
//     arrival order, so a batch compiled at -j 8 reports byte-identically
//     to the same batch at -j 1.
//   - Panic isolation: a panic inside one job is recovered and converted
//     into that job's error (with the stack attached), so one bad input
//     cannot kill the whole batch or the process.
//   - Fail-fast cancellation: by default the first hard error stops the
//     pool from starting any further jobs; already-running jobs finish and
//     their results are kept. KeepGoing disables this for batches that
//     want every result regardless.
//
// The package deliberately depends on nothing but the standard library so
// that every layer of the compiler (core, pipeline, experiments, the cmd
// tools) can use it without import cycles.
package driver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one batch.
type Options struct {
	// Workers bounds the number of concurrently running jobs. Zero or
	// negative means runtime.GOMAXPROCS(0). One runs the batch inline on
	// the calling goroutine (no goroutines are spawned), which is also the
	// reference behavior the parallel modes must reproduce exactly.
	Workers int
	// KeepGoing runs every job even after one fails. The default (false)
	// skips jobs that have not started once any job returns an error or
	// panics; skipped jobs report ErrSkipped.
	KeepGoing bool
	// Ctx, when non-nil, cancels the batch: once Ctx is done no further
	// jobs are dispatched (running jobs finish and their results are
	// kept), every undispatched job records Ctx.Err(), and the batch
	// error is Ctx.Err(). Cancellation overrides KeepGoing — a cancelled
	// batch stops even when it would otherwise run every job. Nil means
	// the batch cannot be cancelled.
	Ctx context.Context
}

// ErrSkipped marks a job that never ran because an earlier job failed and
// the batch was not KeepGoing.
var ErrSkipped = errors.New("driver: job skipped after earlier failure")

// A PanicError wraps a panic recovered from a job.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

// Error renders the panic value; the stack is available via the field.
func (e *PanicError) Error() string {
	return fmt.Sprintf("driver: job panicked: %v", e.Value)
}

// normWorkers resolves the worker count.
func normWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Map runs fn(0..n-1) across the pool and returns the n results in index
// order together with the first error by job index (nil when every job
// succeeded). Skipped jobs have their zero value and ErrSkipped recorded;
// use Errs to inspect per-job failures.
func Map[T any](n int, fn func(i int) (T, error), opts Options) ([]T, []error, error) {
	return MapWorkers(n, func(_, i int) (T, error) { return fn(i) }, opts)
}

// MapWorkers is Map with the worker slot exposed: fn receives the index of
// the worker (0..workers-1) running the job in addition to the job index,
// so callers can keep per-worker scratch state (preallocated clones,
// closure buffers) without locking. When the pool runs inline, every job
// sees worker 0. Job-to-worker assignment is otherwise nondeterministic, so
// scratch state must never influence a job's result — only its cost.
func MapWorkers[T any](n int, fn func(worker, i int) (T, error), opts Options) ([]T, []error, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs, nil
	}

	workers := normWorkers(opts.Workers)
	if workers > n {
		workers = n
	}

	// cancelled reports the context error once the batch's context is done.
	// Checked before each dispatch, so cancellation stops queued jobs
	// without interrupting running ones (jobs are not preemptible).
	cancelled := func() error {
		if opts.Ctx == nil {
			return nil
		}
		return opts.Ctx.Err()
	}

	run := func(worker, i int) {
		defer func() {
			if r := recover(); r != nil {
				stack := make([]byte, 64<<10)
				stack = stack[:runtime.Stack(stack, false)]
				errs[i] = &PanicError{Value: r, Stack: stack}
			}
		}()
		results[i], errs[i] = fn(worker, i)
	}

	var failed atomic.Bool
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := cancelled(); err != nil {
				errs[i] = err
				continue
			}
			if failed.Load() && !opts.KeepGoing {
				errs[i] = ErrSkipped
				continue
			}
			run(0, i)
			if errs[i] != nil {
				failed.Store(true)
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := cancelled(); err != nil {
						errs[i] = err
						continue
					}
					if failed.Load() && !opts.KeepGoing {
						errs[i] = ErrSkipped
						continue
					}
					run(worker, i)
					if errs[i] != nil {
						failed.Store(true)
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// The first error by job index, not by arrival time, so the reported
	// failure is the same whatever the interleaving. ErrSkipped entries are
	// consequences, not causes; prefer a real error when one exists.
	var firstSkip error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrSkipped) {
			if firstSkip == nil {
				firstSkip = err
			}
			continue
		}
		return results, errs, err
	}
	return results, errs, firstSkip
}

// ForEach is Map for jobs with no result value.
func ForEach(n int, fn func(i int) error, opts Options) error {
	_, _, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	}, opts)
	return err
}
