package driver

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestMapCancelMidBatch: cancelling the context mid-batch stops dispatch —
// jobs already past the gate finish, undispatched jobs record ctx.Err(),
// and the batch error is ctx.Err().
func TestMapCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	results, errs, err := Map(10, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			cancel()
		}
		return i * i, nil
	}, Options{Workers: 1, Ctx: ctx})

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("ran %d jobs, want 4 (0..3 then stop)", got)
	}
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Errorf("job %d err = %v, want nil", i, errs[i])
		}
		if results[i] != i*i {
			t.Errorf("job %d result = %d, want %d", i, results[i], i*i)
		}
	}
	for i := 4; i < 10; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled", i, errs[i])
		}
	}
}

// TestMapCancelOverridesKeepGoing: cancellation stops even a KeepGoing
// batch.
func TestMapCancelOverridesKeepGoing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, errs, err := Map(5, func(i int) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, nil
	}, Options{Workers: 1, KeepGoing: true, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("ran %d jobs on a pre-cancelled context, want 0", ran.Load())
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled", i, e)
		}
	}
}

// TestMapCancelParallelWorkers: under parallel workers a cancelled batch
// still completes (no hang) and reports ctx.Err() for undispatched jobs.
func TestMapCancelParallelWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, errs, err := Map(64, func(i int) (struct{}, error) {
		if ran.Add(1) == 8 {
			cancel()
		}
		return struct{}{}, nil
	}, Options{Workers: 4, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	// Some prefix ran, some suffix was cancelled; both sets are nonempty.
	var cancelled int
	for _, e := range errs {
		if errors.Is(e, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 || cancelled == 64 {
		t.Errorf("cancelled %d of 64 jobs, want a proper subset", cancelled)
	}
	if int(ran.Load())+cancelled != 64 {
		t.Errorf("ran %d + cancelled %d != 64", ran.Load(), cancelled)
	}
}

// TestForEachCtxNilUnchanged: a nil Ctx keeps the original semantics.
func TestForEachCtxNilUnchanged(t *testing.T) {
	var ran atomic.Int32
	if err := ForEach(8, func(i int) error {
		ran.Add(1)
		return nil
	}, Options{Workers: 2}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if ran.Load() != 8 {
		t.Errorf("ran %d, want 8", ran.Load())
	}
}
