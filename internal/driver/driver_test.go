package driver

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapOrdering: results come back in job-index order at every worker
// count, for a batch whose jobs finish in scrambled order.
func TestMapOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got, errs, err := Map(n, func(i int) (int, error) {
			// Busy-skew the finish order without sleeping.
			x := 0
			for k := 0; k < (n-i)*1000; k++ {
				x += k
			}
			_ = x
			return i * i, nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: errs[%d] = %v", workers, i, errs[i])
			}
		}
	}
}

// TestDeterminism: the full (results, errs, err) triple of a mixed
// success/failure KeepGoing batch is identical between -j 1 and -j 8.
func TestDeterminism(t *testing.T) {
	const n = 40
	job := func(i int) (string, error) {
		if i%7 == 3 {
			return "", fmt.Errorf("job %d failed", i)
		}
		return fmt.Sprintf("ok%d", i), nil
	}
	render := func(workers int) string {
		got, errs, err := Map(n, job, Options{Workers: workers, KeepGoing: true})
		out := fmt.Sprintf("err=%v\n", err)
		for i := range got {
			out += fmt.Sprintf("%d: %q %v\n", i, got[i], errs[i])
		}
		return out
	}
	one := render(1)
	for i := 0; i < 5; i++ {
		if eight := render(8); eight != one {
			t.Fatalf("run %d: -j8 differs from -j1:\n%s\nvs\n%s", i, eight, one)
		}
	}
}

// TestPanicIsolation: a panicking job becomes a PanicError for that job;
// other jobs complete and the process survives.
func TestPanicIsolation(t *testing.T) {
	const n = 16
	got, errs, err := Map(n, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	}, Options{Workers: 4, KeepGoing: true})
	if err == nil {
		t.Fatal("want batch error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch error = %v, want PanicError", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d bytes of stack}", pe.Value, len(pe.Stack))
	}
	for i := 0; i < n; i++ {
		if i == 5 {
			if !errors.As(errs[i], &pe) {
				t.Fatalf("errs[5] = %v, want PanicError", errs[i])
			}
			continue
		}
		if errs[i] != nil || got[i] != i {
			t.Fatalf("job %d: got (%d, %v), want (%d, nil)", i, got[i], errs[i], i)
		}
	}
}

// TestFailFastCancellation: after the first hard error, not-yet-started
// jobs are skipped (inline mode: every later job; parallel mode: all but
// the jobs already in flight).
func TestFailFastCancellation(t *testing.T) {
	const n = 32
	var ran atomic.Int64
	_, errs, err := Map(n, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("hard error")
		}
		return i, nil
	}, Options{Workers: 1})
	if err == nil || err.Error() != "hard error" {
		t.Fatalf("err = %v, want the hard error", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d jobs ran, want 1 (inline fail-fast)", got)
	}
	for i := 1; i < n; i++ {
		if !errors.Is(errs[i], ErrSkipped) {
			t.Fatalf("errs[%d] = %v, want ErrSkipped", i, errs[i])
		}
	}

	// Parallel: at most `workers` jobs can be in flight when job 0 fails,
	// so with a failure gate at the front the run count stays far below n.
	ran.Store(0)
	gate := make(chan struct{})
	_, _, err = Map(n, func(i int) (int, error) {
		if i == 0 {
			err := errors.New("hard error")
			close(gate)
			return 0, err
		}
		<-gate // nobody proceeds until the failure is recorded...
		ran.Add(1)
		return i, nil
	}, Options{Workers: 4})
	if err == nil || err.Error() != "hard error" {
		t.Fatalf("parallel err = %v, want the hard error", err)
	}
	// Only jobs already in flight when the failure landed may still run:
	// with 4 workers that is a handful, never the whole batch.
	if got := ran.Load(); got > n/2 {
		t.Fatalf("%d jobs ran after the failure, want only the in-flight few", got)
	}
}

// TestKeepGoing: with KeepGoing, every job runs despite failures.
func TestKeepGoing(t *testing.T) {
	const n = 24
	var ran atomic.Int64
	_, errs, err := Map(n, func(i int) (int, error) {
		ran.Add(1)
		if i%2 == 0 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	}, Options{Workers: 3, KeepGoing: true})
	if err == nil || err.Error() != "fail 0" {
		t.Fatalf("err = %v, want fail 0 (first by index)", err)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d jobs ran, want all %d", got, n)
	}
	for i := 0; i < n; i++ {
		if (errs[i] != nil) != (i%2 == 0) {
			t.Fatalf("errs[%d] = %v", i, errs[i])
		}
	}
}

// TestForEach covers the no-result wrapper.
func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

// TestEmptyBatch: n=0 returns immediately.
func TestEmptyBatch(t *testing.T) {
	got, errs, err := Map(0, func(i int) (int, error) { return 0, nil }, Options{})
	if err != nil || len(got) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: %v %v %v", got, errs, err)
	}
}

// TestMapWorkersSlotIDs: every job sees a worker id in [0, workers), the
// inline path always reports worker 0, and two jobs observed concurrently
// never share a slot — the property per-worker scratch state relies on.
func TestMapWorkersSlotIDs(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 8} {
		var active [8 + 1]atomic.Int32
		ids, errs, err := MapWorkers(n, func(worker, i int) (int, error) {
			if worker < 0 || worker >= workers {
				t.Errorf("workers=%d: job %d got worker id %d", workers, i, worker)
			}
			if active[worker].Add(1) != 1 {
				t.Errorf("workers=%d: slot %d shared by concurrent jobs", workers, worker)
			}
			x := 0
			for k := 0; k < (i%7)*500; k++ {
				x += k
			}
			_ = x
			active[worker].Add(-1)
			return worker, nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range errs {
			if errs[i] != nil {
				t.Fatalf("workers=%d: errs[%d] = %v", workers, i, errs[i])
			}
		}
		if workers == 1 {
			for i, id := range ids {
				if id != 0 {
					t.Fatalf("inline path: job %d ran on worker %d, want 0", i, id)
				}
			}
		}
	}
}
