// Package target composes the machine models of internal/machine into the
// concrete target families the toolchain serves, and holds the code that
// adapts a program region to a family before the generic pipelines run.
//
// Three families extend the paper's homogeneous/heterogeneous VLIW:
//
//   - Clustered VLIW: identical clusters with private register files joined
//     by a transfer bus. Clusterize partitions a block over the clusters
//     and inserts explicit inter-cluster copies; the copies then compete
//     for the bus (an FU resource) and for destination registers inside
//     URSA's reduction loop, so the copy-vs-spill tradeoff is priced by
//     the same unified mechanism as everything else.
//   - Wide superscalar: a heterogeneous unit mix behind a global issue
//     width (fetch bound), pipelined, with realistic latencies.
//   - Buffered exposed datapath: functional-unit output buffers as a
//     bounded resource class; values must reach their last consumer before
//     the producer's buffer slot is reused.
//
// Every family registers presets into the catalog served by /v1/machines
// and sampled by the fuzzer.
package target

import (
	"errors"
	"fmt"

	"ursa/internal/machine"
)

// Family classifies a machine configuration into a target family.
type Family string

// Target families.
const (
	FamilyVLIW        Family = "vliw"        // the paper's homogeneous model
	FamilyHetero      Family = "hetero"      // per-class functional units
	FamilyClustered   Family = "clustered"   // clustered register files + copy bus
	FamilySuperscalar Family = "superscalar" // global issue width
	FamilyEDP         Family = "edp"         // buffered exposed datapath
)

// FamilyOf returns the family of a configuration. The models that change
// program shape or legality (clusters, buffers) dominate the ones that only
// change scheduling (issue width, heterogeneity).
func FamilyOf(m *machine.Config) Family {
	switch {
	case m.Clusters > 1:
		return FamilyClustered
	case m.BufferDepth > 0:
		return FamilyEDP
	case m.IssueWidth > 0:
		return FamilySuperscalar
	case m.Homogeneous:
		return FamilyVLIW
	}
	return FamilyHetero
}

// ErrUnsupported marks a (method, target) combination the toolchain
// declines rather than miscompiles. Like exact's solver refusals it is an
// expected outcome, not a bug: oracles and sweeps skip, servers report it
// as a client error.
var ErrUnsupported = errors.New("target: method unsupported on this machine")

// Unsupported reports whether err is a method/target refusal.
func Unsupported(err error) bool { return errors.Is(err, ErrUnsupported) }

// Supports checks whether the named pipeline method can compile for the
// machine. Method names follow pipeline.Method.String (the string form
// avoids an import cycle: the pipeline package consults this table).
//
// Clustered and exposed-datapath targets need the resource-aware lanes:
// the postpass pipeline colors registers before scheduling with no notion
// of clusters or buffers, and the exact solver's state encoding covers
// units and latencies only. Both refuse rather than emit illegal code.
func Supports(method string, m *machine.Config) error {
	fam := FamilyOf(m)
	refuse := func(why string) error {
		return fmt.Errorf("%w: %s on %s (%s)", ErrUnsupported, method, m.Name, why)
	}
	switch fam {
	case FamilyClustered:
		switch method {
		case "postpass":
			return refuse("graph-coloring allocation is cluster-blind")
		case "exact":
			return refuse("solver state does not encode per-cluster register files")
		}
	case FamilyEDP:
		switch method {
		case "postpass":
			return refuse("pre-colored scheduling graph loses value identity for buffer tracking")
		case "exact":
			return refuse("solver state does not encode output buffers")
		}
	}
	return nil
}

// A Preset is a named machine configuration clients can select without
// spelling out widths and register files. The set spans the paper's
// evaluation range (§5) plus one preset group per extended target family.
type Preset struct {
	Name        string
	Description string
	Config      *machine.Config
}

// Presets lists the catalog in presentation order: the paper's machines
// first, then the extended families.
func Presets() []Preset { return catalog }

// ByName returns the named preset, or nil.
func ByName(name string) *Preset {
	for i := range catalog {
		if catalog[i].Name == name {
			return &catalog[i]
		}
	}
	return nil
}

var catalog = []Preset{
	{"paper2x3", "the paper's Figure 2 machine: 2 FUs, 3 registers", machine.VLIW(2, 3)},
	{"vliw1x4", "scalar baseline: 1 FU, 4 registers", machine.VLIW(1, 4)},
	{"vliw2x4", "2 FUs, 4 registers", machine.VLIW(2, 4)},
	{"vliw2x8", "2 FUs, 8 registers", machine.VLIW(2, 8)},
	{"vliw4x6", "4 FUs, 6 registers", machine.VLIW(4, 6)},
	{"vliw4x8", "default: 4 FUs, 8 registers", machine.VLIW(4, 8)},
	{"vliw8x12", "wide: 8 FUs, 12 registers", machine.VLIW(8, 12)},
	{"hetero-small", "2 IALU + 1 FALU + 1 MEM + 1 BR, 6 int / 4 fp registers",
		machine.Heterogeneous(2, 1, 1, 1, 6, 4)},
	{"hetero-big", "2 IALU + 2 FALU + 2 MEM + 1 BR, 8 int / 8 fp registers",
		machine.Heterogeneous(2, 2, 2, 1, 8, 8)},
	{"clus2x2x4", "2 clusters of 2 FUs and 4 registers, 1 copy bus",
		machine.Clustered(2, 2, 4, 1)},
	{"clus2x4x6", "2 clusters of 4 FUs and 6 registers, 2 copy buses",
		machine.Clustered(2, 4, 6, 2)},
	{"clus4x2x4", "4 clusters of 2 FUs and 4 registers, 2 copy buses",
		machine.Clustered(4, 2, 4, 2)},
	{"suprax12", "12-wide superscalar: 6 IALU + 2 FALU + 3 MEM + 1 BR, pipelined, realistic latencies",
		suprax12()},
	{"edp2x6b1", "exposed datapath: 2 FUs with single-entry output buffers, 6 registers",
		machine.ExposedDatapath(2, 6, 1)},
	{"edp4x8b2", "exposed datapath: 4 FUs with 2-entry output buffers, 8 registers",
		machine.ExposedDatapath(4, 8, 2)},
}

// suprax12 builds the wide-superscalar preset: a heterogeneous unit mix
// behind a 12-instruction fetch bound, fully pipelined, with multi-cycle
// latencies — the dynamic-issue end of the design space the paper's §6
// points toward.
func suprax12() *machine.Config {
	m := machine.Heterogeneous(6, 2, 3, 1, 16, 16)
	m.Name = "suprax12"
	m.IssueWidth = 12
	m.Pipelined = true
	m.Latency = machine.RealisticLatency
	return m
}
