package target

import (
	"fmt"

	"ursa/internal/ir"
	"ursa/internal/machine"
)

// Clusterize partitions a straight-line SSA block over the machine's
// clusters and inserts explicit inter-cluster copies, mutating the block in
// place. After it returns, every instruction's operands are defined in the
// instruction's own cluster — except the copies themselves, which read
// across clusters on the transfer bus. It returns the number of copies
// inserted.
//
// The partition is a deterministic greedy walk in program order (which is
// topological, by SSA): each instruction lands on the cluster where most of
// its operands already live, with instruction-count load as the
// tie-breaker, so chains stay local and independent chains spread out.
// The copies the partition implies are the clustered machine's real cost,
// and downstream the reduction loop may trade any of them for a spill
// (transform.CopySpill) when the bus is the scarcer resource.
func Clusterize(b *ir.Block, m *machine.Config) (int, error) {
	k := m.NumClusters()
	if k <= 1 {
		return 0, nil
	}
	if k > 255 {
		return 0, fmt.Errorf("target: cluster count %d exceeds the 255 encodable clusters", k)
	}
	if ins := ir.LiveIns(b); len(ins) > 0 {
		return 0, fmt.Errorf("target: cannot clusterize a block with register live-ins (%s)",
			b.Func.NameOf(ins[0]))
	}
	f := b.Func

	defCluster := make(map[ir.VReg]uint8)
	load := make([]int, k)

	place := func(in *ir.Instr) uint8 {
		if in.IsBranch() {
			// Branches go where their (sole) operand lives; the block
			// terminator has no locality of its own.
			if len(in.Args) > 0 {
				if c, ok := defCluster[in.Args[0]]; ok {
					return c
				}
			}
			return 0
		}
		best, bestScore := 0, -1<<30
		for c := 0; c < k; c++ {
			resident := 0
			for _, u := range in.Uses() {
				if dc, ok := defCluster[u]; ok && int(dc) == c {
					resident++
				}
			}
			// A resident operand saves a copy (a bus slot plus a register
			// in the destination file), worth several instructions of
			// imbalance.
			score := 4*resident - load[c]
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		return uint8(best)
	}

	// copied maps (value, cluster) to the register holding the value's copy
	// in that cluster, so each value crosses to a given cluster at most
	// once no matter how many consumers it has there.
	type vc struct {
		v ir.VReg
		c uint8
	}
	copied := make(map[vc]ir.VReg)

	out := make([]*ir.Instr, 0, len(b.Instrs))
	copies := 0
	for _, in := range b.Instrs {
		c := place(in)
		in.Cluster = c
		// Rewire cross-cluster operands through copies, materializing each
		// needed copy right before its first consumer.
		rewire := func(v ir.VReg) ir.VReg {
			dc, ok := defCluster[v]
			if !ok || dc == c {
				return v
			}
			key := vc{v, c}
			if cp, ok := copied[key]; ok {
				return cp
			}
			cp := f.NewReg(fmt.Sprintf("x.%s.c%d", f.NameOf(v), c), f.ClassOf(v))
			out = append(out, &ir.Instr{
				Op:      ir.Copy,
				Dst:     cp,
				Args:    []ir.VReg{v},
				Cluster: c,
			})
			copied[key] = cp
			defCluster[cp] = c
			copies++
			return cp
		}
		for i, a := range in.Args {
			in.Args[i] = rewire(a)
		}
		if in.Index != ir.NoReg {
			in.Index = rewire(in.Index)
		}
		if in.Dst != ir.NoReg {
			defCluster[in.Dst] = c
		}
		if !in.IsBranch() {
			load[c]++
		}
		out = append(out, in)
	}
	b.Instrs = out
	b.Renumber()
	return copies, nil
}

// VerifyClusters checks the post-Clusterize invariant on a block: every
// non-copy instruction reads only values defined in its own cluster, every
// copy reads a value from a different cluster, and cluster ids are in
// range. Values never defined in the block (live-ins) are exempt.
func VerifyClusters(b *ir.Block, m *machine.Config) error {
	k := m.NumClusters()
	defCluster := make(map[ir.VReg]uint8)
	for _, in := range b.Instrs {
		if in.Dst != ir.NoReg {
			defCluster[in.Dst] = in.Cluster
		}
	}
	f := b.Func
	for _, in := range b.Instrs {
		if int(in.Cluster) >= k {
			return fmt.Errorf("target: %s: cluster %d out of range [0,%d)", f.InstrString(in), in.Cluster, k)
		}
		for _, u := range in.Uses() {
			dc, ok := defCluster[u]
			if !ok {
				continue
			}
			if in.IsCopy() {
				if dc == in.Cluster {
					return fmt.Errorf("target: %s: intra-cluster copy (value %s already in cluster %d)",
						f.InstrString(in), f.NameOf(u), dc)
				}
				continue
			}
			if dc != in.Cluster {
				return fmt.Errorf("target: %s (cluster %d): reads %s from cluster %d without a copy",
					f.InstrString(in), in.Cluster, f.NameOf(u), dc)
			}
		}
	}
	return nil
}
