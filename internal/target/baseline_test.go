package target_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"ursa/internal/machine"
	"ursa/internal/pipeline"
	"ursa/internal/workload"
)

// baselineMachines are the classic (pre-target-subsystem) configurations
// whose emitted code is frozen in testdata/preset_baseline.txt. The file
// was captured before the target catalog landed; this test proves the
// subsystem is purely additive — every legacy machine still compiles to
// byte-identical words under every method.
func baselineMachines() []*machine.Config {
	return []*machine.Config{
		machine.VLIW(2, 3), machine.VLIW(1, 4), machine.VLIW(2, 4), machine.VLIW(2, 8),
		machine.VLIW(4, 6), machine.VLIW(4, 8), machine.VLIW(8, 12),
		machine.Heterogeneous(2, 1, 1, 1, 6, 4), machine.Heterogeneous(2, 2, 2, 1, 8, 8),
	}
}

// renderBaseline compiles the Figure 2 example on every baseline machine ×
// method and renders the exact listing format of the committed snapshot.
func renderBaseline() string {
	f := workload.PaperExample(true)
	var sb strings.Builder
	for _, m := range baselineMachines() {
		for _, meth := range pipeline.AllMethods {
			fp, st, err := pipeline.CompileFunc(f, m, meth, pipeline.Options{})
			if err != nil {
				fmt.Fprintf(&sb, "== %s %s ERR %v\n", m.Name, meth, err)
				continue
			}
			fmt.Fprintf(&sb, "== %s %s words=%d spills=%d\n", m.Name, meth, st.Words, st.SpillOps)
			for _, bp := range fp.Blocks {
				for ci, w := range bp.Words {
					fmt.Fprintf(&sb, "  [%d]", ci)
					for _, in := range w {
						sb.WriteString(" {" + bp.Func.InstrString(in) + "}")
					}
					sb.WriteString("\n")
				}
			}
		}
	}
	return sb.String()
}

// TestPresetBaselineUnchanged byte-compares today's output against the
// frozen snapshot. Regenerate intentionally with
//
//	URSA_UPDATE_BASELINE=1 go test ./internal/target -run TestPresetBaselineUnchanged
func TestPresetBaselineUnchanged(t *testing.T) {
	const path = "testdata/preset_baseline.txt"
	got := renderBaseline()
	if os.Getenv("URSA_UPDATE_BASELINE") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		// Point at the first diverging line so a regression is actionable
		// without diffing 14 KB by hand.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("line %d diverges from %s:\n  frozen: %s\n  now:    %s", i+1, path, wl[i], gl[i])
			}
		}
		t.Fatalf("output length diverges from %s: %d vs %d lines", path, len(gl), len(wl))
	}
}
