package target

import (
	"testing"

	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/workload"
)

func TestPresetsValidate(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Presets() {
		if seen[p.Name] {
			t.Errorf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Config.Validate(); err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
		}
		if ByName(p.Name) == nil {
			t.Errorf("ByName(%q) = nil", p.Name)
		}
	}
	if ByName("no-such-machine") != nil {
		t.Error("ByName of an unknown preset must be nil")
	}
	// One preset per extended family must exist.
	want := map[Family]bool{FamilyClustered: false, FamilySuperscalar: false, FamilyEDP: false}
	for _, p := range Presets() {
		want[FamilyOf(p.Config)] = true
	}
	for fam, ok := range want {
		if !ok {
			t.Errorf("no preset in family %s", fam)
		}
	}
}

func TestFamilyOf(t *testing.T) {
	cases := []struct {
		m    *machine.Config
		want Family
	}{
		{machine.VLIW(4, 8), FamilyVLIW},
		{machine.Heterogeneous(2, 1, 1, 1, 8, 8), FamilyHetero},
		{machine.Clustered(2, 2, 4, 1), FamilyClustered},
		{machine.ExposedDatapath(4, 8, 2), FamilyEDP},
		{suprax12(), FamilySuperscalar},
	}
	for _, c := range cases {
		if got := FamilyOf(c.m); got != c.want {
			t.Errorf("FamilyOf(%s) = %s, want %s", c.m.Name, got, c.want)
		}
	}
}

func TestSupports(t *testing.T) {
	clustered := machine.Clustered(2, 2, 4, 1)
	edp := machine.ExposedDatapath(4, 8, 2)
	for _, method := range []string{"ursa", "prepass", "integrated-list"} {
		if err := Supports(method, clustered); err != nil {
			t.Errorf("Supports(%s, clustered) = %v", method, err)
		}
		if err := Supports(method, edp); err != nil {
			t.Errorf("Supports(%s, edp) = %v", method, err)
		}
	}
	for _, method := range []string{"postpass", "exact"} {
		err := Supports(method, clustered)
		if !Unsupported(err) {
			t.Errorf("Supports(%s, clustered) = %v, want ErrUnsupported", method, err)
		}
		if err = Supports(method, edp); !Unsupported(err) {
			t.Errorf("Supports(%s, edp) = %v, want ErrUnsupported", method, err)
		}
	}
	for _, method := range []string{"ursa", "prepass", "postpass", "integrated-list", "exact"} {
		if err := Supports(method, machine.VLIW(4, 8)); err != nil {
			t.Errorf("Supports(%s, vliw) = %v", method, err)
		}
		if err := Supports(method, suprax12()); err != nil {
			t.Errorf("Supports(%s, superscalar) = %v", method, err)
		}
	}
}

func TestClusterizePaperExample(t *testing.T) {
	for _, preset := range []string{"clus2x2x4", "clus2x4x6", "clus4x2x4"} {
		m := ByName(preset).Config
		f := workload.PaperExample(true)
		b := f.Blocks[0]
		n := len(b.Instrs)
		copies, err := Clusterize(b, m)
		if err != nil {
			t.Fatalf("%s: Clusterize: %v", preset, err)
		}
		if len(b.Instrs) != n+copies {
			t.Errorf("%s: %d instrs + %d copies != %d", preset, n, copies, len(b.Instrs))
		}
		if err := ir.Verify(f); err != nil {
			t.Errorf("%s: Verify after Clusterize: %v", preset, err)
		}
		if err := ir.VerifySSA(b); err != nil {
			t.Errorf("%s: VerifySSA after Clusterize: %v", preset, err)
		}
		if err := VerifyClusters(b, m); err != nil {
			t.Errorf("%s: %v", preset, err)
		}
		// The partition must actually use more than one cluster on a
		// block of this size.
		used := map[uint8]bool{}
		for _, in := range b.Instrs {
			used[in.Cluster] = true
		}
		if len(used) < 2 {
			t.Errorf("%s: partition used %d clusters", preset, len(used))
		}
	}
}

func TestClusterizeNoopUnclustered(t *testing.T) {
	f := workload.PaperExample(true)
	b := f.Blocks[0]
	n := len(b.Instrs)
	copies, err := Clusterize(b, machine.VLIW(4, 8))
	if err != nil || copies != 0 || len(b.Instrs) != n {
		t.Fatalf("Clusterize on unclustered machine: copies=%d err=%v", copies, err)
	}
}

func TestClusterizeCopyReuse(t *testing.T) {
	// One producer, many consumers forced far apart: each consumer cluster
	// receives at most one copy of the value.
	f := ir.NewFunc("fanout")
	b := f.NewBlock("entry")
	v := f.NewReg("v", ir.ClassInt)
	b.Append(&ir.Instr{Op: ir.ConstI, Dst: v, Imm: 7})
	var last ir.VReg
	for i := 0; i < 12; i++ {
		d := f.NewReg("", ir.ClassInt)
		b.Append(&ir.Instr{Op: ir.AddI, Dst: d, Args: []ir.VReg{v}, Imm: int64(i)})
		last = d
	}
	b.Append(&ir.Instr{Op: ir.Store, Sym: "out", Args: []ir.VReg{last}})
	m := machine.Clustered(4, 2, 4, 2)
	if _, err := Clusterize(b, m); err != nil {
		t.Fatal(err)
	}
	if err := VerifyClusters(b, m); err != nil {
		t.Fatal(err)
	}
	vCopies := 0
	for _, in := range b.Instrs {
		if in.IsCopy() && in.Args[0] == v {
			vCopies++
		}
	}
	if vCopies >= m.NumClusters() {
		t.Errorf("%d copies of one value for %d clusters; copies must be reused", vCopies, m.NumClusters())
	}
}
