package pipeline

import (
	"testing"

	"ursa/internal/frontend"
	"ursa/internal/machine"
	"ursa/internal/store"
)

const loopSrc = `
func loopy {
	var s = 0;
	for i = 0 to 20 { s = s + a[i]*2; b[i] = a[i] + 1; }
	out[0] = s;
}`

// TestCompileLoopFunc pins the loop entry end-to-end: the transform
// reports sane bounds, the compiled function runs and verifies.
func TestCompileLoopFunc(t *testing.T) {
	u, err := frontend.Compile(loopSrc, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.VLIW(4, 12)
	fp, st, ms, err := CompileLoopFunc(u.Func, m, URSA, Options{})
	if err != nil {
		t.Fatalf("CompileLoopFunc: %v", err)
	}
	if st.Words == 0 || fp == nil {
		t.Fatalf("empty compile: %+v", st)
	}
	lr := ms.Primary()
	if lr.AchievedII < lr.MII {
		t.Errorf("achieved II %d < MII %d", lr.AchievedII, lr.MII)
	}
}

// TestLoopCacheKeySeparation: the loop-pipelined compile of a function
// must never share a cache key with its straight compile, while equal
// requests must agree.
func TestLoopCacheKeySeparation(t *testing.T) {
	u, err := frontend.Compile(loopSrc, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.VLIW(4, 12)
	straight := CacheKey(u.Func, m, URSA, Options{})
	loop := LoopCacheKey(u.Func, m, URSA, Options{})
	if straight == loop {
		t.Fatal("loop and straight compiles share a cache key")
	}
	if loop != LoopCacheKey(u.Func, m, URSA, Options{}) {
		t.Fatal("LoopCacheKey not deterministic")
	}
	if loop == LoopCacheKey(u.Func, machine.VLIW(2, 8), URSA, Options{}) {
		t.Fatal("LoopCacheKey ignores the machine")
	}
}

// TestCompileLoopCached: cold compile populates the store, a fresh tier
// over the same disk serves the identical listing, and the modsched
// report is present on both paths.
func TestCompileLoopCached(t *testing.T) {
	u, err := frontend.Compile(loopSrc, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.VLIW(4, 12)
	disk := mustOpenStore(t)

	cold, coldStats, coldMS, err := CompileLoopCached(u.Func, m, URSA, Options{Results: store.NewTiered(0, disk, nil)})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.Tier != store.TierNone || cold.Prog == nil || coldMS == nil {
		t.Fatalf("cold compile served by %v, prog %v", cold.Tier, cold.Prog != nil)
	}
	warm, warmStats, warmMS, err := CompileLoopCached(u.Func, m, URSA, Options{Results: store.NewTiered(0, disk, nil)})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Tier != store.TierDisk {
		t.Fatalf("warm compile served by %v; want disk", warm.Tier)
	}
	if got, want := warm.Listing(), cold.Listing(); got != want {
		t.Errorf("warm listing differs from cold:\n--- cold ---\n%s--- warm ---\n%s", want, got)
	}
	if coldStats.Words != warmStats.Words || coldStats.SpillOps != warmStats.SpillOps {
		t.Errorf("stats diverge: cold %+v warm %+v", coldStats, warmStats)
	}
	if warmMS == nil || warmMS.Primary().II != coldMS.Primary().II {
		t.Errorf("modsched report missing or diverging on warm hit")
	}
}
