package pipeline

import (
	"errors"
	"strings"
	"testing"

	"ursa/internal/driver"
	"ursa/internal/frontend"
	"ursa/internal/machine"
	"ursa/internal/workload"
)

// multiBlockFunc returns a kernel that lowers to several basic blocks.
func multiBlockFunc(t *testing.T) *workload.Kernel {
	t.Helper()
	k := workload.KernelByName("matmul4")
	if k == nil {
		t.Fatal("matmul4 kernel missing")
	}
	return k
}

func renderFunc(t *testing.T, workers int, method Method) string {
	t.Helper()
	k := multiBlockFunc(t)
	u, err := frontend.Compile(k.Source, frontend.Options{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	fp, st, err := CompileFunc(u.Func, machine.VLIW(4, 6), method, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, prog := range fp.Blocks {
		sb.WriteString(prog.String())
	}
	sb.WriteString(st.Row())
	return sb.String()
}

// TestCompileFuncParallelIdentical: the emitted code and statistics of a
// multi-block function are byte-identical at -j 1 and -j 8, for URSA and
// a baseline.
func TestCompileFuncParallelIdentical(t *testing.T) {
	for _, method := range []Method{URSA, Prepass} {
		seq := renderFunc(t, 1, method)
		for run := 0; run < 3; run++ {
			if par := renderFunc(t, 8, method); par != seq {
				t.Fatalf("%s: -j8 output differs from -j1 (run %d)", method, run)
			}
		}
	}
}

// TestRunJobsDeterministic: a function × method batch reports identically
// at every worker count, with the jobs sharing one *ir.Func and one
// *ir.State.
func TestRunJobsDeterministic(t *testing.T) {
	k := workload.KernelByName("poly")
	u, err := frontend.Compile(k.Source, frontend.Options{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.VLIW(4, 6)
	init := k.State(5)
	var jobs []Job
	for _, method := range Methods {
		jobs = append(jobs, Job{Name: k.Name, Func: u.Func, Machine: m, Method: method, Init: init})
	}
	render := func(workers int) string {
		results, err := RunJobs(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range results {
			sb.WriteString(r.Stats.Row())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	seq := render(1)
	for run := 0; run < 3; run++ {
		if par := render(8); par != seq {
			t.Fatalf("-j8 stats differ from -j1:\n%s\nvs\n%s", par, seq)
		}
	}
}

// TestRunJobsPanicIsolation: a job that panics (nil Func) reports a
// PanicError; with KeepGoing semantics unavailable at this level, the
// batch is fail-fast and later jobs are skipped, but the process and the
// in-flight jobs survive.
func TestRunJobsPanicIsolation(t *testing.T) {
	k := workload.KernelByName("dot")
	u, err := frontend.Compile(k.Source, frontend.Options{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.VLIW(2, 8)
	jobs := []Job{
		{Name: "bad", Func: nil, Machine: m, Method: URSA}, // panics in CompileFunc
		{Name: "good", Func: u.Func, Machine: m, Method: Prepass},
	}
	results, err := RunJobs(jobs, 1)
	if err == nil {
		t.Fatal("want a batch error from the panicking job")
	}
	var pe *driver.PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("job 0 error = %v, want PanicError", results[0].Err)
	}
	if !errors.Is(results[1].Err, driver.ErrSkipped) {
		t.Fatalf("job 1 error = %v, want ErrSkipped (fail-fast)", results[1].Err)
	}
}
