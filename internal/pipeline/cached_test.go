package pipeline

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ursa/internal/machine"
	"ursa/internal/store"
	"ursa/internal/workload"
)

func mustOpenStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// TestCachedColdWarmIdentical is the subsystem's correctness bar: for
// every pipeline — the guarded exact lane included, since the paper
// example sits well under its node limit — on two machine shapes, a
// disk-served warm compile must reproduce the cold compile's listings
// and statistics byte-for-byte.
func TestCachedColdWarmIdentical(t *testing.T) {
	f := workload.PaperExample(true)
	machines := []*machine.Config{machine.VLIW(4, 8), machine.VLIW(2, 4)}
	for _, m := range machines {
		for _, method := range AllMethods {
			t.Run(m.Name+"/"+method.String(), func(t *testing.T) {
				disk := mustOpenStore(t)
				cold, coldStats, err := CompileFuncCached(f, m, method,
					Options{Results: store.NewTiered(0, disk, nil)})
				if err != nil {
					t.Fatalf("cold compile: %v", err)
				}
				if cold.Tier != store.TierNone || cold.Prog == nil {
					t.Fatalf("cold compile served by %v, prog %v; want a fresh compile", cold.Tier, cold.Prog != nil)
				}
				// A fresh TieredCache over the same disk store models a
				// restart: memory is cold, the artifact is on disk.
				warm, warmStats, err := CompileFuncCached(f, m, method,
					Options{Results: store.NewTiered(0, disk, nil)})
				if err != nil {
					t.Fatalf("warm compile: %v", err)
				}
				if warm.Tier != store.TierDisk {
					t.Fatalf("warm compile served by %v; want disk", warm.Tier)
				}
				if warm.Prog != nil {
					t.Fatal("cache-served compile carries an in-memory program")
				}
				if got, want := warm.Listing(), cold.Listing(); got != want {
					t.Errorf("warm listing differs from cold:\n--- cold ---\n%s--- warm ---\n%s", want, got)
				}
				if *warmStats != *coldStats {
					t.Errorf("warm stats %+v != cold stats %+v", *warmStats, *coldStats)
				}
			})
		}
	}
}

func TestCachedMemoryHit(t *testing.T) {
	f := workload.PaperExample(true)
	m := machine.VLIW(4, 8)
	tc := store.NewTiered(0, nil, nil)
	if _, _, err := CompileFuncCached(f, m, URSA, Options{Results: tc}); err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, _, err := CompileFuncCached(f, m, URSA, Options{Results: tc})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Tier != store.TierMem {
		t.Fatalf("second compile served by %v; want memory", warm.Tier)
	}
}

// TestCachedPeerServed stands up an HTTP peer holding a warm producer's
// artifacts and checks a cold consumer compiles nothing: the result comes
// from the peer tier, byte-identical.
func TestCachedPeerServed(t *testing.T) {
	f := workload.PaperExample(true)
	m := machine.VLIW(4, 8)
	producer := store.NewTiered(0, mustOpenStore(t), nil)
	cold, coldStats, err := CompileFuncCached(f, m, URSA, Options{Results: producer})
	if err != nil {
		t.Fatalf("producer compile: %v", err)
	}

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		data, ok := producer.LocalGet(k)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Write(store.Frame(data))
	}))
	defer srv.Close()
	peer, err := store.NewPeer(srv.URL, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}

	consumer := store.NewTiered(0, mustOpenStore(t), peer)
	got, gotStats, err := CompileFuncCached(f, m, URSA, Options{Results: consumer})
	if err != nil {
		t.Fatalf("consumer compile: %v", err)
	}
	if got.Tier != store.TierPeer {
		t.Fatalf("consumer served by %v; want peer", got.Tier)
	}
	if got.Listing() != cold.Listing() {
		t.Error("peer-served listing differs from the producer's compile")
	}
	if *gotStats != *coldStats {
		t.Errorf("peer-served stats %+v != producer stats %+v", *gotStats, *coldStats)
	}
	// The peer hit refilled the consumer's local tiers: with the peer gone
	// the next lookup is a memory hit.
	srv.Close()
	again, _, err := CompileFuncCached(f, m, URSA, Options{Results: consumer})
	if err != nil || again.Tier != store.TierMem {
		t.Fatalf("after refill served by %v, err %v; want memory", again.Tier, err)
	}
}

// TestCachedMatchesPlainCompile: with no cache configured the cached
// entry point is CompileFunc with extra bookkeeping — outputs identical.
func TestCachedMatchesPlainCompile(t *testing.T) {
	f := workload.PaperExample(true)
	m := machine.VLIW(4, 8)
	for _, method := range AllMethods {
		plainProg, plainStats, err := CompileFunc(f, m, method, Options{})
		if err != nil {
			t.Fatalf("%v plain: %v", method, err)
		}
		cf, cachedStats, err := CompileFuncCached(f, m, method, Options{})
		if err != nil {
			t.Fatalf("%v cached: %v", method, err)
		}
		var want strings.Builder
		for i, b := range f.Blocks {
			want.WriteString(b.Label + ":\n" + plainProg.Blocks[i].String())
		}
		if cf.Listing() != want.String() {
			t.Errorf("%v: cached-path listing differs from plain compile", method)
		}
		if *cachedStats != *plainStats {
			t.Errorf("%v: stats differ: %+v vs %+v", method, *cachedStats, *plainStats)
		}
	}
}

// TestCachedCorruptArtifactRecompiles: a corrupted disk artifact must be
// detected, counted, and transparently replaced by a fresh compile.
func TestCachedCorruptArtifactRecompiles(t *testing.T) {
	f := workload.PaperExample(true)
	m := machine.VLIW(4, 8)
	dir := t.TempDir()
	disk, err := store.Open(dir, 0)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cold, _, err := CompileFuncCached(f, m, URSA, Options{Results: store.NewTiered(0, disk, nil)})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	path := filepath.Join(dir, "objects", cold.Key[:2], cold.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read stored artifact: %v", err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("corrupt artifact: %v", err)
	}
	after, _, err := CompileFuncCached(f, m, URSA, Options{Results: store.NewTiered(0, disk, nil)})
	if err != nil {
		t.Fatalf("compile over corrupt artifact: %v", err)
	}
	if after.Tier != store.TierNone || after.Prog == nil {
		t.Fatalf("corrupt artifact served from %v; want a recompile", after.Tier)
	}
	if after.Listing() != cold.Listing() {
		t.Error("recompiled listing differs")
	}
	if st := disk.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d; want 1", st.Corruptions)
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	f := workload.PaperExample(true)
	base := CacheKey(f, machine.VLIW(4, 8), URSA, Options{})

	// The preset name is presentation, not semantics: a renamed but
	// identical machine shares the cache entry.
	renamed := machine.VLIW(4, 8)
	renamed.Name = "totally-different-label"
	if CacheKey(f, renamed, URSA, Options{}) != base {
		t.Error("machine name changed the cache key")
	}
	// The worker count cannot change emitted code (results are identical
	// at every worker count by design), so it must not split the cache.
	if CacheKey(f, machine.VLIW(4, 8), URSA, Options{Workers: 7}) != base {
		t.Error("worker count changed the cache key")
	}

	// Everything semantic must split the key.
	diff := map[string]string{
		"machine width":  CacheKey(f, machine.VLIW(2, 8), URSA, Options{}),
		"register count": CacheKey(f, machine.VLIW(4, 6), URSA, Options{}),
		"method":         CacheKey(f, machine.VLIW(4, 8), Prepass, Options{}),
		"optimize flag":  CacheKey(f, machine.VLIW(4, 8), URSA, Options{Optimize: true}),
		"function":       CacheKey(workload.PaperExample(false), machine.VLIW(4, 8), URSA, Options{}),
	}
	seen := map[string]string{base: "base"}
	for what, k := range diff {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collided with %s", what, prev)
		}
		seen[k] = what
	}

	lat := machine.VLIW(4, 8)
	lat.Latency = machine.RealisticLatency
	if CacheKey(f, lat, URSA, Options{}) == base {
		t.Error("latency model did not change the cache key")
	}
}
