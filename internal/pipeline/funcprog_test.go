package pipeline

import (
	"strings"
	"testing"

	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

func loopFunc(t *testing.T) (*ir.Func, *ir.State) {
	t.Helper()
	u, err := frontend.Compile(`
		var s = 0;
		for i = 0 to 10 {
			if (c[i] > 3) { s = s + c[i]; } else { s = s - c[i]; }
		}
		out[0] = s;
	`, frontend.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	init := ir.NewState()
	for i := int64(0); i < 10; i++ {
		init.StoreInt("c", i, i)
	}
	return u.Func, init
}

func TestCompileFuncAllMethods(t *testing.T) {
	f, init := loopFunc(t)
	m := machine.VLIW(2, 5)
	want := init.Clone()
	if _, err := want.Run(f, 100000); err != nil {
		t.Fatal(err)
	}
	wantOut := want.Mem[ir.Addr{Sym: "out"}]

	for _, method := range Methods {
		fp, st, err := CompileFunc(f, m, method, Options{})
		if err != nil {
			t.Fatalf("%s: CompileFunc: %v", method, err)
		}
		if len(fp.Blocks) != len(f.Blocks) {
			t.Fatalf("%s: %d programs for %d blocks", method, len(fp.Blocks), len(f.Blocks))
		}
		if st.Words == 0 {
			t.Errorf("%s: zero words", method)
		}
		res, err := fp.Run(init.Clone(), 1_000_000)
		if err != nil {
			t.Fatalf("%s: Run: %v", method, err)
		}
		if res.BlockXct < 10 {
			t.Errorf("%s: only %d block executions for a 10-iteration loop", method, res.BlockXct)
		}
		if got := res.State.Mem[ir.Addr{Sym: "out"}]; got != wantOut {
			t.Errorf("%s: out = %d, want %d", method, got.Int(), wantOut.Int())
		}
	}
}

func TestFuncRunCycleBudget(t *testing.T) {
	u, err := frontend.Compile(`
		var i = 0;
		while (i < 1000000) { i = i + 1; }
		out[0] = i;
	`, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := CompileFunc(u.Func, machine.VLIW(2, 4), URSA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Run(ir.NewState(), 500); err == nil {
		t.Fatal("cycle budget not enforced")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEvaluateFuncCatchesMiscompiles(t *testing.T) {
	f, init := loopFunc(t)
	m := machine.VLIW(2, 5)
	fp, _, err := CompileFunc(f, m, URSA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one emitted immediate and check compareMem catches it.
	corrupted := false
	for _, prog := range fp.Blocks {
		for _, in := range prog.Instrs() {
			if in.Op == ir.AddI && in.Imm == 1 && !corrupted {
				in.Imm = 2
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Skip("no candidate immediate to corrupt")
	}
	ref := init.Clone()
	if _, err := ref.Run(f, 1_000_000); err != nil {
		t.Fatal(err)
	}
	res, err := fp.Run(init.Clone(), 1_000_000)
	if err != nil {
		// Corruption may also livelock the loop counter; either outcome
		// demonstrates detection.
		return
	}
	if err := compareMem(ref, res.State); err == nil {
		t.Fatal("corrupted program passed memory comparison")
	}
}

func TestEvaluateFuncHeterogeneousWithLatency(t *testing.T) {
	f, init := loopFunc(t)
	m := machine.Heterogeneous(2, 1, 1, 1, 6, 6)
	m.Latency = machine.RealisticLatency
	st, err := EvaluateFunc(f, m, URSA, init, 1_000_000, Options{})
	if err != nil {
		t.Fatalf("EvaluateFunc: %v", err)
	}
	if !st.Verified || st.Cycles == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEvaluateFuncPipelinedMachine(t *testing.T) {
	f, init := loopFunc(t)
	m := machine.VLIW(2, 6)
	m.Latency = machine.RealisticLatency
	m.Pipelined = true
	st, err := EvaluateFunc(f, m, URSA, init, 1_000_000, Options{})
	if err != nil {
		t.Fatalf("EvaluateFunc: %v", err)
	}
	mNon := machine.VLIW(2, 6)
	mNon.Latency = machine.RealisticLatency
	stNon, err := EvaluateFunc(f, mNon, URSA, init, 1_000_000, Options{})
	if err != nil {
		t.Fatalf("non-pipelined: %v", err)
	}
	if st.Cycles > stNon.Cycles {
		t.Errorf("pipelined (%d cycles) slower than non-pipelined (%d)", st.Cycles, stNon.Cycles)
	}
}
