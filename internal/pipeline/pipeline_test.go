package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/ir"
	"ursa/internal/machine"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
	store Z[0], z
}
`

func paperInit() *ir.State {
	st := ir.NewState()
	st.StoreInt("V", 0, 7)
	return st
}

func TestAllPipelinesCorrect(t *testing.T) {
	f := ir.MustParse(paperSrc)
	machines := []*machine.Config{
		machine.VLIW(4, 8), machine.VLIW(2, 4), machine.VLIW(4, 3), machine.VLIW(1, 5),
	}
	for _, m := range machines {
		for _, method := range Methods {
			st, err := Evaluate(f.Blocks[0], m, method, paperInit(), Options{})
			if err != nil {
				t.Errorf("%s on %s: %v", method, m.Name, err)
				continue
			}
			if !st.Verified {
				t.Errorf("%s on %s: not verified", method, m.Name)
			}
			if st.Cycles <= 0 {
				t.Errorf("%s on %s: cycles = %d", method, m.Name, st.Cycles)
			}
			if st.RegsUsed[ir.ClassInt] > m.Regs[ir.ClassInt] {
				t.Errorf("%s on %s: used %d registers", method, m.Name, st.RegsUsed[ir.ClassInt])
			}
		}
	}
}

func TestURSAAvoidsSpillsWherePrepassSpills(t *testing.T) {
	// The paper's core claim: with tight registers, prepass scheduling is
	// forced into spill patching while URSA sequences the DAG beforehand.
	f := ir.MustParse(paperSrc)
	m := machine.VLIW(4, 3)
	ursa, err := Evaluate(f.Blocks[0], m, URSA, paperInit(), Options{})
	if err != nil {
		t.Fatalf("ursa: %v", err)
	}
	f2 := ir.MustParse(paperSrc)
	pre, err := Evaluate(f2.Blocks[0], m, Prepass, paperInit(), Options{})
	if err != nil {
		t.Fatalf("prepass: %v", err)
	}
	if pre.SpillOps == 0 {
		t.Error("prepass inserted no spill code at 3 registers (pressure is 5)")
	}
	if ursa.SpillOps > pre.SpillOps {
		t.Errorf("URSA spill ops %d > prepass %d", ursa.SpillOps, pre.SpillOps)
	}
}

func TestRejectsLiveInBlocks(t *testing.T) {
	f := ir.MustParse("entry:\n\ta = add p, q\n\tstore O[0], a")
	if _, _, err := Compile(f.Blocks[0], machine.VLIW(2, 4), URSA, Options{}); err == nil {
		t.Fatal("block with register live-ins accepted")
	}
}

func TestStatsRow(t *testing.T) {
	f := ir.MustParse(paperSrc)
	st, err := Evaluate(f.Blocks[0], machine.VLIW(2, 4), URSA, paperInit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row := st.Row(); len(row) == 0 {
		t.Error("empty row")
	}
}

func TestEvaluateAllOrder(t *testing.T) {
	f := ir.MustParse(paperSrc)
	all, err := EvaluateAll(f.Blocks[0], machine.VLIW(2, 5), paperInit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Methods) {
		t.Fatalf("%d stats, want %d", len(all), len(Methods))
	}
	for i, st := range all {
		if st.Method != Methods[i] {
			t.Errorf("stats[%d] = %s, want %s", i, st.Method, Methods[i])
		}
	}
}

// TestPipelinesRandomCrossCheck compiles random closed blocks through all
// four pipelines on assorted machines and verifies each result.
func TestPipelinesRandomCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	machines := []*machine.Config{
		machine.VLIW(2, 4), machine.VLIW(4, 6), machine.VLIW(1, 3),
		machine.Heterogeneous(2, 1, 1, 1, 5, 5),
	}
	for trial := 0; trial < 15; trial++ {
		f := ir.NewFunc("rand")
		b := f.NewBlock("entry")
		var vals []ir.VReg
		n := 6 + rng.Intn(16)
		for i := 0; i < n; i++ {
			dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
			switch {
			case len(vals) == 0 || rng.Intn(5) == 0:
				b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i % 8)})
			case rng.Intn(3) == 0:
				a := vals[rng.Intn(len(vals))]
				b.Append(&ir.Instr{Op: ir.MulI, Dst: dst, Args: []ir.VReg{a}, Imm: int64(1 + rng.Intn(4))})
			default:
				a := vals[rng.Intn(len(vals))]
				c := vals[rng.Intn(len(vals))]
				op := []ir.Op{ir.Add, ir.Sub, ir.Xor}[rng.Intn(3)]
				b.Append(&ir.Instr{Op: op, Dst: dst, Args: []ir.VReg{a, c}})
			}
			vals = append(vals, dst)
		}
		used := map[ir.VReg]bool{}
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				used[u] = true
			}
		}
		for i, v := range vals {
			if !used[v] {
				b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{v}, Sym: "OUT", Off: int64(i)})
			}
		}

		init := ir.NewState()
		for i := int64(0); i < 8; i++ {
			init.StoreInt("A", i, rng.Int63n(50))
		}
		m := machines[rng.Intn(len(machines))]
		for _, method := range Methods {
			if _, err := Evaluate(b, m, method, init, Options{}); err != nil {
				t.Fatalf("trial %d: %s on %s: %v", trial, method, m.Name, err)
			}
		}
	}
}
