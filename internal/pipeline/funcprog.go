package pipeline

import (
	"fmt"

	"ursa/internal/assign"
	"ursa/internal/driver"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/vliwsim"
)

// FuncProgram is a whole compiled function: one VLIW program per basic
// block, executed by chaining block exits. Blocks drain completely before
// control transfers (basic-block-scoped VLIW, the paper's compilation
// unit).
type FuncProgram struct {
	Source  *ir.Func
	Machine *machine.Config
	Method  Method
	Blocks  []*assign.Program // by layout order of Source.Blocks
	labels  map[string]int
}

// CompileFunc compiles every basic block of the function through the
// selected pipeline. The returned stats aggregate the static per-block
// numbers (max register usage, total spill ops, total words).
//
// With opts.Workers outside [0, 1] the blocks compile concurrently on a
// bounded worker pool; every block works on its own clone of the function
// (see Compile), results are collected by block index, and the emitted
// program is byte-identical to the sequential one.
func CompileFunc(f *ir.Func, m *machine.Config, method Method, opts Options) (*FuncProgram, *Stats, error) {
	fp := &FuncProgram{
		Source:  f,
		Machine: m,
		Method:  method,
		labels:  make(map[string]int, len(f.Blocks)),
	}
	type compiled struct {
		prog *assign.Program
		st   *Stats
	}
	outs, _, err := driver.Map(len(f.Blocks), func(i int) (compiled, error) {
		prog, st, err := Compile(f.Blocks[i], m, method, opts)
		if err != nil {
			return compiled{}, fmt.Errorf("pipeline: block %s: %w", f.Blocks[i].Label, err)
		}
		return compiled{prog, st}, nil
	}, driver.Options{Workers: blockWorkers(opts.Workers), Ctx: opts.Ctx})
	if err != nil {
		return nil, nil, err
	}
	agg := &Stats{Method: method, Machine: m.Name, URSAFits: true}
	for i, b := range f.Blocks {
		fp.labels[b.Label] = i
		st := outs[i].st
		fp.Blocks = append(fp.Blocks, outs[i].prog)
		agg.Words += st.Words
		agg.SpillOps += st.SpillOps
		agg.URSATransforms += st.URSATransforms
		if method == URSA && !st.URSAFits {
			agg.URSAFits = false
		}
		for c := range st.RegsUsed {
			if st.RegsUsed[c] > agg.RegsUsed[c] {
				agg.RegsUsed[c] = st.RegsUsed[c]
			}
		}
	}
	return fp, agg, nil
}

// blockWorkers maps the Options.Workers convention (0/1 sequential, <0
// GOMAXPROCS, n>1 bounded) onto driver.Options.Workers (<=0 GOMAXPROCS).
func blockWorkers(w int) int {
	switch {
	case w == 0 || w == 1:
		return 1
	case w < 0:
		return 0
	default:
		return w
	}
}

// FuncResult reports a whole-function execution.
type FuncResult struct {
	Cycles   int
	Issued   int
	SpillOps int
	State    *ir.State
	BlockXct int // block executions
}

// Run executes the compiled function from its first block against a copy
// of init, chaining block exits, until a return, a fall-off-the-end, or the
// cycle budget is exhausted.
func (fp *FuncProgram) Run(init *ir.State, maxCycles int) (*FuncResult, error) {
	res := &FuncResult{State: init.Clone()}
	cur := 0
	for {
		if cur >= len(fp.Blocks) {
			return res, nil
		}
		r, err := vliwsim.Run(fp.Blocks[cur], res.State)
		if err != nil {
			return nil, fmt.Errorf("pipeline: block %s: %w", fp.Source.Blocks[cur].Label, err)
		}
		res.State = r.State
		res.Cycles += r.Cycles
		res.Issued += r.Issued
		res.SpillOps += r.SpillOps
		res.BlockXct++
		if res.Cycles > maxCycles {
			return nil, fmt.Errorf("pipeline: cycle budget exceeded (%d)", maxCycles)
		}
		switch r.Exit {
		case "ret":
			return res, nil
		case "":
			cur++
		default:
			next, ok := fp.labels[r.Exit]
			if !ok {
				return nil, fmt.Errorf("pipeline: exit to unknown label %q", r.Exit)
			}
			cur = next
		}
	}
}

// EvaluateFunc compiles and executes the whole function, verifies its
// memory effects against the sequential interpreter, and returns dynamic
// statistics.
func EvaluateFunc(f *ir.Func, m *machine.Config, method Method, init *ir.State, maxCycles int, opts Options) (*Stats, error) {
	fp, st, err := CompileFunc(f, m, method, opts)
	if err != nil {
		return nil, err
	}
	ref := init.Clone()
	if _, err := ref.Run(f, maxCycles*8+100000); err != nil {
		return nil, fmt.Errorf("pipeline: reference: %w", err)
	}
	res, err := fp.Run(init, maxCycles)
	if err != nil {
		return nil, err
	}
	if err := compareMem(ref, res.State); err != nil {
		return nil, fmt.Errorf("pipeline %s on %s: %w", method, m.Name, err)
	}
	st.Verified = true
	st.Cycles = res.Cycles
	st.Issued = res.Issued
	st.SpillOps = res.SpillOps // dynamic counts replace static ones
	if res.Cycles > 0 {
		st.Utilization = float64(res.Issued) / float64(res.Cycles)
	}
	return st, nil
}

func compareMem(ref, got *ir.State) error {
	isSpill := func(sym string) bool {
		return len(sym) >= 5 && sym[:5] == "spill"
	}
	for addr, want := range ref.Mem {
		if isSpill(addr.Sym) {
			continue
		}
		if g := got.Mem[addr]; g != want {
			return fmt.Errorf("mem %s[%d] = %d, want %d", addr.Sym, addr.Off, g.Int(), want.Int())
		}
	}
	for addr, g := range got.Mem {
		if isSpill(addr.Sym) {
			continue
		}
		if want := ref.Mem[addr]; g != want {
			return fmt.Errorf("mem %s[%d] = %d, want %d", addr.Sym, addr.Off, g.Int(), want.Int())
		}
	}
	return nil
}

// RunInOrder executes the compiled function like Run, but each block's
// instructions issue in linear order on an in-order superscalar core with
// interlocks (vliwsim.RunInOrder) rather than as VLIW words — the §6
// superscalar target. The emitted *order* is what carries the scheduling
// quality.
func (fp *FuncProgram) RunInOrder(init *ir.State, maxCycles int) (*FuncResult, error) {
	res := &FuncResult{State: init.Clone()}
	cur := 0
	for {
		if cur >= len(fp.Blocks) {
			return res, nil
		}
		r, err := vliwsim.RunInOrder(fp.Blocks[cur], res.State)
		if err != nil {
			return nil, fmt.Errorf("pipeline: block %s: %w", fp.Source.Blocks[cur].Label, err)
		}
		res.State = r.State
		res.Cycles += r.Cycles
		res.Issued += r.Issued
		res.SpillOps += r.SpillOps
		res.BlockXct++
		if res.Cycles > maxCycles {
			return nil, fmt.Errorf("pipeline: cycle budget exceeded (%d)", maxCycles)
		}
		switch r.Exit {
		case "ret":
			return res, nil
		case "":
			cur++
		default:
			next, ok := fp.labels[r.Exit]
			if !ok {
				return nil, fmt.Errorf("pipeline: exit to unknown label %q", r.Exit)
			}
			cur = next
		}
	}
}

// EvaluateFuncInOrder compiles with the selected pipeline and executes on
// the in-order superscalar model, verifying memory against the interpreter.
func EvaluateFuncInOrder(f *ir.Func, m *machine.Config, method Method, init *ir.State, maxCycles int, opts Options) (*Stats, error) {
	fp, st, err := CompileFunc(f, m, method, opts)
	if err != nil {
		return nil, err
	}
	ref := init.Clone()
	if _, err := ref.Run(f, maxCycles*8+100000); err != nil {
		return nil, fmt.Errorf("pipeline: reference: %w", err)
	}
	res, err := fp.RunInOrder(init, maxCycles)
	if err != nil {
		return nil, err
	}
	if err := compareMem(ref, res.State); err != nil {
		return nil, fmt.Errorf("pipeline %s (in-order) on %s: %w", method, m.Name, err)
	}
	st.Verified = true
	st.Cycles = res.Cycles
	st.Issued = res.Issued
	st.SpillOps = res.SpillOps
	if res.Cycles > 0 {
		st.Utilization = float64(res.Issued) / float64(res.Cycles)
	}
	return st, nil
}
