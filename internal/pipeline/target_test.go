package pipeline

import (
	"errors"
	"strings"
	"testing"

	"ursa/internal/ir"
	"ursa/internal/sched"
	"ursa/internal/target"
	"ursa/internal/vliwsim"
	"ursa/internal/workload"
)

// TestTargetFamiliesEndToEnd compiles the paper's Figure 2 example on every
// preset of the extended target families, through every supported method,
// and verifies the emitted code on the simulator (which audits per-cluster
// units, cluster-local register reads, and issue width inline) plus the
// static buffer audit for exposed-datapath machines.
func TestTargetFamiliesEndToEnd(t *testing.T) {
	for _, p := range target.Presets() {
		fam := target.FamilyOf(p.Config)
		if fam == target.FamilyVLIW || fam == target.FamilyHetero {
			continue // the pre-existing families, covered by the baseline tests
		}
		for _, method := range AllMethods {
			t.Run(p.Name+"/"+method.String(), func(t *testing.T) {
				f := workload.PaperExample(true)
				b := f.Blocks[0]
				prog, st, err := Compile(b, p.Config, method, Options{})
				if err != nil {
					if target.Unsupported(err) {
						if method == Postpass || method == Exact {
							t.Skipf("unsupported as designed: %v", err)
						}
						t.Fatalf("%s unexpectedly unsupported: %v", method, err)
					}
					if errors.Is(err, sched.ErrBuffer) {
						// Every lane — assign.Emit callers and the direct
						// sched.List integrated-list lane alike — falls
						// back to buffer-eviction emission on deadlock, so
						// ErrBuffer must never escape Compile.
						t.Fatalf("%s lane leaked a buffer deadlock: %v", method, err)
					}
					t.Fatalf("Compile: %v", err)
				}
				if _, err := vliwsim.Verify(prog, b, &ir.State{}); err != nil {
					t.Fatalf("Verify: %v\n%s", err, prog)
				}
				if p.Config.BufferDepth > 0 && prog.Spills == 0 {
					if err := vliwsim.AuditBuffers(prog); err != nil {
						t.Fatalf("AuditBuffers: %v\n%s", err, prog)
					}
				}
				if fam == target.FamilyClustered {
					seen := map[uint8]bool{}
					copies := 0
					for _, in := range prog.Instrs() {
						seen[in.Cluster] = true
						if in.IsCopy() {
							copies++
						}
					}
					if len(seen) < 2 {
						t.Errorf("clustered compile used %d clusters", len(seen))
					}
					for _, in := range prog.Instrs() {
						if in.Dst != ir.NoReg && int(in.Cluster) > 0 {
							name := prog.Func.NameOf(in.Dst)
							if !strings.HasPrefix(name, "c") {
								t.Errorf("cluster %d instr writes uncl. register %s", in.Cluster, name)
							}
						}
					}
					t.Logf("%s/%s: %d words, %d copies, %d spills (ursa fits=%v, %d transforms)",
						p.Name, method, st.Words, copies, st.SpillOps, st.URSAFits, st.URSATransforms)
				} else {
					t.Logf("%s/%s: %d words, %d spills", p.Name, method, st.Words, st.SpillOps)
				}
			})
		}
	}
}
