package pipeline

import (
	"context"
	"fmt"

	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/store"
)

// CachedFunc is the outcome of CompileFuncCached: either a fresh compile
// (Prog set, Tier == store.TierNone) or a previously emitted result
// served from a cache tier (Prog nil, listings in Artifact). In both
// cases Artifact carries the per-block listings byte-identically to what
// the pipeline emitted when the artifact was created.
type CachedFunc struct {
	Key      string
	Tier     store.Tier
	Artifact *store.Artifact
	// Prog is the in-memory program, available only when this process
	// compiled (a cached artifact stores listings, not executable IR —
	// requests that need to run code bypass the result cache).
	Prog *FuncProgram
}

// CompileFuncCached is CompileFunc behind the tiered compile-result
// cache: when opts.Results holds an artifact for this exact (function,
// machine, method, options, schema) fingerprint, the previously emitted
// listings and statistics are returned without running the allocator;
// otherwise the function compiles normally and the artifact is stored
// through every cache tier. Concurrent misses for one key compile once.
//
// Every cache failure mode — no cache configured, disk unwritable,
// corrupt artifact, peer down, undecodable payload — degrades to a plain
// CompileFunc. Compile errors are never cached.
func CompileFuncCached(f *ir.Func, m *machine.Config, method Method, opts Options) (*CachedFunc, *Stats, error) {
	if opts.Results == nil {
		fp, st, err := CompileFunc(f, m, method, opts)
		if err != nil {
			return nil, nil, err
		}
		return &CachedFunc{Tier: store.TierNone, Artifact: artifactOf(f, fp, st), Prog: fp}, st, nil
	}

	key := CacheKey(f, m, method, opts)
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var fresh *FuncProgram
	var freshStats *Stats
	data, tier, err := opts.Results.GetOrComputeCtx(ctx, key, func() ([]byte, error) {
		fp, st, err := CompileFunc(f, m, method, opts)
		if err != nil {
			return nil, err
		}
		fresh, freshStats = fp, st
		return artifactOf(f, fp, st).Encode()
	})
	if err != nil {
		return nil, nil, err
	}
	if fresh != nil {
		// This caller was the flight leader and compiled; hand back the
		// in-memory program alongside the artifact it stored.
		return &CachedFunc{Key: key, Tier: store.TierNone, Artifact: artifactOf(f, fresh, freshStats), Prog: fresh}, freshStats, nil
	}
	art, derr := store.DecodeArtifact(data)
	if derr != nil {
		// The bytes were intact (integrity-checked by the store) but not
		// an artifact we understand; compile as if the cache missed.
		fp, st, err := CompileFunc(f, m, method, opts)
		if err != nil {
			return nil, nil, err
		}
		return &CachedFunc{Key: key, Tier: store.TierNone, Artifact: artifactOf(f, fp, st), Prog: fp}, st, nil
	}
	return &CachedFunc{Key: key, Tier: tier, Artifact: art}, statsFromArtifact(art, method, m.Name), nil
}

// statsFromArtifact reconstructs the static pipeline statistics a warm
// hit must report identically to the cold compile that produced them.
func statsFromArtifact(a *store.Artifact, method Method, machineName string) *Stats {
	st := &Stats{
		Method:         method,
		Machine:        machineName,
		Words:          a.Stats.Words,
		SpillOps:       a.Stats.SpillOps,
		CritPath:       a.Stats.CritPath,
		URSATransforms: a.Stats.URSATransforms,
		URSAFits:       a.Stats.URSAFits,
	}
	st.RegsUsed[ir.ClassInt] = a.Stats.IntRegs
	st.RegsUsed[ir.ClassFP] = a.Stats.FPRegs
	return st
}

// artifactOf captures a fresh compile as a storable artifact.
func artifactOf(f *ir.Func, fp *FuncProgram, st *Stats) *store.Artifact {
	a := &store.Artifact{
		Method:  st.Method.String(),
		Machine: st.Machine,
		Stats: store.ArtifactStats{
			Words:          st.Words,
			SpillOps:       st.SpillOps,
			IntRegs:        st.RegsUsed[ir.ClassInt],
			FPRegs:         st.RegsUsed[ir.ClassFP],
			CritPath:       st.CritPath,
			URSATransforms: st.URSATransforms,
			URSAFits:       st.URSAFits,
		},
	}
	for i, prog := range fp.Blocks {
		a.Blocks = append(a.Blocks, store.ArtifactBlock{
			Label:   f.Blocks[i].Label,
			Listing: prog.String(),
		})
	}
	return a
}

// ServedBy names the tier that answered, or "compiled" when every tier
// missed and this process ran the pipeline.
func (c *CachedFunc) ServedBy() string {
	if c.Tier == store.TierNone {
		return "compiled"
	}
	return c.Tier.String()
}

// Listing renders the cached function exactly as ursac prints a fresh
// compile: each block's label line followed by its VLIW words.
func (c *CachedFunc) Listing() string {
	var out []byte
	for _, b := range c.Artifact.Blocks {
		out = append(out, fmt.Sprintf("%s:\n%s", b.Label, b.Listing)...)
	}
	return string(out)
}
