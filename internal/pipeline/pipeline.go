// Package pipeline assembles complete compilation pipelines from the
// substrates, realizing both URSA and the phase orderings the paper argues
// against (§1):
//
//   - URSA: unified allocation (measure + transform) before assignment.
//   - Prepass: schedule first ignoring registers, then patch spill code
//     into the schedule during assignment.
//   - Postpass: graph-coloring register allocation first; the reuse-induced
//     anti/output dependences then restrict the list scheduler.
//   - IntegratedList: register-pressure-sensitive list scheduling in the
//     spirit of Goodman & Hsu's DAG-driven allocation [GoH88] — integrated,
//     but still a one-pass list scheduler with no spill mechanism.
//
// Every pipeline ends in executable VLIW code that Evaluate verifies
// against the sequential interpreter before reporting statistics.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/exact"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/opt"
	"ursa/internal/regalloc"
	"ursa/internal/sched"
	"ursa/internal/store"
	"ursa/internal/target"
	"ursa/internal/vliwsim"
)

// Method selects a compilation pipeline.
type Method uint8

// Pipelines.
const (
	URSA Method = iota
	Prepass
	Postpass
	IntegratedList
	// Exact is the optimal lane: a branch-and-bound solver proves the
	// minimum resource-feasible schedule length and emits it. It only
	// accepts blocks of at most exact.NodeLimit instructions (Compile
	// returns exact.ErrTooLarge beyond that), so it is listed in
	// AllMethods, not in the unguarded Methods the benchmarks sweep.
	Exact
)

// Methods lists the heuristic pipelines in presentation order; every
// block they accept compiles, so benchmarks and experiments sweep them
// freely.
var Methods = []Method{URSA, Prepass, Postpass, IntegratedList}

// AllMethods additionally lists the node-count-guarded Exact lane; it is
// the full set servable by ursad and checkable by the oracles.
var AllMethods = []Method{URSA, Prepass, Postpass, IntegratedList, Exact}

// String returns the pipeline name.
func (m Method) String() string {
	switch m {
	case URSA:
		return "ursa"
	case Prepass:
		return "prepass"
	case Postpass:
		return "postpass"
	case IntegratedList:
		return "integrated-list"
	case Exact:
		return "exact"
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// Options configures a pipeline run.
type Options struct {
	// Core tunes the URSA driver (ignored by the baselines). The Machine
	// field is overridden.
	Core core.Options
	// Optimize runs the block-local scalar optimizations (constant
	// folding, copy propagation, CSE, DCE) before compilation.
	Optimize bool
	// Workers bounds the number of basic blocks CompileFunc compiles
	// concurrently. Zero or one compiles sequentially; negative means
	// GOMAXPROCS. Results are collected by block index, so the emitted
	// program and statistics are identical at every worker count.
	Workers int
	// Ctx, when non-nil, cancels multi-block compilation between blocks:
	// once done, CompileFunc stops dispatching the remaining blocks and
	// returns Ctx.Err(). Cancellation is cooperative — a block already
	// compiling runs to completion.
	Ctx context.Context
	// Results, when non-nil, is the tiered compile-result cache consulted
	// by CompileFuncCached: whole-function listings and statistics keyed
	// by CacheKey survive process restarts (disk tier) and are shared
	// across a fleet (peer tier). Plain Compile/CompileFunc ignore it.
	Results *store.TieredCache
}

// Stats reports one compilation (and, after Evaluate, its execution).
type Stats struct {
	Method  Method
	Machine string
	// Static properties of the emitted code.
	Words    int // issue slots (schedule length in words)
	SpillOps int // spill stores + reloads in the final code
	RegsUsed [ir.NumClasses]int
	CritPath int
	// URSA-only.
	URSATransforms int
	URSAFits       bool
	// Dynamic properties (set by Evaluate).
	Cycles      int
	Issued      int
	Utilization float64
	Verified    bool
}

// Row renders the stats as a fixed-width table row.
func (s *Stats) Row() string {
	return fmt.Sprintf("%-16s %-12s %7d %7d %7d %7d %9.2f",
		s.Method, s.Machine, s.Cycles, s.SpillOps, s.RegsUsed[ir.ClassInt], s.RegsUsed[ir.ClassFP], s.Utilization)
}

// RowHeader is the header matching Row.
const RowHeader = "method           machine       cycles  spills  intreg   fpreg  util(ipc)"

// Compile runs the selected pipeline on a straight-line block and returns
// the emitted program plus static statistics.
func Compile(b *ir.Block, m *machine.Config, method Method, opts Options) (*assign.Program, *Stats, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if err := target.Supports(method.String(), m); err != nil {
		// target.ErrUnsupported, detectable via target.Unsupported: sweeps
		// skip the method on this machine rather than failing the run.
		return nil, nil, fmt.Errorf("pipeline: %w", err)
	}
	// Compile against a private clone of the containing function: spill
	// transformations allocate fresh virtual registers in the function's
	// tables, and cloning keeps the caller's function intact and makes
	// concurrent compilations of the same function race-free.
	nf := b.Func.Clone()
	b = nf.Block(b.Label)
	if opts.Optimize {
		opt.Block(b)
	}
	if ins := ir.LiveIns(b); len(ins) > 0 {
		// Pipelines emit code over a fresh physical register space, so a
		// region's inputs must arrive through memory, not registers.
		return nil, nil, fmt.Errorf("pipeline: block has register live-ins (%s); load inputs from memory",
			b.Func.NameOf(ins[0]))
	}
	if m.Clusters > 1 {
		// Partition the block's instructions over the clusters and insert
		// explicit inter-cluster copies; from here on the copies are ordinary
		// instructions, so URSA's reduction loop prices the transfer bus and
		// the copies' destination registers like any other resource.
		if _, err := target.Clusterize(b, m); err != nil {
			return nil, nil, err
		}
	}
	st := &Stats{Method: method, Machine: m.Name}
	var prog *assign.Program

	switch method {
	case URSA:
		g, err := dag.Build(b)
		if err != nil {
			return nil, nil, err
		}
		copts := opts.Core
		copts.Machine = m
		rep, err := core.Run(g, copts)
		if err != nil {
			return nil, nil, err
		}
		st.URSATransforms = rep.Iterations
		st.URSAFits = rep.Fits
		prog, _, err = assign.Emit(g, m, sched.Options{})
		if err != nil {
			return nil, nil, err
		}

	case Prepass:
		g, err := dag.Build(b)
		if err != nil {
			return nil, nil, err
		}
		prog, _, err = assign.Emit(g, m, sched.Options{})
		if err != nil {
			return nil, nil, err
		}

	case Postpass:
		lo := liveOutOf(b)
		ra, err := regalloc.Color(b, m, lo)
		if err != nil {
			return nil, nil, err
		}
		g, err := dag.BuildScheduling(ra.Block)
		if err != nil {
			return nil, nil, err
		}
		s, err := sched.List(g, m, sched.Options{})
		if err != nil {
			return nil, nil, err
		}
		prog = assign.FromSchedule(s, m, ra.OutMap, ra.Spills)

	case IntegratedList:
		g, err := dag.Build(b)
		if err != nil {
			return nil, nil, err
		}
		s, err := sched.List(g, m, sched.Options{
			RegLimit: m.Regs[ir.ClassInt],
			RegClass: ir.ClassInt,
		})
		if err != nil {
			if errors.Is(err, sched.ErrBuffer) {
				// The worst-case buffer demand genuinely exceeds the
				// exposed-datapath capacity; degrade to buffer-eviction
				// emission like the URSA and prepass lanes do.
				prog, err = assign.EmitWithBufferSpills(g, m)
				if err != nil {
					return nil, nil, err
				}
				break
			}
			return nil, nil, err
		}
		prog, err = assign.Registers(s, m)
		if err != nil {
			// [GoH88] has no spill mechanism; fall back to patching like
			// the prepass pipeline so code is still emitted.
			prog, err = assign.EmitWithSpills(s, m)
			if err != nil {
				return nil, nil, err
			}
		}

	case Exact:
		g, err := dag.Build(b)
		if err != nil {
			return nil, nil, err
		}
		// The solver enforces the exact.NodeLimit node-count guard and
		// honors opts.Ctx, so an adversarial block cancels promptly.
		s, err := exact.Makespan(g, m, exact.Options{Ctx: opts.Ctx})
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: exact: %w", err)
		}
		prog, err = assign.Registers(s, m)
		if err != nil {
			// The length-optimal schedule may need more registers than
			// the machine has; patch spills like the prepass pipeline so
			// code is still emitted (words then exceed the bound).
			prog, err = assign.EmitWithSpills(s, m)
			if err != nil {
				return nil, nil, err
			}
		}

	default:
		return nil, nil, fmt.Errorf("pipeline: unknown method %v", method)
	}

	st.Words = len(prog.Words)
	st.RegsUsed = prog.RegsUsed
	for _, in := range prog.Instrs() {
		if in.Op == ir.SpillStore || in.Op == ir.SpillLoad {
			st.SpillOps++
		}
	}
	st.CritPath = critPath(prog)
	return prog, st, nil
}

// critPath returns the number of non-empty issue cycles plus stalls — i.e.
// the schedule length in cycles (words may be empty when every unit waits).
func critPath(prog *assign.Program) int { return len(prog.Words) }

// liveOutOf returns the registers defined but never used in the block,
// matching dag.Build's convention.
func liveOutOf(b *ir.Block) map[ir.VReg]bool {
	used := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	lo := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		if in.Dst != ir.NoReg && !used[in.Dst] {
			lo[in.Dst] = true
		}
	}
	return lo
}

// Evaluate compiles the block with the given pipeline, executes the result
// on the simulator, verifies it against the sequential interpretation of
// the block starting from init, and returns the full statistics.
func Evaluate(b *ir.Block, m *machine.Config, method Method, init *ir.State, opts Options) (*Stats, error) {
	prog, st, err := Compile(b, m, method, opts)
	if err != nil {
		return nil, err
	}
	res, err := vliwsim.Verify(prog, b, init)
	if err != nil {
		return nil, fmt.Errorf("pipeline %s on %s: %w", method, m.Name, err)
	}
	if m.BufferDepth > 0 && prog.Spills == 0 {
		// Cleanly emitted exposed-datapath code must respect the output
		// buffers; assignment-phase spill patching packs with no buffer
		// model, so only unpatched programs are audited.
		if err := vliwsim.AuditBuffers(prog); err != nil {
			return nil, fmt.Errorf("pipeline %s on %s: %w", method, m.Name, err)
		}
	}
	st.Verified = true
	st.Cycles = res.Cycles
	st.Issued = res.Issued
	st.Utilization = res.Utilization()
	return st, nil
}

// EvaluateAll runs every pipeline on the block and returns their stats in
// Methods order. Methods the machine's target family does not support
// (e.g. postpass on clustered register files) are skipped, so the result
// may be shorter than Methods.
func EvaluateAll(b *ir.Block, m *machine.Config, init *ir.State, opts Options) ([]*Stats, error) {
	var out []*Stats
	for _, method := range Methods {
		st, err := Evaluate(b, m, method, init, opts)
		if err != nil {
			if target.Unsupported(err) {
				continue
			}
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
