package pipeline

import (
	"context"
	"fmt"

	"ursa/internal/driver"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// A Job is one independent compilation work item: one function compiled
// with one method on one machine — the unit the parallel driver fans out.
//
// Jobs may share a *ir.Func (Compile clones it per block) and an *ir.State
// (evaluation only ever runs on clones of Init), so a batch that compiles
// the same function with every method is race-free without per-job setup.
type Job struct {
	// Name labels the job in error messages (e.g. the kernel name).
	Name    string
	Func    *ir.Func
	Machine *machine.Config
	Method  Method
	Opts    Options
	// Init, when non-nil, asks for full evaluation: compile, execute,
	// and verify against the sequential interpreter. When nil the job
	// compiles only.
	Init *ir.State
	// MaxCycles bounds execution when Init is set; 0 means 50M cycles.
	MaxCycles int
	// InOrder executes on the in-order superscalar model (§6) instead of
	// the VLIW model. Only meaningful with Init set.
	InOrder bool
}

// A JobResult carries one job's outputs. Prog is set for compile-only
// jobs unless the result was served from the artifact cache; Cached is
// set (with listings and the serving tier) whenever the job ran through
// the compile-result cache; Stats is always set on success.
type JobResult struct {
	Prog   *FuncProgram
	Cached *CachedFunc
	Stats  *Stats
	Err    error
}

// RunJobs runs a batch of jobs across `workers` goroutines (0 or negative
// means GOMAXPROCS; 1 runs inline) and returns per-job results in
// submission order plus the first error by job index. The batch is
// fail-fast: after one job fails, jobs that have not started are skipped
// with driver.ErrSkipped in their Err field. A panic inside one job is
// captured as that job's error and does not disturb the others.
//
// Every observable output is independent of the worker count.
func RunJobs(jobs []Job, workers int) ([]JobResult, error) {
	return RunJobsCtx(context.Background(), jobs, workers)
}

// RunJobsCtx is RunJobs under a context: once ctx is done no further jobs
// are dispatched (running jobs finish and their results are kept), each
// undispatched job records ctx.Err() in its Err field, and the batch error
// is ctx.Err(). The context also threads into each job's per-block
// compilation, so a cancelled batch stops between blocks of a multi-block
// function too. Cancellation is cooperative: a block already inside the
// allocator runs to completion.
func RunJobsCtx(ctx context.Context, jobs []Job, workers int) ([]JobResult, error) {
	return runJobs(ctx, jobs, workers, false)
}

// RunJobsAll is RunJobsCtx without fail-fast: every job runs even after
// one fails (driver.Options.KeepGoing), so a batch service reports each
// job's own outcome instead of skipping the rest. Cancellation still stops
// dispatch.
func RunJobsAll(ctx context.Context, jobs []Job, workers int) ([]JobResult, error) {
	return runJobs(ctx, jobs, workers, true)
}

func runJobs(ctx context.Context, jobs []Job, workers int, keepGoing bool) ([]JobResult, error) {
	out := make([]JobResult, len(jobs))
	_, errs, err := driver.Map(len(jobs), func(i int) (struct{}, error) {
		j := &jobs[i]
		opts := j.Opts
		if opts.Ctx == nil {
			opts.Ctx = ctx
		}
		var err error
		if j.Init == nil {
			if opts.Results != nil {
				var cf *CachedFunc
				cf, out[i].Stats, err = CompileFuncCached(j.Func, j.Machine, j.Method, opts)
				if cf != nil {
					out[i].Cached = cf
					out[i].Prog = cf.Prog
				}
			} else {
				out[i].Prog, out[i].Stats, err = CompileFunc(j.Func, j.Machine, j.Method, opts)
			}
		} else {
			max := j.MaxCycles
			if max == 0 {
				max = 50_000_000
			}
			if j.InOrder {
				out[i].Stats, err = EvaluateFuncInOrder(j.Func, j.Machine, j.Method, j.Init, max, opts)
			} else {
				out[i].Stats, err = EvaluateFunc(j.Func, j.Machine, j.Method, j.Init, max, opts)
			}
		}
		if err != nil && j.Name != "" {
			err = fmt.Errorf("%s: %w", j.Name, err)
		}
		return struct{}{}, err
	}, driver.Options{Workers: workers, Ctx: ctx, KeepGoing: keepGoing})
	for i := range errs {
		out[i].Err = errs[i]
	}
	return out, err
}
