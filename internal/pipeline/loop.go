package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/modsched"
	"ursa/internal/store"
)

// CompileLoopFunc is the loop-centric pipeline entry: it software-pipelines
// every canonical counted loop in f with internal/modsched (II search under
// URSA's kernel measurement, modulo variable expansion, guard/kernel/
// remainder emission) and then compiles the transformed function with the
// requested method. The modsched result reports per-loop II against the
// resMII/recMII lower bounds.
func CompileLoopFunc(f *ir.Func, m *machine.Config, method Method, opts Options) (*FuncProgram, *Stats, *modsched.Result, error) {
	ms, err := modsched.Pipeline(f, m, modsched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	fp, st, err := CompileFunc(ms.Func, m, method, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return fp, st, ms, nil
}

// LoopCacheKey derives the compile-result cache key for the loop-pipelined
// compilation of f: the ordinary CacheKey fingerprint (function IR, machine
// semantics, method, options) domain-separated by a loop-pipeline marker,
// so straight and loop-pipelined compiles of the same function never share
// an artifact. ursagw routes on this key like any other.
func LoopCacheKey(f *ir.Func, m *machine.Config, method Method, opts Options) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(loopKeyDomain)))
	h.Write(buf[:])
	h.Write([]byte(loopKeyDomain))
	h.Write([]byte(CacheKey(f, m, method, opts)))
	return hex.EncodeToString(h.Sum(nil))
}

const loopKeyDomain = "modsched-loop-v1"

// CompileLoopCached is CompileLoopFunc behind the tiered compile-result
// cache, mirroring CompileFuncCached. The modulo-scheduling transform runs
// on every call (its report — II, MII, unroll — is part of the response
// even on a warm hit); the per-block compilation of the transformed
// function is what the cache absorbs.
func CompileLoopCached(f *ir.Func, m *machine.Config, method Method, opts Options) (*CachedFunc, *Stats, *modsched.Result, error) {
	ms, err := modsched.Pipeline(f, m, modsched.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	if opts.Results == nil {
		fp, st, err := CompileFunc(ms.Func, m, method, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return &CachedFunc{Tier: store.TierNone, Artifact: artifactOf(ms.Func, fp, st), Prog: fp}, st, ms, nil
	}

	key := LoopCacheKey(f, m, method, opts)
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var fresh *FuncProgram
	var freshStats *Stats
	data, tier, err := opts.Results.GetOrComputeCtx(ctx, key, func() ([]byte, error) {
		fp, st, err := CompileFunc(ms.Func, m, method, opts)
		if err != nil {
			return nil, err
		}
		fresh, freshStats = fp, st
		return artifactOf(ms.Func, fp, st).Encode()
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if fresh != nil {
		return &CachedFunc{Key: key, Tier: store.TierNone, Artifact: artifactOf(ms.Func, fresh, freshStats), Prog: fresh}, freshStats, ms, nil
	}
	art, derr := store.DecodeArtifact(data)
	if derr != nil {
		fp, st, err := CompileFunc(ms.Func, m, method, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return &CachedFunc{Key: key, Tier: store.TierNone, Artifact: artifactOf(ms.Func, fp, st), Prog: fp}, st, ms, nil
	}
	return &CachedFunc{Key: key, Tier: tier, Artifact: art}, statsFromArtifact(art, method, m.Name), ms, nil
}
