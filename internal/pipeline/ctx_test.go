package pipeline

import (
	"context"
	"errors"
	"testing"

	"ursa/internal/machine"
	"ursa/internal/workload"
)

// TestRunJobsCtxCancelStopsEarly: a cancelled context stops the batch
// before any further job is dispatched; every undispatched job records
// ctx.Err() and the batch error is ctx.Err().
func TestRunJobsCtxCancelStopsEarly(t *testing.T) {
	f := workload.PaperExample(true)
	m := machine.VLIW(2, 3)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Name: "j", Func: f, Machine: m, Method: URSA}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunJobsCtx(ctx, jobs, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled", i, r.Err)
		}
		if r.Prog != nil || r.Stats != nil {
			t.Errorf("job %d has results despite cancellation", i)
		}
	}
}

// TestRunJobsCtxLiveMatchesRunJobs: with a live context the ctx variant is
// observably identical to RunJobs.
func TestRunJobsCtxLiveMatchesRunJobs(t *testing.T) {
	f := workload.PaperExample(true)
	jobs := []Job{
		{Name: "a", Func: f, Machine: machine.VLIW(2, 3), Method: URSA},
		{Name: "b", Func: f, Machine: machine.VLIW(4, 8), Method: Prepass},
	}
	want, werr := RunJobs(jobs, 1)
	got, gerr := RunJobsCtx(context.Background(), jobs, 1)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("errs differ: %v vs %v", werr, gerr)
	}
	for i := range want {
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("job %d errs differ: %v vs %v", i, want[i].Err, got[i].Err)
		}
		if want[i].Prog.Blocks[0].String() != got[i].Prog.Blocks[0].String() {
			t.Errorf("job %d listings differ", i)
		}
	}
}

// TestCompileFuncCtxCancelled: a cancelled pipeline Options.Ctx aborts
// multi-block compilation with ctx.Err().
func TestCompileFuncCtxCancelled(t *testing.T) {
	f := workload.PaperExample(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := CompileFunc(f, machine.VLIW(2, 3), URSA, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CompileFunc err = %v, want context.Canceled", err)
	}
}

// TestRunJobsAllKeepsGoing: RunJobsAll attempts every job even after one
// fails, unlike the fail-fast RunJobs.
func TestRunJobsAllKeepsGoing(t *testing.T) {
	good := workload.PaperExample(true)
	jobs := []Job{
		{Name: "bad", Func: good, Machine: machine.VLIW(2, 3), Method: Method(250)},
		{Name: "good", Func: good, Machine: machine.VLIW(2, 3), Method: URSA},
		{Name: "good2", Func: good, Machine: machine.VLIW(4, 8), Method: Prepass},
	}
	out, err := RunJobsAll(context.Background(), jobs, 1)
	if err == nil {
		t.Fatal("want batch error from the bad job")
	}
	if out[0].Err == nil {
		t.Error("bad job has no error")
	}
	if out[1].Err != nil || out[2].Err != nil {
		t.Errorf("good jobs skipped: %v, %v", out[1].Err, out[2].Err)
	}
	if out[1].Prog == nil || out[2].Prog == nil {
		t.Error("good jobs missing programs")
	}
}
