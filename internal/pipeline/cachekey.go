package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/store"
)

// CacheKey derives the canonical compile-result cache key for compiling f
// with the given pipeline on the given machine: a hex sha256 over every
// input that can influence the emitted code or statistics, and nothing
// else. Two processes (or two peers) derive equal keys for semantically
// equal requests, which is what makes the disk and peer tiers shareable.
//
// Included: the artifact schema version (bumping it invalidates every
// stored artifact), the function's canonical textual IR, the machine's
// semantic fields (unit counts, register files, pipelining, and the full
// per-opcode latency table — not the preset name, so "vliw4x8" and an
// equivalent -width/-regs spec share entries), the pipeline method, and
// the output-affecting options (Optimize and the URSA driver's policy and
// ablation switches).
//
// Excluded: worker counts and contexts (the emitted program is
// byte-identical at every parallelism by construction), trace sinks, and
// the measurement cache handle (pure memoization).
func CacheKey(f *ir.Func, m *machine.Config, method Method, opts Options) string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wBool := func(b bool) {
		if b {
			wInt(1)
		} else {
			wInt(0)
		}
	}
	wStr := func(s string) {
		wInt(int64(len(s)))
		h.Write([]byte(s))
	}

	wInt(int64(store.SchemaVersion))
	wStr(f.String()) // canonical textual IR, round-trippable via ir.Parse

	hashMachine(h, wInt, wBool, m)

	wInt(int64(method))
	wBool(opts.Optimize)
	wInt(int64(opts.Core.Policy))
	wInt(int64(opts.Core.MaxIters))
	wBool(opts.Core.DisableSpills)
	wBool(opts.Core.DisableSequencing)
	wBool(opts.Core.DisableIncremental)

	return hex.EncodeToString(h.Sum(nil))
}

// hashMachine writes the machine's semantic fields: everything the
// pipelines read from a Config except its display name.
func hashMachine(h hash.Hash, wInt func(int64), wBool func(bool), m *machine.Config) {
	wBool(m.Homogeneous)
	wBool(m.Pipelined)
	// Canonicalize through Get over the full class range, so a hand-built
	// short (or nil) unit table keys identically to its padded equivalent.
	for cl := machine.FUClass(0); cl < machine.NumFUClasses; cl++ {
		wInt(int64(m.Units.Get(cl)))
	}
	for _, r := range m.Regs {
		wInt(int64(r))
	}
	// Target-model knobs. CopyLatency needs no separate field: it is the
	// latency table's ir.Copy entry.
	wInt(int64(m.Clusters))
	wInt(int64(m.BufferDepth))
	wInt(int64(m.IssueWidth))
	// The latency model is a function; canonicalize it as its full
	// per-opcode table so any two models with equal tables share keys.
	for op := 0; op < ir.NumOps; op++ {
		wInt(int64(m.LatencyOf(ir.Op(op))))
	}
}
