// Package frontend implements a small imperative kernel language and its
// lowering to the three-address IR: the stand-in for the "existing C
// compiler front end" the paper's implementation reused (§6). Programs are
// sequences of scalar and array assignments with if/while/for control flow;
// scalars that cross basic-block boundaries are kept in memory so every
// lowered block is closed (inputs arrive via loads), matching the
// block/trace scope of the allocator.
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tPunct // single or double rune punctuation: + - * / % ( ) [ ] { } = ; , < > <= >= == != && ||
	tKeyword
)

var keywords = map[string]bool{
	"var": true, "if": true, "else": true, "while": true,
	"for": true, "to": true, "func": true, "int": true, "float": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	lx := &lexer{src: []rune(src), line: 1}
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case unicode.IsSpace(c):
			lx.pos++
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peek(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case unicode.IsLetter(c) || c == '_':
			start := lx.pos
			for lx.pos < len(lx.src) && (unicode.IsLetter(lx.src[lx.pos]) || unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
				lx.pos++
			}
			text := string(lx.src[start:lx.pos])
			kind := tIdent
			if keywords[text] {
				kind = tKeyword
			}
			lx.emit(kind, text)
		case unicode.IsDigit(c):
			start := lx.pos
			isFloat := false
			for lx.pos < len(lx.src) && (unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
				if lx.src[lx.pos] == '.' {
					isFloat = true
				}
				lx.pos++
			}
			if isFloat {
				lx.emit(tFloat, string(lx.src[start:lx.pos]))
			} else {
				lx.emit(tInt, string(lx.src[start:lx.pos]))
			}
		case strings.ContainsRune("+-*/%()[]{};,", c):
			lx.emit(tPunct, string(c))
			lx.pos++
		case strings.ContainsRune("=<>!&|", c):
			two := string(c) + string(lx.peek(1))
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				lx.emit(tPunct, two)
				lx.pos += 2
			default:
				if c == '!' || c == '&' || c == '|' {
					return nil, fmt.Errorf("frontend: line %d: unexpected %q", lx.line, string(c))
				}
				lx.emit(tPunct, string(c))
				lx.pos++
			}
		default:
			return nil, fmt.Errorf("frontend: line %d: unexpected %q", lx.line, string(c))
		}
	}
	lx.emit(tEOF, "")
	return lx.toks, nil
}

func (lx *lexer) peek(ahead int) rune {
	if lx.pos+ahead < len(lx.src) {
		return lx.src[lx.pos+ahead]
	}
	return 0
}

func (lx *lexer) emit(kind tokKind, text string) {
	lx.toks = append(lx.toks, token{kind, text, lx.line})
}
