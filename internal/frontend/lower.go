package frontend

import (
	"fmt"

	"ursa/internal/ir"
)

// Options tunes lowering.
type Options struct {
	// Unroll replicates the body of every `for` loop with constant bounds
	// whose trip count it divides. 0 or 1 means no unrolling. This is the
	// substrate for the software-pipelining extension (§6).
	Unroll int
}

// Unit is a lowered kernel.
type Unit struct {
	Func *ir.Func
	// Vars maps scalar names to their inferred types. Scalars live in
	// memory cells (ScalarAddr) between basic blocks, so lowered blocks
	// are closed regions.
	Vars map[string]Type
	// Arrays maps array names to their inferred element types.
	Arrays map[string]Type
}

// ScalarAddr returns the memory cell backing a scalar variable.
func ScalarAddr(name string) ir.Addr { return ir.Addr{Sym: "$" + name, Off: 0} }

// Lower translates a parsed program to IR.
func Lower(prog *Program, opts Options) (*Unit, error) {
	lw := &lower{
		f:      ir.NewFunc(prog.Name),
		unit:   &Unit{Vars: map[string]Type{}, Arrays: map[string]Type{}},
		unroll: opts.Unroll,
	}
	lw.unit.Func = lw.f
	if err := lw.infer(prog.Stmts); err != nil {
		return nil, err
	}
	lw.startBlock(lw.newLabel())
	if err := lw.stmts(prog.Stmts); err != nil {
		return nil, err
	}
	lw.flush()
	if err := ir.Verify(lw.f); err != nil {
		return nil, fmt.Errorf("frontend: lowered IR invalid: %w", err)
	}
	return lw.unit, nil
}

// Compile parses and lowers in one step.
func Compile(src string, opts Options) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(prog, opts)
}

// MustCompile is Compile that panics on error; for fixtures.
func MustCompile(src string) *Unit {
	u, err := Compile(src, Options{})
	if err != nil {
		panic(err)
	}
	return u
}

type lower struct {
	f      *ir.Func
	unit   *Unit
	blk    *ir.Block
	unroll int

	// Per-block state: the register currently holding each scalar, and
	// which scalars were written (need a store-back at block end).
	regOf map[string]ir.VReg
	dirty map[string]bool

	labels int
}

func (lw *lower) newLabel() string {
	lw.labels++
	return fmt.Sprintf("b%d", lw.labels-1)
}

func (lw *lower) startBlock(label string) {
	lw.blk = lw.f.NewBlock(label)
	lw.regOf = map[string]ir.VReg{}
	lw.dirty = map[string]bool{}
}

// flush stores every dirty scalar back to its memory cell and clears the
// per-block register state. Must run before any terminating branch.
func (lw *lower) flush() {
	names := make([]string, 0, len(lw.dirty))
	for n := range lw.dirty {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		op := ir.Store
		if lw.unit.Vars[n] == TypeFloat {
			op = ir.StoreF
		}
		lw.emit(&ir.Instr{Op: op, Args: []ir.VReg{lw.regOf[n]}, Sym: "$" + n})
	}
	lw.regOf = map[string]ir.VReg{}
	lw.dirty = map[string]bool{}
}

func (lw *lower) emit(in *ir.Instr) *ir.Instr { return lw.blk.Append(in) }

func (lw *lower) branch(op ir.Op, cond ir.VReg, target string) {
	lw.flush()
	in := &ir.Instr{Op: op, Sym: target}
	if cond != ir.NoReg {
		in.Args = []ir.VReg{cond}
	}
	lw.emit(in)
}

// infer assigns types to scalars and arrays before lowering.
func (lw *lower) infer(stmts []Stmt) error {
	var walkExpr func(e Expr) (Type, error)
	setVar := func(name string, t Type, line int) error {
		if old, ok := lw.unit.Vars[name]; ok && old != t {
			return errAt(line, "variable %s used as both %s and %s", name, old, t)
		}
		lw.unit.Vars[name] = t
		return nil
	}
	setArr := func(name string, t Type, line int) error {
		if old, ok := lw.unit.Arrays[name]; ok && old != t {
			return errAt(line, "array %s used as both %s and %s", name, old, t)
		}
		lw.unit.Arrays[name] = t
		return nil
	}
	walkExpr = func(e Expr) (Type, error) {
		switch e := e.(type) {
		case *IntLit:
			return TypeInt, nil
		case *FloatLit:
			return TypeFloat, nil
		case *VarRef:
			if t, ok := lw.unit.Vars[e.Name]; ok {
				return t, nil
			}
			// Unseen scalar: default int, read from memory.
			lw.unit.Vars[e.Name] = TypeInt
			return TypeInt, nil
		case *IndexRef:
			if _, err := walkExpr(e.Index); err != nil {
				return 0, err
			}
			if t, ok := lw.unit.Arrays[e.Name]; ok {
				return t, nil
			}
			lw.unit.Arrays[e.Name] = TypeInt
			return TypeInt, nil
		case *Unary:
			return walkExpr(e.X)
		case *Binary:
			tx, err := walkExpr(e.X)
			if err != nil {
				return 0, err
			}
			ty, err := walkExpr(e.Y)
			if err != nil {
				return 0, err
			}
			switch e.Op {
			case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
				return TypeInt, nil
			case "%":
				if tx == TypeFloat || ty == TypeFloat {
					return 0, errAt(e.Line, "%% requires integers")
				}
				return TypeInt, nil
			default:
				if tx == TypeFloat || ty == TypeFloat {
					return TypeFloat, nil
				}
				return TypeInt, nil
			}
		}
		return 0, fmt.Errorf("frontend: unknown expression")
	}
	var walkStmts func([]Stmt) error
	walkStmts = func(ss []Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *TypeDecl:
				if s.IsArray {
					if err := setArr(s.Name, s.Type, s.Line); err != nil {
						return err
					}
				} else if err := setVar(s.Name, s.Type, s.Line); err != nil {
					return err
				}
			case *VarDecl:
				t, err := walkExpr(s.Init)
				if err != nil {
					return err
				}
				if err := setVar(s.Name, t, s.Line); err != nil {
					return err
				}
			case *Assign:
				t, err := walkExpr(s.Value)
				if err != nil {
					return err
				}
				if s.Index == nil {
					if prev, ok := lw.unit.Vars[s.Name]; ok {
						t = prev // conversions handled at lowering
					}
					if err := setVar(s.Name, t, s.Line); err != nil {
						return err
					}
				} else {
					if _, err := walkExpr(s.Index); err != nil {
						return err
					}
					if prev, ok := lw.unit.Arrays[s.Name]; ok {
						t = prev
					}
					if err := setArr(s.Name, t, s.Line); err != nil {
						return err
					}
				}
			case *If:
				if _, err := walkExpr(s.Cond); err != nil {
					return err
				}
				if err := walkStmts(s.Then); err != nil {
					return err
				}
				if err := walkStmts(s.Else); err != nil {
					return err
				}
			case *While:
				if _, err := walkExpr(s.Cond); err != nil {
					return err
				}
				if err := walkStmts(s.Body); err != nil {
					return err
				}
			case *For:
				if err := setVar(s.Var, TypeInt, s.Line); err != nil {
					return err
				}
				if _, err := walkExpr(s.Lo); err != nil {
					return err
				}
				if _, err := walkExpr(s.Hi); err != nil {
					return err
				}
				if err := walkStmts(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walkStmts(stmts)
}

func (lw *lower) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lower) stmt(s Stmt) error {
	switch s := s.(type) {
	case *TypeDecl:
		return nil // handled during inference
	case *VarDecl:
		return lw.assignScalar(s.Name, s.Init, s.Line)
	case *Assign:
		if s.Index == nil {
			return lw.assignScalar(s.Name, s.Value, s.Line)
		}
		return lw.assignElem(s)
	case *If:
		return lw.ifStmt(s)
	case *While:
		return lw.whileStmt(s)
	case *For:
		return lw.forStmt(s)
	}
	return fmt.Errorf("frontend: unknown statement")
}

func (lw *lower) assignScalar(name string, value Expr, line int) error {
	want := lw.unit.Vars[name]
	r, err := lw.exprAs(value, want)
	if err != nil {
		return err
	}
	lw.regOf[name] = r
	lw.dirty[name] = true
	_ = line
	return nil
}

func (lw *lower) assignElem(s *Assign) error {
	want := lw.unit.Arrays[s.Name]
	val, err := lw.exprAs(s.Value, want)
	if err != nil {
		return err
	}
	idx, off, err := lw.index(s.Index)
	if err != nil {
		return err
	}
	op := ir.Store
	if want == TypeFloat {
		op = ir.StoreF
	}
	lw.emit(&ir.Instr{Op: op, Args: []ir.VReg{val}, Sym: s.Name, Index: idx, Off: off})
	return nil
}

// index lowers an array subscript to (index register, constant offset).
func (lw *lower) index(e Expr) (ir.VReg, int64, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.NoReg, e.Value, nil
	case *Binary:
		// i + k / k + i fold into the offset.
		if e.Op == "+" {
			if k, ok := e.Y.(*IntLit); ok {
				r, off, err := lw.index(e.X)
				return r, off + k.Value, err
			}
			if k, ok := e.X.(*IntLit); ok {
				r, off, err := lw.index(e.Y)
				return r, off + k.Value, err
			}
		}
	}
	r, t, err := lw.expr(e)
	if err != nil {
		return ir.NoReg, 0, err
	}
	if t == TypeFloat {
		return ir.NoReg, 0, errAt(e.Pos(), "array index must be integer")
	}
	return r, 0, nil
}

func (lw *lower) ifStmt(s *If) error {
	cond, err := lw.exprAs(s.Cond, TypeInt)
	if err != nil {
		return err
	}
	elseL, doneL := lw.newLabel(), lw.newLabel()
	target := doneL
	if len(s.Else) > 0 {
		target = elseL
	}
	lw.branch(ir.BrFalse, cond, target)

	lw.startBlock(lw.newLabel())
	if err := lw.stmts(s.Then); err != nil {
		return err
	}
	lw.branch(ir.Br, ir.NoReg, doneL)

	if len(s.Else) > 0 {
		lw.startBlock(elseL)
		if err := lw.stmts(s.Else); err != nil {
			return err
		}
		lw.branch(ir.Br, ir.NoReg, doneL)
	}
	lw.startBlock(doneL)
	return nil
}

func (lw *lower) whileStmt(s *While) error {
	headL, exitL := lw.newLabel(), lw.newLabel()
	lw.branch(ir.Br, ir.NoReg, headL)
	lw.startBlock(headL)
	cond, err := lw.exprAs(s.Cond, TypeInt)
	if err != nil {
		return err
	}
	lw.branch(ir.BrFalse, cond, exitL)
	lw.startBlock(lw.newLabel())
	if err := lw.stmts(s.Body); err != nil {
		return err
	}
	lw.branch(ir.Br, ir.NoReg, headL)
	lw.startBlock(exitL)
	return nil
}

func (lw *lower) forStmt(s *For) error {
	factor := lw.unroll
	if factor > 1 {
		lo, okLo := s.Lo.(*IntLit)
		hi, okHi := s.Hi.(*IntLit)
		if !okLo || !okHi || (hi.Value-lo.Value) <= 0 || (hi.Value-lo.Value)%int64(factor) != 0 {
			factor = 1 // unrolling only for dividing constant trip counts
		}
	} else {
		factor = 1
	}

	if err := lw.assignScalar(s.Var, s.Lo, s.Line); err != nil {
		return err
	}
	headL, exitL := lw.newLabel(), lw.newLabel()
	lw.branch(ir.Br, ir.NoReg, headL)

	lw.startBlock(headL)
	cond, err := lw.exprAs(&Binary{Op: "<", X: &VarRef{Name: s.Var, Line: s.Line}, Y: s.Hi, Line: s.Line}, TypeInt)
	if err != nil {
		return err
	}
	lw.branch(ir.BrFalse, cond, exitL)

	lw.startBlock(lw.newLabel())
	for k := 0; k < factor; k++ {
		if err := lw.stmts(s.Body); err != nil {
			return err
		}
		// i = i + 1 between replicas keeps body semantics identical.
		inc := &Binary{Op: "+", X: &VarRef{Name: s.Var, Line: s.Line}, Y: &IntLit{Value: 1, Line: s.Line}, Line: s.Line}
		if err := lw.assignScalar(s.Var, inc, s.Line); err != nil {
			return err
		}
	}
	lw.branch(ir.Br, ir.NoReg, headL)
	lw.startBlock(exitL)
	return nil
}

// expr lowers an expression, returning its register and type.
func (lw *lower) expr(e Expr) (ir.VReg, Type, error) {
	switch e := e.(type) {
	case *IntLit:
		r := lw.f.NewReg("c", ir.ClassInt)
		lw.emit(&ir.Instr{Op: ir.ConstI, Dst: r, Imm: e.Value})
		return r, TypeInt, nil
	case *FloatLit:
		r := lw.f.NewReg("cf", ir.ClassFP)
		lw.emit(&ir.Instr{Op: ir.ConstF, Dst: r, FImm: e.Value})
		return r, TypeFloat, nil
	case *VarRef:
		t := lw.unit.Vars[e.Name]
		if r, ok := lw.regOf[e.Name]; ok {
			return r, t, nil
		}
		op, cls := ir.Load, ir.ClassInt
		if t == TypeFloat {
			op, cls = ir.LoadF, ir.ClassFP
		}
		r := lw.f.NewReg(e.Name, cls)
		lw.emit(&ir.Instr{Op: op, Dst: r, Sym: "$" + e.Name})
		lw.regOf[e.Name] = r
		return r, t, nil
	case *IndexRef:
		t := lw.unit.Arrays[e.Name]
		idx, off, err := lw.index(e.Index)
		if err != nil {
			return ir.NoReg, 0, err
		}
		op, cls := ir.Load, ir.ClassInt
		if t == TypeFloat {
			op, cls = ir.LoadF, ir.ClassFP
		}
		r := lw.f.NewReg(e.Name+"_e", cls)
		lw.emit(&ir.Instr{Op: op, Dst: r, Sym: e.Name, Index: idx, Off: off})
		return r, t, nil
	case *Unary:
		r, t, err := lw.expr(e.X)
		if err != nil {
			return ir.NoReg, 0, err
		}
		op, cls := ir.Neg, ir.ClassInt
		if t == TypeFloat {
			op, cls = ir.FNeg, ir.ClassFP
		}
		d := lw.f.NewReg("t", cls)
		lw.emit(&ir.Instr{Op: op, Dst: d, Args: []ir.VReg{r}})
		return d, t, nil
	case *Binary:
		return lw.binary(e)
	}
	return ir.NoReg, 0, fmt.Errorf("frontend: unknown expression")
}

// exprAs lowers e and converts the result to the wanted type.
func (lw *lower) exprAs(e Expr, want Type) (ir.VReg, error) {
	r, t, err := lw.expr(e)
	if err != nil {
		return ir.NoReg, err
	}
	return lw.convert(r, t, want), nil
}

func (lw *lower) convert(r ir.VReg, from, to Type) ir.VReg {
	if from == to {
		return r
	}
	if to == TypeFloat {
		d := lw.f.NewReg("tf", ir.ClassFP)
		lw.emit(&ir.Instr{Op: ir.ItoF, Dst: d, Args: []ir.VReg{r}})
		return d
	}
	d := lw.f.NewReg("ti", ir.ClassInt)
	lw.emit(&ir.Instr{Op: ir.FtoI, Dst: d, Args: []ir.VReg{r}})
	return d
}

var intOps = map[string]ir.Op{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Rem,
	"<": ir.CmpLT, "<=": ir.CmpLE, "==": ir.CmpEQ,
	"&&": ir.And, "||": ir.Or,
}

var intImmOps = map[string]ir.Op{
	"+": ir.AddI, "-": ir.SubI, "*": ir.MulI, "/": ir.DivI, "%": ir.RemI,
	"<": ir.CmpLTI, "<=": ir.CmpLEI, "==": ir.CmpEQI,
}

var fpOps = map[string]ir.Op{
	"+": ir.FAdd, "-": ir.FSub, "*": ir.FMul, "/": ir.FDiv,
	"<": ir.FCmpLT, "<=": ir.FCmpLE, "==": ir.FCmpEQ,
}

var fpImmOps = map[string]ir.Op{
	"+": ir.FAddI, "-": ir.FSubI, "*": ir.FMulI, "/": ir.FDivI,
}

func (lw *lower) binary(e *Binary) (ir.VReg, Type, error) {
	op, x, y := e.Op, e.X, e.Y
	// Normalize > and >= to < and <= by swapping.
	if op == ">" || op == ">=" {
		x, y = y, x
		if op == ">" {
			op = "<"
		} else {
			op = "<="
		}
	}
	// != lowers to == followed by xor 1.
	if op == "!=" {
		eq, t, err := lw.binary(&Binary{Op: "==", X: x, Y: y, Line: e.Line})
		if err != nil {
			return ir.NoReg, 0, err
		}
		_ = t
		d := lw.f.NewReg("t", ir.ClassInt)
		lw.emit(&ir.Instr{Op: ir.XorI, Dst: d, Args: []ir.VReg{eq}, Imm: 1})
		return d, TypeInt, nil
	}

	tx := lw.typeOf(x)
	ty := lw.typeOf(y)
	isFloat := tx == TypeFloat || ty == TypeFloat

	// Immediate forms: integer literal on the right of an integer op, or
	// float literal on the right of a float arithmetic op. Commutative ops
	// with a literal on the left are swapped first.
	if lit, ok := y.(*IntLit); ok && !isFloat {
		if iop, ok := intImmOps[op]; ok {
			r, err := lw.exprAs(x, TypeInt)
			if err != nil {
				return ir.NoReg, 0, err
			}
			d := lw.f.NewReg("t", ir.ClassInt)
			lw.emit(&ir.Instr{Op: iop, Dst: d, Args: []ir.VReg{r}, Imm: lit.Value})
			return d, TypeInt, nil
		}
	}
	if lit, ok := x.(*IntLit); ok && !isFloat && (op == "+" || op == "*") {
		if iop, ok := intImmOps[op]; ok {
			r, err := lw.exprAs(y, TypeInt)
			if err != nil {
				return ir.NoReg, 0, err
			}
			d := lw.f.NewReg("t", ir.ClassInt)
			lw.emit(&ir.Instr{Op: iop, Dst: d, Args: []ir.VReg{r}, Imm: lit.Value})
			return d, TypeInt, nil
		}
	}
	if lit, ok := y.(*FloatLit); ok && isFloat {
		if fop, ok := fpImmOps[op]; ok {
			r, err := lw.exprAs(x, TypeFloat)
			if err != nil {
				return ir.NoReg, 0, err
			}
			d := lw.f.NewReg("t", ir.ClassFP)
			lw.emit(&ir.Instr{Op: fop, Dst: d, Args: []ir.VReg{r}, FImm: lit.Value})
			return d, TypeFloat, nil
		}
	}

	if isFloat {
		fop, ok := fpOps[op]
		if !ok {
			return ir.NoReg, 0, errAt(e.Line, "operator %q not defined on floats", op)
		}
		rx, err := lw.exprAs(x, TypeFloat)
		if err != nil {
			return ir.NoReg, 0, err
		}
		ry, err := lw.exprAs(y, TypeFloat)
		if err != nil {
			return ir.NoReg, 0, err
		}
		cls, t := ir.ClassFP, TypeFloat
		if ir.Info(fop).DstClass == ir.ClassInt { // comparisons
			cls, t = ir.ClassInt, TypeInt
		}
		d := lw.f.NewReg("t", cls)
		lw.emit(&ir.Instr{Op: fop, Dst: d, Args: []ir.VReg{rx, ry}})
		return d, t, nil
	}

	iop, ok := intOps[op]
	if !ok {
		return ir.NoReg, 0, errAt(e.Line, "unknown operator %q", op)
	}
	rx, err := lw.exprAs(x, TypeInt)
	if err != nil {
		return ir.NoReg, 0, err
	}
	ry, err := lw.exprAs(y, TypeInt)
	if err != nil {
		return ir.NoReg, 0, err
	}
	d := lw.f.NewReg("t", ir.ClassInt)
	lw.emit(&ir.Instr{Op: iop, Dst: d, Args: []ir.VReg{rx, ry}})
	return d, TypeInt, nil
}

// typeOf computes an expression's type without emitting code.
func (lw *lower) typeOf(e Expr) Type {
	switch e := e.(type) {
	case *IntLit:
		return TypeInt
	case *FloatLit:
		return TypeFloat
	case *VarRef:
		return lw.unit.Vars[e.Name]
	case *IndexRef:
		return lw.unit.Arrays[e.Name]
	case *Unary:
		return lw.typeOf(e.X)
	case *Binary:
		switch e.Op {
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||", "%":
			return TypeInt
		}
		if lw.typeOf(e.X) == TypeFloat || lw.typeOf(e.Y) == TypeFloat {
			return TypeFloat
		}
		return TypeInt
	}
	return TypeInt
}
