package frontend

import "strconv"

// Parse parses a kernel program:
//
//	func name {            # optional header; defaults to "kernel"
//	  var sum = 0.0;
//	  for i = 0 to 64 {
//	    sum = sum + a[i] * b[i];
//	  }
//	  out[0] = sum;
//	}
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Name: "kernel"}
	if p.peek().kind == tKeyword && p.peek().text == "func" {
		p.next()
		if p.peek().kind != tIdent {
			return nil, errAt(p.peek().line, "expected kernel name after func")
		}
		prog.Name = p.next().text
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		stmts, err := p.stmtsUntil("}")
		if err != nil {
			return nil, err
		}
		prog.Stmts = stmts
		if err := p.expect("}"); err != nil {
			return nil, err
		}
	} else {
		stmts, err := p.stmtsUntil("")
		if err != nil {
			return nil, err
		}
		prog.Stmts = stmts
	}
	if p.peek().kind != tEOF {
		return nil, errAt(p.peek().line, "trailing input %q", p.peek().text)
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.peek().text == text && p.peek().kind != tEOF {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return errAt(p.peek().line, "expected %q, found %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) stmtsUntil(closer string) ([]Stmt, error) {
	var out []Stmt
	for {
		t := p.peek()
		if t.kind == tEOF || (closer != "" && t.text == closer) {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	stmts, err := p.stmtsUntil("}")
	if err != nil {
		return nil, err
	}
	return stmts, p.expect("}")
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tKeyword && (t.text == "int" || t.text == "float"):
		p.next()
		ty := TypeInt
		if t.text == "float" {
			ty = TypeFloat
		}
		name := p.next()
		if name.kind != tIdent {
			return nil, errAt(name.line, "expected name after %s", t.text)
		}
		isArr := false
		if p.accept("[") {
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			isArr = true
		}
		return &TypeDecl{Name: name.text, Type: ty, IsArray: isArr, Line: t.line}, p.expect(";")

	case t.kind == tKeyword && t.text == "var":
		p.next()
		name := p.next()
		if name.kind != tIdent {
			return nil, errAt(name.line, "expected variable name")
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.text, Init: e, Line: name.line}, p.expect(";")

	case t.kind == tKeyword && t.text == "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.peek().kind == tKeyword && p.peek().text == "else" {
			p.next()
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Line: t.line}, nil

	case t.kind == tKeyword && t.text == "while":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Line: t.line}, nil

	case t.kind == tKeyword && t.text == "for":
		p.next()
		name := p.next()
		if name.kind != tIdent {
			return nil, errAt(name.line, "expected loop variable")
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek().text != "to" {
			return nil, errAt(p.peek().line, "expected 'to'")
		}
		p.next()
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &For{Var: name.text, Lo: lo, Hi: hi, Body: body, Line: t.line}, nil

	case t.kind == tIdent:
		p.next()
		var index Expr
		if p.accept("[") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			index = e
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{Name: t.text, Index: index, Value: val, Line: t.line}, p.expect(";")
	}
	return nil, errAt(t.line, "unexpected %q", t.text)
}

// Expression grammar (precedence climbing):
//
//	or   := and ('||' and)*
//	and  := cmp ('&&' cmp)*
//	cmp  := add (('<'|'<='|'>'|'>='|'=='|'!=') add)?
//	add  := mul (('+'|'-') mul)*
//	mul  := unary (('*'|'/'|'%') unary)*
//	unary := '-' unary | primary
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "||" {
		line := p.next().line
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "||", X: x, Y: y, Line: line}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "&&" {
		line := p.next().line
		y, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: "&&", X: x, Y: y, Line: line}
	}
	return x, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().text {
	case "<", "<=", ">", ">=", "==", "!=":
		op := p.next()
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op.text, X: x, Y: y, Line: op.line}, nil
	}
	return x, nil
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "+" || p.peek().text == "-" {
		op := p.next()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op.text, X: x, Y: y, Line: op.line}
	}
	return x, nil
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%" {
		op := p.next()
		y, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op.text, X: x, Y: y, Line: op.line}
	}
	return x, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.peek().text == "-" {
		line := p.next().line
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, Line: line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errAt(t.line, "bad integer %q", t.text)
		}
		return &IntLit{Value: v, Line: t.line}, nil
	case tFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t.line, "bad float %q", t.text)
		}
		return &FloatLit{Value: v, Line: t.line}, nil
	case tIdent:
		if p.accept("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &IndexRef{Name: t.text, Index: idx, Line: t.line}, nil
		}
		return &VarRef{Name: t.text, Line: t.line}, nil
	case tPunct:
		if t.text == "(" {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, errAt(t.line, "unexpected %q in expression", t.text)
}
