package frontend

import "fmt"

// Type is a scalar type.
type Type uint8

// Types.
const (
	TypeInt Type = iota
	TypeFloat
)

// String returns the type name.
func (t Type) String() string {
	if t == TypeFloat {
		return "float"
	}
	return "int"
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() int
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Line  int
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Line  int
}

// VarRef reads a scalar variable.
type VarRef struct {
	Name string
	Line int
}

// IndexRef reads an array element: Name[Index].
type IndexRef struct {
	Name  string
	Index Expr
	Line  int
}

// Unary is -x.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is x OP y for + - * / % < <= > >= == != && ||.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

func (e *IntLit) exprNode()   {}
func (e *FloatLit) exprNode() {}
func (e *VarRef) exprNode()   {}
func (e *IndexRef) exprNode() {}
func (e *Unary) exprNode()    {}
func (e *Binary) exprNode()   {}

// Pos returns the source line.
func (e *IntLit) Pos() int   { return e.Line }
func (e *FloatLit) Pos() int { return e.Line }
func (e *VarRef) Pos() int   { return e.Line }
func (e *IndexRef) Pos() int { return e.Line }
func (e *Unary) Pos() int    { return e.Line }
func (e *Binary) Pos() int   { return e.Line }

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
}

// VarDecl declares and initializes a scalar: var x = expr;
type VarDecl struct {
	Name string
	Init Expr
	Line int
}

// TypeDecl pins the type of a scalar (`float x;`) or an array
// (`float a[];`) ahead of inference. Arrays of floats need this: element
// types cannot be inferred from raw memory bits.
type TypeDecl struct {
	Name    string
	Type    Type
	IsArray bool
	Line    int
}

// Assign stores into a scalar or array element.
type Assign struct {
	Name  string
	Index Expr // nil for scalars
	Value Expr
	Line  int
}

// If is a conditional with optional else.
type If struct {
	Cond       Expr
	Then, Else []Stmt
	Line       int
}

// While is a pre-tested loop.
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// For is `for i = lo to hi { ... }`: i runs lo, lo+1, ..., hi-1.
type For struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Line   int
}

func (s *VarDecl) stmtNode()  {}
func (s *TypeDecl) stmtNode() {}
func (s *Assign) stmtNode()   {}
func (s *If) stmtNode()       {}
func (s *While) stmtNode()    {}
func (s *For) stmtNode()      {}

// Program is a parsed kernel: a name and a statement list.
type Program struct {
	Name  string
	Stmts []Stmt
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("frontend: line %d: %s", line, fmt.Sprintf(format, args...))
}
