package frontend

import (
	"testing"

	"ursa/internal/ir"
)

// FuzzParse checks the kernel-language pipeline never panics and that
// everything that parses also lowers to verifiable IR. Under plain `go
// test` only the seed corpus runs; `go test -fuzz FuzzParse` explores.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1;",
		"func k { var x = 1; out[0] = x; }",
		"float a[]; var s = 0.0; for i = 0 to 8 { s = s + a[i]; } o[0] = s;",
		"if (x > 1) { y = 2; } else { y = 3; }",
		"while (i < 10) { i = i + 1; }",
		"var x = -(1 + 2) * 3 % 4 / 5;",
		"var b = x >= 3 && x <= 7 || x != 0;",
		"out[i+3] = q[j] + 1.5;",
		"for i = 0 to 4 { for j = 0 to 4 { m[i*4+j] = i - j; } }",
		"var x = ((((1))));",
		"func { }", // invalid
		"var = ;",  // invalid
		"for i = 0 to { }",
		"int a[]; float a[];",
		"# just a comment",
		"var x = 1.5 % 2;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Compile(src, Options{})
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := ir.Verify(u.Func); err != nil {
			t.Fatalf("accepted program lowered to invalid IR: %v\nsource: %q", err, src)
		}
		for _, b := range u.Func.Blocks {
			if err := ir.VerifySSA(b); err != nil {
				t.Fatalf("lowered block not SSA: %v\nsource: %q", err, src)
			}
		}
	})
}
