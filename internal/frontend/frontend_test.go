package frontend

import (
	"strings"
	"testing"

	"ursa/internal/ir"
)

func run(t *testing.T, u *Unit, init *ir.State) *ir.State {
	t.Helper()
	st := init.Clone()
	if _, err := st.Run(u.Func, 1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func scalar(st *ir.State, name string) ir.Word { return st.Mem[ScalarAddr(name)] }

func TestLowerStraightLine(t *testing.T) {
	u := MustCompile(`
		var a = 6;
		var b = 7;
		var c = a * b + 1;
		out[0] = c;
	`)
	st := run(t, u, ir.NewState())
	if got := st.Mem[ir.Addr{Sym: "out", Off: 0}].Int(); got != 43 {
		t.Errorf("out[0] = %d, want 43", got)
	}
	if u.Vars["c"] != TypeInt {
		t.Errorf("type of c = %v", u.Vars["c"])
	}
}

func TestLowerFloatInference(t *testing.T) {
	u := MustCompile(`
		var x = 1.5;
		var y = x * 2.0 + 1;
		fo[0] = y;
	`)
	if u.Vars["y"] != TypeFloat {
		t.Fatalf("y inferred %v, want float", u.Vars["y"])
	}
	if u.Arrays["fo"] != TypeFloat {
		t.Fatalf("fo inferred %v, want float", u.Arrays["fo"])
	}
	st := run(t, u, ir.NewState())
	if got := st.Mem[ir.Addr{Sym: "fo", Off: 0}].Float(); got != 4.0 {
		t.Errorf("fo[0] = %g, want 4.0", got)
	}
}

func TestLowerIfElse(t *testing.T) {
	u := MustCompile(`
		var x = in[0];
		var r = 0;
		if (x > 10) { r = 1; } else { r = 2; }
		out[0] = r;
	`)
	init := ir.NewState()
	init.StoreInt("in", 0, 50)
	if got := run(t, u, init).Mem[ir.Addr{Sym: "out", Off: 0}].Int(); got != 1 {
		t.Errorf("x=50: out = %d, want 1", got)
	}
	init.StoreInt("in", 0, 3)
	if got := run(t, u, init).Mem[ir.Addr{Sym: "out", Off: 0}].Int(); got != 2 {
		t.Errorf("x=3: out = %d, want 2", got)
	}
}

func TestLowerWhile(t *testing.T) {
	u := MustCompile(`
		var n = 10;
		var s = 0;
		var i = 0;
		while (i < n) { s = s + i; i = i + 1; }
		out[0] = s;
	`)
	if got := run(t, u, ir.NewState()).Mem[ir.Addr{Sym: "out", Off: 0}].Int(); got != 45 {
		t.Errorf("out = %d, want 45", got)
	}
}

func TestLowerForDotProduct(t *testing.T) {
	src := `
	func dot {
		float a[]; float b[];
		var sum = 0.0;
		for i = 0 to 8 { sum = sum + a[i] * b[i]; }
		out[0] = sum;
	}
	`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if u.Func.Name != "dot" {
		t.Errorf("name = %s", u.Func.Name)
	}
	init := ir.NewState()
	want := 0.0
	for i := int64(0); i < 8; i++ {
		init.StoreFloat("a", i, float64(i))
		init.StoreFloat("b", i, 2.0)
		want += float64(i) * 2.0
	}
	st := run(t, u, init)
	if got := st.Mem[ir.Addr{Sym: "out", Off: 0}].Float(); got != want {
		t.Errorf("dot = %g, want %g", got, want)
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	src := `
		var s = 0;
		for i = 0 to 12 { s = s + c[i] * c[i]; }
		out[0] = s;
	`
	init := ir.NewState()
	for i := int64(0); i < 12; i++ {
		init.StoreInt("c", i, i+1)
	}
	var want ir.Word
	for _, unroll := range []int{0, 1, 2, 3, 4, 6} {
		u, err := Compile(src, Options{Unroll: unroll})
		if err != nil {
			t.Fatalf("unroll %d: %v", unroll, err)
		}
		got := run(t, u, init).Mem[ir.Addr{Sym: "out", Off: 0}]
		if unroll == 0 {
			want = got
		} else if got != want {
			t.Errorf("unroll %d: out = %d, want %d", unroll, got.Int(), want.Int())
		}
	}
	// Non-dividing factor must silently not unroll but stay correct.
	u, err := Compile(src, Options{Unroll: 5})
	if err != nil {
		t.Fatalf("unroll 5: %v", err)
	}
	if got := run(t, u, init).Mem[ir.Addr{Sym: "out", Off: 0}]; got != want {
		t.Errorf("unroll 5: out = %d, want %d", got.Int(), want.Int())
	}
}

func TestUnrollGrowsBlock(t *testing.T) {
	src := `for i = 0 to 8 { o[i] = a[i] + 1; }`
	u1, _ := Compile(src, Options{})
	u4, _ := Compile(src, Options{Unroll: 4})
	body := func(u *Unit) int {
		max := 0
		for _, b := range u.Func.Blocks {
			if len(b.Instrs) > max {
				max = len(b.Instrs)
			}
		}
		return max
	}
	if body(u4) <= body(u1) {
		t.Errorf("unrolled body %d not larger than rolled %d", body(u4), body(u1))
	}
}

func TestBlocksAreClosed(t *testing.T) {
	// Every lowered block must be a closed region: no register live-ins,
	// single-assignment, so the allocator can treat each independently.
	u := MustCompile(`
		var s = 0;
		for i = 0 to 4 {
			if (c[i] > 0) { s = s + c[i]; } else { s = s - 1; }
		}
		out[0] = s;
	`)
	for _, b := range u.Func.Blocks {
		if err := ir.VerifySSA(b); err != nil {
			t.Errorf("block %s: %v", b.Label, err)
		}
		if ins := ir.LiveIns(b); len(ins) > 0 {
			t.Errorf("block %s has live-ins %v", b.Label, ins)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	u := MustCompile(`
		var x = in[0];
		var a = x >= 3 && x <= 7;
		var b = x == 5 || x != 5;
		var c = -x;
		out[0] = a;
		out[1] = b;
		out[2] = c;
	`)
	init := ir.NewState()
	init.StoreInt("in", 0, 5)
	st := run(t, u, init)
	if got := st.Mem[ir.Addr{Sym: "out", Off: 0}].Int(); got != 1 {
		t.Errorf("a = %d, want 1", got)
	}
	if got := st.Mem[ir.Addr{Sym: "out", Off: 1}].Int(); got != 1 {
		t.Errorf("b = %d, want 1", got)
	}
	if got := st.Mem[ir.Addr{Sym: "out", Off: 2}].Int(); got != -5 {
		t.Errorf("c = %d, want -5", got)
	}
}

func TestIndexFolding(t *testing.T) {
	u := MustCompile(`
		var i = in[0];
		out[i + 3] = 9;
		out[2] = 7;
	`)
	var found bool
	for _, b := range u.Func.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Store && in.Sym == "out" && in.Off == 3 && in.Index != ir.NoReg {
				found = true
			}
		}
	}
	if !found {
		t.Error("constant index offset not folded")
	}
	init := ir.NewState()
	init.StoreInt("in", 0, 4)
	st := run(t, u, init)
	if got := st.Mem[ir.Addr{Sym: "out", Off: 7}].Int(); got != 9 {
		t.Errorf("out[7] = %d, want 9", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unterminated", "var x = ;", "unexpected"},
		{"missing to", "for i = 0 { }", "expected 'to'"},
		{"bad char", "var x = $;", "unexpected"},
		{"no brace", "if (1) x = 2;", `expected "{"`},
		{"trailing", "var x = 1; }", "unexpected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Parse error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestTypeErrors(t *testing.T) {
	if _, err := Compile("var x = 1.5 % 2.0;", Options{}); err == nil {
		t.Error("float %% accepted")
	}
	if _, err := Compile("float a[]; int a[];", Options{}); err == nil {
		t.Error("conflicting array declarations accepted")
	}
	if _, err := Compile("var x = 1;\nvar y = 1.5;\nx = y;\nq[x] = 1;\nq[y] = 1;", Options{}); err == nil {
		t.Error("float array index accepted")
	}
}

func TestImmediatePeephole(t *testing.T) {
	u := MustCompile("var x = in[0];\nvar y = x * 2;\nvar z = 3 + x;\nout[0] = y + z;")
	counts := map[ir.Op]int{}
	for _, b := range u.Func.Blocks {
		for _, in := range b.Instrs {
			counts[in.Op]++
		}
	}
	if counts[ir.MulI] != 1 {
		t.Errorf("muli count = %d, want 1", counts[ir.MulI])
	}
	if counts[ir.AddI] != 1 {
		t.Errorf("addi count = %d (3+x should commute to addi)", counts[ir.AddI])
	}
	if counts[ir.ConstI] != 0 {
		t.Errorf("const count = %d, want 0 (all literals folded)", counts[ir.ConstI])
	}
}
