package transform

import (
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/measure"
	"ursa/internal/reuse"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]       ; A
	w = muli v, 2       ; B
	x = muli v, 3       ; C
	y = addi v, 5       ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = muli y, 2      ; G
	t4 = divi y, 3      ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
}
`

func paperGraph(t testing.TB) *dag.Graph {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func node(t testing.TB, g *dag.Graph, name string) int {
	t.Helper()
	id := g.DefNode(g.Func.Reg(name))
	if id < 0 {
		t.Fatalf("no node defines %s", name)
	}
	return id
}

func fuWidth(g *dag.Graph) int  { return measure.Measure(reuse.FU(g, reuse.AllFUs)).Width }
func regWidth(g *dag.Graph) int { return measure.Measure(reuse.Reg(g, ir.ClassInt)).Width }

// TestFig3aFUSequencing: adding the sequence edge G -> H reduces the
// functional-unit requirement from 4 to 3; register requirement unchanged.
func TestFig3aFUSequencing(t *testing.T) {
	g := paperGraph(t)
	if fuWidth(g) != 4 || regWidth(g) != 5 {
		t.Fatalf("baseline widths FU=%d Reg=%d, want 4/5", fuWidth(g), regWidth(g))
	}
	c := &Candidate{Kind: FUSequence, Edges: [][2]int{{node(t, g, "t3"), node(t, g, "t4")}}}
	if err := c.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := fuWidth(g); got != 3 {
		t.Errorf("FU width after G->H = %d, want 3 (paper Fig 3a)", got)
	}
	if got := regWidth(g); got != 5 {
		t.Errorf("register width after G->H = %d, want 5 (unchanged)", got)
	}
}

// TestFig3bRegSequencing: edges I -> G and I -> H (S={I}, T={G,H}) reduce
// the register requirement from 5 to 4. As §5 predicts, the register
// sequencing also reduces the FU requirement (here to 3).
func TestFig3bRegSequencing(t *testing.T) {
	g := paperGraph(t)
	i := node(t, g, "t5")
	c := &Candidate{Kind: RegSequence, Edges: [][2]int{
		{i, node(t, g, "t3")},
		{i, node(t, g, "t4")},
	}}
	if err := c.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := regWidth(g); got != 4 {
		t.Errorf("register width = %d, want 4 (paper Fig 3b)", got)
	}
	if got := fuWidth(g); got != 3 {
		t.Errorf("FU width = %d, want 3 (register sequencing narrows the DAG)", got)
	}
}

// TestFig3cSpill: spilling D's value (y) with the reload barred behind
// SD1 = {B,C,E,F,I} reduces the register requirement from 5 to 3, the
// paper's Figure 3(c) result.
func TestFig3cSpill(t *testing.T) {
	g := paperGraph(t)
	c := &Candidate{
		Kind: Spill,
		Spill: &SpillSpec{
			Reg:      g.Func.Reg("y"),
			Def:      node(t, g, "y"),
			Barrier:  []int{node(t, g, "t1"), node(t, g, "t2"), node(t, g, "t5")},
			PreRoots: []int{node(t, g, "w"), node(t, g, "x")},
		},
	}
	if err := c.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := regWidth(g); got != 3 {
		t.Errorf("register width after spilling y = %d, want 3 (paper Fig 3c)", got)
	}
	// The uses of y (G and H) must now read the reloaded copy.
	yr := g.Func.Reg("y.r")
	if yr == ir.NoReg {
		t.Fatal("reloaded register y.r not created")
	}
	if got := len(g.UseNodes(yr)); got != 2 {
		t.Errorf("y.r has %d uses, want 2 (G and H)", got)
	}
	// y's only remaining use is the spill store.
	uses := g.UseNodes(g.Func.Reg("y"))
	if len(uses) != 1 || g.Nodes[uses[0]].Instr.Op != ir.SpillStore {
		t.Errorf("y's uses after spill = %v, want just the spill store", uses)
	}
}

// TestFig3cPaperLiteralBarrier applies the paper's literal S/T choice
// (reload after E and F only). Measured worst case is 4 registers: the
// schedule ...load, G, H before I keeps t1, t2 live alongside y.r and t4.
// EXPERIMENTS.md discusses the discrepancy with the paper's claimed 3.
func TestFig3cPaperLiteralBarrier(t *testing.T) {
	g := paperGraph(t)
	c := &Candidate{
		Kind: Spill,
		Spill: &SpillSpec{
			Reg:      g.Func.Reg("y"),
			Def:      node(t, g, "y"),
			Barrier:  []int{node(t, g, "t1"), node(t, g, "t2")},
			PreRoots: []int{node(t, g, "w"), node(t, g, "x")},
		},
	}
	if err := c.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := regWidth(g); got != 4 {
		t.Errorf("register width = %d, want 4", got)
	}
}

func TestApplyRejectsCycle(t *testing.T) {
	g := paperGraph(t)
	c := &Candidate{Kind: FUSequence, Edges: [][2]int{
		{node(t, g, "z"), node(t, g, "v")}, // K -> A closes a cycle
	}}
	if err := c.Apply(g); err == nil {
		t.Fatal("cycle-creating edge accepted")
	}
	if err := g.Check(); err != nil {
		t.Fatalf("graph corrupted by rejected candidate: %v", err)
	}
}

func TestSpillRejectsLiveOut(t *testing.T) {
	g := paperGraph(t)
	c := &Candidate{Kind: Spill, Spill: &SpillSpec{
		Reg: g.Func.Reg("z"),
		Def: node(t, g, "z"),
	}}
	if err := c.Apply(g); err == nil {
		t.Fatal("spilling a live-out value accepted")
	}
}

func TestSpillPreservesSemantics(t *testing.T) {
	// Execute the transformed DAG in dependence order and compare with the
	// original block's interpretation.
	f := ir.MustParse(paperSrc)
	st0 := ir.NewState()
	st0.StoreInt("V", 0, 7)
	ref := st0.Clone()
	if _, err := ref.Run(f, 1000); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := &Candidate{
		Kind: Spill,
		Spill: &SpillSpec{
			Reg:      g.Func.Reg("y"),
			Def:      node(t, g, "y"),
			Barrier:  []int{node(t, g, "t1"), node(t, g, "t2"), node(t, g, "t5")},
			PreRoots: []int{node(t, g, "w"), node(t, g, "x")},
		},
	}
	if err := c.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got := st0.Clone()
	for _, n := range g.TopoOrder() {
		if g.Nodes[n].Instr != nil {
			got.Exec(g.Func, g.Nodes[n].Instr)
		}
	}
	zf := g.Func.Reg("z")
	if got.Regs[zf] != ref.Regs[zf] {
		t.Errorf("z = %d after spill, want %d", got.Regs[zf].Int(), ref.Regs[zf].Int())
	}
}

func TestFUCandidatesReducePaperExample(t *testing.T) {
	g := paperGraph(t)
	res := measure.Measure(reuse.FU(g, reuse.AllFUs))
	sets := measure.FindExcess(res, g.Hammocks(), 3)
	if len(sets) == 0 {
		t.Fatal("no excessive set")
	}
	// The whole-graph excessive set (largest hammock) drives the transform.
	set := sets[len(sets)-1]
	cands := FUCandidates(g, res, set)
	if len(cands) == 0 {
		t.Fatal("no FU candidates generated")
	}
	reduced := false
	for _, c := range cands {
		cl := g.Clone()
		if err := c.Apply(cl); err != nil {
			continue
		}
		if fuWidth(cl) < 4 {
			reduced = true
		}
	}
	if !reduced {
		t.Error("no generated FU candidate reduces the requirement")
	}
}

func TestRegSeqCandidatesReducePaperExample(t *testing.T) {
	g := paperGraph(t)
	res := measure.Measure(reuse.Reg(g, ir.ClassInt))
	sets := measure.FindExcess(res, g.Hammocks(), 4)
	if len(sets) == 0 {
		t.Fatal("no excessive set")
	}
	set := sets[len(sets)-1]
	cands := RegSeqCandidates(g, res, set)
	cands = append(cands, SpillCandidates(g, res, set)...)
	if len(cands) == 0 {
		t.Fatal("no register candidates generated")
	}
	best := 5
	for _, c := range cands {
		cl := g.Clone()
		if err := c.Apply(cl); err != nil {
			continue
		}
		if w := regWidth(cl); w < best {
			best = w
		}
	}
	if best > 4 {
		t.Errorf("best candidate reaches width %d, want <= 4", best)
	}
}

func TestSequencingNeverIncreasesWidth(t *testing.T) {
	// §5: "Neither transformation can increase the requirements of either
	// resource." Check over all feasible single edges on the paper DAG.
	g := paperGraph(t)
	fu0, reg0 := fuWidth(g), regWidth(g)
	nodes := g.InstrNodes()
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b || g.HasEdge(a, b) || g.HasPath(b, a) {
				continue
			}
			cl := g.Clone()
			cl.AddEdge(a, b, dag.EdgeSeq)
			if w := fuWidth(cl); w > fu0 {
				t.Errorf("edge %d->%d increased FU width %d -> %d", a, b, fu0, w)
			}
			if w := regWidth(cl); w > reg0 {
				t.Errorf("edge %d->%d increased register width %d -> %d", a, b, reg0, w)
			}
		}
	}
}

// TestApplyUndoRoundTrip: a tentative application adds exactly the missing
// edges and its undo restores the graph fingerprint — the contract that
// lets the evaluator reuse one scratch graph across many candidates.
func TestApplyUndoRoundTrip(t *testing.T) {
	g := paperGraph(t)
	b, c := node(t, g, "w"), node(t, g, "x")
	pre := [2]int{node(t, g, "v"), b} // already present: B depends on A's value
	if !g.HasEdge(pre[0], pre[1]) {
		t.Fatalf("expected existing edge %v", pre)
	}
	cand := &Candidate{Kind: FUSequence, Edges: [][2]int{pre, {b, c}}, Note: "test"}

	before := g.Fingerprint()
	added, undo, err := cand.ApplyUndo(g)
	if err != nil {
		t.Fatalf("ApplyUndo: %v", err)
	}
	if len(added) != 1 || added[0] != [2]int{b, c} {
		t.Fatalf("added %v, want just %v (existing edge must be skipped)", added, [2]int{b, c})
	}
	if !g.HasEdge(b, c) {
		t.Fatal("edge not applied")
	}
	undo()
	if g.Fingerprint() != before {
		t.Fatal("undo did not restore the graph")
	}
}

// TestApplyUndoRollsBackOnCycle: when a later edge of the candidate would
// close a cycle, the earlier edges are removed before the error returns.
func TestApplyUndoRollsBackOnCycle(t *testing.T) {
	g := paperGraph(t)
	b, c := node(t, g, "w"), node(t, g, "x")
	cand := &Candidate{Kind: FUSequence, Edges: [][2]int{{b, c}, {c, b}}, Note: "cycle"}
	before := g.Fingerprint()
	if _, _, err := cand.ApplyUndo(g); err == nil {
		t.Fatal("cycle accepted")
	}
	if g.Fingerprint() != before {
		t.Fatal("failed application left edges behind")
	}
}

// TestApplyUndoRejectsSpill: spills mutate instructions and create nodes,
// so tentative application must refuse them.
func TestApplyUndoRejectsSpill(t *testing.T) {
	cand := &Candidate{Kind: Spill, Spill: &SpillSpec{Def: 0}}
	g := paperGraph(t)
	if _, _, err := cand.ApplyUndo(g); err == nil {
		t.Fatal("spill candidate accepted by ApplyUndo")
	}
}

// TestCandidateKey: Key identifies a candidate by effect — edge order and
// Note are ignored; kind, edge set, and spill payload are not.
func TestCandidateKey(t *testing.T) {
	a := &Candidate{Kind: FUSequence, Edges: [][2]int{{1, 2}, {3, 4}}, Note: "one"}
	b := &Candidate{Kind: FUSequence, Edges: [][2]int{{3, 4}, {1, 2}}, Note: "two"}
	if a.Key() != b.Key() {
		t.Errorf("edge order changed the key: %q vs %q", a.Key(), b.Key())
	}
	c := &Candidate{Kind: RegSequence, Edges: [][2]int{{1, 2}, {3, 4}}}
	if a.Key() == c.Key() {
		t.Error("kind not part of the key")
	}
	d := &Candidate{Kind: FUSequence, Edges: [][2]int{{1, 2}}}
	if a.Key() == d.Key() {
		t.Error("edge set not part of the key")
	}
	s1 := &Candidate{Kind: Spill, Spill: &SpillSpec{Reg: 1, Def: 2, Barrier: []int{5, 3}, PreRoots: []int{7}}}
	s2 := &Candidate{Kind: Spill, Spill: &SpillSpec{Reg: 1, Def: 2, Barrier: []int{3, 5}, PreRoots: []int{7}}}
	if s1.Key() != s2.Key() {
		t.Errorf("barrier order changed the key: %q vs %q", s1.Key(), s2.Key())
	}
	s3 := &Candidate{Kind: Spill, Spill: &SpillSpec{Reg: 1, Def: 3, Barrier: []int{3, 5}, PreRoots: []int{7}}}
	if s1.Key() == s3.Key() {
		t.Error("spill def not part of the key")
	}
}
