package transform

import (
	"strings"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/measure"
	"ursa/internal/reuse"
)

// interleavedGraph builds two chains woven together so that each chain's
// head reaches the other chain's tail: no tail->head merge edge is
// feasible, forcing the fallback candidate generators.
//
//	a1 -> a2 -> a3      b1 -> b2 -> b3
//	a1 -> b2, b1 -> a2, a2 -> b3, b2 -> a3
func interleavedGraph(t *testing.T) *dag.Graph {
	t.Helper()
	f := ir.MustParse(`
entry:
	a1 = load A[0]
	b1 = load A[1]
	a2 = addi a1, 1
	b2 = addi b1, 1
	xa = add b1, a2
	xb = add a1, b2
	a3 = add a2, xb
	b3 = add b2, xa
	store O[0], a3
	store O[1], b3
`)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestFUFallbackWhenMergesInfeasible(t *testing.T) {
	g := interleavedGraph(t)
	res := measure.Measure(reuse.FU(g, reuse.AllFUs))
	if res.Width < 2 {
		t.Skipf("width %d too small for the scenario", res.Width)
	}
	sets := measure.FindExcess(res, g.Hammocks(), 1)
	if len(sets) == 0 {
		t.Fatal("no excess at limit 1")
	}
	cands := FUCandidates(g, res, sets[len(sets)-1])
	if len(cands) == 0 {
		t.Fatal("no candidates at all")
	}
	applied := 0
	for _, c := range cands {
		cl := g.Clone()
		if err := c.Apply(cl); err == nil {
			applied++
			if err := cl.Check(); err != nil {
				t.Errorf("candidate %s corrupted graph: %v", c, err)
			}
		}
	}
	if applied == 0 {
		t.Error("no candidate applied cleanly")
	}
}

func TestFUFallbackAntichainSerialization(t *testing.T) {
	// Drive a graph into the no-merge state by hand and check the
	// "serialize antichain heads" candidate exists among FU candidates.
	g := interleavedGraph(t)
	res := measure.Measure(reuse.FU(g, reuse.AllFUs))
	sets := measure.FindExcess(res, g.Hammocks(), 1)
	if len(sets) == 0 {
		t.Skip("no excess")
	}
	found := false
	for _, set := range sets {
		for _, c := range FUCandidates(g, res, set) {
			if strings.Contains(c.Note, "serialize") || strings.Contains(c.Note, "mid ") ||
				strings.Contains(c.Note, "->") {
				found = true
			}
		}
	}
	if !found {
		t.Error("no fallback-style candidate generated")
	}
}

func TestRegFallbackSerializesLifetimes(t *testing.T) {
	g := interleavedGraph(t)
	res := measure.Measure(reuse.Reg(g, ir.ClassInt))
	if res.Width < 3 {
		t.Skipf("width %d leaves no reducible excess (binary operands pin 2)", res.Width)
	}
	// One below the current width: reducible without hitting the floor of
	// two simultaneously-live operands that any binary instruction needs.
	sets := measure.FindExcess(res, g.Hammocks(), res.Width-1)
	if len(sets) == 0 {
		t.Skip("no register excess")
	}
	// On this graph every value has a distant second use, so its true
	// minimum register need equals the measured width: no candidate can
	// reduce it. The fallback generators must still produce applicable,
	// width-safe candidates (the driver discards non-improving ones).
	applied := 0
	before := res.Width
	for _, set := range sets {
		cands := RegSeqCandidates(g, res, set)
		cands = append(cands, SpillCandidates(g, res, set)...)
		if len(cands) == 0 {
			t.Error("no register candidates generated")
		}
		for _, c := range cands {
			cl := g.Clone()
			if err := c.Apply(cl); err != nil {
				continue
			}
			applied++
			if err := cl.Check(); err != nil {
				t.Fatalf("candidate %s corrupted graph: %v", c, err)
			}
			after := measure.Measure(reuse.Reg(cl, ir.ClassInt)).Width
			if after > before {
				t.Errorf("candidate %s increased register width %d -> %d", c, before, after)
			}
		}
	}
	if applied == 0 {
		t.Error("no register candidate applied cleanly")
	}
}
