// Package transform implements URSA's resource-requirement reduction
// transformations (paper §4): functional-unit sequentialization, register
// sequentialization, and spill insertion. All three operate on the same
// dependence DAG, so the driver can apply them in any order or in an
// integrated manner (§5).
//
// Candidate generation is heuristic, exactly as in the paper; the driver
// tentatively applies each candidate, re-measures the transformed DAG, and
// commits the candidate with the best combination of requirement reduction
// and critical-path impact.
package transform

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"

	"ursa/internal/dag"
	"ursa/internal/ir"
)

// Kind identifies a transformation family.
type Kind uint8

// Transformation kinds.
const (
	FUSequence  Kind = iota // §4.1: sequence independent instructions
	RegSequence             // §4.2: stage the hammock to shorten live ranges
	Spill                   // §4.3: store a value, reload when pressure drops
	CopySpill               // clustered VLIW: reroute an inter-cluster copy through memory
	NumKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case FUSequence:
		return "fu-seq"
	case RegSequence:
		return "reg-seq"
	case Spill:
		return "spill"
	case CopySpill:
		return "copy-spill"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// A Candidate is one concrete applicable transformation.
type Candidate struct {
	Kind      Kind
	Edges     [][2]int       // sequentialization edges to add (from, to)
	Spill     *SpillSpec     // spill payload, for Kind == Spill
	CopySpill *CopySpillSpec // copy-spill payload, for Kind == CopySpill
	Note      string         // human-readable description for traces
}

// SpillSpec describes a spill-insertion transformation: the value defined at
// Def is stored right after its definition, the store is sequenced before
// the PreRoots (SD1's roots, so the register is free while SD1 runs), and
// the reload is sequenced after the Barrier nodes (SD1's leaves). Uses of
// the value that can legally wait are rewired to the reloaded copy.
type SpillSpec struct {
	Reg      ir.VReg
	Def      int
	Barrier  []int
	PreRoots []int
}

// CopySpillSpec describes a copy-spill transformation (clustered machines):
// the inter-cluster copy at node Copy is rerouted through memory — a spill
// store of the source value on the producing cluster plus a reload into the
// copy's destination register on the consuming cluster — freeing the
// transfer-bus slot the copy occupied. Because URSA measures the bus, the
// per-cluster issue slots, and the destination register file through the
// same reduction loop, the copy-vs-spill decision falls out of measured
// excess rather than a fixed heuristic.
type CopySpillSpec struct {
	Copy int // node id of the inter-cluster copy
}

// String renders the candidate for traces.
func (c *Candidate) String() string {
	if c.Note != "" {
		return fmt.Sprintf("%s(%s)", c.Kind, c.Note)
	}
	return c.Kind.String()
}

// Apply mutates the graph. It returns an error (leaving the graph in a
// valid, possibly partially-extended state only on the error paths noted
// below) if the candidate is inapplicable: an edge would create a cycle, or
// a spill would rewire no uses. Callers that must not observe partial
// application should apply to a clone first — the driver's
// tentative-apply-and-score loop does exactly that.
func (c *Candidate) Apply(g *dag.Graph) error {
	for _, e := range c.Edges {
		if g.HasEdge(e[0], e[1]) {
			continue
		}
		if g.HasPath(e[1], e[0]) {
			return fmt.Errorf("transform %s: edge %d->%d would create a cycle", c.Kind, e[0], e[1])
		}
		g.AddEdge(e[0], e[1], dag.EdgeSeq)
	}
	if c.Spill != nil {
		if err := applySpill(g, c.Spill, nil); err != nil {
			return err
		}
	}
	if c.CopySpill != nil {
		if err := applyCopySpill(g, c.CopySpill); err != nil {
			return err
		}
	}
	return nil
}

// An UndoLog records everything one tentative application changed, so the
// change can be reverted in place. One log lives per evaluator worker and
// is reused across candidates; its slices keep their capacity, so the
// steady-state apply/score/revert cycle allocates nothing.
type UndoLog struct {
	g       *dag.Graph
	nodes   int // node count at ApplyLog time
	regs    int // Func.NumRegs at ApplyLog time
	added   [][2]int
	removed []removedEdge
	patches []argPatch
}

type removedEdge struct {
	a, b int
	kind dag.EdgeKind
}

// argPatch records one operand rewrite: slot >= 0 indexes Instr.Args,
// slot == -1 means the Index register.
type argPatch struct {
	in   *ir.Instr
	slot int
	old  ir.VReg
}

// Added returns the sequence edges the application actually added (edges
// already present were skipped). The slice aliases the log and is valid
// until the next ApplyLog. For spill candidates it also contains the
// store/load wiring, so incremental closure updates must not be derived
// from it — the evaluator re-measures spilled graphs from scratch.
func (u *UndoLog) Added() [][2]int { return u.added }

// Revert undoes the recorded application: operand rewrites are restored,
// removed edges re-added with their original kinds, added edges removed,
// and any nodes and registers the application created are truncated away.
// Successor/predecessor list order may differ from the pre-apply state
// (re-added edges append at the tail); every analysis the evaluator runs is
// order-independent, and the committed graph never goes through a revert.
func (u *UndoLog) Revert() {
	g := u.g
	for i := len(u.patches) - 1; i >= 0; i-- {
		p := u.patches[i]
		if p.slot < 0 {
			p.in.Index = p.old
		} else {
			p.in.Args[p.slot] = p.old
		}
	}
	for i := len(u.added) - 1; i >= 0; i-- {
		g.RemoveEdge(u.added[i][0], u.added[i][1])
	}
	for i := len(u.removed) - 1; i >= 0; i-- {
		r := u.removed[i]
		g.AddEdge(r.a, r.b, r.kind)
	}
	g.TruncateNodes(u.nodes)
	g.Func.TruncateRegs(u.regs)
}

// reset points the log at a fresh application on g.
func (u *UndoLog) reset(g *dag.Graph) {
	u.g = g
	u.nodes = g.NumNodes()
	u.regs = g.Func.NumRegs()
	u.added = u.added[:0]
	u.removed = u.removed[:0]
	u.patches = u.patches[:0]
}

// ApplyLog tentatively applies the candidate — sequencing edges and, unlike
// ApplyUndo, spill payloads too — recording every change in the reusable
// log. On error the partial application is already reverted and the graph
// is back in its prior state. On success the caller scores the transformed
// graph and then calls log.Revert.
func (c *Candidate) ApplyLog(g *dag.Graph, log *UndoLog) error {
	if c.CopySpill != nil {
		// Copy-spill rewrites an instruction's opcode in place, which the
		// undo log cannot restore; clustered reductions run the full-clone
		// evaluation path, so this is never reached in normal operation.
		return fmt.Errorf("transform %s: copy-spill candidates have no undo; evaluate on a clone", c.Kind)
	}
	log.reset(g)
	for _, e := range c.Edges {
		if g.HasEdge(e[0], e[1]) {
			continue
		}
		if g.HasPath(e[1], e[0]) {
			log.Revert()
			return fmt.Errorf("transform %s: edge %d->%d would create a cycle", c.Kind, e[0], e[1])
		}
		g.AddEdge(e[0], e[1], dag.EdgeSeq)
		log.added = append(log.added, e)
	}
	if c.Spill != nil {
		if err := applySpill(g, c.Spill, log); err != nil {
			log.Revert()
			return err
		}
	}
	return nil
}

// SeqOnly reports whether the candidate is a pure sequentialization — it
// only adds sequence edges, with no spill or copy-spill payload. Only such
// candidates can be applied tentatively with ApplyUndo and remeasured
// incrementally.
func (c *Candidate) SeqOnly() bool { return c.Spill == nil && c.CopySpill == nil }

// ApplyUndo tentatively applies a sequencing-only candidate: it adds the
// candidate's edges (skipping ones already present), returning the edges
// actually added and an undo function that removes exactly those edges,
// restoring the graph to its prior state. On a would-be cycle the partial
// application is rolled back before the error returns, so the graph is
// never left extended. Candidates with a spill payload are rejected — spill
// insertion creates nodes and rewrites instructions in place, which has no
// cheap inverse; tentative spills are evaluated on clones instead.
func (c *Candidate) ApplyUndo(g *dag.Graph) (added [][2]int, undo func(), err error) {
	if !c.SeqOnly() {
		return nil, nil, fmt.Errorf("transform %s: spill candidates cannot be undone", c.Kind)
	}
	revert := func() {
		for _, e := range added {
			g.RemoveEdge(e[0], e[1])
		}
	}
	for _, e := range c.Edges {
		if g.HasEdge(e[0], e[1]) {
			continue
		}
		if g.HasPath(e[1], e[0]) {
			revert()
			return nil, nil, fmt.Errorf("transform %s: edge %d->%d would create a cycle", c.Kind, e[0], e[1])
		}
		g.AddEdge(e[0], e[1], dag.EdgeSeq)
		added = append(added, e)
	}
	return added, revert, nil
}

// Key returns a canonical identity for the transformation's effect: the
// kind, the edge set in sorted order, and the spill target. Candidates with
// equal keys transform the graph identically even when their generators and
// Notes differ; the driver uses this to measure each distinct effect once
// per iteration. Key allocates its result; the evaluator's hot path uses
// FixedKey with a reused buffer instead.
func (c *Candidate) Key() string { return string(c.AppendKey(nil)) }

// A CandKey is a fixed-size comparable digest of a candidate's canonical
// encoding (AppendKey), usable directly as a map key. Candidates with equal
// effect always collide; distinct effects are separated by the full 256-bit
// digest.
type CandKey [sha256.Size]byte

// FixedKey returns the candidate's fixed-size key. buf is an optional
// scratch buffer reused for the canonical encoding; the (possibly grown)
// buffer is returned so callers can thread one allocation through a whole
// dedupe pass.
func (c *Candidate) FixedKey(buf []byte) (CandKey, []byte) {
	buf = c.AppendKey(buf[:0])
	return CandKey(sha256.Sum256(buf)), buf
}

// AppendKey appends the candidate's canonical binary encoding to dst and
// returns the extended slice. The encoding is what Key and FixedKey are
// built from: kind, edge count, edges sorted lexicographically, and the
// spill payload (register, definition, sorted barriers, sorted pre-roots)
// when present. Candidates with up to 32 edges encode without allocating
// beyond dst's growth.
func (c *Candidate) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(c.Kind))
	var stack [32][2]int
	edges := stack[:0]
	if len(c.Edges) > len(stack) {
		edges = make([][2]int, 0, len(c.Edges))
	}
	edges = append(edges, c.Edges...)
	slices.SortFunc(edges, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	for _, e := range edges {
		dst = binary.AppendUvarint(dst, uint64(e[0]))
		dst = binary.AppendUvarint(dst, uint64(e[1]))
	}
	if sp := c.Spill; sp != nil {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(sp.Reg))
		dst = binary.AppendUvarint(dst, uint64(sp.Def))
		dst = appendSortedInts(dst, sp.Barrier)
		dst = appendSortedInts(dst, sp.PreRoots)
	}
	if sp := c.CopySpill; sp != nil {
		dst = append(dst, 2)
		dst = binary.AppendUvarint(dst, uint64(sp.Copy))
	}
	return dst
}

// appendSortedInts appends a length-prefixed sorted copy of xs.
func appendSortedInts(dst []byte, xs []int) []byte {
	var stack [32]int
	s := stack[:0]
	if len(xs) > len(stack) {
		s = make([]int, 0, len(xs))
	}
	s = append(s, xs...)
	slices.Sort(s)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, x := range s {
		dst = binary.AppendUvarint(dst, uint64(x))
	}
	return dst
}

// applySpill inserts the spill's store/load pair, wires it, and rewires the
// delayable uses. With log == nil (the commit path) the graph is mutated
// for good; with a log every change is recorded so the caller can revert —
// the store/load wiring always touches the freshly added nodes, so every
// AddEdge here is a genuinely new edge and is logged unconditionally.
func applySpill(g *dag.Graph, sp *SpillSpec, log *UndoLog) error {
	f := g.Func
	name := f.NameOf(sp.Reg)
	class := f.ClassOf(sp.Reg)
	slot := "spill." + name

	addEdge := func(a, b int, kind dag.EdgeKind) {
		g.AddEdge(a, b, kind)
		if log != nil {
			log.added = append(log.added, [2]int{a, b})
		}
	}

	if g.LiveOut[sp.Reg] {
		return fmt.Errorf("transform spill: %s is live-out", name)
	}
	defNode := g.Nodes[sp.Def]
	if defNode.Instr == nil || defNode.Instr.Dst != sp.Reg {
		return fmt.Errorf("transform spill: node %d does not define %s", sp.Def, name)
	}

	uses := g.UseNodes(sp.Reg)
	if len(uses) == 0 {
		return fmt.Errorf("transform spill: %s has no uses", name)
	}

	// Insert the store and load nodes, on the value's home cluster: the
	// store must read the value where it lives, and the reload re-produces
	// it there so surviving same-cluster readers stay legal.
	st := g.AddInstr(&ir.Instr{Op: ir.SpillStore, Args: []ir.VReg{sp.Reg}, Sym: slot, Cluster: defNode.Instr.Cluster})
	nv := f.NewReg(name+".r", class)
	ld := g.AddInstr(&ir.Instr{Op: ir.SpillLoad, Dst: nv, Sym: slot, Cluster: defNode.Instr.Cluster})
	addEdge(sp.Def, st, dag.EdgeData)
	addEdge(st, ld, dag.EdgeMem)

	// The reload waits for SD1 to finish.
	for _, b := range sp.Barrier {
		if b == ld || g.HasPath(ld, b) {
			continue
		}
		addEdge(b, ld, dag.EdgeSeq)
	}
	// The store happens before SD1 starts, freeing the register. Roots
	// that are ancestors of the definition cannot be sequenced after it.
	for _, r := range sp.PreRoots {
		if r == st || g.HasPath(r, sp.Def) || g.HasPath(r, st) {
			continue
		}
		addEdge(st, r, dag.EdgeSeq)
	}

	// Rewire every use that can legally wait for the reload.
	rewired := 0
	for _, u := range uses {
		if u == st || g.HasPath(u, ld) {
			continue
		}
		in := g.Nodes[u].Instr
		for i, a := range in.Args {
			if a == sp.Reg {
				if log != nil {
					log.patches = append(log.patches, argPatch{in: in, slot: i, old: a})
				}
				in.Args[i] = nv
			}
		}
		if in.Index == sp.Reg {
			if log != nil {
				log.patches = append(log.patches, argPatch{in: in, slot: -1, old: sp.Reg})
			}
			in.Index = nv
		}
		if g.HasEdge(sp.Def, u) {
			if log != nil {
				kind, _ := g.EdgeKindOf(sp.Def, u)
				log.removed = append(log.removed, removedEdge{a: sp.Def, b: u, kind: kind})
			}
			g.RemoveEdge(sp.Def, u)
		}
		addEdge(ld, u, dag.EdgeData)
		rewired++
	}
	if rewired == 0 {
		if log != nil {
			// The caller reverts everything; no patch-up needed.
			return fmt.Errorf("transform spill: no use of %s can be delayed", name)
		}
		// Nothing could be delayed: undo the dangling store/load by wiring
		// them straight to the leaf so the graph stays valid, and report
		// failure so the driver discards this candidate.
		g.AddEdge(ld, g.Leaf, dag.EdgeSeq)
		return fmt.Errorf("transform spill: no use of %s can be delayed", name)
	}
	// Keep the hammock property for the new nodes.
	if len(g.Succs(ld)) == 0 {
		addEdge(ld, g.Leaf, dag.EdgeSeq)
	}
	return nil
}

// applyCopySpill reroutes an inter-cluster copy through memory: a spill
// store of the source value is inserted on the producing cluster, and the
// copy instruction itself is rewritten in place into the reload — same
// destination register, same cluster, so every consumer edge survives
// untouched. The one data edge from the source's definition to the copy is
// replaced by def -> store -> load wiring. There is no log variant: the
// opcode rewrite has no cheap inverse, so tentative copy-spills are always
// evaluated on clones.
func applyCopySpill(g *dag.Graph, sp *CopySpillSpec) error {
	if sp.Copy < 0 || sp.Copy >= g.NumNodes() {
		return fmt.Errorf("transform copy-spill: node %d out of range", sp.Copy)
	}
	in := g.Nodes[sp.Copy].Instr
	if in == nil || !in.IsCopy() {
		return fmt.Errorf("transform copy-spill: node %d is not an inter-cluster copy", sp.Copy)
	}
	f := g.Func
	src := in.Args[0]
	def := g.DefNode(src)
	if def < 0 {
		return fmt.Errorf("transform copy-spill: copy source %s is not defined in the region", f.NameOf(src))
	}
	slot := "spill." + f.NameOf(src)
	srcCluster := g.Nodes[def].Instr.Cluster

	st := g.AddInstr(&ir.Instr{Op: ir.SpillStore, Args: []ir.VReg{src}, Sym: slot, Cluster: srcCluster})
	in.Op = ir.SpillLoad
	in.Args = nil
	in.Sym = slot

	if g.HasEdge(def, sp.Copy) {
		g.RemoveEdge(def, sp.Copy)
	}
	g.AddEdge(def, st, dag.EdgeData)
	g.AddEdge(st, sp.Copy, dag.EdgeMem)
	if len(g.Succs(sp.Copy)) == 0 {
		g.AddEdge(sp.Copy, g.Leaf, dag.EdgeSeq)
	}
	return nil
}
