// Package transform implements URSA's resource-requirement reduction
// transformations (paper §4): functional-unit sequentialization, register
// sequentialization, and spill insertion. All three operate on the same
// dependence DAG, so the driver can apply them in any order or in an
// integrated manner (§5).
//
// Candidate generation is heuristic, exactly as in the paper; the driver
// tentatively applies each candidate, re-measures the transformed DAG, and
// commits the candidate with the best combination of requirement reduction
// and critical-path impact.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/dag"
	"ursa/internal/ir"
)

// Kind identifies a transformation family.
type Kind uint8

// Transformation kinds.
const (
	FUSequence  Kind = iota // §4.1: sequence independent instructions
	RegSequence             // §4.2: stage the hammock to shorten live ranges
	Spill                   // §4.3: store a value, reload when pressure drops
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case FUSequence:
		return "fu-seq"
	case RegSequence:
		return "reg-seq"
	case Spill:
		return "spill"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// A Candidate is one concrete applicable transformation.
type Candidate struct {
	Kind  Kind
	Edges [][2]int   // sequentialization edges to add (from, to)
	Spill *SpillSpec // spill payload, for Kind == Spill
	Note  string     // human-readable description for traces
}

// SpillSpec describes a spill-insertion transformation: the value defined at
// Def is stored right after its definition, the store is sequenced before
// the PreRoots (SD1's roots, so the register is free while SD1 runs), and
// the reload is sequenced after the Barrier nodes (SD1's leaves). Uses of
// the value that can legally wait are rewired to the reloaded copy.
type SpillSpec struct {
	Reg      ir.VReg
	Def      int
	Barrier  []int
	PreRoots []int
}

// String renders the candidate for traces.
func (c *Candidate) String() string {
	if c.Note != "" {
		return fmt.Sprintf("%s(%s)", c.Kind, c.Note)
	}
	return c.Kind.String()
}

// Apply mutates the graph. It returns an error (leaving the graph in a
// valid, possibly partially-extended state only on the error paths noted
// below) if the candidate is inapplicable: an edge would create a cycle, or
// a spill would rewire no uses. Callers that must not observe partial
// application should apply to a clone first — the driver's
// tentative-apply-and-score loop does exactly that.
func (c *Candidate) Apply(g *dag.Graph) error {
	for _, e := range c.Edges {
		if g.HasEdge(e[0], e[1]) {
			continue
		}
		if g.HasPath(e[1], e[0]) {
			return fmt.Errorf("transform %s: edge %d->%d would create a cycle", c.Kind, e[0], e[1])
		}
		g.AddEdge(e[0], e[1], dag.EdgeSeq)
	}
	if c.Spill != nil {
		if err := applySpill(g, c.Spill); err != nil {
			return err
		}
	}
	return nil
}

// SeqOnly reports whether the candidate is a pure sequentialization — it
// only adds sequence edges, with no spill payload. Only such candidates can
// be applied tentatively with ApplyUndo and remeasured incrementally.
func (c *Candidate) SeqOnly() bool { return c.Spill == nil }

// ApplyUndo tentatively applies a sequencing-only candidate: it adds the
// candidate's edges (skipping ones already present), returning the edges
// actually added and an undo function that removes exactly those edges,
// restoring the graph to its prior state. On a would-be cycle the partial
// application is rolled back before the error returns, so the graph is
// never left extended. Candidates with a spill payload are rejected — spill
// insertion creates nodes and rewrites instructions in place, which has no
// cheap inverse; tentative spills are evaluated on clones instead.
func (c *Candidate) ApplyUndo(g *dag.Graph) (added [][2]int, undo func(), err error) {
	if c.Spill != nil {
		return nil, nil, fmt.Errorf("transform %s: spill candidates cannot be undone", c.Kind)
	}
	revert := func() {
		for _, e := range added {
			g.RemoveEdge(e[0], e[1])
		}
	}
	for _, e := range c.Edges {
		if g.HasEdge(e[0], e[1]) {
			continue
		}
		if g.HasPath(e[1], e[0]) {
			revert()
			return nil, nil, fmt.Errorf("transform %s: edge %d->%d would create a cycle", c.Kind, e[0], e[1])
		}
		g.AddEdge(e[0], e[1], dag.EdgeSeq)
		added = append(added, e)
	}
	return added, revert, nil
}

// Key returns a canonical identity for the transformation's effect: the
// kind, the edge set in sorted order, and the spill target. Candidates with
// equal keys transform the graph identically even when their generators and
// Notes differ; the driver uses this to measure each distinct effect once
// per iteration.
func (c *Candidate) Key() string {
	edges := make([][2]int, len(c.Edges))
	copy(edges, c.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", c.Kind)
	for _, e := range edges {
		fmt.Fprintf(&sb, ";%d>%d", e[0], e[1])
	}
	if sp := c.Spill; sp != nil {
		br := append([]int(nil), sp.Barrier...)
		pr := append([]int(nil), sp.PreRoots...)
		sort.Ints(br)
		sort.Ints(pr)
		fmt.Fprintf(&sb, ";spill:%d@%d;b%v;p%v", sp.Reg, sp.Def, br, pr)
	}
	return sb.String()
}

func applySpill(g *dag.Graph, sp *SpillSpec) error {
	f := g.Func
	name := f.NameOf(sp.Reg)
	class := f.ClassOf(sp.Reg)
	slot := "spill." + name

	if g.LiveOut[sp.Reg] {
		return fmt.Errorf("transform spill: %s is live-out", name)
	}
	defNode := g.Nodes[sp.Def]
	if defNode.Instr == nil || defNode.Instr.Dst != sp.Reg {
		return fmt.Errorf("transform spill: node %d does not define %s", sp.Def, name)
	}

	uses := g.UseNodes(sp.Reg)
	if len(uses) == 0 {
		return fmt.Errorf("transform spill: %s has no uses", name)
	}

	// Insert the store and load nodes.
	st := g.AddInstr(&ir.Instr{Op: ir.SpillStore, Args: []ir.VReg{sp.Reg}, Sym: slot})
	nv := f.NewReg(name+".r", class)
	ld := g.AddInstr(&ir.Instr{Op: ir.SpillLoad, Dst: nv, Sym: slot})
	g.AddEdge(sp.Def, st, dag.EdgeData)
	g.AddEdge(st, ld, dag.EdgeMem)

	// The reload waits for SD1 to finish.
	for _, b := range sp.Barrier {
		if b == ld || g.HasPath(ld, b) {
			continue
		}
		g.AddEdge(b, ld, dag.EdgeSeq)
	}
	// The store happens before SD1 starts, freeing the register. Roots
	// that are ancestors of the definition cannot be sequenced after it.
	for _, r := range sp.PreRoots {
		if r == st || g.HasPath(r, sp.Def) || g.HasPath(r, st) {
			continue
		}
		g.AddEdge(st, r, dag.EdgeSeq)
	}

	// Rewire every use that can legally wait for the reload.
	rewired := 0
	for _, u := range uses {
		if u == st || g.HasPath(u, ld) {
			continue
		}
		in := g.Nodes[u].Instr
		for i, a := range in.Args {
			if a == sp.Reg {
				in.Args[i] = nv
			}
		}
		if in.Index == sp.Reg {
			in.Index = nv
		}
		g.RemoveEdge(sp.Def, u)
		g.AddEdge(ld, u, dag.EdgeData)
		rewired++
	}
	if rewired == 0 {
		// Nothing could be delayed: undo the dangling store/load by wiring
		// them straight to the leaf so the graph stays valid, and report
		// failure so the driver discards this candidate.
		g.AddEdge(ld, g.Leaf, dag.EdgeSeq)
		return fmt.Errorf("transform spill: no use of %s can be delayed", name)
	}
	// Keep the hammock property for the new nodes.
	if len(g.Succs(ld)) == 0 {
		g.AddEdge(ld, g.Leaf, dag.EdgeSeq)
	}
	return nil
}
