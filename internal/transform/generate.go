package transform

import (
	"fmt"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/measure"
	"ursa/internal/order"
)

// FUCandidates generates sequentialization candidates for a functional-unit
// excessive chain set (§4.1). The primary candidate applies "ideal sequence
// matching": with X excess chains, the i-th edge runs from the chain tail
// i-th closest to the hammock's entry to the chain head i-th closest to the
// entry, averaging the lengths of the resulting entry-to-exit paths. A
// handful of single-edge variants are also produced so the driver's scoring
// can pick a less aggressive reduction when that preserves the critical
// path better.
func FUCandidates(g *dag.Graph, res *measure.Result, set *measure.ExcessSet) []*Candidate {
	items := res.R.Items
	depth := g.Depths()
	type end struct{ chain, node int }

	var tails, heads []end
	for ci, c := range set.Chains {
		h := items[c[0]].Node
		t := items[c[len(c)-1]].Node
		if h != g.Root {
			heads = append(heads, end{ci, h})
		}
		if t != g.Root {
			tails = append(tails, end{ci, t})
		}
	}
	sort.Slice(tails, func(i, j int) bool {
		if depth[tails[i].node] != depth[tails[j].node] {
			return depth[tails[i].node] < depth[tails[j].node]
		}
		return tails[i].node < tails[j].node
	})
	sort.Slice(heads, func(i, j int) bool {
		if depth[heads[i].node] != depth[heads[j].node] {
			return depth[heads[i].node] < depth[heads[j].node]
		}
		return heads[i].node < heads[j].node
	})

	feasible := func(t, h end) bool {
		return t.chain != h.chain && t.node != h.node && !g.HasPath(h.node, t.node)
	}

	x := set.Excess()
	var ideal [][2]int
	usedTail := make(map[int]bool)
	usedHead := make(map[int]bool)
	// Pair i-th closest tail with i-th closest head; on failure advance the
	// head toward the exit (the paper's retry: replace a node with one
	// closer to the entry until the test passes).
	for _, t := range tails {
		if len(ideal) == x {
			break
		}
		if usedTail[t.chain] {
			continue
		}
		for _, h := range heads {
			if usedHead[h.chain] || usedTail[h.chain] || usedHead[t.chain] {
				continue
			}
			if feasible(t, h) {
				ideal = append(ideal, [2]int{t.node, h.node})
				usedTail[t.chain] = true
				usedHead[h.chain] = true
				break
			}
		}
	}

	var cands []*Candidate
	if len(ideal) > 0 {
		cands = append(cands, &Candidate{
			Kind:  FUSequence,
			Edges: ideal,
			Note:  fmt.Sprintf("ideal sequence matching, %d edges", len(ideal)),
		})
	}
	// Single-edge variants.
	n := 0
	for _, t := range tails {
		for _, h := range heads {
			if feasible(t, h) {
				cands = append(cands, &Candidate{
					Kind:  FUSequence,
					Edges: [][2]int{{t.node, h.node}},
					Note:  fmt.Sprintf("%s->%s", g.Nodes[t.node].Name, g.Nodes[h.node].Name),
				})
				n++
				if n >= 6 {
					return cands
				}
			}
		}
	}
	if len(cands) > 0 {
		return cands
	}
	// Fallback for heavily transformed DAGs where no tail->head merge is
	// feasible: the trimmed chain heads are mutually independent by
	// Definition 6, i.e. they form an antichain as wide as the excess set.
	// Sequencing those heads directly destroys that antichain (§4.1's
	// "add sequential dependence edges to sequentialize independent nodes
	// in the excessive chain set").
	headsOnly := make([]int, 0, len(set.Chains))
	for _, c := range set.Chains {
		h := items[c[0]].Node
		if h != g.Root {
			headsOnly = append(headsOnly, h)
		}
	}
	sort.Slice(headsOnly, func(i, j int) bool {
		if depth[headsOnly[i]] != depth[headsOnly[j]] {
			return depth[headsOnly[i]] < depth[headsOnly[j]]
		}
		return headsOnly[i] < headsOnly[j]
	})
	chainEdges := func(ns []int) [][2]int {
		var es [][2]int
		for i := 0; i+1 < len(ns); i++ {
			es = append(es, [2]int{ns[i], ns[i+1]})
		}
		return es
	}
	if len(headsOnly) > x {
		if es := chainEdges(headsOnly[:x+1]); len(es) > 0 {
			cands = append(cands, &Candidate{Kind: FUSequence, Edges: es,
				Note: fmt.Sprintf("serialize %d antichain heads", x+1)})
		}
	}
	if len(headsOnly) > 2 {
		if es := chainEdges(headsOnly); len(es) > 0 {
			cands = append(cands, &Candidate{Kind: FUSequence, Edges: es,
				Note: fmt.Sprintf("serialize all %d antichain heads", len(headsOnly))})
		}
	}
	// Last resort: sequence the first independent cross-chain pair found,
	// scanning from chain tails toward heads.
	for i, ci := range set.Chains {
		for j, cj := range set.Chains {
			if i == j {
				continue
			}
			for x := len(ci) - 1; x >= 0 && n < 6; x-- {
				a := items[ci[x]].Node
				if a == g.Root {
					continue
				}
				for y := 0; y < len(cj); y++ {
					b := items[cj[y]].Node
					if b == g.Root || a == b || g.HasPath(a, b) || g.HasPath(b, a) {
						continue
					}
					cands = append(cands, &Candidate{
						Kind:  FUSequence,
						Edges: [][2]int{{a, b}},
						Note:  fmt.Sprintf("mid %s->%s", g.Nodes[a].Name, g.Nodes[b].Name),
					})
					n++
					break
				}
			}
			if n >= 6 {
				return cands
			}
		}
	}
	return cands
}

// chainNodes maps an item chain to its producer nodes, skipping the root
// (live-in items cannot be moved).
func chainNodes(res *measure.Result, c []int) []int {
	var out []int
	for _, it := range c {
		n := res.R.Items[it].Node
		if n != res.R.Graph.Root {
			out = append(out, n)
		}
	}
	return out
}

// nonsupporting reports whether no DAG edge runs from any node of a to any
// node of b (Definition 7: a is nonsupporting of b means no edges a -> b;
// here we check "from" as the paper's SD2 -> SD1 direction).
func nonsupporting(g *dag.Graph, from, to []int) bool {
	toSet := make(map[int]bool, len(to))
	for _, n := range to {
		toSet[n] = true
	}
	for _, n := range from {
		for _, s := range g.Succs(n) {
			if toSet[s] {
				return false
			}
		}
	}
	return true
}

// sd1Ends returns the roots and leaves of the sub-DAG induced by nodes:
// roots have no predecessor inside the set, leaves no successor inside.
func sd1Ends(g *dag.Graph, nodes []int) (roots, leaves []int) {
	set := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	for _, n := range nodes {
		hasPred, hasSucc := false, false
		for _, p := range g.Preds(n) {
			if set[p] {
				hasPred = true
			}
		}
		for _, s := range g.Succs(n) {
			if set[s] {
				hasSucc = true
			}
		}
		if !hasPred {
			roots = append(roots, n)
		}
		if !hasSucc {
			leaves = append(leaves, n)
		}
	}
	return roots, leaves
}

// releaseNodes returns, for the given chains, the kill node of each chain's
// last item: the node whose execution frees the register that chain holds.
// Chains whose last item is killed at the leaf (live-out) release nothing
// and are skipped. The result is deduplicated and sorted deepest-first.
func releaseNodes(g *dag.Graph, res *measure.Result, chains []order.Chain) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range chains {
		last := c[len(c)-1]
		if res.R.Kill == nil {
			// FU items: the resource frees when the tail itself completes.
			n := res.R.Items[last].Node
			if n != g.Root && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
			continue
		}
		k := res.R.Kill[last]
		if k >= 0 && k != g.Root && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	depth := g.Depths()
	sort.Slice(out, func(i, j int) bool {
		if depth[out[i]] != depth[out[j]] {
			return depth[out[i]] > depth[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// RegSeqCandidates generates register sequentialization candidates (§4.2):
// choose SD2 (the chains to delay, preferring those whose heads sit deepest
// so delaying them costs the least) and add sequence edges from set S — the
// release nodes that free SD1's registers (the kills of SD1's chain tails)
// — to set T, the producer nodes of SD2's chain heads. Figure 3(b) is the
// shape S={I} (the kill of t1 and t2), T={G,H}.
func RegSeqCandidates(g *dag.Graph, res *measure.Result, set *measure.ExcessSet) []*Candidate {
	depth := g.Depths()
	x := set.Excess()
	if x < 1 || len(set.Chains) < 2 {
		return nil
	}

	// Order chains by head depth descending: deepest heads delayed first.
	idx := make([]int, len(set.Chains))
	for i := range idx {
		idx[i] = i
	}
	headNode := func(ci int) int {
		ns := chainNodes(res, set.Chains[ci])
		if len(ns) == 0 {
			return -1
		}
		return ns[0]
	}
	sort.Slice(idx, func(a, b int) bool {
		ha, hb := headNode(idx[a]), headNode(idx[b])
		if (ha == -1) != (hb == -1) {
			return hb == -1
		}
		if ha == -1 {
			return idx[a] < idx[b]
		}
		if depth[ha] != depth[hb] {
			return depth[ha] > depth[hb]
		}
		return ha < hb
	})

	var cands []*Candidate
	build := func(k int) {
		sd2Set := make(map[int]bool, k)
		var tNodes []int
		var sd2 []int
		for _, ci := range idx[:k] {
			ns := chainNodes(res, set.Chains[ci])
			if len(ns) == 0 {
				return
			}
			sd2Set[ci] = true
			tNodes = append(tNodes, ns[0])
			sd2 = append(sd2, ns...)
		}
		var sd1Chains []order.Chain
		var sd1 []int
		for ci, c := range set.Chains {
			if !sd2Set[ci] {
				sd1Chains = append(sd1Chains, c)
				sd1 = append(sd1, chainNodes(res, c)...)
			}
		}
		if len(sd1) == 0 || !nonsupporting(g, sd2, sd1) {
			return
		}
		rel := releaseNodes(g, res, sd1Chains)
		if len(rel) == 0 {
			return
		}
		sort.Ints(tNodes)
		mkEdges := func(ss []int) [][2]int {
			var es [][2]int
			for _, t := range tNodes {
				for _, s := range ss {
					if s != t && !g.HasPath(t, s) && !g.HasPath(s, t) {
						es = append(es, [2]int{s, t})
					}
				}
			}
			return es
		}
		// Candidate S sets of increasing aggressiveness: a single shallow
		// release (cheapest barrier), a single deep release, and all
		// releases (stage barrier). The driver's scoring keeps the variant
		// with the best excess/critical-path trade-off.
		if es := mkEdges(rel[:1]); len(es) > 0 {
			cands = append(cands, &Candidate{Kind: RegSequence, Edges: es,
				Note: fmt.Sprintf("delay %d chains after %s", k, g.Nodes[rel[0]].Name)})
		}
		if len(rel) > 1 {
			shallow := rel[len(rel)-1:]
			if es := mkEdges(shallow); len(es) > 0 {
				cands = append(cands, &Candidate{Kind: RegSequence, Edges: es,
					Note: fmt.Sprintf("delay %d chains after %s", k, g.Nodes[shallow[0]].Name)})
			}
			if es := mkEdges(rel); len(es) > 0 {
				cands = append(cands, &Candidate{Kind: RegSequence, Edges: es,
					Note: fmt.Sprintf("delay %d chains after all releases", k)})
			}
		}
	}

	maxK := x + 2
	if maxK > len(set.Chains)-1 {
		maxK = len(set.Chains) - 1
	}
	for k := 1; k <= maxK; k++ {
		build(k)
	}
	if len(cands) > 0 {
		return cands
	}
	// Fallback: the trimmed chain heads form an antichain of the register
	// reuse order. Serialize their lifetimes: each head's producer waits
	// for the previous head's kill, so their registers pass down the line.
	heads := make([]int, 0, len(set.Chains))
	for _, c := range set.Chains {
		heads = append(heads, c[0])
	}
	sort.Slice(heads, func(a, b int) bool {
		na, nb := res.R.Items[heads[a]].Node, res.R.Items[heads[b]].Node
		if depth[na] != depth[nb] {
			return depth[na] < depth[nb]
		}
		return na < nb
	})
	var serial [][2]int
	prev := -1
	for _, h := range heads {
		node := res.R.Items[h].Node
		kill := -1
		if res.R.Kill != nil {
			kill = res.R.Kill[h]
		}
		if prev >= 0 && node != g.Root && prev != node &&
			!g.HasPath(node, prev) {
			serial = append(serial, [2]int{prev, node})
		}
		if kill >= 0 && kill != g.Root {
			prev = kill
		}
	}
	if len(serial) > 0 {
		cands = append(cands, &Candidate{Kind: RegSequence, Edges: serial,
			Note: fmt.Sprintf("serialize %d head lifetimes", len(heads))})
	}
	// Last resort: merge two chains by sequencing one chain's release
	// before another chain's mid-chain producer.
	n := 0
	for i, ci := range set.Chains {
		for j, cj := range set.Chains {
			if i == j {
				continue
			}
			for x := len(ci) - 1; x >= 0 && n < 6; x-- {
				ai := ci[x]
				kill := -1
				if res.R.Kill != nil {
					kill = res.R.Kill[ai]
				}
				if kill < 0 || kill == g.Root {
					continue
				}
				for y := 0; y < len(cj); y++ {
					b := res.R.Items[cj[y]].Node
					if b == g.Root || b == kill || g.HasPath(b, kill) || g.HasPath(kill, b) {
						continue
					}
					cands = append(cands, &Candidate{
						Kind:  RegSequence,
						Edges: [][2]int{{kill, b}},
						Note: fmt.Sprintf("mid release %s->%s",
							g.Nodes[kill].Name, g.Nodes[b].Name),
					})
					n++
					break
				}
			}
			if n >= 6 {
				return cands
			}
		}
	}
	return cands
}

// CopySpillCandidates generates copy-spill candidates for clustered
// machines: every inter-cluster copy appearing in the excess set — as a
// transfer-bus instruction (XFER functional-unit items) or through the
// destination register it defines (register items whose producer is a copy)
// — can be rerouted through memory, trading the bus slot and the
// destination register's bus-to-kill lifetime for a spill store/load pair.
// The reduction loop prices both forms with the same measurements, so
// whichever resource binds decides copy versus spill.
func CopySpillCandidates(g *dag.Graph, res *measure.Result, set *measure.ExcessSet) []*Candidate {
	const maxCandidates = 8
	seen := make(map[int]bool)
	var cands []*Candidate
	for _, c := range set.Chains {
		for _, itIdx := range c {
			n := res.R.Items[itIdx].Node
			if n == g.Root || seen[n] {
				continue
			}
			in := g.Nodes[n].Instr
			if in == nil || !in.IsCopy() {
				continue
			}
			seen[n] = true
			cands = append(cands, &Candidate{
				Kind:      CopySpill,
				CopySpill: &CopySpillSpec{Copy: n},
				Note:      "copy-spill " + g.Func.NameOf(in.Dst),
			})
			if len(cands) >= maxCandidates {
				return cands
			}
		}
	}
	return cands
}

// SpillCandidates generates spill-insertion candidates (§4.3): for each
// excess chain, spill its head value right after definition and reload it
// once the other chains (SD1) have finished. Unlike sequencing, the relaxed
// conditions mean a spill can always be found (the paper's guarantee), so
// these candidates also serve as the fallback when sequencing fails.
func SpillCandidates(g *dag.Graph, res *measure.Result, set *measure.ExcessSet) []*Candidate {
	const maxCandidates = 16
	f := g.Func
	var cands []*Candidate
	for ci, c := range set.Chains {
		var sd1Chains []order.Chain
		var sd1 []int
		for cj, c2 := range set.Chains {
			if cj != ci {
				sd1Chains = append(sd1Chains, c2)
				sd1 = append(sd1, chainNodes(res, c2)...)
			}
		}
		if len(sd1) == 0 {
			continue
		}
		roots, _ := sd1Ends(g, sd1)
		// The reload waits for the nodes that free SD1's registers.
		barrier := releaseNodes(g, res, sd1Chains)
		if len(barrier) == 0 {
			continue
		}
		// Any value on the chain is a spill candidate; heads first.
		for _, itIdx := range c {
			it := res.R.Items[itIdx]
			if it.Reg == ir.NoReg || it.Node == g.Root || g.LiveOut[it.Reg] {
				continue
			}
			if len(g.UseNodes(it.Reg)) == 0 {
				continue
			}
			cands = append(cands, &Candidate{
				Kind: Spill,
				Spill: &SpillSpec{
					Reg:      it.Reg,
					Def:      it.Node,
					Barrier:  barrier,
					PreRoots: roots,
				},
				Note: "spill " + f.NameOf(it.Reg),
			})
			if len(cands) >= maxCandidates {
				return cands
			}
		}
	}
	return cands
}
