package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// key returns a deterministic valid cache key for test artifact i.
func key(i int) string { return fmt.Sprintf("k%02d-0123456789abcdef", i) }

func openStore(t *testing.T, budget int64) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, dir
}

func TestStoreRoundTrip(t *testing.T) {
	s, _ := openStore(t, 0)
	want := []byte("the artifact payload")
	if err := s.Put(key(1), want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("Get of an absent key hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
	if st.Bytes != int64(len(want)+hashSize) {
		t.Fatalf("bytes = %d; want %d", st.Bytes, len(want)+hashSize)
	}
}

func TestStoreReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []byte("survives restart")
	if err := s.Put(key(1), want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// A second Open over the same directory must index the artifact.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok := s2.Get(key(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after reopen Get = %q, %v; want %q, true", got, ok, want)
	}
}

// TestStoreTruncatedArtifact corrupts a stored artifact by truncation: the
// read must be a miss (never a wrong answer), the corruption counted, and
// the bad file removed so a later Put heals the entry.
func TestStoreTruncatedArtifact(t *testing.T) {
	s, _ := openStore(t, 0)
	payload := []byte("soon to be truncated payload bytes")
	if err := s.Put(key(1), payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := s.path(key(1))
	if err := os.Truncate(path, int64(hashSize+3)); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("Get returned a truncated artifact")
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d; want 1", st.Corruptions)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: stat err = %v", err)
	}
	// The entry heals on the next Put.
	if err := s.Put(key(1), payload); err != nil {
		t.Fatalf("healing Put: %v", err)
	}
	if got, ok := s.Get(key(1)); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after heal Get = %q, %v", got, ok)
	}
}

// TestStoreBitFlip flips one payload byte on disk; the embedded sha256
// must catch it.
func TestStoreBitFlip(t *testing.T) {
	s, _ := openStore(t, 0)
	if err := s.Put(key(1), []byte("bit-flip target")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := s.path(key(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	raw[hashSize] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write corrupted: %v", err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("Get returned a bit-flipped artifact")
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d; want 1", st.Corruptions)
	}
}

// TestStoreCrashSafety simulates a writer that died mid-Put: a stray file
// in tmp/ must be invisible to Get and removed by the next Open.
func TestStoreCrashSafety(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(key(1), []byte("intact")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	stray := filepath.Join(dir, "tmp", "put-12345")
	if err := os.WriteFile(stray, []byte("half an artifact"), 0o644); err != nil {
		t.Fatalf("plant stray: %v", err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived reopen: stat err = %v", err)
	}
	if got, ok := s2.Get(key(1)); !ok || string(got) != "intact" {
		t.Fatalf("intact artifact lost across crash recovery: %q, %v", got, ok)
	}
}

// TestStoreEviction fills the store past its budget and checks that bytes
// stay bounded, LRU order decides the victims, and files actually leave
// the disk.
func TestStoreEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 100)
	per := int64(len(payload) + hashSize)
	s, _ := openStore(t, 3*per)
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), payload); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("warm Get missed")
	}
	if err := s.Put(key(3), payload); err != nil {
		t.Fatalf("overflow Put: %v", err)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d; want 1", st.Evictions)
	}
	if st.Bytes > 3*per {
		t.Fatalf("bytes = %d exceeds budget %d", st.Bytes, 3*per)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("LRU victim still present")
	}
	for _, k := range []string{key(0), key(2), key(3)} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently used key %s evicted", k)
		}
	}
	if _, err := os.Stat(s.path(key(1))); !os.IsNotExist(err) {
		t.Fatalf("evicted artifact file survived: stat err = %v", err)
	}
}

// TestStoreOversizedArtifact: an artifact larger than the whole budget is
// refused without error and without evicting everything else.
func TestStoreOversizedArtifact(t *testing.T) {
	s, _ := openStore(t, 256)
	if err := s.Put(key(1), []byte("small")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(key(2), bytes.Repeat([]byte("y"), 1024)); err != nil {
		t.Fatalf("oversized Put errored: %v", err)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("oversized artifact was stored")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("small artifact evicted by a refused oversized Put")
	}
}

func TestStoreKeyValidation(t *testing.T) {
	s, _ := openStore(t, 0)
	for _, bad := range []string{"", "a", "../../etc/passwd", "a/b", "a.b", "k\x00k", string(bytes.Repeat([]byte("k"), 129))} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) hit on an invalid key", bad)
		}
	}
	if err := s.Put("Valid-Key_42", []byte("x")); err != nil {
		t.Errorf("Put of a valid key refused: %v", err)
	}
}

// TestStoreSingleFlight: concurrent GetOrCompute calls for one key run the
// compute function exactly once.
func TestStoreSingleFlight(t *testing.T) {
	s, _ := openStore(t, 0)
	var computes atomic.Int64
	gate := make(chan struct{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			data, err := s.GetOrCompute(key(1), func() ([]byte, error) {
				computes.Add(1)
				return []byte("computed once"), nil
			})
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
			results[i] = data
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times; want 1", n)
	}
	for i, r := range results {
		if string(r) != "computed once" {
			t.Fatalf("worker %d got %q", i, r)
		}
	}
}

// TestStoreComputeErrorNotCached: a failed compute reaches the caller and
// leaves nothing behind, so the next call retries.
func TestStoreComputeErrorNotCached(t *testing.T) {
	s, _ := openStore(t, 0)
	boom := fmt.Errorf("compute failed")
	if _, err := s.GetOrCompute(key(1), func() ([]byte, error) { return nil, boom }); err == nil {
		t.Fatal("compute error swallowed")
	}
	data, err := s.GetOrCompute(key(1), func() ([]byte, error) { return []byte("retry"), nil })
	if err != nil || string(data) != "retry" {
		t.Fatalf("retry = %q, %v", data, err)
	}
}

func TestFrameUnframe(t *testing.T) {
	payload := []byte("frame me")
	framed := Frame(payload)
	got, ok := Unframe(framed)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Unframe(Frame(p)) = %q, %v", got, ok)
	}
	framed[len(framed)-1] ^= 1
	if _, ok := Unframe(framed); ok {
		t.Fatal("Unframe accepted a corrupted frame")
	}
	if _, ok := Unframe([]byte("short")); ok {
		t.Fatal("Unframe accepted a short frame")
	}
}

func TestNilStoreIsMissOnly(t *testing.T) {
	var s *Store
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put(key(1), []byte("x")); err != nil {
		t.Fatalf("nil store Put errored: %v", err)
	}
	if s.Len() != 0 || s.Stats().Entries != 0 {
		t.Fatal("nil store has entries")
	}
}
