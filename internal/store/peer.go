package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultPeerTimeout bounds one peer round-trip. Short by design: a slow
// peer must cost less than the compile it would have saved, so past the
// deadline the caller computes locally.
const DefaultPeerTimeout = 2 * time.Second

// maxPeerBody caps how much a peer response is allowed to carry.
const maxPeerBody = 64 << 20

// PeerStats is a snapshot of a peer client's activity.
type PeerStats struct {
	Base   string `json:"base"`
	Gets   uint64 `json:"gets"`
	Hits   uint64 `json:"hits"`
	Puts   uint64 `json:"puts"`
	Errors uint64 `json:"errors"`
}

// PeerClient speaks ursad's GET/PUT /v1/cache/{key} protocol against one
// peer daemon. Every failure — refused connection, timeout, non-2xx,
// oversized body — is a miss plus a counter; the client never returns an
// error to the compile path.
type PeerClient struct {
	base string
	hc   *http.Client

	gets   atomic.Uint64
	hits   atomic.Uint64
	puts   atomic.Uint64
	errors atomic.Uint64
}

// NewPeer returns a client for the peer daemon at base (e.g.
// "http://ursad-2:8347"). timeout <= 0 means DefaultPeerTimeout.
func NewPeer(base string, timeout time.Duration) (*PeerClient, error) {
	base = strings.TrimRight(base, "/")
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("store: peer URL %q: need scheme://host", base)
	}
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &PeerClient{base: base, hc: &http.Client{Timeout: timeout}}, nil
}

func (p *PeerClient) url(key string) string { return p.base + "/v1/cache/" + key }

// Get fetches the artifact under key from the peer with the client's
// configured timeout as the only deadline.
func (p *PeerClient) Get(key string) ([]byte, bool) {
	return p.GetCtx(context.Background(), key)
}

// GetCtx fetches the artifact under key from the peer. The raw bytes
// travel with their integrity hash (the store's file format), so a
// corrupted or truncated transfer is detected here and counted as an
// error, never handed to the pipeline. The request runs under ctx in
// addition to the client timeout, so a caller racing the peer against
// another source (the router's hedged fallback) can cancel the losing
// leg instead of letting it run to the deadline.
func (p *PeerClient) GetCtx(ctx context.Context, key string) ([]byte, bool) {
	if p == nil || !validKey(key) {
		return nil, false
	}
	p.gets.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url(key), nil)
	if err != nil {
		p.errors.Add(1)
		return nil, false
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		p.errors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false
	case resp.StatusCode != http.StatusOK:
		p.errors.Add(1)
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil || len(raw) > maxPeerBody {
		p.errors.Add(1)
		return nil, false
	}
	payload, ok := Unframe(raw)
	if !ok {
		p.errors.Add(1)
		return nil, false
	}
	p.hits.Add(1)
	return payload, true
}

// Put pushes the artifact to the peer, best-effort: failures are counted
// and otherwise ignored. The payload is framed with its sha256 (the same
// format Get expects), so the receiving daemon can verify before storing.
func (p *PeerClient) Put(key string, data []byte) {
	p.PutCtx(context.Background(), key, data)
}

// PutCtx is Put under a caller context (plus the client timeout).
func (p *PeerClient) PutCtx(ctx context.Context, key string, data []byte) {
	if p == nil || !validKey(key) {
		return
	}
	p.puts.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.url(key), bytes.NewReader(Frame(data)))
	if err != nil {
		p.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.hc.Do(req)
	if err != nil {
		p.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.errors.Add(1)
	}
}

// Stats returns a snapshot of the client's counters.
func (p *PeerClient) Stats() PeerStats {
	if p == nil {
		return PeerStats{}
	}
	return PeerStats{
		Base:   p.base,
		Gets:   p.gets.Load(),
		Hits:   p.hits.Load(),
		Puts:   p.puts.Load(),
		Errors: p.errors.Load(),
	}
}
