package store

import "sync"

// Flight coalesces concurrent work for equal keys: the first caller of Do
// for a key becomes the leader and runs fn; callers arriving while the
// leader is in flight wait and share the leader's result. It is the
// store's single-flight primitive, shared by the disk store, the tiered
// cache, and the cluster router (which coalesces concurrent identical
// compile requests into one upstream call). The zero value is ready to
// use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done chan struct{}
	data []byte
	err  error
}

// Do runs fn for key unless a call for key is already in flight, in which
// case it waits for that call's result. The third return reports whether
// this caller was the leader (i.e. fn actually ran here). Coalesced
// callers must treat the returned bytes as immutable: every waiter shares
// one slice.
func (g *Flight) Do(key string, fn func() ([]byte, error)) (data []byte, err error, leader bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.data, c.err, false
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.data, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.data, c.err, true
}
