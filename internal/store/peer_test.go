package store

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// slowPeer serves /v1/cache GETs only after its delay — or never, if the
// client's context dies first.
func slowPeer(t *testing.T, delay time.Duration, payload []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		w.Write(Frame(payload))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestPeerGetCtxCancel pins the property the router's hedging depends
// on: cancelling the caller's context aborts an in-flight peer fetch
// immediately instead of waiting out the client timeout.
func TestPeerGetCtxCancel(t *testing.T) {
	ts := slowPeer(t, 10*time.Second, []byte("payload"))
	p, err := NewPeer(ts.URL, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, ok := p.GetCtx(ctx, "somekey"); ok {
		t.Fatal("cancelled fetch reported a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled fetch took %v, want immediate abort", elapsed)
	}
}

// TestPeerConfigurableTimeout pins the satellite fix: the round-trip
// deadline is the NewPeer argument, not a hardcoded 2s.
func TestPeerConfigurableTimeout(t *testing.T) {
	ts := slowPeer(t, 10*time.Second, []byte("payload"))
	p, err := NewPeer(ts.URL, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := p.Get("somekey"); ok {
		t.Fatal("timed-out fetch reported a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fetch with 50ms timeout took %v", elapsed)
	}

	// The slow path still succeeds when the timeout accommodates it.
	fast := slowPeer(t, 0, []byte("payload"))
	p, err = NewPeer(fast.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := p.Get("somekey")
	if !ok || string(data) != "payload" {
		t.Fatalf("Get = %q, %v", data, ok)
	}
}
