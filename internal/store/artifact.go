package store

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion is the compile-artifact schema generation. It is mixed
// into every cache key, so bumping it invalidates all previously stored
// artifacts at once — the cache's only invalidation mechanism. Bump it
// whenever the emitted listing format, the statistics, or anything else
// an artifact captures could change for equal inputs (e.g. an allocator
// tie-break change), so stale artifacts become unreachable rather than
// wrong.
//
// Version 2: the opcode space grew an inter-cluster copy (ir.Copy), so the
// latency table hashed into every key changed length, and machine hashing
// gained the clustered/buffered/issue-width target fields.
const SchemaVersion = 2

// Artifact is one cached compile result: the per-block listings exactly
// as the pipeline emitted them, plus the static statistics — everything
// a compile-only request needs, so a warm hit answers without running
// the allocator.
type Artifact struct {
	Schema  int             `json:"schema"`
	Method  string          `json:"method"`
	Machine string          `json:"machine"`
	Blocks  []ArtifactBlock `json:"blocks"`
	Stats   ArtifactStats   `json:"stats"`
}

// ArtifactBlock is one basic block's emitted VLIW listing, byte-identical
// to assign.Program.String() at compile time.
type ArtifactBlock struct {
	Label   string `json:"label"`
	Listing string `json:"listing"`
}

// ArtifactStats mirrors the static fields of pipeline.Stats (the dynamic
// ones require execution, which a cached artifact cannot answer).
type ArtifactStats struct {
	Words          int  `json:"words"`
	SpillOps       int  `json:"spill_ops"`
	IntRegs        int  `json:"int_regs"`
	FPRegs         int  `json:"fp_regs"`
	CritPath       int  `json:"crit_path"`
	URSATransforms int  `json:"ursa_transforms"`
	URSAFits       bool `json:"ursa_fits"`
}

// Encode serializes the artifact, stamping the current schema version.
func (a *Artifact) Encode() ([]byte, error) {
	a.Schema = SchemaVersion
	return json.Marshal(a)
}

// DecodeArtifact parses a stored artifact. A malformed payload or a
// schema mismatch returns an error; callers treat either as a cache miss
// (the store's integrity hash already rules out bit rot, so a decode
// failure means a schema change or a foreign writer).
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("store: artifact: %w", err)
	}
	if a.Schema != SchemaVersion {
		return nil, fmt.Errorf("store: artifact schema %d, want %d", a.Schema, SchemaVersion)
	}
	return &a, nil
}
