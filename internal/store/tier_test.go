package store

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTieredFillDown(t *testing.T) {
	disk, _ := openStore(t, 0)
	tc := NewTiered(0, disk, nil)
	payload := []byte("fills down")
	tc.Put(key(1), payload)

	// A fresh tiered cache over the same store models a process restart:
	// memory is cold, so the first Get must come from disk and refill
	// memory; the second must come from memory.
	tc2 := NewTiered(0, disk, nil)
	data, tier, ok := tc2.Get(key(1))
	if !ok || tier != TierDisk || !bytes.Equal(data, payload) {
		t.Fatalf("cold Get = tier %v, ok %v", tier, ok)
	}
	data, tier, ok = tc2.Get(key(1))
	if !ok || tier != TierMem || !bytes.Equal(data, payload) {
		t.Fatalf("warm Get = tier %v, ok %v; want memory", tier, ok)
	}
}

func TestTieredGetOrComputeTiers(t *testing.T) {
	disk, _ := openStore(t, 0)
	tc := NewTiered(0, disk, nil)
	var computes atomic.Int64
	compute := func() ([]byte, error) {
		computes.Add(1)
		return []byte("expensive"), nil
	}
	data, tier, err := tc.GetOrCompute(key(1), compute)
	if err != nil || tier != TierNone || string(data) != "expensive" {
		t.Fatalf("first call = %q, tier %v, err %v", data, tier, err)
	}
	if _, tier, _ = tc.GetOrCompute(key(1), compute); tier != TierMem {
		t.Fatalf("second call served by %v; want memory", tier)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times; want 1", n)
	}
	st := tc.Stats()
	if st.Computes != 1 {
		t.Fatalf("computes stat = %d; want 1", st.Computes)
	}
}

func TestTieredCoalescing(t *testing.T) {
	tc := NewTiered(0, nil, nil)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = tc.GetOrCompute(key(1), func() ([]byte, error) {
			close(started)
			<-release
			computes.Add(1)
			return []byte("shared"), nil
		})
	}()
	<-started
	const followers = 4
	results := make([]Tier, followers)
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, tier, _ := tc.GetOrCompute(key(1), func() ([]byte, error) {
				computes.Add(1)
				return []byte("shared"), nil
			})
			results[i] = tier
		}()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times under coalescing; want 1", n)
	}
	coalesced := 0
	for _, tier := range results {
		// A follower either coalesced onto the leader's flight or arrived
		// after the leader stored, hitting memory. Both mean no recompute.
		switch tier {
		case TierFlight:
			coalesced++
		case TierMem:
		default:
			t.Fatalf("follower served by %v", tier)
		}
	}
	if st := tc.Stats(); st.Coalesced != uint64(coalesced) {
		t.Fatalf("coalesced stat = %d; want %d", st.Coalesced, coalesced)
	}
}

// peerServer is a minimal in-test implementation of the /v1/cache wire
// protocol backed by a map — what a warm remote ursad looks like.
func peerServer(t *testing.T, artifacts map[string][]byte) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		mu.Lock()
		defer mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			data, ok := artifacts[k]
			if !ok {
				http.Error(w, "miss", http.StatusNotFound)
				return
			}
			w.Write(Frame(data))
		case http.MethodPut:
			raw := new(bytes.Buffer)
			raw.ReadFrom(r.Body)
			payload, ok := Unframe(raw.Bytes())
			if !ok {
				http.Error(w, "bad frame", http.StatusBadRequest)
				return
			}
			artifacts[k] = payload
			w.WriteHeader(http.StatusNoContent)
		}
	}))
}

func TestTieredPeerHitRefillsLocalTiers(t *testing.T) {
	remote := map[string][]byte{key(1): []byte("from the peer")}
	srv := peerServer(t, remote)
	defer srv.Close()
	peer, err := NewPeer(srv.URL, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	disk, _ := openStore(t, 0)
	tc := NewTiered(0, disk, peer)

	data, tier, ok := tc.Get(key(1))
	if !ok || tier != TierPeer || string(data) != "from the peer" {
		t.Fatalf("peer Get = %q, tier %v, ok %v", data, tier, ok)
	}
	// The hit must have refilled disk and memory: cut the peer off and the
	// artifact is still served locally.
	srv.Close()
	if _, tier, ok := tc.Get(key(1)); !ok || tier != TierMem {
		t.Fatalf("after refill Get = tier %v, ok %v; want memory hit", tier, ok)
	}
	if got, ok := disk.Get(key(1)); !ok || string(got) != "from the peer" {
		t.Fatalf("disk tier not refilled: %q, %v", got, ok)
	}
	ps := peer.Stats()
	if ps.Gets != 1 || ps.Hits != 1 {
		t.Fatalf("peer stats = %+v; want 1 get, 1 hit", ps)
	}
}

func TestTieredPutPushesToPeer(t *testing.T) {
	remote := map[string][]byte{}
	srv := peerServer(t, remote)
	defer srv.Close()
	peer, err := NewPeer(srv.URL, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	tc := NewTiered(0, nil, peer)
	tc.Put(key(1), []byte("pushed"))
	if got := remote[key(1)]; string(got) != "pushed" {
		t.Fatalf("peer received %q; want %q", got, "pushed")
	}
	if ps := peer.Stats(); ps.Puts != 1 || ps.Errors != 0 {
		t.Fatalf("peer stats = %+v", ps)
	}
}

// TestTieredPeerDown: an unreachable peer degrades to a miss and a local
// compute — never an error on the compile path.
func TestTieredPeerDown(t *testing.T) {
	srv := peerServer(t, map[string][]byte{})
	base := srv.URL
	srv.Close()
	peer, err := NewPeer(base, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	tc := NewTiered(0, nil, peer)
	data, tier, err := tc.GetOrCompute(key(1), func() ([]byte, error) {
		return []byte("local fallback"), nil
	})
	if err != nil || tier != TierNone || string(data) != "local fallback" {
		t.Fatalf("with peer down = %q, tier %v, err %v", data, tier, err)
	}
	if ps := peer.Stats(); ps.Errors == 0 {
		t.Fatal("peer failure not counted")
	}
}

// TestPeerRejectsCorruptTransfer: a peer serving bytes that fail the
// integrity check is an error + miss, and the bad bytes never surface.
func TestPeerRejectsCorruptTransfer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		frame := Frame([]byte("tampered"))
		frame[len(frame)-1] ^= 1
		w.Write(frame)
	}))
	defer srv.Close()
	peer, err := NewPeer(srv.URL, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	if _, ok := peer.Get(key(1)); ok {
		t.Fatal("corrupt peer transfer accepted")
	}
	if ps := peer.Stats(); ps.Errors != 1 || ps.Hits != 0 {
		t.Fatalf("peer stats = %+v; want 1 error, 0 hits", ps)
	}
}

func TestNewPeerRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "not-a-url", "host:8347", "/just/a/path"} {
		if _, err := NewPeer(bad, 0); err == nil {
			t.Errorf("NewPeer(%q) accepted", bad)
		}
	}
	if _, err := NewPeer("http://ursad-2:8347/", 0); err != nil {
		t.Errorf("NewPeer rejected a valid URL: %v", err)
	}
}

func TestMemCacheEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("m"), 64)
	tc := NewTiered(int64(3*len(payload)), nil, nil)
	for i := 0; i < 3; i++ {
		tc.Put(key(i), payload)
	}
	tc.Get(key(0)) // protect 0; 1 becomes LRU
	tc.Put(key(3), payload)
	if _, _, ok := tc.Get(key(1)); ok {
		t.Fatal("memory LRU victim survived")
	}
	st := tc.Stats().Mem
	if st.Evictions != 1 || st.Bytes > int64(3*len(payload)) {
		t.Fatalf("mem stats = %+v", st)
	}
}

func TestArtifactSchemaInvalidation(t *testing.T) {
	a := &Artifact{Method: "ursa", Machine: "vliw4x8",
		Blocks: []ArtifactBlock{{Label: "entry", Listing: "w0: nop\n"}}}
	data, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatalf("DecodeArtifact: %v", err)
	}
	if got.Schema != SchemaVersion || got.Blocks[0].Listing != a.Blocks[0].Listing {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// An artifact written by a different schema version must be refused.
	stale := bytes.Replace(data, []byte(fmt.Sprintf(`"schema":%d`, SchemaVersion)), []byte(`"schema":999`), 1)
	if bytes.Equal(stale, data) {
		t.Fatal("test assumption broken: schema field not found in encoding")
	}
	if _, err := DecodeArtifact(stale); err == nil {
		t.Fatal("stale-schema artifact accepted")
	}
	if _, err := DecodeArtifact([]byte("not json")); err == nil {
		t.Fatal("garbage artifact accepted")
	}
}
