// Package store is the tiered artifact cache underneath ursad and ursac:
// a disk-backed, content-addressed store of compile artifacts plus the
// memory and peer tiers layered over it.
//
// The allocator's measurement/reduction loop is the expensive part of
// every compile, and before this package existed all of that work
// evaporated on process exit: the measurement cache is in-memory only,
// and each daemon recomputes what its neighbor just finished. The store
// makes compile results durable and shareable:
//
//   - Store is the disk tier: one file per key, written atomically
//     (temp file + rename into place, so a crash never leaves a partial
//     artifact visible), verified against an embedded sha256 on every
//     read (corruption is a miss and a counter, never a crash or a wrong
//     answer), and evicted least-recently-used under a byte budget.
//   - TieredCache chains memory → disk → peer lookups, refilling the
//     faster tiers on a slower hit, with single-flight coalescing so
//     concurrent misses for one key compute once.
//   - PeerClient speaks the GET/PUT /v1/cache/{key} protocol served by
//     ursad, with short timeouts and graceful degradation: a peer that
//     is down or slow means a local compute, never a failed compile.
//
// Every failure mode degrades toward "compute it locally": disk full,
// unreadable directory, corrupt artifact, unreachable peer — the cache
// returns a miss and the pipeline runs as if no cache existed.
package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// hashSize is the length of the integrity header preceding every payload.
const hashSize = sha256.Size

// DefaultDiskBudget bounds a Store's bytes when Open is given no budget.
const DefaultDiskBudget = 1 << 30 // 1 GiB

// StoreStats is a snapshot of a Store's activity and contents.
type StoreStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Evictions   uint64 `json:"evictions"`
	Corruptions uint64 `json:"corruptions"`
	WriteErrors uint64 `json:"write_errors"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
}

// Store is the disk tier: a content-addressed artifact store rooted at a
// directory. It is safe for concurrent use and for sharing a directory
// across restarts (but not across live processes — run one Store per
// directory).
type Store struct {
	dir    string
	budget int64

	mu      sync.Mutex
	index   map[string]*diskEntry
	lruHead *diskEntry // most recently used
	lruTail *diskEntry // least recently used
	bytes   int64
	stats   StoreStats

	flight Flight
}

// diskEntry is one artifact's index record, threaded on the LRU list.
type diskEntry struct {
	key        string
	size       int64 // file size (header + payload)
	prev, next *diskEntry
}

// Open opens (creating if needed) a store rooted at dir with the given
// byte budget (<= 0 means DefaultDiskBudget). Stray temporary files from
// a crashed writer are removed; existing artifacts are indexed with their
// modification time as the initial recency order.
func Open(dir string, budget int64) (*Store, error) {
	if budget <= 0 {
		budget = DefaultDiskBudget
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(dir, "tmp")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A temp file is invisible to Get by construction; any that survive
	// here belonged to a writer that died before its rename.
	if names, err := os.ReadDir(tmp); err == nil {
		for _, n := range names {
			_ = os.Remove(filepath.Join(tmp, n.Name()))
		}
	}
	s := &Store{dir: dir, budget: budget, index: make(map[string]*diskEntry)}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load scans the objects directory into the index, oldest first so the
// LRU order across a restart approximates the pre-restart access order.
func (s *Store) load() error {
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var all []found
	shards, err := os.ReadDir(filepath.Join(s.dir, "objects"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, "objects", sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil || !info.Mode().IsRegular() {
				continue
			}
			if !validKey(f.Name()) {
				continue
			}
			all = append(all, found{key: f.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	for _, f := range all {
		e := &diskEntry{key: f.key, size: f.size}
		s.index[f.key] = e
		s.pushFront(e)
		s.bytes += f.size
	}
	s.evictLocked()
	return nil
}

// validKey reports whether key is safe to use as a file name: hex-ish
// characters only, bounded length, no path separators or dots.
func validKey(key string) bool {
	if len(key) < 2 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// ErrBadKey reports a key the store refuses to map to a file name.
var ErrBadKey = fmt.Errorf("store: invalid cache key")

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key)
}

// ---------------------------------------------------------------- LRU list

func (s *Store) pushFront(e *diskEntry) {
	e.prev = nil
	e.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

func (s *Store) unlink(e *diskEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) touch(e *diskEntry) {
	if s.lruHead == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// evictLocked removes least-recently-used artifacts until the store fits
// its byte budget. Called with s.mu held.
func (s *Store) evictLocked() {
	for s.bytes > s.budget && s.lruTail != nil {
		e := s.lruTail
		s.unlink(e)
		delete(s.index, e.key)
		s.bytes -= e.size
		s.stats.Evictions++
		_ = os.Remove(s.path(e.key))
	}
}

// dropLocked removes one entry from the index (corruption or external
// deletion). Called with s.mu held.
func (s *Store) dropLocked(key string) {
	if e, ok := s.index[key]; ok {
		s.unlink(e)
		delete(s.index, key)
		s.bytes -= e.size
	}
}

// ------------------------------------------------------------------ Get

// Get returns the artifact stored under key. Any integrity failure —
// missing file, short file, sha256 mismatch — is a miss; a corrupt file
// is additionally removed and counted, so the next Put can heal it.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil || !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.touch(e)
	s.mu.Unlock()

	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		// Evicted or externally deleted between lookup and read.
		s.mu.Lock()
		s.dropLocked(key)
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, ok := Unframe(raw)
	if !ok {
		_ = os.Remove(s.path(key))
		s.mu.Lock()
		s.dropLocked(key)
		s.stats.Corruptions++
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

// Unframe splits a stored or wire-transferred artifact into its integrity
// header and payload, returning the payload only when the sha256 matches.
func Unframe(raw []byte) ([]byte, bool) {
	if len(raw) < hashSize {
		return nil, false
	}
	sum := sha256.Sum256(raw[hashSize:])
	if !bytes.Equal(sum[:], raw[:hashSize]) {
		return nil, false
	}
	return raw[hashSize:], true
}

// Frame prefixes data with its sha256 — the store's on-disk format and
// the peer protocol's wire format.
func Frame(data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, hashSize+len(data))
	out = append(out, sum[:]...)
	return append(out, data...)
}

// GetFramed returns the verified artifact under key in framed form
// (integrity hash + payload) — what the peer protocol serves on the wire.
func (s *Store) GetFramed(key string) ([]byte, bool) {
	payload, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	return Frame(payload), true
}

// ------------------------------------------------------------------ Put

// Put stores data under key, atomically: the bytes land in a temp file
// that is renamed into place, so a reader (or a crash) never observes a
// partial artifact. An artifact larger than the whole budget is not
// stored. Write failures (disk full, permissions) are counted and
// returned; callers treat them as "cache unavailable", not compile
// failures.
func (s *Store) Put(key string, data []byte) error {
	if s == nil {
		return nil
	}
	if !validKey(key) {
		return ErrBadKey
	}
	size := int64(len(data) + hashSize)
	if size > s.budget {
		return nil
	}
	if err := s.write(key, data); err != nil {
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		s.bytes += size - e.size
		e.size = size
		s.touch(e)
	} else {
		e := &diskEntry{key: key, size: size}
		s.index[key] = e
		s.pushFront(e)
		s.bytes += size
	}
	s.stats.Puts++
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

func (s *Store) write(key string, data []byte) error {
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := f.Name()
	sum := sha256.Sum256(data)
	_, werr := f.Write(sum[:])
	if werr == nil {
		_, werr = f.Write(data)
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		if err := os.MkdirAll(filepath.Dir(s.path(key)), 0o755); err != nil {
			werr = err
		}
	}
	if werr == nil {
		werr = os.Rename(tmpName, s.path(key))
	}
	if werr != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: %w", werr)
	}
	return nil
}

// GetOrCompute returns the artifact under key, computing and storing it
// on a miss. Concurrent calls for the same key coalesce: one caller runs
// compute, the rest wait and share its result. A compute error is
// returned to every waiter and nothing is stored.
func (s *Store) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, error) {
	if data, ok := s.Get(key); ok {
		return data, nil
	}
	data, err, _ := s.flight.Do(key, func() ([]byte, error) {
		// Re-check: a previous leader may have stored the artifact
		// between our miss and acquiring the flight slot.
		if data, ok := s.Get(key); ok {
			return data, nil
		}
		data, err := compute()
		if err != nil {
			return nil, err
		}
		_ = s.Put(key, data)
		return data, nil
	})
	return data, err
}

// Stats returns a snapshot of the store's counters and contents.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	return st
}

// Len returns the number of stored artifacts.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
