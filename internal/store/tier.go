package store

import (
	"context"
	"sync"
)

// Tier identifies which cache layer served (or failed to serve) a lookup.
type Tier uint8

// Tiers, fastest first. TierNone means the result was computed locally;
// TierFlight means the caller coalesced onto a concurrent identical
// computation and shared its result.
const (
	TierNone Tier = iota
	TierMem
	TierDisk
	TierPeer
	TierFlight
)

// String returns the tier name as it appears in responses and metrics.
func (t Tier) String() string {
	switch t {
	case TierMem:
		return "memory"
	case TierDisk:
		return "disk"
	case TierPeer:
		return "peer"
	case TierFlight:
		return "coalesced"
	}
	return "none"
}

// DefaultMemBudget bounds the memory tier when NewTiered is given none.
const DefaultMemBudget = 64 << 20 // 64 MiB

// MemStats is a snapshot of the memory tier.
type MemStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// TierStats snapshots every tier of a TieredCache. Disk and Peer are nil
// when the corresponding tier is not configured.
type TierStats struct {
	Mem       MemStats    `json:"memory"`
	Disk      *StoreStats `json:"disk,omitempty"`
	Peer      *PeerStats  `json:"peer,omitempty"`
	Computes  uint64      `json:"computes"`
	Coalesced uint64      `json:"coalesced"`
}

// TieredCache chains the cache tiers: an in-process byte-budget LRU, an
// optional disk Store, an optional PeerClient. Lookups try tiers fastest
// first and refill the faster tiers on a slower hit, so a fleet warms
// front to back; stores write through every configured tier. All methods
// are safe for concurrent use, and every tier failure degrades to a miss.
type TieredCache struct {
	mem  *memCache
	disk *Store
	peer *PeerClient

	mu        sync.Mutex
	computes  uint64
	coalesced uint64

	flight Flight
}

// NewTiered assembles a cache from its tiers. memBudget <= 0 means
// DefaultMemBudget; disk and peer may be nil.
func NewTiered(memBudget int64, disk *Store, peer *PeerClient) *TieredCache {
	if memBudget <= 0 {
		memBudget = DefaultMemBudget
	}
	return &TieredCache{mem: newMemCache(memBudget), disk: disk, peer: peer}
}

// Disk returns the disk tier, or nil.
func (t *TieredCache) Disk() *Store { return t.disk }

// Get looks the key up tier by tier, reporting which tier answered. A
// disk hit refills memory; a peer hit refills disk and memory.
func (t *TieredCache) Get(key string) ([]byte, Tier, bool) {
	return t.GetCtx(context.Background(), key)
}

// GetCtx is Get under a caller context: the peer round-trip (the only
// tier that leaves the process) is cancelled when ctx is, so a cancelled
// compile request stops waiting on a slow peer instead of burning the
// full peer timeout.
func (t *TieredCache) GetCtx(ctx context.Context, key string) ([]byte, Tier, bool) {
	if t == nil {
		return nil, TierNone, false
	}
	if data, ok := t.mem.get(key); ok {
		return data, TierMem, true
	}
	if data, ok := t.disk.Get(key); ok {
		t.mem.put(key, data)
		return data, TierDisk, true
	}
	if data, ok := t.peer.GetCtx(ctx, key); ok {
		_ = t.disk.Put(key, data)
		t.mem.put(key, data)
		return data, TierPeer, true
	}
	return nil, TierNone, false
}

// LocalGet is Get without the peer tier — what the /v1/cache handler
// serves, so peers never chain lookups through each other.
func (t *TieredCache) LocalGet(key string) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	if data, ok := t.mem.get(key); ok {
		return data, true
	}
	if data, ok := t.disk.Get(key); ok {
		t.mem.put(key, data)
		return data, true
	}
	return nil, false
}

// Put writes the artifact through every configured tier. Disk write
// errors are absorbed (the store counts them); the peer push is
// best-effort with the client's short timeout.
func (t *TieredCache) Put(key string, data []byte) {
	if t == nil {
		return
	}
	t.mem.put(key, data)
	_ = t.disk.Put(key, data)
	t.peer.Put(key, data)
}

// LocalPut writes the artifact to the memory and disk tiers only — what
// the /v1/cache handler stores on a peer's push, avoiding push loops.
func (t *TieredCache) LocalPut(key string, data []byte) {
	if t == nil {
		return
	}
	t.mem.put(key, data)
	_ = t.disk.Put(key, data)
}

// GetOrCompute returns the artifact under key, trying every tier before
// computing. Concurrent misses on one key coalesce: one caller computes,
// stores through the tiers, and the rest share the result (reported as
// TierFlight). A compute error reaches every coalesced caller and is
// never cached.
func (t *TieredCache) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, Tier, error) {
	return t.GetOrComputeCtx(context.Background(), key, compute)
}

// GetOrComputeCtx is GetOrCompute with the lookup's peer leg under ctx.
// The write-through after a compute intentionally stays on the background
// context: once the result exists it should reach every tier even if the
// requesting client has gone away.
func (t *TieredCache) GetOrComputeCtx(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Tier, error) {
	if t == nil {
		data, err := compute()
		return data, TierNone, err
	}
	if data, tier, ok := t.GetCtx(ctx, key); ok {
		return data, tier, nil
	}
	var servedBy Tier = TierNone
	data, err, leader := t.flight.Do(key, func() ([]byte, error) {
		// Re-check the fast tier: a previous leader may have landed the
		// artifact between our miss and acquiring the flight slot.
		if data, ok := t.mem.get(key); ok {
			servedBy = TierMem
			return data, nil
		}
		data, err := compute()
		if err != nil {
			return nil, err
		}
		t.Put(key, data)
		return data, nil
	})
	if err != nil {
		return nil, TierNone, err
	}
	switch {
	case !leader:
		servedBy = TierFlight
		t.mu.Lock()
		t.coalesced++
		t.mu.Unlock()
	case servedBy == TierNone:
		t.mu.Lock()
		t.computes++
		t.mu.Unlock()
	}
	return data, servedBy, nil
}

// Stats snapshots every tier.
func (t *TieredCache) Stats() TierStats {
	if t == nil {
		return TierStats{}
	}
	st := TierStats{Mem: t.mem.stats()}
	if t.disk != nil {
		ds := t.disk.Stats()
		st.Disk = &ds
	}
	if t.peer != nil {
		ps := t.peer.Stats()
		st.Peer = &ps
	}
	t.mu.Lock()
	st.Computes = t.computes
	st.Coalesced = t.coalesced
	t.mu.Unlock()
	return st
}

// ------------------------------------------------------------ memory tier

// memCache is the in-process tier: a byte-budget LRU over immutable
// artifact payloads. Callers must not mutate returned slices.
type memCache struct {
	budget int64

	mu         sync.Mutex
	entries    map[string]*memEntry
	head, tail *memEntry
	bytes      int64
	hits       uint64
	misses     uint64
	evictions  uint64
}

type memEntry struct {
	key        string
	data       []byte
	prev, next *memEntry
}

func newMemCache(budget int64) *memCache {
	return &memCache{budget: budget, entries: make(map[string]*memEntry)}
}

func (m *memCache) get(key string) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.moveFront(e)
	return e.data, true
}

func (m *memCache) put(key string, data []byte) {
	if m == nil || int64(len(data)) > m.budget {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok {
		m.bytes += int64(len(data) - len(e.data))
		e.data = data
		m.moveFront(e)
	} else {
		e := &memEntry{key: key, data: data}
		m.entries[key] = e
		m.pushFront(e)
		m.bytes += int64(len(data))
	}
	for m.bytes > m.budget && m.tail != nil {
		ev := m.tail
		m.unlink(ev)
		delete(m.entries, ev.key)
		m.bytes -= int64(len(ev.data))
		m.evictions++
	}
}

func (m *memCache) pushFront(e *memEntry) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

func (m *memCache) unlink(e *memEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *memCache) moveFront(e *memEntry) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

func (m *memCache) stats() MemStats {
	if m == nil {
		return MemStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemStats{
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
		Entries:   len(m.entries),
		Bytes:     m.bytes,
	}
}
