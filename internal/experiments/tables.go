package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/pipeline"
	"ursa/internal/reuse"
	"ursa/internal/softpipe"
	"ursa/internal/workload"
)

// t1Kernels is the subset of the suite used by the pipeline-comparison
// tables (all of them; named for symmetry with the sweeps).
func t1Kernels() []*workload.Kernel { return workload.Kernels() }

// T1PhaseOrdering regenerates the central comparison the paper argues for
// qualitatively in §1: URSA vs the three phase-ordered baselines on a
// register-tight VLIW, measured in executed cycles and dynamic spill
// operations.
func T1PhaseOrdering() (*Table, error) {
	m := machine.VLIW(4, 6)
	t := &Table{
		ID:    "T1",
		Title: fmt.Sprintf("phase ordering comparison on %s (cycles / dynamic spill ops)", m.Name),
		Claim: "§1: prepass scheduling forces spill patching; postpass allocation restricts the scheduler; a good solution to one problem may prevent a good solution to the other",
		Header: []string{"kernel", "ursa", "prepass", "postpass", "integrated-list",
			"ursa-spills", "prepass-spills", "postpass-spills"},
	}
	kernels := t1Kernels()
	var jobs []pipeline.Job
	for _, k := range kernels {
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		for _, method := range pipeline.Methods {
			jobs = append(jobs, pipeline.Job{
				Name: "T1 " + k.Name + "/" + method.String(),
				Func: u.Func, Machine: m, Method: method, Init: k.State(11),
			})
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	ursaWins, totalURSA, totalBest := 0, 0, 0
	for ki, k := range kernels {
		cycles := map[pipeline.Method]int{}
		spills := map[pipeline.Method]int{}
		for mi, method := range pipeline.Methods {
			st := results[ki*len(pipeline.Methods)+mi].Stats
			cycles[method] = st.Cycles
			spills[method] = st.SpillOps
		}
		t.AddRow(k.Name,
			itoa(cycles[pipeline.URSA]), itoa(cycles[pipeline.Prepass]),
			itoa(cycles[pipeline.Postpass]), itoa(cycles[pipeline.IntegratedList]),
			itoa(spills[pipeline.URSA]), itoa(spills[pipeline.Prepass]),
			itoa(spills[pipeline.Postpass]))
		best := cycles[pipeline.Prepass]
		for _, mth := range []pipeline.Method{pipeline.Postpass, pipeline.IntegratedList} {
			if cycles[mth] < best {
				best = cycles[mth]
			}
		}
		if cycles[pipeline.URSA] <= best {
			ursaWins++
		}
		totalURSA += cycles[pipeline.URSA]
		totalBest += best
	}
	t.Finding = fmt.Sprintf("URSA at-or-better than every baseline on %d/%d kernels; total cycles %d vs best-baseline %d",
		ursaWins, len(kernels), totalURSA, totalBest)
	return t, nil
}

// T2RegisterSweep sweeps the register-file size on a fixed-width machine:
// the regime where the phase interaction bites. Cycles per pipeline.
func T2RegisterSweep() (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "register sweep on a 4-wide VLIW, kernel suite total cycles",
		Claim:  "§1/§2: considering register constraints before scheduling avoids spill patching as registers shrink",
		Header: []string{"regs", "ursa", "prepass", "postpass", "integrated-list", "ursa-spills", "prepass-spills"},
	}
	regsList := []int{3, 4, 6, 8, 12, 16}
	kernels := t1Kernels()
	funcs := make([]*ir.Func, len(kernels))
	for i, k := range kernels {
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		funcs[i] = u.Func
	}
	var jobs []pipeline.Job
	for _, regs := range regsList {
		m := machine.VLIW(4, regs)
		for ki, k := range kernels {
			for _, method := range pipeline.Methods {
				jobs = append(jobs, pipeline.Job{
					Name: fmt.Sprintf("T2 regs=%d %s/%s", regs, k.Name, method),
					Func: funcs[ki], Machine: m, Method: method, Init: k.State(22),
				})
			}
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, regs := range regsList {
		total := map[pipeline.Method]int{}
		spills := map[pipeline.Method]int{}
		for range kernels {
			for _, method := range pipeline.Methods {
				st := results[idx].Stats
				idx++
				total[method] += st.Cycles
				spills[method] += st.SpillOps
			}
		}
		t.AddRow(itoa(regs),
			itoa(total[pipeline.URSA]), itoa(total[pipeline.Prepass]),
			itoa(total[pipeline.Postpass]), itoa(total[pipeline.IntegratedList]),
			itoa(spills[pipeline.URSA]), itoa(spills[pipeline.Prepass]))
	}
	t.Finding = "gap between URSA and the baselines widens as registers shrink; with ample registers all pipelines converge"
	return t, nil
}

// T3FUSweep sweeps machine width at a fixed register file and additionally
// checks the §2 guarantee: no emitted schedule ever exceeds the machine's
// issue width or register file.
func T3FUSweep() (*Table, error) {
	t := &Table{
		ID:     "T3",
		Title:  "functional-unit sweep at 8 registers, kernel suite total cycles",
		Claim:  "§2: URSA maximizes utilization without ever exceeding the limits of the target machine",
		Header: []string{"fus", "ursa", "prepass", "postpass", "integrated-list", "ursa-util"},
	}
	fusList := []int{1, 2, 4, 8}
	kernels := t1Kernels()
	funcs := make([]*ir.Func, len(kernels))
	for i, k := range kernels {
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		funcs[i] = u.Func
	}
	var jobs []pipeline.Job
	for _, fus := range fusList {
		m := machine.VLIW(fus, 8)
		for ki, k := range kernels {
			for _, method := range pipeline.Methods {
				jobs = append(jobs, pipeline.Job{
					Name: fmt.Sprintf("T3 fus=%d %s/%s", fus, k.Name, method),
					Func: funcs[ki], Machine: m, Method: method, Init: k.State(33),
				})
			}
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, fus := range fusList {
		total := map[pipeline.Method]int{}
		issued := 0
		for range kernels {
			for _, method := range pipeline.Methods {
				st := results[idx].Stats
				idx++
				total[method] += st.Cycles
				if method == pipeline.URSA {
					issued += st.Issued
				}
			}
		}
		util := float64(issued) / float64(total[pipeline.URSA])
		t.AddRow(itoa(fus),
			itoa(total[pipeline.URSA]), itoa(total[pipeline.Prepass]),
			itoa(total[pipeline.Postpass]), itoa(total[pipeline.IntegratedList]),
			ftoa(util))
	}
	t.Finding = "cycles scale down with width until the suite's parallelism is exhausted; the simulator enforces that no pipeline oversubscribes units"
	return t, nil
}

// T4MeasurementScaling times the measurement phase (reuse construction +
// prioritized matching) against DAG size, checking the §3.1 polynomial
// bound (worst case O(N^3)).
func T4MeasurementScaling() (*Table, error) {
	t := &Table{
		ID:     "T4",
		Title:  "measurement cost vs DAG size (reuse DAGs + prioritized matching)",
		Claim:  "§3.1: the modified matching algorithm has worst-case time O(N^3); measurement is polynomial",
		Header: []string{"nodes", "fu-width", "reg-width"},
	}
	rng := rand.New(rand.NewSource(4))
	var prev float64
	for _, n := range []int{16, 32, 64, 128, 256} {
		f := workload.RandomBlock(rng, n, 0.3)
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			return nil, err
		}
		reps := 3
		start := time.Now()
		var fu, reg int
		for i := 0; i < reps; i++ {
			fu = measure.Measure(reuse.FU(g, reuse.AllFUs)).Width
			reg = measure.Measure(reuse.Reg(g, ir.ClassInt)).Width
		}
		per := float64(time.Since(start).Microseconds()) / float64(reps)
		ratio := "-"
		if prev > 0 {
			ratio = ftoa(per / prev)
		}
		prev = per
		// Wall-clock goes to stderr so that stdout (the tables) stays
		// byte-identical across runs and worker counts.
		fmt.Fprintf(os.Stderr, "# T4 n=%d: %.0fµs/measure, ratio vs half size %s\n", n, per, ratio)
		t.AddRow(itoa(n), itoa(fu), itoa(reg))
	}
	t.Finding = "doubling N grows measurement by roughly 4-8x (timings on stderr), consistent with the cubic worst case on dense closures"
	return t, nil
}

// T5TransformOrdering compares the three driver policies of §5: integrated
// selection, registers-first, and FUs-first.
func T5TransformOrdering() (*Table, error) {
	m := machine.VLIW(3, 5)
	t := &Table{
		ID:     "T5",
		Title:  fmt.Sprintf("transformation ordering policies on %s", m.Name),
		Claim:  "§5: register sequentialization impacts FU requirements more than the reverse, so register transformations should come first (or be integrated)",
		Header: []string{"kernel", "integrated", "registers-first", "fus-first", "transforms(i/r/f)"},
	}
	policies := []core.Policy{core.Integrated, core.RegistersFirst, core.FUsFirst}
	kernels := t1Kernels()
	var jobs []pipeline.Job
	for _, k := range kernels {
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			jobs = append(jobs, pipeline.Job{
				Name: fmt.Sprintf("T5 %s/%s", k.Name, p),
				Func: u.Func, Machine: m, Method: pipeline.URSA,
				Opts: pipeline.Options{Core: core.Options{Policy: p}},
				Init: k.State(44),
			})
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	for ki, k := range kernels {
		cycles := map[core.Policy]int{}
		iters := map[core.Policy]int{}
		for pi, p := range policies {
			st := results[ki*len(policies)+pi].Stats
			cycles[p] = st.Cycles
			iters[p] = st.URSATransforms
		}
		t.AddRow(k.Name,
			itoa(cycles[core.Integrated]), itoa(cycles[core.RegistersFirst]), itoa(cycles[core.FUsFirst]),
			fmt.Sprintf("%d/%d/%d", iters[core.Integrated], iters[core.RegistersFirst], iters[core.FUsFirst]))
	}
	t.Finding = "integrated and registers-first stay close; fus-first occasionally needs more transformations for the same result"
	return t, nil
}

// T6SpillVsSequence forces the driver to use only sequencing or only
// spilling for register reduction, against its free choice, on
// register-pressure-heavy blocks.
func T6SpillVsSequence() (*Table, error) {
	m := machine.VLIW(4, 4)
	t := &Table{
		ID:     "T6",
		Title:  fmt.Sprintf("register reduction strategy on %s (wide layered blocks)", m.Name),
		Claim:  "§5: sequencing is preferred at equal impact (no memory traffic), but spilling is the only transformation guaranteed to apply",
		Header: []string{"block", "both(cycles/spills)", "seq-only(cycles/fit)", "spill-only(cycles/spills)"},
	}
	for _, width := range []int{6, 8, 10} {
		f := workload.LayeredBlock(width, 3)
		row := []string{f.Name}
		for _, variant := range []struct {
			name string
			opts core.Options
		}{
			{"both", core.Options{}},
			{"seq", core.Options{DisableSpills: true}},
			{"spill", core.Options{DisableSequencing: true}},
		} {
			g, err := dag.Build(f.Blocks[0])
			if err != nil {
				return nil, err
			}
			copts := variant.opts
			copts.Machine = m
			rep, err := core.Run(g, copts)
			if err != nil {
				return nil, err
			}
			st, err := pipeline.Evaluate(f.Blocks[0], m, pipeline.URSA,
				workload.RandomInit(55), pipeline.Options{Core: variant.opts})
			if err != nil {
				return nil, fmt.Errorf("T6 %s/%s: %w", f.Name, variant.name, err)
			}
			switch variant.name {
			case "both":
				row = append(row, fmt.Sprintf("%d/%d", st.Cycles, st.SpillOps))
			case "seq":
				row = append(row, fmt.Sprintf("%d/fit=%v", st.Cycles, rep.Fits))
			case "spill":
				row = append(row, fmt.Sprintf("%d/%d", st.Cycles, st.SpillOps))
			}
		}
		t.AddRow(row...)
	}
	t.Finding = "free choice matches or beats both restricted modes; sequencing-only can fail to fit, spilling-only pays memory traffic"
	return t, nil
}

// T7SoftwarePipelining runs the §6 extension: unroll factors against cycles
// per iteration for loop kernels.
func T7SoftwarePipelining() (*Table, error) {
	m := machine.VLIW(4, 12)
	t := &Table{
		ID:     "T7",
		Title:  fmt.Sprintf("loop unrolling + URSA as resource-constrained software pipelining on %s", m.Name),
		Claim:  "§6 (future work): combining the technique with loop unrolling yields resource-constrained software pipelining",
		Header: []string{"kernel", "u=1", "u=2", "u=4", "u=8", "best", "speedup"},
	}
	for _, name := range []string{"saxpy", "dot", "stencil3", "hydro"} {
		k := workload.KernelByName(name)
		res, err := softpipe.Sweep(k.Name, k.Source, k.N, k.State(66), m, pipeline.URSA, []int{1, 2, 4, 8})
		if err != nil {
			return nil, fmt.Errorf("T7 %s: %w", name, err)
		}
		best := res.Best()
		t.AddRow(k.Name,
			ftoa(res.Points[0].CyclesPerIter), ftoa(res.Points[1].CyclesPerIter),
			ftoa(res.Points[2].CyclesPerIter), ftoa(res.Points[3].CyclesPerIter),
			itoa(best.Unroll), ftoa(res.Points[0].CyclesPerIter/best.CyclesPerIter))
	}
	t.Finding = "cycles/iteration fall with unrolling until registers or units saturate; URSA keeps every point within the machine"
	return t, nil
}

// T8ResourceClasses exercises §5's multiple-resource-class support: mixed
// int/float kernels on machines with separate integer and floating-point
// files and heterogeneous units, with one Reuse DAG per class.
func T8ResourceClasses() (*Table, error) {
	t := &Table{
		ID:     "T8",
		Title:  "multiple resource classes: heterogeneous machines on FP kernels",
		Claim:  "§5: with several classes of a resource, a separate Reuse DAG is constructed per class and the transformations integrate across them",
		Header: []string{"kernel", "machine", "cycles", "int-regs", "fp-regs", "spills", "fits"},
	}
	machines := []*machine.Config{
		machine.Heterogeneous(2, 1, 1, 1, 6, 4),
		machine.Heterogeneous(2, 2, 2, 1, 8, 8),
	}
	names := []string{"dot", "fir8", "fft2", "hydro"}
	var jobs []pipeline.Job
	for _, name := range names {
		k := workload.KernelByName(name)
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		for _, m := range machines {
			jobs = append(jobs, pipeline.Job{
				Name: fmt.Sprintf("T8 %s/%s", name, m.Name),
				Func: u.Func, Machine: m, Method: pipeline.URSA, Init: k.State(77),
			})
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		k := workload.KernelByName(name)
		for mi, m := range machines {
			st := results[ni*len(machines)+mi].Stats
			t.AddRow(k.Name, m.Name, itoa(st.Cycles),
				itoa(st.RegsUsed[ir.ClassInt]), itoa(st.RegsUsed[ir.ClassFP]),
				itoa(st.SpillOps), fmt.Sprintf("%v", st.URSAFits))
		}
	}
	t.Finding = "per-class Reuse DAGs keep both files within limits; FP-heavy kernels are constrained by the smaller FP file"
	return t, nil
}
