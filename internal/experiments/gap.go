package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ursa/internal/check"
	"ursa/internal/dag"
	"ursa/internal/exact"
	"ursa/internal/pipeline"
)

// gapCorpusDir locates the committed fuzz corpus from any working
// directory inside the module (package tests run in the package dir,
// cmd/ursabench wherever the operator stands) by walking up to go.mod.
func gapCorpusDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "internal", "check", "testdata", "fuzz"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("experiments: go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// machineBucket groups corpus machines into four families so the table
// aggregates rather than fragments: homogeneous/heterogeneous units ×
// unit/realistic latency.
func machineBucket(s *check.MachineSpec) string {
	shape := "vliw"
	if s.Het {
		shape = "het"
	}
	if s.IssueWidth > 0 {
		// Fetch-bounded machines get their own bucket: the program-model
		// optimum ignores the issue cap, so their gap is an upper estimate
		// and should not dilute the unbounded rows.
		shape = "supra"
	}
	lat := "unit"
	if s.Realistic {
		lat = "real"
	}
	return shape + "/" + lat
}

// T14HeuristicGap measures each heuristic pipeline's distance from the
// exact solver's proven optima over the committed fuzz corpus: the word
// gap against the program-model minimum schedule length and the fraction
// of cases each heuristic already schedules optimally. URSA's paper
// offers no optimality bound for the §4 sequence (its kill selection
// alone is NP-complete to do exactly, Theorem 2); this table quantifies
// the distance empirically. One solve per case is shared across the
// methods.
func T14HeuristicGap() (*Table, error) {
	dir, err := gapCorpusDir()
	if err != nil {
		return nil, err
	}
	corpus, err := check.LoadCorpus(dir)
	if err != nil {
		return nil, err
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("experiments: fuzz corpus at %s is empty", dir)
	}

	type acc struct {
		cases, optimal, sum, max int
	}
	stats := map[string]*acc{} // method + "\x00" + bucket
	skipped := 0
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := corpus[name]
		m := c.Mach.Config()
		if m.Clusters > 1 || m.BufferDepth > 0 {
			// The solver's program model encodes neither per-cluster
			// register files nor output buffers (its list-scheduling upper
			// bound can even deadlock on EDP machines), so these corpus
			// cases have no proven optimum to measure against.
			skipped++
			continue
		}
		g, err := dag.Build(c.Block())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		res, err := exact.Solve(g, m, exact.Options{})
		if err != nil {
			if exact.Skippable(err) {
				skipped++
				continue
			}
			return nil, fmt.Errorf("%s: solve: %w", name, err)
		}
		bucket := machineBucket(c.Mach)
		for _, method := range pipeline.Methods {
			_, st, err := pipeline.Compile(c.Block(), m, method, pipeline.Options{})
			if err != nil {
				continue // uncompilable cases have no gap to report
			}
			key := method.String() + "\x00" + bucket
			a := stats[key]
			if a == nil {
				a = &acc{}
				stats[key] = a
			}
			gap := st.Words - res.MinWordsProg
			a.cases++
			a.sum += gap
			if gap > a.max {
				a.max = gap
			}
			if gap == 0 {
				a.optimal++
			}
		}
	}

	t := &Table{
		ID:     "T14",
		Title:  "Heuristic gap to the exact optimum (fuzz corpus)",
		Claim:  "URSA §4 bounds neither its schedule length nor its kill choices against the optimum (Theorem 2: exact kills are NP-complete); the distance is an open empirical question.",
		Header: []string{"method", "machines", "cases", "optimal", "mean word gap", "max word gap"},
	}
	totalCases, totalOpt := 0, 0
	for _, method := range pipeline.Methods {
		prefix := method.String() + "\x00"
		var buckets []string
		for key := range stats {
			if strings.HasPrefix(key, prefix) {
				buckets = append(buckets, key[len(prefix):])
			}
		}
		sort.Strings(buckets)
		for _, b := range buckets {
			a := stats[method.String()+"\x00"+b]
			t.AddRow(method.String(), b, itoa(a.cases),
				fmt.Sprintf("%d/%d", a.optimal, a.cases),
				fmt.Sprintf("%.2f", float64(a.sum)/float64(a.cases)),
				itoa(a.max))
			totalCases += a.cases
			totalOpt += a.optimal
		}
	}
	if totalCases == 0 {
		return nil, fmt.Errorf("experiments: solver refused every corpus case (%d skipped)", skipped)
	}
	t.Finding = fmt.Sprintf(
		"%d method×case measurements against proven optima (%d corpus cases skipped as over solver limits); %.0f%% already optimal — the committed gap-* cases pin the remainder open.",
		totalCases, skipped, 100*float64(totalOpt)/float64(totalCases))
	return t, nil
}
