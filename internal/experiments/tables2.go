package experiments

import (
	"fmt"
	"math/rand"

	"ursa/internal/cfg"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/frontend"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/opt"
	"ursa/internal/order"
	"ursa/internal/pipeline"
	"ursa/internal/reuse"
	"ursa/internal/trace"
	"ursa/internal/workload"
)

// T9TraceScheduling compares block-scope against trace-scope compilation
// (§2: "a DAG representation is suitable for exploiting parallelism present
// within basic blocks as well as parallelism across basic block
// boundaries"). Each branching kernel's hottest trace is selected from a
// profile, compiled as one region with safe speculation, executed with
// branch squashing, and verified against the trace's reference walk; the
// block-scope column executes the same blocks one region at a time.
func T9TraceScheduling() (*Table, error) {
	m := machine.VLIW(4, 10)
	t := &Table{
		ID:     "T9",
		Title:  fmt.Sprintf("block scope vs trace scope on %s (cycles along the hot path, one pass)", m.Name),
		Claim:  "§2: trace DAGs expose parallelism across basic-block boundaries; URSA operates on them unchanged",
		Header: []string{"kernel", "trace", "blocks", "block-scope", "trace-scope", "speedup"},
	}
	for _, name := range []string{"maxloc", "stencil3", "tridiag"} {
		k := workload.KernelByName(name)
		u, err := frontend.Compile(k.Source, frontend.Options{})
		if err != nil {
			return nil, err
		}
		g, err := cfg.Build(u.Func)
		if err != nil {
			return nil, err
		}
		init := k.State(88)
		prof, err := cfg.ProfileRun(g, init, 10_000_000)
		if err != nil {
			return nil, err
		}
		traces := trace.Select(g, prof)
		tr := traces[0]
		for _, cand := range traces {
			if len(cand.Blocks) > len(tr.Blocks) {
				tr = cand
			}
		}

		// Trace scope: one region, speculation allowed.
		prog, _, err := trace.Compile(tr, m, true, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("T9 %s: %w", name, err)
		}
		res, err := trace.Verify(prog, tr, init)
		if err != nil {
			return nil, fmt.Errorf("T9 %s: %w", name, err)
		}

		// Block scope: each block its own region, executed along the same
		// path (sum of the trace blocks' standalone schedules).
		blockCycles := 0
		for _, bi := range tr.Blocks {
			blk := g.Blocks[bi]
			if len(blk.Instrs) == 0 {
				continue
			}
			st, err := pipeline.Evaluate(blk, m, pipeline.URSA, init, pipeline.Options{})
			if err != nil {
				return nil, fmt.Errorf("T9 %s block %s: %w", name, blk.Label, err)
			}
			blockCycles += st.Cycles
		}
		t.AddRow(k.Name, fmt.Sprintf("%v", tr.Labels()), itoa(len(tr.Blocks)),
			itoa(blockCycles), itoa(res.Cycles),
			ftoa(float64(blockCycles)/float64(res.Cycles)))
	}
	t.Finding = "compiling the hot trace as one region beats per-block compilation on every kernel: cross-block motion fills the otherwise-empty issue slots"
	return t, nil
}

// T10PipelinedUnits exercises the §6 future-work direction toward
// pipelined/superscalar targets: under multi-cycle latencies, compare
// non-pipelined units (the paper's base model) against pipelined units
// that accept a new instruction every cycle.
func T10PipelinedUnits() (*Table, error) {
	t := &Table{
		ID:     "T10",
		Title:  "pipelined functional units under realistic latencies (vliw2x8r, kernel cycles)",
		Claim:  "§6 (future work): extensions to handle the problems caused by interlocks in pipelines, so that superscalar architectures can be targeted",
		Header: []string{"kernel", "nonpipe-ursa", "nonpipe-prepass", "pipe-ursa", "pipe-prepass", "pipe speedup"},
	}
	mk := func(pipelined bool) *machine.Config {
		m := machine.VLIW(2, 8)
		m.Latency = machine.RealisticLatency
		m.Pipelined = pipelined
		if pipelined {
			m.Name += "+pipe"
		} else {
			m.Name += "+lat"
		}
		return m
	}
	nonpipe, pipe := mk(false), mk(true)
	names := []string{"dot", "saxpy", "poly", "stencil3"}
	combos := []struct {
		m      *machine.Config
		method pipeline.Method
	}{
		{nonpipe, pipeline.URSA}, {nonpipe, pipeline.Prepass},
		{pipe, pipeline.URSA}, {pipe, pipeline.Prepass},
	}
	var jobs []pipeline.Job
	for _, name := range names {
		k := workload.KernelByName(name)
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		for _, c := range combos {
			jobs = append(jobs, pipeline.Job{
				Name: fmt.Sprintf("T10 %s/%s/%s", name, c.m.Name, c.method),
				Func: u.Func, Machine: c.m, Method: c.method, Init: k.State(99),
			})
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		k := workload.KernelByName(name)
		row := make([]int, len(combos))
		for ci := range combos {
			row[ci] = results[ni*len(combos)+ci].Stats.Cycles
		}
		nu, np, pu, pp := row[0], row[1], row[2], row[3]
		t.AddRow(k.Name, itoa(nu), itoa(np), itoa(pu), itoa(pp), ftoa(float64(nu)/float64(pu)))
	}
	t.Finding = "pipelining buys up to ~1.25x at this width under multi-cycle latencies; URSA's allocation carries over unchanged because CanReuse_FU is the same relation — only unit occupancy differs"
	return t, nil
}

// T11OptimizerAblation measures the effect of the classic block-local
// scalar optimizations (constant folding, copy propagation, CSE, DCE) ahead
// of allocation: the front-end substrate the paper's C implementation
// inherited "for free" from its existing compiler.
func T11OptimizerAblation() (*Table, error) {
	m := machine.VLIW(4, 8)
	t := &Table{
		ID:     "T11",
		Title:  fmt.Sprintf("scalar optimizations before allocation on %s (URSA pipeline)", m.Name),
		Claim:  "substrate: the paper's front end fed URSA cleaned-up trace DAGs; redundancy inflates both resource measures and cycles",
		Header: []string{"kernel", "instrs", "instrs(opt)", "cycles", "cycles(opt)", "speedup"},
	}
	for _, name := range []string{"fir8", "poly", "stencil3", "matmul4", "fft2"} {
		k := workload.KernelByName(name)
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		count := func(f2 *frontend.Unit) int {
			n := 0
			for _, b := range f2.Func.Blocks {
				n += len(b.Instrs)
			}
			return n
		}
		before := count(u)
		plain, err := pipeline.EvaluateFunc(u.Func, m, pipeline.URSA, k.State(12), 50_000_000, pipeline.Options{})
		if err != nil {
			return nil, fmt.Errorf("T11 %s: %w", name, err)
		}
		u2, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		opt.Func(u2.Func)
		after := count(u2)
		tuned, err := pipeline.EvaluateFunc(u2.Func, m, pipeline.URSA, k.State(12), 50_000_000, pipeline.Options{})
		if err != nil {
			return nil, fmt.Errorf("T11 %s opt: %w", name, err)
		}
		t.AddRow(k.Name, itoa(before), itoa(after), itoa(plain.Cycles), itoa(tuned.Cycles),
			ftoa(float64(plain.Cycles)/float64(tuned.Cycles)))
	}
	t.Finding = "folding/CSE shrink the code, but CSE also lengthens live ranges: fir8 gets slower because the merged loads raise register pressure — the same optimization-vs-resources interaction the paper describes for schedulers"
	return t, nil
}

// T12SuperscalarInOrder executes each pipeline's emitted code on an
// in-order superscalar core with hardware interlocks (§6's target): the
// hardware no longer trusts word boundaries, so only the instruction ORDER
// carries the compiler's work. Scheduling quality must survive the change
// of execution model.
func T12SuperscalarInOrder() (*Table, error) {
	m := machine.VLIW(2, 8)
	m.Latency = machine.RealisticLatency
	m.Pipelined = true
	m.Name = "ss2x8r"
	t := &Table{
		ID:     "T12",
		Title:  "in-order superscalar (2-issue, pipelined, realistic latencies): cycles by emitting pipeline",
		Claim:  "§6 (future work): handling pipeline interlocks so that superscalar architectures can be targeted",
		Header: []string{"kernel", "ursa", "prepass", "postpass", "integrated-list", "ursa vs postpass"},
	}
	names := []string{"dot", "poly", "stencil3", "state", "horner"}
	var jobs []pipeline.Job
	for _, name := range names {
		k := workload.KernelByName(name)
		u, err := k.Unit(2)
		if err != nil {
			return nil, err
		}
		for _, method := range pipeline.Methods {
			jobs = append(jobs, pipeline.Job{
				Name: fmt.Sprintf("T12 %s/%s", name, method),
				Func: u.Func, Machine: m, Method: method, Init: k.State(13),
				InOrder: true,
			})
		}
	}
	results, err := pipeline.RunJobs(jobs, Parallelism())
	if err != nil {
		return nil, err
	}
	for ni := range names {
		k := workload.KernelByName(names[ni])
		cycles := map[pipeline.Method]int{}
		for mi, method := range pipeline.Methods {
			cycles[method] = results[ni*len(pipeline.Methods)+mi].Stats.Cycles
		}
		t.AddRow(k.Name,
			itoa(cycles[pipeline.URSA]), itoa(cycles[pipeline.Prepass]),
			itoa(cycles[pipeline.Postpass]), itoa(cycles[pipeline.IntegratedList]),
			ftoa(float64(cycles[pipeline.Postpass])/float64(cycles[pipeline.URSA])))
	}
	t.Finding = "the schedule's order keeps paying on interlocked hardware: URSA/prepass orders beat the reuse-serialized postpass order by 1.2-1.7x on most kernels (state's 0.94 shows in-order issue occasionally likes the compact postpass stream)"
	return t, nil
}

// T13PrioritizedMatching ablates the paper's §3.1 modification: the
// decomposition algorithm of [FoF65] "only guarantees minimum decomposition
// for the entire DAG, but not for all hammocks nested within the DAG"; the
// prioritized matching adds edges in nesting-level batches to fix this.
// Over random DAGs, count the nested hammocks whose projected chain count
// is non-minimal under each variant.
func T13PrioritizedMatching() (*Table, error) {
	t := &Table{
		ID:    "T13",
		Title: "hammock-prioritized matching vs plain Ford-Fulkerson decomposition",
		Claim: "§3.1: plain minimum decomposition need not be minimal inside nested hammocks; prioritizing non-crossing edges (O(N^3)) repairs this",
		Header: []string{"nodes", "DAGs", "hammocks checked",
			"non-minimal (plain)", "non-minimal (prioritized)"},
	}
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{10, 14, 18} {
		const trials = 40
		checked, badPlain, badPrio := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			f := workload.RandomBlock(rng, n, 0.35)
			g, err := dag.Build(f.Blocks[0])
			if err != nil {
				return nil, err
			}
			r := reuse.FU(g, reuse.AllFUs)
			hs := g.Hammocks()
			levels := g.NestLevels(hs)
			plain := measure.Chains(r, nil)
			prio := measure.Chains(r, levels)
			reach := g.Reach()
			for _, h := range hs {
				if h.Entry == g.Root && h.Exit == g.Leaf {
					continue // whole graph: both are minimal by Dilworth
				}
				var items []int
				for i, it := range r.Items {
					if h.Contains(it.Node) {
						items = append(items, i)
					}
				}
				if len(items) < 3 {
					continue
				}
				checked++
				sub := order.NewRelation(r.NumItems())
				for _, a := range items {
					for _, b := range items {
						if a != b && reach.Has(r.Items[a].Node, r.Items[b].Node) {
							sub.Add(a, b)
						}
					}
				}
				want := len(order.MaxAntichainBrute(sub, items))
				count := func(res *measure.Result) int {
					used := map[int]bool{}
					for _, i := range items {
						used[res.ChainOf[i]] = true
					}
					return len(used)
				}
				if count(plain) != want {
					badPlain++
				}
				if count(prio) != want {
					badPrio++
				}
			}
		}
		t.AddRow(itoa(n), itoa(trials), itoa(checked), itoa(badPlain), itoa(badPrio))
	}
	t.Finding = "prioritization removes most non-minimal projections (4 -> 1 here); the residual case shows batching by nesting-level difference is itself heuristic when hammocks partially overlap — the local excess sets it feeds are correspondingly tighter"
	return t, nil
}
