// Package experiments implements the reproduction harness: one function per
// figure of the paper and per constructed evaluation table (see DESIGN.md's
// experiment index). Each experiment regenerates its table from scratch;
// cmd/ursabench prints them all and the module-root benchmarks wrap them as
// testing.B targets. EXPERIMENTS.md records the outputs against the paper's
// claims.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated result table.
type Table struct {
	ID    string
	Title string
	// Claim cites what the paper states; Finding summarizes what we
	// measured.
	Claim   string
	Finding string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.Claim)
	}
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Finding != "" {
		fmt.Fprintf(&sb, "measured: %s\n", t.Finding)
	}
	return sb.String()
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID  string
	Run func() (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"F2", F2Measurement},
		{"F3", F3Transformations},
		{"F1", F1Convergence},
		{"T1", T1PhaseOrdering},
		{"T2", T2RegisterSweep},
		{"T3", T3FUSweep},
		{"T4", T4MeasurementScaling},
		{"T5", T5TransformOrdering},
		{"T6", T6SpillVsSequence},
		{"T7", T7SoftwarePipelining},
		{"T8", T8ResourceClasses},
		{"T9", T9TraceScheduling},
		{"T10", T10PipelinedUnits},
		{"T11", T11OptimizerAblation},
		{"T12", T12SuperscalarInOrder},
		{"T13", T13PrioritizedMatching},
		{"T14", T14HeuristicGap},
		{"T15", T15ModuloScheduling},
		{"T16", T16TargetFamilies},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ftoa(v float64) string { return fmt.Sprintf("%.2f", v) }
