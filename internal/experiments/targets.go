package experiments

import (
	"fmt"

	"ursa/internal/ir"
	"ursa/internal/pipeline"
	"ursa/internal/target"
	"ursa/internal/workload"
)

// T16TargetFamilies runs the Figure 2 example across the extended target
// catalog: clustered register files (inter-cluster copies priced by the
// reduction loop), the 12-wide superscalar fetch bound, and buffered
// exposed datapaths. Methods a family declares unsupported
// (target.Supports) are skipped, matching how sweeps and the fuzzer treat
// them; the copies column counts inter-cluster transfers in the final
// code, so the clustered rows show the partition cost URSA is pricing
// against spills.
func T16TargetFamilies() (*Table, error) {
	presets := []string{
		"clus2x2x4", "clus2x4x6", "clus4x2x4",
		"suprax12",
		"edp2x6b1", "edp4x8b2",
	}
	t := &Table{
		ID:    "T16",
		Title: "Extended target families on the Figure 2 example",
		Claim: "§6 positions unified allocation as retargetable beyond the homogeneous VLIW: any bounded resource a schedule can exhaust fits the measure-reduce-assign loop.",
		Header: []string{"machine", "family", "method", "words", "copies",
			"spills", "intregs", "cycles", "util(ipc)"},
	}
	for _, name := range presets {
		p := target.ByName(name)
		if p == nil {
			return nil, fmt.Errorf("preset %s missing from the catalog", name)
		}
		m := p.Config
		for _, method := range pipeline.Methods {
			f := workload.PaperExample(true)
			b := f.Blocks[0]
			prog, _, err := pipeline.Compile(b, m, method, pipeline.Options{})
			if err != nil {
				if target.Unsupported(err) {
					continue
				}
				return nil, fmt.Errorf("%s on %s: %w", method, name, err)
			}
			copies := 0
			for _, in := range prog.Instrs() {
				if in.Op == ir.Copy {
					copies++
				}
			}
			st, err := pipeline.Evaluate(b, m, method, workload.PaperInit(), pipeline.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: evaluate: %w", method, name, err)
			}
			t.AddRow(name, string(target.FamilyOf(m)), method.String(),
				itoa(st.Words), itoa(copies), itoa(st.SpillOps),
				itoa(st.RegsUsed[ir.ClassInt]), itoa(st.Cycles), ftoa(st.Utilization))
		}
	}
	t.Finding = "Every family compiles and verifies through the unified loop: clustered runs pay explicit xcopy traffic bounded by the bus, the superscalar rows cap issue at the fetch bound, and the depth-1 exposed datapath degrades to buffer-eviction spill code where the worst-case demand exceeds capacity."
	return t, nil
}
