package experiments

import (
	"fmt"

	"ursa/internal/frontend"
	"ursa/internal/machine"
	"ursa/internal/pipeline"
	"ursa/internal/softpipe"
	"ursa/internal/workload"
)

// T15ModuloScheduling compares true iterative modulo scheduling
// (internal/modsched: II search bounded below by max(resMII, recMII), with
// URSA accepting each candidate kernel) against the paper's §6
// unroll-and-allocate sweep on the loop kernels. The blocked modulo kernel
// amortizes loop control and scalar traffic across its replicas, so its
// steady state can undercut even the sweep's best unroll point; the MII
// columns show how close each loop gets to its theoretical floor.
func T15ModuloScheduling() (*Table, error) {
	kernels := []string{"saxpy", "dot", "stencil3", "hydro", "fir8"}
	machines := []*machine.Config{
		machine.VLIW(4, 12),
		machine.Heterogeneous(2, 2, 2, 1, 12, 12),
	}
	t := &Table{
		ID:    "T15",
		Title: "Modulo scheduling vs unroll-and-allocate (cycles per iteration)",
		Claim: "§6 proposes unrolling + unified allocation as a software pipelining technique; classic modulo scheduling bounds steady-state cost by II >= max(resMII, recMII).",
		Header: []string{"kernel", "machine", "resMII", "recMII", "II", "unroll",
			"modsched cyc/iter", "sweep best cyc/iter", "speedup"},
	}
	wins, rows := 0, 0
	for _, m := range machines {
		for _, name := range kernels {
			k := workload.KernelByName(name)
			sw, err := softpipe.Sweep(k.Name, k.Source, k.N, k.State(1), m,
				pipeline.URSA, []int{1, 2, 4, 8})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: sweep: %w", name, m.Name, err)
			}
			best := sw.Best()

			u, err := frontend.Compile(k.Source, frontend.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			fp, _, ms, err := pipeline.CompileLoopFunc(u.Func, m, pipeline.URSA, pipeline.Options{})
			if err != nil {
				t.AddRow(name, m.Name, "-", "-", "-", "-", "no kernel fits",
					fmt.Sprintf("%.2f (u%d)", best.CyclesPerIter, best.Unroll), "-")
				continue
			}
			res, err := fp.Run(k.State(1), softpipe.DefaultBudget)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: run: %w", name, m.Name, err)
			}
			l := ms.Primary()
			cpi := float64(res.Cycles) / float64(k.N)
			rows++
			if cpi < best.CyclesPerIter {
				wins++
			}
			t.AddRow(name, m.Name,
				itoa(l.ResMII), itoa(l.RecMII), itoa(l.II), itoa(l.Unroll),
				fmt.Sprintf("%.2f", cpi),
				fmt.Sprintf("%.2f (u%d)", best.CyclesPerIter, best.Unroll),
				fmt.Sprintf("%.2fx", best.CyclesPerIter/cpi))
		}
	}
	t.Finding = fmt.Sprintf("modulo scheduling beats the sweep's best unroll point on %d of %d kernel-machine pairs; every II sits at or near its max(resMII, recMII) floor.", wins, rows)
	return t, nil
}
