package experiments

import (
	"strings"
	"testing"
)

// TestFiguresExact asserts the paper-figure reproductions match exactly;
// these are the headline numbers and must never drift.
func TestFiguresExact(t *testing.T) {
	for _, id := range []string{"F2", "F3"} {
		e := ByID(id)
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(tbl.Finding, "match=true") {
			t.Errorf("%s: %s", id, tbl.Finding)
		}
	}
}

func TestConvergenceTable(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("long: convergence sweep")
	}
	tbl, err := F1Convergence()
	if err != nil {
		t.Fatalf("F1: %v", err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

// TestEvaluationTables runs every constructed table; in -short mode only
// the quick ones.
func TestEvaluationTables(t *testing.T) {
	quick := map[string]bool{"T4": true, "T6": true}
	for _, e := range All() {
		if e.ID == "F2" || e.ID == "F3" || e.ID == "F1" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if (testing.Short() || raceEnabled) && !quick[e.ID] {
				t.Skip("long experiment")
			}
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%v", err)
			}
			if len(tbl.Rows) == 0 {
				t.Error("empty table")
			}
			if !strings.Contains(tbl.String(), tbl.ID) {
				t.Error("render missing id")
			}
		})
	}
}

// TestTablesParallelIdentical: the job-fanned tables render byte-identically
// at one worker and at eight. (T4 is excluded everywhere from such checks:
// its cells are wall-clock timings.)
func TestTablesParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs experiments twice")
	}
	defer SetParallelism(0)
	ids := []string{"T8", "T10", "T12"}
	if raceEnabled {
		// Keep one representative table under the detector; the full set
		// takes minutes there and adds no extra concurrency coverage.
		ids = ids[:1]
	}
	for _, id := range ids {
		e := ByID(id)
		SetParallelism(1)
		seq, err := e.Run()
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		SetParallelism(8)
		par, err := e.Run()
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if par.String() != seq.String() {
			t.Errorf("%s renders differently at 8 workers:\n%s\nvs\n%s", id, par, seq)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("T1") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}
