//go:build race

package experiments

// raceEnabled gates the heavyweight experiment regenerations out of -race
// runs: their tables take minutes under the detector, and their
// concurrency lives entirely in internal/driver and internal/pipeline,
// which carry their own race tests.
const raceEnabled = true
