package experiments

import "sync/atomic"

// parallelism is the worker count the table experiments hand to
// pipeline.RunJobs. Zero (the default) means GOMAXPROCS.
var parallelism atomic.Int64

// SetParallelism sets the number of workers the table experiments use when
// fanning out their kernel × configuration jobs. Zero or negative selects
// GOMAXPROCS; one runs every job inline. The tables' contents are identical
// at every setting — only wall-clock time changes. Safe to call from any
// goroutine.
func SetParallelism(n int) { parallelism.Store(int64(n)) }

// Parallelism reports the current setting (see SetParallelism).
func Parallelism() int { return int(parallelism.Load()) }
