package experiments

import (
	"fmt"
	"math/rand"

	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/reuse"
	"ursa/internal/transform"
	"ursa/internal/workload"
)

func paperDAG() (*dag.Graph, error) {
	return dag.Build(workload.PaperExample(false).Blocks[0])
}

func widths(g *dag.Graph) (fu, reg int) {
	fu = measure.Measure(reuse.FU(g, reuse.AllFUs)).Width
	reg = measure.Measure(reuse.Reg(g, ir.ClassInt)).Width
	return fu, reg
}

// F2Measurement reproduces Figure 2's measurements: the example DAG needs 4
// functional units and 5 registers in the worst case, and its minimum chain
// decomposition has exactly 4 chains.
func F2Measurement() (*Table, error) {
	g, err := paperDAG()
	if err != nil {
		return nil, err
	}
	fuRes := measure.Measure(reuse.FU(g, reuse.AllFUs))
	regRes := measure.Measure(reuse.Reg(g, ir.ClassInt))
	crit, _ := g.CriticalPath(dag.UnitLatency)

	t := &Table{
		ID:     "F2",
		Title:  "Figure 2 example: measured worst-case requirements",
		Claim:  "the DAG decomposes into 4 chains (4 FUs) and requires 5 registers",
		Header: []string{"quantity", "paper", "measured"},
	}
	t.AddRow("FU requirement (chains in min decomposition)", "4", itoa(fuRes.Width))
	t.AddRow("register requirement", "5", itoa(regRes.Width))
	t.AddRow("FU chains found", "4", itoa(len(fuRes.Chains)))
	t.AddRow("critical path (unit latency)", "5", itoa(crit))
	ok := fuRes.Width == 4 && regRes.Width == 5 && crit == 5
	t.Finding = fmt.Sprintf("match=%v", ok)
	if !ok {
		return t, fmt.Errorf("F2 mismatch: fu=%d reg=%d crit=%d", fuRes.Width, regRes.Width, crit)
	}
	return t, nil
}

// F3Transformations reproduces Figure 3: the effect of each transformation
// on the example's requirements.
func F3Transformations() (*Table, error) {
	t := &Table{
		ID:     "F3",
		Title:  "Figure 3 transformations on the example DAG",
		Claim:  "(a) seq G->H: FU 4->3; (b) seq I->{G,H}: regs 5->4; (c) spill D: regs 5->3; (d) combined: 2 FUs, 3 regs",
		Header: []string{"figure", "transformation", "FU", "regs", "paper"},
	}
	node := func(g *dag.Graph, name string) int { return g.DefNode(g.Func.Reg(name)) }

	// Baseline.
	g, err := paperDAG()
	if err != nil {
		return nil, err
	}
	fu0, reg0 := widths(g)
	t.AddRow("-", "none", itoa(fu0), itoa(reg0), "4 FU, 5 regs")

	// (a) FU sequencing G -> H.
	g, _ = paperDAG()
	c := &transform.Candidate{Kind: transform.FUSequence,
		Edges: [][2]int{{node(g, "t3"), node(g, "t4")}}}
	if err := c.Apply(g); err != nil {
		return nil, err
	}
	fuA, regA := widths(g)
	t.AddRow("3(a)", "sequence G->H", itoa(fuA), itoa(regA), "FU 3")

	// (b) register sequencing S={I}, T={G,H}.
	g, _ = paperDAG()
	c = &transform.Candidate{Kind: transform.RegSequence,
		Edges: [][2]int{{node(g, "t5"), node(g, "t3")}, {node(g, "t5"), node(g, "t4")}}}
	if err := c.Apply(g); err != nil {
		return nil, err
	}
	fuB, regB := widths(g)
	t.AddRow("3(b)", "sequence I->{G,H}", itoa(fuB), itoa(regB), "regs 4")

	// (c) spill D's value with the reload behind SD1={B,C,E,F,I}.
	g, _ = paperDAG()
	c = &transform.Candidate{Kind: transform.Spill, Spill: &transform.SpillSpec{
		Reg: g.Func.Reg("y"), Def: node(g, "y"),
		Barrier:  []int{node(g, "t1"), node(g, "t2"), node(g, "t5")},
		PreRoots: []int{node(g, "w"), node(g, "x")},
	}}
	if err := c.Apply(g); err != nil {
		return nil, err
	}
	fuC, regC := widths(g)
	t.AddRow("3(c)", "spill D (reload after I)", itoa(fuC), itoa(regC), "regs 3")

	// (d) the combination found by the driver for a 2-FU/3-reg machine.
	g, _ = paperDAG()
	rep, err := core.Run(g, core.Options{Machine: machine.VLIW(2, 3)})
	if err != nil {
		return nil, err
	}
	fuD, regD := widths(g)
	t.AddRow("3(d)", fmt.Sprintf("URSA driver (%d transforms)", rep.Iterations),
		itoa(fuD), itoa(regD), "FU 2, regs 3")

	ok := fuA == 3 && regB == 4 && regC == 3 && fuD <= 2 && regD <= 3
	t.Finding = fmt.Sprintf("match=%v (3a FU=%d, 3b regs=%d, 3c regs=%d, 3d FU=%d regs=%d)",
		ok, fuA, regB, regC, fuD, regD)
	if !ok {
		return t, fmt.Errorf("F3 mismatch")
	}
	return t, nil
}

// F1Convergence exercises the Figure 1 top-level loop: over random DAGs and
// machines, URSA terminates with requirements within the machine (or leaves
// a small residue for assignment), never increases any width, and preserves
// semantics.
func F1Convergence() (*Table, error) {
	t := &Table{
		ID:    "F1",
		Title: "Figure 1 algorithm: convergence over random DAGs",
		Claim: "the loop terminates with the DAG's requirements within the target machine",
		Header: []string{"machine", "trials", "worst-case fit", "clean schedule",
			"residual", "avg transforms", "max transforms"},
	}
	rng := rand.New(rand.NewSource(1993))
	machines := []*machine.Config{
		machine.VLIW(1, 4), machine.VLIW(2, 4), machine.VLIW(2, 8),
		machine.VLIW(4, 6), machine.VLIW(8, 12),
	}
	const trials = 40
	for _, m := range machines {
		fit, clean, residual, total, max := 0, 0, 0, 0, 0
		for i := 0; i < trials; i++ {
			f := workload.RandomBlock(rng, 10+rng.Intn(30), 0.3)
			g, err := dag.Build(f.Blocks[0])
			if err != nil {
				return nil, err
			}
			rep, err := core.Run(g, core.Options{Machine: m})
			if err != nil {
				return nil, err
			}
			if rep.Fits {
				fit++
			} else {
				residual += rep.TotalExcess()
			}
			if rep.Fits || rep.ScheduleClean {
				clean++
			}
			total += rep.Iterations
			if rep.Iterations > max {
				max = rep.Iterations
			}
		}
		t.AddRow(m.Name, itoa(trials), fmt.Sprintf("%d/%d", fit, trials),
			fmt.Sprintf("%d/%d", clean, trials),
			itoa(residual), ftoa(float64(total)/trials), itoa(max))
	}
	t.Finding = "URSA either fits the worst case or selects an option whose emitted schedule needs no spill patching; any residual excess is absorbed by assignment (§2)"
	return t, nil
}
