// Package sched implements resource-constrained list scheduling of a
// dependence DAG onto a VLIW machine. It serves two roles: the final
// scheduler of URSA's assignment phase (the transformed DAG's worst-case
// requirements already fit, so the list scheduler merely linearizes), and
// the engine of the phase-ordered baselines the paper argues against (§1),
// including a register-pressure-sensitive variant in the spirit of Goodman
// and Hsu's DAG-driven allocation [GoH88].
package sched

import (
	"errors"
	"fmt"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// Placement locates one DAG node in the schedule.
type Placement struct {
	Node  int
	Cycle int
	Class machine.FUClass
	// Unit is the unit index within the class, machine-wide: on clustered
	// machines cluster k owns indices [k·U, (k+1)·U) of every class except
	// the shared XFER bus.
	Unit int
}

// ErrBuffer reports a buffered exposed-datapath deadlock: every ready
// instruction needs an output-buffer slot and every slot is held by a value
// whose last reader is not yet ready. This is the expected failure mode of
// buffer-blind schedule orders (URSA's buf resources reduce the worst-case
// buffer width below capacity first, so its schedules never see it).
var ErrBuffer = errors.New("sched: output buffers deadlocked")

// Schedule is a cycle-by-cycle assignment of DAG nodes to functional units.
type Schedule struct {
	Graph   *dag.Graph
	Machine *machine.Config
	// Cycles is the makespan: the cycle after the last completion.
	Cycles int
	// Placements is ordered by (cycle, class, unit).
	Placements []Placement
	placeOf    map[int]int // node -> index into Placements
}

// PlacementOf returns the placement of a node, or nil for pseudo nodes.
func (s *Schedule) PlacementOf(node int) *Placement {
	if i, ok := s.placeOf[node]; ok {
		return &s.Placements[i]
	}
	return nil
}

// Options tunes the list scheduler.
type Options struct {
	// Priority overrides the default critical-path (height) priority;
	// higher values schedule earlier.
	Priority []int
	// RegLimit, when positive, makes the scheduler register-sensitive for
	// the given class in the [GoH88] style: when the number of live values
	// reaches the limit, only instructions that free a register (last
	// uses) stay eligible; if none is ready the scheduler stalls rather
	// than exceed the limit, and if no such instruction exists at all it
	// gives up the restriction for one pick (no spill mechanism).
	RegLimit int
	RegClass ir.Class
}

// List schedules the DAG onto the machine with greedy list scheduling and
// returns the schedule. By default units are not pipelined — a unit
// executing an instruction of latency L is busy for L cycles — unless the
// machine sets Pipelined, in which case a unit accepts a new instruction
// every cycle while results remain in flight.
func List(g *dag.Graph, m *machine.Config, opts Options) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	prio := opts.Priority
	if prio == nil {
		prio = HeightPriority(g, m)
	}

	n := len(g.Nodes)
	indeg := make([]int, n)
	earliest := make([]int, n) // data-ready cycle
	for _, e := range g.Edges() {
		indeg[e[1]]++
	}

	// Pseudo nodes resolve immediately.
	ready := make([]int, 0, n)
	release := func(node int, at int) {
		for _, s := range g.Succs(node) {
			if at > earliest[s] {
				earliest[s] = at
			}
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if indeg[g.Root] != 0 {
		return nil, fmt.Errorf("sched: root has predecessors")
	}
	release(g.Root, 0)

	sched := &Schedule{Graph: g, Machine: m, placeOf: make(map[int]int)}
	scheduled := 0
	total := 0
	for _, nd := range g.Nodes {
		if !nd.IsPseudo() {
			total++
		}
	}

	// busyUntil[class][unit] = first free cycle, over machine-wide unit
	// indices (clusters replicate their class units side by side).
	busyUntil := make(map[machine.FUClass][]int)
	for _, cl := range m.FUClasses() {
		busyUntil[cl] = make([]int, m.TotalUnits(cl))
	}

	// Exposed-datapath buffer bookkeeping: each non-live-out value holds a
	// slot of its producer's class from issue until its last reader issues
	// (readers free at issue, so a producer may take the slot over in the
	// same cycle only after the reader has been picked).
	var bufLive []int
	var bufUses map[ir.VReg]int // readers not yet issued
	var bufClass map[ir.VReg]machine.FUClass
	if m.BufferDepth > 0 {
		bufLive = make([]int, machine.NumFUClasses)
		bufUses = make(map[ir.VReg]int)
		bufClass = make(map[ir.VReg]machine.FUClass)
		for _, nd := range g.Nodes {
			if nd.Instr == nil {
				continue
			}
			for _, u := range nd.Instr.Uses() {
				bufUses[u]++
			}
		}
	}

	// Register-sensitivity bookkeeping.
	usesLeft := make(map[ir.VReg]int)
	if opts.RegLimit > 0 {
		for _, nd := range g.Nodes {
			if nd.Instr == nil {
				continue
			}
			for _, u := range nd.Instr.Uses() {
				if g.Func.ClassOf(u) == opts.RegClass {
					usesLeft[u]++
				}
			}
		}
	}
	live := 0

	cycle := 0
	guard := 0
	for scheduled < total {
		if guard++; guard > 4*total+1000 {
			return nil, fmt.Errorf("sched: no progress at cycle %d (%d/%d scheduled)", cycle, scheduled, total)
		}
		// Collect issue candidates for this cycle.
		var cands []int
		for _, nd := range ready {
			if g.Nodes[nd].IsPseudo() {
				continue
			}
			if earliest[nd] <= cycle {
				cands = append(cands, nd)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if prio[cands[i]] != prio[cands[j]] {
				return prio[cands[i]] > prio[cands[j]]
			}
			return cands[i] < cands[j]
		})

		issuedAny := false
		issuedThisCycle := 0
		for _, nd := range cands {
			if m.IssueWidth > 0 && issuedThisCycle >= m.IssueWidth {
				break // fetch bound reached; the rest wait for the next cycle
			}
			in := g.Nodes[nd].Instr
			cl := m.ClassFor(in.Kind())
			unit := freeUnitFor(busyUntil[cl], cycle, m, cl, in.Cluster)
			if unit < 0 {
				continue
			}
			if m.BufferDepth > 0 && in.Dst != ir.NoReg && !g.LiveOut[in.Dst] &&
				bufLive[cl] >= m.BufferCap(cl) {
				continue // producer's output buffers are full
			}
			if opts.RegLimit > 0 && g.Func.ClassOf(in.Dst) == opts.RegClass && in.Dst != ir.NoReg {
				delta := regDelta(g, in, opts.RegClass, usesLeft)
				if live+delta > opts.RegLimit && delta > 0 && anyFreeing(g, cands, opts, usesLeft) {
					continue // hold back: a register-freeing choice exists
				}
			}
			lat := m.LatencyOf(in.Op)
			busyUntil[cl][unit] = cycle + m.OccupancyOf(in.Op)
			sched.placeOf[nd] = len(sched.Placements)
			sched.Placements = append(sched.Placements, Placement{
				Node: nd, Cycle: cycle, Class: cl, Unit: unit,
			})
			scheduled++
			issuedAny = true
			issuedThisCycle++
			if opts.RegLimit > 0 {
				live += applyRegDelta(g, in, opts.RegClass, usesLeft)
			}
			if m.BufferDepth > 0 {
				seen := map[ir.VReg]bool{}
				for _, u := range in.Uses() {
					if seen[u] {
						continue
					}
					seen[u] = true
					if bufUses[u]--; bufUses[u] == 0 {
						if pcl, ok := bufClass[u]; ok {
							bufLive[pcl]--
						}
					}
				}
				if in.Dst != ir.NoReg && !g.LiveOut[in.Dst] {
					bufLive[cl]++
					bufClass[in.Dst] = cl
				}
			}
			removeReady(&ready, nd)
			release(nd, cycle+lat)
			if sched.Cycles < cycle+lat {
				sched.Cycles = cycle + lat
			}
		}
		if m.BufferDepth > 0 && !issuedAny && len(cands) > 0 {
			// Candidates exist but none issued. If no unit is still
			// executing and nothing becomes data-ready later, the state can
			// never change: every candidate waits on a buffer slot held by
			// a value whose last reader is itself blocked.
			stuck := true
			for _, busy := range busyUntil {
				for _, until := range busy {
					if until > cycle {
						stuck = false
					}
				}
			}
			for _, nd := range ready {
				if earliest[nd] > cycle {
					stuck = false
				}
			}
			if stuck {
				return nil, fmt.Errorf("%w at cycle %d (%d/%d scheduled)", ErrBuffer, cycle, scheduled, total)
			}
		}
		// Pseudo nodes (root handled above; leaf and any others) release
		// as soon as their predecessors are done.
		for i := 0; i < len(ready); i++ {
			nd := ready[i]
			if g.Nodes[nd].IsPseudo() && earliest[nd] <= cycle+1 {
				removeReady(&ready, nd)
				release(nd, earliest[nd])
				i = -1 // rescan: releases may ready more pseudo nodes
			}
		}
		_ = issuedAny
		cycle++
	}
	sort.Slice(sched.Placements, func(i, j int) bool {
		a, b := sched.Placements[i], sched.Placements[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Unit < b.Unit
	})
	for i, p := range sched.Placements {
		sched.placeOf[p.Node] = i
	}
	return sched, nil
}

// FromPlacements builds a Schedule from explicit placements computed
// outside the list scheduler (e.g. by the exact solver): it orders them
// canonically by (cycle, class, unit), indexes them, and derives the
// makespan from issue cycles and latencies. The caller is responsible
// for legality; Validate checks it.
func FromPlacements(g *dag.Graph, m *machine.Config, ps []Placement) *Schedule {
	s := &Schedule{Graph: g, Machine: m, Placements: ps, placeOf: make(map[int]int)}
	sort.Slice(s.Placements, func(i, j int) bool {
		a, b := s.Placements[i], s.Placements[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Unit < b.Unit
	})
	for i, p := range s.Placements {
		s.placeOf[p.Node] = i
		if end := p.Cycle + m.LatencyOf(g.Nodes[p.Node].Instr.Op); end > s.Cycles {
			s.Cycles = end
		}
	}
	return s
}

func freeUnit(busy []int, cycle int) int {
	for u, until := range busy {
		if until <= cycle {
			return u
		}
	}
	return -1
}

// freeUnitFor finds a free unit the instruction may legally use: on
// clustered machines a non-XFER instruction only sees its own cluster's
// slice of the class; the XFER bus (and every class on unclustered
// machines) is searched whole.
func freeUnitFor(busy []int, cycle int, m *machine.Config, cl machine.FUClass, cluster uint8) int {
	if m.Clusters > 1 && cl != machine.XFER {
		per := m.Units.Get(cl)
		lo := int(cluster) * per
		hi := lo + per
		if hi > len(busy) {
			return -1
		}
		for u := lo; u < hi; u++ {
			if busy[u] <= cycle {
				return u
			}
		}
		return -1
	}
	return freeUnit(busy, cycle)
}

func removeReady(ready *[]int, node int) {
	for i, v := range *ready {
		if v == node {
			*ready = append((*ready)[:i], (*ready)[i+1:]...)
			return
		}
	}
}

// regDelta returns the net change in live values of the class if in issues:
// +1 for a new def, -1 per operand whose last remaining use this is.
func regDelta(g *dag.Graph, in *ir.Instr, c ir.Class, usesLeft map[ir.VReg]int) int {
	d := 0
	if in.Dst != ir.NoReg && g.Func.ClassOf(in.Dst) == c {
		d++
	}
	seen := map[ir.VReg]bool{}
	for _, u := range in.Uses() {
		if g.Func.ClassOf(u) == c && !seen[u] && usesLeft[u] == 1 {
			d--
		}
		seen[u] = true
	}
	return d
}

func applyRegDelta(g *dag.Graph, in *ir.Instr, c ir.Class, usesLeft map[ir.VReg]int) int {
	d := 0
	if in.Dst != ir.NoReg && g.Func.ClassOf(in.Dst) == c {
		d++
	}
	seen := map[ir.VReg]bool{}
	for _, u := range in.Uses() {
		if seen[u] {
			continue
		}
		seen[u] = true
		if g.Func.ClassOf(u) == c {
			usesLeft[u]--
			if usesLeft[u] == 0 {
				d--
			}
		}
	}
	return d
}

func anyFreeing(g *dag.Graph, cands []int, opts Options, usesLeft map[ir.VReg]int) bool {
	for _, nd := range cands {
		in := g.Nodes[nd].Instr
		if regDelta(g, in, opts.RegClass, usesLeft) <= 0 {
			return true
		}
	}
	return false
}

// HeightPriority returns the classic critical-path priority: each node's
// longest latency-weighted distance to the leaf.
func HeightPriority(g *dag.Graph, m *machine.Config) []int {
	topo := g.TopoOrder()
	h := make([]int, len(g.Nodes))
	for i := len(topo) - 1; i >= 0; i-- {
		nd := topo[i]
		for _, s := range g.Succs(nd) {
			lat := 0
			if g.Nodes[s].Instr != nil {
				lat = m.LatencyOf(g.Nodes[s].Instr.Op)
			}
			if h[s]+lat > h[nd] {
				h[nd] = h[s] + lat
			}
		}
	}
	return h
}

// Validate checks that the schedule respects dependences (consumers issue
// no earlier than producer completion) and per-cycle unit limits.
func (s *Schedule) Validate() error {
	g, m := s.Graph, s.Machine
	for _, p := range s.Placements {
		lat := m.LatencyOf(g.Nodes[p.Node].Instr.Op)
		for _, succ := range g.Succs(p.Node) {
			sp := s.PlacementOf(succ)
			if sp == nil {
				continue
			}
			if sp.Cycle < p.Cycle+lat {
				return fmt.Errorf("sched: %s at %d starts before %s completes at %d",
					g.Nodes[succ].Name, sp.Cycle, g.Nodes[p.Node].Name, p.Cycle+lat)
			}
		}
	}
	// Unit occupancy (non-pipelined).
	type slot struct {
		cl   machine.FUClass
		unit int
	}
	busy := make(map[slot]int) // busy until
	for _, p := range s.Placements {
		k := slot{p.Class, p.Unit}
		if until, ok := busy[k]; ok && p.Cycle < until {
			return fmt.Errorf("sched: unit %v.%d double-booked at cycle %d", p.Class, p.Unit, p.Cycle)
		}
		busy[k] = p.Cycle + m.OccupancyOf(g.Nodes[p.Node].Instr.Op)
		if p.Unit >= m.TotalUnits(p.Class) {
			return fmt.Errorf("sched: unit index %d out of range for class %v", p.Unit, p.Class)
		}
		if m.Clusters > 1 && p.Class != machine.XFER {
			in := g.Nodes[p.Node].Instr
			per := m.Units.Get(p.Class)
			if per > 0 && p.Unit/per != int(in.Cluster) {
				return fmt.Errorf("sched: %s (cluster %d) placed on cluster %d's unit %v.%d",
					g.Nodes[p.Node].Name, in.Cluster, p.Unit/per, p.Class, p.Unit)
			}
		}
	}
	// Global issue width.
	if m.IssueWidth > 0 {
		perCycle := map[int]int{}
		for _, p := range s.Placements {
			perCycle[p.Cycle]++
			if perCycle[p.Cycle] > m.IssueWidth {
				return fmt.Errorf("sched: %d instructions issued at cycle %d exceed issue width %d",
					perCycle[p.Cycle], p.Cycle, m.IssueWidth)
			}
		}
	}
	return nil
}

// MaxIssueWidth returns the largest number of instructions issued in any
// single cycle.
func (s *Schedule) MaxIssueWidth() int {
	count := map[int]int{}
	max := 0
	for _, p := range s.Placements {
		count[p.Cycle]++
		if count[p.Cycle] > max {
			max = count[p.Cycle]
		}
	}
	return max
}

// Pressure returns the maximum number of registers of the class this
// schedule needs. A value occupies a register from the end of its defining
// cycle until the issue of its last consumer: reads happen at cycle start
// and writes at cycle end, so a result may take over the register of a
// value its own instruction killed (the same-cycle reuse the paper's
// CanReuse relation models with b = Kill(a)).
func (s *Schedule) Pressure(c ir.Class) int {
	g := s.Graph
	f := g.Func
	type iv struct{ start, end int }
	intervals := map[ir.VReg]iv{}
	for _, p := range s.Placements {
		in := g.Nodes[p.Node].Instr
		if in.Dst != ir.NoReg && f.ClassOf(in.Dst) == c {
			v := intervals[in.Dst]
			v.start = p.Cycle + 1
			v.end = p.Cycle + 1 // extended by uses below
			if g.LiveOut[in.Dst] {
				v.end = s.Cycles
			}
			intervals[in.Dst] = v
		}
	}
	for _, p := range s.Placements {
		in := g.Nodes[p.Node].Instr
		for _, u := range in.Uses() {
			if f.ClassOf(u) != c {
				continue
			}
			v, ok := intervals[u]
			if !ok { // live-in: occupied from cycle 0
				v = iv{0, p.Cycle}
			}
			if p.Cycle > v.end {
				v.end = p.Cycle
			}
			intervals[u] = v
		}
	}
	// Sweep.
	delta := map[int]int{}
	for _, v := range intervals {
		delta[v.start]++
		delta[v.end+1]--
	}
	cycles := make([]int, 0, len(delta))
	for cyc := range delta {
		cycles = append(cycles, cyc)
	}
	sort.Ints(cycles)
	cur, max := 0, 0
	for _, cyc := range cycles {
		cur += delta[cyc]
		if cur > max {
			max = cur
		}
	}
	return max
}
