package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
}
`

func paperGraph(t testing.TB) *dag.Graph {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestListWideMachineReachesCriticalPath(t *testing.T) {
	g := paperGraph(t)
	s, err := List(g, machine.VLIW(8, 32), Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Critical path A-B-E-I-K = 5 cycles at unit latency.
	if s.Cycles != 5 {
		t.Errorf("makespan = %d, want 5", s.Cycles)
	}
	if got := len(s.Placements); got != 11 {
		t.Errorf("%d placements, want 11", got)
	}
}

func TestListSingleUnitSerializes(t *testing.T) {
	g := paperGraph(t)
	s, err := List(g, machine.VLIW(1, 32), Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Cycles != 11 {
		t.Errorf("makespan = %d, want 11 (one instruction per cycle)", s.Cycles)
	}
	if s.MaxIssueWidth() != 1 {
		t.Errorf("issue width = %d, want 1", s.MaxIssueWidth())
	}
}

func TestListRespectsWidth(t *testing.T) {
	g := paperGraph(t)
	for width := 1; width <= 4; width++ {
		s, err := List(g, machine.VLIW(width, 32), Options{})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if got := s.MaxIssueWidth(); got > width {
			t.Errorf("width %d machine issued %d", width, got)
		}
	}
}

func TestListLatencies(t *testing.T) {
	g := paperGraph(t)
	m := machine.VLIW(8, 32)
	m.Latency = machine.RealisticLatency
	s, err := List(g, m, Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Critical path with latencies: A(load,2) B(mul,2) F(mul,2) I(div,4)
	// K(add,1) = 11, or via E(add,1)... the heaviest chain is 11.
	if s.Cycles < 11 {
		t.Errorf("makespan = %d, want >= 11 with realistic latencies", s.Cycles)
	}
}

func TestHeterogeneousClasses(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	b = load A[1]
	c = add a, b
	x = constf 1.5
	y = fmuli x, 2
	store O[0], c
	storef P[0], y
`)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := machine.Heterogeneous(1, 1, 1, 1, 8, 8)
	s, err := List(g, m, Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Only one MEM unit: the four memory ops must be on distinct cycles.
	memCycles := map[int]bool{}
	for _, p := range s.Placements {
		if p.Class == machine.MEM {
			if memCycles[p.Cycle] {
				t.Errorf("two memory ops in cycle %d with one MEM unit", p.Cycle)
			}
			memCycles[p.Cycle] = true
		}
	}
}

func TestRegisterSensitiveSchedulingLowersPressure(t *testing.T) {
	g := paperGraph(t)
	m := machine.VLIW(4, 32)
	plain, err := List(g, m, Options{})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	limited, err := List(g, m, Options{RegLimit: 4, RegClass: ir.ClassInt})
	if err != nil {
		t.Fatalf("limited: %v", err)
	}
	if err := limited.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	pp, lp := plain.Pressure(ir.ClassInt), limited.Pressure(ir.ClassInt)
	if lp > pp {
		t.Errorf("register-sensitive pressure %d > plain %d", lp, pp)
	}
	if lp > 4+1 { // the GoH88-style fallback may exceed by one pick
		t.Errorf("register-sensitive pressure %d, want near 4", lp)
	}
}

func TestPressureMatchesWidthBound(t *testing.T) {
	// Any schedule's pressure is bounded by the measured worst case (5
	// registers for the paper example).
	g := paperGraph(t)
	for width := 1; width <= 8; width++ {
		s, err := List(g, machine.VLIW(width, 32), Options{})
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if p := s.Pressure(ir.ClassInt); p > 5 {
			t.Errorf("width %d: pressure %d exceeds measured worst case 5", width, p)
		}
	}
}

func TestListRandomValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		f := ir.NewFunc("rand")
		b := f.NewBlock("entry")
		var vals []ir.VReg
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
			if len(vals) == 0 || rng.Intn(4) == 0 {
				b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i)})
			} else {
				a := vals[rng.Intn(len(vals))]
				c := vals[rng.Intn(len(vals))]
				b.Append(&ir.Instr{Op: ir.Add, Dst: dst, Args: []ir.VReg{a, c}})
			}
			vals = append(vals, dst)
		}
		g, err := dag.Build(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := machine.VLIW(1+rng.Intn(4), 64)
		if rng.Intn(2) == 0 {
			m.Latency = machine.RealisticLatency
		}
		s, err := List(g, m, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(s.Placements) != n {
			t.Fatalf("trial %d: scheduled %d of %d", trial, len(s.Placements), n)
		}
	}
}

func TestPipelinedUnitsOverlap(t *testing.T) {
	// A chainable workload: 4 independent multiplies on 1 unit. With
	// latency 2 non-pipelined the unit serializes at 2 cycles each; with
	// pipelining it issues every cycle.
	f := ir.MustParse(`
entry:
	a = load A[0]
	m1 = muli a, 2
	m2 = muli a, 3
	m3 = muli a, 4
	m4 = muli a, 5
	store O[0], m1
	store O[1], m2
	store O[2], m3
	store O[3], m4
`)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	nonpipe := machine.VLIW(1, 16)
	nonpipe.Latency = machine.RealisticLatency
	s1, err := List(g, nonpipe, Options{})
	if err != nil {
		t.Fatalf("non-pipelined: %v", err)
	}
	if err := s1.Validate(); err != nil {
		t.Fatalf("non-pipelined validate: %v", err)
	}
	pipe := machine.VLIW(1, 16)
	pipe.Latency = machine.RealisticLatency
	pipe.Pipelined = true
	s2, err := List(g, pipe, Options{})
	if err != nil {
		t.Fatalf("pipelined: %v", err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("pipelined validate: %v", err)
	}
	if s2.Cycles >= s1.Cycles {
		t.Errorf("pipelined makespan %d not shorter than non-pipelined %d", s2.Cycles, s1.Cycles)
	}
	// Dependences still wait full latency: consumer of a load (lat 2)
	// issues no earlier than load cycle+2.
	a := g.DefNode(f.Reg("a"))
	m1 := g.DefNode(f.Reg("m1"))
	pa, pm := s2.PlacementOf(a), s2.PlacementOf(m1)
	if pm.Cycle < pa.Cycle+2 {
		t.Errorf("pipelined schedule violated latency: load@%d mul@%d", pa.Cycle, pm.Cycle)
	}
}
