package exact

import (
	"fmt"
	"math/bits"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

// Makespan computes a schedule of provably minimum length for the DAG on
// the machine: dependences wait the full latency of their source (the
// same rule sched.List and sched.Validate enforce, for every edge kind)
// and no cycle over-subscribes a functional-unit class, with units held
// for OccupancyOf cycles. The list schedule seeds the incumbent; a
// cycle-stepping branch-and-bound over issue subsets then proves it
// optimal or strictly improves it, so when list scheduling is already
// optimal the returned schedule is byte-identical to sched.List's.
func Makespan(g *dag.Graph, m *machine.Config, opts Options) (*sched.Schedule, error) {
	instrs := g.InstrNodes()
	if len(instrs) > NodeLimit {
		return nil, ErrTooLarge
	}
	ub, err := sched.List(g, m, sched.Options{})
	if err != nil {
		return nil, err
	}
	if len(instrs) == 0 {
		return ub, nil
	}
	s, err := newMakespanSearch(g, m, opts, false)
	if err != nil {
		return nil, err
	}
	s.best = ub.Cycles
	if s.rootLB() >= s.best {
		return ub, nil // the list schedule meets a proven lower bound
	}
	rem := make([]int8, s.n)
	if err := s.expand(0, 0, 0, rem); err != nil {
		return nil, err
	}
	if s.bestStart == nil {
		return ub, nil // the search proved the list schedule optimal
	}
	return s.buildSchedule()
}

// minWordsProg computes the minimum word count in the looser program
// model emitted code obeys (see assign's packPhys): a branch may issue
// in the same word as the last non-branch instruction, waiting only for
// its operands to finish, and a store may issue one cycle after a load
// it overwrites rather than after the load completes. Every compiled
// program of the block has at least this many words — spill patching
// only adds instructions, which tightens the projection onto the
// original ones — so this is the sound universal lower bound heuristic
// word counts are compared against. strictWords, the classic-model
// optimum, seeds the incumbent: every strict schedule is
// program-feasible, so the program optimum never exceeds it.
func minWordsProg(g *dag.Graph, m *machine.Config, strictWords int, opts Options) (int, error) {
	s, err := newMakespanSearch(g, m, opts, true)
	if err != nil {
		return 0, err
	}
	if s.n == 0 {
		return s.brLat, nil // branch-only block: the branch issues at cycle 0
	}
	s.best = strictWords
	if s.rootLB() >= s.best {
		return s.best, nil
	}
	rem := make([]int8, s.n)
	if err := s.expand(0, 0, 0, rem); err != nil {
		return 0, err
	}
	return s.best, nil
}

// isWARedge reports whether the DAG edge p→n is a memory anti-dependence
// from a load to a store, the one ordering the program model relaxes to
// "the store issues at least one cycle after the load".
func isWARedge(g *dag.Graph, p, n int) bool {
	pi, ni := g.Nodes[p].Instr, g.Nodes[n].Instr
	if pi == nil || ni == nil || !pi.IsMem() || pi.IsStore() || !ni.IsStore() {
		return false
	}
	k, _ := g.EdgeKindOf(p, n)
	return k == dag.EdgeMem
}

// mKey identifies a search state up to a time shift: which nodes have
// issued plus, for each, its remaining latency (4 bits per node).
type mKey struct {
	issued uint64
	a, b   uint64
}

type makespanSearch struct {
	opts   Options
	budget int
	states int

	g    *dag.Graph
	m    *machine.Config
	n    int
	full uint64

	node    []int             // bit -> node id
	lat     []int             // bit -> latency
	occ     []int             // bit -> unit occupancy
	class   []machine.FUClass // bit -> FU class
	classes []machine.FUClass // deterministic class order
	units   map[machine.FUClass]int
	iw      int     // global issue width; 0 = unbounded (pure VLIW)
	preds   [][]int // bit -> predecessor bits that must have finished
	topo    []int   // bits in topological order
	tail    []int   // bit -> longest latency path to the end, incl. own

	// Program-model relaxation (minWordsProg only). predsIss holds
	// predecessors that need only have issued on an earlier cycle (memory
	// WAR: store after load). Branch nodes are excluded from the search
	// and accounted at terminal states: the branch issues at the latest
	// issue cycle, or later if its operands finish later.
	relax       bool
	predsIss    [][]int
	hasBranch   bool
	brLat       int    // latency of the excluded branch
	brDataPreds uint64 // bits whose results the branch reads

	best      int   // incumbent makespan (strict improvements only)
	bestStart []int // bit -> issue cycle of the improved incumbent
	start     []int // bit -> issue cycle along the current DFS path

	memo map[mKey]int32 // earliest time each state was reached
}

func newMakespanSearch(g *dag.Graph, m *machine.Config, opts Options, relax bool) (*makespanSearch, error) {
	var instrs, branches []int
	for _, id := range g.InstrNodes() {
		if relax && g.Nodes[id].Instr.IsBranch() {
			branches = append(branches, id)
			continue
		}
		instrs = append(instrs, id)
	}
	n := len(instrs)
	bitOf := map[int]int{}
	for i, id := range instrs {
		bitOf[id] = i
	}
	s := &makespanSearch{
		opts:    opts,
		budget:  opts.budget(),
		g:       g,
		m:       m,
		n:       n,
		full:    (uint64(1) << n) - 1,
		node:    instrs,
		lat:     make([]int, n),
		occ:     make([]int, n),
		class:   make([]machine.FUClass, n),
		classes: m.FUClasses(),
		units:   map[machine.FUClass]int{},
		preds:   make([][]int, n),
		tail:    make([]int, n),
		start:   make([]int, n),
		memo:    map[mKey]int32{},

		relax:     relax,
		predsIss:  make([][]int, n),
		hasBranch: len(branches) > 0,
	}
	for _, id := range branches {
		if lt := m.LatencyOf(g.Nodes[id].Instr.Op); lt > s.brLat {
			s.brLat = lt
		}
		for _, p := range g.Preds(id) {
			if j, ok := bitOf[p]; ok {
				if k, _ := g.EdgeKindOf(p, id); k == dag.EdgeData {
					s.brDataPreds |= 1 << j
				}
			}
		}
	}
	s.iw = m.IssueWidth
	for _, cl := range s.classes {
		s.units[cl] = m.Units.Get(cl)
	}
	for i, id := range instrs {
		in := g.Nodes[id].Instr
		s.lat[i] = m.LatencyOf(in.Op)
		s.occ[i] = m.OccupancyOf(in.Op)
		s.class[i] = m.ClassFor(in.Kind())
		if s.lat[i] > 15 {
			return nil, fmt.Errorf("exact: latency %d exceeds state encoding: %w", s.lat[i], ErrTooLarge)
		}
		for _, p := range g.Preds(id) {
			j, ok := bitOf[p]
			if !ok {
				continue
			}
			if relax && isWARedge(g, p, id) {
				s.predsIss[i] = append(s.predsIss[i], j)
			} else {
				s.preds[i] = append(s.preds[i], j)
			}
		}
	}
	for _, id := range instrTopo(g) {
		if i, ok := bitOf[id]; ok {
			s.topo = append(s.topo, i)
		}
	}
	for k := len(s.topo) - 1; k >= 0; k-- {
		i := s.topo[k]
		s.tail[i] = s.lat[i]
		for _, id := range g.Succs(s.node[i]) {
			j, ok := bitOf[id]
			if !ok {
				continue
			}
			d := s.lat[i]
			if relax && isWARedge(g, s.node[i], id) {
				d = 1
			}
			if d+s.tail[j] > s.tail[i] {
				s.tail[i] = d + s.tail[j]
			}
		}
	}
	if s.hasBranch {
		// The branch issues no earlier than any other instruction, and no
		// earlier than its operands finish, so it extends every tail.
		for i := 0; i < n; i++ {
			ex := s.brLat
			if s.brDataPreds&(1<<i) != 0 {
				ex += s.lat[i]
			}
			if ex > s.tail[i] {
				s.tail[i] = ex
			}
		}
	}
	return s, nil
}

// rootLB is the static lower bound: the latency-weighted critical path
// and, per class, the occupancy volume spread over its units.
func (s *makespanSearch) rootLB() int {
	lb := 0
	for i := 0; i < s.n; i++ {
		if len(s.preds[i]) == 0 && s.tail[i] > lb {
			lb = s.tail[i]
		}
	}
	work := map[machine.FUClass]int{}
	for i := 0; i < s.n; i++ {
		work[s.class[i]] += s.occ[i]
	}
	for cl, w := range work {
		if u := s.units[cl]; u > 0 {
			if b := (w + u - 1) / u; b > lb {
				lb = b
			}
		}
	}
	if s.iw > 0 {
		// Every instruction consumes one fetch slot for its issue cycle.
		if b := (s.n + s.iw - 1) / s.iw; b > lb {
			lb = b
		}
	}
	return lb
}

func (s *makespanSearch) key(issued uint64, rem []int8) mKey {
	k := mKey{issued: issued}
	for i := 0; i < s.n && i < 15; i++ {
		k.a |= uint64(rem[i]) << (4 * i)
	}
	for i := 15; i < s.n; i++ {
		k.b |= uint64(rem[i]) << (4 * (i - 15))
	}
	return k
}

// lb bounds the best completion from this state: every in-flight node
// must finish, every unissued node must wait for its predecessors and
// then its tail, and each class must fit its remaining occupancy volume.
func (s *makespanSearch) lb(t int, issued, finished uint64, rem []int8) int {
	lb := t
	est := make([]int, s.n)
	for _, i := range s.topo {
		if issued&(1<<i) != 0 {
			if rem[i] > 0 && t+int(rem[i]) > lb {
				lb = t + int(rem[i])
			}
			continue
		}
		est[i] = t
		for _, p := range s.preds[i] {
			var fin int
			switch {
			case finished&(1<<p) != 0:
				continue // finished at or before t
			case issued&(1<<p) != 0:
				fin = t + int(rem[p])
			default:
				fin = est[p] + s.lat[p]
			}
			if fin > est[i] {
				est[i] = fin
			}
		}
		for _, p := range s.predsIss[i] {
			// WAR: the store issues the cycle after the load; once the
			// load has issued the constraint is already met.
			if issued&(1<<p) == 0 && est[p]+1 > est[i] {
				est[i] = est[p] + 1
			}
		}
		if est[i]+s.tail[i] > lb {
			lb = est[i] + s.tail[i]
		}
	}
	if s.hasBranch {
		// lb runs only at non-terminal states, so some node has yet to
		// issue at ≥ t and the branch must issue no earlier than it.
		if t+s.brLat > lb {
			lb = t + s.brLat
		}
		for i := 0; i < s.n; i++ {
			if s.brDataPreds&(1<<i) == 0 {
				continue
			}
			bit := uint64(1) << i
			var fin int
			switch {
			case issued&bit == 0:
				fin = est[i] + s.lat[i]
			case rem[i] > 0:
				fin = t + int(rem[i])
			default:
				continue
			}
			if fin+s.brLat > lb {
				lb = fin + s.brLat
			}
		}
	}
	work := map[machine.FUClass]int{}
	for i := 0; i < s.n; i++ {
		bit := uint64(1) << i
		switch {
		case issued&bit == 0:
			work[s.class[i]] += s.occ[i]
		case !s.m.Pipelined && rem[i] > 0:
			work[s.class[i]] += int(rem[i])
		}
	}
	for cl, w := range work {
		if u := s.units[cl]; u > 0 {
			if b := t + (w+u-1)/u; b > lb {
				lb = b
			}
		}
	}
	if s.iw > 0 {
		// Unissued instructions still need a fetch slot each.
		left := s.n - bits.OnesCount64(issued)
		if b := t + (left+s.iw-1)/s.iw; b > lb {
			lb = b
		}
	}
	return lb
}

// readyNode reports whether unissued node i may issue at the current
// decision time: finish-type predecessors have completed, and
// issued-earlier (WAR) predecessors issued on a previous cycle.
func (s *makespanSearch) readyNode(i int, issued, finished uint64) bool {
	for _, p := range s.preds[i] {
		if finished&(1<<p) == 0 {
			return false
		}
	}
	for _, p := range s.predsIss[i] {
		if issued&(1<<p) == 0 {
			return false
		}
	}
	return true
}

// expand branches on the set of ready nodes issued at decision time t.
func (s *makespanSearch) expand(t int, issued, finished uint64, rem []int8) error {
	if issued == s.full {
		ms := t
		for i := 0; i < s.n; i++ {
			if f := t + int(rem[i]); rem[i] > 0 && f > ms {
				ms = f
			}
		}
		if s.hasBranch {
			// Place the excluded branch: same word as the latest issue,
			// or when the last of its operands finishes.
			br := 0
			for i := 0; i < s.n; i++ {
				if s.start[i] > br {
					br = s.start[i]
				}
				if s.brDataPreds&(1<<i) != 0 && s.start[i]+s.lat[i] > br {
					br = s.start[i] + s.lat[i]
				}
			}
			if br+s.brLat > ms {
				ms = br + s.brLat
			}
		}
		if ms < s.best {
			s.best = ms
			s.bestStart = append([]int(nil), s.start...)
		}
		return nil
	}
	s.states++
	if s.states > s.budget {
		return ErrBudget
	}
	if s.states&1023 == 0 {
		if err := s.opts.ctx().Err(); err != nil {
			return err
		}
	}
	if s.lb(t, issued, finished, rem) >= s.best {
		return nil
	}
	k := s.key(issued, rem)
	if prev, ok := s.memo[k]; ok && int(prev) <= t {
		return nil // same state reached no later before; futures coincide
	}
	s.memo[k] = int32(t)

	// Ready nodes, grouped by class in deterministic order.
	byClass := map[machine.FUClass][]int{}
	for i := 0; i < s.n; i++ {
		if issued&(1<<i) != 0 {
			continue
		}
		if s.readyNode(i, issued, finished) {
			byClass[s.class[i]] = append(byClass[s.class[i]], i)
		}
	}
	free := map[machine.FUClass]int{}
	for _, cl := range s.classes {
		free[cl] = s.units[cl]
	}
	if !s.m.Pipelined {
		for i := 0; i < s.n; i++ {
			if issued&(1<<i) != 0 && rem[i] > 0 {
				free[s.class[i]]--
			}
		}
	}

	// Enumerate per-class issue subsets (size ≤ free units) and take
	// their cross product. The empty total subset models a deliberate
	// stall and is legal only while something is in flight.
	var subsets [][]uint64
	canIssue := false
	for _, cl := range s.classes {
		cands := byClass[cl]
		if len(cands) == 0 || free[cl] <= 0 {
			subsets = append(subsets, []uint64{0})
			continue
		}
		masks := issueSubsets(cands, free[cl])
		if len(masks) > 1 {
			canIssue = true
		}
		subsets = append(subsets, masks)
	}

	inflight := 0
	minRem := 0
	for i := 0; i < s.n; i++ {
		if issued&(1<<i) != 0 && rem[i] > 0 {
			inflight++
			if minRem == 0 || int(rem[i]) < minRem {
				minRem = int(rem[i])
			}
		}
	}
	if !canIssue {
		// Nothing can issue now: jump to the next completion event.
		if inflight == 0 {
			return fmt.Errorf("exact: deadlock with %d nodes unissued", s.n-bits.OnesCount64(issued))
		}
		return s.step(t, minRem, issued, finished, rem, 0)
	}

	var combine func(ci int, mask uint64) error
	combine = func(ci int, mask uint64) error {
		if s.iw > 0 && bits.OnesCount64(mask) > s.iw {
			return nil // over the fetch bound; larger supersets prune too
		}
		if ci == len(subsets) {
			if mask == 0 {
				if inflight == 0 {
					return nil // idling forever cannot be optimal
				}
				// Stall one cycle; issuing later may still differ.
				return s.step(t, 1, issued, finished, rem, 0)
			}
			return s.step(t, 1, issued, finished, rem, mask)
		}
		for _, sm := range subsets[ci] {
			if err := combine(ci+1, mask|sm); err != nil {
				return err
			}
		}
		return nil
	}
	return combine(0, 0)
}

// step issues the nodes in mask at time t, advances delta cycles, and
// recurses into the resulting state.
func (s *makespanSearch) step(t, delta int, issued, finished uint64, rem []int8, mask uint64) error {
	rem2 := append([]int8(nil), rem...)
	issued2 := issued | mask
	for mm := mask; mm != 0; mm &= mm - 1 {
		i := bits.TrailingZeros64(mm)
		rem2[i] = int8(s.lat[i])
		s.start[i] = t
	}
	if issued2 != s.full && mask != 0 {
		// After issuing, only completions change the ready set (a WAR
		// successor of a just-issued load counts: it is ready one cycle
		// later); if no ready node remains, skip to the next completion.
		remReady := false
		for i := 0; i < s.n && !remReady; i++ {
			if issued2&(1<<i) == 0 && s.readyNode(i, issued2, finished) {
				remReady = true
			}
		}
		if !remReady {
			delta = 0
			for i := 0; i < s.n; i++ {
				if issued2&(1<<i) != 0 && rem2[i] > 0 && (delta == 0 || int(rem2[i]) < delta) {
					delta = int(rem2[i])
				}
			}
		}
	}
	finished2 := finished
	for i := 0; i < s.n; i++ {
		if issued2&(1<<i) == 0 || rem2[i] == 0 {
			continue
		}
		if int(rem2[i]) <= delta {
			rem2[i] = 0
			finished2 |= 1 << i
		} else {
			rem2[i] -= int8(delta)
		}
	}
	return s.expand(t+delta, issued2, finished2, rem2)
}

// issueSubsets returns every subset of cands with at most limit members,
// as bitmasks, in deterministic order (larger subsets first so the
// search reaches full-issue incumbents early).
func issueSubsets(cands []int, limit int) []uint64 {
	var out []uint64
	var rec func(idx int, size int, mask uint64)
	rec = func(idx int, size int, mask uint64) {
		if idx == len(cands) {
			out = append(out, mask)
			return
		}
		if size < limit {
			rec(idx+1, size+1, mask|1<<cands[idx])
		}
		rec(idx+1, size, mask)
	}
	rec(0, 0, 0)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := bits.OnesCount64(out[i]), bits.OnesCount64(out[j])
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// buildSchedule turns the improved incumbent's start times into a
// Schedule, assigning units within each class lowest-free-first.
func (s *makespanSearch) buildSchedule() (*sched.Schedule, error) {
	var ps []sched.Placement
	cycles := 0
	for _, cl := range s.classes {
		var members []int
		for i := 0; i < s.n; i++ {
			if s.class[i] == cl {
				members = append(members, i)
			}
		}
		sort.Slice(members, func(a, b int) bool {
			if s.bestStart[members[a]] != s.bestStart[members[b]] {
				return s.bestStart[members[a]] < s.bestStart[members[b]]
			}
			return members[a] < members[b]
		})
		busy := make([]int, s.units[cl])
		for _, i := range members {
			at := s.bestStart[i]
			unit := -1
			for u := range busy {
				if busy[u] <= at {
					unit = u
					break
				}
			}
			if unit < 0 {
				return nil, fmt.Errorf("exact: no free %v unit at cycle %d", cl, at)
			}
			busy[unit] = at + s.occ[i]
			ps = append(ps, sched.Placement{Node: s.node[i], Cycle: at, Class: cl, Unit: unit})
			if at+s.lat[i] > cycles {
				cycles = at + s.lat[i]
			}
		}
	}
	out := sched.FromPlacements(s.g, s.m, ps)
	if out.Cycles != cycles {
		return nil, fmt.Errorf("exact: rebuilt schedule spans %d cycles, search says %d", out.Cycles, cycles)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("exact: optimal schedule invalid: %w", err)
	}
	return out, nil
}
