// Package exact computes provably optimal baselines for the small
// straight-line blocks the fuzzer generates: the true minimum register
// pressure any legal schedule of a dependence DAG can achieve (per
// register class), and the true minimum resource-feasible schedule
// length under a machine's functional-unit limits. URSA's §4 sequence is
// a heuristic — width by bipartite matching, greedy kill selection,
// greedy reduction — with no bound on its distance from optimal; these
// solvers supply the ground truth the gap oracle and the gap telemetry
// measure against.
//
// Both solvers are exponential in the worst case (minimum-register
// scheduling is NP-complete; the paper's Theorem 2 shows even choosing
// kills exactly is), so they accept at most NodeLimit instruction nodes
// and abandon the search — returning ErrBudget — once a state budget is
// spent. Within those limits results are exact and deterministic: the
// search iterates nodes in ascending order, never depends on map
// iteration order, and prefers the earlier incumbent on ties.
package exact

import (
	"context"
	"errors"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

// NodeLimit is the largest number of instruction nodes the solvers
// accept; beyond it Solve and Makespan return ErrTooLarge. Thirty nodes
// keeps the downset masks in one uint64 word and bounds worst-case
// search well under the fuzzer's budget.
const NodeLimit = 30

// DefaultBudget is the per-solver cap on explored search states when
// Options.Budget is zero. Random fuzzer-sized DAGs stay far below it;
// adversarial wide DAGs hit it and report ErrBudget instead of hanging.
const DefaultBudget = 1 << 20

// Solver refusals. Both are expected outcomes on oversized or
// adversarial inputs, not bugs; Skippable folds them (plus context
// cancellation) into one test.
var (
	ErrTooLarge = errors.New("exact: block exceeds solver node limit")
	ErrBudget   = errors.New("exact: search budget exhausted")
)

// Skippable reports whether err is an expected solver refusal — the
// block is too large, the search ran out of budget, or the caller's
// context ended — rather than a finding.
func Skippable(err error) bool {
	return errors.Is(err, ErrTooLarge) || errors.Is(err, ErrBudget) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Options tunes a solver run.
type Options struct {
	// Ctx, when non-nil, cancels the search cooperatively: the solver
	// polls it periodically and returns its error.
	Ctx context.Context
	// Budget caps explored search states per sub-solver; zero means
	// DefaultBudget.
	Budget int
}

func (o Options) budget() int {
	if o.Budget > 0 {
		return o.Budget
	}
	return DefaultBudget
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Result reports the optimal baselines for one DAG on one machine.
type Result struct {
	// Nodes is the number of instruction nodes solved over.
	Nodes int
	// MinWords is the minimum schedule length (in issue words) any
	// dependence- and resource-respecting schedule achieves in the strict
	// model sched.List and sched.Validate enforce, where every edge waits
	// the full latency of its source.
	MinWords int
	// MinWordsProg is the minimum word count in the looser program model
	// emitted code obeys: a branch may share the final word with the last
	// operation, and a store may issue the cycle after a load it
	// overwrites. Every compiled program of the block — any method,
	// spilled or not — has Words ≥ MinWordsProg, whereas MinWords (≥
	// MinWordsProg) bounds only strict-model schedules.
	MinWordsProg int
	// MinPressure[c] is the minimum number of class-c registers any
	// legal sequential ordering of the block needs — the best case over
	// schedules, where URSA's measured width is the worst case.
	MinPressure [ir.NumClasses]int
	// Schedule realizes MinWords (Schedule.Cycles == MinWords).
	Schedule *sched.Schedule
}

// Solve computes both optimal baselines for the DAG on the machine. The
// graph is not modified.
func Solve(g *dag.Graph, m *machine.Config, opts Options) (*Result, error) {
	s, err := Makespan(g, m, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Nodes: len(g.InstrNodes()), MinWords: s.Cycles, MinWordsProg: s.Cycles, Schedule: s}
	if needsProgModel(g, m) {
		mw, err := minWordsProg(g, m, s.Cycles, opts)
		if err != nil {
			return nil, err
		}
		res.MinWordsProg = mw
	}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		p, err := MinPressure(g, c, opts)
		if err != nil {
			return nil, err
		}
		res.MinPressure[c] = p
	}
	return res, nil
}

// needsProgModel reports whether the program model can beat the strict
// one on this block: it has a branch (which may share the final word),
// or a store anti-ordered after a multi-cycle load (which may issue
// before the load completes). When false, MinWordsProg == MinWords and
// the second search is skipped.
func needsProgModel(g *dag.Graph, m *machine.Config) bool {
	for _, id := range g.InstrNodes() {
		in := g.Nodes[id].Instr
		if in.IsBranch() {
			return true
		}
		if in.IsMem() && !in.IsStore() && m.LatencyOf(in.Op) > 1 {
			for _, sc := range g.Succs(id) {
				if isWARedge(g, id, sc) {
					return true
				}
			}
		}
	}
	return false
}

// instrPreds returns, for every node id, its direct instruction-node
// predecessors (pseudo root/leaf edges dropped).
func instrPreds(g *dag.Graph) map[int][]int {
	preds := map[int][]int{}
	for _, n := range g.InstrNodes() {
		for _, p := range g.Preds(n) {
			if g.Nodes[p].Instr != nil {
				preds[n] = append(preds[n], p)
			}
		}
	}
	return preds
}

// instrTopo returns the instruction nodes in topological order.
func instrTopo(g *dag.Graph) []int {
	var topo []int
	for _, n := range g.TopoOrder() {
		if g.Nodes[n].Instr != nil {
			topo = append(topo, n)
		}
	}
	return topo
}
