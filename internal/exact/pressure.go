package exact

import (
	"math/bits"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/ir"
)

// MinPressure computes the minimum number of class-c registers any legal
// program for the DAG needs. The model is the emitters': execution is a
// sequence of words, each an antichain of ready operations; reads happen
// at issue and writes at the end of the word, so a word's results may
// take over the registers of every value that word (or an earlier one)
// killed — including several at once. Pressure is therefore sampled only
// at word boundaries: the values defined so far that still have a
// pending consumer, plus live-outs. Minimizing over word partitions
// rather than linearizations matters: two independent ops that jointly
// kill their shared operands can issue in one word and land strictly
// below every sequential order's peak
// (testdata/fuzz/minpressure-parallel-reuse.ursafuzz pins an instance).
//
// The search is a memoized DFS over downsets of the DAG restricted to
// the class-relevant nodes (defs and uses of class-c values): the live
// set at a boundary S is a function of S alone, so
//
//	f(S) = min over addable words A of max(live(S∪A), f(S∪A))
//
// is an exact DP. Words are restricted to sets connected under shared
// consumed values: an arbitrary word splits into such components, and
// issuing them as separate words in ascending order of their live-count
// delta keeps every intermediate boundary at or below the larger
// endpoint, so the restriction loses nothing. Children are tried in
// ascending order of their live count, which lets the search skip every
// sibling once one branch achieves that bound — the memo stays exact
// because any skipped child can only tie or lose.
func MinPressure(g *dag.Graph, c ir.Class, opts Options) (int, error) {
	instrs := g.InstrNodes()
	if len(instrs) > NodeLimit {
		return 0, ErrTooLarge
	}
	p := newPressureSearch(g, c, opts)
	if p.relevant == 0 {
		return p.liveIns, nil
	}
	best, err := p.solve(0, p.liveIns)
	if err != nil {
		return 0, err
	}
	return max(best, p.liveIns), nil
}

// pValue is one class-c value: its defining bit (or -1 for a live-in),
// the bits of its consumers, and whether it survives the block.
type pValue struct {
	def     int // bit index of the defining node; -1 for live-ins
	users   uint64
	liveOut bool
}

type pressureSearch struct {
	opts   Options
	budget int
	states int

	// Bit i corresponds to the i-th instruction node (ascending id).
	relevant  uint64   // nodes that define or use class-c values
	predMask  []uint64 // per bit: relevant ancestors (closure ∩ relevant)
	defVal    []int    // per bit: value index defined, or -1
	usesOf    [][]int  // per bit: distinct value indices consumed
	shareMask []uint64 // per bit: nodes consuming a value this one consumes
	vals      []pValue
	liveIns   int // class-c values live on entry (none for pipeline blocks)

	memo map[uint64]int8
}

func newPressureSearch(g *dag.Graph, c ir.Class, opts Options) *pressureSearch {
	instrs := g.InstrNodes()
	n := len(instrs)
	bitOf := map[int]int{}
	for i, id := range instrs {
		bitOf[id] = i
	}
	p := &pressureSearch{
		opts:     opts,
		budget:   opts.budget(),
		predMask: make([]uint64, n),
		defVal:   make([]int, n),
		usesOf:   make([][]int, n),
		memo:     map[uint64]int8{},
	}
	f := g.Func

	// Collect class-c values in deterministic (node, then register) order.
	valOf := map[ir.VReg]int{}
	value := func(v ir.VReg) int {
		i, ok := valOf[v]
		if !ok {
			i = len(p.vals)
			valOf[v] = i
			p.vals = append(p.vals, pValue{def: -1, liveOut: g.LiveOut[v]})
		}
		return i
	}
	for i, id := range instrs {
		in := g.Nodes[id].Instr
		p.defVal[i] = -1
		if in.Dst != ir.NoReg && f.ClassOf(in.Dst) == c {
			vi := value(in.Dst)
			p.vals[vi].def = i
			p.defVal[i] = vi
		}
	}
	for i, id := range instrs {
		in := g.Nodes[id].Instr
		seen := map[ir.VReg]bool{}
		for _, u := range in.Uses() {
			if f.ClassOf(u) != c || seen[u] {
				continue
			}
			seen[u] = true
			vi := value(u)
			p.vals[vi].users |= 1 << i
			p.usesOf[i] = append(p.usesOf[i], vi)
		}
	}
	for _, v := range p.vals {
		if v.def < 0 {
			p.liveIns++
		}
	}
	p.shareMask = make([]uint64, n)
	for _, v := range p.vals {
		for u := v.users; u != 0; u &= u - 1 {
			i := bits.TrailingZeros64(u)
			p.shareMask[i] |= v.users &^ (1 << i)
		}
	}

	// Relevant nodes and the precedence closure among them: a node that
	// neither defines nor uses a class-c value never changes the live
	// set, so only the relevant nodes' relative order matters and the
	// search runs over downsets of the projected poset.
	for i := range p.defVal {
		if p.defVal[i] >= 0 || len(p.usesOf[i]) > 0 {
			p.relevant |= 1 << i
		}
	}
	anc := make([]uint64, n)
	for _, id := range instrTopo(g) {
		i := bitOf[id]
		isBranch := g.Nodes[id].Instr.IsBranch()
		for _, pr := range g.Preds(id) {
			j, ok := bitOf[pr]
			if !ok {
				continue
			}
			// Branch-last sequence edges are control artifacts the
			// emitters may relax (spill patching places the branch in
			// the final word, beside instructions the DAG orders before
			// it), so the lower bound must not assume them. The
			// branch's data and memory dependences remain.
			if isBranch {
				if k, _ := g.EdgeKindOf(pr, id); k == dag.EdgeSeq {
					continue
				}
			}
			anc[i] |= 1<<j | anc[j]
		}
	}
	for i := range p.predMask {
		p.predMask[i] = anc[i] & p.relevant
	}
	return p
}

// delta returns the change in boundary-live values when word A (an
// addable set) executes after downset S: +1 per class-c def that still
// has a pending consumer or survives the block, −1 per consumed value
// whose remaining consumers all sit in A (unless it is live-out). A def
// nobody reads never crosses a boundary — its register is reusable by
// the very next word — so it contributes nothing.
func (p *pressureSearch) delta(S, A uint64) int {
	d := 0
	after := S | A
	for a := A; a != 0; a &= a - 1 {
		x := bits.TrailingZeros64(a)
		if vi := p.defVal[x]; vi >= 0 && (p.vals[vi].users != 0 || p.vals[vi].liveOut) {
			d++
		}
		for _, vi := range p.usesOf[x] {
			v := &p.vals[vi]
			if !v.liveOut && v.users&^after == 0 && v.users&a&^(1<<x) == 0 {
				d-- // x is the highest-bit consumer in A: count the kill once
			}
		}
	}
	return d
}

// solve returns the minimum achievable peak boundary-live count over all
// word-partitioned completions of downset S, given live = live(S).
func (p *pressureSearch) solve(S uint64, live int) (int, error) {
	if S == p.relevant {
		return 0, nil
	}
	if v, ok := p.memo[S]; ok {
		return int(v), nil
	}
	p.states++
	if p.states > p.budget {
		return 0, ErrBudget
	}
	if p.states&1023 == 0 {
		if err := p.opts.ctx().Err(); err != nil {
			return 0, err
		}
	}

	var addable uint64
	for rest := p.relevant &^ S; rest != 0; rest &= rest - 1 {
		x := bits.TrailingZeros64(rest)
		if S&p.predMask[x] == p.predMask[x] {
			addable |= 1 << x
		}
	}

	// Candidate words: the subsets of the addable set connected under
	// shared consumed values, each enumerated once by anchoring at its
	// lowest member and extending only upward through the sharing graph
	// (with the visited-extension exclusion that makes the walk
	// duplicate-free). Every enumerated word counts against the state
	// budget, so dense sharing degrades to ErrBudget, never to a hang.
	type child struct {
		A    uint64
		live int
	}
	var cs []child
	var grow func(A, ext, forb uint64) error
	grow = func(A, ext, forb uint64) error {
		p.states++
		if p.states > p.budget {
			return ErrBudget
		}
		cs = append(cs, child{A, live + p.delta(S, A)})
		for e := ext; e != 0; {
			x := bits.TrailingZeros64(e)
			e &^= 1 << x
			next := (e | p.shareMask[x]&addable) &^ (A | forb | 1<<x)
			if err := grow(A|1<<x, next, forb); err != nil {
				return err
			}
			forb |= 1 << x
		}
		return nil
	}
	for rest := addable; rest != 0; rest &= rest - 1 {
		s := bits.TrailingZeros64(rest)
		above := ^uint64(0) << (s + 1)
		if err := grow(1<<s, p.shareMask[s]&addable&above, ^above); err != nil {
			return 0, err
		}
	}

	sort.Slice(cs, func(i, j int) bool {
		if cs[i].live != cs[j].live {
			return cs[i].live < cs[j].live
		}
		return cs[i].A < cs[j].A
	})
	best := int(^uint(0) >> 1)
	for _, ch := range cs {
		if ch.live >= best {
			break // sorted ascending: no remaining child can improve
		}
		sub, err := p.solve(S|ch.A, ch.live)
		if err != nil {
			return 0, err
		}
		if v := max(ch.live, sub); v < best {
			best = v
		}
	}
	p.memo[S] = int8(best)
	return best, nil
}
