package exact_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"ursa/internal/dag"
	"ursa/internal/exact"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

func buildGraph(t *testing.T, src string) *dag.Graph {
	t.Helper()
	f := ir.MustParse(src)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("dag.Build: %v", err)
	}
	return g
}

// randProg emits a random straight-line integer program: one load and
// n-1 arithmetic ops over randomly chosen earlier results.
func randProg(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("func brute {\nentry:\n")
	b.WriteString("\tr0 = load V[0]\n")
	ops := []string{"add", "mul", "div"}
	for i := 1; i < n; i++ {
		a := rng.Intn(i)
		c := rng.Intn(i)
		fmt.Fprintf(&b, "\tr%d = %s r%d, r%d\n", i, ops[rng.Intn(len(ops))], a, c)
	}
	b.WriteString("}\n")
	return b.String()
}

// bruteOrders enumerates every topological order of the instruction
// nodes and yields the earliest-start width-1 schedule of each. On a
// single non-pipelined unit every feasible schedule is such an order, so
// minimizing over them is exact.
func bruteOrders(g *dag.Graph, m *machine.Config, visit func(s *sched.Schedule)) {
	instrs := g.InstrNodes()
	idx := map[int]int{}
	for i, id := range instrs {
		idx[id] = i
	}
	n := len(instrs)
	preds := make([][]int, n)
	for i, id := range instrs {
		for _, p := range g.Preds(id) {
			if j, ok := idx[p]; ok {
				preds[i] = append(preds[i], j)
			}
		}
	}
	order := make([]int, 0, n)
	var rec func(done uint64)
	rec = func(done uint64) {
		if len(order) == n {
			// Earliest-start simulation on one unit.
			finish := make([]int, n)
			var ps []sched.Placement
			free := 0
			for _, i := range order {
				at := free
				for _, p := range preds[i] {
					if finish[p] > at {
						at = finish[p]
					}
				}
				lat := m.LatencyOf(g.Nodes[instrs[i]].Instr.Op)
				finish[i] = at + lat
				free = at + m.OccupancyOf(g.Nodes[instrs[i]].Instr.Op)
				ps = append(ps, sched.Placement{Node: instrs[i], Cycle: at, Class: m.ClassFor(g.Nodes[instrs[i]].Instr.Kind())})
			}
			visit(sched.FromPlacements(g, m, ps))
			return
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			ok := true
			for _, p := range preds[i] {
				if done&(1<<p) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			order = append(order, i)
			rec(done | 1<<i)
			order = order[:len(order)-1]
		}
	}
	rec(0)
}

// brutePressure enumerates every word partition of the DAG — chains of
// downsets whose steps are arbitrary nonempty subsets of the ready
// antichain, with none of the solver's connected-word restriction — and
// returns the minimum peak boundary-live count for class-c values. It
// mirrors MinPressure's program model naively, so agreement validates
// both the DP and the restriction.
func brutePressure(g *dag.Graph, c ir.Class) int {
	f := g.Func
	instrs := g.InstrNodes()
	n := len(instrs)
	idx := map[int]int{}
	for i, id := range instrs {
		idx[id] = i
	}
	defBit := map[ir.VReg]int{}
	users := map[ir.VReg]uint64{}
	for i, id := range instrs {
		in := g.Nodes[id].Instr
		if in.Dst != ir.NoReg && f.ClassOf(in.Dst) == c {
			defBit[in.Dst] = i
		}
		for _, u := range in.Uses() {
			if f.ClassOf(u) == c {
				users[u] |= 1 << i
			}
		}
	}
	preds := make([]uint64, n)
	for i, id := range instrs {
		for _, p := range g.Preds(id) {
			if j, ok := idx[p]; ok {
				preds[i] |= 1 << j
			}
		}
	}
	live := func(S uint64) int {
		l := 0
		for v, d := range defBit {
			if S&(1<<d) != 0 && (users[v]&^S != 0 || g.LiveOut[v]) {
				l++
			}
		}
		return l
	}
	full := uint64(1)<<n - 1
	memo := map[uint64]int{}
	var rec func(S uint64) int
	rec = func(S uint64) int {
		if S == full {
			return 0
		}
		if v, ok := memo[S]; ok {
			return v
		}
		var ready uint64
		for i := 0; i < n; i++ {
			if S&(1<<i) == 0 && S&preds[i] == preds[i] {
				ready |= 1 << i
			}
		}
		best := int(^uint(0) >> 1)
		for A := ready; A != 0; A = (A - 1) & ready {
			nS := S | A
			if v := max(live(nS), rec(nS)); v < best {
				best = v
			}
		}
		memo[S] = best
		return best
	}
	return rec(0)
}

// TestBruteForceTiny cross-checks both solvers against exhaustive
// enumeration: topological orders on a width-1 machine for the makespan
// (where every feasible schedule is such an order) and unrestricted word
// partitions for the pressure bound.
func TestBruteForceTiny(t *testing.T) {
	m := machine.VLIW(1, 8)
	m.Latency = machine.RealisticLatency
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		g := buildGraph(t, randProg(rng, 3+rng.Intn(5)))
		wantWords := int(^uint(0) >> 1)
		bruteOrders(g, m, func(s *sched.Schedule) {
			if s.Cycles < wantWords {
				wantWords = s.Cycles
			}
		})
		wantPressure := brutePressure(g, ir.ClassInt)
		res, err := exact.Solve(g, m, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if res.MinWords != wantWords {
			t.Errorf("trial %d: MinWords = %d, brute force says %d", trial, res.MinWords, wantWords)
		}
		if res.MinPressure[ir.ClassInt] != wantPressure {
			t.Errorf("trial %d: MinPressure = %d, brute force says %d", trial, res.MinPressure[ir.ClassInt], wantPressure)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("trial %d: optimal schedule invalid: %v", trial, err)
		}
		if res.Schedule.Cycles != res.MinWords {
			t.Errorf("trial %d: schedule spans %d cycles, MinWords = %d", trial, res.Schedule.Cycles, res.MinWords)
		}
	}
}

// TestResidueOptimal pins a hand-checkable instance: three divisions
// (latency 4) behind one load (latency 2) on a 2-wide machine. Two divs
// run in parallel after the load, the third must wait: 2+4+4 = 10.
func TestResidueOptimal(t *testing.T) {
	g := buildGraph(t, `
func residue {
entry:
	v = load V[0]
	a = div v, v
	b = div v, v
	c = div v, v
	store Z[0], a
	store Z[1], b
	store Z[2], c
}`)
	m := machine.VLIW(2, 8)
	m.Latency = machine.RealisticLatency
	res, err := exact.Solve(g, m, exact.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// load 0-2, two divs 2-6, third div 6-10 alongside the (ordered)
	// stores: a at 6-8, b at 8-10, c at 10-12.
	if res.MinWords != 12 {
		t.Errorf("MinWords = %d, want 12", res.MinWords)
	}
	ub, err := sched.List(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if res.MinWords > ub.Cycles {
		t.Errorf("exact %d exceeds list schedule %d", res.MinWords, ub.Cycles)
	}
}

// TestDeterministic runs the solver repeatedly on the same inputs and
// requires identical results, including the placements of the schedule.
func TestDeterministic(t *testing.T) {
	m := machine.VLIW(2, 6)
	m.Latency = machine.RealisticLatency
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		src := randProg(rng, 4+rng.Intn(10))
		var first *exact.Result
		for run := 0; run < 3; run++ {
			res, err := exact.Solve(buildGraph(t, src), m, exact.Options{})
			if err != nil {
				t.Fatalf("trial %d run %d: %v", trial, run, err)
			}
			if first == nil {
				first = res
				continue
			}
			if res.MinWords != first.MinWords || res.MinPressure != first.MinPressure {
				t.Fatalf("trial %d run %d: bounds changed: %+v vs %+v", trial, run, res, first)
			}
			if !reflect.DeepEqual(res.Schedule.Placements, first.Schedule.Placements) {
				t.Fatalf("trial %d run %d: placements changed", trial, run)
			}
		}
	}
}

// adversarialGraph is the solver's worst case at the node limit: one
// load feeding 29 mutually independent divisions. The search space over
// issue subsets of up to 29 ready divisions is astronomically large, and
// the static lower bound (occupancy volume 59) sits below what any
// schedule achieves (60 division cycles cannot pair perfectly after the
// load), so the search cannot shortcut.
func adversarialGraph(t *testing.T) *dag.Graph {
	var b strings.Builder
	b.WriteString("func adversarial {\nentry:\n\tv = load V[0]\n")
	for i := 0; i < 29; i++ {
		fmt.Fprintf(&b, "\td%d = div v, v\n", i)
	}
	b.WriteString("}\n")
	return buildGraph(t, b.String())
}

func adversarialMachine() *machine.Config {
	m := machine.VLIW(2, 64)
	m.Latency = machine.RealisticLatency
	return m
}

// TestCtxCancelAdversarial is the timeout guard the CI fuzz job relies
// on: on an adversarial 30-node case the solver must honor
// pipeline.Options.Ctx cancellation promptly instead of searching for
// hours.
func TestCtxCancelAdversarial(t *testing.T) {
	g := adversarialGraph(t)
	m := adversarialMachine()

	// Pre-canceled context: the solver must give up almost immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	begin := time.Now()
	_, err := exact.Makespan(g, m, exact.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Makespan with canceled ctx: err = %v, want context.Canceled", err)
	}
	if d := time.Since(begin); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if !exact.Skippable(err) {
		t.Fatalf("cancellation should be a skippable refusal, got %v", err)
	}

	// Deadline mid-search: same property under a running timer.
	dctx, dcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer dcancel()
	begin = time.Now()
	_, err = exact.Makespan(g, m, exact.Options{Ctx: dctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Makespan with deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(begin); d > 5*time.Second {
		t.Fatalf("deadline honored after %v", d)
	}
}

// TestBudgetExhaustion: the same adversarial case under a tiny state
// budget reports ErrBudget rather than searching on.
func TestBudgetExhaustion(t *testing.T) {
	g := adversarialGraph(t)
	_, err := exact.Makespan(g, adversarialMachine(), exact.Options{Budget: 2000})
	if !errors.Is(err, exact.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !exact.Skippable(err) {
		t.Fatal("budget exhaustion must be skippable")
	}
}

// TestNodeLimit: blocks beyond NodeLimit are refused up front.
func TestNodeLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("func big {\nentry:\n\tv = load V[0]\n")
	for i := 0; i <= exact.NodeLimit; i++ {
		fmt.Fprintf(&b, "\tx%d = addi v, %d\n", i, i)
	}
	b.WriteString("}\n")
	g := buildGraph(t, b.String())
	if _, err := exact.Solve(g, machine.VLIW(2, 64), exact.Options{}); !errors.Is(err, exact.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestIssueWidthBound pins the fetch-bound case: six independent loads on
// a machine with units to spare but a 2-instruction issue width must take
// ceil(6/2) = 3 words — the solver may not pack wider than the front end
// can fetch.
func TestIssueWidthBound(t *testing.T) {
	g := buildGraph(t, `
func fetchbound {
entry:
	a = load V[0]
	b = load V[1]
	c = load V[2]
	d = load V[3]
	e = load V[4]
	f = load V[5]
}
`)
	m := machine.VLIW(8, 16)
	m.IssueWidth = 2
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s, err := exact.Makespan(g, m, exact.Options{})
	if err != nil {
		t.Fatalf("Makespan: %v", err)
	}
	if s.Cycles != 3 {
		t.Errorf("Cycles = %d, want 3 (6 loads through a 2-wide front end)", s.Cycles)
	}
	if w := s.MaxIssueWidth(); w > 2 {
		t.Errorf("schedule issues %d per cycle, fetch bound is 2", w)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}
