package ir

import "fmt"

// Verify checks structural well-formedness of a function: operand counts and
// classes match opcode signatures, branch targets exist, registers are in
// range, and branches only appear as block terminators.
func Verify(f *Func) error {
	labels := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if labels[b.Label] {
			return fmt.Errorf("func %s: duplicate label %q", f.Name, b.Label)
		}
		labels[b.Label] = true
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if err := verifyInstr(f, b, in); err != nil {
				return err
			}
			if in.IsBranch() && i != len(b.Instrs)-1 {
				return fmt.Errorf("func %s block %s: branch %s not at block end",
					f.Name, b.Label, f.InstrString(in))
			}
			switch in.Op {
			case Br, BrTrue, BrFalse:
				if !labels[in.Sym] {
					return fmt.Errorf("func %s block %s: unknown branch target %q",
						f.Name, b.Label, in.Sym)
				}
			}
		}
	}
	return nil
}

func verifyInstr(f *Func, b *Block, in *Instr) error {
	info := Info(in.Op)
	ctx := func() string { return fmt.Sprintf("func %s block %s: %s", f.Name, b.Label, f.InstrString(in)) }

	wantArgs := info.NArgs
	if in.Op == Ret {
		if len(in.Args) > 1 {
			return fmt.Errorf("%s: ret takes at most one operand", ctx())
		}
	} else if len(in.Args) != wantArgs {
		return fmt.Errorf("%s: want %d operands, got %d", ctx(), wantArgs, len(in.Args))
	}
	if info.HasDst && in.Dst == NoReg {
		return fmt.Errorf("%s: missing destination", ctx())
	}
	if !info.HasDst && in.Dst != NoReg {
		return fmt.Errorf("%s: unexpected destination", ctx())
	}
	check := func(v VReg, what string) error {
		if v <= 0 || int(v) >= f.NumRegs() {
			return fmt.Errorf("%s: %s register %d out of range", ctx(), what, v)
		}
		return nil
	}
	if in.Dst != NoReg {
		if err := check(in.Dst, "destination"); err != nil {
			return err
		}
		// Spill ops inherit the class of the spilled value; Mov and Copy
		// inherit their operand's class; everything else is fixed by the
		// opcode.
		if in.Op != SpillLoad && in.Op != Mov && in.Op != Copy && f.ClassOf(in.Dst) != info.DstClass {
			return fmt.Errorf("%s: destination class %s, want %s",
				ctx(), f.ClassOf(in.Dst), info.DstClass)
		}
	}
	for _, a := range in.Args {
		if err := check(a, "operand"); err != nil {
			return err
		}
	}
	if in.Index != NoReg {
		if err := check(in.Index, "index"); err != nil {
			return err
		}
		if f.ClassOf(in.Index) != ClassInt {
			return fmt.Errorf("%s: index register must be integer", ctx())
		}
	}
	if !in.IsMem() && in.Index != NoReg {
		return fmt.Errorf("%s: index register on non-memory op", ctx())
	}
	if in.Op == Copy && len(in.Args) == 1 && f.ClassOf(in.Dst) != f.ClassOf(in.Args[0]) {
		return fmt.Errorf("%s: copy source class %s, destination class %s",
			ctx(), f.ClassOf(in.Args[0]), f.ClassOf(in.Dst))
	}
	for _, a := range in.Args {
		if in.Op == Mov || in.Op == Copy || in.Op == SpillStore || in.Op == Ret {
			continue // class-polymorphic
		}
		if f.ClassOf(a) != info.ArgClass {
			return fmt.Errorf("%s: operand %s class %s, want %s",
				ctx(), f.NameOf(a), f.ClassOf(a), info.ArgClass)
		}
	}
	return nil
}

// VerifySSA checks that every register in the block is defined at most once
// and defined before use (straight-line single-assignment form, the input
// discipline required by DAG construction). Registers never defined in the
// block are treated as live-in.
func VerifySSA(b *Block) error {
	f := b.Func
	defined := make(map[VReg]bool)
	definedInBlock := make(map[VReg]bool)
	for _, in := range b.Instrs {
		if in.Dst != NoReg {
			definedInBlock[in.Dst] = true
		}
	}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			if definedInBlock[u] && !defined[u] {
				return fmt.Errorf("block %s: %s uses %s before its definition",
					b.Label, f.InstrString(in), f.NameOf(u))
			}
		}
		if in.Dst != NoReg {
			if defined[in.Dst] {
				return fmt.Errorf("block %s: %s redefines %s",
					b.Label, f.InstrString(in), f.NameOf(in.Dst))
			}
			defined[in.Dst] = true
		}
	}
	return nil
}
