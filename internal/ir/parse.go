package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR format produced by Func.String:
//
//	func name {
//	label:
//		dst = op args...
//		store A[3], x
//		br label
//	}
//
// Lines beginning with ';' or '#' are comments. Register classes are inferred
// from opcodes (e.g. the destination of fadd is floating point). Memory
// operands are written Sym[off], Sym[idx] or Sym[idx+off].
func Parse(src string) (*Func, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	return p.parse()
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) *Func {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	lines []string
	ln    int
	f     *Func
	blk   *Block
}

// reg resolves (or allocates) a named register, rejecting names that would
// break the textual format.
func (p *parser) reg(name string, class Class) (VReg, error) {
	if !validName(name) {
		return NoReg, p.errf("invalid register name %q", name)
	}
	return p.f.RegOrNew(name, class), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.ln+1, fmt.Sprintf(format, args...))
}

func (p *parser) parse() (*Func, error) {
	for ; p.ln < len(p.lines); p.ln++ {
		line := stripComment(p.lines[p.ln])
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if p.f != nil {
				return nil, p.errf("nested func")
			}
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "func ")), "{"))
			if !validName(name) {
				return nil, p.errf("invalid function name %q", name)
			}
			p.f = NewFunc(name)
		case line == "}":
			if p.f == nil {
				return nil, p.errf("unexpected }")
			}
		case strings.HasSuffix(line, ":"):
			if p.f == nil {
				p.f = NewFunc("main")
			}
			label := strings.TrimSuffix(line, ":")
			if !validName(label) {
				return nil, p.errf("invalid block label %q", label)
			}
			p.blk = p.f.NewBlock(label)
		default:
			if p.f == nil {
				p.f = NewFunc("main")
			}
			if p.blk == nil {
				p.blk = p.f.NewBlock("entry")
			}
			in, err := p.parseInstr(line)
			if err != nil {
				return nil, err
			}
			p.blk.Append(in)
		}
	}
	if p.f == nil {
		return nil, fmt.Errorf("empty input")
	}
	if err := Verify(p.f); err != nil {
		return nil, err
	}
	return p.f, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (p *parser) parseInstr(line string) (*Instr, error) {
	var dstName string
	if i := strings.Index(line, "="); i >= 0 {
		dstName = strings.TrimSpace(line[:i])
		line = strings.TrimSpace(line[i+1:])
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, p.errf("missing opcode")
	}
	op, ok := OpByName(fields[0])
	if !ok {
		return nil, p.errf("unknown opcode %q", fields[0])
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	operands := splitOperands(rest)
	info := Info(op)

	in := &Instr{Op: op}
	switch op {
	case ConstI:
		if len(operands) != 1 {
			return nil, p.errf("const wants 1 immediate")
		}
		v, err := strconv.ParseInt(operands[0], 0, 64)
		if err != nil {
			return nil, p.errf("bad immediate %q", operands[0])
		}
		in.Imm = v
	case ConstF:
		if len(operands) != 1 {
			return nil, p.errf("constf wants 1 immediate")
		}
		v, err := strconv.ParseFloat(operands[0], 64)
		if err != nil {
			return nil, p.errf("bad float immediate %q", operands[0])
		}
		in.FImm = v
	case Load, LoadF, SpillLoad:
		if len(operands) != 1 {
			return nil, p.errf("%s wants 1 memory operand", info.Name)
		}
		if err := p.parseMem(in, operands[0]); err != nil {
			return nil, err
		}
	case Store, StoreF, SpillStore:
		if len(operands) != 2 {
			return nil, p.errf("%s wants memory, value", info.Name)
		}
		if err := p.parseMem(in, operands[0]); err != nil {
			return nil, err
		}
		a, err := p.reg(operands[1], info.ArgClass)
		if err != nil {
			return nil, err
		}
		in.Args = []VReg{a}
	case Br:
		if len(operands) != 1 {
			return nil, p.errf("br wants 1 label")
		}
		if !validName(operands[0]) {
			return nil, p.errf("invalid label %q", operands[0])
		}
		in.Sym = operands[0]
	case BrTrue, BrFalse:
		if len(operands) != 2 {
			return nil, p.errf("%s wants reg, label", info.Name)
		}
		a, err := p.reg(operands[0], ClassInt)
		if err != nil {
			return nil, err
		}
		if !validName(operands[1]) {
			return nil, p.errf("invalid label %q", operands[1])
		}
		in.Args = []VReg{a}
		in.Sym = operands[1]
	case Ret:
		if len(operands) > 1 {
			return nil, p.errf("ret wants at most 1 operand")
		}
		for _, o := range operands {
			a, err := p.reg(o, ClassInt)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, a)
		}
	default:
		want := info.NArgs
		if info.ImmOperand {
			want++
		}
		if len(operands) != want {
			return nil, p.errf("%s wants %d operands, got %d", info.Name, want, len(operands))
		}
		regOps := operands
		if info.ImmOperand {
			last := operands[len(operands)-1]
			regOps = operands[:len(operands)-1]
			if info.DstClass == ClassFP {
				v, err := strconv.ParseFloat(last, 64)
				if err != nil {
					return nil, p.errf("bad float immediate %q", last)
				}
				in.FImm = v
			} else {
				v, err := strconv.ParseInt(last, 0, 64)
				if err != nil {
					return nil, p.errf("bad immediate %q", last)
				}
				in.Imm = v
			}
		}
		for _, o := range regOps {
			a, err := p.reg(o, info.ArgClass)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, a)
		}
	}

	if info.HasDst {
		if dstName == "" {
			return nil, p.errf("%s requires a destination", info.Name)
		}
		d, err := p.reg(dstName, info.DstClass)
		if err != nil {
			return nil, err
		}
		in.Dst = d
	} else if dstName != "" {
		return nil, p.errf("%s does not produce a value", info.Name)
	}
	return in, nil
}

// parseMem parses Sym[off] | Sym[idx] | Sym[idx+off].
func (p *parser) parseMem(in *Instr, s string) error {
	lb := strings.Index(s, "[")
	if lb < 0 || !strings.HasSuffix(s, "]") {
		return p.errf("bad memory operand %q (want Sym[expr])", s)
	}
	in.Sym = s[:lb]
	if !validName(in.Sym) {
		return p.errf("invalid memory symbol %q", in.Sym)
	}
	expr := s[lb+1 : len(s)-1]
	if expr == "" {
		return nil
	}
	idx, off := expr, ""
	if i := strings.Index(expr, "+"); i >= 0 {
		idx, off = expr[:i], expr[i+1:]
	}
	if n, err := strconv.ParseInt(idx, 0, 64); err == nil {
		if off != "" {
			return p.errf("bad memory operand %q", s)
		}
		in.Off = n
		return nil
	}
	iv, err := p.reg(idx, ClassInt)
	if err != nil {
		return err
	}
	in.Index = iv
	if off != "" {
		n, err := strconv.ParseInt(off, 0, 64)
		if err != nil {
			return p.errf("bad memory offset %q", off)
		}
		in.Off = n
	}
	return nil
}

// validName reports whether s can safely serve as a register, symbol, or
// label name in the textual format: an identifier of letters, digits,
// underscores and dots (optionally starting with '$'), and not a structural
// keyword. Anything else would not survive a print/parse round trip.
func validName(s string) bool {
	if s == "" || s == "func" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == '$' && i == 0:
		case i > 0 && (r >= '0' && r <= '9' || r == '.'):
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
