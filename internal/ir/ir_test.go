package ir

import (
	"math/rand"
	"strings"
	"testing"
)

// newTestRand returns a deterministic PRNG for fuzz-style helpers.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

const exampleSrc = `
func paper {
entry:
	v = load V[0]
	w = mul v, two      ; B
	x = mul v, three    ; C
	y = add v, five     ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = mul y, two     ; G
	t4 = div y, three   ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
	store Z[0], z
}
`

func parseExample(t *testing.T) *Func {
	t.Helper()
	f, err := Parse(exampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParsePrintRoundTrip(t *testing.T) {
	f := parseExample(t)
	text := f.String()
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if got := f2.String(); got != text {
		t.Errorf("round trip mismatch:\nfirst:\n%s\nsecond:\n%s", text, got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown op", "x = frobnicate a, b", "unknown opcode"},
		{"arity", "x = add a", "wants 2 operands"},
		{"missing dst", "add a, b", "requires a destination"},
		{"spurious dst", "x = store A[0], y", "does not produce"},
		{"bad mem", "x = load A", "bad memory operand"},
		{"bad branch", "entry:\n\tbr nowhere", "unknown branch target"},
		{"branch midblock", "entry:\n\tbr entry\n\tx = const 1", "not at block end"},
		{"empty", "   \n\t\n", "empty input"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
			}
		})
	}
}

func TestClassInference(t *testing.T) {
	f := MustParse(`
entry:
	a = constf 1.5
	b = constf 2.5
	c = fadd a, b
	i = ftoi c
	j = add i, i
`)
	if got := f.ClassOf(f.Reg("c")); got != ClassFP {
		t.Errorf("class of c = %v, want fp", got)
	}
	if got := f.ClassOf(f.Reg("i")); got != ClassInt {
		t.Errorf("class of i = %v, want int", got)
	}
	if got := f.ClassOf(f.Reg("j")); got != ClassInt {
		t.Errorf("class of j = %v, want int", got)
	}
}

func TestClassMismatchRejected(t *testing.T) {
	_, err := Parse(`
entry:
	a = const 1
	c = fadd a, a
`)
	if err == nil || !strings.Contains(err.Error(), "class") {
		t.Fatalf("expected class error, got %v", err)
	}
}

func TestInterpStraightLine(t *testing.T) {
	f := parseExample(t)
	st := NewState()
	st.SetInt(f.Reg("two"), 2)
	st.SetInt(f.Reg("three"), 3)
	st.SetInt(f.Reg("five"), 5)
	st.StoreInt("V", 0, 7)
	if _, err := st.Run(f, 1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// v=7 w=14 x=21 y=12 t1=35 t2=294 t3=24 t4=4 t5=0 t6=28 z=28
	if got := st.Mem[Addr{"Z", 0}].Int(); got != 28 {
		t.Errorf("Z[0] = %d, want 28", got)
	}
	if got := st.Regs[f.Reg("t2")].Int(); got != 294 {
		t.Errorf("t2 = %d, want 294", got)
	}
}

func TestInterpControlFlow(t *testing.T) {
	f := MustParse(`
func sum {
entry:
	i = const 0
	acc = const 0
	n = const 5
	br loop
loop:
	x = load A[i]
	acc = add acc, x
	i2 = add i, one
	i = mov i2
	c = cmplt i, n
	brt c, loop
done:
	store OUT[0], acc
	ret acc
}
`)
	st := NewState()
	st.SetInt(f.Reg("one"), 1)
	for i := int64(0); i < 5; i++ {
		st.StoreInt("A", i, 10+i)
	}
	ret, err := st.Run(f, 10000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ret.Int() != 60 {
		t.Errorf("ret = %d, want 60", ret.Int())
	}
	if got := st.Mem[Addr{"OUT", 0}].Int(); got != 60 {
		t.Errorf("OUT[0] = %d, want 60", got)
	}
}

func TestInterpStepLimit(t *testing.T) {
	f := MustParse("func spin {\nentry:\n\tbr entry\n}")
	st := NewState()
	if _, err := st.Run(f, 10); err != ErrStepLimit {
		t.Fatalf("Run = %v, want ErrStepLimit", err)
	}
}

func TestInterpDivByZeroConvention(t *testing.T) {
	f := MustParse(`
entry:
	z = const 0
	a = const 9
	q = div a, z
	r = rem a, z
	fz = constf 0
	fa = constf 9
	fq = fdiv fa, fz
`)
	st := NewState()
	if _, err := st.Run(f, 100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := st.Regs[f.Reg("q")].Int(); got != 0 {
		t.Errorf("9/0 = %d, want 0", got)
	}
	if got := st.Regs[f.Reg("r")].Int(); got != 0 {
		t.Errorf("9%%0 = %d, want 0", got)
	}
	if got := st.Regs[f.Reg("fq")].Float(); got != 0 {
		t.Errorf("9.0/0.0 = %g, want 0", got)
	}
}

func TestRenameEstablishesSSA(t *testing.T) {
	f := MustParse(`
entry:
	a = const 1
	a = add a, a
	a = add a, a
	store OUT[0], a
`)
	b := f.Blocks[0]
	if err := VerifySSA(b); err == nil {
		t.Fatal("VerifySSA accepted multiply-defined block")
	}
	final := Rename(b)
	if err := VerifySSA(b); err != nil {
		t.Fatalf("VerifySSA after Rename: %v", err)
	}
	// Semantics must be preserved: a = ((1+1)+(1+1)) = 4.
	st := NewState()
	if _, err := st.Run(f, 100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := st.Mem[Addr{"OUT", 0}].Int(); got != 4 {
		t.Errorf("OUT[0] = %d, want 4", got)
	}
	if fin, ok := final[f.Reg("a")]; !ok || fin == f.Reg("a") {
		t.Errorf("final name of a = %v, want a fresh register", fin)
	}
}

func TestLiveInsAndDefs(t *testing.T) {
	f := parseExample(t)
	b := f.Blocks[0]
	ins := LiveIns(b)
	want := []string{"two", "three", "five"}
	if len(ins) != len(want) {
		t.Fatalf("LiveIns = %d regs, want %d", len(ins), len(want))
	}
	for i, name := range want {
		if f.NameOf(ins[i]) != name {
			t.Errorf("LiveIns[%d] = %s, want %s", i, f.NameOf(ins[i]), name)
		}
	}
	if got := len(Defs(b)); got != 11 {
		t.Errorf("Defs = %d, want 11", got)
	}
}

func TestUsesIncludesIndex(t *testing.T) {
	f := NewFunc("t")
	b := f.NewBlock("entry")
	i := f.NewReg("i", ClassInt)
	x := f.NewReg("x", ClassInt)
	ld := b.Append(&Instr{Op: Load, Dst: x, Sym: "A", Index: i})
	uses := ld.Uses()
	if len(uses) != 1 || uses[0] != i {
		t.Errorf("Uses = %v, want [%v]", uses, i)
	}
}

func TestVerifyRejectsIndexOnALU(t *testing.T) {
	f := NewFunc("t")
	b := f.NewBlock("entry")
	a := f.NewReg("a", ClassInt)
	c := f.NewReg("c", ClassInt)
	b.Append(&Instr{Op: Add, Dst: c, Args: []VReg{a, a}, Index: a})
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted index register on add")
	}
}

func TestOpByNameTotal(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v; want %v", op.String(), got, ok, op)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := &Instr{Op: Add, Dst: 3, Args: []VReg{1, 2}}
	c := in.Clone()
	c.Args[0] = 9
	if in.Args[0] != 1 {
		t.Error("Clone shares Args backing array")
	}
}

func TestWordConversions(t *testing.T) {
	if IntWord(-5).Int() != -5 {
		t.Error("IntWord round trip failed")
	}
	if FloatWord(3.25).Float() != 3.25 {
		t.Error("FloatWord round trip failed")
	}
}

func TestImmediateOps(t *testing.T) {
	f := MustParse(`
entry:
	v = const 7
	w = muli v, 2
	x = divi w, 3
	y = addi x, 5
	c = cmplti y, 100
	fa = constf 1.5
	fb = fmuli fa, 4
	fc = faddi fb, 0.5
`)
	st := NewState()
	if _, err := st.Run(f, 100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := st.Regs[f.Reg("y")].Int(); got != 9 {
		t.Errorf("y = %d, want 9 (7*2/3+5)", got)
	}
	if got := st.Regs[f.Reg("c")].Int(); got != 1 {
		t.Errorf("c = %d, want 1", got)
	}
	if got := st.Regs[f.Reg("fc")].Float(); got != 6.5 {
		t.Errorf("fc = %g, want 6.5", got)
	}
	// Round trip.
	f2, err := Parse(f.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, f.String())
	}
	if f2.String() != f.String() {
		t.Errorf("immediate ops do not round trip:\n%s\nvs\n%s", f.String(), f2.String())
	}
}

func TestImmediateOpArity(t *testing.T) {
	if _, err := Parse("entry:\n\tw = muli a"); err == nil {
		t.Error("muli with missing immediate accepted")
	}
	if _, err := Parse("entry:\n\tw = muli a, b"); err == nil {
		t.Error("muli with register second operand accepted")
	}
}

// TestInterpFullOpcodeCoverage exercises every arithmetic, logical, shift,
// comparison, conversion and move opcode against independently computed
// expectations.
func TestInterpFullOpcodeCoverage(t *testing.T) {
	f := MustParse(`
entry:
	a = const 13
	b = const -5
	m = mov a
	s1 = sub a, b
	n = neg b
	an = and a, b
	o = or a, b
	x = xor a, b
	sl = shl a, n
	sr = shr a, m
	ceq = cmpeq a, a
	clt = cmplt b, a
	cle = cmple a, a
	fa = constf 2.5
	fb = constf -0.5
	fs = fsub fa, fb
	fn = fneg fb
	fq = fdiv fa, fn
	fe = fcmpeq fa, fa
	fl = fcmplt fb, fa
	fle = fcmple fa, fa
	cv = itof a
	bk = ftoi fs
	si = shli a, 2
	ri = shri a, 1
	ai = andi a, 12
	oi = ori a, 2
	ce = cmpeqi a, 13
	cl2 = cmplei a, 13
	fsx = fsubi fa, 0.5
	fdx = fdivi fa, 2.5
`)
	st := NewState()
	if _, err := st.Run(f, 1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	intChecks := map[string]int64{
		"m": 13, "s1": 18, "n": 5, "an": 13 & -5, "o": 13 | -5, "x": 13 ^ -5,
		"sl": 13 << 5, "sr": 13 >> 13, "ceq": 1, "clt": 1, "cle": 1,
		"fe": 1, "fl": 1, "fle": 1, "bk": 3, "si": 52, "ri": 6,
		"ai": 12, "oi": 15, "ce": 1, "cl2": 1,
	}
	for name, want := range intChecks {
		if got := st.Regs[f.Reg(name)].Int(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	fpChecks := map[string]float64{
		"fs": 3.0, "fn": 0.5, "fq": 5.0, "cv": 13.0, "fsx": 2.0, "fdx": 1.0,
	}
	for name, want := range fpChecks {
		if got := st.Regs[f.Reg(name)].Float(); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

// TestQuickParsePrintRoundTrip: random arithmetic programs survive
// print -> parse -> print unchanged.
func TestQuickParsePrintRoundTrip(t *testing.T) {
	gen := func(seed int64) *Func {
		rng := newTestRand(seed)
		f := NewFunc("q")
		b := f.NewBlock("entry")
		var vals []VReg
		for i := 0; i < 4+rng.Intn(10); i++ {
			dst := f.NewReg("", ClassInt)
			switch {
			case len(vals) == 0 || rng.Intn(4) == 0:
				b.Append(&Instr{Op: ConstI, Dst: dst, Imm: int64(rng.Intn(99)) - 50})
			case rng.Intn(3) == 0:
				a := vals[rng.Intn(len(vals))]
				op := []Op{AddI, MulI, XorI, ShlI}[rng.Intn(4)]
				b.Append(&Instr{Op: op, Dst: dst, Args: []VReg{a}, Imm: int64(rng.Intn(7))})
			default:
				a := vals[rng.Intn(len(vals))]
				c := vals[rng.Intn(len(vals))]
				op := []Op{Add, Sub, Mul, And, Or}[rng.Intn(5)]
				b.Append(&Instr{Op: op, Dst: dst, Args: []VReg{a, c}})
			}
			vals = append(vals, dst)
		}
		return f
	}
	for seed := int64(0); seed < 40; seed++ {
		f := gen(seed)
		text := f.String()
		f2, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		if f2.String() != text {
			t.Fatalf("seed %d: round trip drift:\n%s\nvs\n%s", seed, text, f2.String())
		}
	}
}

func TestFuncClone(t *testing.T) {
	f := parseExample(t)
	c := f.Clone()
	if c.String() != f.String() {
		t.Fatal("clone differs textually")
	}
	c.Blocks[0].Instrs[1].Imm = 99
	if f.Blocks[0].Instrs[1].Imm == 99 {
		t.Error("clone shares instructions")
	}
	c.NewReg("fresh", ClassInt)
	if f.Reg("fresh") != NoReg {
		t.Error("clone shares register tables")
	}
}
