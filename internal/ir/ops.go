package ir

import "fmt"

// Op is an opcode.
type Op uint8

// Opcodes. Integer and floating-point arithmetic are distinct operations so
// that resource classes and functional-unit kinds are syntactically evident,
// as in a real VLIW ISA.
const (
	Nop Op = iota

	// Immediates.
	ConstI // dst = imm
	ConstF // dst = fimm

	// Moves and conversions.
	Mov  // dst = arg0 (class of dst)
	ItoF // dst(fp) = float(arg0)
	FtoI // dst(int) = trunc(arg0)

	// Integer ALU.
	Add
	Sub
	Mul
	Div // traps-free: x/0 == 0 by convention (keeps the simulator total)
	Rem // x%0 == 0
	Neg
	And
	Or
	Xor
	Shl
	Shr
	CmpEQ // dst = arg0 == arg1 ? 1 : 0
	CmpLT
	CmpLE

	// Integer ALU, immediate second operand (dst = arg0 OP Imm). VLIW ISAs
	// provide these, and the paper's example relies on them: "w = v * 2"
	// consumes no register for the constant.
	AddI
	SubI
	MulI
	DivI
	RemI
	AndI
	OrI
	XorI
	ShlI
	ShrI
	CmpEQI
	CmpLTI
	CmpLEI

	// Floating-point ALU.
	FAdd
	FSub
	FMul
	FDiv // x/0 == 0 by convention
	FNeg
	FCmpEQ // integer 0/1 result
	FCmpLT
	FCmpLE

	// Floating-point ALU, immediate second operand (dst = arg0 OP FImm).
	FAddI
	FSubI
	FMulI
	FDivI

	// Memory.
	Load   // dst(int) = mem[Sym[Index+Off]]
	LoadF  // dst(fp)  = mem[...]
	Store  // mem[...] = arg0(int)
	StoreF // mem[...] = arg0(fp)

	// Spill code inserted by the allocator. Semantically identical to
	// Load/Store of the appropriate class (the class is the spilled
	// register's class) but kept distinct so spills are observable.
	SpillStore // mem[Sym[Off]] = arg0
	SpillLoad  // dst = mem[Sym[Off]]

	// Control.
	Br      // goto Sym
	BrTrue  // if arg0 != 0 goto Sym
	BrFalse // if arg0 == 0 goto Sym
	Ret     // return (optionally arg0)

	// Inter-cluster copy (clustered VLIW targets): dst = arg0, executed on
	// the transfer bus. Semantically a move of either class; kept distinct
	// from Mov so the resource model can price copies as their own FU class
	// and the simulator can audit cluster legality.
	Copy

	numOps
)

// NumOps is the number of defined opcodes — the bound for code that
// enumerates the instruction set (e.g. canonicalizing a machine's
// per-opcode latency table into a cache key).
const NumOps = int(numOps)

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name        string
	Kind        Kind
	NArgs       int  // register operands (excluding memory index)
	HasDst      bool // defines a register
	Store       bool // writes memory
	Commutative bool
	DstClass    Class // class of the defined register (when HasDst)
	ArgClass    Class // class of register operands
	ImmOperand  bool  // trailing immediate operand (Imm or FImm by DstClass)
}

var opInfos = [numOps]OpInfo{
	Nop:    {Name: "nop", Kind: KindNop},
	ConstI: {Name: "const", Kind: KindConst, HasDst: true, DstClass: ClassInt},
	ConstF: {Name: "constf", Kind: KindConst, HasDst: true, DstClass: ClassFP},
	Mov:    {Name: "mov", Kind: KindIArith, NArgs: 1, HasDst: true},
	ItoF:   {Name: "itof", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassFP, ArgClass: ClassInt},
	FtoI:   {Name: "ftoi", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassInt, ArgClass: ClassFP},

	Add:   {Name: "add", Kind: KindIArith, NArgs: 2, HasDst: true, Commutative: true},
	Sub:   {Name: "sub", Kind: KindIArith, NArgs: 2, HasDst: true},
	Mul:   {Name: "mul", Kind: KindIArith, NArgs: 2, HasDst: true, Commutative: true},
	Div:   {Name: "div", Kind: KindIArith, NArgs: 2, HasDst: true},
	Rem:   {Name: "rem", Kind: KindIArith, NArgs: 2, HasDst: true},
	Neg:   {Name: "neg", Kind: KindIArith, NArgs: 1, HasDst: true},
	And:   {Name: "and", Kind: KindIArith, NArgs: 2, HasDst: true, Commutative: true},
	Or:    {Name: "or", Kind: KindIArith, NArgs: 2, HasDst: true, Commutative: true},
	Xor:   {Name: "xor", Kind: KindIArith, NArgs: 2, HasDst: true, Commutative: true},
	Shl:   {Name: "shl", Kind: KindIArith, NArgs: 2, HasDst: true},
	Shr:   {Name: "shr", Kind: KindIArith, NArgs: 2, HasDst: true},
	CmpEQ: {Name: "cmpeq", Kind: KindIArith, NArgs: 2, HasDst: true, Commutative: true},
	CmpLT: {Name: "cmplt", Kind: KindIArith, NArgs: 2, HasDst: true},
	CmpLE: {Name: "cmple", Kind: KindIArith, NArgs: 2, HasDst: true},

	AddI:   {Name: "addi", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	SubI:   {Name: "subi", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	MulI:   {Name: "muli", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	DivI:   {Name: "divi", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	RemI:   {Name: "remi", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	AndI:   {Name: "andi", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	OrI:    {Name: "ori", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	XorI:   {Name: "xori", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	ShlI:   {Name: "shli", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	ShrI:   {Name: "shri", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	CmpEQI: {Name: "cmpeqi", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	CmpLTI: {Name: "cmplti", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},
	CmpLEI: {Name: "cmplei", Kind: KindIArith, NArgs: 1, HasDst: true, ImmOperand: true},

	FAdd:   {Name: "fadd", Kind: KindFArith, NArgs: 2, HasDst: true, Commutative: true, DstClass: ClassFP, ArgClass: ClassFP},
	FSub:   {Name: "fsub", Kind: KindFArith, NArgs: 2, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP},
	FMul:   {Name: "fmul", Kind: KindFArith, NArgs: 2, HasDst: true, Commutative: true, DstClass: ClassFP, ArgClass: ClassFP},
	FDiv:   {Name: "fdiv", Kind: KindFArith, NArgs: 2, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP},
	FNeg:   {Name: "fneg", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP},
	FCmpEQ: {Name: "fcmpeq", Kind: KindFArith, NArgs: 2, HasDst: true, Commutative: true, DstClass: ClassInt, ArgClass: ClassFP},
	FCmpLT: {Name: "fcmplt", Kind: KindFArith, NArgs: 2, HasDst: true, DstClass: ClassInt, ArgClass: ClassFP},
	FCmpLE: {Name: "fcmple", Kind: KindFArith, NArgs: 2, HasDst: true, DstClass: ClassInt, ArgClass: ClassFP},

	FAddI: {Name: "faddi", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP, ImmOperand: true},
	FSubI: {Name: "fsubi", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP, ImmOperand: true},
	FMulI: {Name: "fmuli", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP, ImmOperand: true},
	FDivI: {Name: "fdivi", Kind: KindFArith, NArgs: 1, HasDst: true, DstClass: ClassFP, ArgClass: ClassFP, ImmOperand: true},

	Load:   {Name: "load", Kind: KindMem, HasDst: true, DstClass: ClassInt},
	LoadF:  {Name: "loadf", Kind: KindMem, HasDst: true, DstClass: ClassFP},
	Store:  {Name: "store", Kind: KindMem, NArgs: 1, Store: true},
	StoreF: {Name: "storef", Kind: KindMem, NArgs: 1, Store: true, ArgClass: ClassFP},

	SpillStore: {Name: "spillst", Kind: KindMem, NArgs: 1, Store: true},
	SpillLoad:  {Name: "spillld", Kind: KindMem, HasDst: true},

	Br:      {Name: "br", Kind: KindBranch},
	BrTrue:  {Name: "brt", Kind: KindBranch, NArgs: 1},
	BrFalse: {Name: "brf", Kind: KindBranch, NArgs: 1},
	Ret:     {Name: "ret", Kind: KindBranch},

	Copy: {Name: "xcopy", Kind: KindCopy, NArgs: 1, HasDst: true},
}

// Info returns the static description of an opcode.
func Info(op Op) OpInfo {
	if op >= numOps {
		return OpInfo{Name: fmt.Sprintf("op(%d)", uint8(op))}
	}
	return opInfos[op]
}

// String returns the opcode mnemonic.
func (op Op) String() string { return Info(op).Name }

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[opInfos[op].Name] = op
	}
	return m
}()

// OpByName returns the opcode with the given mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
