// Package ir defines the three-address intermediate representation consumed
// by the URSA allocator and its substrates.
//
// The unit of interest to URSA is straight-line code: a basic block or a
// trace of blocks. Instructions are in (per-trace) single-assignment form:
// every virtual register has exactly one defining instruction within the
// region under allocation, which is what lets the dependence DAG identify a
// value with its producer node. The rename pass (Rename) establishes this
// form for arbitrary input.
//
// Values are untyped 64-bit words; each virtual register carries a resource
// class (integer or floating point) that selects the register file and the
// functional-unit kind that operates on it.
package ir

import (
	"fmt"
	"strings"
)

// VReg identifies a virtual register. The zero value means "no register".
type VReg int32

// NoReg is the absent-register sentinel.
const NoReg VReg = 0

// Class is a resource class: a register file and its associated
// functional-unit family. The paper (§5) notes URSA handles several classes
// by building one Reuse DAG per class; we model exactly that.
type Class uint8

// Register classes.
const (
	ClassInt Class = iota // integer register file
	ClassFP               // floating-point register file
	NumClasses
)

// String returns the conventional short name of the class.
func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFP:
		return "fp"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Kind classifies an opcode by the family of functional unit that executes
// it. The machine model maps kinds onto concrete FU classes.
type Kind uint8

// Operation kinds.
const (
	KindNop    Kind = iota
	KindConst       // immediate materialization
	KindIArith      // integer ALU
	KindFArith      // floating-point ALU
	KindMem         // load/store unit
	KindBranch      // branch unit
	KindCopy        // inter-cluster copy (clustered targets' transfer bus)
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindNop:
		return "nop"
	case KindConst:
		return "const"
	case KindIArith:
		return "ialu"
	case KindFArith:
		return "falu"
	case KindMem:
		return "mem"
	case KindBranch:
		return "branch"
	case KindCopy:
		return "copy"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instr is a single three-address instruction.
//
// Memory operations address memory as Sym[Index+Off]: a symbolic base (an
// array or spill slot name), an optional index register, and a constant
// offset. Branches name their target with Sym.
type Instr struct {
	ID   int    // position within the containing block (set by Block.Append)
	Op   Op     // operation
	Dst  VReg   // defined register, NoReg if none
	Args []VReg // register operands, in operand order
	Imm  int64  // integer immediate (Const, shift amounts via Args normally)
	FImm float64
	Sym  string // memory base symbol or branch target label
	Off  int64  // constant memory offset
	// Index is the optional index register for memory ops; NoReg if direct.
	Index VReg
	// Cluster is the executing cluster on clustered targets (compiler
	// internal: assigned by the clusterizer, always 0 for unclustered
	// machines; not part of the textual format).
	Cluster uint8
}

// Uses returns all registers read by the instruction, including the memory
// index register. The returned slice must not be mutated.
func (in *Instr) Uses() []VReg {
	if in.Index == NoReg {
		return in.Args
	}
	u := make([]VReg, 0, len(in.Args)+1)
	u = append(u, in.Args...)
	u = append(u, in.Index)
	return u
}

// IsMem reports whether the instruction touches memory.
func (in *Instr) IsMem() bool { return Info(in.Op).Kind == KindMem }

// IsStore reports whether the instruction writes memory.
func (in *Instr) IsStore() bool { return Info(in.Op).Store }

// IsLoad reports whether the instruction reads memory.
func (in *Instr) IsLoad() bool { return in.IsMem() && !in.IsStore() }

// IsBranch reports whether the instruction is a control transfer.
func (in *Instr) IsBranch() bool { return Info(in.Op).Kind == KindBranch }

// IsCopy reports whether the instruction is an inter-cluster copy.
func (in *Instr) IsCopy() bool { return in.Op == Copy }

// Kind returns the functional-unit kind of the instruction.
func (in *Instr) Kind() Kind { return Info(in.Op).Kind }

// Clone returns a deep copy of the instruction.
func (in *Instr) Clone() *Instr {
	c := *in
	c.Args = append([]VReg(nil), in.Args...)
	return &c
}

// Block is a labelled sequence of instructions, ending (optionally) with a
// branch. Blocks belong to a Func, which owns register metadata.
type Block struct {
	Label  string
	Instrs []*Instr
	Func   *Func
}

// Append adds an instruction to the block and assigns its ID.
func (b *Block) Append(in *Instr) *Instr {
	in.ID = len(b.Instrs)
	b.Instrs = append(b.Instrs, in)
	return in
}

// Renumber reassigns sequential IDs after instruction insertion or removal.
func (b *Block) Renumber() {
	for i, in := range b.Instrs {
		in.ID = i
	}
}

// Func is a function: a list of blocks plus the virtual-register metadata
// shared by all of them.
type Func struct {
	Name   string
	Blocks []*Block

	regClass []Class  // indexed by VReg (entry 0 unused)
	regName  []string // indexed by VReg
	byName   map[string]VReg
}

// NewFunc returns an empty function.
func NewFunc(name string) *Func {
	return &Func{
		Name:     name,
		regClass: make([]Class, 1),
		regName:  make([]string, 1),
		byName:   make(map[string]VReg),
	}
}

// NewBlock appends a new empty block with the given label.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{Label: label, Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Block returns the block with the given label, or nil.
func (f *Func) Block(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// NewReg allocates a fresh virtual register with the given name and class.
// If the name is already taken a unique suffix is appended.
func (f *Func) NewReg(name string, class Class) VReg {
	if name == "" {
		name = fmt.Sprintf("v%d", len(f.regName))
	}
	if _, dup := f.byName[name]; dup {
		base := name
		for i := 1; ; i++ {
			name = fmt.Sprintf("%s.%d", base, i)
			if _, dup := f.byName[name]; !dup {
				break
			}
		}
	}
	v := VReg(len(f.regName))
	f.regClass = append(f.regClass, class)
	f.regName = append(f.regName, name)
	f.byName[name] = v
	return v
}

// Reg returns the register with the given name, or NoReg.
func (f *Func) Reg(name string) VReg { return f.byName[name] }

// RegOrNew returns the register with the given name, allocating it with the
// given class if it does not exist yet.
func (f *Func) RegOrNew(name string, class Class) VReg {
	if v, ok := f.byName[name]; ok {
		return v
	}
	return f.NewReg(name, class)
}

// NumRegs returns the number of allocated virtual registers plus one (the
// valid VReg values are 1..NumRegs-1).
func (f *Func) NumRegs() int { return len(f.regName) }

// TruncateRegs discards every register with value >= n, rewinding the
// function's register metadata to an earlier NumRegs snapshot. The caller
// must guarantee no instruction still refers to a discarded register. The
// candidate evaluator uses this to undo the registers a tentative spill
// allocated on its scratch function, so one long-lived clone serves every
// spill candidate instead of re-cloning per candidate.
func (f *Func) TruncateRegs(n int) {
	if n < 1 || n >= len(f.regName) {
		return
	}
	for _, name := range f.regName[n:] {
		if v, ok := f.byName[name]; ok && int(v) >= n {
			delete(f.byName, name)
		}
	}
	f.regName = f.regName[:n]
	f.regClass = f.regClass[:n]
}

// ClassOf returns the class of a register.
func (f *Func) ClassOf(v VReg) Class {
	if v <= 0 || int(v) >= len(f.regClass) {
		return ClassInt
	}
	return f.regClass[v]
}

// NameOf returns the name of a register.
func (f *Func) NameOf(v VReg) string {
	if v <= 0 || int(v) >= len(f.regName) {
		return "_"
	}
	return f.regName[v]
}

// String renders the function in the textual IR format accepted by Parse.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s {\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", f.InstrString(in))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// InstrString renders one instruction in textual form.
func (f *Func) InstrString(in *Instr) string {
	info := Info(in.Op)
	var sb strings.Builder
	if in.Dst != NoReg {
		fmt.Fprintf(&sb, "%s = ", f.NameOf(in.Dst))
	}
	sb.WriteString(info.Name)
	switch in.Op {
	case ConstI:
		fmt.Fprintf(&sb, " %d", in.Imm)
	case ConstF:
		fmt.Fprintf(&sb, " %g", in.FImm)
	case Load, LoadF, SpillLoad:
		sb.WriteString(" ")
		sb.WriteString(f.memString(in))
	case Store, StoreF, SpillStore:
		fmt.Fprintf(&sb, " %s, %s", f.memString(in), f.NameOf(in.Args[0]))
	case Br:
		fmt.Fprintf(&sb, " %s", in.Sym)
	case BrTrue, BrFalse:
		fmt.Fprintf(&sb, " %s, %s", f.NameOf(in.Args[0]), in.Sym)
	case Ret:
		if len(in.Args) > 0 {
			fmt.Fprintf(&sb, " %s", f.NameOf(in.Args[0]))
		}
	default:
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s", f.NameOf(a))
		}
		if info.ImmOperand {
			if info.DstClass == ClassFP {
				fmt.Fprintf(&sb, ", %g", in.FImm)
			} else {
				fmt.Fprintf(&sb, ", %d", in.Imm)
			}
		}
	}
	return sb.String()
}

func (f *Func) memString(in *Instr) string {
	switch {
	case in.Index != NoReg && in.Off != 0:
		return fmt.Sprintf("%s[%s+%d]", in.Sym, f.NameOf(in.Index), in.Off)
	case in.Index != NoReg:
		return fmt.Sprintf("%s[%s]", in.Sym, f.NameOf(in.Index))
	default:
		return fmt.Sprintf("%s[%d]", in.Sym, in.Off)
	}
}

// Clone deep-copies the function: blocks, instructions, and the register
// tables. Register ids remain identical, so analyses keyed by VReg carry
// over to the copy.
func (f *Func) Clone() *Func {
	c := &Func{
		Name:     f.Name,
		regClass: append([]Class(nil), f.regClass...),
		regName:  append([]string(nil), f.regName...),
		byName:   make(map[string]VReg, len(f.byName)),
	}
	for k, v := range f.byName {
		c.byName[k] = v
	}
	for _, b := range f.Blocks {
		nb := c.NewBlock(b.Label)
		for _, in := range b.Instrs {
			nb.Append(in.Clone())
		}
	}
	return c
}
