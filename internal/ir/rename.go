package ir

// Rename rewrites a block into single-assignment form: every redefinition of
// a register is given a fresh name and subsequent uses are rewired to it.
// Registers used before any definition keep their original names (they are
// the block's live-ins). Rename returns the mapping from each original
// register to its final (last-definition) name so callers can recover
// live-out values.
func Rename(b *Block) map[VReg]VReg {
	f := b.Func
	cur := make(map[VReg]VReg) // original -> current name
	seen := make(map[VReg]bool)
	final := make(map[VReg]VReg)

	lookup := func(v VReg) VReg {
		if nv, ok := cur[v]; ok {
			return nv
		}
		return v
	}
	for _, in := range b.Instrs {
		for i, a := range in.Args {
			in.Args[i] = lookup(a)
		}
		if in.Index != NoReg {
			in.Index = lookup(in.Index)
		}
		if in.Dst != NoReg {
			orig := in.Dst
			if seen[orig] {
				nv := f.NewReg(f.NameOf(orig), f.ClassOf(orig))
				cur[orig] = nv
				in.Dst = nv
			} else {
				seen[orig] = true
				cur[orig] = orig
			}
			final[orig] = cur[orig]
		}
	}
	return final
}

// LiveIns returns the registers a block reads before defining, in first-use
// order: the values that must be present on entry.
func LiveIns(b *Block) []VReg {
	defined := make(map[VReg]bool)
	seen := make(map[VReg]bool)
	var ins []VReg
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			if !defined[u] && !seen[u] {
				seen[u] = true
				ins = append(ins, u)
			}
		}
		if in.Dst != NoReg {
			defined[in.Dst] = true
		}
	}
	return ins
}

// Defs returns the registers defined in the block, in definition order.
func Defs(b *Block) []VReg {
	var ds []VReg
	for _, in := range b.Instrs {
		if in.Dst != NoReg {
			ds = append(ds, in.Dst)
		}
	}
	return ds
}
