package ir

import "testing"

// FuzzParse checks the textual IR parser never panics, and that accepted
// programs verify and round-trip through printing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"func f {\nentry:\n\tx = const 1\n}",
		"entry:\n\ta = load A[0]\n\tb = muli a, 2\n\tstore O[0], b",
		"entry:\n\tx = constf 1.5\n\ty = faddi x, 2.5\n\tstoref P[0], y",
		"entry:\n\tc = cmplt a, b\n\tbrt c, entry",
		"entry:\n\tret",
		"entry:\n\tx = load A[i+4]",
		"e:\n\tx = add a, b\n\ty = div x, x",
		"}",
		"func {",
		"entry:\n\tx = bogus a",
		"entry:\n\tx = add a",
		"entry:\n\tstore A, x",
		"; comment only",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			return
		}
		if err := Verify(fn); err != nil {
			t.Fatalf("Parse accepted but Verify rejects: %v\nsource: %q", err, src)
		}
		text := fn.String()
		fn2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\n%s", err, text)
		}
		if fn2.String() != text {
			t.Fatalf("print/parse not a fixed point:\n%q\nvs\n%q", text, fn2.String())
		}
	})
}
