package ir

import (
	"fmt"
	"math"
)

// Word is a 64-bit machine word. Integer operations interpret it as int64;
// floating-point operations as an IEEE-754 double bit pattern.
type Word uint64

// IntWord builds a word from an integer value.
func IntWord(v int64) Word { return Word(v) }

// FloatWord builds a word from a float value.
func FloatWord(v float64) Word { return Word(math.Float64bits(v)) }

// Int returns the word as an integer.
func (w Word) Int() int64 { return int64(w) }

// Float returns the word as a float.
func (w Word) Float() float64 { return math.Float64frombits(uint64(w)) }

// Addr is a memory address: a symbolic base plus a word offset.
type Addr struct {
	Sym string
	Off int64
}

// State is an interpreter machine state: a virtual register file and a
// symbolic memory.
type State struct {
	Regs map[VReg]Word
	Mem  map[Addr]Word
}

// NewState returns an empty machine state.
func NewState() *State {
	return &State{Regs: make(map[VReg]Word), Mem: make(map[Addr]Word)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := NewState()
	for k, v := range s.Regs {
		c.Regs[k] = v
	}
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return c
}

// SetInt stores an integer into a register.
func (s *State) SetInt(v VReg, x int64) { s.Regs[v] = IntWord(x) }

// SetFloat stores a float into a register.
func (s *State) SetFloat(v VReg, x float64) { s.Regs[v] = FloatWord(x) }

// StoreInt writes an integer memory cell.
func (s *State) StoreInt(sym string, off int64, x int64) { s.Mem[Addr{sym, off}] = IntWord(x) }

// StoreFloat writes a float memory cell.
func (s *State) StoreFloat(sym string, off int64, x float64) { s.Mem[Addr{sym, off}] = FloatWord(x) }

// ErrStepLimit is returned by Run when the step budget is exhausted.
var ErrStepLimit = fmt.Errorf("ir: interpreter step limit exceeded")

// Exec executes a single instruction against the state. Branches are not
// executed here; the caller handles control flow (see Run and ExecBlock).
func (s *State) Exec(f *Func, in *Instr) {
	arg := func(i int) Word { return s.Regs[in.Args[i]] }
	switch in.Op {
	case Nop, Br, BrTrue, BrFalse, Ret:
		// control handled by caller
	case ConstI:
		s.Regs[in.Dst] = IntWord(in.Imm)
	case ConstF:
		s.Regs[in.Dst] = FloatWord(in.FImm)
	case Mov, Copy:
		s.Regs[in.Dst] = arg(0)
	case ItoF:
		s.Regs[in.Dst] = FloatWord(float64(arg(0).Int()))
	case FtoI:
		s.Regs[in.Dst] = IntWord(int64(arg(0).Float()))
	case Add:
		s.Regs[in.Dst] = IntWord(arg(0).Int() + arg(1).Int())
	case Sub:
		s.Regs[in.Dst] = IntWord(arg(0).Int() - arg(1).Int())
	case Mul:
		s.Regs[in.Dst] = IntWord(arg(0).Int() * arg(1).Int())
	case Div:
		if d := arg(1).Int(); d != 0 {
			s.Regs[in.Dst] = IntWord(arg(0).Int() / d)
		} else {
			s.Regs[in.Dst] = 0
		}
	case Rem:
		if d := arg(1).Int(); d != 0 {
			s.Regs[in.Dst] = IntWord(arg(0).Int() % d)
		} else {
			s.Regs[in.Dst] = 0
		}
	case Neg:
		s.Regs[in.Dst] = IntWord(-arg(0).Int())
	case And:
		s.Regs[in.Dst] = IntWord(arg(0).Int() & arg(1).Int())
	case Or:
		s.Regs[in.Dst] = IntWord(arg(0).Int() | arg(1).Int())
	case Xor:
		s.Regs[in.Dst] = IntWord(arg(0).Int() ^ arg(1).Int())
	case Shl:
		s.Regs[in.Dst] = IntWord(arg(0).Int() << (uint64(arg(1).Int()) & 63))
	case Shr:
		s.Regs[in.Dst] = IntWord(arg(0).Int() >> (uint64(arg(1).Int()) & 63))
	case CmpEQ:
		s.Regs[in.Dst] = boolWord(arg(0).Int() == arg(1).Int())
	case CmpLT:
		s.Regs[in.Dst] = boolWord(arg(0).Int() < arg(1).Int())
	case CmpLE:
		s.Regs[in.Dst] = boolWord(arg(0).Int() <= arg(1).Int())
	case AddI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() + in.Imm)
	case SubI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() - in.Imm)
	case MulI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() * in.Imm)
	case DivI:
		if in.Imm != 0 {
			s.Regs[in.Dst] = IntWord(arg(0).Int() / in.Imm)
		} else {
			s.Regs[in.Dst] = 0
		}
	case RemI:
		if in.Imm != 0 {
			s.Regs[in.Dst] = IntWord(arg(0).Int() % in.Imm)
		} else {
			s.Regs[in.Dst] = 0
		}
	case AndI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() & in.Imm)
	case OrI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() | in.Imm)
	case XorI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() ^ in.Imm)
	case ShlI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() << (uint64(in.Imm) & 63))
	case ShrI:
		s.Regs[in.Dst] = IntWord(arg(0).Int() >> (uint64(in.Imm) & 63))
	case CmpEQI:
		s.Regs[in.Dst] = boolWord(arg(0).Int() == in.Imm)
	case CmpLTI:
		s.Regs[in.Dst] = boolWord(arg(0).Int() < in.Imm)
	case CmpLEI:
		s.Regs[in.Dst] = boolWord(arg(0).Int() <= in.Imm)
	case FAddI:
		s.Regs[in.Dst] = FloatWord(arg(0).Float() + in.FImm)
	case FSubI:
		s.Regs[in.Dst] = FloatWord(arg(0).Float() - in.FImm)
	case FMulI:
		s.Regs[in.Dst] = FloatWord(arg(0).Float() * in.FImm)
	case FDivI:
		if in.FImm != 0 {
			s.Regs[in.Dst] = FloatWord(arg(0).Float() / in.FImm)
		} else {
			s.Regs[in.Dst] = FloatWord(0)
		}
	case FAdd:
		s.Regs[in.Dst] = FloatWord(arg(0).Float() + arg(1).Float())
	case FSub:
		s.Regs[in.Dst] = FloatWord(arg(0).Float() - arg(1).Float())
	case FMul:
		s.Regs[in.Dst] = FloatWord(arg(0).Float() * arg(1).Float())
	case FDiv:
		if d := arg(1).Float(); d != 0 {
			s.Regs[in.Dst] = FloatWord(arg(0).Float() / d)
		} else {
			s.Regs[in.Dst] = FloatWord(0)
		}
	case FNeg:
		s.Regs[in.Dst] = FloatWord(-arg(0).Float())
	case FCmpEQ:
		s.Regs[in.Dst] = boolWord(arg(0).Float() == arg(1).Float())
	case FCmpLT:
		s.Regs[in.Dst] = boolWord(arg(0).Float() < arg(1).Float())
	case FCmpLE:
		s.Regs[in.Dst] = boolWord(arg(0).Float() <= arg(1).Float())
	case Load, LoadF, SpillLoad:
		s.Regs[in.Dst] = s.Mem[s.effAddr(in)]
	case Store, StoreF, SpillStore:
		s.Mem[s.effAddr(in)] = arg(0)
	default:
		panic(fmt.Sprintf("ir: Exec: unhandled op %s", in.Op))
	}
}

func (s *State) effAddr(in *Instr) Addr {
	off := in.Off
	if in.Index != NoReg {
		off += s.Regs[in.Index].Int()
	}
	return Addr{in.Sym, off}
}

func boolWord(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// ExecBlock executes the non-branch instructions of a block in order and
// returns the terminating branch (nil if the block falls through).
func (s *State) ExecBlock(b *Block) *Instr {
	for _, in := range b.Instrs {
		if in.IsBranch() {
			return in
		}
		s.Exec(b.Func, in)
	}
	return nil
}

// Run interprets a whole function starting at its first block, mutating the
// state. It returns the value of Ret's operand (zero if none) and an error
// if the step budget is exceeded or a branch target is missing.
func (s *State) Run(f *Func, maxSteps int) (Word, error) {
	if len(f.Blocks) == 0 {
		return 0, nil
	}
	blk := f.Blocks[0]
	steps := 0
	var i int
	for {
		for _, in := range blk.Instrs {
			if steps++; steps > maxSteps {
				return 0, ErrStepLimit
			}
			switch in.Op {
			case Br:
				blk = f.Block(in.Sym)
				goto next
			case BrTrue:
				if s.Regs[in.Args[0]].Int() != 0 {
					blk = f.Block(in.Sym)
					goto next
				}
			case BrFalse:
				if s.Regs[in.Args[0]].Int() == 0 {
					blk = f.Block(in.Sym)
					goto next
				}
			case Ret:
				if len(in.Args) > 0 {
					return s.Regs[in.Args[0]], nil
				}
				return 0, nil
			default:
				s.Exec(f, in)
			}
		}
		// fall through to the next block in layout order
		i = blockIndex(f, blk)
		if i+1 >= len(f.Blocks) {
			return 0, nil
		}
		blk = f.Blocks[i+1]
	next:
		if blk == nil {
			return 0, fmt.Errorf("ir: branch to unknown block")
		}
	}
}

func blockIndex(f *Func, b *Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}
