package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ursa/internal/server"
	"ursa/internal/store"
)

// shard is one real ursad backend under test: the server, its artifact
// cache (inspected directly for compute counts), and the listener.
type shard struct {
	srv  *server.Server
	arts *store.TieredCache
	ts   *httptest.Server
}

func newShard(t *testing.T) *shard {
	t.Helper()
	arts := store.NewTiered(0, nil, nil)
	srv := server.New(server.Config{Artifacts: arts, MaxConcurrent: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &shard{srv: srv, arts: arts, ts: ts}
}

// newFleet builds n real shards and a router over them. Spillover and
// hedging are disabled unless the caller re-enables them: the sharding
// tests want pure key-affine placement.
func newFleet(t *testing.T, n int, mod func(*Config)) ([]*shard, *Router) {
	t.Helper()
	fleet := make([]*shard, n)
	urls := make([]string, n)
	for i := range fleet {
		fleet[i] = newShard(t)
		urls[i] = fleet[i].ts.URL
	}
	cfg := Config{
		Backends:   urls,
		SpillDepth: -1,
		HedgeDelay: -1,
		Logf:       t.Logf,
	}
	if mod != nil {
		mod(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return fleet, r
}

func postJSON(t *testing.T, client *http.Client, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// distinctRequests returns n compile requests with pairwise-distinct
// cache keys (different machine shapes) whose keys we also return.
func distinctRequests(t *testing.T, n int) (bodies []string, keys []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"machine": {"width": %d, "regs": %d}}`, 2+i%4, 6+i/4*2)
		var cr server.CompileRequest
		if err := json.Unmarshal([]byte(body), &cr); err != nil {
			t.Fatal(err)
		}
		key, err := cr.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if k == key {
				t.Fatalf("requests %d share key %s", i, key)
			}
		}
		bodies = append(bodies, body)
		keys = append(keys, key)
	}
	return bodies, keys
}

// TestRouterShardsKeys is the acceptance e2e: over 3 shards, a batch of
// distinct keys compiles each key on exactly one shard, results are
// byte-identical to a single daemon's, repeats are the owner's cache
// hits, and exactly one shard holds each artifact.
func TestRouterShardsKeys(t *testing.T) {
	fleet, router := newFleet(t, 3, nil)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()
	standalone := newShard(t)

	bodies, keys := distinctRequests(t, 8)
	type answer struct{ Blocks, Stats json.RawMessage }
	extract := func(data []byte) answer {
		var m struct {
			Blocks json.RawMessage `json:"blocks"`
			Stats  json.RawMessage `json:"stats"`
		}
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("bad response %s: %v", data, err)
		}
		return answer{m.Blocks, m.Stats}
	}

	for round := 0; round < 2; round++ {
		for i, body := range bodies {
			resp, data := postJSON(t, gw.Client(), gw.URL+"/v1/compile", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d key %d: HTTP %d: %s", round, i, resp.StatusCode, data)
			}
			var m struct {
				Cache struct {
					Result string `json:"result"`
					Key    string `json:"key"`
				} `json:"cache"`
			}
			if err := json.Unmarshal(data, &m); err != nil {
				t.Fatal(err)
			}
			if m.Cache.Key != keys[i] {
				t.Errorf("round %d key %d: response key %s, want %s", round, i, m.Cache.Key, keys[i])
			}
			if round == 1 && m.Cache.Result != "memory" {
				t.Errorf("repeat of key %d served by %q, want owner's memory tier", i, m.Cache.Result)
			}

			// Byte-identical to a single-daemon compile.
			sresp, sdata := postJSON(t, standalone.ts.Client(), standalone.ts.URL+"/v1/compile", body)
			if sresp.StatusCode != http.StatusOK {
				t.Fatalf("standalone: HTTP %d", sresp.StatusCode)
			}
			got, want := extract(data), extract(sdata)
			if !bytes.Equal(got.Blocks, want.Blocks) || !bytes.Equal(got.Stats, want.Stats) {
				t.Errorf("key %d: routed response differs from single daemon", i)
			}
		}
	}

	// Each key compiled exactly once cluster-wide, per shard-side counters.
	var computes uint64
	for si, s := range fleet {
		st := s.arts.Stats()
		t.Logf("shard %d: computes=%d mem-hits=%d", si, st.Computes, st.Mem.Hits)
		computes += st.Computes
	}
	if computes != uint64(len(bodies)) {
		t.Errorf("fleet computed %d artifacts for %d distinct keys", computes, len(bodies))
	}

	// Exactly one shard holds each artifact (no peer chaining happened).
	for i, key := range keys {
		holders := 0
		for _, s := range fleet {
			resp, err := s.ts.Client().Get(s.ts.URL + "/v1/cache/" + key)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				holders++
			}
		}
		if holders != 1 {
			t.Errorf("key %d held by %d shards, want exactly 1", i, holders)
		}
	}
}

// TestRouterBatch shards one batch across the fleet and merges results
// in submission order, matching a single daemon's per-job output.
func TestRouterBatch(t *testing.T) {
	fleet, router := newFleet(t, 3, nil)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()
	standalone := newShard(t)

	batch := `{"jobs": [
		{"machine": {"width": 2, "regs": 6}},
		{"machine": {"width": 3, "regs": 6}},
		{"method": "nosuch"},
		{"machine": {"width": 4, "regs": 6}},
		{"machine": {"width": 5, "regs": 6}},
		{"machine": {"width": 2, "regs": 8}}
	]}`
	resp, data := postJSON(t, gw.Client(), gw.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d: %s", resp.StatusCode, data)
	}
	sresp, sdata := postJSON(t, standalone.ts.Client(), standalone.ts.URL+"/v1/batch", batch)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("standalone batch: HTTP %d", sresp.StatusCode)
	}

	type jobView struct {
		Blocks json.RawMessage `json:"blocks"`
		Stats  json.RawMessage `json:"stats"`
		Error  string          `json:"error"`
	}
	var got, want struct {
		Results []jobView `json:"results"`
		Errors  int       `json:"errors"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sdata, &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 6 || got.Errors != 1 {
		t.Fatalf("results=%d errors=%d, want 6/1", len(got.Results), got.Errors)
	}
	for i := range got.Results {
		if (got.Results[i].Error != "") != (want.Results[i].Error != "") {
			t.Errorf("job %d: error mismatch (%q vs %q)", i, got.Results[i].Error, want.Results[i].Error)
			continue
		}
		if !bytes.Equal(got.Results[i].Blocks, want.Results[i].Blocks) ||
			!bytes.Equal(got.Results[i].Stats, want.Results[i].Stats) {
			t.Errorf("job %d: routed batch result differs from single daemon", i)
		}
	}

	var computes uint64
	for _, s := range fleet {
		computes += s.arts.Stats().Computes
	}
	if computes != 5 {
		t.Errorf("fleet computed %d artifacts for 5 valid jobs", computes)
	}
}

// TestRouterFailover kills one shard mid-campaign: every client request
// must still succeed (the dead shard's keys fail over to successors).
func TestRouterFailover(t *testing.T) {
	fleet, router := newFleet(t, 3, func(c *Config) {
		c.ProbeInterval = 50 * time.Millisecond
	})
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()

	bodies, _ := distinctRequests(t, 12)
	for i, body := range bodies {
		if i == 4 {
			fleet[1].ts.CloseClientConnections()
			fleet[1].ts.Close()
		}
		resp, data := postJSON(t, gw.Client(), gw.URL+"/v1/compile", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after shard kill: HTTP %d: %s", i, resp.StatusCode, data)
		}
	}
	// The dead shard left the ring (reactively or via probe).
	deadline := time.Now().Add(5 * time.Second)
	for router.Ring().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dead shard never ejected; ring=%v", router.Ring().Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stubShard is a scriptable fake backend for routing-policy tests.
type stubShard struct {
	ts       *httptest.Server
	compiles atomic.Int64

	mu          sync.Mutex
	queued      int64
	healthCode  int
	compileCode int
	delay       time.Duration
	retryAfter  string
	artifacts   map[string][]byte // framed, served on GET /v1/cache/{key}
}

func newStubShard(t *testing.T) *stubShard {
	t.Helper()
	s := &stubShard{healthCode: http.StatusOK, compileCode: http.StatusOK,
		artifacts: make(map[string][]byte)}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		code, queued := s.healthCode, s.queued
		s.mu.Unlock()
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"status": "ok", "draining": false, "in_flight": 0, "queued": %d}`, queued)
	})
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		code, delay, retry := s.compileCode, s.delay, s.retryAfter
		s.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		s.compiles.Add(1)
		if retry != "" {
			w.Header().Set("Retry-After", retry)
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"method": "ursa", "machine": "stub", "blocks": [], "stats": {}, "cache": {}}`)
	})
	mux.HandleFunc("/v1/cache/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		s.mu.Lock()
		framed, ok := s.artifacts[key]
		s.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write(framed)
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func stubRouter(t *testing.T, mod func(*Config), stubs ...*stubShard) *Router {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.ts.URL
	}
	cfg := Config{Backends: urls, SpillDepth: -1, HedgeDelay: -1, Logf: t.Logf}
	if mod != nil {
		mod(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func paperKey(t *testing.T) string {
	t.Helper()
	key, err := (&server.CompileRequest{}).CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestRouterCoalesces: concurrent identical requests produce exactly one
// upstream compile; everyone shares the leader's response.
func TestRouterCoalesces(t *testing.T) {
	stub := newStubShard(t)
	stub.mu.Lock()
	stub.delay = 150 * time.Millisecond
	stub.mu.Unlock()
	router := stubRouter(t, nil, stub)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, gw.Client(), gw.URL+"/v1/compile", `{}`)
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("client %d: HTTP %d", i, c)
		}
	}
	if got := stub.compiles.Load(); got != 1 {
		t.Errorf("upstream saw %d compiles for %d identical requests, want 1", got, n)
	}
	if got := router.mCoalesced.Value(); got != n-1 {
		t.Errorf("coalesced metric = %d, want %d", got, n-1)
	}
}

// TestRouterForwards429 verifies backpressure passes through untouched.
func TestRouterForwards429(t *testing.T) {
	stub := newStubShard(t)
	stub.mu.Lock()
	stub.compileCode = http.StatusTooManyRequests
	stub.retryAfter = "7"
	stub.mu.Unlock()
	router := stubRouter(t, nil, stub)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()

	resp, _ := postJSON(t, gw.Client(), gw.URL+"/v1/compile", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want 7 (forwarded faithfully)", ra)
	}
}

// TestRouterSpillover: when the owner's admission queue is deep, its
// keys route to the next ring successor until the queue drains.
func TestRouterSpillover(t *testing.T) {
	a, b := newStubShard(t), newStubShard(t)
	router := stubRouter(t, func(c *Config) {
		c.SpillDepth = 8
		c.ProbeInterval = 20 * time.Millisecond
	}, a, b)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()

	key := paperKey(t)
	owner, other := a, b
	if router.Ring().Owner(key) == b.ts.URL {
		owner, other = b, a
	}
	owner.mu.Lock()
	owner.queued = 100 // deep admission queue at the owner
	owner.mu.Unlock()

	// Wait for a probe round to pick up the queue depth.
	deadline := time.Now().Add(5 * time.Second)
	for router.backs[owner.ts.URL].queued.Load() != 100 {
		if time.Now().After(deadline) {
			t.Fatal("probe never saw the owner's queue depth")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, _ := postJSON(t, gw.Client(), gw.URL+"/v1/compile", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if got := other.compiles.Load(); got != 1 {
		t.Errorf("successor saw %d compiles, want 1 (spillover)", got)
	}
	if got := owner.compiles.Load(); got != 0 {
		t.Errorf("overloaded owner still saw %d compiles", got)
	}
	if router.mSpillovers.Value() == 0 {
		t.Error("spillover metric not incremented")
	}
}

// TestRouterHedge: a slow owner races the peer cache tier; the cached
// artifact wins, the response is synthesized from it, and the losing leg
// is cancelled through its context.
func TestRouterHedge(t *testing.T) {
	a, b := newStubShard(t), newStubShard(t)
	router := stubRouter(t, func(c *Config) {
		c.HedgeDelay = 30 * time.Millisecond
	}, a, b)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()

	key := paperKey(t)
	owner, other := a, b
	if router.Ring().Owner(key) == b.ts.URL {
		owner, other = b, a
	}
	owner.mu.Lock()
	owner.delay = 2 * time.Second // owner is slow; hedge should win
	owner.mu.Unlock()

	art := &store.Artifact{
		Method:  "ursa",
		Machine: "vliw4x8",
		Blocks:  []store.ArtifactBlock{{Label: "b0", Listing: "cycle0: nop\n"}},
		Stats:   store.ArtifactStats{Words: 1},
	}
	payload, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	other.mu.Lock()
	other.artifacts[key] = store.Frame(payload)
	other.mu.Unlock()

	start := time.Now()
	resp, data := postJSON(t, gw.Client(), gw.URL+"/v1/compile", `{"name": "hedged"}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	if elapsed > time.Second {
		t.Errorf("hedged response took %v, owner delay is 2s", elapsed)
	}
	var m struct {
		Name   string `json:"name"`
		Blocks []struct {
			Label   string `json:"label"`
			Listing string `json:"listing"`
		} `json:"blocks"`
		Cache struct {
			Result string `json:"result"`
			Key    string `json:"key"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Result != "peer" || m.Cache.Key != key {
		t.Errorf("cache = %+v, want peer/%s", m.Cache, key)
	}
	if m.Name != "hedged" || len(m.Blocks) != 1 || m.Blocks[0].Listing != "cycle0: nop\n" {
		t.Errorf("synthesized response wrong: %s", data)
	}
	if router.mHedgesWon.Value() != 1 {
		t.Errorf("hedges won = %d, want 1", router.mHedgesWon.Value())
	}
	// The losing leg was cancelled: the owner's handler saw its request
	// context die before the delay elapsed, so its compile counter never
	// moved.
	time.Sleep(50 * time.Millisecond)
	if got := owner.compiles.Load(); got != 0 {
		t.Errorf("cancelled owner leg still completed %d compiles", got)
	}
}

// TestRouterEjectReadmit drives a shard through down → ejected →
// recovered → readmitted via the probe loop.
func TestRouterEjectReadmit(t *testing.T) {
	a, b := newStubShard(t), newStubShard(t)
	router := stubRouter(t, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
		c.ReadmitBackoff = 20 * time.Millisecond
	}, a, b)

	b.mu.Lock()
	b.healthCode = http.StatusServiceUnavailable // draining / down
	b.mu.Unlock()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("ejection", func() bool { return router.Ring().Len() == 1 })
	if router.mRebalances.Value() != 1 {
		t.Errorf("rebalances = %d after ejection, want 1", router.mRebalances.Value())
	}

	b.mu.Lock()
	b.healthCode = http.StatusOK
	b.mu.Unlock()
	waitFor("readmission", func() bool { return router.Ring().Len() == 2 })
	if router.mRebalances.Value() != 2 {
		t.Errorf("rebalances = %d after readmission, want 2", router.mRebalances.Value())
	}
}

// TestRouterMetricsExposition spot-checks the router's Prometheus
// surface: per-backend series render with labels, and the scrape
// includes every router-side family.
func TestRouterMetricsExposition(t *testing.T) {
	stub := newStubShard(t)
	router := stubRouter(t, nil, stub)
	gw := httptest.NewServer(router.Handler())
	defer gw.Close()

	postJSON(t, gw.Client(), gw.URL+"/v1/compile", `{}`)
	resp, err := gw.Client().Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("ursagw_backend_requests_total{backend=%q} 1", stub.ts.URL),
		fmt.Sprintf("ursagw_backend_healthy{backend=%q} 1", stub.ts.URL),
		fmt.Sprintf("ursagw_backend_seconds_count{backend=%q} 1", stub.ts.URL),
		"ursagw_requests_total{endpoint=\"compile\"} 1",
		"ursagw_rebalances_total 0",
		"ursagw_spillovers_total 0",
		"ursagw_hedges_total 0",
		"ursagw_hedges_won_total 0",
		"ursagw_coalesced_total 0",
		"ursagw_failovers_total 0",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
