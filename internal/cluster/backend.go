package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ursa/internal/server"
	"ursa/internal/store"
)

// backend is one ursad shard as the router sees it: its base URL, the
// HTTP client used to forward requests, a PeerClient speaking the
// /v1/cache protocol for hedged artifact fetches, and the health state
// the probe loop maintains.
type backend struct {
	name string // base URL, e.g. "http://10.0.0.2:8347"
	hc   *http.Client
	peer *store.PeerClient

	healthy atomic.Bool
	queued  atomic.Int64 // admission queue depth from the last probe

	// Probe-loop state, guarded by mu: consecutive failures before an
	// ejection, and the backoff that spaces readmission probes so a
	// flapping shard cannot thrash the ring.
	mu        sync.Mutex
	fails     int
	backoff   time.Duration
	nextProbe time.Time
}

func newBackend(base string, requestTimeout, peerTimeout time.Duration) (*backend, error) {
	peer, err := store.NewPeer(base, peerTimeout)
	if err != nil {
		return nil, err
	}
	b := &backend{
		name: base,
		hc:   &http.Client{Timeout: requestTimeout},
		peer: peer,
	}
	b.healthy.Store(true) // optimistic: the first probe corrects this
	return b, nil
}

// probeOnce asks the shard for /healthz and reports whether it is
// serving. A 200 also refreshes the queue-depth snapshot the spillover
// policy reads; a 503 (draining) or any error counts as down.
func (b *backend) probeOnce(ctx context.Context, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.name+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var h server.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	b.queued.Store(h.Queued)
	return true
}

// BackendHealth is one shard's state in the router's /healthz body.
type BackendHealth struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Queued  int64  `json:"queued"`
}

// RouterHealth is the router's GET /healthz body: overall status plus a
// per-shard snapshot. Status is "ok" while at least one shard is
// routable, else "down" (with a 503).
type RouterHealth struct {
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy"`
	Backends []BackendHealth `json:"backends"`
}
