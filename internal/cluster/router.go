package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ursa/internal/metrics"
	"ursa/internal/server"
	"ursa/internal/store"
)

// Config tunes the router. Backends is required; every other field has a
// serviceable default.
type Config struct {
	// Backends are the shard base URLs ("http://host:8347"). The set is
	// fixed for the router's lifetime; health probes decide which members
	// are currently routable.
	Backends []string
	// VNodes is the ring's virtual-node count per shard (<= 0:
	// DefaultVNodes).
	VNodes int
	// ProbeInterval spaces health probes (0: 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz round-trip (0: 1s).
	ProbeTimeout time.Duration
	// EjectAfter is how many consecutive probe failures eject a shard
	// from the ring (0: 2). A transport error on a forwarded request
	// ejects immediately — a refused connection is stronger evidence
	// than a missed probe.
	EjectAfter int
	// ReadmitBackoff is the initial wait before an ejected shard is
	// probed for readmission; it doubles per failed probe up to
	// MaxBackoff (0: 1s).
	ReadmitBackoff time.Duration
	// MaxBackoff caps the readmission backoff (0: 30s).
	MaxBackoff time.Duration
	// SpillDepth is the admission-queue depth (from the shard's last
	// /healthz) past which the owner is considered overloaded and the
	// key spills to the next ring successor. Negative disables spillover
	// (0: 8).
	SpillDepth int64
	// HedgeDelay is how long a compile may sit on the owner before the
	// router hedges it against the fleet's peer cache tier. Negative
	// disables hedging (0: 150ms).
	HedgeDelay time.Duration
	// RequestTimeout bounds one forwarded request end to end (0: 120s —
	// above ursad's default 60s compile deadline, so the shard's own
	// timeout fires first and its 504 is forwarded rather than
	// manufactured here).
	RequestTimeout time.Duration
	// PeerTimeout bounds one hedged /v1/cache fetch (0: 2s).
	PeerTimeout time.Duration
	// MaxBodyBytes caps a request body (0: 4 MiB).
	MaxBodyBytes int64
	// Registry receives the router's metrics (nil: fresh registry).
	Registry *metrics.Registry
	// Logf, when non-nil, receives one line per ejection, readmission,
	// spillover, and hedge won.
	Logf func(format string, args ...any)
}

// Router is the cluster front end: it owns the hash ring, the backend
// health state, and the HTTP handler that places every compile on the
// shard owning its cache key. Create with New, mount Handler, and Close
// when done (stops the probe loop).
type Router struct {
	cfg   Config
	reg   *metrics.Registry
	mux   *http.ServeMux
	ring  *Ring
	bmu   sync.Mutex // guards eject/readmit transitions
	backs map[string]*backend
	names []string // sorted, fixed at construction

	flight store.Flight
	stop   chan struct{}
	done   chan struct{}

	mRequests    *metrics.CounterVec
	mResponses   *metrics.CounterVec
	mBackendReqs *metrics.CounterVec
	mBackendErrs *metrics.CounterVec
	mBackendSecs *metrics.HistogramVec
	mHealthy     *metrics.GaugeVec
	mQueueDepth  *metrics.GaugeVec
	mRebalances  *metrics.Counter
	mSpillovers  *metrics.Counter
	mHedges      *metrics.Counter
	mHedgesWon   *metrics.Counter
	mCoalesced   *metrics.Counter
	mFailovers   *metrics.Counter
}

// New builds a router over the configured shards and starts its health
// probe loop. Every shard starts routable; the first probe round
// corrects that within ProbeInterval.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 2
	}
	if cfg.ReadmitBackoff <= 0 {
		cfg.ReadmitBackoff = time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.SpillDepth == 0 {
		cfg.SpillDepth = 8
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 150 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 120 * time.Second
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = store.DefaultPeerTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}

	r := &Router{
		cfg:   cfg,
		reg:   cfg.Registry,
		ring:  NewRing(cfg.VNodes),
		backs: make(map[string]*backend),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, base := range cfg.Backends {
		base = strings.TrimRight(base, "/")
		if _, dup := r.backs[base]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %q", base)
		}
		b, err := newBackend(base, cfg.RequestTimeout, cfg.PeerTimeout)
		if err != nil {
			return nil, err
		}
		r.backs[base] = b
		r.names = append(r.names, base)
		r.ring.Add(base)
	}

	reg := r.reg
	r.mRequests = reg.CounterVec("ursagw_requests_total", "requests received by endpoint", "endpoint")
	r.mResponses = reg.CounterVec("ursagw_responses_total", "responses sent by status code", "code")
	r.mBackendReqs = reg.CounterVec("ursagw_backend_requests_total", "requests forwarded by backend", "backend")
	r.mBackendErrs = reg.CounterVec("ursagw_backend_errors_total", "forwarded requests that failed in transport by backend", "backend")
	r.mBackendSecs = reg.HistogramVec("ursagw_backend_seconds", "forwarded request latency in seconds by backend", "backend", nil)
	r.mHealthy = reg.GaugeVec("ursagw_backend_healthy", "1 while the backend is in the ring, 0 while ejected", "backend")
	r.mQueueDepth = reg.GaugeVec("ursagw_backend_queue_depth", "backend admission queue depth at the last health probe", "backend")
	r.mRebalances = reg.Counter("ursagw_rebalances_total", "ring membership changes (ejections plus readmissions)")
	r.mSpillovers = reg.Counter("ursagw_spillovers_total", "requests routed past an overloaded owner to a ring successor")
	r.mHedges = reg.Counter("ursagw_hedges_total", "compiles hedged against the peer cache tier")
	r.mHedgesWon = reg.Counter("ursagw_hedges_won_total", "hedged compiles answered by the peer cache tier before the owner")
	r.mCoalesced = reg.Counter("ursagw_coalesced_total", "requests coalesced onto an identical in-flight request")
	r.mFailovers = reg.Counter("ursagw_failovers_total", "requests retried on a ring successor after a transport failure")
	for _, name := range r.names {
		r.mHealthy.With(name).Set(1)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", r.instrument("compile", r.handleCompile))
	mux.HandleFunc("/v1/batch", r.instrument("batch", r.handleBatch))
	mux.HandleFunc("/v1/cache/", r.instrument("cache", r.handleCache))
	mux.HandleFunc("/v1/machines", r.instrument("machines", r.handleMachines))
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.Handle("/metrics", reg.Handler())
	r.mux = mux

	go r.probeLoop()
	return r, nil
}

// Handler returns the router's routed handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Registry returns the router's metrics registry.
func (r *Router) Registry() *metrics.Registry { return r.reg }

// Ring returns the router's hash ring (shared, live).
func (r *Router) Ring() *Ring { return r.ring }

// Close stops the probe loop. The handler keeps serving (with frozen
// health state) until the process exits.
func (r *Router) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
		<-r.done
	}
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// ------------------------------------------------------------ membership

// probeLoop drives the health checks: routable shards are probed every
// interval and ejected after EjectAfter consecutive failures; ejected
// shards are probed on an exponential backoff and readmitted on the
// first success.
func (r *Router) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	ctx := context.Background()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		for _, name := range r.names {
			b := r.backs[name]
			if b.healthy.Load() {
				if b.probeOnce(ctx, r.cfg.ProbeTimeout) {
					b.mu.Lock()
					b.fails = 0
					b.mu.Unlock()
					r.mQueueDepth.With(name).Set(b.queued.Load())
					continue
				}
				b.mu.Lock()
				b.fails++
				eject := b.fails >= r.cfg.EjectAfter
				b.mu.Unlock()
				if eject {
					r.eject(b, "probe failures")
				}
				continue
			}
			b.mu.Lock()
			due := !now.Before(b.nextProbe)
			b.mu.Unlock()
			if !due {
				continue
			}
			if b.probeOnce(ctx, r.cfg.ProbeTimeout) {
				r.readmit(b)
				continue
			}
			b.mu.Lock()
			b.backoff *= 2
			if b.backoff > r.cfg.MaxBackoff {
				b.backoff = r.cfg.MaxBackoff
			}
			b.nextProbe = time.Now().Add(b.backoff)
			b.mu.Unlock()
		}
	}
}

// eject removes the shard from the ring; its keys flow to their ring
// successors until readmission.
func (r *Router) eject(b *backend, why string) {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	if !b.healthy.Load() {
		return
	}
	b.healthy.Store(false)
	b.mu.Lock()
	b.fails = 0
	b.backoff = r.cfg.ReadmitBackoff
	b.nextProbe = time.Now().Add(b.backoff)
	b.mu.Unlock()
	r.ring.Remove(b.name)
	r.mRebalances.Inc()
	r.mHealthy.With(b.name).Set(0)
	r.logf("ursagw: ejected %s (%s); %d shards in ring", b.name, why, r.ring.Len())
}

// readmit returns the shard to the ring after a successful probe.
func (r *Router) readmit(b *backend) {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	if b.healthy.Load() {
		return
	}
	b.healthy.Store(true)
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
	r.ring.Add(b.name)
	r.mRebalances.Inc()
	r.mHealthy.With(b.name).Set(1)
	r.logf("ursagw: readmitted %s; %d shards in ring", b.name, r.ring.Len())
}

// --------------------------------------------------------------- routing

// candidates returns the routable shards for key in preference order:
// the ring owner first, then its successors (the failover order). When
// the owner's last-known admission queue is deeper than SpillDepth and a
// later candidate is under it, that candidate is promoted to the front —
// the load-aware spillover.
func (r *Router) candidates(key string) []*backend {
	names := r.ring.Successors(key, len(r.names))
	out := make([]*backend, 0, len(names))
	for _, n := range names {
		if b := r.backs[n]; b.healthy.Load() {
			out = append(out, b)
		}
	}
	if len(out) > 1 && r.cfg.SpillDepth >= 0 && out[0].queued.Load() > r.cfg.SpillDepth {
		for i := 1; i < len(out); i++ {
			if out[i].queued.Load() <= r.cfg.SpillDepth {
				spill := out[i]
				copy(out[1:i+1], out[:i])
				out[0] = spill
				r.mSpillovers.Inc()
				r.logf("ursagw: spillover %s… to %s (owner queue deep)", key[:8], spill.name)
				break
			}
		}
	}
	return out
}

// upstream is one forwarded response, reduced to what the client needs:
// the status, the backpressure header, and the body bytes. It is also
// the payload coalesced requests share through the single-flight group.
type upstream struct {
	Status     int    `json:"status"`
	RetryAfter string `json:"retry_after,omitempty"`
	Body       []byte `json:"body"`
}

// forward sends the request to the candidates in order, returning the
// first HTTP response obtained — whatever its status, including 429
// (forwarded faithfully, Retry-After intact). A transport failure ejects
// the shard and fails over to the next candidate; only when every
// candidate is unreachable does forward report an error.
func (r *Router) forward(ctx context.Context, method, path string, body []byte, cands []*backend) (*upstream, error) {
	var lastErr error
	for i, b := range cands {
		if i > 0 {
			r.mFailovers.Inc()
		}
		start := time.Now()
		r.mBackendReqs.With(b.name).Inc()
		req, err := http.NewRequestWithContext(ctx, method, b.name+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := b.hc.Do(req)
		if err != nil {
			r.mBackendErrs.With(b.name).Inc()
			lastErr = err
			if ctx.Err() != nil {
				// The client (or the hedge winner) cancelled; not the
				// shard's fault.
				return nil, ctx.Err()
			}
			r.eject(b, "request transport error")
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody+1))
		resp.Body.Close()
		if err != nil || int64(len(data)) > maxProxyBody {
			r.mBackendErrs.With(b.name).Inc()
			lastErr = fmt.Errorf("cluster: reading %s response: %w", b.name, err)
			continue
		}
		r.mBackendSecs.With(b.name).Observe(time.Since(start).Seconds())
		return &upstream{
			Status:     resp.StatusCode,
			RetryAfter: resp.Header.Get("Retry-After"),
			Body:       data,
		}, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no routable shard")
	}
	return nil, fmt.Errorf("cluster: every shard failed: %w", lastErr)
}

// maxProxyBody caps one forwarded response (listings can be large, but
// bounded by the shard's own body and batch limits).
const maxProxyBody = 256 << 20

// ------------------------------------------------------------- /v1/compile

func (r *Router) handleCompile(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", r.cfg.MaxBodyBytes))
		return
	}
	var cr server.CompileRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cr); err != nil {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	key, err := cr.CacheKey()
	if err != nil {
		r.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()

	// Coalesce byte-identical concurrent requests: one upstream compile,
	// every caller shares the response. The flight key includes the body
	// hash, not just the cache key, because the cache key deliberately
	// excludes execution fields (run/init) whose responses differ.
	sum := sha256.Sum256(body)
	flightKey := key + "|" + hex.EncodeToString(sum[:8])
	data, err, leader := r.flight.Do(flightKey, func() ([]byte, error) {
		up, err := r.routeCompile(ctx, key, &cr, body)
		if err != nil {
			return nil, err
		}
		return json.Marshal(up)
	})
	if !leader {
		r.mCoalesced.Inc()
	}
	if err != nil {
		r.writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	var up upstream
	if err := json.Unmarshal(data, &up); err != nil {
		r.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	r.writeUpstream(w, &up)
}

// routeCompile places one compile: pick candidates, forward to the
// owner, and — for requests a cached artifact can answer — hedge against
// the fleet's peer cache tier when the owner is slow.
func (r *Router) routeCompile(ctx context.Context, key string, cr *server.CompileRequest, body []byte) (*upstream, error) {
	cands := r.candidates(key)
	if len(cands) == 0 {
		return nil, errors.New("no routable shard")
	}
	hedgeable := !cr.Run && r.cfg.HedgeDelay >= 0 && len(r.names) > 1
	if !hedgeable {
		return r.forward(ctx, http.MethodPost, "/v1/compile", body, cands)
	}

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	primary := make(chan *upstream, 1)
	perr := make(chan error, 1)
	go func() {
		up, err := r.forward(fctx, http.MethodPost, "/v1/compile", body, cands)
		if err != nil {
			perr <- err
			return
		}
		primary <- up
	}()

	hedgeTimer := time.NewTimer(r.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	select {
	case up := <-primary:
		return up, nil
	case err := <-perr:
		return nil, err
	case <-hedgeTimer.C:
	}

	// The owner is slow; race the rest of the fleet's caches against it.
	r.mHedges.Inc()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hedged := make(chan *upstream, 1)
	go func() {
		if art, ok := r.peerArtifact(hctx, key, cands[0]); ok {
			if up, err := hedgeUpstream(cr.Name, key, art); err == nil {
				hedged <- up
			}
		}
	}()
	select {
	case up := <-primary:
		return up, nil
	case err := <-perr:
		// The owner leg died; a hedge hit can still save the request.
		select {
		case up := <-hedged:
			r.mHedgesWon.Inc()
			return up, nil
		case <-time.After(r.cfg.PeerTimeout):
			return nil, err
		case <-ctx.Done():
			return nil, err
		}
	case up := <-hedged:
		r.mHedgesWon.Inc()
		fcancel() // cancel the losing leg through the peer client's context
		r.logf("ursagw: hedge won for %s…", key[:8])
		return up, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// peerArtifact asks every routable shard except the primary for the
// artifact under key, in ring order, over the /v1/cache peer protocol.
func (r *Router) peerArtifact(ctx context.Context, key string, primary *backend) (*store.Artifact, bool) {
	for _, name := range r.ring.Successors(key, len(r.names)) {
		b := r.backs[name]
		if b == primary || !b.healthy.Load() {
			continue
		}
		if ctx.Err() != nil {
			return nil, false
		}
		payload, ok := b.peer.GetCtx(ctx, key)
		if !ok {
			continue
		}
		art, err := store.DecodeArtifact(payload)
		if err != nil {
			continue
		}
		return art, true
	}
	return nil, false
}

// hedgeUpstream renders a cached artifact as the compile response the
// owner would have sent: identical blocks and statistics, with the cache
// tier reported as "peer".
func hedgeUpstream(name, key string, art *store.Artifact) (*upstream, error) {
	resp := server.CompileResponse{
		Name:    name,
		Method:  art.Method,
		Machine: art.Machine,
		Stats: server.StatsJSON{
			Words:          art.Stats.Words,
			SpillOps:       art.Stats.SpillOps,
			IntRegs:        art.Stats.IntRegs,
			FPRegs:         art.Stats.FPRegs,
			URSATransforms: art.Stats.URSATransforms,
			URSAFits:       art.Stats.URSAFits,
		},
		Cache: server.CacheDelta{Result: store.TierPeer.String(), Key: key},
	}
	for _, b := range art.Blocks {
		resp.Blocks = append(resp.Blocks, server.BlockListing{Label: b.Label, Listing: b.Listing})
	}
	body, err := json.MarshalIndent(&resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return &upstream{Status: http.StatusOK, Body: append(body, '\n')}, nil
}

// --------------------------------------------------------------- /v1/batch

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", r.cfg.MaxBodyBytes))
		return
	}
	var br server.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&br); err != nil {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(br.Jobs) == 0 {
		r.writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()

	start := time.Now()
	results := make([]server.BatchResult, len(br.Jobs))
	keys := make([]string, len(br.Jobs))
	pending := make([]int, 0, len(br.Jobs)) // indices still to serve
	for i := range br.Jobs {
		key, err := br.Jobs[i].CacheKey()
		if err != nil {
			results[i] = server.BatchResult{Error: err.Error()}
			continue
		}
		keys[i] = key
		pending = append(pending, i)
	}

	// Shard the batch: group the jobs by their keys' owners, forward the
	// sub-batches concurrently, and merge results back in submission
	// order. A shard lost mid-batch ejects and its sub-batch re-shards
	// over the survivors, so a batch outlives any single backend.
	var agg server.CacheDelta
	for attempt := 0; len(pending) > 0 && attempt <= len(r.names); attempt++ {
		groups := make(map[*backend][]int)
		for _, i := range pending {
			cands := r.candidates(keys[i])
			if len(cands) == 0 {
				results[i] = server.BatchResult{Error: "no routable shard"}
				continue
			}
			groups[cands[0]] = append(groups[cands[0]], i)
		}
		pending = pending[:0]

		type groupOut struct {
			idx  []int
			up   *upstream
			err  error
			resp *server.BatchResponse
		}
		outs := make(chan groupOut, len(groups))
		for b, idx := range groups {
			go func(b *backend, idx []int) {
				sub := server.BatchRequest{Workers: br.Workers}
				for _, i := range idx {
					sub.Jobs = append(sub.Jobs, br.Jobs[i])
				}
				sb, err := json.Marshal(&sub)
				if err != nil {
					outs <- groupOut{idx: idx, err: err}
					return
				}
				up, err := r.forward(ctx, http.MethodPost, "/v1/batch", sb, []*backend{b})
				out := groupOut{idx: idx, up: up, err: err}
				if err == nil && up.Status == http.StatusOK {
					var resp server.BatchResponse
					if jerr := json.Unmarshal(up.Body, &resp); jerr == nil && len(resp.Results) == len(idx) {
						out.resp = &resp
					}
				}
				outs <- out
			}(b, idx)
		}

		var shed *upstream
		for range groups {
			out := <-outs
			switch {
			case out.err != nil:
				// Transport failure: the shard was ejected by forward;
				// re-route these jobs over the survivors.
				pending = append(pending, out.idx...)
			case out.up.Status == http.StatusTooManyRequests:
				// Backpressure is forwarded faithfully: the whole batch
				// reports 429 with the shard's Retry-After.
				shed = out.up
			case out.resp != nil:
				for j, i := range out.idx {
					results[i] = out.resp.Results[j]
				}
				agg.Hits += out.resp.Cache.Hits
				agg.Misses += out.resp.Cache.Misses
			default:
				// Some other upstream failure (timeout, 5xx): surface it
				// per-job rather than failing jobs routed elsewhere.
				for _, i := range out.idx {
					results[i] = server.BatchResult{Error: fmt.Sprintf("shard error (HTTP %d)", out.up.Status)}
				}
			}
		}
		if shed != nil {
			r.writeUpstream(w, shed)
			return
		}
	}
	for _, i := range pending {
		results[i] = server.BatchResult{Error: "no routable shard"}
	}

	nerr := 0
	for i := range results {
		if results[i].Error != "" {
			nerr++
		}
	}
	resp := server.BatchResponse{
		Results:   results,
		Errors:    nerr,
		Cache:     agg,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	r.writeJSON(w, http.StatusOK, &resp)
}

// ------------------------------------------------------- /v1/cache, /v1/machines

func (r *Router) handleCache(w http.ResponseWriter, req *http.Request) {
	key := strings.TrimPrefix(req.URL.Path, "/v1/cache/")
	if key == "" || strings.ContainsAny(key, "/.") || len(key) > 128 {
		r.writeError(w, http.StatusBadRequest, "bad cache key")
		return
	}
	var body []byte
	switch req.Method {
	case http.MethodGet:
	case http.MethodPut:
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, maxProxyBody+1))
		if err != nil || int64(len(body)) > maxProxyBody {
			r.writeError(w, http.StatusRequestEntityTooLarge, "artifact too large")
			return
		}
	default:
		r.writeError(w, http.StatusMethodNotAllowed, "use GET or PUT")
		return
	}
	cands := r.candidates(key)
	if len(cands) == 0 {
		r.writeError(w, http.StatusBadGateway, "no routable shard")
		return
	}
	up, err := r.forward(req.Context(), req.Method, "/v1/cache/"+key, body, cands)
	if err != nil {
		r.writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	r.writeRaw(w, up, "application/octet-stream")
}

func (r *Router) handleMachines(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var cands []*backend
	for _, name := range r.names {
		if b := r.backs[name]; b.healthy.Load() {
			cands = append(cands, b)
		}
	}
	if len(cands) == 0 {
		r.writeError(w, http.StatusBadGateway, "no routable shard")
		return
	}
	up, err := r.forward(req.Context(), http.MethodGet, "/v1/machines", nil, cands)
	if err != nil {
		r.writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	r.writeUpstream(w, up)
}

// ----------------------------------------------------------------- healthz

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := RouterHealth{Status: "ok"}
	for _, name := range r.names {
		b := r.backs[name]
		ok := b.healthy.Load()
		if ok {
			h.Healthy++
		}
		h.Backends = append(h.Backends, BackendHealth{
			Name:    name,
			Healthy: ok,
			Queued:  b.queued.Load(),
		})
	}
	code := http.StatusOK
	if h.Healthy == 0 {
		h.Status = "down"
		code = http.StatusServiceUnavailable
	}
	r.writeJSON(w, code, &h)
}

// --------------------------------------------------------------- plumbing

// instrument wraps a handler with request counting and panic recovery.
func (r *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		r.mRequests.With(endpoint).Inc()
		defer func() {
			if rv := recover(); rv != nil {
				r.logf("ursagw: %s: panic: %v", endpoint, rv)
				r.writeError(w, http.StatusInternalServerError, fmt.Sprint(rv))
			}
		}()
		h(w, req)
	}
}

// writeUpstream relays a forwarded response: status, Retry-After, body.
func (r *Router) writeUpstream(w http.ResponseWriter, up *upstream) {
	r.writeRaw(w, up, "application/json")
}

func (r *Router) writeRaw(w http.ResponseWriter, up *upstream, contentType string) {
	if up.RetryAfter != "" {
		w.Header().Set("Retry-After", up.RetryAfter)
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(up.Status)
	_, _ = w.Write(up.Body)
	r.mResponses.With(fmt.Sprint(up.Status)).Inc()
}

func (r *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	r.mResponses.With(fmt.Sprint(code)).Inc()
}

func (r *Router) writeError(w http.ResponseWriter, code int, msg string) {
	r.writeJSON(w, code, server.ErrorResponse{Error: msg})
}
