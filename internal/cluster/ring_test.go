package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns n pseudo-cache-keys, deterministic across runs.
func testKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return keys
}

func ringOf(members ...string) *Ring {
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func shards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8347", i)
	}
	return out
}

// TestRingDistribution bounds the skew of key placement: with 128 vnodes
// per member, no member's share of 1000 keys may stray past 2× (or under
// half) the fair share, for fleets of 3, 5, and 10 shards.
func TestRingDistribution(t *testing.T) {
	keys := testKeys(1000)
	for _, n := range []int{3, 5, 10} {
		r := ringOf(shards(n)...)
		counts := make(map[string]int)
		for _, k := range keys {
			owner := r.Owner(k)
			if owner == "" {
				t.Fatalf("n=%d: no owner for %s", n, k)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members own keys", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for m, c := range counts {
			if float64(c) > 2*fair || float64(c) < fair/2 {
				t.Errorf("n=%d: member %s owns %d keys, fair share %.0f (skew out of [0.5, 2])",
					n, m, c, fair)
			}
		}
		t.Logf("n=%d: counts=%v", n, counts)
	}
}

// TestRingMinimalMovement verifies the consistent-hashing contract: a
// single join or leave moves well under 2/N of the keys, and every move
// on a leave lands keys away from the departed member only.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(1000)
	for _, n := range []int{3, 5, 10} {
		members := shards(n)
		r := ringOf(members...)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}

		// Join: a new member may only take keys, never reshuffle others.
		joined := "http://shard-new:8347"
		r.Add(joined)
		moved := 0
		for _, k := range keys {
			after := r.Owner(k)
			if after != before[k] {
				moved++
				if after != joined {
					t.Errorf("n=%d: key %s moved %s -> %s on join of %s",
						n, k, before[k], after, joined)
				}
			}
		}
		bound := int(2.0 / float64(n+1) * float64(len(keys)))
		if moved >= bound {
			t.Errorf("n=%d: join moved %d/%d keys, want < %d (2/N)", n, moved, len(keys), bound)
		}

		// Leave: only the departed member's keys move.
		r.Remove(joined)
		for _, k := range keys {
			if r.Owner(k) != before[k] {
				t.Errorf("n=%d: key %s did not return to %s after leave", n, k, before[k])
			}
		}
		victim := members[0]
		r.Remove(victim)
		moved = 0
		for _, k := range keys {
			after := r.Owner(k)
			if after != before[k] {
				moved++
				if before[k] != victim {
					t.Errorf("n=%d: key %s moved %s -> %s on leave of %s",
						n, k, before[k], after, victim)
				}
			}
			if after == victim {
				t.Errorf("n=%d: key %s still owned by removed member", n, k)
			}
		}
		if moved >= int(2.0/float64(n)*float64(len(keys))) {
			t.Errorf("n=%d: leave moved %d/%d keys, want < 2/N", n, moved, len(keys))
		}
	}
}

// TestRingDeterministicOwnership pins the property the router depends
// on: ownership is a pure function of the member set — independent of
// insertion order, identical across Ring instances (hence across
// processes), and stable for a golden key so an accidental change to the
// hash function fails loudly.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := testKeys(200)
	members := shards(5)
	a := ringOf(members...)
	b := NewRing(0)
	for i := len(members) - 1; i >= 0; i-- { // reverse insertion order
		b.Add(members[i])
	}
	c := ringOf(members...)
	c.Remove(members[2]) // churn: leave then rejoin must restore placement
	c.Add(members[2])
	for _, k := range keys {
		if ao, bo, co := a.Owner(k), b.Owner(k), c.Owner(k); ao != bo || ao != co {
			t.Fatalf("key %s: owners diverge (%s / %s / %s)", k, ao, bo, co)
		}
	}

	// Golden: pins hashPoint/hashKey. If this fails, every deployed
	// router and every shard's artifact placement changes — bump
	// deliberately, never accidentally.
	if got := a.Owner("golden-key"); got != "http://shard-2:8347" {
		t.Errorf("golden key owner = %s (hash function changed?)", got)
	}
}

// TestRingSuccessors checks the failover order: the owner first, then
// distinct members, never more than the fleet.
func TestRingSuccessors(t *testing.T) {
	r := ringOf(shards(4)...)
	for _, k := range testKeys(50) {
		succ := r.Successors(k, 10)
		if len(succ) != 4 {
			t.Fatalf("key %s: %d successors, want 4", k, len(succ))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %s: successor[0] %s != owner %s", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %s: duplicate successor %s", k, s)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("k", 2); len(got) != 2 {
		t.Fatalf("Successors(k, 2) = %v", got)
	}
	if got := NewRing(0).Successors("k", 3); got != nil {
		t.Fatalf("empty ring successors = %v", got)
	}
	if NewRing(0).Owner("k") != "" {
		t.Fatal("empty ring owner should be empty")
	}
}
