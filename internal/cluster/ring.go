// Package cluster turns a set of independent ursad daemons into a
// sharded compile fleet: a consistent-hash ring places every canonical
// compile key (pipeline.CacheKey) on exactly one backend, and a router
// in front of the fleet (cmd/ursagw, or any Go program mounting
// Router.Handler) forwards each request to the shard that owns its key.
//
// The point of key-affine routing is that the expensive state — the
// artifact cache and the measurement cache — is per-daemon: when every
// request for a key lands on the same shard, each key is compiled once
// cluster-wide and every repeat is a memory-tier hit, without any
// coordination between the shards themselves. The ring keeps that
// placement stable under membership change (a node joining or leaving
// moves only ~1/N of the keys), health probes eject dead shards and
// readmit them with backoff, load-aware spillover shifts keys off a
// shard whose admission queue is deep, and a hedged fallback races the
// fleet's peer cache tier against a slow owner for tail latency.
//
// See docs/CLUSTER.md for topology, policy, and the metrics table.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per member when a Ring is
// built with vnodes <= 0. 128 points per member keeps the worst member's
// share within a few tens of percent of the mean (see ring_test.go's
// skew bound) while membership changes stay O(vnodes·log(points)).
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Hashing is pure
// (sha256 over the member name and vnode index, no process state), so
// any two processes holding the same member set derive identical
// ownership — the property that lets a router restart, or a second
// router instance, route the same keys to the same shards. All methods
// are safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []point // sorted by hash
	members map[string]bool
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0: DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hashPoint positions one virtual node. sha256 rather than a cheap hash:
// placement happens only on membership change, and the uniformity is
// what bounds the skew across members.
func hashPoint(member string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", member, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// hashKey positions a lookup key on the ring.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hashPoint(member, v), member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member. Removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's position. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the owner first, then the members that would own the
// key if their predecessors left. The spillover and failover policies
// walk this list.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
