// Package workload provides the evaluation inputs: the paper's worked
// example (Figure 2), a suite of loop kernels in the frontend language
// (the fine-grained-parallel codes VLIW compilers of the era targeted), and
// seeded random DAG generators for scaling and property tests.
package workload

import (
	"fmt"
	"math/rand"

	"ursa/internal/dag"
	"ursa/internal/frontend"
	"ursa/internal/ir"
)

// PaperExample returns the basic block of Figure 2 (nodes A..K). With
// store=true the final value is consumed by a store (a closed region ready
// for the pipelines); with store=false the block matches the figure exactly
// and z is live-out.
func PaperExample(store bool) *ir.Func {
	src := `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
`
	if store {
		src += "\tstore Z[0], z\n"
	}
	return ir.MustParse(src + "}\n")
}

// PaperInit returns the canonical input state for the paper example
// (V[0] = 7, for which Z[0] must come out 28).
func PaperInit() *ir.State {
	st := ir.NewState()
	st.StoreInt("V", 0, 7)
	return st
}

// A Kernel is a named benchmark program.
type Kernel struct {
	Name   string
	Source string
	// N is the problem size baked into the source.
	N int
	// Init fills the input arrays of a state deterministically from seed.
	Init func(st *ir.State, seed int64)
	// FP marks kernels exercising the floating-point register class.
	FP bool
}

// Unit compiles the kernel with the given unroll factor.
func (k *Kernel) Unit(unroll int) (*frontend.Unit, error) {
	return frontend.Compile(k.Source, frontend.Options{Unroll: unroll})
}

// State returns an initialized input state.
func (k *Kernel) State(seed int64) *ir.State {
	st := ir.NewState()
	if k.Init != nil {
		k.Init(st, seed)
	}
	return st
}

func fillInt(st *ir.State, sym string, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		st.StoreInt(sym, int64(i), rng.Int63n(1000)-500)
	}
}

func fillFloat(st *ir.State, sym string, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		st.StoreFloat(sym, int64(i), rng.Float64()*10-5)
	}
}

// Kernels returns the benchmark suite. Every kernel is a closed program:
// inputs come from arrays, results go to arrays.
func Kernels() []*Kernel {
	return []*Kernel{
		{
			Name: "fir8",
			N:    64,
			Source: `
func fir8 {
	float x[]; float h[]; float y[];
	for i = 0 to 64 {
		y[i] = x[i]*h[0] + x[i+1]*h[1] + x[i+2]*h[2] + x[i+3]*h[3]
		     + x[i+4]*h[4] + x[i+5]*h[5] + x[i+6]*h[6] + x[i+7]*h[7];
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "x", 72, seed)
				fillFloat(st, "h", 8, seed+1)
			},
			FP: true,
		},
		{
			Name: "dot",
			N:    64,
			Source: `
func dot {
	float a[]; float b[];
	var sum = 0.0;
	for i = 0 to 64 { sum = sum + a[i]*b[i]; }
	out[0] = sum;
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "a", 64, seed)
				fillFloat(st, "b", 64, seed+1)
			},
			FP: true,
		},
		{
			Name: "saxpy",
			N:    64,
			Source: `
func saxpy {
	float x[]; float y[]; float a[];
	for i = 0 to 64 { y[i] = a[0]*x[i] + y[i]; }
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "x", 64, seed)
				fillFloat(st, "y", 64, seed+1)
				fillFloat(st, "a", 1, seed+2)
			},
			FP: true,
		},
		{
			Name: "hydro",
			N:    64,
			// Livermore loop 1 (hydro fragment).
			Source: `
func hydro {
	float x[]; float y[]; float z[]; float c[];
	for k = 0 to 64 {
		x[k] = c[0] + y[k]*(c[1]*z[k+10] + c[2]*z[k+11]);
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "y", 64, seed)
				fillFloat(st, "z", 80, seed+1)
				fillFloat(st, "c", 3, seed+2)
			},
			FP: true,
		},
		{
			Name: "tridiag",
			N:    64,
			// Livermore loop 5 flavour (tri-diagonal elimination, forward
			// dependence kept in memory).
			Source: `
func tridiag {
	float x[]; float y[]; float z[];
	for i = 1 to 64 { x[i] = z[i]*(y[i] - x[i-1]); }
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "x", 64, seed)
				fillFloat(st, "y", 64, seed+1)
				fillFloat(st, "z", 64, seed+2)
			},
			FP: true,
		},
		{
			Name: "matmul4",
			N:    4,
			Source: `
func matmul4 {
	for i = 0 to 4 {
		for j = 0 to 4 {
			var s = 0;
			for k = 0 to 4 { s = s + a[i*4+k] * b[k*4+j]; }
			c[i*4+j] = s;
		}
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "a", 16, seed)
				fillInt(st, "b", 16, seed+1)
			},
		},
		{
			Name: "poly",
			N:    64,
			// Degree-7 polynomial, expanded (not Horner) so the block has
			// real ILP and register pressure.
			Source: `
func poly {
	for i = 0 to 64 {
		var x = v[i];
		var x2 = x*x;
		var x3 = x2*x;
		var x4 = x2*x2;
		var x5 = x4*x;
		var x6 = x3*x3;
		var x7 = x6*x;
		p[i] = 7*x7 + 6*x6 + 5*x5 + 4*x4 + 3*x3 + 2*x2 + x + 1;
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "v", 64, seed)
			},
		},
		{
			Name: "fft2",
			N:    32,
			// Radix-2 butterfly sweep over interleaved re/im pairs.
			Source: `
func fft2 {
	float re[]; float im[]; float w[];
	for i = 0 to 32 {
		var tr = re[i+32]*w[0] - im[i+32]*w[1];
		var ti = re[i+32]*w[1] + im[i+32]*w[0];
		re[i+32] = re[i] - tr;
		im[i+32] = im[i] - ti;
		re[i] = re[i] + tr;
		im[i] = im[i] + ti;
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "re", 64, seed)
				fillFloat(st, "im", 64, seed+1)
				fillFloat(st, "w", 2, seed+2)
			},
			FP: true,
		},
		{
			Name: "stencil3",
			N:    64,
			Source: `
func stencil3 {
	for i = 1 to 63 { o[i] = (g[i-1] + 2*g[i] + g[i+1]) / 4; }
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "g", 64, seed)
			},
		},
		{
			Name: "cmul",
			N:    32,
			// Complex vector multiply over interleaved re/im pairs.
			Source: `
func cmul {
	float ar[]; float ai[]; float br[]; float bi[];
	float cr[]; float ci[];
	for i = 0 to 32 {
		cr[i] = ar[i]*br[i] - ai[i]*bi[i];
		ci[i] = ar[i]*bi[i] + ai[i]*br[i];
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "ar", 32, seed)
				fillFloat(st, "ai", 32, seed+1)
				fillFloat(st, "br", 32, seed+2)
				fillFloat(st, "bi", 32, seed+3)
			},
			FP: true,
		},
		{
			Name: "state",
			N:    32,
			// Livermore loop 7 flavour: equation of state fragment, deep
			// expression with high ILP and FP pressure.
			Source: `
func state {
	float u[]; float z[]; float y[]; float x[]; float q[];
	for k = 0 to 32 {
		x[k] = u[k] + q[0]*(z[k] + q[1]*y[k])
		     + q[2]*(u[k+3] + q[3]*(u[k+2] + q[4]*u[k+1]))
		     + q[5]*(u[k+6] + q[0]*(u[k+5] + q[1]*u[k+4]));
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillFloat(st, "u", 40, seed)
				fillFloat(st, "z", 32, seed+1)
				fillFloat(st, "y", 32, seed+2)
				fillFloat(st, "q", 6, seed+3)
			},
			FP: true,
		},
		{
			Name: "transpose4",
			N:    4,
			Source: `
func transpose4 {
	for i = 0 to 4 {
		for j = 0 to 4 { tb[j*4+i] = ta[i*4+j]; }
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "ta", 16, seed)
			},
		},
		{
			Name: "horner",
			N:    64,
			// Horner evaluation: a fully serial dependence chain — the
			// anti-poly. Exposes the no-parallelism end of the spectrum.
			Source: `
func horner {
	for i = 0 to 64 {
		var x = v[i];
		var acc = 7;
		acc = acc*x + 6;
		acc = acc*x + 5;
		acc = acc*x + 4;
		acc = acc*x + 3;
		acc = acc*x + 2;
		acc = acc*x + 1;
		p[i] = acc;
	}
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "v", 64, seed)
			},
		},
		{
			Name: "prefix",
			N:    64,
			// Serial prefix sum through memory: the loop-carried dependence
			// limits every pipeline equally.
			Source: `
func prefix {
	for i = 1 to 64 { ps[i] = ps[i-1] + g[i]; }
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "g", 64, seed)
				fillInt(st, "ps", 64, seed+1)
			},
		},
		{
			Name: "maxloc",
			N:    64,
			// Data-dependent control flow: trace selection material.
			Source: `
func maxloc {
	var best = m[0];
	var loc = 0;
	for i = 1 to 64 {
		if (m[i] > best) { best = m[i]; loc = i; }
	}
	out[0] = best;
	out[1] = loc;
}`,
			Init: func(st *ir.State, seed int64) {
				fillInt(st, "m", 64, seed)
			},
		},
	}
}

// KernelByName returns the named kernel or nil.
func KernelByName(name string) *Kernel {
	for _, k := range Kernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// SuiteEntry pairs a kernel with its compiled function.
type SuiteEntry struct {
	Kernel *Kernel
	Func   *ir.Func
}

// Suite compiles every kernel at the given unroll factor and returns the
// pairs in suite order — the multi-function input for batch compilation
// drivers and benchmarks. The returned functions may be shared across
// concurrent compilations (the pipeline clones per block).
func Suite(unroll int) ([]SuiteEntry, error) {
	kernels := Kernels()
	out := make([]SuiteEntry, 0, len(kernels))
	for _, k := range kernels {
		u, err := k.Unit(unroll)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", k.Name, err)
		}
		out = append(out, SuiteEntry{Kernel: k, Func: u.Func})
	}
	return out, nil
}

// RandomBlock generates a seeded random straight-line closed block with n
// value-producing instructions: loads, immediate ops and binary ALU ops,
// with all otherwise-dead values consumed by stores. The density parameter
// in (0,1] skews operand selection toward recent values (deep, serial DAGs)
// or early values (wide, parallel DAGs).
func RandomBlock(rng *rand.Rand, n int, recentBias float64) *ir.Func {
	f := ir.NewFunc(fmt.Sprintf("rand%d", n))
	b := f.NewBlock("entry")
	var vals []ir.VReg
	pick := func() ir.VReg {
		if rng.Float64() < recentBias {
			lo := len(vals) * 3 / 4
			return vals[lo+rng.Intn(len(vals)-lo)]
		}
		return vals[rng.Intn(len(vals))]
	}
	for i := 0; i < n; i++ {
		dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
		switch {
		case len(vals) == 0 || rng.Intn(6) == 0:
			b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i % 16)})
		case rng.Intn(4) == 0:
			b.Append(&ir.Instr{Op: ir.MulI, Dst: dst, Args: []ir.VReg{pick()}, Imm: int64(1 + rng.Intn(7))})
		default:
			op := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor, ir.And, ir.Or}[rng.Intn(6)]
			b.Append(&ir.Instr{Op: op, Dst: dst, Args: []ir.VReg{pick(), pick()}})
		}
		vals = append(vals, dst)
	}
	used := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	for i, v := range vals {
		if !used[v] {
			b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{v}, Sym: "OUT", Off: int64(i)})
		}
	}
	return f
}

// LayeredBlock generates a block with explicit layered parallelism: width
// independent chains of the given depth, reduced pairwise at the end.
// Its FU width is exactly `width` and its register demand scales with
// width, making it the calibrated input for the sweep experiments.
func LayeredBlock(width, depth int) *ir.Func {
	f := ir.NewFunc(fmt.Sprintf("layered%dx%d", width, depth))
	b := f.NewBlock("entry")
	tips := make([]ir.VReg, width)
	for w := 0; w < width; w++ {
		v := f.NewReg(fmt.Sprintf("l%d_0", w), ir.ClassInt)
		b.Append(&ir.Instr{Op: ir.Load, Dst: v, Sym: "A", Off: int64(w)})
		tips[w] = v
		for d := 1; d < depth; d++ {
			nv := f.NewReg(fmt.Sprintf("l%d_%d", w, d), ir.ClassInt)
			b.Append(&ir.Instr{Op: ir.AddI, Dst: nv, Args: []ir.VReg{tips[w]}, Imm: int64(d)})
			tips[w] = nv
		}
	}
	// Pairwise reduction tree.
	for len(tips) > 1 {
		var next []ir.VReg
		for i := 0; i+1 < len(tips); i += 2 {
			nv := f.NewReg(fmt.Sprintf("r%d_%d", len(tips), i), ir.ClassInt)
			b.Append(&ir.Instr{Op: ir.Add, Dst: nv, Args: []ir.VReg{tips[i], tips[i+1]}})
			next = append(next, nv)
		}
		if len(tips)%2 == 1 {
			next = append(next, tips[len(tips)-1])
		}
		tips = next
	}
	b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{tips[0]}, Sym: "OUT", Off: 0})
	return f
}

// RandomInit fills the A array read by RandomBlock and LayeredBlock.
func RandomInit(seed int64) *ir.State {
	st := ir.NewState()
	fillInt(st, "A", 16, seed)
	return st
}

// MustBuild builds the dependence DAG of a function's first block, panicking
// on error; a convenience for benchmarks.
func MustBuild(f *ir.Func) *dag.Graph {
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		panic(err)
	}
	return g
}
