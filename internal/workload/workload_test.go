package workload

import (
	"math/rand"
	"testing"

	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/pipeline"
)

func TestPaperExampleShape(t *testing.T) {
	f := PaperExample(false)
	if got := len(f.Blocks[0].Instrs); got != 11 {
		t.Errorf("instrs = %d, want 11", got)
	}
	f = PaperExample(true)
	if got := len(f.Blocks[0].Instrs); got != 12 {
		t.Errorf("instrs = %d, want 12", got)
	}
	st := PaperInit()
	if _, err := st.Run(f, 100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := st.Mem[ir.Addr{Sym: "Z", Off: 0}].Int(); got != 28 {
		t.Errorf("Z[0] = %d, want 28", got)
	}
}

// TestKernelsCompileAndVerify is the suite's acceptance test: every kernel
// lowers, compiles through the URSA pipeline block by block, executes on
// the simulator, and matches the interpreter.
func TestKernelsCompileAndVerify(t *testing.T) {
	m := machine.VLIW(4, 8)
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			u, err := k.Unit(0)
			if err != nil {
				t.Fatalf("Unit: %v", err)
			}
			st, err := pipeline.EvaluateFunc(u.Func, m, pipeline.URSA, k.State(1), 1_000_000, pipeline.Options{})
			if err != nil {
				t.Fatalf("EvaluateFunc: %v", err)
			}
			if !st.Verified || st.Cycles == 0 {
				t.Errorf("stats: %+v", st)
			}
		})
	}
}

func TestKernelsFPFlag(t *testing.T) {
	for _, k := range Kernels() {
		u, err := k.Unit(0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		hasFP := false
		for _, b := range u.Func.Blocks {
			for _, in := range b.Instrs {
				if in.Dst != ir.NoReg && u.Func.ClassOf(in.Dst) == ir.ClassFP {
					hasFP = true
				}
			}
		}
		if hasFP != k.FP {
			t.Errorf("%s: FP flag %v but code hasFP=%v", k.Name, k.FP, hasFP)
		}
	}
}

func TestKernelByName(t *testing.T) {
	if KernelByName("dot") == nil {
		t.Error("dot not found")
	}
	if KernelByName("nope") != nil {
		t.Error("phantom kernel found")
	}
}

func TestRandomBlockClosedAndDeterministic(t *testing.T) {
	f1 := RandomBlock(rand.New(rand.NewSource(9)), 30, 0.5)
	f2 := RandomBlock(rand.New(rand.NewSource(9)), 30, 0.5)
	if f1.String() != f2.String() {
		t.Error("RandomBlock not deterministic for equal seeds")
	}
	if ins := ir.LiveIns(f1.Blocks[0]); len(ins) != 0 {
		t.Errorf("live-ins: %v", ins)
	}
	if err := ir.VerifySSA(f1.Blocks[0]); err != nil {
		t.Errorf("VerifySSA: %v", err)
	}
}

func TestLayeredBlockWidth(t *testing.T) {
	f := LayeredBlock(6, 4)
	g := MustBuild(f)
	// The DAG must be valid and its FU width must be at least the layer
	// width (the chains are mutually independent until the reduction).
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	st, err := pipeline.Evaluate(f.Blocks[0], machine.VLIW(8, 16), pipeline.URSA, RandomInit(3), pipeline.Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !st.Verified {
		t.Error("not verified")
	}
}

func TestKernelUnrollMatchesRolled(t *testing.T) {
	k := KernelByName("stencil3")
	m := machine.VLIW(4, 12)
	u0, err := k.Unit(0)
	if err != nil {
		t.Fatal(err)
	}
	ref := k.State(2)
	if _, err := ref.Run(u0.Func, 1_000_000); err != nil {
		t.Fatal(err)
	}
	u2, err := k.Unit(2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipeline.EvaluateFunc(u2.Func, m, pipeline.URSA, k.State(2), 1_000_000, pipeline.Options{})
	if err != nil {
		t.Fatalf("unrolled evaluate: %v", err)
	}
	if !st.Verified {
		t.Error("unrolled kernel not verified")
	}
}
