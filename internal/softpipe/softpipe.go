// Package softpipe implements the paper's future-work extension (§6):
// combining loop unrolling with URSA's unified allocation yields a
// resource-constrained software pipelining technique. Unrolling widens the
// loop body's dependence DAG, exposing inter-iteration parallelism; URSA
// then sequences or spills exactly enough of it to fit the machine, so the
// kernel approaches the machine's issue limit without ever exceeding its
// registers.
package softpipe

import (
	"fmt"

	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/pipeline"
)

// Point is the outcome at one unroll factor.
type Point struct {
	Unroll        int
	TotalCycles   int
	CyclesPerIter float64
	SpillOps      int
	Utilization   float64
	URSAFits      bool
}

// Result is a sweep over unroll factors for one kernel on one machine.
type Result struct {
	Name    string
	Machine string
	Method  pipeline.Method
	Iters   int
	Points  []Point
}

// DefaultBudget is the cycle budget Sweep grants each evaluation run.
const DefaultBudget = 50_000_000

// Best returns the point with the fewest cycles per iteration, or a zero
// Point when the sweep holds no points.
func (r *Result) Best() Point {
	if len(r.Points) == 0 {
		return Point{}
	}
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.CyclesPerIter < best.CyclesPerIter {
			best = p
		}
	}
	return best
}

// Sweep compiles the kernel source at each unroll factor with the given
// pipeline, runs it to completion, verifies it, and reports cycles per
// original loop iteration. iters is the kernel's total trip count (the
// denominator); init must provide the kernel's inputs and is reused
// (copied) per run.
func Sweep(name, src string, iters int, init *ir.State, m *machine.Config,
	method pipeline.Method, factors []int) (*Result, error) {
	return SweepBudget(name, src, iters, init, m, method, factors, DefaultBudget)
}

// SweepBudget is Sweep with an explicit per-run cycle budget; budget ≤ 0
// means DefaultBudget.
func SweepBudget(name, src string, iters int, init *ir.State, m *machine.Config,
	method pipeline.Method, factors []int, budget int) (*Result, error) {

	if budget <= 0 {
		budget = DefaultBudget
	}
	if iters <= 0 {
		return nil, fmt.Errorf("softpipe: iters must be positive")
	}
	res := &Result{Name: name, Machine: m.Name, Method: method, Iters: iters}
	for _, k := range factors {
		u, err := frontend.Compile(src, frontend.Options{Unroll: k})
		if err != nil {
			return nil, fmt.Errorf("softpipe: unroll %d: %w", k, err)
		}
		st, err := pipeline.EvaluateFunc(u.Func, m, method, init.Clone(), budget, pipeline.Options{})
		if err != nil {
			return nil, fmt.Errorf("softpipe: unroll %d: %w", k, err)
		}
		res.Points = append(res.Points, Point{
			Unroll:        k,
			TotalCycles:   st.Cycles,
			CyclesPerIter: float64(st.Cycles) / float64(iters),
			SpillOps:      st.SpillOps,
			Utilization:   st.Utilization,
			URSAFits:      st.URSAFits,
		})
	}
	return res, nil
}

// Rows renders the sweep as table rows: unroll, cycles, cycles/iter,
// spills, utilization.
func (r *Result) Rows() []string {
	out := make([]string, 0, len(r.Points))
	for _, p := range r.Points {
		out = append(out, fmt.Sprintf("%-10s %-12s %-16s %6d %9d %10.2f %7d %7.2f",
			r.Name, r.Machine, r.Method, p.Unroll, p.TotalCycles, p.CyclesPerIter, p.SpillOps, p.Utilization))
	}
	return out
}

// RowHeader matches Rows.
const RowHeader = "kernel     machine      method           unroll    cycles  cyc/iter  spills     util"
