package softpipe

import (
	"testing"

	"ursa/internal/machine"
	"ursa/internal/pipeline"
	"ursa/internal/workload"
)

func TestSweepSaxpy(t *testing.T) {
	k := workload.KernelByName("saxpy")
	m := machine.VLIW(4, 12)
	res, err := Sweep(k.Name, k.Source, k.N, k.State(5), m, pipeline.URSA, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Unrolling must reduce cycles per iteration on a wide machine: the
	// rolled loop pays the head/latch overhead every iteration.
	if res.Points[3].CyclesPerIter >= res.Points[0].CyclesPerIter {
		t.Errorf("unroll 8 (%.2f c/it) not faster than rolled (%.2f c/it)",
			res.Points[3].CyclesPerIter, res.Points[0].CyclesPerIter)
	}
	best := res.Best()
	if best.Unroll == 1 {
		t.Errorf("best unroll = 1; pipelining gained nothing: %+v", res.Points)
	}
	for _, row := range res.Rows() {
		if len(row) == 0 {
			t.Error("empty row")
		}
	}
}

func TestSweepRespectsTightRegisters(t *testing.T) {
	// With very few registers, deep unrolling must still verify — URSA
	// sequences/spills the wide body back into the machine's limits.
	k := workload.KernelByName("stencil3")
	m := machine.VLIW(4, 4)
	res, err := Sweep(k.Name, k.Source, 62, k.State(7), m, pipeline.URSA, []int{1, 2})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, p := range res.Points {
		if p.TotalCycles == 0 {
			t.Errorf("unroll %d: zero cycles", p.Unroll)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep("x", "var a = ;", 4, workload.RandomInit(1), machine.VLIW(2, 4), pipeline.URSA, []int{1}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Sweep("x", "out[0] = 1;", 0, workload.RandomInit(1), machine.VLIW(2, 4), pipeline.URSA, []int{1}); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestBestEmpty(t *testing.T) {
	var r Result
	if got := r.Best(); got != (Point{}) {
		t.Errorf("Best() on empty sweep = %+v, want zero Point", got)
	}
}

func TestSweepBudget(t *testing.T) {
	k := workload.Kernels()[1] // dot
	m := machine.VLIW(4, 8)
	// A starved budget must fail the run; the default must succeed.
	if _, err := SweepBudget(k.Name, k.Source, k.N, k.State(7), m, pipeline.URSA, []int{1}, 3); err == nil {
		t.Error("3-cycle budget succeeded")
	}
	if _, err := SweepBudget(k.Name, k.Source, k.N, k.State(7), m, pipeline.URSA, []int{1}, 0); err != nil {
		t.Errorf("default budget: %v", err)
	}
}
