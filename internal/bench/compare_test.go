package bench

import (
	"path/filepath"
	"testing"
)

func TestCompare(t *testing.T) {
	baseline := []Entry{
		{Name: "PickBest/full", NsPerOp: 1000},
		{Name: "ReduceLarge/full", NsPerOp: 2000},
		{Name: "Dropped/one", NsPerOp: 10},
	}
	current := []Entry{
		{Name: "PickBest/full", NsPerOp: 1100},    // +10%: inside a 15% gate
		{Name: "ReduceLarge/full", NsPerOp: 2400}, // +20%: regression
		{Name: "Brand/new", NsPerOp: 5},           // no baseline: no verdict
	}
	nsOnly := Gate{MaxNsPct: 15, MaxAllocsPct: -1, MaxBytesPct: -1}
	deltas, regs, missing := Compare(baseline, current, nsOnly)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %v, want 2 pairings", deltas)
	}
	if len(regs) != 1 || regs[0].Name != "ReduceLarge/full" {
		t.Fatalf("regressions = %v, want only ReduceLarge/full", regs)
	}
	if regs[0].Pct < 19.9 || regs[0].Pct > 20.1 {
		t.Errorf("regression pct = %v, want ~20", regs[0].Pct)
	}
	if len(missing) != 1 || missing[0] != "Dropped/one" {
		t.Errorf("missing = %v, want [Dropped/one]", missing)
	}

	// An improvement is a negative delta, never a regression.
	_, regs, _ = Compare(
		[]Entry{{Name: "a", NsPerOp: 1000}},
		[]Entry{{Name: "a", NsPerOp: 500}}, nsOnly)
	if len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}

	// Exactly at the threshold passes; the gate is strictly greater-than.
	_, regs, _ = Compare(
		[]Entry{{Name: "a", NsPerOp: 1000}},
		[]Entry{{Name: "a", NsPerOp: 1150}}, nsOnly)
	if len(regs) != 0 {
		t.Errorf("threshold-exact delta flagged: %v", regs)
	}
}

func TestCompareGatesAllocsAndBytes(t *testing.T) {
	gate := Gate{MaxNsPct: 15, MaxAllocsPct: 10, MaxBytesPct: 10}
	baseline := []Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 1 << 20}}

	// Flat wall time but 2x the allocations: the alloc gate must fire.
	_, regs, _ := Compare(baseline,
		[]Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: 2000, BytesPerOp: 1 << 20}}, gate)
	if len(regs) != 1 {
		t.Fatalf("alloc regression not caught: %v", regs)
	}
	if len(regs[0].Why) != 1 || regs[0].Why[0] == "" {
		t.Errorf("Why = %v, want one alloc reason", regs[0].Why)
	}

	// Bytes regression alone also fires.
	_, regs, _ = Compare(baseline,
		[]Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 2 << 20}}, gate)
	if len(regs) != 1 {
		t.Fatalf("bytes regression not caught: %v", regs)
	}

	// Fewer allocations never regress, and disabled gates stay silent.
	_, regs, _ = Compare(baseline,
		[]Entry{{Name: "a", NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 1 << 10}}, gate)
	if len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
	off := Gate{MaxNsPct: -1, MaxAllocsPct: -1, MaxBytesPct: -1}
	_, regs, _ = Compare(baseline,
		[]Entry{{Name: "a", NsPerOp: 9000, AllocsPerOp: 9000, BytesPerOp: 9 << 20}}, off)
	if len(regs) != 0 {
		t.Errorf("disabled gates flagged: %v", regs)
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := []Entry{
		{Name: "PickBest/full", NsPerOp: 1234.5, AllocsPerOp: 7, BytesPerOp: 512},
	}
	if err := WriteJSON(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("round trip: got %v, want %v", got, want)
	}
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("ReadJSON on a missing file should error")
	}
}
