package bench

import (
	"path/filepath"
	"testing"
)

func TestCompare(t *testing.T) {
	baseline := []Entry{
		{Name: "PickBest/full", NsPerOp: 1000},
		{Name: "ReduceLarge/full", NsPerOp: 2000},
		{Name: "Dropped/one", NsPerOp: 10},
	}
	current := []Entry{
		{Name: "PickBest/full", NsPerOp: 1100},    // +10%: inside a 15% gate
		{Name: "ReduceLarge/full", NsPerOp: 2400}, // +20%: regression
		{Name: "Brand/new", NsPerOp: 5},           // no baseline: no verdict
	}
	deltas, regs, missing := Compare(baseline, current, 15)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %v, want 2 pairings", deltas)
	}
	if len(regs) != 1 || regs[0].Name != "ReduceLarge/full" {
		t.Fatalf("regressions = %v, want only ReduceLarge/full", regs)
	}
	if regs[0].Pct < 19.9 || regs[0].Pct > 20.1 {
		t.Errorf("regression pct = %v, want ~20", regs[0].Pct)
	}
	if len(missing) != 1 || missing[0] != "Dropped/one" {
		t.Errorf("missing = %v, want [Dropped/one]", missing)
	}

	// An improvement is a negative delta, never a regression.
	_, regs, _ = Compare(
		[]Entry{{Name: "a", NsPerOp: 1000}},
		[]Entry{{Name: "a", NsPerOp: 500}}, 15)
	if len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}

	// Exactly at the threshold passes; the gate is strictly greater-than.
	_, regs, _ = Compare(
		[]Entry{{Name: "a", NsPerOp: 1000}},
		[]Entry{{Name: "a", NsPerOp: 1150}}, 15)
	if len(regs) != 0 {
		t.Errorf("threshold-exact delta flagged: %v", regs)
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := []Entry{
		{Name: "PickBest/full", NsPerOp: 1234.5, AllocsPerOp: 7, BytesPerOp: 512},
	}
	if err := WriteJSON(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("round trip: got %v, want %v", got, want)
	}
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("ReadJSON on a missing file should error")
	}
}
