package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadJSON loads entries previously written by WriteJSON — the committed
// BENCH_core.json baseline, or a fresh run being gated against it.
func ReadJSON(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// A Gate bounds how much each benchmark dimension may regress relative to
// the baseline, in percent (e.g. 15 for a 15% gate). A negative bound
// disables that dimension's gate. Wall time is noisy on shared CI runners;
// allocs/op and bytes/op are deterministic, so they can be gated far
// tighter than ns/op.
type Gate struct {
	MaxNsPct     float64
	MaxAllocsPct float64
	MaxBytesPct  float64
}

// A Delta is one benchmark's movement between a baseline and a current
// run across all three recorded dimensions. Percentages are relative to
// the baseline: positive means worse (slower, more allocations, more
// bytes).
type Delta struct {
	Name string

	BaselineNs float64
	CurrentNs  float64
	Pct        float64 // ns/op change

	BaselineAllocs int64
	CurrentAllocs  int64
	AllocsPct      float64

	BaselineBytes int64
	CurrentBytes  int64
	BytesPct      float64

	// Why lists the gates this delta tripped; empty for clean pairings.
	Why []string
}

func (d Delta) String() string {
	return fmt.Sprintf("%-32s %12.0f -> %12.0f ns/op %+7.1f%%  %9d -> %9d allocs/op %+7.1f%%  %10d -> %10d B/op %+7.1f%%",
		d.Name, d.BaselineNs, d.CurrentNs, d.Pct,
		d.BaselineAllocs, d.CurrentAllocs, d.AllocsPct,
		d.BaselineBytes, d.CurrentBytes, d.BytesPct)
}

// pct returns the relative change from base to cur in percent, zero when
// the baseline recorded nothing.
func pct(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// Compare matches current entries against the baseline by name and returns
// every pairing plus the subset that regressed past the gate in any gated
// dimension — ns/op, allocs/op, or bytes/op; each regression's Why says
// which. Benchmarks present only in the current run are new and carry no
// verdict; benchmarks present only in the baseline are reported as missing
// so a silently dropped workload cannot pass the gate.
func Compare(baseline, current []Entry, gate Gate) (deltas, regressions []Delta, missing []string) {
	cur := make(map[string]Entry, len(current))
	for _, e := range current {
		cur[e.Name] = e
	}
	for _, b := range baseline {
		c, ok := cur[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		d := Delta{
			Name:           b.Name,
			BaselineNs:     b.NsPerOp,
			CurrentNs:      c.NsPerOp,
			Pct:            pct(b.NsPerOp, c.NsPerOp),
			BaselineAllocs: b.AllocsPerOp,
			CurrentAllocs:  c.AllocsPerOp,
			AllocsPct:      pct(float64(b.AllocsPerOp), float64(c.AllocsPerOp)),
			BaselineBytes:  b.BytesPerOp,
			CurrentBytes:   c.BytesPerOp,
			BytesPct:       pct(float64(b.BytesPerOp), float64(c.BytesPerOp)),
		}
		if gate.MaxNsPct >= 0 && d.Pct > gate.MaxNsPct {
			d.Why = append(d.Why, fmt.Sprintf("ns/op %+.1f%% > %.0f%%", d.Pct, gate.MaxNsPct))
		}
		if gate.MaxAllocsPct >= 0 && d.AllocsPct > gate.MaxAllocsPct {
			d.Why = append(d.Why, fmt.Sprintf("allocs/op %+.1f%% > %.0f%%", d.AllocsPct, gate.MaxAllocsPct))
		}
		if gate.MaxBytesPct >= 0 && d.BytesPct > gate.MaxBytesPct {
			d.Why = append(d.Why, fmt.Sprintf("bytes/op %+.1f%% > %.0f%%", d.BytesPct, gate.MaxBytesPct))
		}
		deltas = append(deltas, d)
		if len(d.Why) > 0 {
			regressions = append(regressions, d)
		}
	}
	return deltas, regressions, missing
}
