package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadJSON loads entries previously written by WriteJSON — the committed
// BENCH_core.json baseline, or a fresh run being gated against it.
func ReadJSON(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// A Delta is one benchmark's movement between a baseline and a current
// run. Pct is the ns/op change relative to the baseline: positive means
// slower.
type Delta struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Pct        float64
}

func (d Delta) String() string {
	return fmt.Sprintf("%-32s %12.0f -> %12.0f ns/op  %+6.1f%%",
		d.Name, d.BaselineNs, d.CurrentNs, d.Pct)
}

// Compare matches current entries against the baseline by name and
// returns every pairing plus the subset whose ns/op regressed by more
// than maxRegressPct (e.g. 15 for a 15% gate). Benchmarks present only
// in the current run are new and carry no verdict; benchmarks present
// only in the baseline are reported as missing so a silently dropped
// workload cannot pass the gate.
func Compare(baseline, current []Entry, maxRegressPct float64) (deltas, regressions []Delta, missing []string) {
	cur := make(map[string]Entry, len(current))
	for _, e := range current {
		cur[e.Name] = e
	}
	for _, b := range baseline {
		c, ok := cur[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		d := Delta{Name: b.Name, BaselineNs: b.NsPerOp, CurrentNs: c.NsPerOp}
		if b.NsPerOp > 0 {
			d.Pct = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		deltas = append(deltas, d)
		if d.Pct > maxRegressPct {
			regressions = append(regressions, d)
		}
	}
	return deltas, regressions, missing
}
