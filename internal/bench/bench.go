// Package bench defines the repo's reduction-loop benchmark suite and the
// machine-readable timing format behind BENCH_core.json — the perf
// trajectory the incremental remeasurement engine is held against.
//
// The same suite runs two ways: `go test -bench` via the wrappers in
// bench_test.go (CI runs them under -race with -benchtime=1x as a smoke
// test), and `ursabench -benchjson <path>`, which executes every benchmark
// through testing.Benchmark and writes the results as JSON so successive
// commits can be compared mechanically.
//
// Each workload is measured in two modes: "full" re-measures every
// candidate from scratch (core.Options.DisableIncremental — the pre-engine
// behavior, kept as the committed baseline) and "incremental" uses the
// delta engine. The ratio of the two is the engine's speedup, quoted in
// docs/PERF.md.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/frontend"
	"ursa/internal/machine"
	"ursa/internal/modsched"
	"ursa/internal/pipeline"
	"ursa/internal/target"
	"ursa/internal/workload"
)

// An Entry is one benchmark's measured timing in BENCH_core.json.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns/op"`
	AllocsPerOp int64   `json:"allocs/op"`
	BytesPerOp  int64   `json:"bytes/op"`
}

// A Named pairs a benchmark body with its canonical name.
type Named struct {
	Name  string
	Bench func(b *testing.B)
}

// pickBestGraph builds the large ScoreCandidates workload: a wide layered
// block whose FU and register demand both far exceed the target machine, so
// one evaluation round scores a full candidate slate.
func pickBestGraph() (*dag.Graph, *machine.Config) {
	return workload.MustBuild(workload.LayeredBlock(12, 6)), machine.VLIW(4, 6)
}

// reduceGraph builds the BenchmarkReduceLarge workload: big enough that the
// reduction loop runs many iterations, small enough that the full-measure
// baseline finishes in benchmark time.
func reduceGraph() (*dag.Graph, *machine.Config) {
	return workload.MustBuild(workload.LayeredBlock(12, 6)), machine.VLIW(4, 8)
}

// benchScore times one candidate-evaluation round (the work pickBest
// triggers per reduction iteration).
func benchScore(g *dag.Graph, m *machine.Config, opts core.Options) func(b *testing.B) {
	return func(b *testing.B) {
		opts.Machine = m
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts.Cache = nil // fresh cache: measure the work, not the memo
			if _, err := core.ScoreCandidates(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchReduce times a full allocation run (every style retry included).
func benchReduce(g *dag.Graph, m *machine.Config, opts core.Options) func(b *testing.B) {
	return func(b *testing.B) {
		opts.Machine = m
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts.Cache = nil
			cl := g.Clone()
			cl.Func = g.Func.Clone()
			if _, err := core.Run(cl, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchLoopPipeline times the whole modulo-scheduling transform of one
// kernel — recognition, MII bounds, the II × blocking-factor search with
// URSA's kernel measurement in the acceptance loop, and emission.
func benchLoopPipeline(kernelName string, m *machine.Config) func(b *testing.B) {
	return func(b *testing.B) {
		k := workload.KernelByName(kernelName)
		u, err := frontend.Compile(k.Source, frontend.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := modsched.Pipeline(u.Func, m, modsched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchTargetCompile times an end-to-end pipeline.Compile of a layered
// block on one extended-family preset — clusterization, inter-cluster copy
// pricing, buffer auditing, and every fallback lane included — so the
// committed baseline tracks what the target-diversity families cost on top
// of the classic VLIW path.
func benchTargetCompile(preset string, width, depth int) func(b *testing.B) {
	return func(b *testing.B) {
		p := target.ByName(preset)
		if p == nil {
			b.Fatalf("preset %s missing from the catalog", preset)
		}
		f := workload.LayeredBlock(width, depth)
		blk := f.Blocks[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := pipeline.Compile(blk, p.Config, pipeline.URSA, pipeline.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Suite returns the reduction-loop benchmarks in canonical order.
func Suite() []Named {
	pg, pm := pickBestGraph()
	rg, rm := reduceGraph()
	return []Named{
		{"PickBest/full", benchScore(pg, pm, core.Options{DisableIncremental: true, Workers: 1})},
		{"PickBest/incremental", benchScore(pg, pm, core.Options{Workers: 1})},
		{"PickBest/incremental-parallel", benchScore(pg, pm, core.Options{})},
		{"ReduceLarge/full", benchReduce(rg, rm, core.Options{DisableIncremental: true, Workers: 1})},
		{"ReduceLarge/incremental", benchReduce(rg, rm, core.Options{Workers: 1})},
		{"ReduceLarge/incremental-parallel", benchReduce(rg, rm, core.Options{})},
		{"Loop/pipeline-saxpy", benchLoopPipeline("saxpy", machine.VLIW(4, 12))},
		{"Loop/pipeline-stencil3", benchLoopPipeline("stencil3", machine.VLIW(4, 12))},
		{"Target/clustered-clus2x2x4", benchTargetCompile("clus2x2x4", 8, 4)},
		{"Target/clustered-clus4x2x4", benchTargetCompile("clus4x2x4", 8, 4)},
		{"Target/superscalar-suprax12", benchTargetCompile("suprax12", 8, 4)},
		{"Target/edp-edp4x8b2", benchTargetCompile("edp4x8b2", 8, 4)},
		{"Target/edp-evict-edp2x6b1", benchTargetCompile("edp2x6b1", 8, 4)},
	}
}

// Run executes every benchmark through testing.Benchmark and returns the
// entries in suite order.
func Run(suite []Named) []Entry {
	entries := make([]Entry, 0, len(suite))
	for _, n := range suite {
		r := testing.Benchmark(n.Bench)
		entries = append(entries, Entry{
			Name:        n.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return entries
}

// WriteJSON writes the entries to path in the BENCH_core.json schema:
// a JSON array of {name, ns/op, allocs/op, bytes/op} objects, indented and
// newline-terminated so committed baselines diff cleanly.
func WriteJSON(path string, entries []Entry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// String renders one entry for human consumption.
func (e Entry) String() string {
	return fmt.Sprintf("%-32s %12.0f ns/op %8d B/op %6d allocs/op",
		e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
}
