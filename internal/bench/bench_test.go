package bench

import (
	"os"
	"strings"
	"testing"

	"ursa/internal/core"
	"ursa/internal/measure"
)

// BenchmarkPickBest times one candidate-evaluation round on the large
// layered workload, full-remeasure vs incremental.
func BenchmarkPickBest(b *testing.B) {
	for _, n := range Suite() {
		if len(n.Name) >= 8 && n.Name[:8] == "PickBest" {
			b.Run(n.Name[9:], n.Bench)
		}
	}
}

// BenchmarkReduceLarge times the full reduction loop on the large workload,
// full-remeasure vs incremental.
func BenchmarkReduceLarge(b *testing.B) {
	for _, n := range Suite() {
		if len(n.Name) >= 11 && n.Name[:11] == "ReduceLarge" {
			b.Run(n.Name[12:], n.Bench)
		}
	}
}

// BenchmarkLoop times the modulo-scheduling transform on the loop-suite
// kernels (CI's loop-smoke job runs it with -benchtime=1x).
func BenchmarkLoop(b *testing.B) {
	for _, n := range Suite() {
		if strings.HasPrefix(n.Name, "Loop/") {
			b.Run(strings.TrimPrefix(n.Name, "Loop/"), n.Bench)
		}
	}
}

// BenchmarkTarget times end-to-end compiles on the extended target
// families (CI's target-smoke job runs it with -benchtime=1x).
func BenchmarkTarget(b *testing.B) {
	for _, n := range Suite() {
		if strings.HasPrefix(n.Name, "Target/") {
			b.Run(strings.TrimPrefix(n.Name, "Target/"), n.Bench)
		}
	}
}

// TestModesAgree pins the property the benchmarks rely on: the full and
// incremental modes do identical allocation work on the benchmark
// workloads, so their timing ratio compares implementations, not outcomes.
func TestModesAgree(t *testing.T) {
	g, m := reduceGraph()
	var refIters, refSpills int
	for i, opts := range []core.Options{
		{Machine: m, DisableIncremental: true, Workers: 1},
		{Machine: m, Workers: 1},
		{Machine: m},
	} {
		cl := g.Clone()
		cl.Func = g.Func.Clone()
		rep, err := core.Run(cl, opts)
		if err != nil {
			t.Fatalf("mode %d: %v", i, err)
		}
		if i == 0 {
			refIters, refSpills = rep.Iterations, rep.SpillsInserted
			continue
		}
		if rep.Iterations != refIters || rep.SpillsInserted != refSpills {
			t.Errorf("mode %d: %d iterations / %d spills, reference %d / %d",
				i, rep.Iterations, rep.SpillsInserted, refIters, refSpills)
		}
	}
}

// TestScoreCandidatesFindsWork ensures the PickBest workload actually has
// candidates to score — an empty round would benchmark nothing.
func TestScoreCandidatesFindsWork(t *testing.T) {
	g, m := pickBestGraph()
	n, err := core.ScoreCandidates(g, core.Options{Machine: m, Cache: measure.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("PickBest workload produced no candidates")
	}
	t.Logf("PickBest workload scores %d candidates per round", n)
}

// TestWriteJSON round-trips the BENCH_core.json schema.
func TestWriteJSON(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	in := []Entry{{Name: "X/y", NsPerOp: 1234.5, AllocsPerOp: 7, BytesPerOp: 4096}}
	if err := WriteJSON(path, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := `"name": "X/y"`
	if !strings.Contains(string(data), want) {
		t.Fatalf("written JSON missing %q:\n%s", want, data)
	}
}
