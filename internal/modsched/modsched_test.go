package modsched_test

import (
	"fmt"
	"strings"
	"testing"

	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/modsched"
	"ursa/internal/pipeline"
	"ursa/internal/softpipe"
	"ursa/internal/workload"
)

const interpBudget = 4_000_000

// sameMem asserts two final states hold identical memory (spill cells
// excluded; scalars live in memory so this is the observable state).
func sameMem(t *testing.T, ref, got *ir.State) {
	t.Helper()
	for addr, want := range ref.Mem {
		if strings.HasPrefix(addr.Sym, "spill") {
			continue
		}
		if g := got.Mem[addr]; g != want {
			t.Fatalf("mem %s[%d] = %v, want %v", addr.Sym, addr.Off, g, want)
		}
	}
	for addr, g := range got.Mem {
		if strings.HasPrefix(addr.Sym, "spill") {
			continue
		}
		if want := ref.Mem[addr]; g != want {
			t.Fatalf("mem %s[%d] = %v, want %v (absent in reference)", addr.Sym, addr.Off, g, want)
		}
	}
}

func testMachines() []*machine.Config {
	het := machine.Heterogeneous(2, 2, 2, 1, 12, 12)
	return []*machine.Config{machine.VLIW(4, 12), het}
}

// TestPipelineKernels pipelines every recognizable workload kernel on two
// machines and checks the acceptance invariants: II ≥ max(resMII, recMII),
// and the pipelined function computes the exact memory state of the
// original under both the interpreter and the compiled VLIW simulation.
func TestPipelineKernels(t *testing.T) {
	for _, m := range testMachines() {
		for _, k := range workload.Kernels() {
			t.Run(k.Name+"/"+m.Name, func(t *testing.T) {
				u, err := k.Unit(1)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				res, err := modsched.Pipeline(u.Func, m, modsched.Options{})
				if err == modsched.ErrNoLoop {
					t.Skipf("no canonical loop: %v", err)
				}
				if err != nil {
					t.Fatalf("pipeline: %v", err)
				}
				for _, lr := range res.Loops {
					if lr.MII < 1 || lr.ResMII < 1 || lr.RecMII < 1 {
						t.Fatalf("bad MII bounds: %+v", lr)
					}
					if lr.AchievedII < lr.MII {
						t.Errorf("loop %s: achieved II %d < MII %d (res %d, rec %d)",
							lr.HeadLabel, lr.AchievedII, lr.MII, lr.ResMII, lr.RecMII)
					}
				}
				// Diff-exec: interpreter on original vs interpreter on
				// pipelined.
				ref := k.State(7)
				if _, err := ref.Run(u.Func, interpBudget); err != nil {
					t.Fatalf("interp original: %v", err)
				}
				got := k.State(7)
				if _, err := got.Run(res.Func, interpBudget); err != nil {
					t.Fatalf("interp pipelined: %v", err)
				}
				sameMem(t, ref, got)
				// Compiled execution: EvaluateFunc verifies the VLIW run
				// of the pipelined function against its own interpretation.
				st, err := pipeline.EvaluateFunc(res.Func, m, pipeline.URSA, k.State(7), 2_000_000, pipeline.Options{})
				if err != nil {
					t.Fatalf("evaluate pipelined: %v", err)
				}
				if !st.Verified {
					t.Fatalf("pipelined execution not verified")
				}
			})
		}
	}
}

// tripSource builds a one-loop kernel with a loop-carried accumulator, a
// distance-1 array recurrence, and a parallel stream, parameterized by
// trip count.
func tripSource(hi int) string {
	return fmt.Sprintf(`
func trip {
	var s = 1;
	for i = 0 to %d {
		s = s + a[i]*3;
		b[i+1] = b[i] + a[i];
		c[i] = a[i]*a[i] + s;
	}
	out[0] = s;
}`, hi)
}

func tripState() *ir.State {
	st := ir.NewState()
	for i := int64(-2); i < 40; i++ {
		st.StoreInt("a", i, 3*i-5)
		st.StoreInt("b", i, i*i-7)
		st.StoreInt("c", i, -i)
	}
	return st
}

// TestTripCounts is the prologue/epilogue table: exact final state at trip
// counts 0, 1, around the blocking-factor boundary, and large, on two
// machine presets.
func TestTripCounts(t *testing.T) {
	for _, m := range testMachines() {
		// Learn the blocking factor B for this machine first, so the
		// boundary trips bracket it.
		probe, err := frontend.Compile(tripSource(24), frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pres, err := modsched.Pipeline(probe.Func, m, modsched.Options{})
		if err != nil {
			t.Fatalf("probe pipeline on %s: %v", m.Name, err)
		}
		B := pres.Primary().Unroll
		trips := []int{0, 1, B - 1, B, B + 1, 2*B + 1, 37}
		for _, trip := range trips {
			if trip < 0 {
				continue
			}
			t.Run(fmt.Sprintf("%s/trip%d", m.Name, trip), func(t *testing.T) {
				u, err := frontend.Compile(tripSource(trip), frontend.Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := modsched.Pipeline(u.Func, m, modsched.Options{})
				if err != nil {
					t.Fatalf("pipeline: %v", err)
				}
				ref := tripState()
				if _, err := ref.Run(u.Func, interpBudget); err != nil {
					t.Fatalf("interp original: %v", err)
				}
				// Interpreted pipelined function.
				got := tripState()
				if _, err := got.Run(res.Func, interpBudget); err != nil {
					t.Fatalf("interp pipelined: %v", err)
				}
				sameMem(t, ref, got)
				// Compiled + simulated pipelined function.
				fp, _, err := pipeline.CompileFunc(res.Func, m, pipeline.URSA, pipeline.Options{})
				if err != nil {
					t.Fatalf("compile pipelined: %v", err)
				}
				run, err := fp.Run(tripState(), 2_000_000)
				if err != nil {
					t.Fatalf("simulate pipelined: %v", err)
				}
				sameMem(t, ref, run.State)
			})
		}
	}
}

// TestRecognize pins the canonical-shape matcher: the frontend's counted
// loop matches; a computed bound or inner branch does not.
func TestRecognize(t *testing.T) {
	u, err := frontend.Compile(tripSource(16), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loops, err := modsched.Recognize(u.Func)
	if err != nil {
		t.Fatalf("recognize: %v", err)
	}
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Ind != "i" || l.Hi != 16 {
		t.Fatalf("loop = %v, want i < 16", l)
	}

	// A loop with an inner if has a branch in the body: rejected.
	cond, err := frontend.Compile(`
func cond {
	var s = 0;
	for i = 0 to 8 {
		if (a[i] < 0) { s = s + 1; }
	}
	out[0] = s;
}`, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modsched.Recognize(cond.Func); err != modsched.ErrNoLoop {
		t.Fatalf("recognize on branchy loop: %v, want ErrNoLoop", err)
	}
}

// TestMultipleLoops pipelines a function with two sequential loops.
func TestMultipleLoops(t *testing.T) {
	src := `
func twoloops {
	var s = 0;
	for i = 0 to 10 { b[i] = a[i] * 2; }
	for j = 0 to 13 { s = s + b[j]; }
	out[0] = s;
}`
	u, err := frontend.Compile(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.VLIW(4, 12)
	res, err := modsched.Pipeline(u.Func, m, modsched.Options{})
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(res.Loops) != 2 {
		t.Fatalf("pipelined %d loops, want 2", len(res.Loops))
	}
	st := ir.NewState()
	for i := int64(0); i < 16; i++ {
		st.StoreInt("a", i, i+1)
		st.StoreInt("b", i, 0)
	}
	ref := st.Clone()
	if _, err := ref.Run(u.Func, interpBudget); err != nil {
		t.Fatal(err)
	}
	got := st.Clone()
	if _, err := got.Run(res.Func, interpBudget); err != nil {
		t.Fatal(err)
	}
	sameMem(t, ref, got)
}

// TestMIIBounds sanity-checks the lower bounds on a known recurrence: a
// strict accumulator chain cannot beat one cycle per iteration, and a
// width-1 machine cannot beat the op count.
func TestMIIBounds(t *testing.T) {
	src := `
func acc {
	var s = 0;
	for i = 0 to 32 { s = s + a[i]; }
	out[0] = s;
}`
	u, err := frontend.Compile(src, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	narrow := machine.VLIW(1, 8)
	res, err := modsched.Pipeline(u.Func, narrow, modsched.Options{})
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	lr := res.Primary()
	if lr.ResMII < 2 {
		t.Errorf("resMII = %d on width-1 machine with ≥2 steady ops, want ≥2", lr.ResMII)
	}
	if lr.RecMII < 1 {
		t.Errorf("recMII = %d, want ≥1", lr.RecMII)
	}
	if lr.AchievedII < lr.MII {
		t.Errorf("achieved II %d < MII %d", lr.AchievedII, lr.MII)
	}
}

// TestBeatsSweep pins the headline result: on committed kernels, true
// modulo scheduling must beat the best point of the paper's §6
// unroll-and-allocate sweep (cycles per iteration, same machine). The
// blocked kernel folds loop control into the steady state, which the
// unrolled loop pays on every backedge.
func TestBeatsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep comparison is slow")
	}
	m := machine.VLIW(4, 12)
	for _, name := range []string{"saxpy", "stencil3"} {
		t.Run(name, func(t *testing.T) {
			k := workload.KernelByName(name)
			sw, err := softpipe.Sweep(k.Name, k.Source, k.N, k.State(1), m,
				pipeline.URSA, []int{1, 2, 4, 8})
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			best := sw.Best()

			u, err := frontend.Compile(k.Source, frontend.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fp, _, _, err := pipeline.CompileLoopFunc(u.Func, m, pipeline.URSA, pipeline.Options{})
			if err != nil {
				t.Fatalf("loop compile: %v", err)
			}
			res, err := fp.Run(k.State(1), softpipe.DefaultBudget)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			cpi := float64(res.Cycles) / float64(k.N)
			if cpi >= best.CyclesPerIter {
				t.Errorf("modsched %.2f cycles/iter does not beat best sweep %.2f (unroll %d)",
					cpi, best.CyclesPerIter, best.Unroll)
			}
		})
	}
}
