// Package modsched software-pipelines counted loops by iterative modulo
// scheduling with URSA in the acceptance loop. For each recognized loop it
// derives the loop-carried dependence graph, computes the classic lower
// bounds MII = max(resMII, recMII), and searches initiation intervals
// upward from MII. A candidate II must pass two gates: Rau's iterative
// modulo scheduler must place the steady state in an II-cycle modulo
// reservation table, and URSA's width measurement of the flattened kernel
// DAG (internal/core over internal/measure + internal/reuse, spills
// disabled) must prove the kernel's register demand fits every register
// class after sequencing-only transformations — the paper's unified
// resource view deciding schedulability instead of resMII/recMII alone.
// The modulo-variable-expansion blocking factor starts at the schedule's
// stage count and doubles while it keeps paying, bounded by Options.
//
// See docs/LOOPS.md for the full derivation and the adaptation of
// kernel/prologue/epilogue to the block-drain execution model.
package modsched

import (
	"fmt"

	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
	"ursa/internal/target"
)

// Options bound the II and blocking-factor search.
type Options struct {
	// MaxUnroll caps the modulo-variable-expansion blocking factor B
	// (default 8).
	MaxUnroll int
	// MaxIISlack is how far above MII the candidate II scan goes before
	// giving up (default 32).
	MaxIISlack int
	// MaxKernelOps caps the flattened kernel size in template copies ×
	// template length (default 192): URSA's measurement cost grows
	// superlinearly with DAG size, and kernels past a couple hundred ops
	// stop improving cycles/iteration before they stop costing compile
	// time.
	MaxKernelOps int
}

func (o Options) withDefaults() Options {
	if o.MaxUnroll <= 0 {
		o.MaxUnroll = 8
	}
	if o.MaxIISlack <= 0 {
		o.MaxIISlack = 32
	}
	if o.MaxKernelOps <= 0 {
		o.MaxKernelOps = 192
	}
	return o
}

// LoopReport describes how one loop was pipelined.
type LoopReport struct {
	HeadLabel   string `json:"head"`
	Ops         int    `json:"ops"`     // steady-state ops per iteration (DDG nodes)
	ResMII      int    `json:"res_mii"` // resource-constrained lower bound
	RecMII      int    `json:"rec_mii"` // recurrence-constrained lower bound
	MII         int    `json:"mii"`     // max(ResMII, RecMII)
	II          int    `json:"ii"`      // accepted modulo-schedule initiation interval
	Stages      int    `json:"stages"`  // pipeline depth of the accepted schedule
	Unroll      int    `json:"unroll"`  // MVE blocking factor B
	KernelWords int    `json:"kernel_words"`
	// AchievedII is the steady-state cycles per source iteration,
	// ceil(KernelWords / Unroll). The acceptance invariant is
	// AchievedII ≥ MII.
	AchievedII  int    `json:"achieved_ii"`
	KernelLabel string `json:"kernel_label"`
}

// Result is the outcome of pipelining a function.
type Result struct {
	Func  *ir.Func // pipelined function: guard/kernel/remainder emitted
	Loops []LoopReport
}

// Primary returns the first pipelined loop's report (every Result has at
// least one).
func (r *Result) Primary() *LoopReport { return &r.Loops[0] }

// Pipeline software-pipelines every canonical counted loop in f for
// machine m and returns the transformed function (f itself is not
// modified). It fails with ErrNoLoop when nothing is recognizable and
// with a descriptive error when no loop admits a fitting kernel.
func Pipeline(f *ir.Func, m *machine.Config, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// The IMS reservation table and the MII bounds model per-class unit
	// counts only: they know nothing of per-cluster register files,
	// inter-cluster copies, or output-buffer retirement, so a kernel
	// accepted here could be illegal on those targets.
	if m.Clusters > 1 || m.BufferDepth > 0 {
		return nil, fmt.Errorf("%w: loop pipelining on %s (IMS does not model clustered register files or output buffers)",
			target.ErrUnsupported, m.Name)
	}
	out := f.Clone()
	loops, err := Recognize(out)
	if err != nil {
		return nil, err
	}
	res := &Result{Func: out}
	// Transform back-to-front so earlier block indices stay valid while
	// splicing (each expansion grows the layout by two blocks).
	for li := len(loops) - 1; li >= 0; li-- {
		rep, err := pipelineLoop(out, loops[li], m, opts)
		if err != nil {
			return nil, fmt.Errorf("loop %s: %w", loops[li].Head.Label, err)
		}
		res.Loops = append(res.Loops, *rep)
	}
	// Reverse into layout order.
	for i, j := 0, len(res.Loops)-1; i < j; i, j = i+1, j-1 {
		res.Loops[i], res.Loops[j] = res.Loops[j], res.Loops[i]
	}
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("modsched: emitted function invalid: %w", err)
	}
	return res, nil
}

// pipelineLoop searches (II, B) for one loop and rewrites f in place with
// the winner.
func pipelineLoop(f *ir.Func, l *Loop, m *machine.Config, opts Options) (*LoopReport, error) {
	d := buildDDG(l, m)
	rMII, cMII := resMII(d, m), recMII(d, m)
	mii := rMII
	if cMII > mii {
		mii = cMII
	}
	tmplLen := len(l.Template())
	if tmplLen == 0 {
		return nil, fmt.Errorf("empty loop body")
	}

	type cand struct {
		B, words int
	}
	for ii := mii; ii <= mii+opts.MaxIISlack; ii++ {
		sc := ims(d, m, ii)
		if sc == nil {
			continue
		}
		// Candidate blocking factors: the stage count breaks every
		// cross-iteration register overwrite (each live range gets a
		// fresh name per replica), then doubling while the amortized
		// per-iteration cost keeps falling; once a candidate stops
		// improving, larger kernels only raise register pressure, so the
		// doubling stops there.
		var best *cand
		for B := maxInt(sc.stages, 1); B <= opts.MaxUnroll && B*tmplLen <= opts.MaxKernelOps; B *= 2 {
			words, ok := evalCandidate(f, l, B, m)
			if ok && (best == nil || float64(words)/float64(B) < float64(best.words)/float64(best.B)) {
				best = &cand{B, words}
			} else if best != nil {
				break
			}
		}
		if best == nil {
			continue
		}
		em, err := expandLoop(f, l, best.B)
		if err != nil {
			return nil, err
		}
		achieved := (best.words + best.B - 1) / best.B
		return &LoopReport{
			HeadLabel:   em.Guard,
			Ops:         len(d.nodes),
			ResMII:      rMII,
			RecMII:      cMII,
			MII:         mii,
			II:          ii,
			Stages:      sc.stages,
			Unroll:      best.B,
			KernelWords: best.words,
			AchievedII:  achieved,
			KernelLabel: em.Kernel,
		}, nil
	}
	return nil, fmt.Errorf("no initiation interval in [%d,%d] admits a register-fitting kernel on %s",
		mii, mii+opts.MaxIISlack, m.Name)
}

// evalCandidate builds the blocked kernel at factor B on a scratch clone
// and asks URSA whether it fits. core.Run measures the kernel's per-class
// widths (internal/measure over internal/reuse chains) and applies
// sequencing transformations — never spills — to shrink them; the
// candidate is accepted when the resulting schedule is spill-free and its
// per-class register usage fits the machine, i.e. when URSA's sequencing
// alone absorbed the kernel's pressure. (The worst-case measured width may
// still exceed the file: that is the same operational criterion —
// Report.ScheduleClean — the straight-line pipeline ships under.) Returns
// the kernel's static word count on success.
func evalCandidate(f *ir.Func, l *Loop, B int, m *machine.Config) (words int, ok bool) {
	scratch := f.Clone()
	loops, err := Recognize(scratch)
	if err != nil {
		return 0, false
	}
	var sl *Loop
	for _, c := range loops {
		if c.Head.Label == l.Head.Label {
			sl = c
			break
		}
	}
	if sl == nil {
		return 0, false
	}
	em, err := expandLoop(scratch, sl, B)
	if err != nil {
		return 0, false
	}
	kb := scratch.Block(em.Kernel)
	g, err := dag.Build(kb)
	if err != nil {
		return 0, false
	}
	if _, err := core.Run(g, core.Options{Machine: m, DisableSpills: true}); err != nil {
		return 0, false
	}
	prog, _, err := assign.Emit(g, m, sched.Options{})
	if err != nil || prog.Spills > 0 {
		return 0, false
	}
	for c, used := range prog.RegsUsed {
		if used > m.Regs[c] {
			return 0, false
		}
	}
	return len(prog.Words), true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
