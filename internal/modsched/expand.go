// Kernel expansion and prologue/kernel/epilogue emission.
//
// The execution substrate drains a VLIW block completely before control
// transfers (internal/vliwsim), and internal/pipeline refuses blocks with
// register live-ins: every cross-block value travels through a memory cell.
// Classical rotating-register kernels are therefore unavailable — the
// software-pipelined steady state is realized as a *blocked kernel*: one
// block holding B flattened iterations with every intra-block scalar
// promoted to registers (modulo variable expansion by SSA renaming, so
// cross-iteration values never share a register), induction arithmetic
// strength-reduced into addressing offsets, and the loop test folded into
// the kernel itself. A guard block (prologue) enters the kernel only while
// at least B iterations remain, and a rolled copy of the original body
// (epilogue) retires the remainder, so any trip count — 0, 1, or a
// non-multiple of B — produces the exact final state of the original loop.
package modsched

import (
	"fmt"
	"sort"

	"ursa/internal/ir"
)

// emitted records the labels of the blocks expandLoop produced.
type emitted struct {
	Guard   string // reuses the original head label: external edges keep working
	Kernel  string
	RemHead string
	RemBody string
}

// sval is the symbolic value of a register or promoted scalar inside the
// kernel: either a concrete register, or "induction + delta" which is
// folded into addressing and materialized lazily for value uses.
type sval struct {
	reg   ir.VReg
	ind   bool
	delta int64
}

// expandLoop replaces l's head/body pair in f with guard, kernel (B
// flattened iterations), remainder-head and remainder-body blocks. The
// caller owns f (mutated in place).
func expandLoop(f *ir.Func, l *Loop, B int) (*emitted, error) {
	if B < 1 {
		return nil, fmt.Errorf("modsched: blocking factor %d < 1", B)
	}
	labels := &emitted{
		Guard:   l.Head.Label,
		Kernel:  "msk." + l.Head.Label,
		RemHead: "msr." + l.Head.Label,
		RemBody: "msb." + l.Head.Label,
	}
	for _, lbl := range []string{labels.Kernel, labels.RemHead, labels.RemBody} {
		if f.Block(lbl) != nil {
			return nil, fmt.Errorf("modsched: label %q already taken", lbl)
		}
	}

	guard := &ir.Block{Label: labels.Guard, Func: f}
	gi := f.NewReg(l.Ind+".g", ir.ClassInt)
	guard.Append(&ir.Instr{Op: l.IndLoad.Op, Dst: gi, Sym: l.IndLoad.Sym})
	gc := f.NewReg("t.g", ir.ClassInt)
	guard.Append(&ir.Instr{Op: ir.CmpLEI, Dst: gc, Args: []ir.VReg{gi}, Imm: l.Hi - int64(B)})
	guard.Append(&ir.Instr{Op: ir.BrFalse, Args: []ir.VReg{gc}, Sym: labels.RemHead})

	kernel, err := flattenBody(f, l, B, labels.Kernel)
	if err != nil {
		return nil, err
	}

	remHead := &ir.Block{Label: labels.RemHead, Func: f}
	ri := f.NewReg(l.Ind+".r", ir.ClassInt)
	remHead.Append(&ir.Instr{Op: l.IndLoad.Op, Dst: ri, Sym: l.IndLoad.Sym})
	rc := f.NewReg("t.r", ir.ClassInt)
	remHead.Append(&ir.Instr{Op: ir.CmpLTI, Dst: rc, Args: []ir.VReg{ri}, Imm: l.Hi})
	remHead.Append(&ir.Instr{Op: ir.BrFalse, Args: []ir.VReg{rc}, Sym: l.Exit})

	// The remainder body is the original body, retargeted at the remainder
	// head. Its registers are referenced nowhere else.
	remBody := l.Body
	remBody.Label = labels.RemBody
	remBody.Instrs[len(remBody.Instrs)-1].Sym = labels.RemHead

	// Splice [guard kernel remHead remBody] over [head body].
	blocks := make([]*ir.Block, 0, len(f.Blocks)+2)
	blocks = append(blocks, f.Blocks[:l.HeadIdx]...)
	blocks = append(blocks, guard, kernel, remHead, remBody)
	blocks = append(blocks, f.Blocks[l.BodyIdx+1:]...)
	f.Blocks = blocks
	return labels, nil
}

// flattenBody builds the kernel block: B copies of the loop template with
// per-replica SSA renaming, scalars promoted to registers across replicas
// (loaded once on first touch, stored back once at the end), induction
// uses folded into addressing offsets, and the continuation test
// `ind+B ≤ Hi−B → kernel` at the end.
func flattenBody(f *ir.Func, l *Loop, B int, label string) (*ir.Block, error) {
	b := &ir.Block{Label: label, Func: f}
	i0 := f.NewReg(l.Ind+".k", ir.ClassInt)
	b.Append(&ir.Instr{Op: l.IndLoad.Op, Dst: i0, Sym: l.IndLoad.Sym})

	cur := map[string]sval{l.Ind: {reg: i0, ind: true}} // scalar name → current value
	dirty := map[string]ir.Op{}                         // scalars needing store-back
	indMat := map[int64]ir.VReg{0: i0}                  // materialized induction offsets
	mat := func(v sval) ir.VReg {
		if !v.ind {
			return v.reg
		}
		if r, ok := indMat[v.delta]; ok {
			return r
		}
		r := f.NewReg(fmt.Sprintf("%s.k%d", l.Ind, v.delta), ir.ClassInt)
		b.Append(&ir.Instr{Op: ir.AddI, Dst: r, Args: []ir.VReg{i0}, Imm: v.delta})
		indMat[v.delta] = r
		return r
	}

	tmpl := l.Template()
	for k := 0; k < B; k++ {
		sub := map[ir.VReg]sval{} // template register → this replica's value
		resolve := func(a ir.VReg) (sval, error) {
			v, ok := sub[a]
			if !ok {
				return sval{}, fmt.Errorf("modsched: template register %s has no definition", f.NameOf(a))
			}
			return v, nil
		}
		for _, t := range tmpl {
			switch {
			case t == l.IndInc:
				prev, err := resolve(t.Args[0])
				if err != nil {
					return nil, err
				}
				if !prev.ind {
					return nil, fmt.Errorf("modsched: induction increment feeds from non-induction value")
				}
				sub[t.Dst] = sval{ind: true, delta: prev.delta + t.Imm}
			case t.IsMem() && scalarSym(t.Sym):
				name := t.Sym[1:]
				if t.IsStore() {
					v, err := resolve(t.Args[0])
					if err != nil {
						return nil, err
					}
					cur[name] = v
					dirty[name] = t.Op
				} else {
					v, ok := cur[name]
					if !ok {
						r := f.NewReg(name+".k", f.ClassOf(t.Dst))
						b.Append(&ir.Instr{Op: t.Op, Dst: r, Sym: t.Sym})
						v = sval{reg: r}
						cur[name] = v
					}
					sub[t.Dst] = v
				}
			default:
				c := t.Clone()
				c.ID = 0
				for ai, a := range c.Args {
					v, err := resolve(a)
					if err != nil {
						return nil, err
					}
					c.Args[ai] = mat(v)
				}
				if c.Index != ir.NoReg {
					v, err := resolve(c.Index)
					if err != nil {
						return nil, err
					}
					if v.ind {
						c.Index = i0
						c.Off += v.delta
					} else {
						c.Index = v.reg
					}
				}
				if c.Dst != ir.NoReg {
					d := f.NewReg(f.NameOf(t.Dst)+".k", f.ClassOf(t.Dst))
					c.Dst = d
					sub[t.Dst] = sval{reg: d}
				}
				b.Append(c)
			}
		}
	}

	// Store-backs in sorted name order (matches the frontend's flush).
	names := make([]string, 0, len(dirty))
	for name := range dirty {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.Append(&ir.Instr{Op: dirty[name], Args: []ir.VReg{mat(cur[name])}, Sym: "$" + name})
	}
	if cur[l.Ind].delta != int64(B) || !cur[l.Ind].ind {
		return nil, fmt.Errorf("modsched: induction advanced by %d per kernel, expected %d", cur[l.Ind].delta, B)
	}

	// Continue while ind+B ≤ Hi−B, i.e. at least B more iterations remain.
	tc := f.NewReg("t.k", ir.ClassInt)
	b.Append(&ir.Instr{Op: ir.CmpLEI, Dst: tc, Args: []ir.VReg{mat(cur[l.Ind])}, Imm: l.Hi - int64(B)})
	b.Append(&ir.Instr{Op: ir.BrTrue, Args: []ir.VReg{tc}, Sym: label})
	return b, nil
}
