// The loop-carried data dependence graph (DDG). Nodes are the template
// instructions that survive into the pipelined steady state: the induction
// load/increment are strength-reduced into address offsets, and scalar
// ($cell) loads/stores disappear under register promotion, so none of them
// are DDG nodes. Edges carry (latency, iteration distance): an edge u→v
// with distance d means v in iteration i+d must start at least lat(u)
// cycles after u in iteration i. Distances come from two sources: scalar
// recurrences (the value stored to a promoted scalar feeds its load in the
// next iteration, distance 1) and array accesses whose induction-relative
// addresses collide d iterations apart.
package modsched

import (
	"ursa/internal/ir"
	"ursa/internal/machine"
)

type dedge struct {
	from, to int // node indices
	lat      int // latency of the source instruction
	dist     int // iteration distance (0 = same iteration)
}

type ddg struct {
	nodes []*ir.Instr
	edges []dedge
}

// addr is a symbolic memory address: sym[base + off] where base is either
// the induction variable (ind), an absolute constant (abs, base 0), or
// unknown (unk).
type addrKind uint8

const (
	addrAbs addrKind = iota
	addrInd
	addrUnk
)

type symAddr struct {
	kind addrKind
	off  int64
}

// buildDDG constructs the dependence graph for l's steady state under
// machine m.
func buildDDG(l *Loop, m *machine.Config) *ddg {
	d := &ddg{}
	tmpl := l.Template()

	// Which template instructions become DDG nodes, and the defining node
	// of each register among them.
	nodeOf := make(map[*ir.Instr]int)
	defOf := make(map[ir.VReg]int)
	// Induction-derived registers and their offsets from the loaded value.
	indDelta := map[ir.VReg]int64{l.IndLoad.Dst: 0}
	// Promoted scalars: register loaded from / value stored to each cell.
	loadedReg := map[string]ir.VReg{}
	storedVal := map[string]ir.VReg{}

	for _, in := range tmpl {
		if in == l.IndLoad || in == l.IndInc {
			if in == l.IndInc {
				indDelta[in.Dst] = indDelta[l.IndLoad.Dst] + in.Imm
			}
			continue
		}
		// Pure induction arithmetic folds into offsets too.
		if in.Op == ir.AddI || in.Op == ir.SubI {
			if base, ok := indDelta[in.Args[0]]; ok {
				if in.Op == ir.AddI {
					indDelta[in.Dst] = base + in.Imm
				} else {
					indDelta[in.Dst] = base - in.Imm
				}
				continue
			}
		}
		if in.IsMem() && scalarSym(in.Sym) {
			name := in.Sym[1:]
			if in.IsStore() {
				storedVal[name] = in.Args[0]
			} else if _, seen := loadedReg[name]; !seen {
				loadedReg[name] = in.Dst
			}
			continue
		}
		id := len(d.nodes)
		d.nodes = append(d.nodes, in)
		nodeOf[in] = id
		if in.Dst != ir.NoReg {
			defOf[in.Dst] = id
		}
	}

	lat := func(id int) int { return m.LatencyOf(d.nodes[id].Op) }

	// Same-iteration register flow.
	for _, in := range tmpl {
		v, kept := nodeOf[in]
		if !kept {
			continue
		}
		for _, a := range in.Uses() {
			if u, ok := defOf[a]; ok && u != v {
				d.edges = append(d.edges, dedge{u, v, lat(u), 0})
			}
		}
	}

	// Scalar recurrences: producer of the stored value → consumers of the
	// loaded value, one iteration later. Producers or consumers that are
	// not DDG nodes (e.g. a scalar copied from another scalar) drop the
	// edge; under-constraining recMII is safe — it only lowers the bound.
	for name, lr := range loadedReg {
		sv, hasStore := storedVal[name]
		if !hasStore {
			continue // loop-invariant scalar: no recurrence
		}
		p, ok := defOf[sv]
		if !ok {
			continue
		}
		for _, in := range tmpl {
			v, kept := nodeOf[in]
			if !kept {
				continue
			}
			for _, a := range in.Uses() {
				if a == lr {
					d.edges = append(d.edges, dedge{p, v, lat(p), 1})
				}
			}
		}
	}

	// Array memory dependences via symbolic addresses.
	classify := func(in *ir.Instr) symAddr {
		if in.Index == ir.NoReg {
			return symAddr{addrAbs, in.Off}
		}
		if delta, ok := indDelta[in.Index]; ok {
			return symAddr{addrInd, in.Off + delta}
		}
		return symAddr{addrUnk, 0}
	}
	for i := 0; i < len(d.nodes); i++ {
		u := d.nodes[i]
		if !u.IsMem() {
			continue
		}
		for j := i + 1; j < len(d.nodes); j++ {
			v := d.nodes[j]
			if !v.IsMem() || v.Sym != u.Sym {
				continue
			}
			if !u.IsStore() && !v.IsStore() {
				continue
			}
			au, av := classify(u), classify(v)
			switch {
			case au.kind == addrInd && av.kind == addrInd:
				// u in iteration t touches au.off+t; v in iteration t'
				// touches av.off+t'; they collide when t' - t = au.off - av.off.
				switch delta := au.off - av.off; {
				case delta == 0:
					d.edges = append(d.edges, dedge{i, j, lat(i), 0})
				case delta > 0:
					d.edges = append(d.edges, dedge{i, j, lat(i), int(delta)})
				default:
					d.edges = append(d.edges, dedge{j, i, lat(j), int(-delta)})
				}
			case au.kind == addrAbs && av.kind == addrAbs:
				if au.off == av.off {
					d.edges = append(d.edges, dedge{i, j, lat(i), 0})
					d.edges = append(d.edges, dedge{j, i, lat(j), 1})
				}
			default:
				// An unknown or mixed addressing pair may collide at any
				// distance: program order within the iteration plus a
				// conservative distance-1 back edge.
				d.edges = append(d.edges, dedge{i, j, lat(i), 0})
				d.edges = append(d.edges, dedge{j, i, lat(j), 1})
			}
		}
	}
	return d
}
