// Minimum initiation interval bounds (Rau & Glaeser). resMII counts
// functional-unit occupancy per class; recMII is the smallest II for which
// no dependence cycle demands more time than II allows per iteration.
package modsched

import "ursa/internal/machine"

// resMII is the resource-constrained lower bound on the initiation
// interval: for each FU class, the total occupancy-cycles the steady state
// issues per iteration divided by the units available, rounded up.
func resMII(d *ddg, m *machine.Config) int {
	occ := map[machine.FUClass]int{}
	for _, in := range d.nodes {
		occ[m.ClassFor(in.Kind())] += m.OccupancyOf(in.Op)
	}
	mii := 1
	for cl, o := range occ {
		u := m.Units.Get(cl)
		if u <= 0 {
			continue
		}
		if v := (o + u - 1) / u; v > mii {
			mii = v
		}
	}
	return mii
}

// recMII is the recurrence-constrained lower bound: the smallest II such
// that no dependence cycle has positive weight under edge weight
// lat(u) − II·dist. Found by linear scan with a Bellman-Ford longest-path
// positive-cycle test; the scan is bounded by the total latency of the
// steady state, which any single-resource schedule achieves.
func recMII(d *ddg, m *machine.Config) int {
	maxII := 1
	for _, in := range d.nodes {
		maxII += m.LatencyOf(in.Op)
	}
	for ii := 1; ii < maxII; ii++ {
		if !positiveCycle(d, ii) {
			return ii
		}
	}
	return maxII
}

// positiveCycle reports whether the DDG has a cycle of positive total
// weight under lat − ii·dist.
func positiveCycle(d *ddg, ii int) bool {
	n := len(d.nodes)
	if n == 0 {
		return false
	}
	dist := make([]int, n) // all nodes start at 0: every node is a source
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range d.edges {
			if w := dist[e.from] + e.lat - ii*e.dist; w > dist[e.to] {
				dist[e.to] = w
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true // still relaxing after n rounds: positive cycle
}
