// Iterative modulo scheduling (Rau, MICRO-27 1994). For a candidate II we
// place each DDG node at a cycle σ(v) honoring σ(u)+lat(u)−II·dist ≤ σ(v)
// on every edge and per-class modulo reservation: an op at cycle t keeps a
// unit of its class busy in slots (t+j) mod II for j < occupancy, and no
// slot may hold more reservations than the class has units. When a node
// has no conflict-free slot in its II-cycle window it is placed anyway,
// evicting whatever it collides with; a budget bounds the resulting
// churn. The schedule's length fixes the stage count, which seeds the
// modulo-variable-expansion blocking factor.
package modsched

import "ursa/internal/machine"

type imsResult struct {
	sigma  []int // cycle per DDG node
	stages int   // floor(max σ / II) + 1
}

// slotDemand returns how many reservations an op at cycle t with the given
// occupancy puts on each of the ii modulo slots (occupancy beyond ii wraps
// and stacks).
func slotDemand(t, occ, ii int, out []int) {
	for i := range out {
		out[i] = 0
	}
	for j := 0; j < occ; j++ {
		out[((t+j)%ii+ii)%ii]++
	}
}

// ims schedules d at initiation interval ii, returning nil when no
// schedule is found within budget.
func ims(d *ddg, m *machine.Config, ii int) *imsResult {
	n := len(d.nodes)
	if n == 0 {
		return &imsResult{stages: 1}
	}
	occ := make([]int, n)
	cls := make([]machine.FUClass, n)
	for i, in := range d.nodes {
		occ[i] = m.OccupancyOf(in.Op)
		cls[i] = m.ClassFor(in.Kind())
	}
	succs := make([][]dedge, n)
	preds := make([][]dedge, n)
	for _, e := range d.edges {
		succs[e.from] = append(succs[e.from], e)
		preds[e.to] = append(preds[e.to], e)
	}
	prio := heights(d, succs, ii)

	// Modulo reservation table: reservations per (class, slot).
	mrt := map[machine.FUClass][]int{}
	for _, c := range cls {
		if mrt[c] == nil {
			mrt[c] = make([]int, ii)
		}
	}
	demand := make([]int, ii)
	reserve := func(v, at, delta int) {
		slotDemand(at, occ[v], ii, demand)
		row := mrt[cls[v]]
		for s, dm := range demand {
			row[s] += delta * dm
		}
	}
	fits := func(v, at int) bool {
		slotDemand(at, occ[v], ii, demand)
		row, lim := mrt[cls[v]], m.Units.Get(cls[v])
		for s, dm := range demand {
			if dm > 0 && row[s]+dm > lim {
				return false
			}
		}
		return true
	}

	sigma := make([]int, n)
	placed := make([]bool, n)
	prevTry := make([]int, n)
	for i := range prevTry {
		prevTry[i] = -1
	}
	unplaced := n
	budget := 16*n + 64
	horizon := ii * (n + 4) // divergence guard on σ values

	for unplaced > 0 {
		if budget--; budget < 0 {
			return nil
		}
		// Highest-priority unplaced node (ties: lowest index).
		v := -1
		for i := 0; i < n; i++ {
			if !placed[i] && (v < 0 || prio[i] > prio[v]) {
				v = i
			}
		}
		estart := 0
		for _, e := range preds[v] {
			if placed[e.from] && e.from != v {
				if t := sigma[e.from] + e.lat - ii*e.dist; t > estart {
					estart = t
				}
			}
		}
		slot := -1
		for t := estart; t < estart+ii; t++ {
			if fits(v, t) {
				slot = t
				break
			}
		}
		if slot < 0 {
			// Forced placement with eviction.
			slot = estart
			if prevTry[v] >= 0 && slot <= prevTry[v] {
				slot = prevTry[v] + 1
			}
			if slot > horizon {
				return nil
			}
			for !fits(v, slot) {
				// Evict the lowest-priority resident of v's class whose
				// reservation overlaps v's.
				w := -1
				for i := 0; i < n; i++ {
					if placed[i] && i != v && cls[i] == cls[v] &&
						overlaps(sigma[i], occ[i], slot, occ[v], ii) &&
						(w < 0 || prio[i] < prio[w]) {
						w = i
					}
				}
				if w < 0 {
					return nil
				}
				reserve(w, sigma[w], -1)
				placed[w] = false
				unplaced++
			}
		}
		prevTry[v] = slot
		sigma[v] = slot
		reserve(v, slot, +1)
		placed[v] = true
		unplaced--
		// Displace already-placed successors whose dependence constraint v
		// now violates; they will be rescheduled later.
		for _, e := range succs[v] {
			if e.to != v && placed[e.to] && sigma[e.to] < slot+e.lat-ii*e.dist {
				reserve(e.to, sigma[e.to], -1)
				placed[e.to] = false
				unplaced++
			}
		}
	}
	maxS := 0
	for _, s := range sigma {
		if s > maxS {
			maxS = s
		}
	}
	return &imsResult{sigma: sigma, stages: maxS/ii + 1}
}

// overlaps reports whether two modulo reservations of the same class touch
// a common slot.
func overlaps(t1, occ1, t2, occ2, ii int) bool {
	a := make([]int, ii)
	b := make([]int, ii)
	slotDemand(t1, occ1, ii, a)
	slotDemand(t2, occ2, ii, b)
	for i := 0; i < ii; i++ {
		if a[i] > 0 && b[i] > 0 {
			return true
		}
	}
	return false
}

// heights computes the cyclic height priority: the longest latency path
// from each node under weights lat − II·dist, relaxed to a fixed point
// (feasible IIs have no positive cycle, so this converges within n
// rounds).
func heights(d *ddg, succs [][]dedge, ii int) []int {
	n := len(d.nodes)
	h := make([]int, n)
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			for _, e := range succs[v] {
				if e.to != v {
					if w := h[e.to] + e.lat - ii*e.dist; w > h[v] {
						h[v] = w
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return h
}
