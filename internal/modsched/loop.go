// Loop recognition. The frontend lowers every counted `for` into a fixed
// two-block shape (see internal/frontend/lower.go):
//
//	head:  r = load $i ; t = cmplti r, Hi ; brfalse t, exit
//	body:  ...straight-line code... ; br head
//
// where the body loads $i exactly once, increments it by one with a single
// addi, and stores the incremented value back to $i among its end-of-block
// scalar flushes. Recognize finds every innermost loop of that shape; the
// pipeliner only transforms loops it recognized, so anything else (computed
// bounds, inner branches, strided updates) safely falls through to the
// ordinary per-block path.
package modsched

import (
	"errors"
	"fmt"
	"strings"

	"ursa/internal/ir"
)

// ErrNoLoop reports that a function contains no loop in the canonical
// counted shape the pipeliner understands.
var ErrNoLoop = errors.New("modsched: no canonical counted loop found")

// Loop is one recognized innermost counted loop.
type Loop struct {
	HeadIdx int // index of the head block in f.Blocks
	BodyIdx int // index of the body block (always HeadIdx+1)
	Head    *ir.Block
	Body    *ir.Block

	Ind     string    // induction scalar name, without the "$" cell prefix
	IndLoad *ir.Instr // the body's `load $ind`
	IndInc  *ir.Instr // the body's `addi <ind>, 1`
	Hi      int64     // exclusive constant upper bound: iterate while ind < Hi
	Exit    string    // label branched to when the loop is done
}

// scalarSym reports whether a mem-op symbol addresses a frontend scalar
// cell ("$name") rather than an array.
func scalarSym(sym string) bool { return strings.HasPrefix(sym, "$") }

// Recognize returns every innermost canonical counted loop in f, in layout
// order. It returns ErrNoLoop when none match.
func Recognize(f *ir.Func) ([]*Loop, error) {
	var loops []*Loop
	for i := 0; i+1 < len(f.Blocks); i++ {
		l := matchLoop(f, i)
		if l == nil {
			continue
		}
		loops = append(loops, l)
		i++ // skip the body block
	}
	if len(loops) == 0 {
		return nil, ErrNoLoop
	}
	return loops, nil
}

// matchLoop tries to match a loop with head block f.Blocks[i] and body
// block f.Blocks[i+1]; it returns nil when the shape doesn't hold.
func matchLoop(f *ir.Func, i int) *Loop {
	head, body := f.Blocks[i], f.Blocks[i+1]
	if len(head.Instrs) != 3 {
		return nil
	}
	ld, cmp, br := head.Instrs[0], head.Instrs[1], head.Instrs[2]
	if ld.Op != ir.Load || !scalarSym(ld.Sym) || ld.Index != ir.NoReg || ld.Off != 0 {
		return nil
	}
	if cmp.Op != ir.CmpLTI || len(cmp.Args) != 1 || cmp.Args[0] != ld.Dst {
		return nil
	}
	if br.Op != ir.BrFalse || len(br.Args) != 1 || br.Args[0] != cmp.Dst {
		return nil
	}
	ind := ld.Sym[1:]

	// Body: straight-line, ending with an unconditional branch back to the
	// head; no other branches (so no inner control flow), no live-in
	// registers, exactly one load of $ind and one store of $ind fed by a
	// single `addi loaded, 1`.
	n := len(body.Instrs)
	if n == 0 {
		return nil
	}
	back := body.Instrs[n-1]
	if back.Op != ir.Br || back.Sym != head.Label {
		return nil
	}
	var indLoad, indInc, indStore *ir.Instr
	defined := map[ir.VReg]bool{}
	for _, in := range body.Instrs[:n-1] {
		if in.IsBranch() {
			return nil
		}
		for _, a := range in.Uses() {
			if !defined[a] {
				return nil // live-in register: not self-contained
			}
		}
		if in.Dst != ir.NoReg {
			if defined[in.Dst] {
				return nil // body must be SSA for substitution to work
			}
			defined[in.Dst] = true
		}
		if in.IsMem() && in.Sym == ld.Sym {
			if in.IsStore() {
				if indStore != nil {
					return nil
				}
				indStore = in
			} else {
				if indLoad != nil {
					return nil
				}
				indLoad = in
			}
		}
	}
	if indLoad == nil || indStore == nil || len(indStore.Args) != 1 {
		return nil
	}
	// The stored value must be `addi loaded, 1`.
	for _, in := range body.Instrs[:n-1] {
		if in.Dst == indStore.Args[0] {
			if in.Op != ir.AddI || in.Imm != 1 || len(in.Args) != 1 || in.Args[0] != indLoad.Dst {
				return nil
			}
			indInc = in
		}
	}
	if indInc == nil {
		return nil
	}
	return &Loop{
		HeadIdx: i, BodyIdx: i + 1,
		Head: head, Body: body,
		Ind: ind, IndLoad: indLoad, IndInc: indInc,
		Hi: cmp.Imm, Exit: br.Sym,
	}
}

// Template returns the body instructions that repeat each iteration (the
// body minus its back branch).
func (l *Loop) Template() []*ir.Instr {
	return l.Body.Instrs[:len(l.Body.Instrs)-1]
}

func (l *Loop) String() string {
	return fmt.Sprintf("loop(%s: %s < %d, %d ops)", l.Head.Label, l.Ind, l.Hi, len(l.Template()))
}
