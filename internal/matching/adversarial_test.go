package matching

import (
	"fmt"
	"math/rand"
	"testing"
)

// Adversarial structure tests: Hopcroft–Karp and the Kuhn-based Incremental
// matcher must agree with the exhaustive BruteMax oracle on graph families
// chosen to stress their phase logic — unbalanced sides, disconnected
// components, complete bipartite blocks, stars, and long augmenting chains.

// checkAgainstBrute asserts both fast algorithms return a valid matching of
// the oracle's size.
func checkAgainstBrute(t *testing.T, name string, nl, nr int, adj [][]int) {
	t.Helper()
	want := BruteMax(nl, nr, adj)

	match, size := HopcroftKarp(nl, nr, adj)
	if size != want {
		t.Errorf("%s: HopcroftKarp size = %d, oracle says %d", name, size, want)
	}
	validMatching(t, nl, nr, adj, match)

	kuhn, ksize := Max(nl, nr, adj)
	if ksize != want {
		t.Errorf("%s: Max size = %d, oracle says %d", name, ksize, want)
	}
	validMatching(t, nl, nr, adj, kuhn)
}

func TestAdversarialShapes(t *testing.T) {
	shapes := []struct {
		name   string
		nl, nr int
		adj    func() [][]int
	}{
		{"empty-edges", 5, 5, func() [][]int { return make([][]int, 5) }},
		{"left-heavy", 12, 3, func() [][]int {
			adj := make([][]int, 12)
			for l := range adj {
				adj[l] = []int{l % 3, (l + 1) % 3}
			}
			return adj
		}},
		{"right-heavy", 3, 12, func() [][]int {
			adj := make([][]int, 3)
			for l := range adj {
				adj[l] = []int{l, l + 3, l + 6, l + 9}
			}
			return adj
		}},
		{"complete", 7, 7, func() [][]int {
			adj := make([][]int, 7)
			for l := range adj {
				for r := 0; r < 7; r++ {
					adj[l] = append(adj[l], r)
				}
			}
			return adj
		}},
		{"star-collision", 8, 8, func() [][]int {
			// Every left vertex wants r0; only one can have it.
			adj := make([][]int, 8)
			for l := range adj {
				adj[l] = []int{0}
			}
			return adj
		}},
		{"disconnected-components", 10, 10, func() [][]int {
			// Two complete K3,3 blocks and an isolated pair, no cross edges.
			adj := make([][]int, 10)
			for l := 0; l < 3; l++ {
				adj[l] = []int{0, 1, 2}
			}
			for l := 3; l < 6; l++ {
				adj[l] = []int{3, 4, 5}
			}
			adj[6] = []int{6}
			return adj
		}},
		{"augmenting-chain", 6, 6, func() [][]int {
			// A path graph where the greedy first pass matches l_i -> r_i
			// and every improvement needs a full-length augmenting path.
			adj := make([][]int, 6)
			for l := 0; l < 6; l++ {
				adj[l] = append(adj[l], l)
				if l+1 < 6 {
					adj[l] = append(adj[l], l+1)
				}
			}
			return adj
		}},
		{"duplicate-edges", 4, 4, func() [][]int {
			// Parallel edges must not double-count.
			adj := make([][]int, 4)
			for l := range adj {
				adj[l] = []int{l % 2, l % 2, (l + 1) % 2}
			}
			return adj
		}},
	}
	for _, s := range shapes {
		checkAgainstBrute(t, s.name, s.nl, s.nr, s.adj())
	}
}

func TestRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(9)
		nr := 1 + rng.Intn(9)
		p := []float64{0.05, 0.2, 0.5, 0.9}[rng.Intn(4)]
		adj := randomAdj(rng, nl, nr, p)
		checkAgainstBrute(t, fmt.Sprintf("random-%d(nl=%d,nr=%d,p=%.2f)", trial, nl, nr, p), nl, nr, adj)
	}
}

func TestIncrementalAgainstBruteAcrossBatches(t *testing.T) {
	// The prioritized incremental matcher must reach the optimum no matter
	// how the edge set is split into batches.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nl := 2 + rng.Intn(7)
		nr := 2 + rng.Intn(7)
		adj := randomAdj(rng, nl, nr, 0.4)
		want := BruteMax(nl, nr, adj)

		m := NewIncremental(nl, nr)
		type edge struct{ l, r int }
		var edges []edge
		for l, rs := range adj {
			for _, r := range rs {
				edges = append(edges, edge{l, r})
			}
		}
		for len(edges) > 0 {
			k := 1 + rng.Intn(len(edges))
			for _, e := range edges[:k] {
				m.AddEdge(e.l, e.r)
			}
			edges = edges[k:]
			m.Augment()
		}
		if got := m.Size(); got != want {
			t.Fatalf("trial %d: incremental size = %d, oracle says %d", trial, got, want)
		}
	}
}

func TestBruteMaxKnownValues(t *testing.T) {
	// Sanity-check the oracle itself on hand-computable graphs.
	cases := []struct {
		nl, nr int
		adj    [][]int
		want   int
	}{
		{0, 0, nil, 0},
		{1, 1, [][]int{{0}}, 1},
		{2, 2, [][]int{{0}, {0}}, 1},
		{3, 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, 3},
		{2, 1, [][]int{{0}, {0}}, 1},
	}
	for i, c := range cases {
		if got := BruteMax(c.nl, c.nr, c.adj); got != c.want {
			t.Errorf("case %d: BruteMax = %d, want %d", i, got, c.want)
		}
	}
}
