// Package matching implements maximum bipartite matching: the engine behind
// URSA's minimum chain decompositions. Ford and Fulkerson showed that a
// minimum chain decomposition of a partial order on n elements corresponds
// to a maximum matching in the bipartite graph whose left and right sides
// are both copies of the element set and whose edges are the order's pairs;
// the minimum number of chains is n − |matching| (paper §3.1, [FoF65]).
//
// The Incremental matcher supports the paper's modified algorithm: edges are
// added in priority batches (non-hammock-crossing edges first, then by
// nesting-level difference) with augmentation run after each batch, which
// biases the final maximum matching toward high-priority edges and keeps the
// decomposition minimal for every nested hammock.
package matching

// Incremental is a bipartite matcher over a fixed vertex set that accepts
// edges in batches and maintains a maximum matching over the edges added so
// far via Kuhn's augmenting-path algorithm.
type Incremental struct {
	nl, nr int
	adj    [][]int32
	matchL []int32 // left -> right, -1 if unmatched
	matchR []int32 // right -> left, -1 if unmatched
	visit  []int32 // visit stamp per right vertex
	stamp  int32
}

// NewIncremental returns a matcher with nl left and nr right vertices and no
// edges.
func NewIncremental(nl, nr int) *Incremental {
	m := &Incremental{
		nl:     nl,
		nr:     nr,
		adj:    make([][]int32, nl),
		matchL: make([]int32, nl),
		matchR: make([]int32, nr),
		visit:  make([]int32, nr),
	}
	for i := range m.matchL {
		m.matchL[i] = -1
	}
	for i := range m.matchR {
		m.matchR[i] = -1
	}
	return m
}

// AddEdge inserts the edge (l, r). Duplicate edges are harmless.
func (m *Incremental) AddEdge(l, r int) {
	m.adj[l] = append(m.adj[l], int32(r))
}

// Reset rewinds the matcher to an empty graph over nl left and nr right
// vertices, keeping every buffer's capacity — including each left vertex's
// adjacency list. A pooled matcher reset per measurement is how the delta
// path avoids rebuilding its edge storage for every tentative candidate.
func (m *Incremental) Reset(nl, nr int) {
	if cap(m.adj) < nl {
		m.adj = make([][]int32, nl)
	}
	m.adj = m.adj[:nl]
	for i := range m.adj {
		m.adj[i] = m.adj[i][:0]
	}
	m.matchL = resetInt32(m.matchL, nl, -1)
	m.matchR = resetInt32(m.matchR, nr, -1)
	m.visit = resetInt32(m.visit, nr, 0)
	m.nl, m.nr = nl, nr
	m.stamp = 0
}

// resetInt32 returns a slice of length n filled with v, reusing s's storage
// when it is large enough.
func resetInt32(s []int32, n int, v int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// Seed installs a known-valid matching before augmentation: pairs maps each
// left vertex to its matched right vertex, -1 for unmatched. This is the
// warm start behind the measurement delta path: a maximum matching over an
// edge set stays a valid matching after edges are added, so reseeding it and
// augmenting from the remaining unmatched left vertices restores maximality
// without rederiving the prior pairs. The pairs must be consistent (panics
// if a right vertex is claimed twice) and must correspond to edges of the
// graph being rebuilt, which the caller guarantees.
func (m *Incremental) Seed(pairs []int) {
	for l, r := range pairs {
		if r < 0 {
			continue
		}
		if m.matchR[r] != -1 {
			panic("matching: Seed pairs claim a right vertex twice")
		}
		m.matchL[l] = int32(r)
		m.matchR[r] = int32(l)
	}
}

// Augment runs augmenting-path search from every unmatched left vertex and
// returns the current matching size. Call after each batch of AddEdge calls.
func (m *Incremental) Augment() int {
	for l := 0; l < m.nl; l++ {
		if m.matchL[l] == -1 {
			m.stamp++
			m.tryAugment(int32(l))
		}
	}
	return m.Size()
}

func (m *Incremental) tryAugment(l int32) bool {
	for _, r := range m.adj[l] {
		if m.visit[r] == m.stamp {
			continue
		}
		m.visit[r] = m.stamp
		if m.matchR[r] == -1 || m.tryAugment(m.matchR[r]) {
			m.matchL[l] = r
			m.matchR[r] = l
			return true
		}
	}
	return false
}

// Size returns the number of matched pairs.
func (m *Incremental) Size() int {
	n := 0
	for _, r := range m.matchL {
		if r != -1 {
			n++
		}
	}
	return n
}

// PairL returns the right vertex matched to l, or -1.
func (m *Incremental) PairL(l int) int { return int(m.matchL[l]) }

// PairR returns the left vertex matched to r, or -1.
func (m *Incremental) PairR(r int) int { return int(m.matchR[r]) }

// Max computes a maximum matching of the bipartite graph given by adjacency
// lists adj (left vertex -> right neighbours) in one shot. It returns the
// left-to-right assignment (-1 for unmatched) and the matching size.
func Max(nl, nr int, adj [][]int) ([]int, int) {
	m := NewIncremental(nl, nr)
	for l, rs := range adj {
		for _, r := range rs {
			m.AddEdge(l, r)
		}
	}
	size := m.Augment()
	out := make([]int, nl)
	for l := range out {
		out[l] = int(m.matchL[l])
	}
	return out, size
}
