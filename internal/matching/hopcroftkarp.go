package matching

// HopcroftKarp computes a maximum matching of the bipartite graph given by
// adjacency lists (left vertex -> right neighbours) in O(E·√V). It returns
// the left-to-right assignment (-1 for unmatched) and the matching size.
// Used by the benchmarks as the asymptotically faster cross-check of the
// incremental matcher.
func HopcroftKarp(nl, nr int, adj [][]int) ([]int, int) {
	const inf = int32(1) << 30
	matchL := make([]int32, nl)
	matchR := make([]int32, nr)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int32, nl)
	queue := make([]int32, 0, nl)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nl; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range adj[l] {
				nxt := matchR[r]
				if nxt == -1 {
					found = true
				} else if dist[nxt] == inf {
					dist[nxt] = dist[l] + 1
					queue = append(queue, nxt)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range adj[l] {
			nxt := matchR[r]
			if nxt == -1 || (dist[nxt] == dist[l]+1 && dfs(nxt)) {
				matchL[l] = int32(r)
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < nl; l++ {
			if matchL[l] == -1 && dfs(int32(l)) {
				size++
			}
		}
	}
	out := make([]int, nl)
	for l := range out {
		out[l] = int(matchL[l])
	}
	return out, size
}
