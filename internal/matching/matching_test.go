package matching

import (
	"math/rand"
	"testing"
)

func TestMaxSimple(t *testing.T) {
	// Perfect matching on K2,2.
	adj := [][]int{{0, 1}, {0, 1}}
	match, size := Max(2, 2, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	if match[0] == match[1] {
		t.Errorf("both left vertices matched to %d", match[0])
	}
}

func TestMaxUnmatchable(t *testing.T) {
	// Three left vertices all adjacent only to right vertex 0.
	adj := [][]int{{0}, {0}, {0}}
	match, size := Max(3, 1, adj)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
	matched := 0
	for _, r := range match {
		if r != -1 {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("%d left vertices matched, want 1", matched)
	}
}

func TestMaxEmpty(t *testing.T) {
	if _, size := Max(0, 0, nil); size != 0 {
		t.Errorf("empty graph matching size = %d", size)
	}
	adj := make([][]int, 3)
	if _, size := Max(3, 3, adj); size != 0 {
		t.Errorf("edgeless graph matching size = %d", size)
	}
}

func TestIncrementalBatchesPreferEarlyEdges(t *testing.T) {
	// Batch 1: (0,0). Batch 2: (0,1),(1,0).
	// A maximum matching of the full graph has size 2 and must use (0,1)
	// and (1,0) — augmentation after the second batch must rewire the
	// first batch's edge. This is exactly the re-augmentation behaviour
	// the prioritized chain decomposition relies on.
	m := NewIncremental(2, 2)
	m.AddEdge(0, 0)
	if got := m.Augment(); got != 1 {
		t.Fatalf("after batch 1: size = %d, want 1", got)
	}
	if m.PairL(0) != 0 {
		t.Fatalf("batch 1 edge not matched")
	}
	m.AddEdge(0, 1)
	m.AddEdge(1, 0)
	if got := m.Augment(); got != 2 {
		t.Fatalf("after batch 2: size = %d, want 2", got)
	}
	if m.PairL(0) != 1 || m.PairL(1) != 0 {
		t.Errorf("matching = {0:%d, 1:%d}, want {0:1, 1:0}", m.PairL(0), m.PairL(1))
	}
	if m.PairR(0) != 1 || m.PairR(1) != 0 {
		t.Errorf("reverse matching inconsistent")
	}
}

func TestIncrementalPriorityRetention(t *testing.T) {
	// Left 0 can take right 0 or 1; left 1 can take only right 1.
	// If (0,0) arrives in an earlier batch it stays matched and both match.
	m := NewIncremental(2, 2)
	m.AddEdge(0, 0)
	m.Augment()
	m.AddEdge(0, 1)
	m.AddEdge(1, 1)
	if got := m.Augment(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
	if m.PairL(0) != 0 {
		t.Errorf("high-priority edge (0,0) was displaced needlessly: PairL(0)=%d", m.PairL(0))
	}
}

func randomAdj(rng *rand.Rand, nl, nr int, p float64) [][]int {
	adj := make([][]int, nl)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				adj[l] = append(adj[l], r)
			}
		}
	}
	return adj
}

func validMatching(t *testing.T, nl, nr int, adj [][]int, match []int) {
	t.Helper()
	usedR := make(map[int]bool)
	for l, r := range match {
		if r == -1 {
			continue
		}
		if usedR[r] {
			t.Fatalf("right vertex %d matched twice", r)
		}
		usedR[r] = true
		found := false
		for _, x := range adj[l] {
			if x == r {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
		}
	}
}

func TestKuhnAgreesWithHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		nl := 1 + rng.Intn(20)
		nr := 1 + rng.Intn(20)
		adj := randomAdj(rng, nl, nr, 0.2)
		m1, s1 := Max(nl, nr, adj)
		m2, s2 := HopcroftKarp(nl, nr, adj)
		if s1 != s2 {
			t.Fatalf("trial %d: Kuhn size %d != HK size %d", trial, s1, s2)
		}
		validMatching(t, nl, nr, adj, m1)
		validMatching(t, nl, nr, adj, m2)
	}
}

func TestIncrementalBatchedEqualsOneShot(t *testing.T) {
	// Splitting the edge set into arbitrary batches must not change the
	// final matching size (only its composition).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nl := 1 + rng.Intn(15)
		nr := 1 + rng.Intn(15)
		adj := randomAdj(rng, nl, nr, 0.3)
		_, want := Max(nl, nr, adj)

		m := NewIncremental(nl, nr)
		got := 0
		for l, rs := range adj {
			for _, r := range rs {
				m.AddEdge(l, r)
				if rng.Intn(3) == 0 {
					got = m.Augment()
				}
			}
		}
		got = m.Augment()
		if got != want {
			t.Fatalf("trial %d: batched size %d != one-shot %d", trial, got, want)
		}
	}
}

func BenchmarkKuhn256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adj := randomAdj(rng, 256, 256, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Max(256, 256, adj)
	}
}

func BenchmarkHopcroftKarp256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	adj := randomAdj(rng, 256, 256, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(256, 256, adj)
	}
}

// TestSeedWarmStart: seeding a maximum matching of a subgraph and
// augmenting after new edges arrive reaches the same size as building from
// scratch — the invariant the measurement delta path rests on.
func TestSeedWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		nl, nr := 1+rng.Intn(12), 1+rng.Intn(12)
		var oldEdges, newEdges [][2]int
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				switch rng.Intn(4) {
				case 0:
					oldEdges = append(oldEdges, [2]int{l, r})
				case 1:
					newEdges = append(newEdges, [2]int{l, r})
				}
			}
		}

		base := NewIncremental(nl, nr)
		for _, e := range oldEdges {
			base.AddEdge(e[0], e[1])
		}
		base.Augment()
		pairs := make([]int, nl)
		for l := 0; l < nl; l++ {
			pairs[l] = base.PairL(l)
		}

		warm := NewIncremental(nl, nr)
		for _, e := range oldEdges {
			warm.AddEdge(e[0], e[1])
		}
		warm.Seed(pairs)
		if warm.Size() != base.Size() {
			t.Fatalf("trial %d: seeded size %d, original %d", trial, warm.Size(), base.Size())
		}
		for _, e := range newEdges {
			warm.AddEdge(e[0], e[1])
		}
		warm.Augment()

		cold := NewIncremental(nl, nr)
		for _, e := range oldEdges {
			cold.AddEdge(e[0], e[1])
		}
		for _, e := range newEdges {
			cold.AddEdge(e[0], e[1])
		}
		cold.Augment()

		if warm.Size() != cold.Size() {
			t.Fatalf("trial %d: warm-started size %d, from-scratch %d", trial, warm.Size(), cold.Size())
		}
	}
}

// TestSeedRejectsConflict: claiming one right vertex twice must panic —
// a corrupted seed would silently undercount widths otherwise.
func TestSeedRejectsConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting seed did not panic")
		}
	}()
	m := NewIncremental(2, 1)
	m.AddEdge(0, 0)
	m.AddEdge(1, 0)
	m.Seed([]int{0, 0})
}
