package matching

// BruteMax computes the maximum bipartite matching size by exhaustive
// branch and bound over the left vertices. It is exponential and exists as
// the independent oracle the fast algorithms are differentially tested
// against; keep nl below ~20.
func BruteMax(nl, nr int, adj [][]int) int {
	usedR := make([]bool, nr)
	best := 0
	var walk func(l, size int)
	walk = func(l, size int) {
		if size > best {
			best = size
		}
		// Bound: even matching every remaining left vertex cannot beat best.
		if l >= nl || size+(nl-l) <= best {
			return
		}
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				walk(l+1, size+1)
				usedR[r] = false
			}
		}
		walk(l+1, size) // leave l unmatched
	}
	walk(0, 0)
	return best
}
