package trace

import (
	"testing"

	"ursa/internal/cfg"
	"ursa/internal/core"
	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// loopKernel is a loop whose body splits on a data-dependent condition;
// with the given inputs the "then" side dominates, so the main trace should
// run head -> body -> then -> join.
const loopSrc = `
	var s = 0;
	for i = 0 to 16 {
		if (c[i] > 0) { s = s + c[i] * 3; } else { s = s - 1; }
	}
	out[0] = s;
`

func loopSetup(t *testing.T) (*cfg.Graph, *cfg.Profile, *ir.State) {
	t.Helper()
	u, err := frontend.Compile(loopSrc, frontend.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	g, err := cfg.Build(u.Func)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	init := ir.NewState()
	for i := int64(0); i < 16; i++ {
		v := int64(i + 1)
		if i%5 == 4 {
			v = -2
		}
		init.StoreInt("c", i, v)
	}
	prof, err := cfg.ProfileRun(g, init, 1_000_000)
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	return g, prof, init
}

func TestSelectCoversAllBlocks(t *testing.T) {
	g, prof, _ := loopSetup(t)
	traces := Select(g, prof)
	seen := map[int]bool{}
	for _, tr := range traces {
		for _, b := range tr.Blocks {
			if seen[b] {
				t.Errorf("block %d in two traces", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != len(g.Blocks) {
		t.Errorf("traces cover %d of %d blocks", len(seen), len(g.Blocks))
	}
	// The main trace must span several blocks (head + body + hot side).
	if len(traces[0].Blocks) < 3 {
		t.Errorf("main trace has only %d blocks (%v)", len(traces[0].Blocks), traces[0].Labels())
	}
}

func TestBuildDAGSpeculationRules(t *testing.T) {
	g, prof, _ := loopSetup(t)
	traces := Select(g, prof)
	tr := traces[0]
	dg, err := BuildDAG(tr)
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	if err := dg.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	reach := dg.Reach()
	// All branch nodes are totally ordered; stores never precede an
	// earlier branch nor follow a later one out of order.
	var branches []int
	for _, n := range dg.InstrNodes() {
		if dg.Nodes[n].Instr.IsBranch() {
			branches = append(branches, n)
		}
	}
	if len(branches) < 2 {
		t.Fatalf("expected multiple branches in trace, got %d", len(branches))
	}
	for i := 0; i < len(branches); i++ {
		for j := i + 1; j < len(branches); j++ {
			if !reach.Has(branches[i], branches[j]) && !reach.Has(branches[j], branches[i]) {
				t.Errorf("branches %d and %d unordered", branches[i], branches[j])
			}
		}
	}
	for _, n := range dg.InstrNodes() {
		in := dg.Nodes[n].Instr
		if !in.IsStore() {
			continue
		}
		ordered := 0
		for _, b := range branches {
			if reach.Has(n, b) || reach.Has(b, n) {
				ordered++
			}
		}
		if ordered != len(branches) {
			t.Errorf("store node %d unordered with %d branches", n, len(branches)-ordered)
		}
	}
}

func TestCompileAndVerifyTraces(t *testing.T) {
	g, prof, init := loopSetup(t)
	traces := Select(g, prof)
	for _, m := range []*machine.Config{machine.VLIW(4, 8), machine.VLIW(2, 4)} {
		for _, useURSA := range []bool{false, true} {
			for ti, tr := range traces {
				prog, _, err := Compile(tr, m, useURSA, core.Options{})
				if err != nil {
					t.Fatalf("trace %d (%v) on %s ursa=%v: %v", ti, tr.Labels(), m.Name, useURSA, err)
				}
				if _, err := Verify(prog, tr, init); err != nil {
					t.Errorf("trace %d (%v) on %s ursa=%v: %v", ti, tr.Labels(), m.Name, useURSA, err)
				}
			}
		}
	}
}

func TestTraceExitsVerified(t *testing.T) {
	// Drive the main trace with inputs that exit at different points.
	g, prof, _ := loopSetup(t)
	tr := Select(g, prof)[0]
	m := machine.VLIW(4, 8)
	prog, _, err := Compile(tr, m, true, core.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, val := range []int64{-7, 0, 5} {
		init := ir.NewState()
		for i := int64(0); i < 16; i++ {
			init.StoreInt("c", i, val)
		}
		// The loop counter state matters: emulate mid-loop entry.
		init.StoreInt("$i", 0, 3)
		init.StoreInt("$s", 0, 100)
		if _, err := Verify(prog, tr, init); err != nil {
			t.Errorf("c[i]=%d: %v", val, err)
		}
	}
}

func TestTraceSpeculationWins(t *testing.T) {
	// Trace-level compilation must not be slower than the head block alone
	// repeated: it exposes cross-block parallelism. Weak check: compiling
	// the multi-block trace yields a schedule shorter than the sum of its
	// per-block schedules.
	g, prof, init := loopSetup(t)
	tr := Select(g, prof)[0]
	if len(tr.Blocks) < 3 {
		t.Skip("trace too short")
	}
	m := machine.VLIW(4, 16)
	prog, _, err := Compile(tr, m, true, core.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := Verify(prog, tr, init)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	total := 0
	for _, bi := range tr.Blocks {
		blk := g.Blocks[bi]
		n := 0
		for _, in := range blk.Instrs {
			_ = in
			n++
		}
		total += n
	}
	if res.Cycles >= total {
		t.Errorf("trace schedule %d cycles not better than sequential %d", res.Cycles, total)
	}
}

// TestTraceBranchInversion: when the trace follows a conditional's *taken*
// edge, the compiled trace must invert the branch so that staying on the
// trace is fall-through, with the old fall-through block as the exit.
func TestTraceBranchInversion(t *testing.T) {
	u, err := frontend.Compile(`
		var s = 0;
		for i = 0 to 8 {
			if (c[i] > 100) { s = s + 1; }
			s = s + c[i];
		}
		out[0] = s;
	`, frontend.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	g, err := cfg.Build(u.Func)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	// All c[i] small: the `then` side never runs, so the hot trace follows
	// the if's TAKEN edge (brf jumping over the then-block).
	init := ir.NewState()
	for i := int64(0); i < 8; i++ {
		init.StoreInt("c", i, 1)
	}
	prof, err := cfg.ProfileRun(g, init, 100000)
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	traces := Select(g, prof)
	// Find a trace whose normalized instructions contain an inverted
	// conditional (a BrTrue: the lowering only emits BrFalse).
	inverted := false
	for _, tr := range traces {
		ins, err := tr.instrs()
		if err != nil {
			continue
		}
		for _, in := range ins {
			if in.Op == ir.BrTrue {
				inverted = true
			}
		}
		if !inverted {
			continue
		}
		prog, _, err := Compile(tr, machine.VLIW(4, 8), true, core.Options{})
		if err != nil {
			t.Fatalf("Compile trace: %v", err)
		}
		if _, err := Verify(prog, tr, init); err != nil {
			t.Fatalf("inverted trace fails verification: %v", err)
		}
		// Off-trace inputs must exit through the inverted branch.
		offInit := ir.NewState()
		for i := int64(0); i < 8; i++ {
			offInit.StoreInt("c", i, 500)
		}
		if _, err := Verify(prog, tr, offInit); err != nil {
			t.Fatalf("inverted trace off-path: %v", err)
		}
		break
	}
	if !inverted {
		t.Skip("profile did not produce an inverted-branch trace (layout changed?)")
	}
}
