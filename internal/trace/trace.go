// Package trace implements Fisher-style trace selection and trace-level
// compilation (paper §2, [Fis81]): the most frequently executed acyclic
// block sequences are chosen from an execution profile, concatenated into a
// single dependence DAG that allows safe upward code motion across branches
// (pure operations and loads may be speculated; stores and branches keep
// their order), and compiled as one region. URSA operates on exactly this
// representation.
package trace

import (
	"fmt"

	"ursa/internal/assign"
	"ursa/internal/cfg"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
	"ursa/internal/vliwsim"
)

// A Trace is an acyclic sequence of basic blocks expected to execute
// together.
type Trace struct {
	Graph  *cfg.Graph
	Blocks []int // block indices in execution order
}

// Labels returns the block labels of the trace.
func (t *Trace) Labels() []string {
	out := make([]string, len(t.Blocks))
	for i, b := range t.Blocks {
		out[i] = t.Graph.Blocks[b].Label
	}
	return out
}

// Select forms traces from the profile with Fisher's algorithm: seed each
// trace at the hottest unvisited block, grow forward along the
// highest-count edges into unvisited blocks, then grow backward the same
// way. Every block lands in exactly one trace.
func Select(g *cfg.Graph, prof *cfg.Profile) []*Trace {
	visited := make([]bool, len(g.Blocks))
	var traces []*Trace
	for _, seed := range prof.HottestBlocks() {
		if visited[seed] {
			continue
		}
		tr := &Trace{Graph: g, Blocks: []int{seed}}
		visited[seed] = true
		// Forward growth.
		for {
			tail := tr.Blocks[len(tr.Blocks)-1]
			next, best := -1, int64(0)
			for _, s := range g.Succs(tail) {
				if c := prof.EdgeCount(tail, s); !visited[s] && c > best {
					next, best = s, c
				}
			}
			if next < 0 {
				break
			}
			visited[next] = true
			tr.Blocks = append(tr.Blocks, next)
		}
		// Backward growth.
		for {
			head := tr.Blocks[0]
			prev, best := -1, int64(0)
			for _, p := range g.Preds(head) {
				if c := prof.EdgeCount(p, head); !visited[p] && c > best {
					prev, best = p, c
				}
			}
			if prev < 0 {
				break
			}
			visited[prev] = true
			tr.Blocks = append([]int{prev}, tr.Blocks...)
		}
		traces = append(traces, tr)
	}
	return traces
}

// instrs returns the trace's instruction sequence with internal control
// flow normalized: unconditional branches to the next trace block are
// dropped, and conditional branches whose taken edge stays on the trace are
// inverted so that "taken" always means "leave the trace" (the classic
// bookkeeping-free subset of trace formation).
func (t *Trace) instrs() ([]*ir.Instr, error) {
	g := t.Graph
	var out []*ir.Instr
	for pos, bi := range t.Blocks {
		blk := g.Blocks[bi]
		last := pos == len(t.Blocks)-1
		var next int = -1
		if !last {
			next = t.Blocks[pos+1]
		}
		for _, in := range blk.Instrs {
			if !in.IsBranch() {
				out = append(out, in.Clone())
				continue
			}
			if last {
				out = append(out, in.Clone())
				continue
			}
			switch in.Op {
			case ir.Br:
				if g.Index(in.Sym) != next {
					return nil, fmt.Errorf("trace: unconditional branch leaves the trace mid-way")
				}
				// Redundant inside the trace.
			case ir.BrTrue, ir.BrFalse:
				target := g.Index(in.Sym)
				fall := bi + 1
				switch next {
				case fall:
					out = append(out, in.Clone()) // taken = exit
				case target:
					// Invert: staying on trace is the taken edge.
					inv := in.Clone()
					if in.Op == ir.BrTrue {
						inv.Op = ir.BrFalse
					} else {
						inv.Op = ir.BrTrue
					}
					if fall >= len(g.Blocks) {
						return nil, fmt.Errorf("trace: conditional fall-through off the end")
					}
					inv.Sym = g.Blocks[fall].Label
					out = append(out, inv)
				default:
					return nil, fmt.Errorf("trace: successor %d not adjacent to branch", next)
				}
			case ir.Ret:
				return nil, fmt.Errorf("trace: ret in the middle of a trace")
			}
		}
	}
	return out, nil
}

// BuildDAG constructs the trace's dependence DAG. Data and memory
// dependences follow dag.Build; control dependences implement safe
// speculation: branches stay mutually ordered, stores stay pinned between
// their surrounding branches, and pure operations and loads may move freely
// (our memory model is total, so a speculated load cannot fault).
func BuildDAG(t *Trace) (*dag.Graph, error) {
	instrs, err := t.instrs()
	if err != nil {
		return nil, err
	}
	f := t.Graph.Func
	g := dag.New(f)

	defNode := make(map[ir.VReg]int)
	var memNodes []int
	var branches []int
	lastBranch := -1

	for _, in := range instrs {
		id := g.AddInstr(in)
		for _, u := range in.Uses() {
			if dn, ok := defNode[u]; ok {
				g.AddEdge(dn, id, dag.EdgeData)
			}
		}
		if in.Dst != ir.NoReg {
			if _, dup := defNode[in.Dst]; dup {
				return nil, fmt.Errorf("trace: register %s defined in two blocks", f.NameOf(in.Dst))
			}
			defNode[in.Dst] = id
		}
		if in.IsMem() {
			for _, prev := range memNodes {
				pin := g.Nodes[prev].Instr
				if (pin.IsStore() || in.IsStore()) && dag.MayAlias(pin, in) {
					g.AddEdge(prev, id, dag.EdgeMem)
				}
			}
			memNodes = append(memNodes, id)
		}
		if in.IsStore() && lastBranch >= 0 {
			g.AddEdge(lastBranch, id, dag.EdgeSeq) // no store speculation
		}
		if in.IsBranch() {
			if lastBranch >= 0 {
				g.AddEdge(lastBranch, id, dag.EdgeSeq) // branches stay ordered
			}
			// Stores before this branch must complete before control can
			// leave the trace.
			for _, prev := range memNodes {
				if g.Nodes[prev].Instr.IsStore() && prev != id {
					g.AddEdge(prev, id, dag.EdgeSeq)
				}
			}
			branches = append(branches, id)
			lastBranch = id
		}
	}
	_ = branches

	for _, n := range g.InstrNodes() {
		hasPred, hasSucc := false, false
		for _, p := range g.Preds(n) {
			if p != g.Root {
				hasPred = true
			}
		}
		for _, s := range g.Succs(n) {
			if s != g.Leaf {
				hasSucc = true
			}
		}
		if !hasPred {
			g.AddEdge(g.Root, n, dag.EdgeSeq)
		}
		if !hasSucc {
			g.AddEdge(n, g.Leaf, dag.EdgeSeq)
		}
	}
	if len(g.InstrNodes()) == 0 {
		g.AddEdge(g.Root, g.Leaf, dag.EdgeSeq)
	}

	// Defined-but-unused values survive the trace.
	used := make(map[ir.VReg]bool)
	for _, in := range instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	for v := range defNode {
		if !used[v] {
			g.LiveOut[v] = true
		}
	}
	if err := g.Check(); err != nil {
		return nil, err
	}
	return g, nil
}

// Reference interprets the trace's original blocks sequentially from a copy
// of init, following actual branch outcomes, and returns the final state
// plus the exit: "" when control runs off the trace's end (or a final
// branch falls through), "ret" for a return, otherwise the label of the
// off-trace block control left to.
func Reference(t *Trace, init *ir.State) (*ir.State, string, error) {
	g := t.Graph
	f := g.Func
	st := init.Clone()
	for pos, bi := range t.Blocks {
		blk := g.Blocks[bi]
		last := pos == len(t.Blocks)-1
		branched := false
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Br, ir.BrTrue, ir.BrFalse:
				taken := in.Op == ir.Br ||
					(in.Op == ir.BrTrue && st.Regs[in.Args[0]].Int() != 0) ||
					(in.Op == ir.BrFalse && st.Regs[in.Args[0]].Int() == 0)
				var dest int
				if taken {
					dest = g.Index(in.Sym)
				} else {
					dest = bi + 1
				}
				if !last && dest == t.Blocks[pos+1] {
					branched = true // stays on trace
					continue
				}
				if last && !taken {
					return st, "", nil
				}
				if dest >= len(g.Blocks) {
					return st, "", nil
				}
				return st, g.Blocks[dest].Label, nil
			case ir.Ret:
				return st, "ret", nil
			default:
				st.Exec(f, in)
			}
		}
		if branched || last {
			if branched && !last {
				continue
			}
			return st, "", nil
		}
		// Fall through (no terminator): must continue to the next trace
		// block or exit off-trace.
		if bi+1 != t.Blocks[pos+1] {
			return st, g.Blocks[bi+1].Label, nil
		}
	}
	return st, "", nil
}

// Compile builds the trace DAG, optionally runs URSA's allocation on it,
// and emits VLIW code.
func Compile(t *Trace, m *machine.Config, useURSA bool, copts core.Options) (*assign.Program, *core.Report, error) {
	g, err := BuildDAG(t)
	if err != nil {
		return nil, nil, err
	}
	var rep *core.Report
	if useURSA {
		copts.Machine = m
		rep, err = core.Run(g, copts)
		if err != nil {
			return nil, nil, err
		}
	}
	prog, _, err := assign.Emit(g, m, sched.Options{})
	if err != nil {
		return nil, nil, err
	}
	return prog, rep, nil
}

// Verify runs the compiled trace on the simulator and compares memory and
// exit against the reference interpretation. Registers are not compared:
// speculated operations legitimately leave extra register results.
func Verify(prog *assign.Program, t *Trace, init *ir.State) (*vliwsim.Result, error) {
	ref, exit, err := Reference(t, init)
	if err != nil {
		return nil, err
	}
	res, err := vliwsim.Run(prog, init)
	if err != nil {
		return nil, err
	}
	if res.Exit != exit {
		return nil, fmt.Errorf("trace: exit %q, want %q", res.Exit, exit)
	}
	for addr, want := range ref.Mem {
		if isSpill(addr.Sym) {
			continue
		}
		if got := res.State.Mem[addr]; got != want {
			return nil, fmt.Errorf("trace: mem %s[%d] = %d, want %d",
				addr.Sym, addr.Off, got.Int(), want.Int())
		}
	}
	for addr, got := range res.State.Mem {
		if isSpill(addr.Sym) {
			continue
		}
		if want := ref.Mem[addr]; got != want {
			return nil, fmt.Errorf("trace: mem %s[%d] = %d, want %d",
				addr.Sym, addr.Off, got.Int(), want.Int())
		}
	}
	return res, nil
}

func isSpill(sym string) bool {
	return len(sym) >= 5 && sym[:5] == "spill"
}
