package check

import (
	"ursa/internal/ir"
)

// Shrink reduces a failing case to a (locally) minimal one: the smallest
// program and machine this greedy pass can find on which fails still
// returns true. fails must be deterministic; Shrink calls it repeatedly.
//
// The strategy is delta debugging adapted to SSA straight-line code:
// removing an instruction also removes the forward closure of its users, so
// every candidate stays a valid program. Chunks shrink from half the block
// down to single instructions, then the machine is simplified (fewer units,
// fewer registers, unit latencies, no pipelining), then the whole pass
// repeats until a fixed point.
func Shrink(c *Case, fails func(*Case) bool) *Case {
	cur := c.Clone()
	for changed := true; changed; {
		changed = false
		if next, ok := shrinkInstrs(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkMachine(cur, fails); ok {
			cur, changed = next, true
		}
	}
	return cur
}

// shrinkInstrs tries to drop instruction chunks (with their dependent
// closure) while the failure persists.
func shrinkInstrs(c *Case, fails func(*Case) bool) (*Case, bool) {
	improved := false
	cur := c
	for size := len(cur.Block().Instrs) / 2; size >= 1; size /= 2 {
		for start := 0; start < len(cur.Block().Instrs); {
			next := dropClosure(cur, start, size)
			if next != nil && len(next.Block().Instrs) < len(cur.Block().Instrs) && fails(next) {
				cur = next
				improved = true
				// Stay at the same start: the block shifted left.
				continue
			}
			start += size
		}
	}
	return cur, improved
}

// dropClosure removes instructions [start, start+size) plus every later
// instruction that (transitively) uses a removed definition. Returns nil
// when nothing would remain.
func dropClosure(c *Case, start, size int) *Case {
	instrs := c.Block().Instrs
	dead := map[ir.VReg]bool{}
	var kept []*ir.Instr
	for i, in := range instrs {
		drop := i >= start && i < start+size
		if !drop {
			for _, u := range in.Uses() {
				if dead[u] {
					drop = true
					break
				}
			}
		}
		if drop {
			if in.Dst != ir.NoReg {
				dead[in.Dst] = true
			}
			continue
		}
		kept = append(kept, in)
	}
	if len(kept) == 0 || len(kept) == len(instrs) {
		return nil
	}
	nc := c.Clone()
	b := nc.Block()
	b.Instrs = b.Instrs[:0]
	for _, in := range kept {
		b.Append(in.Clone())
	}
	return nc
}

// shrinkMachine tries successively simpler machines: fewer registers,
// fewer units, unit latency, no pipelining, homogeneous instead of
// heterogeneous.
func shrinkMachine(c *Case, fails func(*Case) bool) (*Case, bool) {
	improved := false
	cur := c
	attempt := func(mutate func(*MachineSpec)) {
		spec := *cur.Mach
		mutate(&spec)
		if spec == *cur.Mach {
			return
		}
		next := cur.Clone()
		next.Mach = &spec
		if next.Mach.Config().Validate() != nil {
			return
		}
		if fails(next) {
			cur = next
			improved = true
		}
	}
	attempt(func(s *MachineSpec) { s.Pipelined = false })
	attempt(func(s *MachineSpec) { s.Realistic = false })
	// Drop the extended-target models first: a failure that survives on a
	// plain VLIW is easier to debug than one entangled with clusters,
	// buffers, or a fetch bound.
	attempt(func(s *MachineSpec) { s.IssueWidth = 0 })
	attempt(func(s *MachineSpec) { s.BufferDepth = 0 })
	attempt(func(s *MachineSpec) { s.Clusters, s.Buses, s.CopyLat = 0, 0, 0 })
	attempt(func(s *MachineSpec) {
		if s.CopyLat > 1 {
			s.CopyLat = 1
		}
	})
	attempt(func(s *MachineSpec) {
		if s.Clusters > 2 {
			s.Clusters = 2
		}
	})
	attempt(func(s *MachineSpec) {
		if s.Het {
			*s = MachineSpec{Width: s.IALU, IntRegs: s.IntRegs, FPRegs: s.FPRegs,
				Realistic: s.Realistic, Pipelined: s.Pipelined}
		}
	})
	// Unit counts stay >= 1 so the shrunk machine can still schedule every
	// kind; collapsing to an unschedulable config would trade the original
	// violation for a trivial one.
	for _, f := range []func(*MachineSpec){
		func(s *MachineSpec) {
			if !s.Het && s.Width > 1 {
				s.Width--
			}
		},
		func(s *MachineSpec) {
			if s.Het && s.IALU > 1 {
				s.IALU--
			}
		},
		func(s *MachineSpec) {
			if s.Het && s.FALU > 1 {
				s.FALU--
			}
		},
		func(s *MachineSpec) {
			if s.Het && s.MEM > 1 {
				s.MEM--
			}
		},
		func(s *MachineSpec) {
			if s.IntRegs > 1 {
				s.IntRegs--
			}
		},
		func(s *MachineSpec) {
			if s.FPRegs > 1 {
				s.FPRegs--
			}
		},
		func(s *MachineSpec) {
			if s.Buses > 1 {
				s.Buses--
			}
		},
		func(s *MachineSpec) {
			if s.BufferDepth > 1 {
				s.BufferDepth--
			}
		},
		func(s *MachineSpec) {
			if s.IssueWidth > 1 {
				s.IssueWidth--
			}
		},
	} {
		for { // repeat each reduction while it still fails
			before := *cur.Mach
			attempt(f)
			if *cur.Mach == before {
				break
			}
		}
	}
	return cur, improved
}

// Normalize round-trips the case through its textual form, compacting the
// register tables (dropped values disappear, names renumber from v1). The
// result is only adopted by callers when the failure is preserved.
func Normalize(c *Case) (*Case, error) {
	return ParseCase(FormatCase(c))
}
