package check

import (
	"strings"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/exact"
	"ursa/internal/ir"
	"ursa/internal/pipeline"
	"ursa/internal/target"
)

// TestExactBoundsOnCorpus is the gap property stated directly, outside
// the oracle machinery: on every committed corpus case the solver
// accepts, each heuristic method's emitted word count is at least the
// program-model optimum, its spill-free register usage is at least the
// minimum pressure, and the solver returns identical results when run
// twice. Violations here are solver bugs by the issue's charter: a
// heuristic cannot beat a true optimum.
func TestExactBoundsOnCorpus(t *testing.T) {
	corpus, err := LoadCorpus("testdata/fuzz")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	solved := 0
	for name, c := range corpus {
		t.Run(name, func(t *testing.T) {
			m := c.Mach.Config()
			if m.Clusters > 1 || m.BufferDepth > 0 {
				// The solver models units, latencies, and the issue width
				// but not per-cluster register files or output buffers, so
				// its bounds are incomparable to the resource-aware
				// pipelines there (the exact oracle skips the same way).
				t.Skip("solver does not model this target family")
			}
			g, err := dag.Build(c.Block())
			if err != nil {
				t.Fatalf("dag.Build: %v", err)
			}
			res, err := exact.Solve(g, m, exact.Options{})
			if err != nil {
				if exact.Skippable(err) {
					t.Skipf("solver refused: %v", err)
				}
				t.Fatalf("Solve: %v", err)
			}
			solved++
			again, err := exact.Solve(g, m, exact.Options{})
			if err != nil {
				t.Fatalf("second Solve: %v", err)
			}
			if res.MinWords != again.MinWords || res.MinWordsProg != again.MinWordsProg || res.MinPressure != again.MinPressure {
				t.Fatalf("solver not deterministic: %+v vs %+v", res, again)
			}
			overc := overcommitted(c)
			for _, method := range pipeline.Methods {
				_, st, err := pipeline.Compile(c.Block(), m, method, pipeline.Options{})
				if err != nil {
					if overc || target.Unsupported(err) {
						continue
					}
					t.Errorf("%s: compile: %v", method, err)
					continue
				}
				if st.Words < res.MinWordsProg {
					t.Errorf("%s emits %d words, below the program-model optimum %d", method, st.Words, res.MinWordsProg)
				}
				if st.SpillOps == 0 {
					for cl := ir.Class(0); cl < ir.NumClasses; cl++ {
						if st.RegsUsed[cl] < res.MinPressure[cl] {
							t.Errorf("%s uses %d %s registers, below minimum pressure %d",
								method, st.RegsUsed[cl], cl, res.MinPressure[cl])
						}
					}
				}
			}
		})
	}
	if solved == 0 {
		t.Error("solver refused every corpus case; the property was never exercised")
	}
}

// TestExactDeterministicAcrossWorkers: the exact lane's output through
// the function compiler is byte-identical at every block-level worker
// count and across repeated runs — the solver must not leak scheduling
// nondeterminism into emitted code.
func TestExactDeterministicAcrossWorkers(t *testing.T) {
	corpus, err := LoadCorpus("testdata/fuzz")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	exercised := 0
	for name, c := range corpus {
		m := c.Mach.Config()
		var baseline string
		var baseStats pipeline.Stats
		for run, workers := range []int{1, 4, 8, 1} {
			fp, st, err := pipeline.CompileFunc(c.Func, m, pipeline.Exact, pipeline.Options{Workers: workers})
			if err != nil {
				if run == 0 {
					break // skippable, overcommitted, or uncompilable: skip the case
				}
				t.Fatalf("%s: workers=%d compiled where workers=1 did not: %v", name, workers, err)
			}
			var sb strings.Builder
			for i, prog := range fp.Blocks {
				sb.WriteString(c.Func.Blocks[i].Label + ":\n" + prog.String())
			}
			if run == 0 {
				baseline, baseStats = sb.String(), *st
				exercised++
				continue
			}
			if sb.String() != baseline {
				t.Errorf("%s: workers=%d (run %d) changed the exact lane's code", name, workers, run)
			}
			if *st != baseStats {
				t.Errorf("%s: workers=%d (run %d) changed stats: %+v vs %+v", name, workers, run, *st, baseStats)
			}
		}
	}
	if exercised == 0 {
		t.Error("no corpus case compiled through the exact lane")
	}
}
