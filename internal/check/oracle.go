package check

import (
	"fmt"
	"sort"

	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/exact"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/matching"
	"ursa/internal/measure"
	"ursa/internal/order"
	"ursa/internal/pipeline"
	"ursa/internal/sched"
	"ursa/internal/target"
	"ursa/internal/transform"
)

// Oracle names. Each oracle independently re-derives a property the
// pipeline claims and reports any disagreement as a Violation.
const (
	OracleWidth    = "width"        // measured width vs brute antichain + Hopcroft–Karp
	OracleLegal    = "legality"     // emitted code within FU and register limits
	OracleMono     = "monotonicity" // transforms never raise the width they target
	OracleDiffExec = "diffexec"     // compiled code vs sequential interpreter
	OracleDelta    = "delta"        // incremental remeasurement vs from-scratch
	OracleExact    = "exact"        // heuristic width/schedule vs the optimal solver
)

// AllOracles lists every oracle in execution order.
var AllOracles = []string{OracleWidth, OracleLegal, OracleMono, OracleDiffExec, OracleDelta, OracleExact}

// bruteWidthLimit bounds the exhaustive antichain enumeration: above this
// many items only the polynomial cross-checks run.
const bruteWidthLimit = 16

// monoCandidateLimit bounds how many transformation candidates the
// monotonicity oracle applies per case (they each clone and re-measure).
const monoCandidateLimit = 24

// A Violation is one property failure found by an oracle.
type Violation struct {
	Oracle string
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("[%s] %s", v.Oracle, v.Detail) }

// Report accumulates one case's oracle outcomes.
type Report struct {
	Violations []Violation
	// Exercised counts individual property checks per oracle, so a run can
	// prove each oracle actually fired.
	Exercised map[string]int
}

func newReport() *Report { return &Report{Exercised: map[string]int{}} }

func (r *Report) failf(oracle, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) tick(oracle string) { r.Exercised[oracle]++ }

// Failed reports whether any violation was recorded.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// FailedOracle reports whether the named oracle recorded a violation.
func (r *Report) FailedOracle(name string) bool {
	for _, v := range r.Violations {
		if v.Oracle == name {
			return true
		}
	}
	return false
}

// Check runs the selected oracles (nil means all) on the case. Panics
// inside the pipeline under test are caught and reported as violations of
// the oracle that provoked them — a panic is a finding, not a crash.
func Check(c *Case, oracles []string) *Report {
	rep := newReport()
	if oracles == nil {
		oracles = AllOracles
	}
	for _, name := range oracles {
		runOracle(rep, name, c)
	}
	return rep
}

func runOracle(rep *Report, name string, c *Case) {
	defer func() {
		if r := recover(); r != nil {
			rep.failf(name, "panic: %v", r)
		}
	}()
	switch name {
	case OracleWidth:
		checkWidth(rep, c)
	case OracleLegal:
		checkLegality(rep, c)
	case OracleMono:
		checkMonotonicity(rep, c)
	case OracleDiffExec:
		checkDiffExec(rep, c)
	case OracleDelta:
		checkDelta(rep, c)
	case OracleExact:
		checkExact(rep, c)
	default:
		rep.failf(name, "unknown oracle")
	}
}

// buildGraph compiles the case's block into a dependence DAG, reporting any
// construction failure against the given oracle. On clustered machines the
// block is clusterized first (on a private clone, like pipeline.Compile),
// so the graph the oracles measure carries the same inter-cluster copies
// the pipelines schedule and spill.
func buildGraph(rep *Report, oracle string, c *Case) *dag.Graph {
	b := c.Block()
	if m := c.Mach.Config(); m.Clusters > 1 {
		nf := b.Func.Clone()
		b = nf.Block(b.Label)
		if _, err := target.Clusterize(b, m); err != nil {
			rep.failf(oracle, "target.Clusterize: %v", err)
			return nil
		}
	}
	g, err := dag.Build(b)
	if err != nil {
		rep.failf(oracle, "dag.Build: %v", err)
		return nil
	}
	return g
}

// checkWidth verifies, for every resource of the machine, that the
// prioritized-matching width agrees with an independent Hopcroft–Karp
// matching, that the chain decomposition is a valid partition into chains,
// and — on small instances — that the width equals the exhaustively
// enumerated maximum antichain (Dilworth's theorem, the paper's Theorem 1).
func checkWidth(rep *Report, c *Case) {
	g := buildGraph(rep, OracleWidth, c)
	if g == nil {
		return
	}
	m := c.Mach.Config()
	for _, r := range core.Resources(g, m) {
		ru := r.Build(g)
		res := measure.Measure(ru)
		n := ru.NumItems()
		rep.tick(OracleWidth)

		if err := order.ValidateDecomposition(ru.Rel, res.Chains); err != nil {
			rep.failf(OracleWidth, "%s: invalid decomposition: %v", r.Name, err)
			continue
		}
		adj := make([][]int, n)
		for a := 0; a < n; a++ {
			ru.Rel.Row(a).ForEach(func(b int) { adj[a] = append(adj[a], b) })
		}
		_, hk := matching.HopcroftKarp(n, n, adj)
		if got, want := res.Width, n-hk; got != want {
			rep.failf(OracleWidth, "%s: measured width %d, Hopcroft–Karp says %d (n=%d, matching=%d)",
				r.Name, got, want, n, hk)
		}
		if n <= bruteWidthLimit {
			anti := order.MaxAntichainBrute(ru.Rel, nil)
			if !order.IsAntichain(ru.Rel, anti) {
				rep.failf(OracleWidth, "%s: brute enumerator returned a non-antichain %v", r.Name, anti)
			}
			if len(anti) != res.Width {
				rep.failf(OracleWidth, "%s: measured width %d but maximum antichain has %d elements %v",
					r.Name, res.Width, len(anti), anti)
			}
		}
	}
}

// overcommitted reports whether some register class must hold more values
// at the block end than the machine provides: every straight-line pipeline
// keeps all live-out values (plus a trailing branch's register operands) in
// registers simultaneously, so such a case is uncompilable by construction
// and a compile refusal on it is explained, not a finding. Generate never
// produces such cases (see trimLiveOuts); hand-written corpus cases might.
func overcommitted(c *Case) bool {
	var need [ir.NumClasses]int
	b := c.Block()
	used := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	for _, in := range b.Instrs {
		if in.IsBranch() {
			for _, u := range in.Uses() {
				need[b.Func.ClassOf(u)]++
			}
		}
		if in.Dst != ir.NoReg && !used[in.Dst] {
			need[b.Func.ClassOf(in.Dst)]++
		}
	}
	return need[ir.ClassInt] > c.Mach.IntRegs || need[ir.ClassFP] > c.Mach.FPRegs
}

// checkLegality compiles the case with every pipeline and verifies the
// emitted code against the machine's static limits using an occupancy
// checker written independently of vliwsim: no cycle may over-subscribe a
// functional-unit class, and no register file may exceed its size.
func checkLegality(rep *Report, c *Case) {
	m := c.Mach.Config()
	overc := overcommitted(c)
	for _, method := range pipeline.AllMethods {
		prog, _, err := pipeline.Compile(c.Block(), m, method, pipeline.Options{})
		if err != nil {
			if target.Unsupported(err) {
				continue // declared method/target refusal, not a finding
			}
			if method == pipeline.Exact && exact.Skippable(err) {
				continue // the guarded lane may refuse large or adversarial blocks
			}
			if !overc {
				rep.failf(OracleLegal, "%s: compile: %v", method, err)
			}
			continue
		}
		rep.tick(OracleLegal)
		if err := programLegal(prog, m); err != nil {
			rep.failf(OracleLegal, "%s: %v", method, err)
		}
	}
}

// programLegal checks the static schedule legality of an emitted program.
func programLegal(prog *assign.Program, m *machine.Config) error {
	nc := m.NumClusters()
	// Functional-unit occupancy: ops started in earlier cycles hold their
	// unit for OccupancyOf cycles. Units are per cluster, except the
	// inter-cluster transfer bus, which is shared machine-wide.
	type pool struct {
		cl machine.FUClass
		k  int
	}
	busy := map[pool][]int{}
	for cycle, word := range prog.Words {
		if m.IssueWidth > 0 && len(word) > m.IssueWidth {
			return fmt.Errorf("cycle %d issues %d instructions past the %d-wide fetch bound",
				cycle, len(word), m.IssueWidth)
		}
		for _, in := range word {
			cl := m.ClassFor(in.Kind())
			p := pool{cl, int(in.Cluster)}
			if cl == machine.XFER {
				p.k = 0
			}
			inUse := 0
			for _, until := range busy[p] {
				if until > cycle {
					inUse++
				}
			}
			if inUse >= m.Units.Get(cl) {
				return fmt.Errorf("cycle %d issues onto %s (cluster %d) with %d of %d units busy",
					cycle, cl, p.k, inUse, m.Units.Get(cl))
			}
			busy[p] = append(busy[p], cycle+m.OccupancyOf(in.Op))
		}
	}
	// Register-file limits: distinct physical registers per class, and per
	// cluster file on clustered machines (a register belongs to the file of
	// the cluster that defines it — copies define into their own cluster).
	var seen [ir.NumClasses]map[ir.VReg]bool
	for i := range seen {
		seen[i] = map[ir.VReg]bool{}
	}
	regCluster := map[ir.VReg]int{}
	touch := func(v ir.VReg) {
		if v != ir.NoReg {
			seen[prog.Func.ClassOf(v)][v] = true
		}
	}
	for _, in := range prog.Instrs() {
		touch(in.Dst)
		if in.Dst != ir.NoReg {
			regCluster[in.Dst] = int(in.Cluster)
		}
		for _, a := range in.Args {
			touch(a)
		}
		touch(in.Index)
	}
	for cl := ir.Class(0); cl < ir.NumClasses; cl++ {
		if got := len(seen[cl]); got > m.Regs[cl]*nc {
			return fmt.Errorf("uses %d %s registers, machine has %d", got, cl, m.Regs[cl]*nc)
		}
		if got, claimed := len(seen[cl]), prog.RegsUsed[cl]; got != claimed {
			return fmt.Errorf("RegsUsed[%s] claims %d registers, code touches %d", cl, claimed, got)
		}
		if nc > 1 {
			per := make([]int, nc)
			for v := range seen[cl] {
				per[regCluster[v]]++
			}
			for k, got := range per {
				if got > m.Regs[cl] {
					return fmt.Errorf("cluster %d uses %d %s registers, its file has %d",
						k, got, cl, m.Regs[cl])
				}
			}
		}
	}
	return nil
}

// checkMonotonicity verifies the §4 reduction contract: applying any
// generated candidate must leave the DAG structurally valid, and for
// functional-unit resources must not increase the width of the resource the
// candidate targets — FU sequencing only adds ordering edges, reachability
// only grows, so CanReuse_FU only grows and width cannot rise (Theorem 1).
// Register candidates carry no such per-candidate theorem: the register
// measure rests on greedily selected kills (choosing them exactly is
// NP-complete, Theorem 2), and spill candidates introduce reload values
// unordered with independent chains, so a single candidate may legitimately
// raise the measured register width; the driver is what guarantees progress
// there, checked end to end below. To exercise the transformations even
// when the program already fits the machine, the oracle also probes with an
// artificial limit of width−1. Finally, a full core.Run must commit only
// excess-non-increasing steps and leave a valid DAG behind.
func checkMonotonicity(rep *Report, c *Case) {
	g := buildGraph(rep, OracleMono, c)
	if g == nil {
		return
	}
	m := c.Mach.Config()
	hammocks := g.Hammocks()
	applied := 0
	for _, r := range core.Resources(g, m) {
		ru := r.Build(g)
		res := measure.Measure(ru)
		limits := []int{r.Limit}
		if res.Width-1 >= 1 && res.Width-1 != r.Limit {
			limits = append(limits, res.Width-1)
		}
		for _, limit := range limits {
			sets := measure.FindExcess(res, hammocks, limit)
			for _, set := range sets {
				var cands []*transform.Candidate
				if r.IsRegister {
					cands = append(cands, transform.RegSeqCandidates(g, res, set)...)
					cands = append(cands, transform.SpillCandidates(g, res, set)...)
				} else {
					cands = append(cands, transform.FUCandidates(g, res, set)...)
				}
				for _, cand := range cands {
					if applied >= monoCandidateLimit {
						break
					}
					cl := g.Clone()
					if err := cand.Apply(cl); err != nil {
						continue // inapplicable candidates are allowed to refuse
					}
					applied++
					rep.tick(OracleMono)
					if err := cl.Check(); err != nil {
						rep.failf(OracleMono, "%s %s left an invalid DAG: %v", r.Name, cand, err)
						continue
					}
					if !r.IsRegister {
						w2 := measure.Measure(r.Build(cl)).Width
						if w2 > res.Width {
							rep.failf(OracleMono, "%s %s raised width %d -> %d",
								r.Name, cand, res.Width, w2)
						}
					}
				}
			}
		}
	}
	// End-to-end: the driver's committed sequence must never increase the
	// total excess, and the transformed graph must stay valid.
	run := g.Clone()
	runRep, err := core.Run(run, core.Options{Machine: m})
	if err != nil {
		rep.failf(OracleMono, "core.Run: %v", err)
		return
	}
	rep.tick(OracleMono)
	if err := run.Check(); err != nil {
		rep.failf(OracleMono, "core.Run left an invalid DAG: %v", err)
	}
	prev := -1
	for i, a := range runRep.Applied {
		if a.ExcessAfter > a.ExcessBefore {
			rep.failf(OracleMono, "core.Run step %d (%s %s) raised excess %d -> %d",
				i, a.Resource, a.Kind, a.ExcessBefore, a.ExcessAfter)
		}
		if prev >= 0 && a.ExcessBefore > prev {
			rep.failf(OracleMono, "core.Run step %d starts at excess %d, previous ended at %d",
				i, a.ExcessBefore, prev)
		}
		prev = a.ExcessAfter
	}
}

// checkDiffExec compiles the case with every pipeline, executes the result
// on the VLIW simulator from the canonical initial state, and verifies it
// reproduces the sequential interpreter bit for bit (memory and live-out
// registers) — the end-to-end differential property.
func checkDiffExec(rep *Report, c *Case) {
	m := c.Mach.Config()
	overc := overcommitted(c)
	for _, method := range pipeline.AllMethods {
		st, err := pipeline.Evaluate(c.Block(), m, method, InitState(), pipeline.Options{})
		if err != nil {
			if target.Unsupported(err) {
				continue // declared method/target refusal, not a finding
			}
			if method == pipeline.Exact && exact.Skippable(err) {
				continue // the guarded lane may refuse large or adversarial blocks
			}
			if !overc {
				rep.failf(OracleDiffExec, "%s: %v", method, err)
			}
			continue
		}
		rep.tick(OracleDiffExec)
		if !st.Verified {
			rep.failf(OracleDiffExec, "%s: Evaluate returned unverified stats", method)
		}
	}
}

// checkExact pits every heuristic pipeline against the exact solver's
// proven optima. Soundness rests on two containments: any emitted
// program — spill code included — schedules a superset of the block's
// operations under dependence and unit rules no looser than the
// program model MinWordsProg is computed in, so its word count can
// never undercut that bound; and URSA's measured register width is a
// worst case over schedules while the solver's pressure is the best
// case, so width below minimum pressure means one of the two is wrong.
// A heuristic beating the "optimal" bound is therefore always a finding
// (a solver bug, per the issue's charter), never a pleasant surprise.
// Solver refusals on oversized or adversarial cases (exact.Skippable)
// skip silently — the oracle only counts as exercised when the solver
// actually proved a bound.
func checkExact(rep *Report, c *Case) {
	m := c.Mach.Config()
	if m.Clusters > 1 || m.BufferDepth > 0 {
		// The solver's state encoding covers units, latencies, and the
		// issue width, but not per-cluster register files or output
		// buffers; its bounds are incomparable to what the resource-aware
		// pipelines emit there (target.Supports refuses the exact lane for
		// the same reason).
		return
	}
	g := buildGraph(rep, OracleExact, c)
	if g == nil {
		return
	}
	res, err := exact.Solve(g, m, exact.Options{})
	if err != nil {
		if !exact.Skippable(err) {
			rep.failf(OracleExact, "solve: %v", err)
		}
		return
	}
	rep.tick(OracleExact)

	// Internal consistency: the witness schedule must be legal, realize
	// the bound exactly, and the bound must sit between the
	// latency-weighted critical path and the list schedule.
	if err := res.Schedule.Validate(); err != nil {
		rep.failf(OracleExact, "optimal schedule invalid: %v", err)
	}
	if res.Schedule.Cycles != res.MinWords {
		rep.failf(OracleExact, "witness schedule spans %d cycles, solver claims %d", res.Schedule.Cycles, res.MinWords)
	}
	if res.MinWordsProg > res.MinWords {
		rep.failf(OracleExact, "program-model minimum %d exceeds strict-model minimum %d", res.MinWordsProg, res.MinWords)
	}
	cp, _ := g.CriticalPath(func(n *dag.Node) int { return m.LatencyOf(n.Instr.Op) })
	if res.MinWords < cp {
		rep.failf(OracleExact, "minimum schedule length %d below critical path %d", res.MinWords, cp)
	}
	if ub, err := sched.List(g, m, sched.Options{}); err == nil && res.MinWords > ub.Cycles {
		rep.failf(OracleExact, "minimum schedule length %d exceeds list schedule %d", res.MinWords, ub.Cycles)
	}

	// URSA's measured width claims no schedule needs more registers; the
	// solver proves some schedule needs at least MinPressure.
	for _, r := range core.Resources(g, m) {
		if !r.IsRegister {
			continue
		}
		if w := measure.Measure(r.Build(g)).Width; w < res.MinPressure[r.Class] {
			rep.failf(OracleExact, "%s: measured width %d below proven minimum pressure %d",
				r.Name, w, res.MinPressure[r.Class])
		}
	}

	overc := overcommitted(c)
	for _, method := range pipeline.AllMethods {
		_, st, err := pipeline.Compile(c.Block(), m, method, pipeline.Options{})
		if err != nil {
			if (method == pipeline.Exact && exact.Skippable(err)) || overc {
				continue
			}
			// Compile failures are the legality oracle's finding; the gap
			// properties simply have nothing to say here.
			continue
		}
		if st.Words < res.MinWordsProg {
			rep.failf(OracleExact, "%s emits %d words, below the proven program-model optimum %d", method, st.Words, res.MinWordsProg)
		}
		if method == pipeline.Exact && st.SpillOps == 0 && st.Words != res.MinWords {
			rep.failf(OracleExact, "exact lane emitted %d words, solver proved %d", st.Words, res.MinWords)
		}
		if st.SpillOps == 0 {
			// Spill-free code realizes one schedule of the original DAG,
			// so its register counts bound the minimum from above.
			for cl := ir.Class(0); cl < ir.NumClasses; cl++ {
				if st.RegsUsed[cl] < res.MinPressure[cl] {
					rep.failf(OracleExact, "%s uses %d %s registers, below proven minimum pressure %d",
						method, st.RegsUsed[cl], cl, res.MinPressure[cl])
				}
			}
		}
	}
}

// sortViolations orders violations by oracle then detail, for deterministic
// output.
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Oracle != vs[j].Oracle {
			return vs[i].Oracle < vs[j].Oracle
		}
		return vs[i].Detail < vs[j].Detail
	})
}
