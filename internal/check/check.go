package check

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// RunConfig configures a fuzzing campaign.
type RunConfig struct {
	N       int   // number of cases (default 1000)
	Seed    int64 // base seed; case i uses Seed+i, so campaigns are resumable
	Gen     GenConfig
	Oracles []string // nil means all
	// Shrink minimizes every reported failure before it is returned.
	Shrink bool
	// OutDir, when non-empty, receives one .ursafuzz repro file per
	// reported failure.
	OutDir string
	// MaxRepros bounds the shrunk repros kept per oracle (default 5);
	// further failing cases of the same oracle are only counted.
	MaxRepros int
	// Workers bounds concurrent case checking; 0 means GOMAXPROCS.
	Workers int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Found is one failing case, shrunk and serialized if so configured.
type Found struct {
	Oracle string
	Detail string
	Seed   int64
	Case   *Case
	Path   string // repro file, when OutDir was set
}

// Summary reports a campaign.
type Summary struct {
	Cases     int
	Exercised map[string]int // property checks per oracle, summed
	Found     []Found
	// Suppressed counts failing cases beyond MaxRepros per oracle: evidence
	// the bug is easy to hit, without drowning the report.
	Suppressed int
}

// OK reports whether the campaign found no violations at all.
func (s *Summary) OK() bool { return len(s.Found) == 0 && s.Suppressed == 0 }

// String renders a one-screen campaign summary.
func (s *Summary) String() string {
	names := make([]string, 0, len(s.Exercised))
	for name := range s.Exercised {
		names = append(names, name)
	}
	sort.Strings(names)
	out := fmt.Sprintf("checked %d cases:", s.Cases)
	for _, name := range names {
		out += fmt.Sprintf(" %s=%d", name, s.Exercised[name])
	}
	out += fmt.Sprintf("; violations: %d reported, %d suppressed", len(s.Found), s.Suppressed)
	return out
}

type caseResult struct {
	idx  int
	seed int64
	c    *Case
	rep  *Report
}

// Run executes the campaign: generate N seeded cases, check each against
// the oracles (in parallel), then shrink and serialize the failures in
// deterministic case order.
func Run(cfg RunConfig) (*Summary, error) {
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	if cfg.MaxRepros <= 0 {
		cfg.MaxRepros = 5
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.N {
		workers = cfg.N
	}

	sum := &Summary{Cases: cfg.N, Exercised: map[string]int{}}
	results := make([]caseResult, cfg.N)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				seed := cfg.Seed + int64(i)
				c := Generate(rand.New(rand.NewSource(seed)), cfg.Gen)
				c.Seed = seed
				c.Name = fmt.Sprintf("%s_s%d", c.Name, seed)
				results[i] = caseResult{idx: i, seed: seed, c: c, rep: Check(c, cfg.Oracles)}
			}
		}()
	}
	for i := 0; i < cfg.N; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	perOracle := map[string]int{}
	for _, r := range results {
		for name, n := range r.rep.Exercised {
			sum.Exercised[name] += n
		}
		if !r.rep.Failed() {
			continue
		}
		sortViolations(r.rep.Violations)
		// One report per (case, oracle): a single bad case often trips the
		// same oracle on several resources or pipelines.
		seen := map[string]bool{}
		for _, v := range r.rep.Violations {
			if seen[v.Oracle] {
				continue
			}
			seen[v.Oracle] = true
			if perOracle[v.Oracle] >= cfg.MaxRepros {
				sum.Suppressed++
				continue
			}
			perOracle[v.Oracle]++
			f := Found{Oracle: v.Oracle, Detail: v.Detail, Seed: r.seed, Case: r.c}
			logf(cfg.Log, "case seed=%d: %s", r.seed, Violation{v.Oracle, v.Detail})
			if cfg.Shrink {
				f.Case = shrinkFailure(r.c, v.Oracle)
				f.Detail = firstDetail(f.Case, v.Oracle, f.Detail)
				logf(cfg.Log, "  shrunk to %d instrs on %s", len(f.Case.Block().Instrs), f.Case.Mach)
			}
			if cfg.OutDir != "" {
				name := fmt.Sprintf("shrunk-%s-s%d", v.Oracle, r.seed)
				path, err := WriteCase(cfg.OutDir, name, f.Case)
				if err != nil {
					return nil, err
				}
				f.Path = path
				logf(cfg.Log, "  wrote %s", path)
			}
			sum.Found = append(sum.Found, f)
		}
	}
	logf(cfg.Log, "%s", sum)
	return sum, nil
}

// shrinkFailure minimizes the case while the named oracle still fails, and
// normalizes the result when that preserves the failure.
func shrinkFailure(c *Case, oracle string) *Case {
	fails := func(x *Case) bool { return Check(x, []string{oracle}).FailedOracle(oracle) }
	small := Shrink(c, fails)
	if norm, err := Normalize(small); err == nil {
		norm.Seed = small.Seed
		norm.Name = small.Name
		if fails(norm) {
			return norm
		}
	}
	return small
}

// firstDetail re-runs the oracle on the shrunk case and returns its first
// violation detail (the original detail if the re-run is somehow clean).
func firstDetail(c *Case, oracle, fallback string) string {
	rep := Check(c, []string{oracle})
	sortViolations(rep.Violations)
	for _, v := range rep.Violations {
		if v.Oracle == oracle {
			return v.Detail
		}
	}
	return fallback
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
