package check

import (
	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/order"
	"ursa/internal/sched"
	"ursa/internal/transform"
)

// deltaCandidateLimit bounds how many sequencing candidates the delta
// oracle replays per case (each replay measures every resource twice:
// incrementally and from scratch).
const deltaCandidateLimit = 16

// checkDelta holds the incremental remeasurement engine to account against
// the from-scratch reference it replaces. Three layers are cross-checked on
// every case:
//
//  1. Closure maintenance: after applying a sequencing candidate's edges,
//     the closure maintained in place by order.Relation.AddClosureEdge must
//     equal the closure recomputed from the transformed graph.
//  2. Measurement: for every resource, the warm-started delta measurement
//     (reuse.Reuse.UpdateClosure + measure.ChainsDelta, seeded with the
//     committed matching and the pre-candidate hammock levels, exactly as
//     the engine runs it) must report the same width and chain count as a
//     full from-scratch Measure of the transformed graph, and its
//     decomposition must be a valid chain partition of the updated order.
//     When UpdateClosure declines (register kills shifted), the fallback
//     must be justified: the recomputed kill vector must actually differ.
//  3. Selection: a full core.Run with the engine enabled must emit code
//     byte-identical to a run with Options.DisableIncremental (the
//     pre-engine reference path), at several worker counts.
//
// ApplyUndo's undo is also verified to restore the graph fingerprint, since
// the engine reuses one scratch graph across all of a worker's candidates.
func checkDelta(rep *Report, c *Case) {
	m := c.Mach.Config()
	if m.Clusters > 1 || m.BufferDepth > 0 {
		// core.Run forces DisableIncremental on the extended value-holding
		// targets (copy-spills rewrite opcodes the undo log cannot restore),
		// so there is no incremental engine to hold to account here.
		return
	}
	g := buildGraph(rep, OracleDelta, c)
	if g == nil {
		return
	}
	resources := core.Resources(g, m)
	hammocks := g.Hammocks()
	levels := g.NestLevels(hammocks)
	baseReach := g.Reach()
	base := make(map[string]*measure.Result, len(resources))
	for _, r := range resources {
		base[r.Name] = measure.Measure(r.Build(g))
	}

	applied := 0
	for _, r := range resources {
		res := base[r.Name]
		limits := []int{r.Limit}
		if res.Width-1 >= 1 && res.Width-1 != r.Limit {
			limits = append(limits, res.Width-1)
		}
		for _, limit := range limits {
			for _, set := range measure.FindExcess(res, hammocks, limit) {
				var cands []*transform.Candidate
				if r.IsRegister {
					cands = transform.RegSeqCandidates(g, res, set)
				} else {
					cands = transform.FUCandidates(g, res, set)
				}
				for _, cand := range cands {
					if applied >= deltaCandidateLimit {
						break
					}
					if !cand.SeqOnly() {
						continue
					}
					before := g.Fingerprint()
					added, undo, err := cand.ApplyUndo(g)
					if err != nil {
						continue // inapplicable candidates are allowed to refuse
					}
					applied++
					rep.tick(OracleDelta)
					checkDeltaCandidate(rep, g, resources, base, baseReach, levels, cand, added)
					undo()
					if g.Fingerprint() != before {
						rep.failf(OracleDelta, "%s: undo did not restore the graph", cand)
						return
					}
				}
			}
		}
	}

	checkDeltaSelection(rep, g, m)
}

// checkDeltaCandidate compares, on the already-transformed graph g, the
// incremental closure and per-resource delta measurements against their
// from-scratch references.
func checkDeltaCandidate(rep *Report, g *dag.Graph, resources []core.Resource,
	base map[string]*measure.Result, baseReach *order.Relation, levels []int,
	cand *transform.Candidate, added [][2]int) {

	inc := baseReach.Clone()
	for _, e := range added {
		inc.AddClosureEdge(e[0], e[1])
	}
	full := g.Reach()
	for a := 0; a < full.Size(); a++ {
		for b := 0; b < full.Size(); b++ {
			if inc.Has(a, b) != full.Has(a, b) {
				rep.failf(OracleDelta, "%s: incremental closure disagrees at (%d,%d): inc=%v full=%v",
					cand, a, b, inc.Has(a, b), full.Has(a, b))
				return
			}
		}
	}

	for _, r := range resources {
		prev := base[r.Name]
		want := measure.Measure(r.Build(g))
		ru, ok := prev.R.UpdateClosure(g, inc)
		if !ok {
			// The engine would fall back to a full rebuild here; the refusal
			// must be justified by an actual kill shift.
			fresh := r.Build(g)
			same := len(fresh.Kill) == len(prev.R.Kill)
			for i := 0; same && i < len(fresh.Kill); i++ {
				same = fresh.Kill[i] == prev.R.Kill[i]
			}
			if same {
				rep.failf(OracleDelta, "%s %s: UpdateClosure declined but kills are unchanged", r.Name, cand)
			}
			continue
		}
		got := measure.ChainsDelta(prev, ru, levels)
		if got.Width != want.Width {
			rep.failf(OracleDelta, "%s %s: delta width %d, from-scratch %d",
				r.Name, cand, got.Width, want.Width)
			continue
		}
		if len(got.Chains) != len(want.Chains) {
			rep.failf(OracleDelta, "%s %s: delta has %d chains, from-scratch %d",
				r.Name, cand, len(got.Chains), len(want.Chains))
			continue
		}
		if err := order.ValidateDecomposition(ru.Rel, got.Chains); err != nil {
			rep.failf(OracleDelta, "%s %s: delta decomposition invalid: %v", r.Name, cand, err)
			continue
		}
		// The updated relation itself must match a from-scratch rebuild.
		fresh := r.Build(g)
		if ru.Rel.Pairs() != fresh.Rel.Pairs() {
			rep.failf(OracleDelta, "%s %s: delta relation has %d pairs, rebuild %d",
				r.Name, cand, ru.Rel.Pairs(), fresh.Rel.Pairs())
		}
	}
}

// checkDeltaSelection runs the full reduction loop with and without the
// incremental engine (and across worker counts) and requires byte-identical
// emitted code and identical reports.
func checkDeltaSelection(rep *Report, g *dag.Graph, m *machine.Config) {
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"full", core.Options{Machine: m, DisableIncremental: true, Workers: 1}},
		{"incremental-j1", core.Options{Machine: m, Workers: 1}},
		{"incremental-j4", core.Options{Machine: m, Workers: 4}},
	}
	var refCode string
	var refIters int
	for i, v := range variants {
		cl := g.Clone()
		cl.Func = g.Func.Clone()
		runRep, err := core.Run(cl, v.opts)
		if err != nil {
			rep.failf(OracleDelta, "core.Run (%s): %v", v.name, err)
			return
		}
		code := ""
		if prog, _, err := assign.Emit(cl, m, sched.Options{}); err == nil {
			code = prog.String()
		}
		if i == 0 {
			refCode, refIters = code, runRep.Iterations
			rep.tick(OracleDelta)
			continue
		}
		if code != refCode {
			rep.failf(OracleDelta, "core.Run (%s) emitted different code than (%s)", v.name, variants[0].name)
		}
		if runRep.Iterations != refIters {
			rep.failf(OracleDelta, "core.Run (%s) took %d iterations, (%s) took %d",
				v.name, runRep.Iterations, variants[0].name, refIters)
		}
		rep.tick(OracleDelta)
	}
}
