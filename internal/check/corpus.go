package check

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ursa/internal/ir"
)

// The .ursafuzz corpus format is a small header of directives followed by
// "---" and the program in the textual IR accepted by ir.Parse:
//
//	# any comment
//	machine vliw width=2 intregs=3 fpregs=3 lat=unit pipelined=false
//	---
//	func f {
//	entry:
//		v1 = load A[0]
//		...
//	}
//
// The initial machine state is not recorded: InitState is canonical, so a
// case is reproducible from this file alone.

// FormatCase renders the case in .ursafuzz form.
func FormatCase(c *Case) string {
	var sb strings.Builder
	if c.Name != "" {
		fmt.Fprintf(&sb, "# %s", c.Name)
		if c.Seed != 0 {
			fmt.Fprintf(&sb, " (seed %d)", c.Seed)
		}
		sb.WriteString("\n")
	}
	sb.WriteString(c.Mach.String())
	sb.WriteString("\n---\n")
	sb.WriteString(c.Func.String())
	return sb.String()
}

// ParseCase parses the .ursafuzz form.
func ParseCase(data string) (*Case, error) {
	head, body, found := strings.Cut(data, "\n---\n")
	if !found {
		return nil, fmt.Errorf("check: corpus case missing --- separator")
	}
	c := &Case{}
	for _, line := range strings.Split(head, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "machine "):
			spec, err := parseMachineSpec(line)
			if err != nil {
				return nil, err
			}
			c.Mach = spec
		default:
			return nil, fmt.Errorf("check: unknown corpus directive %q", line)
		}
	}
	if c.Mach == nil {
		return nil, fmt.Errorf("check: corpus case has no machine directive")
	}
	f, err := ir.Parse(body)
	if err != nil {
		return nil, fmt.Errorf("check: corpus program: %w", err)
	}
	if len(f.Blocks) != 1 {
		return nil, fmt.Errorf("check: corpus program must have exactly one block, got %d", len(f.Blocks))
	}
	c.Name = f.Name
	c.Func = f
	return c, nil
}

func parseMachineSpec(line string) (*MachineSpec, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "machine" {
		return nil, fmt.Errorf("check: bad machine directive %q", line)
	}
	s := &MachineSpec{}
	switch fields[1] {
	case "vliw":
	case "het":
		s.Het = true
	default:
		return nil, fmt.Errorf("check: unknown machine family %q", fields[1])
	}
	for _, kv := range fields[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("check: bad machine field %q", kv)
		}
		switch key {
		case "lat":
			switch val {
			case "unit":
			case "realistic":
				s.Realistic = true
			default:
				return nil, fmt.Errorf("check: unknown latency model %q", val)
			}
			continue
		case "pipelined":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return nil, fmt.Errorf("check: bad pipelined value %q", val)
			}
			s.Pipelined = b
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("check: bad machine field %q", kv)
		}
		switch key {
		case "width":
			s.Width = n
		case "ialu":
			s.IALU = n
		case "falu":
			s.FALU = n
		case "mem":
			s.MEM = n
		case "br":
			s.BR = n
		case "intregs":
			s.IntRegs = n
		case "fpregs":
			s.FPRegs = n
		case "clusters":
			s.Clusters = n
		case "buses":
			s.Buses = n
		case "copylat":
			s.CopyLat = n
		case "bufdepth":
			s.BufferDepth = n
		case "iw":
			s.IssueWidth = n
		default:
			return nil, fmt.Errorf("check: unknown machine field %q", key)
		}
	}
	return s, nil
}

// LoadCorpus reads every .ursafuzz file in dir, sorted by name. A missing
// directory is an empty corpus, not an error.
func LoadCorpus(dir string) (map[string]*Case, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]*Case{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ursafuzz") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := ParseCase(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = c
	}
	return out, nil
}

// WriteCase writes the case to dir/name.ursafuzz.
func WriteCase(dir, name string, c *Case) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".ursafuzz")
	return path, os.WriteFile(path, []byte(FormatCase(c)), 0o644)
}
