package check

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/exact"
	"ursa/internal/pipeline"
)

// gapCorpusTarget is how many committed nonzero-gap cases the corpus
// must carry (see TestGapCorpusCommitted).
const gapCorpusTarget = 20

// caseGap returns the largest word gap any heuristic method shows
// against the program-model optimum on the case, or -1 when the solver
// refuses or no method compiles. A positive gap is a case worth
// keeping: it documents the heuristics' real distance from optimal.
func caseGap(c *Case) int {
	g, err := dag.Build(c.Block())
	if err != nil {
		return -1
	}
	res, err := exact.Solve(g, c.Mach.Config(), exact.Options{})
	if err != nil {
		return -1
	}
	gap := -1
	for _, method := range pipeline.Methods {
		_, st, err := pipeline.Compile(c.Block(), c.Mach.Config(), method, pipeline.Options{})
		if err != nil {
			continue
		}
		if d := st.Words - res.MinWordsProg; d > gap {
			gap = d
		}
	}
	return gap
}

// TestSeedGapCorpus regenerates the committed gap corpus: it scans
// generator seeds for cases where some heuristic emits strictly more
// words than the proven optimum, keeps only cases every oracle passes
// (so TestCorpus replays them clean), and writes them to testdata/fuzz
// as gap-<seed>.ursafuzz. Gated behind URSA_SEED_GAP_CORPUS=1 because
// it rewrites the committed corpus; run it when the generator or the
// solver changes enough to invalidate the old files.
func TestSeedGapCorpus(t *testing.T) {
	if os.Getenv("URSA_SEED_GAP_CORPUS") == "" {
		t.Skip("set URSA_SEED_GAP_CORPUS=1 to regenerate the gap corpus")
	}
	found := 0
	for seed := int64(0); seed < 100_000 && found < gapCorpusTarget; seed++ {
		c := Generate(rand.New(rand.NewSource(seed)), GenConfig{})
		if caseGap(c) <= 0 {
			continue
		}
		if rep := Check(c, nil); rep.Failed() {
			continue // a finding, not corpus material; the campaign owns it
		}
		name := "gap-" + strings.ReplaceAll(c.Func.Name, "_", "-") + "-s" + itoa(seed)
		if _, err := WriteCase("testdata/fuzz", name, c); err != nil {
			t.Fatalf("WriteCase: %v", err)
		}
		found++
		t.Logf("seed %d: %s", seed, name)
	}
	if found < gapCorpusTarget {
		t.Fatalf("found only %d nonzero-gap cases", found)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestGapCorpusCommitted pins the gap corpus's reason to exist: at least
// gapCorpusTarget committed gap-*.ursafuzz cases, each still showing a
// strictly positive heuristic-vs-optimal word gap. If a heuristic
// improvement closes a gap, regenerate with TestSeedGapCorpus rather
// than letting the corpus go stale. (TestCorpus separately replays these
// files through every oracle.)
func TestGapCorpusCommitted(t *testing.T) {
	corpus, err := LoadCorpus("testdata/fuzz")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	n := 0
	for name, c := range corpus {
		if !strings.HasPrefix(name, "gap-") {
			continue
		}
		n++
		if g := caseGap(c); g <= 0 {
			t.Errorf("%s: heuristic-optimal gap is %d; the case no longer earns its name", name, g)
		}
	}
	if n < gapCorpusTarget {
		t.Errorf("corpus holds %d gap cases; want at least %d", n, gapCorpusTarget)
	}
}
