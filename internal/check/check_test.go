package check

import (
	"math/rand"
	"testing"

	"ursa/internal/ir"
)

func TestGenerateAlwaysValid(t *testing.T) {
	// Every seed must yield a parseable, SSA, live-in-free program and a
	// valid machine: the whole campaign rests on this.
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := Generate(rng, GenConfig{})
		b := c.Block()
		if err := ir.VerifySSA(b); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, c.Func)
		}
		if ins := ir.LiveIns(b); len(ins) > 0 {
			t.Fatalf("seed %d: generated block has live-ins %v\n%s", seed, ins, c.Func)
		}
		if got := len(b.Instrs); got < 3 {
			t.Fatalf("seed %d: only %d instructions", seed, got)
		}
		if err := c.Mach.Config().Validate(); err != nil {
			t.Fatalf("seed %d: invalid machine %s: %v", seed, c.Mach, err)
		}
		if overcommitted(c) {
			t.Fatalf("seed %d: generated case is overcommitted on %s\n%s", seed, c.Mach, c.Func)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), GenConfig{})
	b := Generate(rand.New(rand.NewSource(42)), GenConfig{})
	if FormatCase(a) != FormatCase(b) {
		t.Fatalf("same seed, different cases:\n%s\nvs\n%s", FormatCase(a), FormatCase(b))
	}
}

func TestGenerateIntOnly(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		c := Generate(rand.New(rand.NewSource(seed)), GenConfig{IntOnly: true})
		for _, in := range c.Block().Instrs {
			if in.Dst != ir.NoReg && c.Func.ClassOf(in.Dst) == ir.ClassFP {
				t.Fatalf("seed %d: int-only case defines fp value\n%s", seed, c.Func)
			}
		}
	}
}

func TestCaseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		c := Generate(rand.New(rand.NewSource(seed)), GenConfig{})
		text := FormatCase(c)
		c2, err := ParseCase(text)
		if err != nil {
			t.Fatalf("seed %d: ParseCase: %v\n%s", seed, err, text)
		}
		if *c2.Mach != *c.Mach {
			t.Fatalf("seed %d: machine spec changed: %s vs %s", seed, c2.Mach, c.Mach)
		}
		if c2.Func.String() != c.Func.String() {
			t.Fatalf("seed %d: program changed:\n%s\nvs\n%s", seed, c2.Func, c.Func)
		}
		if c2.Name != c.Name {
			t.Fatalf("seed %d: name changed: %q vs %q", seed, c2.Name, c.Name)
		}
	}
}

func TestShrinkReducesWhilePreservingFailure(t *testing.T) {
	// Synthetic failure predicate: "the block contains a div". The shrinker
	// must keep at least one div while removing unrelated instructions, and
	// terminate at a small fixed point.
	hasDiv := func(c *Case) bool {
		for _, in := range c.Block().Instrs {
			if in.Op == ir.Div || in.Op == ir.DivI {
				return true
			}
		}
		return false
	}
	found := 0
	for seed := int64(0); seed < 80 && found < 5; seed++ {
		c := Generate(rand.New(rand.NewSource(seed)), GenConfig{MaxInstrs: 20})
		if !hasDiv(c) {
			continue
		}
		found++
		small := Shrink(c, hasDiv)
		if !hasDiv(small) {
			t.Fatalf("seed %d: shrinking lost the failure\n%s", seed, small.Func)
		}
		if len(small.Block().Instrs) > len(c.Block().Instrs) {
			t.Fatalf("seed %d: shrink grew the block", seed)
		}
		if err := ir.VerifySSA(small.Block()); err != nil {
			t.Fatalf("seed %d: shrunk block invalid: %v\n%s", seed, err, small.Func)
		}
		// At the fixed point every surviving instruction must matter: each is
		// a div or an ancestor some div transitively depends on — anything
		// else would have been removable without losing the failure.
		needed := map[ir.VReg]bool{}
		instrs := small.Block().Instrs
		for i := len(instrs) - 1; i >= 0; i-- {
			in := instrs[i]
			if in.Op == ir.Div || in.Op == ir.DivI || (in.Dst != ir.NoReg && needed[in.Dst]) {
				for _, u := range in.Uses() {
					needed[u] = true
				}
				continue
			}
			t.Errorf("seed %d: shrunk case keeps irrelevant instruction %s\n%s", seed, small.Func.InstrString(in), small.Func)
		}
	}
	if found == 0 {
		t.Fatal("no generated case contained a div; generator drifted?")
	}
}

func TestShrinkMachineSimplifies(t *testing.T) {
	// With an always-true predicate the machine must collapse to the
	// simplest config the guards allow.
	c := Generate(rand.New(rand.NewSource(9)), GenConfig{})
	small := Shrink(c, func(*Case) bool { return true })
	m := small.Mach
	if m.Het {
		t.Errorf("machine stayed heterogeneous: %s", m)
	}
	if m.Width != 1 || m.IntRegs != 1 || m.FPRegs != 1 {
		t.Errorf("machine not minimal: %s", m)
	}
	if m.Realistic || m.Pipelined {
		t.Errorf("latency/pipelining not simplified: %s", m)
	}
	if got := len(small.Block().Instrs); got != 1 {
		t.Errorf("block not minimal: %d instructions", got)
	}
}

func TestRunCampaignClean(t *testing.T) {
	// End-to-end harness check on a healthy pipeline: a small campaign runs
	// every oracle and reports nothing.
	sum, err := Run(RunConfig{N: 25, Seed: 1000, Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sum.OK() {
		for _, f := range sum.Found {
			t.Errorf("unexpected violation [%s] seed %d: %s\n%s", f.Oracle, f.Seed, f.Detail, FormatCase(f.Case))
		}
	}
	for _, oracle := range AllOracles {
		if sum.Exercised[oracle] == 0 {
			t.Errorf("oracle %s never exercised", oracle)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(RunConfig{N: 30, Seed: 77, Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(RunConfig{N: 30, Seed: 77, Workers: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("worker count changed the campaign result:\n%s\nvs\n%s", a, b)
	}
}

func TestCheckReportsPanicsAsViolations(t *testing.T) {
	// A case that makes an oracle panic must surface as a violation, not
	// crash the campaign.
	rep := newReport()
	runOracle(rep, "boom", nil) // unknown oracle on nil case: failf path
	if !rep.Failed() {
		t.Fatal("unknown oracle did not report")
	}
	rep2 := newReport()
	runOracle(rep2, OracleWidth, nil) // nil case panics inside; must recover
	if !rep2.FailedOracle(OracleWidth) {
		t.Fatal("panic was not converted into a violation")
	}
}

func TestOvercommittedDetection(t *testing.T) {
	src := `machine vliw width=1 intregs=2 fpregs=2 lat=unit pipelined=false
---
func f {
entry:
	v1 = const 1
	v2 = const 2
	v3 = const 3
}
`
	c, err := ParseCase(src)
	if err != nil {
		t.Fatalf("ParseCase: %v", err)
	}
	if !overcommitted(c) {
		t.Fatal("three dead ints on a two-register machine not flagged")
	}
	// The same case must not report compile refusals as violations.
	rep := Check(c, []string{OracleLegal, OracleDiffExec})
	for _, v := range rep.Violations {
		t.Errorf("overcommitted case reported: %s", v)
	}
}
