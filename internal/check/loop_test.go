package check

import (
	"math/rand"
	"strings"
	"testing"
)

// TestLoopGenerated sweeps seeded random loop cases through the loop
// oracle: random loop-carried dependences, trip counts including 0, 1, and
// counts the blocking factor does not divide, on both machine families.
func TestLoopGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("loop sweep is slow")
	}
	seeds := 30
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := GenerateLoop(rng)
		c.Seed = seed
		rep := CheckLoop(c)
		if rep.Exercised[OracleLoop] == 0 {
			t.Errorf("seed %d exercised nothing\n%s", seed, FormatLoopCase(c))
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s\n%s", seed, v, FormatLoopCase(c))
		}
	}
}

// TestLoopCorpusRoundTrip pins the .ursaloop format: every committed case
// must survive parse -> format -> parse unchanged.
func TestLoopCorpusRoundTrip(t *testing.T) {
	corpus, err := LoadLoopCorpus("testdata/loops")
	if err != nil {
		t.Fatalf("LoadLoopCorpus: %v", err)
	}
	for name, c := range corpus {
		c2, err := ParseLoopCase(FormatLoopCase(c))
		if err != nil {
			t.Errorf("%s: reparse: %v", name, err)
			continue
		}
		if *c2.Mach != *c.Mach || c2.Source != c.Source {
			t.Errorf("%s: case changed across round trip", name)
		}
	}
}

// TestLoopShrink drives the spec shrinker with a synthetic failure
// predicate (the oracle itself is clean): a "failure" tied to one
// statement kind must reduce to a single-statement, minimal-trip case
// that still fails.
func TestLoopShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var spec *loopSpec
	for {
		spec = randomLoopSpec(rng)
		if len(spec.stmts) > 1 && spec.trip > 1 && hasRecurrence(spec) {
			break
		}
	}
	fails := func(c *LoopCase) bool { return strings.Contains(c.Source, "b[i+1]") }
	small := shrinkLoopSpec(spec, 7, fails)
	if !fails(small) {
		t.Fatal("shrinker lost the failure")
	}
	if n := strings.Count(small.Source, ";") - 2; n != 1 { // minus var decl and out store
		t.Errorf("shrunk to %d body statements, want 1\n%s", n, small.Source)
	}
	if !strings.Contains(small.Source, "for i = 0 to 0 {") {
		t.Errorf("shrunk trip not minimal\n%s", small.Source)
	}
}

func hasRecurrence(spec *loopSpec) bool {
	for _, s := range spec.stmts {
		if strings.Contains(s, "b[i+1]") {
			return true
		}
	}
	return false
}

// TestRunLoops smoke-tests the campaign driver on a handful of seeds: no
// violations, and the loop oracle demonstrably fired.
func TestRunLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("loop campaign is slow")
	}
	sum, err := RunLoops(LoopRunConfig{N: 6, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.OK() {
		t.Fatalf("campaign found violations: %+v", sum.Found)
	}
	if sum.Exercised[OracleLoop] == 0 {
		t.Fatal("campaign never exercised the loop oracle")
	}
}
