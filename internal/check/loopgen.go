package check

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// loopSpec is the structured form a generated loop case is rendered from;
// the shrinker edits the spec and re-renders, so reductions stay inside
// the kernel language.
type loopSpec struct {
	trip  int
	stmts []string
	mach  *MachineSpec
}

// loopTrips are the trip counts the generator draws from: the degenerate
// counts (0, 1), primes and other counts no power-of-two blocking factor
// divides, and a few long enough to spend real time in the kernel block.
var loopTrips = []int{0, 1, 2, 3, 4, 5, 6, 7, 9, 11, 13, 17, 21, 24, 31, 33}

// loopStmtPool builds the candidate body statements for one case:
// accumulators (cyclic scalar dependences), distance-1 and distance-2
// array recurrences, and independent parallel streams, with small random
// constants so distinct seeds exercise distinct dependence weights.
func loopStmtPool(rng *rand.Rand) []string {
	return []string{
		fmt.Sprintf("s = s + a[i]*%d;", 1+rng.Intn(7)),
		fmt.Sprintf("s = s + a[i] - %d;", rng.Intn(9)),
		fmt.Sprintf("b[i+1] = b[i] + a[i]*%d;", 1+rng.Intn(5)),
		fmt.Sprintf("b[i+2] = b[i] + %d;", 1+rng.Intn(4)),
		fmt.Sprintf("c[i] = a[i]*a[i] + %d;", rng.Intn(15)),
		"d[i] = a[i+1] - a[i];",
		"c[i] = b[i] + s;",
	}
}

// GenerateLoop produces one random loop case from the rng. Machines are
// kept roomy enough (≥ 8 registers per class in play) that every canonical
// loop admits a spill-free kernel; a Pipeline refusal on a generated case
// is therefore a finding, not noise.
func GenerateLoop(rng *rand.Rand) *LoopCase {
	spec := randomLoopSpec(rng)
	return &LoopCase{Name: "loop", Source: renderLoopSpec(spec), Mach: spec.mach}
}

func randomLoopSpec(rng *rand.Rand) *loopSpec {
	pool := loopStmtPool(rng)
	n := 1 + rng.Intn(4)
	var stmts []string
	seen := map[int]bool{}
	for len(stmts) < n {
		k := rng.Intn(len(pool))
		if seen[k] {
			continue
		}
		seen[k] = true
		stmts = append(stmts, pool[k])
	}
	mach := &MachineSpec{
		Width:     2 + rng.Intn(3),
		IntRegs:   8 + rng.Intn(8),
		FPRegs:    8,
		Realistic: rng.Intn(3) == 0,
	}
	if rng.Intn(2) == 0 {
		mach = &MachineSpec{
			Het:       true,
			IALU:      1 + rng.Intn(2),
			FALU:      1,
			MEM:       1 + rng.Intn(2),
			BR:        1,
			IntRegs:   10 + rng.Intn(6),
			FPRegs:    10,
			Realistic: rng.Intn(3) == 0,
		}
	}
	return &loopSpec{
		trip:  loopTrips[rng.Intn(len(loopTrips))],
		stmts: stmts,
		mach:  mach,
	}
}

func renderLoopSpec(spec *loopSpec) string {
	var sb strings.Builder
	sb.WriteString("func genloop {\n\tvar s = 1;\n")
	fmt.Fprintf(&sb, "\tfor i = 0 to %d {\n", spec.trip)
	for _, s := range spec.stmts {
		fmt.Fprintf(&sb, "\t\t%s\n", s)
	}
	sb.WriteString("\t}\n\tout[0] = s;\n}\n")
	return sb.String()
}

// shrinkLoopSpec greedily reduces a failing spec — drop body statements,
// then lower the trip count — while fails still holds, and returns the
// smallest failing case found.
func shrinkLoopSpec(spec *loopSpec, seed int64, fails func(*LoopCase) bool) *LoopCase {
	render := func(s *loopSpec) *LoopCase {
		return &LoopCase{Name: "loop", Seed: seed, Source: renderLoopSpec(s), Mach: s.mach}
	}
	cur := spec
	for changed := true; changed; {
		changed = false
		for k := 0; k < len(cur.stmts) && len(cur.stmts) > 1; k++ {
			next := &loopSpec{trip: cur.trip, mach: cur.mach}
			next.stmts = append(append([]string{}, cur.stmts[:k]...), cur.stmts[k+1:]...)
			if fails(render(next)) {
				cur = next
				changed = true
				k--
			}
		}
		for _, t := range loopTrips {
			if t >= cur.trip {
				break
			}
			next := &loopSpec{trip: t, stmts: cur.stmts, mach: cur.mach}
			if fails(render(next)) {
				cur = next
				changed = true
				break
			}
		}
	}
	return render(cur)
}

// LoopRunConfig configures a loop-oracle fuzzing campaign.
type LoopRunConfig struct {
	N    int   // number of cases (default 200)
	Seed int64 // base seed; case i uses Seed+i
	// Shrink minimizes every reported failure before it is returned.
	Shrink bool
	// OutDir, when non-empty, receives one .ursaloop repro per failure.
	OutDir string
	// MaxRepros bounds the kept repros (default 5).
	MaxRepros int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// RunLoops executes a loop campaign: generate N seeded loop cases, run the
// loop oracle on each, shrink and serialize the failures. Cases run
// sequentially — each one already fans out across the II × unroll search.
func RunLoops(cfg LoopRunConfig) (*Summary, error) {
	if cfg.N <= 0 {
		cfg.N = 200
	}
	if cfg.MaxRepros <= 0 {
		cfg.MaxRepros = 5
	}
	sum := &Summary{Cases: cfg.N, Exercised: map[string]int{}}
	fails := func(c *LoopCase) bool { return CheckLoop(c).FailedOracle(OracleLoop) }
	for i := 0; i < cfg.N; i++ {
		seed := cfg.Seed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		spec := randomLoopSpec(rng)
		c := &LoopCase{
			Name:   fmt.Sprintf("loop_s%d", seed),
			Seed:   seed,
			Source: renderLoopSpec(spec),
			Mach:   spec.mach,
		}
		rep := CheckLoop(c)
		for name, n := range rep.Exercised {
			sum.Exercised[name] += n
		}
		if !rep.Failed() {
			continue
		}
		if len(sum.Found) >= cfg.MaxRepros {
			sum.Suppressed++
			continue
		}
		logf(cfg.Log, "loop case seed=%d: %s", seed, rep.Violations[0])
		f := Found{Oracle: OracleLoop, Detail: rep.Violations[0].Detail, Seed: seed, Case: nil}
		small := c
		if cfg.Shrink {
			small = shrinkLoopSpec(spec, seed, fails)
			small.Name = c.Name
			if r := CheckLoop(small); r.Failed() {
				f.Detail = r.Violations[0].Detail
			}
			logf(cfg.Log, "  shrunk to %d source bytes on %s", len(small.Source), small.Mach)
		}
		if cfg.OutDir != "" {
			path, err := WriteLoopCase(cfg.OutDir, fmt.Sprintf("shrunk-loop-s%d", seed), small)
			if err != nil {
				return nil, err
			}
			f.Path = path
			logf(cfg.Log, "  wrote %s", path)
		}
		sum.Found = append(sum.Found, f)
	}
	logf(cfg.Log, "%s", sum)
	return sum, nil
}
