package check

import (
	"math/rand"
	"testing"
)

// FuzzWidth drives the width oracle through the native fuzzing engine: the
// fuzzed seed parameterizes the deterministic case generator, and every
// generated case's measured widths must agree with Hopcroft–Karp and (on
// small instances) exhaustive antichain enumeration.
func FuzzWidth(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(rand.New(rand.NewSource(seed)), GenConfig{MaxInstrs: 14})
		rep := Check(c, []string{OracleWidth})
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s\n%s", seed, v, FormatCase(c))
		}
	})
}

// FuzzCompileRun drives the whole-pipeline oracles: every method must emit
// machine-legal code that reproduces the sequential interpreter bit for bit.
func FuzzCompileRun(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(rand.New(rand.NewSource(seed)), GenConfig{MaxInstrs: 14})
		rep := Check(c, []string{OracleLegal, OracleDiffExec})
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s\n%s", seed, v, FormatCase(c))
		}
	})
}
