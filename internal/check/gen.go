// Package check is URSA's differential-verification subsystem: a seeded
// generator of random straight-line programs and machine configurations, a
// catalog of property oracles that cross-check every pipeline stage against
// an independent (usually brute-force) implementation, and a shrinking
// harness that reduces any failure to a minimal reproducing case.
//
// The oracles mirror the paper's correctness claims. The measured maximum
// requirement must equal the true width of the reuse partial order
// (Dilworth / Theorem 1), checked against exhaustive antichain enumeration
// and an independent Hopcroft–Karp matching. Reduction transformations must
// never raise the requirement they claim to lower (§4). Emitted VLIW code
// must respect the machine's functional-unit and register-file limits, and
// must compute exactly what the sequential interpreter computes — for every
// pipeline, not just URSA's.
package check

import (
	"fmt"
	"math/rand"

	"ursa/internal/ir"
	"ursa/internal/machine"
)

// Case is one self-contained verification input: a straight-line program
// (single block, no register live-ins) plus the machine it targets. Cases
// round-trip through the textual .ursafuzz format (see corpus.go).
type Case struct {
	Name string
	Seed int64 // generator seed, 0 for hand-written or corpus cases
	Func *ir.Func
	Mach *MachineSpec
}

// Block returns the case's single block.
func (c *Case) Block() *ir.Block { return c.Func.Blocks[0] }

// Clone deep-copies the case (the machine spec is immutable by convention
// and shared).
func (c *Case) Clone() *Case {
	return &Case{Name: c.Name, Seed: c.Seed, Func: c.Func.Clone(), Mach: c.Mach}
}

// MachineSpec is a serializable machine description. machine.Config itself
// holds a latency func, so corpus files record this spec instead and
// rebuild the config on load. The extended-target fields compose onto the
// two base families: Clusters/Buses/CopyLat and BufferDepth apply to
// homogeneous machines, IssueWidth to either (machine.Config.Validate
// rejects the combinations the models forbid).
type MachineSpec struct {
	Het                  bool // heterogeneous units
	Width                int  // homogeneous issue width (Het == false)
	IALU, FALU, MEM, BR  int  // per-class units (Het == true)
	IntRegs, FPRegs      int
	Realistic, Pipelined bool

	Clusters    int // > 1 selects the clustered model (per-cluster Width and register files)
	Buses       int // inter-cluster transfer buses (Clusters > 1)
	CopyLat     int // inter-cluster copy latency, 0 means 1
	BufferDepth int // > 0 selects the buffered exposed-datapath model
	IssueWidth  int // > 0 caps total instructions issued per cycle
}

// Config materializes the machine description.
func (s *MachineSpec) Config() *machine.Config {
	var m *machine.Config
	switch {
	case s.Het:
		m = machine.Heterogeneous(s.IALU, s.FALU, s.MEM, s.BR, s.IntRegs, s.FPRegs)
	case s.Clusters > 1:
		m = machine.Clustered(s.Clusters, s.Width, s.IntRegs, s.Buses)
		m.Regs[ir.ClassFP] = s.FPRegs
		if s.CopyLat > 0 {
			m.CopyLatency = s.CopyLat
		}
	default:
		m = machine.VLIW(s.Width, s.IntRegs)
		m.Regs[ir.ClassFP] = s.FPRegs
	}
	if s.BufferDepth > 0 {
		m.BufferDepth = s.BufferDepth
		m.Name = fmt.Sprintf("edp%dx%dr.b%d", s.Width, s.IntRegs, s.BufferDepth)
	}
	if s.IssueWidth > 0 {
		m.IssueWidth = s.IssueWidth
	}
	if s.Realistic {
		m.Latency = machine.RealisticLatency
	}
	m.Pipelined = s.Pipelined
	return m
}

// String renders the spec in the corpus directive form parsed by
// parseMachineSpec. The extended-target fields append only when set, so
// pre-extension corpus files render byte-identically.
func (s *MachineSpec) String() string {
	lat := "unit"
	if s.Realistic {
		lat = "realistic"
	}
	var d string
	if s.Het {
		d = fmt.Sprintf("machine het ialu=%d falu=%d mem=%d br=%d intregs=%d fpregs=%d lat=%s pipelined=%v",
			s.IALU, s.FALU, s.MEM, s.BR, s.IntRegs, s.FPRegs, lat, s.Pipelined)
	} else {
		d = fmt.Sprintf("machine vliw width=%d intregs=%d fpregs=%d lat=%s pipelined=%v",
			s.Width, s.IntRegs, s.FPRegs, lat, s.Pipelined)
	}
	if s.Clusters > 1 {
		d += fmt.Sprintf(" clusters=%d buses=%d", s.Clusters, s.Buses)
		if s.CopyLat > 0 {
			d += fmt.Sprintf(" copylat=%d", s.CopyLat)
		}
	}
	if s.BufferDepth > 0 {
		d += fmt.Sprintf(" bufdepth=%d", s.BufferDepth)
	}
	if s.IssueWidth > 0 {
		d += fmt.Sprintf(" iw=%d", s.IssueWidth)
	}
	return d
}

// GenConfig tunes random case generation. The zero value selects the
// defaults noted on each field.
type GenConfig struct {
	MinInstrs int // minimum instructions per program (default 3)
	MaxInstrs int // maximum instructions per program (default 20)
	// IntOnly suppresses floating-point operations, concentrating the
	// search on one register class.
	IntOnly bool
	// NoBranch suppresses the occasional terminating ret/branch.
	NoBranch bool
}

func (cfg GenConfig) withDefaults() GenConfig {
	if cfg.MinInstrs <= 0 {
		cfg.MinInstrs = 3
	}
	if cfg.MaxInstrs < cfg.MinInstrs {
		cfg.MaxInstrs = cfg.MinInstrs + 17
	}
	return cfg
}

// Input-array conventions: loads read A (int) and F (fp); stores write O
// and P. InitState fills the input arrays deterministically, so a case is
// fully reproducible from its program text alone.
const (
	intArray = "A"
	fpArray  = "F"
	intOut   = "O"
	fpOut    = "P"

	// initArrLen is how many cells of each input array InitState fills.
	initArrLen = 16
)

// InitState returns the canonical initial machine state for a case: input
// arrays hold small deterministic values, everything else is zero.
func InitState() *ir.State {
	st := ir.NewState()
	for i := int64(0); i < initArrLen; i++ {
		st.StoreInt(intArray, i, 3*i+1)
		st.StoreFloat(fpArray, i, float64(i)+0.5)
	}
	return st
}

var (
	intBinOps = []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or,
		ir.Xor, ir.Shl, ir.Shr, ir.CmpEQ, ir.CmpLT, ir.CmpLE}
	intImmOps = []ir.Op{ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI, ir.AndI,
		ir.OrI, ir.XorI, ir.ShlI, ir.ShrI, ir.CmpEQI, ir.CmpLTI, ir.CmpLEI}
	fpBinOps = []ir.Op{ir.FAdd, ir.FSub, ir.FMul, ir.FDiv}
	fpImmOps = []ir.Op{ir.FAddI, ir.FSubI, ir.FMulI, ir.FDivI}
)

// shape biases the generated DAG's form: how often an operand is a recent
// value (deep chains) versus any prior value (wide, independent chains).
type shape struct {
	name       string
	recentBias float64 // probability an operand is one of the 3 newest values
	memRatio   float64 // probability an instruction is a load
	storeRatio float64 // probability an instruction is a store
	fanout     float64 // probability of reusing an already multiply-used value
}

var shapes = []shape{
	{name: "deep", recentBias: 0.85, memRatio: 0.15, storeRatio: 0.05, fanout: 0.1},
	{name: "wide", recentBias: 0.10, memRatio: 0.35, storeRatio: 0.10, fanout: 0.2},
	{name: "diamond", recentBias: 0.45, memRatio: 0.20, storeRatio: 0.10, fanout: 0.6},
	{name: "mixed", recentBias: 0.50, memRatio: 0.25, storeRatio: 0.15, fanout: 0.3},
}

// Generate produces one random case from the rng. Every value the rng can
// take yields a structurally valid case: single block, SSA, no register
// live-ins, total (trap-free) operations only.
func Generate(rng *rand.Rand, cfg GenConfig) *Case {
	cfg = cfg.withDefaults()
	sh := shapes[rng.Intn(len(shapes))]
	n := cfg.MinInstrs + rng.Intn(cfg.MaxInstrs-cfg.MinInstrs+1)

	f := ir.NewFunc(fmt.Sprintf("fz_%s", sh.name))
	b := f.NewBlock("entry")

	var ints, fps []ir.VReg
	pick := func(pool []ir.VReg) ir.VReg {
		if len(pool) == 0 {
			panic("check: pick from empty pool")
		}
		if rng.Float64() < sh.recentBias {
			k := len(pool) - 1 - rng.Intn(min(3, len(pool)))
			return pool[k]
		}
		return pool[rng.Intn(len(pool))]
	}
	newInt := func() ir.VReg { v := f.NewReg("", ir.ClassInt); ints = append(ints, v); return v }
	newFP := func() ir.VReg { v := f.NewReg("", ir.ClassFP); fps = append(fps, v); return v }

	emitLoad := func() {
		// Operands are picked before the destination is created, so an
		// instruction can never reference its own result.
		off := int64(rng.Intn(initArrLen))
		idx := ir.NoReg
		if len(ints) > 0 && rng.Intn(6) == 0 {
			idx = pick(ints)
		}
		if !cfg.IntOnly && rng.Intn(3) == 0 {
			b.Append(&ir.Instr{Op: ir.LoadF, Dst: newFP(), Sym: fpArray, Off: off, Index: idx})
			return
		}
		b.Append(&ir.Instr{Op: ir.Load, Dst: newInt(), Sym: intArray, Off: off, Index: idx})
	}
	emitConst := func() {
		if !cfg.IntOnly && rng.Intn(3) == 0 {
			b.Append(&ir.Instr{Op: ir.ConstF, Dst: newFP(), FImm: float64(rng.Intn(9)) - 2.5})
			return
		}
		b.Append(&ir.Instr{Op: ir.ConstI, Dst: newInt(), Imm: int64(rng.Intn(12) - 4)})
	}
	emitStore := func() {
		if !cfg.IntOnly && len(fps) > 0 && rng.Intn(3) == 0 {
			b.Append(&ir.Instr{Op: ir.StoreF, Args: []ir.VReg{pick(fps)}, Sym: fpOut, Off: int64(rng.Intn(8))})
			return
		}
		if len(ints) == 0 {
			return
		}
		b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{pick(ints)}, Sym: intOut, Off: int64(rng.Intn(8))})
	}
	emitArith := func() {
		// Favor integer ops; fp and conversions appear when available. As in
		// emitLoad, operands are picked before the destination exists.
		if !cfg.IntOnly && len(fps) > 0 && rng.Intn(3) == 0 {
			switch rng.Intn(5) {
			case 0:
				a := pick(fps)
				b.Append(&ir.Instr{Op: ir.FNeg, Dst: newFP(), Args: []ir.VReg{a}})
			case 1:
				a := pick(fps)
				b.Append(&ir.Instr{Op: fpImmOps[rng.Intn(len(fpImmOps))], Dst: newFP(),
					Args: []ir.VReg{a}, FImm: float64(rng.Intn(7)) - 1.5})
			case 2:
				a := pick(fps)
				b.Append(&ir.Instr{Op: ir.FtoI, Dst: newInt(), Args: []ir.VReg{a}})
			case 3:
				ops := []ir.Op{ir.FCmpEQ, ir.FCmpLT, ir.FCmpLE}
				a, c := pick(fps), pick(fps)
				b.Append(&ir.Instr{Op: ops[rng.Intn(len(ops))], Dst: newInt(),
					Args: []ir.VReg{a, c}})
			default:
				a, c := pick(fps), pick(fps)
				b.Append(&ir.Instr{Op: fpBinOps[rng.Intn(len(fpBinOps))], Dst: newFP(),
					Args: []ir.VReg{a, c}})
			}
			return
		}
		if len(ints) == 0 {
			emitLoad()
			return
		}
		switch rng.Intn(6) {
		case 0:
			a := pick(ints)
			b.Append(&ir.Instr{Op: ir.Neg, Dst: newInt(), Args: []ir.VReg{a}})
		case 1:
			a := pick(ints)
			b.Append(&ir.Instr{Op: intImmOps[rng.Intn(len(intImmOps))], Dst: newInt(),
				Args: []ir.VReg{a}, Imm: int64(rng.Intn(10) - 3)})
		case 2:
			a := pick(ints)
			if cfg.IntOnly {
				b.Append(&ir.Instr{Op: ir.Mov, Dst: newInt(), Args: []ir.VReg{a}})
			} else {
				b.Append(&ir.Instr{Op: ir.ItoF, Dst: newFP(), Args: []ir.VReg{a}})
			}
		default:
			a, c := pick(ints), pick(ints)
			b.Append(&ir.Instr{Op: intBinOps[rng.Intn(len(intBinOps))], Dst: newInt(),
				Args: []ir.VReg{a, c}})
		}
	}

	// Programs open with a value-producing instruction so pools are never
	// empty when arithmetic wants operands.
	emitLoad()
	for len(b.Instrs) < n {
		r := rng.Float64()
		switch {
		case r < sh.memRatio:
			emitLoad()
		case r < sh.memRatio+0.12:
			emitConst()
		case r < sh.memRatio+0.12+sh.storeRatio:
			emitStore()
		default:
			emitArith()
		}
	}
	// Make some results observable through memory; the rest stay as
	// live-out registers, which the verifier checks through OutMap.
	emitStore()
	if !cfg.NoBranch && rng.Intn(8) == 0 {
		in := &ir.Instr{Op: ir.Ret}
		if rng.Intn(2) == 0 && len(ints) > 0 {
			in.Args = []ir.VReg{pick(ints)}
		}
		b.Append(in)
	}
	mach := genMachine(rng)
	trimLiveOuts(b, mach)
	b.Renumber()

	return &Case{
		Name: f.Name,
		Func: f,
		Mach: mach,
	}
}

// trimLiveOuts keeps the case compilable: every pipeline must hold all
// live-out values of a class (plus a trailing ret's operand) in registers
// simultaneously at the block end, so more dead definitions than registers
// would force every method to refuse. Excess dead values are stored to the
// output arrays instead, which also makes them observable to diffexec.
func trimLiveOuts(b *ir.Block, m *MachineSpec) {
	var limit [ir.NumClasses]int
	limit[ir.ClassInt] = m.IntRegs
	limit[ir.ClassFP] = m.FPRegs
	var trailing *ir.Instr
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsBranch() {
		trailing = b.Instrs[n-1]
		b.Instrs = b.Instrs[:n-1]
		for _, u := range trailing.Uses() {
			limit[b.Func.ClassOf(u)]--
		}
	}
	used := map[ir.VReg]bool{}
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	if trailing != nil {
		for _, u := range trailing.Uses() {
			used[u] = true
		}
	}
	var dead [ir.NumClasses][]ir.VReg
	for _, in := range b.Instrs {
		if in.Dst != ir.NoReg && !used[in.Dst] {
			cl := b.Func.ClassOf(in.Dst)
			dead[cl] = append(dead[cl], in.Dst)
		}
	}
	for cl := range dead {
		for i := 0; len(dead[cl])-i > limit[cl]; i++ {
			v := dead[cl][i]
			if ir.Class(cl) == ir.ClassFP {
				b.Append(&ir.Instr{Op: ir.StoreF, Args: []ir.VReg{v}, Sym: fpOut, Off: int64(8 + i%8)})
			} else {
				b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{v}, Sym: intOut, Off: int64(8 + i%8)})
			}
		}
	}
	if trailing != nil {
		b.Append(trailing)
	}
}

// genMachine draws a machine description across every target family:
// homogeneous VLIWs of width 1–4, heterogeneous mixes (sometimes behind a
// superscalar fetch bound), clustered machines with tight transfer buses,
// and buffered exposed datapaths, over tight to roomy register files, unit
// or realistic latencies, occasionally pipelined units.
func genMachine(rng *rand.Rand) *MachineSpec {
	s := &MachineSpec{
		IntRegs:   2 + rng.Intn(7),
		FPRegs:    2 + rng.Intn(7),
		Realistic: rng.Intn(2) == 0,
		Pipelined: rng.Intn(4) == 0,
	}
	switch rng.Intn(9) {
	case 0, 1, 2:
		s.Het = true
		s.IALU = 1 + rng.Intn(2)
		s.FALU = 1 + rng.Intn(2)
		s.MEM = 1 + rng.Intn(2)
		s.BR = 1
		if rng.Intn(3) == 0 {
			// Fetch bound narrower than the unit sum, so it can bind.
			s.IssueWidth = 2 + rng.Intn(2)
		}
	case 3:
		// Clustered: a scarce bus keeps the copy-vs-spill tradeoff live.
		s.Clusters = 2 + rng.Intn(2)
		s.Width = 1 + rng.Intn(2)
		s.Buses = 1 + rng.Intn(2)
		s.CopyLat = 1 + rng.Intn(2)
	case 4:
		// Exposed datapath: total capacity width×depth must hold a binary
		// operation's two operands (machine.Config.Validate).
		s.Width = 2 + rng.Intn(2)
		s.BufferDepth = 1 + rng.Intn(2)
	default:
		s.Width = 1 + rng.Intn(4)
	}
	return s
}
