package check

import (
	"testing"
)

// TestCorpus deterministically replays every committed .ursafuzz case — the
// shrunk repros of bugs the fuzzer has found, plus curated material for each
// oracle — through the full oracle catalog. Any violation is a regression.
func TestCorpus(t *testing.T) {
	corpus, err := LoadCorpus("testdata/fuzz")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(corpus) == 0 {
		t.Fatal("testdata/fuzz is empty; the corpus must ship with the repo")
	}
	exercised := map[string]int{}
	for name, c := range corpus {
		t.Run(name, func(t *testing.T) {
			rep := Check(c, nil)
			for _, v := range rep.Violations {
				t.Errorf("%s\n%s", v, FormatCase(c))
			}
			for oracle, n := range rep.Exercised {
				exercised[oracle] += n
			}
		})
	}
	// The corpus as a whole must put every oracle to work: a case that
	// compiles nowhere exercises legality on zero pipelines, so coverage is
	// asserted across the set, not per file.
	for _, oracle := range AllOracles {
		if exercised[oracle] == 0 {
			t.Errorf("corpus never exercises the %s oracle", oracle)
		}
	}

	// The loop corpus replays through the loop oracle the same way.
	loops, err := LoadLoopCorpus("testdata/loops")
	if err != nil {
		t.Fatalf("LoadLoopCorpus: %v", err)
	}
	if len(loops) == 0 {
		t.Fatal("testdata/loops is empty; the loop corpus must ship with the repo")
	}
	loopChecks := 0
	for name, c := range loops {
		t.Run("loops/"+name, func(t *testing.T) {
			rep := CheckLoop(c)
			for _, v := range rep.Violations {
				t.Errorf("%s\n%s", v, FormatLoopCase(c))
			}
			loopChecks += rep.Exercised[OracleLoop]
		})
	}
	if loopChecks == 0 {
		t.Error("loop corpus never exercises the loop oracle")
	}
}

// TestCorpusRoundTrip pins the corpus format: every committed case must
// survive parse -> format -> parse unchanged, so shrunk repro files written
// by the campaign stay loadable.
func TestCorpusRoundTrip(t *testing.T) {
	corpus, err := LoadCorpus("testdata/fuzz")
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	for name, c := range corpus {
		c2, err := ParseCase(FormatCase(c))
		if err != nil {
			t.Errorf("%s: reparse: %v", name, err)
			continue
		}
		if *c2.Mach != *c.Mach || c2.Func.String() != c.Func.String() {
			t.Errorf("%s: case changed across round trip", name)
		}
	}
}
