package check

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/modsched"
	"ursa/internal/pipeline"
)

// OracleLoop is the loop-pipelining oracle: modulo-scheduled loops must
// respect the MII lower bound and the transformed function must compute
// exactly what the original does — under the interpreter and compiled on
// the simulator — at the case's trip count (including 0, 1, and counts the
// blocking factor does not divide).
const OracleLoop = "loop"

// LoopCase is one loop-pipelining verification input: a kernel-language
// program whose loops modsched should pipeline, plus the machine it
// targets. The initial state is canonical (LoopInitState), so a case is
// reproducible from its .ursaloop file alone.
type LoopCase struct {
	Name   string
	Seed   int64 // generator seed, 0 for hand-written cases
	Source string
	Mach   *MachineSpec
}

// loopInterpBudget bounds each interpreter or simulator run of a case.
const loopInterpBudget = 4_000_000

// loopArrLen is how many cells of each input array LoopInitState fills;
// generated trip counts stay comfortably below it.
const loopArrLen = 40

// LoopInitState returns the canonical initial state for loop cases: input
// arrays a and b hold small deterministic values on [-2, loopArrLen], so
// recurrences reading b[i-1] or a[i+1] at the trip boundaries see defined
// cells; everything else is zero.
func LoopInitState() *ir.State {
	st := ir.NewState()
	for k := int64(-2); k <= loopArrLen; k++ {
		st.StoreInt("a", k, 3*k-7)
		st.StoreInt("b", k, 2*k+1)
	}
	return st
}

// CheckLoop runs the loop oracle on the case. Panics inside the pipeline
// under test are reported as violations, mirroring Check.
func CheckLoop(c *LoopCase) *Report {
	rep := newReport()
	func() {
		defer func() {
			if r := recover(); r != nil {
				rep.failf(OracleLoop, "panic: %v", r)
			}
		}()
		checkLoopCase(rep, c)
	}()
	return rep
}

func checkLoopCase(rep *Report, c *LoopCase) {
	u, err := frontend.Compile(c.Source, frontend.Options{})
	if err != nil {
		rep.failf(OracleLoop, "frontend: %v", err)
		return
	}
	m := c.Mach.Config()
	res, err := modsched.Pipeline(u.Func, m, modsched.Options{})
	if err != nil {
		// The generator only emits canonical loops on machines roomy
		// enough to pipeline, so any refusal is a finding.
		rep.failf(OracleLoop, "modsched.Pipeline: %v", err)
		return
	}

	// Property 1: every accepted loop respects the lower bound.
	for _, l := range res.Loops {
		rep.tick(OracleLoop)
		if l.MII < 1 || l.II < l.MII || l.AchievedII < l.MII {
			rep.failf(OracleLoop, "loop %s: II=%d achieved=%d below MII=%d (res=%d rec=%d)",
				l.HeadLabel, l.II, l.AchievedII, l.MII, l.ResMII, l.RecMII)
		}
	}

	// Property 2 (diff-exec): the pipelined function, interpreted, leaves
	// the exact memory state of the original.
	ref, got := LoopInitState(), LoopInitState()
	if _, err := ref.Run(u.Func, loopInterpBudget); err != nil {
		rep.failf(OracleLoop, "interp original: %v", err)
		return
	}
	if _, err := got.Run(res.Func, loopInterpBudget); err != nil {
		rep.failf(OracleLoop, "interp pipelined: %v", err)
		return
	}
	rep.tick(OracleLoop)
	if diff := loopMemDiff(ref, got); diff != "" {
		rep.failf(OracleLoop, "pipelined interp diverges: %s", diff)
		return
	}

	// Property 3: the pipelined function also compiles and verifies on the
	// VLIW simulator, closing the loop transform → allocator → emitted
	// code chain.
	rep.tick(OracleLoop)
	st, err := pipeline.EvaluateFunc(res.Func, m, pipeline.URSA, LoopInitState(), loopInterpBudget, pipeline.Options{})
	if err != nil {
		rep.failf(OracleLoop, "compiled pipelined function: %v", err)
		return
	}
	if !st.Verified {
		rep.failf(OracleLoop, "compiled pipelined function failed simulator verification")
	}
}

// loopMemDiff returns a description of the first non-spill memory cell the
// two states disagree on, or "".
func loopMemDiff(ref, got *ir.State) string {
	type cell struct {
		addr ir.Addr
		a, b int64
		in   [2]bool
	}
	cells := map[ir.Addr]*cell{}
	visit := func(st *ir.State, side int) {
		for addr, w := range st.Mem {
			if strings.HasPrefix(addr.Sym, "spill") {
				continue
			}
			c := cells[addr]
			if c == nil {
				c = &cell{addr: addr}
				cells[addr] = c
			}
			c.in[side] = true
			if side == 0 {
				c.a = w.Int()
			} else {
				c.b = w.Int()
			}
		}
	}
	visit(ref, 0)
	visit(got, 1)
	var keys []ir.Addr
	for addr := range cells {
		keys = append(keys, addr)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Sym != keys[j].Sym {
			return keys[i].Sym < keys[j].Sym
		}
		return keys[i].Off < keys[j].Off
	})
	for _, addr := range keys {
		c := cells[addr]
		if c.a != c.b {
			return fmt.Sprintf("%s[%d] = %d, want %d", addr.Sym, addr.Off, c.b, c.a)
		}
	}
	return ""
}

// The .ursaloop corpus format mirrors .ursafuzz: a comment naming the
// case, the machine directive, then "---" and the kernel-language source.

// FormatLoopCase renders the case in .ursaloop form.
func FormatLoopCase(c *LoopCase) string {
	var sb strings.Builder
	if c.Name != "" {
		fmt.Fprintf(&sb, "# %s", c.Name)
		if c.Seed != 0 {
			fmt.Fprintf(&sb, " (seed %d)", c.Seed)
		}
		sb.WriteString("\n")
	}
	sb.WriteString(c.Mach.String())
	sb.WriteString("\n---\n")
	sb.WriteString(strings.TrimLeft(c.Source, "\n"))
	if !strings.HasSuffix(c.Source, "\n") {
		sb.WriteString("\n")
	}
	return sb.String()
}

// ParseLoopCase parses the .ursaloop form.
func ParseLoopCase(data string) (*LoopCase, error) {
	head, body, found := strings.Cut(data, "\n---\n")
	if !found {
		return nil, fmt.Errorf("check: loop case missing --- separator")
	}
	c := &LoopCase{}
	for _, line := range strings.Split(head, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "#"):
			if c.Name == "" {
				c.Name = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
		case strings.HasPrefix(line, "machine "):
			spec, err := parseMachineSpec(line)
			if err != nil {
				return nil, err
			}
			c.Mach = spec
		default:
			return nil, fmt.Errorf("check: unknown loop corpus directive %q", line)
		}
	}
	if c.Mach == nil {
		return nil, fmt.Errorf("check: loop case has no machine directive")
	}
	c.Source = body
	if _, err := frontend.Compile(c.Source, frontend.Options{}); err != nil {
		return nil, fmt.Errorf("check: loop case source: %w", err)
	}
	return c, nil
}

// LoadLoopCorpus reads every .ursaloop file in dir, sorted by name. A
// missing directory is an empty corpus.
func LoadLoopCorpus(dir string) (map[string]*LoopCase, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]*LoopCase{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ursaloop") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := ParseLoopCase(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = c
	}
	return out, nil
}

// WriteLoopCase writes the case to dir/name.ursaloop.
func WriteLoopCase(dir, name string, c *LoopCase) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".ursaloop")
	return path, os.WriteFile(path, []byte(FormatLoopCase(c)), 0o644)
}
