package order

import (
	"fmt"
	"math/bits"
)

// Relation is a binary relation over {0..n-1}, stored as one bitset of
// successors per element. For URSA it represents the strict partial orders
// CanReuse_R and DAG reachability.
//
// All rows share one flat []uint64 slab, so constructing a relation costs
// three allocations regardless of n, resetting it is one memclr, and
// copying one relation into another of equal size is a single word copy —
// the operations the candidate evaluator performs per tentative
// transformation.
type Relation struct {
	rows []BitSet
	slab []uint64
	n    int
}

// NewRelation returns an empty relation over n elements.
func NewRelation(n int) *Relation {
	w := bitWords(n)
	r := &Relation{
		rows: make([]BitSet, n),
		slab: make([]uint64, n*w),
		n:    n,
	}
	for i := range r.rows {
		r.rows[i] = BitSet{words: r.slab[i*w : (i+1)*w : (i+1)*w], n: n}
	}
	return r
}

// Reset removes every pair, keeping the storage.
func (r *Relation) Reset() {
	clear(r.slab)
}

// Size returns the number of elements of the ground set.
func (r *Relation) Size() int { return r.n }

// Add inserts the pair (a, b).
func (r *Relation) Add(a, b int) { r.rows[a].Set(b) }

// Remove deletes the pair (a, b).
func (r *Relation) Remove(a, b int) { r.rows[a].Clear(b) }

// Has reports whether (a, b) is in the relation.
func (r *Relation) Has(a, b int) bool { return r.rows[a].Has(b) }

// Row returns the successor set of a. The result aliases internal storage
// and must not be mutated by callers.
func (r *Relation) Row(a int) *BitSet { return &r.rows[a] }

// Pairs returns the number of pairs in the relation.
func (r *Relation) Pairs() int {
	c := 0
	for _, w := range r.slab {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.n)
	copy(c.slab, r.slab)
	return c
}

// CopyFrom overwrites r with the contents of o. Both relations must be over
// ground sets of the same size. Reusing one preallocated relation as a
// copy target is how the candidate evaluator resets its scratch closure
// between tentative applications without reallocating; with both sides
// slab-backed the copy is a single memmove.
func (r *Relation) CopyFrom(o *Relation) {
	if r.n != o.n {
		panic(fmt.Sprintf("order: CopyFrom size mismatch: %d vs %d", r.n, o.n))
	}
	copy(r.slab, o.slab)
}

// TransitiveClosure returns the transitive closure of r, computed row-wise
// in reverse topological order when r is acyclic, falling back to iteration
// to a fixed point otherwise. O(n²·n/64) for the acyclic case.
func (r *Relation) TransitiveClosure() *Relation {
	c := r.Clone()
	if topo, ok := c.TopoOrder(); ok {
		// Process in reverse topological order so each successor row is
		// already complete when it is folded in. Iterating r's row (never
		// mutated here) lets ForEach replace the allocating Members call.
		for i := len(topo) - 1; i >= 0; i-- {
			a := topo[i]
			row := &c.rows[a]
			r.rows[a].ForEach(func(b int) {
				row.Or(&c.rows[b])
			})
		}
		return c
	}
	for changed := true; changed; {
		changed = false
		for a := 0; a < c.n; a++ {
			row := &c.rows[a]
			for _, b := range row.Members() {
				if row.Or(&c.rows[b]) {
					changed = true
				}
			}
		}
	}
	return c
}

// AddClosureEdge updates r — which must already be transitively closed — in
// place to the closure of the underlying relation plus the edge (u, v),
// assuming the addition keeps the relation acyclic (v must not reach u).
// Everything that reaches u, and u itself, now also reaches v and everything
// v reaches: for every such row, OR in v's row and set v. O(n·n/64), versus
// O(n²·n/64) for recomputing the closure — this is what makes tentative
// sequencing candidates (which only add edges) cheap to remeasure.
func (r *Relation) AddClosureEdge(u, v int) {
	if u == v || r.Has(u, v) {
		return
	}
	rv := &r.rows[v]
	r.rows[u].Or(rv)
	r.rows[u].Set(v)
	for a := 0; a < r.n; a++ {
		if a != u && r.rows[a].Has(u) {
			r.rows[a].Or(rv)
			r.rows[a].Set(v)
		}
	}
}

// TransitiveReduction returns the minimal relation with the same transitive
// closure, assuming r is acyclic (a DAG). Edge (a,b) is redundant iff some
// other successor c of a reaches b.
func (r *Relation) TransitiveReduction() *Relation {
	closure := r.TransitiveClosure()
	red := r.Clone()
	sp := getInts(r.n)
	defer putInts(sp)
	for a := 0; a < r.n; a++ {
		succs := (*sp)[:0]
		r.rows[a].ForEach(func(b int) { succs = append(succs, b) })
		for _, b := range succs {
			for _, c := range succs {
				if c != b && closure.Has(c, b) {
					red.Remove(a, b)
					break
				}
			}
		}
	}
	return red
}

// TopoOrder returns a topological order of the relation viewed as a digraph,
// and whether one exists (false means the relation has a cycle).
func (r *Relation) TopoOrder() ([]int, bool) {
	bp := getInts(2 * r.n)
	defer putInts(bp)
	buf := (*bp)[:2*r.n]
	indeg := buf[:r.n]
	clear(indeg)
	for a := 0; a < r.n; a++ {
		r.rows[a].ForEach(func(b int) { indeg[b]++ })
	}
	queue := buf[r.n:][:0]
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, r.n)
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		order = append(order, a)
		r.rows[a].ForEach(func(b int) {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		})
	}
	return order, len(order) == r.n
}

// IsAcyclic reports whether the relation, viewed as a digraph, has no cycle.
func (r *Relation) IsAcyclic() bool {
	_, ok := r.TopoOrder()
	return ok
}

// IsStrictPartialOrder reports whether the relation is irreflexive and
// transitive (and hence antisymmetric).
func (r *Relation) IsStrictPartialOrder() error {
	for a := 0; a < r.n; a++ {
		if r.Has(a, a) {
			return fmt.Errorf("order: relation is reflexive at %d", a)
		}
	}
	for a := 0; a < r.n; a++ {
		for _, b := range r.rows[a].Members() {
			for _, c := range r.rows[b].Members() {
				if !r.Has(a, c) {
					return fmt.Errorf("order: relation not transitive: (%d,%d),(%d,%d) but not (%d,%d)", a, b, b, c, a, c)
				}
			}
		}
	}
	return nil
}

// Comparable reports whether a and b are related in either direction.
func (r *Relation) Comparable(a, b int) bool {
	return r.Has(a, b) || r.Has(b, a)
}
