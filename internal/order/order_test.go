package order

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Set(i)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
	if !s.Has(64) || s.Has(65) {
		t.Error("Has gave wrong membership")
	}
	s.Clear(64)
	if s.Has(64) {
		t.Error("Clear failed")
	}
	got := s.Members()
	want := []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	if s.String() != "{0, 63, 127, 129}" {
		t.Errorf("String = %s", s.String())
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	c := a.Clone()
	if changed := c.Or(b); !changed {
		t.Error("Or reported no change")
	}
	if c.Count() != 3 {
		t.Errorf("union Count = %d, want 3", c.Count())
	}
	if changed := c.Or(b); changed {
		t.Error("idempotent Or reported change")
	}
	c.AndNot(b)
	if c.Count() != 1 || !c.Has(1) {
		t.Errorf("AndNot left %v", c.Members())
	}
	a.And(b)
	if a.Count() != 1 || !a.Has(70) {
		t.Errorf("And left %v", a.Members())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Error("Reset failed")
	}
}

// diamond: 0 -> {1,2} -> 3
func diamond() *Relation {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(0, 2)
	r.Add(1, 3)
	r.Add(2, 3)
	return r
}

func TestTransitiveClosure(t *testing.T) {
	c := diamond().TransitiveClosure()
	if !c.Has(0, 3) {
		t.Error("closure missing (0,3)")
	}
	if c.Has(1, 2) || c.Has(2, 1) {
		t.Error("closure invented relation between 1 and 2")
	}
	if err := c.IsStrictPartialOrder(); err != nil {
		t.Errorf("closure not a strict partial order: %v", err)
	}
}

func TestTransitiveReduction(t *testing.T) {
	r := diamond()
	r.Add(0, 3) // redundant
	red := r.TransitiveReduction()
	if red.Has(0, 3) {
		t.Error("reduction kept redundant edge (0,3)")
	}
	if red.Pairs() != 4 {
		t.Errorf("reduction has %d pairs, want 4", red.Pairs())
	}
	// Same closure.
	c1 := r.TransitiveClosure()
	c2 := red.TransitiveClosure()
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if c1.Has(a, b) != c2.Has(a, b) {
				t.Fatalf("closures differ at (%d,%d)", a, b)
			}
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 0)
	if r.IsAcyclic() {
		t.Error("cycle not detected")
	}
	if _, ok := r.TopoOrder(); ok {
		t.Error("TopoOrder succeeded on a cycle")
	}
	// Closure must still terminate on cyclic input.
	c := r.TransitiveClosure()
	if !c.Has(0, 0) {
		t.Error("cyclic closure should relate 0 to itself")
	}
}

func TestValidateDecomposition(t *testing.T) {
	c := diamond().TransitiveClosure()
	good := Decomposition{{0, 1, 3}, {2}}
	if err := ValidateDecomposition(c, good); err != nil {
		t.Errorf("good decomposition rejected: %v", err)
	}
	bad := Decomposition{{0, 1}, {2, 1, 3}} // 1 twice, 3 missing from first
	if err := ValidateDecomposition(c, bad); err == nil {
		t.Error("overlapping decomposition accepted")
	}
	notChain := Decomposition{{1, 2}, {0}, {3}}
	if err := ValidateDecomposition(c, notChain); err == nil {
		t.Error("non-chain accepted")
	}
	short := Decomposition{{0, 1, 3}}
	if err := ValidateDecomposition(c, short); err == nil {
		t.Error("incomplete decomposition accepted")
	}
}

func TestMaxAntichainBruteDiamond(t *testing.T) {
	c := diamond().TransitiveClosure()
	a := MaxAntichainBrute(c, nil)
	if len(a) != 2 {
		t.Errorf("width = %d, want 2 (antichain %v)", len(a), a)
	}
	if !IsAntichain(c, a) {
		t.Errorf("%v is not an antichain", a)
	}
}

func TestMaxAntichainBruteSubset(t *testing.T) {
	c := diamond().TransitiveClosure()
	a := MaxAntichainBrute(c, []int{0, 1, 3})
	if len(a) != 1 {
		t.Errorf("width of chain subset = %d, want 1", len(a))
	}
}

func TestLongestChain(t *testing.T) {
	r := diamond()
	lc := LongestChain(r)
	if len(lc) != 3 {
		t.Errorf("LongestChain = %v, want length 3", lc)
	}
	if err := ValidateChain(r.TransitiveClosure(), lc); err != nil {
		t.Errorf("LongestChain not a chain: %v", err)
	}
}

// randomDAG builds a random DAG relation where i -> j only if i < j.
func randomDAG(rng *rand.Rand, n int, p float64) *Relation {
	r := NewRelation(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				r.Add(i, j)
			}
		}
	}
	return r
}

func TestClosureIsPartialOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r := randomDAG(rng, 12, 0.3)
		c := r.TransitiveClosure()
		if err := c.IsStrictPartialOrder(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		red := r.TransitiveReduction()
		if red.Pairs() > r.Pairs() {
			t.Fatalf("trial %d: reduction grew", trial)
		}
		c2 := red.TransitiveClosure()
		for a := 0; a < 12; a++ {
			for b := 0; b < 12; b++ {
				if c.Has(a, b) != c2.Has(a, b) {
					t.Fatalf("trial %d: reduction changed closure", trial)
				}
			}
		}
	}
}

func TestDilworthDualityProperty(t *testing.T) {
	// width(P) * height-cover duality sanity: the longest chain length and
	// the maximum antichain size both bound n: width*height >= n.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		r := randomDAG(rng, 10, 0.25)
		c := r.TransitiveClosure()
		width := len(MaxAntichainBrute(c, nil))
		height := len(LongestChain(r))
		if width*height < 10 {
			t.Fatalf("trial %d: width %d * height %d < n", trial, width, height)
		}
	}
}

func TestBitSetQuickOrIdempotent(t *testing.T) {
	f := func(xs []uint8) bool {
		s := NewBitSet(256)
		for _, x := range xs {
			s.Set(int(x))
		}
		c := s.Clone()
		c.Or(s)
		return c.Count() == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
