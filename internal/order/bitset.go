// Package order provides the partial-order machinery underlying URSA's
// resource-requirement measurements: dense bitsets, binary relations over
// node sets, transitive closure/reduction, and chain/antichain utilities
// realizing Dilworth's theorem (Theorem 1 of the paper).
package order

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitSet is a fixed-capacity dense bitset over {0..n-1}.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty bitset with capacity n.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// bitWords returns the number of 64-bit words backing a set of capacity n.
func bitWords(n int) int { return (n + 63) / 64 }

// Len returns the capacity of the set.
func (s *BitSet) Len() int { return s.n }

// Set adds i to the set.
func (s *BitSet) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (s *BitSet) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (s *BitSet) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the cardinality of the set.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets s = s ∪ t and reports whether s changed.
func (s *BitSet) Or(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// And sets s = s ∩ t.
func (s *BitSet) And(t *BitSet) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// AndNot sets s = s \ t.
func (s *BitSet) AndNot(t *BitSet) {
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersects reports whether s ∩ t is nonempty.
func (s *BitSet) Intersects(t *BitSet) bool {
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s is also in t, without
// allocating. This is the containment test the hammock nesting-level
// assignment runs O(H²) times per Hammocks call; the previous
// clone-and-subtract formulation allocated a bitset per pair.
func (s *BitSet) SubsetOf(t *BitSet) bool {
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s *BitSet) Clone() *BitSet {
	c := NewBitSet(s.n)
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with t (same capacity required).
func (s *BitSet) CopyFrom(t *BitSet) {
	copy(s.words, t.words)
}

// Reset empties the set.
func (s *BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every member in increasing order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Members returns the elements in increasing order.
func (s *BitSet) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as {a, b, ...}.
func (s *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	})
	sb.WriteByte('}')
	return sb.String()
}
