package order

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// relGen adapts random edge masks into DAG relations over n=10 elements:
// bit (i*10+j) of the mask adds edge i->j for i<j, which is acyclic by
// construction.
type relGen struct {
	rel *Relation
}

// Generate implements quick.Generator.
func (relGen) Generate(rand *rand.Rand, size int) reflect.Value {
	const n = 10
	r := NewRelation(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rand.Intn(3) == 0 {
				r.Add(i, j)
			}
		}
	}
	return reflect.ValueOf(relGen{r})
}

func TestQuickClosureIdempotent(t *testing.T) {
	f := func(g relGen) bool {
		c1 := g.rel.TransitiveClosure()
		c2 := c1.TransitiveClosure()
		for a := 0; a < c1.Size(); a++ {
			for b := 0; b < c1.Size(); b++ {
				if c1.Has(a, b) != c2.Has(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReductionMinimal(t *testing.T) {
	// Removing any edge from the transitive reduction changes the closure.
	f := func(g relGen) bool {
		red := g.rel.TransitiveReduction()
		want := g.rel.TransitiveClosure()
		for a := 0; a < red.Size(); a++ {
			for _, b := range red.Row(a).Members() {
				probe := red.Clone()
				probe.Remove(a, b)
				c := probe.TransitiveClosure()
				same := true
				for x := 0; x < c.Size() && same; x++ {
					for y := 0; y < c.Size(); y++ {
						if c.Has(x, y) != want.Has(x, y) {
							same = false
							break
						}
					}
				}
				if same {
					return false // edge was removable: not a reduction
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickAddClosureEdge(t *testing.T) {
	// Maintaining the closure one edge at a time with AddClosureEdge matches
	// recomputing it from scratch after every addition. Edges i->j with i<j
	// keep the relation acyclic by construction; repeats and self-loops are
	// no-ops.
	f := func(g relGen, edges []uint8) bool {
		base := g.rel.Clone()
		inc := base.TransitiveClosure()
		n := base.Size()
		for _, e := range edges {
			u, v := int(e)/n%n, int(e)%n
			if u == v {
				inc.AddClosureEdge(u, v) // self-loop: must be a no-op
			}
			if u >= v {
				continue // skip potential cycles; only acyclic additions apply
			}
			base.Add(u, v)
			inc.AddClosureEdge(u, v)
			want := base.TransitiveClosure()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if inc.Has(a, b) != want.Has(a, b) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickDilworthDuality(t *testing.T) {
	// Width (max antichain) times height (longest chain) bounds n, and the
	// width never exceeds n nor drops below 1 on a nonempty set.
	f := func(g relGen) bool {
		c := g.rel.TransitiveClosure()
		w := len(MaxAntichainBrute(c, nil))
		h := len(LongestChain(g.rel))
		n := g.rel.Size()
		return w >= 1 && w <= n && w*h >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickBitSetLaws(t *testing.T) {
	type sets struct {
		A, B []uint8
	}
	build := func(xs []uint8) *BitSet {
		s := NewBitSet(256)
		for _, x := range xs {
			s.Set(int(x))
		}
		return s
	}
	// |A ∪ B| + |A ∩ B| == |A| + |B| (inclusion-exclusion), and
	// (A \ B) ∩ B == ∅.
	f := func(in sets) bool {
		a, b := build(in.A), build(in.B)
		union := a.Clone()
		union.Or(b)
		inter := a.Clone()
		inter.And(b)
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			return false
		}
		diff := a.Clone()
		diff.AndNot(b)
		return !diff.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
