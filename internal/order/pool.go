package order

import "sync"

// RelationPool is a size-keyed free list of relations. The candidate
// evaluator holds one pool per worker: scratch closures and scratch reuse
// orders are taken from the pool, reset in place, and returned, so the
// steady-state reduction loop builds no new relation storage however many
// candidates it scores. The zero value is ready to use.
//
// A RelationPool is not safe for concurrent use; each worker owns its own.
type RelationPool struct {
	free map[int][]*Relation
}

// Get returns an empty relation over n elements, reusing pooled storage of
// the right size when available.
func (p *RelationPool) Get(n int) *Relation {
	if rs := p.free[n]; len(rs) > 0 {
		r := rs[len(rs)-1]
		p.free[n] = rs[:len(rs)-1]
		r.Reset()
		return r
	}
	return NewRelation(n)
}

// Put returns a relation to the pool for later reuse. The caller must not
// use r afterwards.
func (p *RelationPool) Put(r *Relation) {
	if r == nil {
		return
	}
	if p.free == nil {
		p.free = make(map[int][]*Relation)
	}
	p.free[r.n] = append(p.free[r.n], r)
}

// intPool recycles []int scratch buffers for the order package's internal
// temporaries (topological sorts, member lists), so the measurement paths
// that run per tentative candidate do not allocate them fresh each time.
var intPool = sync.Pool{New: func() any { return new([]int) }}

// getInts returns a zero-length scratch slice with capacity at least n.
func getInts(n int) *[]int {
	p := intPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, 0, n)
	}
	*p = (*p)[:0]
	return p
}

// putInts returns a scratch slice obtained from getInts.
func putInts(p *[]int) { intPool.Put(p) }
