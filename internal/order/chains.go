package order

import "fmt"

// A Chain is a sequence of elements that are pairwise comparable under a
// partial order (Definition 1 of the paper). Chains need not be contiguous
// paths in the underlying DAG.
type Chain []int

// A Decomposition is a partition of the ground set into chains
// (Definition 2). A decomposition is minimal when no decomposition with
// fewer chains exists; by Dilworth's theorem (Theorem 1) the minimal size
// equals the width — the maximum number of pairwise-independent elements.
type Decomposition []Chain

// ValidateChain checks that c is a chain of the strict partial order rel
// (rel must be transitively closed): consecutive elements must be related in
// order. For a transitive relation this implies all pairs are comparable.
func ValidateChain(rel *Relation, c Chain) error {
	for i := 0; i+1 < len(c); i++ {
		if !rel.Has(c[i], c[i+1]) {
			return fmt.Errorf("order: chain elements %d,%d not related", c[i], c[i+1])
		}
	}
	return nil
}

// ValidateDecomposition checks that d is a partition of {0..n-1} into valid
// chains of rel (rel transitively closed).
func ValidateDecomposition(rel *Relation, d Decomposition) error {
	seen := NewBitSet(rel.Size())
	for _, c := range d {
		if len(c) == 0 {
			return fmt.Errorf("order: empty chain in decomposition")
		}
		if err := ValidateChain(rel, c); err != nil {
			return err
		}
		for _, x := range c {
			if seen.Has(x) {
				return fmt.Errorf("order: element %d in two chains", x)
			}
			seen.Set(x)
		}
	}
	if got := seen.Count(); got != rel.Size() {
		return fmt.Errorf("order: decomposition covers %d of %d elements", got, rel.Size())
	}
	return nil
}

// IsAntichain reports whether all elements of set are pairwise incomparable
// under rel (rel transitively closed).
func IsAntichain(rel *Relation, set []int) bool {
	for i, a := range set {
		for _, b := range set[i+1:] {
			if rel.Comparable(a, b) {
				return false
			}
		}
	}
	return true
}

// MaxAntichainBrute computes the width of the partial order rel by
// exhaustive branch-and-bound search. Exponential: intended for
// cross-checking the matching-based width on small instances in tests.
// rel must be transitively closed. The subset parameter restricts the
// search to the given elements (nil means all).
func MaxAntichainBrute(rel *Relation, subset []int) []int {
	var elems []int
	if subset == nil {
		elems = make([]int, rel.Size())
		for i := range elems {
			elems[i] = i
		}
	} else {
		elems = subset
	}
	var best []int
	var cur []int
	var rec func(i int)
	rec = func(i int) {
		if len(cur)+(len(elems)-i) <= len(best) {
			return // cannot beat best
		}
		if i == len(elems) {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		x := elems[i]
		ok := true
		for _, y := range cur {
			if rel.Comparable(x, y) {
				ok = false
				break
			}
		}
		if ok {
			cur = append(cur, x)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
		rec(i + 1)
	}
	rec(0)
	return best
}

// LongestChain returns a maximum-length chain of the acyclic relation rel
// (not necessarily transitively closed), computed by DP over a topological
// order. Its length bounds the number of antichains needed to cover the
// order (Mirsky's theorem) — useful as a sanity bound in tests.
func LongestChain(rel *Relation) Chain {
	topo, ok := rel.TopoOrder()
	if !ok {
		return nil
	}
	bp := getInts(2 * rel.Size())
	defer putInts(bp)
	buf := (*bp)[:2*rel.Size()]
	longest := buf[:rel.Size()] // longest chain ending at i
	prev := buf[rel.Size():]
	for i := range prev {
		prev[i] = -1
		longest[i] = 1
	}
	bestEnd := -1
	for _, a := range topo {
		if bestEnd == -1 || longest[a] > longest[bestEnd] {
			bestEnd = a
		}
		rel.Row(a).ForEach(func(b int) {
			if longest[a]+1 > longest[b] {
				longest[b] = longest[a] + 1
				prev[b] = a
			}
		})
	}
	if bestEnd == -1 {
		return nil
	}
	// Recheck the end after relaxations.
	for i := range longest {
		if longest[i] > longest[bestEnd] {
			bestEnd = i
		}
	}
	var c Chain
	for x := bestEnd; x != -1; x = prev[x] {
		c = append(Chain{x}, c...)
	}
	return c
}
