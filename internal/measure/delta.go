package measure

import (
	"ursa/internal/matching"
	"ursa/internal/reuse"
)

// ChainsDelta computes the minimum chain decomposition of an updated reuse
// order by warm-starting the matcher from a previous measurement instead of
// matching from scratch. prev must be the measurement of the same item set
// under a subset of r's pairs — the situation after sequencing edges are
// added to the graph (reuse orders only gain pairs; see
// reuse.Reuse.UpdateClosure). The previous maximum matching remains a valid
// matching over the enlarged edge set, so it is reseeded verbatim and
// augmentation runs only for the added edges, which are fed in the same
// prioritized hammock-level batches as a full Chains run. The resulting
// width is exactly the from-scratch width (augmenting-path maximality does
// not depend on the starting matching); the chains themselves may be a
// different — equally minimal — decomposition, which is fine because delta
// measurements feed only candidate scoring, never candidate generation.
//
// When prev does not describe the same item set (or is nil), ChainsDelta
// falls back to the full computation.
func ChainsDelta(prev *Result, r *reuse.Reuse, levels []int) *Result {
	n := r.NumItems()
	if prev == nil || prev.R == nil || prev.R.NumItems() != n {
		return Chains(r, levels)
	}
	edges := sortedEdges(r, levels)

	m := matching.NewIncremental(n, n)
	// Install the surviving (old) edges first without augmenting: the seeded
	// matching already covers them maximally.
	old := prev.R.Rel
	fresh := edges[:0:0]
	for _, e := range edges {
		if old.Has(e.a, e.b) {
			m.AddEdge(e.a, e.b)
		} else {
			fresh = append(fresh, e)
		}
	}
	m.Seed(pairsOf(prev))

	// Re-augment over the added edges only, preserving the prioritized
	// batching (fresh is still sorted by priority).
	for i := 0; i < len(fresh); {
		j := i
		for j < len(fresh) && fresh[j].prio == fresh[i].prio {
			m.AddEdge(fresh[j].a, fresh[j].b)
			j++
		}
		m.Augment()
		i = j
	}
	return buildResult(r, m)
}

// pairsOf reconstructs the left-to-right matching pairs underlying a
// measured decomposition: consecutive chain elements x, y mean x's resource
// instance is reused by y, i.e. left vertex x is matched to right vertex y.
func pairsOf(prev *Result) []int {
	pairs := make([]int, len(prev.ChainOf))
	for i := range pairs {
		pairs[i] = -1
	}
	for _, c := range prev.Chains {
		for k := 0; k+1 < len(c); k++ {
			pairs[c[k]] = c[k+1]
		}
	}
	return pairs
}
