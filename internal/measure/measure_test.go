package measure

import (
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/order"
	"ursa/internal/reuse"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]       ; A
	w = muli v, 2       ; B
	x = muli v, 3       ; C
	y = addi v, 5       ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = muli y, 2      ; G
	t4 = divi y, 3      ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
}
`

func paperGraph(t testing.TB) *dag.Graph {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestPaperFURequirement(t *testing.T) {
	g := paperGraph(t)
	res := Measure(reuse.FU(g, reuse.AllFUs))
	if res.Width != 4 {
		t.Errorf("FU width = %d, want 4 (paper Fig 2)", res.Width)
	}
	if err := order.ValidateDecomposition(res.R.Rel, res.Chains); err != nil {
		t.Errorf("decomposition invalid: %v", err)
	}
}

func TestPaperRegRequirement(t *testing.T) {
	g := paperGraph(t)
	res := Measure(reuse.Reg(g, ir.ClassInt))
	if res.Width != 5 {
		t.Errorf("register width = %d, want 5 (paper Fig 2)", res.Width)
	}
	if err := order.ValidateDecomposition(res.R.Rel, res.Chains); err != nil {
		t.Errorf("decomposition invalid: %v", err)
	}
}

func TestChainOfConsistency(t *testing.T) {
	g := paperGraph(t)
	res := Measure(reuse.FU(g, reuse.AllFUs))
	for ci, c := range res.Chains {
		for _, it := range c {
			if res.ChainOf[it] != ci {
				t.Errorf("ChainOf[%d] = %d, want %d", it, res.ChainOf[it], ci)
			}
		}
	}
}

func TestFindExcessFU(t *testing.T) {
	g := paperGraph(t)
	res := Measure(reuse.FU(g, reuse.AllFUs))
	hs := g.Hammocks()
	sets := FindExcess(res, hs, 3)
	if len(sets) == 0 {
		t.Fatal("no excessive set found for limit 3 on width-4 DAG")
	}
	reach := g.Reach()
	for _, set := range sets {
		if set.Excess() < 1 {
			t.Errorf("set %v has no excess", set)
		}
		// Heads pairwise independent; tails pairwise independent (Def 6).
		heads := make([]int, len(set.Chains))
		tails := make([]int, len(set.Chains))
		for i, c := range set.Chains {
			heads[i] = res.R.Items[c[0]].Node
			tails[i] = res.R.Items[c[len(c)-1]].Node
		}
		for i := range heads {
			for j := i + 1; j < len(heads); j++ {
				if reach.Has(heads[i], heads[j]) || reach.Has(heads[j], heads[i]) {
					t.Errorf("heads %d,%d dependent", heads[i], heads[j])
				}
				if reach.Has(tails[i], tails[j]) || reach.Has(tails[j], tails[i]) {
					t.Errorf("tails %d,%d dependent", tails[i], tails[j])
				}
			}
		}
		// All chain members lie in the hammock.
		for _, c := range set.Chains {
			for _, it := range c {
				if !set.Hammock.Contains(res.R.Items[it].Node) {
					t.Errorf("item %d outside hammock", it)
				}
			}
		}
	}
}

func TestNoExcessWhenEnoughResources(t *testing.T) {
	g := paperGraph(t)
	res := Measure(reuse.FU(g, reuse.AllFUs))
	hs := g.Hammocks()
	if sets := FindExcess(res, hs, 4); len(sets) != 0 {
		t.Errorf("limit 4 on width-4 DAG produced %d excessive sets", len(sets))
	}
	if sets := FindExcess(res, hs, 11); len(sets) != 0 {
		t.Errorf("limit 11 produced %d excessive sets", len(sets))
	}
}

func TestExcessRegLimits(t *testing.T) {
	g := paperGraph(t)
	res := Measure(reuse.Reg(g, ir.ClassInt))
	hs := g.Hammocks()
	for limit := 1; limit < 5; limit++ {
		sets := FindExcess(res, hs, limit)
		if len(sets) == 0 {
			t.Errorf("limit %d on width-5 register order: no excessive set", limit)
		}
	}
	if sets := FindExcess(res, hs, 5); len(sets) != 0 {
		t.Errorf("limit 5: unexpected excess")
	}
}

func randomBlock(rng *rand.Rand, n int) *ir.Func {
	f := ir.NewFunc("rand")
	b := f.NewBlock("entry")
	var vals []ir.VReg
	for i := 0; i < n; i++ {
		dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
		switch {
		case len(vals) == 0 || rng.Intn(4) == 0:
			b.Append(&ir.Instr{Op: ir.ConstI, Dst: dst, Imm: int64(rng.Intn(100))})
		case rng.Intn(3) == 0:
			a := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.MulI, Dst: dst, Args: []ir.VReg{a}, Imm: 2})
		default:
			a := vals[rng.Intn(len(vals))]
			c := vals[rng.Intn(len(vals))]
			b.Append(&ir.Instr{Op: ir.Add, Dst: dst, Args: []ir.VReg{a, c}})
		}
		vals = append(vals, dst)
	}
	return f
}

// TestWidthMatchesBruteForce is the key correctness property: the matching-
// based width must equal the brute-force maximum antichain for both
// resources on random small DAGs (Dilworth's theorem realized correctly).
func TestWidthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		f := randomBlock(rng, 3+rng.Intn(10))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, r := range []*reuse.Reuse{reuse.FU(g, reuse.AllFUs), reuse.Reg(g, ir.ClassInt)} {
			res := Measure(r)
			want := len(order.MaxAntichainBrute(r.Rel, nil))
			if res.Width != want {
				t.Fatalf("trial %d: width %d != brute force %d", trial, res.Width, want)
			}
			if err := order.ValidateDecomposition(r.Rel, res.Chains); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// TestPrioritizedMatchingMinimalInNestedHammocks checks the §3.1 property
// motivating the prioritized matching: the decomposition's projection onto a
// nested hammock is also minimal for that hammock.
func TestPrioritizedMatchingMinimalInNestedHammocks(t *testing.T) {
	g := paperGraph(t)
	r := reuse.FU(g, reuse.AllFUs)
	res := Measure(r)
	hs := g.Hammocks()
	reach := g.Reach()
	for _, h := range hs {
		// Project: count chains intersecting the hammock's instruction set.
		var items []int
		for i, it := range r.Items {
			if h.Contains(it.Node) {
				items = append(items, i)
			}
		}
		if len(items) == 0 {
			continue
		}
		projChains := make(map[int]bool)
		for _, i := range items {
			projChains[res.ChainOf[i]] = true
		}
		// Minimal chain count for the hammock = width of its sub-order.
		sub := order.NewRelation(r.NumItems())
		for _, a := range items {
			for _, b := range items {
				if a != b && (reach.Has(r.Items[a].Node, r.Items[b].Node) ||
					r.Items[a].Node == r.Items[b].Node) {
					sub.Add(a, b)
				}
			}
		}
		want := len(order.MaxAntichainBrute(sub, items))
		if len(projChains) != want {
			t.Errorf("hammock %d..%d: projection uses %d chains, width is %d",
				h.Entry, h.Exit, len(projChains), want)
		}
	}
}

func BenchmarkMeasurePaper(b *testing.B) {
	g := paperGraph(b)
	for i := 0; i < b.N; i++ {
		Measure(reuse.Reg(g, ir.ClassInt))
	}
}
