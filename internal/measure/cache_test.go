package measure

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/reuse"
	"ursa/internal/workload"
)

func buildFU(g *dag.Graph) *reuse.Reuse  { return reuse.FU(g, reuse.AllFUs) }
func buildReg(g *dag.Graph) *reuse.Reuse { return reuse.Reg(g, ir.ClassInt) }

// TestCacheHitsAndEquality: cached measurements equal uncached ones, a
// re-measurement of an unchanged graph hits, clones hit too, and a
// mutation misses.
func TestCacheHitsAndEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := workload.RandomBlock(rng, 40, 0.3)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	got := c.Measure(g, "fu", buildFU)
	want := Measure(buildFU(g))
	if got.Width != want.Width || !reflect.DeepEqual(got.Chains, want.Chains) ||
		!reflect.DeepEqual(got.ChainOf, want.ChainOf) {
		t.Fatalf("cached measurement differs from direct: %+v vs %+v", got, want)
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first measure: hits=%d misses=%d", h, m)
	}

	// Same graph, same resource: hit. Same graph, other resource: miss.
	if again := c.Measure(g, "fu", buildFU); again != got {
		t.Fatal("re-measurement of unchanged graph did not return the cached result")
	}
	c.Measure(g, "reg.int", buildReg)
	if h, m := c.Stats(); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", h, m)
	}

	// A clone has the same fingerprint: hit.
	if res := c.Measure(g.Clone(), "fu", buildFU); res != got {
		t.Fatal("clone with equal content missed the cache")
	}

	// A structural change misses and measures fresh.
	ns := g.InstrNodes()
	a, b := ns[0], ns[len(ns)-1]
	if !g.HasPath(a, b) && !g.HasPath(b, a) && !g.HasEdge(a, b) {
		g.AddEdge(a, b, dag.EdgeSeq)
	} else {
		g.AddEdge(a, g.Leaf, dag.EdgeSeq)
	}
	mutated := c.Measure(g, "fu", buildFU)
	direct := Measure(buildFU(g))
	if mutated.Width != direct.Width || !reflect.DeepEqual(mutated.Chains, direct.Chains) {
		t.Fatal("post-mutation cached measurement differs from direct")
	}
	if h, m := c.Stats(); h != 2 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", h, m)
	}
}

// TestCacheNilReceiver: a nil *Cache degrades to a plain measurement.
func TestCacheNilReceiver(t *testing.T) {
	g, err := dag.Build(workload.PaperExample(false).Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	var c *Cache
	res := c.Measure(g, "fu", buildFU)
	if want := Measure(buildFU(g)); res.Width != want.Width {
		t.Fatalf("nil cache width = %d, want %d", res.Width, want.Width)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats %d/%d", h, m)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a mix of
// graphs; every returned width must match the direct measurement. Run
// under -race this doubles as the cache's race check.
func TestCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var graphs []*dag.Graph
	var widths []int
	for i := 0; i < 8; i++ {
		f := workload.RandomBlock(rng, 24+i, 0.4)
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
		widths = append(widths, Measure(buildFU(g)).Width)
	}
	c := NewCache()
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % len(graphs)
				if got := c.Measure(graphs[k], "fu", buildFU); got.Width != widths[k] {
					errc <- "width mismatch under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
	if c.Len() != len(graphs) {
		t.Fatalf("cache has %d entries, want %d", c.Len(), len(graphs))
	}
}

// TestCacheLRUEviction: the byte budget evicts least-recently-used
// entries one at a time (never the whole map), respects the budget, and
// keeps recently touched entries resident.
func TestCacheLRUEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var graphs []*dag.Graph
	for i := 0; i < 6; i++ {
		f := workload.RandomBlock(rng, 30+i, 0.3)
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	// Find the per-entry cost, then budget for roughly three entries.
	probe := NewCache()
	probe.Measure(graphs[0], "fu", buildFU)
	_, per := probe.Entries()

	c := NewCacheBudget(3 * per)
	for _, g := range graphs {
		c.Measure(g, "fu", buildFU)
	}
	if ev := c.Evictions(); ev == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if n, b := c.Entries(); b > 3*per || n == 0 {
		t.Fatalf("cache over budget after eviction: %d entries, %d bytes (budget %d)", n, b, 3*per)
	}

	// The most recently inserted graph must still be resident.
	h0, _ := c.Stats()
	c.Measure(graphs[len(graphs)-1], "fu", buildFU)
	if h1, _ := c.Stats(); h1 != h0+1 {
		t.Fatal("most recently used entry was evicted")
	}

	// Touch the oldest surviving entry, insert more, and confirm the
	// touched entry outlives untouched peers: eviction is recency-based.
	c2 := NewCacheBudget(3 * per)
	for _, g := range graphs[:3] {
		c2.Measure(g, "fu", buildFU)
	}
	c2.Measure(graphs[0], "fu", buildFU) // refresh graphs[0]
	c2.Measure(graphs[3], "fu", buildFU) // forces an eviction (graphs[1])
	h0, _ = c2.Stats()
	c2.Measure(graphs[0], "fu", buildFU)
	if h1, _ := c2.Stats(); h1 != h0+1 {
		t.Fatal("recently touched entry was evicted before an older one")
	}
}

// TestCacheSetBudget: shrinking the budget evicts immediately.
func TestCacheSetBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := NewCache()
	for i := 0; i < 4; i++ {
		f := workload.RandomBlock(rng, 28+i, 0.3)
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		c.Measure(g, "fu", buildFU)
	}
	if c.Len() != 4 {
		t.Fatalf("have %d entries, want 4", c.Len())
	}
	c.SetBudget(1)
	if n, _ := c.Entries(); n != 1 {
		t.Fatalf("after SetBudget(1): %d entries, want 1 (the MRU survivor)", n)
	}
	if c.Evictions() != 3 {
		t.Fatalf("evictions = %d, want 3", c.Evictions())
	}
}

// TestCacheSingleFlight: concurrent misses on one key run the build
// exactly once; every caller gets the same shared result.
func TestCacheSingleFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := workload.RandomBlock(rng, 36, 0.3)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}

	var builds atomic.Int64
	release := make(chan struct{})
	slowBuild := func(g *dag.Graph) *reuse.Reuse {
		builds.Add(1)
		<-release // hold every concurrent miss in flight
		return buildFU(g)
	}

	c := NewCache()
	const N = 16
	results := make([]*Result, N)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			results[i] = c.Measure(g, "fu", slowBuild)
		}(i)
	}
	started.Wait()
	// Give the stragglers a beat to reach the cache, then open the gate.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want 1", n)
	}
	for i := 1; i < N; i++ {
		if results[i] != results[0] {
			t.Fatal("coalesced callers got different result pointers")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", c.Len())
	}
	if c.Coalesced() == 0 {
		t.Fatal("no coalesced waits recorded")
	}
}
