package measure

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/reuse"
	"ursa/internal/workload"
)

func buildFU(g *dag.Graph) *reuse.Reuse  { return reuse.FU(g, reuse.AllFUs) }
func buildReg(g *dag.Graph) *reuse.Reuse { return reuse.Reg(g, ir.ClassInt) }

// TestCacheHitsAndEquality: cached measurements equal uncached ones, a
// re-measurement of an unchanged graph hits, clones hit too, and a
// mutation misses.
func TestCacheHitsAndEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := workload.RandomBlock(rng, 40, 0.3)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	got := c.Measure(g, "fu", buildFU)
	want := Measure(buildFU(g))
	if got.Width != want.Width || !reflect.DeepEqual(got.Chains, want.Chains) ||
		!reflect.DeepEqual(got.ChainOf, want.ChainOf) {
		t.Fatalf("cached measurement differs from direct: %+v vs %+v", got, want)
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first measure: hits=%d misses=%d", h, m)
	}

	// Same graph, same resource: hit. Same graph, other resource: miss.
	if again := c.Measure(g, "fu", buildFU); again != got {
		t.Fatal("re-measurement of unchanged graph did not return the cached result")
	}
	c.Measure(g, "reg.int", buildReg)
	if h, m := c.Stats(); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", h, m)
	}

	// A clone has the same fingerprint: hit.
	if res := c.Measure(g.Clone(), "fu", buildFU); res != got {
		t.Fatal("clone with equal content missed the cache")
	}

	// A structural change misses and measures fresh.
	ns := g.InstrNodes()
	a, b := ns[0], ns[len(ns)-1]
	if !g.HasPath(a, b) && !g.HasPath(b, a) && !g.HasEdge(a, b) {
		g.AddEdge(a, b, dag.EdgeSeq)
	} else {
		g.AddEdge(a, g.Leaf, dag.EdgeSeq)
	}
	mutated := c.Measure(g, "fu", buildFU)
	direct := Measure(buildFU(g))
	if mutated.Width != direct.Width || !reflect.DeepEqual(mutated.Chains, direct.Chains) {
		t.Fatal("post-mutation cached measurement differs from direct")
	}
	if h, m := c.Stats(); h != 2 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", h, m)
	}
}

// TestCacheNilReceiver: a nil *Cache degrades to a plain measurement.
func TestCacheNilReceiver(t *testing.T) {
	g, err := dag.Build(workload.PaperExample(false).Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	var c *Cache
	res := c.Measure(g, "fu", buildFU)
	if want := Measure(buildFU(g)); res.Width != want.Width {
		t.Fatalf("nil cache width = %d, want %d", res.Width, want.Width)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats %d/%d", h, m)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a mix of
// graphs; every returned width must match the direct measurement. Run
// under -race this doubles as the cache's race check.
func TestCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var graphs []*dag.Graph
	var widths []int
	for i := 0; i < 8; i++ {
		f := workload.RandomBlock(rng, 24+i, 0.4)
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
		widths = append(widths, Measure(buildFU(g)).Width)
	}
	c := NewCache()
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % len(graphs)
				if got := c.Measure(graphs[k], "fu", buildFU); got.Width != widths[k] {
					errc <- "width mismatch under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
	if c.Len() != len(graphs) {
		t.Fatalf("cache has %d entries, want %d", c.Len(), len(graphs))
	}
}
