package measure

import (
	"testing"

	"ursa/internal/dag"
	"ursa/internal/reuse"
	"ursa/internal/workload"
)

// TestCacheEntriesBytes: Entries reports a growing entry count and a
// nonzero byte estimate, and both reset when the bounded cache drops its
// map.
func TestCacheEntriesBytes(t *testing.T) {
	c := NewCache()
	if n, b := c.Entries(); n != 0 || b != 0 {
		t.Fatalf("fresh cache: entries=%d bytes=%d", n, b)
	}

	g := workload.MustBuild(workload.PaperExample(true))
	build := func(gr *dag.Graph) *reuse.Reuse { return reuse.FU(gr, reuse.AllFUs) }
	c.Measure(g, "fu", build)
	n1, b1 := c.Entries()
	if n1 != 1 || b1 <= 0 {
		t.Fatalf("after one miss: entries=%d bytes=%d", n1, b1)
	}

	// A hit adds nothing.
	c.Measure(g, "fu", build)
	if n, b := c.Entries(); n != n1 || b != b1 {
		t.Errorf("hit changed size: entries=%d bytes=%d", n, b)
	}

	// A distinct resource on the same graph adds an entry and bytes.
	c.Measure(g, "reg.int", func(gr *dag.Graph) *reuse.Reuse { return reuse.Reg(gr, 0) })
	if n, b := c.Entries(); n != 2 || b <= b1 {
		t.Errorf("after second miss: entries=%d bytes=%d (was %d)", n, b, b1)
	}

	// Entries and Len agree.
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

// TestNilCacheEntries: the nil cache reports empty.
func TestNilCacheEntries(t *testing.T) {
	var c *Cache
	if n, b := c.Entries(); n != 0 || b != 0 {
		t.Errorf("nil cache: entries=%d bytes=%d", n, b)
	}
}
