package measure

import (
	"math/rand"
	"testing"

	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/order"
	"ursa/internal/reuse"
)

// TestChainsDeltaWidthMatchesChainsDelta drives one reused scratch through
// many random graphs — both the cold path (no previous result) and the
// warm-start path seeded from a measurement of a random pair subset — and
// requires the pooled width to equal the allocating implementations exactly.
func TestChainsDeltaWidthMatchesChainsDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s DeltaScratch
	for trial := 0; trial < 60; trial++ {
		f := randomBlock(rng, 4+rng.Intn(12))
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hs := g.Hammocks()
		levels := g.NestLevels(hs)
		for _, r := range []*reuse.Reuse{reuse.FU(g, reuse.AllFUs), reuse.Reg(g, ir.ClassInt)} {
			full := Chains(r, levels)
			if w := ChainsDeltaWidth(nil, r, levels, &s); w != full.Width {
				t.Fatalf("trial %d: cold width %d != %d", trial, w, full.Width)
			}

			// Warm start from a random subset of the pairs.
			n := r.NumItems()
			sub := order.NewRelation(n)
			for a := 0; a < n; a++ {
				r.Rel.Row(a).ForEach(func(b int) {
					if rng.Intn(2) == 0 {
						sub.Add(a, b)
					}
				})
			}
			rsub := *r
			rsub.Rel = sub
			prev := Chains(&rsub, levels)
			want := ChainsDelta(prev, r, levels)
			if want.Width != full.Width {
				t.Fatalf("trial %d: ChainsDelta width %d != full %d", trial, want.Width, full.Width)
			}
			if w := ChainsDeltaWidth(prev, r, levels, &s); w != want.Width {
				t.Fatalf("trial %d: warm width %d != %d", trial, w, want.Width)
			}
		}
	}
}
