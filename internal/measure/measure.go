// Package measure computes URSA's resource-requirement measurements
// (paper §3.1): the maximum number of resource instances any schedule can
// demand, obtained as a minimum chain decomposition of the resource's
// CanReuse partial order via bipartite matching [FoF65], and the excessive
// chain sets (Definition 6) locating the regions whose demand exceeds the
// target machine.
//
// The matching is the paper's modified prioritized algorithm: edges that do
// not cross hammock-nesting levels are added (and augmented) first, then
// batches of increasing nesting-level difference, so the decomposition's
// projection onto every nested hammock is also minimal. Worst case O(N³).
package measure

import (
	"fmt"
	"sort"

	"ursa/internal/dag"
	"ursa/internal/matching"
	"ursa/internal/order"
	"ursa/internal/reuse"
)

// Result is a measured minimum chain decomposition for one resource.
type Result struct {
	R *reuse.Reuse
	// Width is the maximum requirement: the number of chains in the
	// minimum decomposition (Dilworth / Theorem 1).
	Width int
	// Chains is the decomposition; elements are item indices into R.Items,
	// each chain ordered head to tail.
	Chains order.Decomposition
	// ChainOf maps item index -> index in Chains.
	ChainOf []int
}

// relEdge is one reuse pair with its hammock-crossing priority (the
// absolute nesting-level difference of the two producers; 0 when no level
// information is supplied).
type relEdge struct {
	a, b int
	prio int
}

// sortedEdges lists the reuse order's pairs sorted by (priority, a, b): the
// canonical order in which the prioritized matcher consumes them.
func sortedEdges(r *reuse.Reuse, levels []int) []relEdge {
	var edges []relEdge
	for a := 0; a < r.NumItems(); a++ {
		r.Rel.Row(a).ForEach(func(b int) {
			prio := 0
			if levels != nil {
				la := levels[r.Items[a].Node]
				lb := levels[r.Items[b].Node]
				if la > lb {
					prio = la - lb
				} else {
					prio = lb - la
				}
			}
			edges = append(edges, relEdge{a, b, prio})
		})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].prio != edges[j].prio {
			return edges[i].prio < edges[j].prio
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	return edges
}

// Chains computes a minimum chain decomposition of the reuse order using
// prioritized incremental matching. levels gives each graph node's hammock
// nesting level (from dag.Graph.NestLevels); nil means no prioritization.
func Chains(r *reuse.Reuse, levels []int) *Result {
	n := r.NumItems()
	edges := sortedEdges(r, levels)
	m := matching.NewIncremental(n, n)
	for i := 0; i < len(edges); {
		j := i
		for j < len(edges) && edges[j].prio == edges[i].prio {
			m.AddEdge(edges[j].a, edges[j].b)
			j++
		}
		m.Augment()
		i = j
	}
	return buildResult(r, m)
}

// buildResult turns a maximum matching over the reuse order into the chain
// decomposition Result, in deterministic order.
func buildResult(r *reuse.Reuse, m *matching.Incremental) *Result {
	n := r.NumItems()
	res := &Result{R: r, ChainOf: make([]int, n)}
	res.Width = n - m.Size()
	// Build chains by following matched successors from each chain head
	// (items unmatched on the right side).
	inChain := make([]bool, n)
	for h := 0; h < n; h++ {
		if m.PairR(h) != -1 {
			continue
		}
		var c order.Chain
		for x := h; x != -1; x = m.PairL(x) {
			if inChain[x] {
				panic(fmt.Sprintf("measure: item %d in two chains", x))
			}
			inChain[x] = true
			c = append(c, x)
		}
		res.Chains = append(res.Chains, c)
	}
	// Deterministic order: by producer node id of the head.
	sort.Slice(res.Chains, func(i, j int) bool {
		return r.Items[res.Chains[i][0]].Node < r.Items[res.Chains[j][0]].Node
	})
	for ci, c := range res.Chains {
		for _, it := range c {
			res.ChainOf[it] = ci
		}
	}
	if len(res.Chains) != res.Width {
		panic(fmt.Sprintf("measure: %d chains but width %d", len(res.Chains), res.Width))
	}
	return res
}

// Measure builds the reuse structure's decomposition with hammock
// prioritization derived from the graph.
func Measure(r *reuse.Reuse) *Result {
	hs := r.Graph.Hammocks()
	levels := r.Graph.NestLevels(hs)
	return Chains(r, levels)
}

// An ExcessSet is an excessive chain set (Definition 6): mutually
// independent allocation subchains within one hammock, more numerous than
// the available resources.
type ExcessSet struct {
	Hammock *dag.Hammock
	// Chains holds the trimmed subchains (item indices, head to tail).
	Chains []order.Chain
	// Limit is the number of available resource instances.
	Limit int
}

// Excess returns how many chains exceed the limit.
func (e *ExcessSet) Excess() int { return len(e.Chains) - e.Limit }

// String summarizes the set.
func (e *ExcessSet) String() string {
	return fmt.Sprintf("excess{hammock %d..%d: %d chains > %d}",
		e.Hammock.Entry, e.Hammock.Exit, len(e.Chains), e.Limit)
}

// FindExcess locates the excessive chain sets of the measured decomposition
// for the given resource limit, one per hammock whose projected chain count
// exceeds the limit after head/tail trimming. Hammocks are examined
// smallest first; the returned sets follow that order, so the first entry
// is the most local region needing transformation.
func FindExcess(res *Result, hammocks []*dag.Hammock, limit int) []*ExcessSet {
	var sets []*ExcessSet
	for _, h := range hammocks {
		if set := excessInHammock(res, h, limit); set != nil {
			sets = append(sets, set)
		}
	}
	return sets
}

func excessInHammock(res *Result, h *dag.Hammock, limit int) *ExcessSet {
	r := res.R
	// Project each chain onto the hammock interior (excluding the hammock's
	// own entry/exit pseudo endpoints when they are root/leaf).
	var proj []order.Chain
	for _, c := range res.Chains {
		var sub order.Chain
		for _, it := range c {
			n := r.Items[it].Node
			if h.Contains(n) {
				sub = append(sub, it)
			}
		}
		if len(sub) > 0 {
			proj = append(proj, sub)
		}
	}
	if len(proj) <= limit {
		return nil
	}

	// Independence is judged in the resource's own partial order (Def. 6):
	// two items are independent iff neither can reuse the other's resource
	// instance, i.e. they can hold instances simultaneously.
	rel := r.Rel

	// Trim heads that other heads depend on, and tails that depend on other
	// tails, until all heads and all tails are mutually independent
	// (paper §3.1's example procedure). The reuse-order ancestor head is
	// removed; the reuse-order descendant tail is removed.
	for changed := true; changed; {
		changed = false
		// Heads.
		for i := 0; i < len(proj) && !changed; i++ {
			for j := 0; j < len(proj) && !changed; j++ {
				if i == j {
					continue
				}
				hi, hj := proj[i][0], proj[j][0]
				if rel.Comparable(hi, hj) {
					vic := i // remove the earlier (ancestor) head
					if rel.Has(hj, hi) {
						vic = j
					}
					proj[vic] = proj[vic][1:]
					if len(proj[vic]) == 0 {
						proj = append(proj[:vic], proj[vic+1:]...)
					}
					changed = true
				}
			}
		}
		if changed {
			continue
		}
		// Tails.
		for i := 0; i < len(proj) && !changed; i++ {
			for j := 0; j < len(proj) && !changed; j++ {
				if i == j {
					continue
				}
				ti, tj := proj[i][len(proj[i])-1], proj[j][len(proj[j])-1]
				if rel.Comparable(ti, tj) {
					vic := i // remove the later (descendant) tail
					if rel.Has(tj, ti) {
						vic = i
					} else {
						vic = j
					}
					proj[vic] = proj[vic][:len(proj[vic])-1]
					if len(proj[vic]) == 0 {
						proj = append(proj[:vic], proj[vic+1:]...)
					}
					changed = true
				}
			}
		}
	}
	if len(proj) <= limit {
		return nil
	}
	return &ExcessSet{Hammock: h, Chains: proj, Limit: limit}
}
