package measure

import (
	"slices"

	"ursa/internal/matching"
	"ursa/internal/reuse"
)

// DeltaScratch holds the reusable buffers behind ChainsDeltaWidth: a pooled
// incremental matcher plus edge and pair slices. One scratch belongs to one
// evaluator worker; the zero value is ready to use.
type DeltaScratch struct {
	m     *matching.Incremental
	edges []relEdge
	pairs []int
}

// sortedEdgesInto is sortedEdges appending into a reused buffer, sorted with
// the same (priority, a, b) key. The generic comparison avoids the
// interface-boxing allocations of sort.Slice.
func sortedEdgesInto(dst []relEdge, r *reuse.Reuse, levels []int) []relEdge {
	dst = dst[:0]
	for a := 0; a < r.NumItems(); a++ {
		r.Rel.Row(a).ForEach(func(b int) {
			prio := 0
			if levels != nil {
				la := levels[r.Items[a].Node]
				lb := levels[r.Items[b].Node]
				if la > lb {
					prio = la - lb
				} else {
					prio = lb - la
				}
			}
			dst = append(dst, relEdge{a, b, prio})
		})
	}
	slices.SortFunc(dst, func(x, y relEdge) int {
		if x.prio != y.prio {
			return x.prio - y.prio
		}
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	return dst
}

// pairsInto is pairsOf writing into a reused buffer.
func pairsInto(dst []int, prev *Result) []int {
	n := len(prev.ChainOf)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = -1
	}
	for _, c := range prev.Chains {
		for k := 0; k+1 < len(c); k++ {
			dst[c[k]] = c[k+1]
		}
	}
	return dst
}

// ChainsDeltaWidth returns the width ChainsDelta would compute — the exact
// from-scratch minimum chain count of r under the given hammock levels —
// without building the decomposition and without allocating in steady state:
// the matcher, edge list, and seed pairs all live in the scratch. This is the
// candidate evaluator's scoring primitive; the decomposition itself is only
// rebuilt (via ChainsDelta) for the one candidate that commits.
func ChainsDeltaWidth(prev *Result, r *reuse.Reuse, levels []int, s *DeltaScratch) int {
	n := r.NumItems()
	s.edges = sortedEdgesInto(s.edges, r, levels)
	edges := s.edges
	if s.m == nil {
		s.m = matching.NewIncremental(n, n)
	} else {
		s.m.Reset(n, n)
	}
	m := s.m

	if prev == nil || prev.R == nil || prev.R.NumItems() != n {
		// Full prioritized matching, pooled storage.
		for i := 0; i < len(edges); {
			j := i
			for j < len(edges) && edges[j].prio == edges[i].prio {
				m.AddEdge(edges[j].a, edges[j].b)
				j++
			}
			m.Augment()
			i = j
		}
		return n - m.Size()
	}

	// Warm start: partition in place into surviving and fresh edges. The
	// surviving edges go straight into the matcher (the seeded matching
	// already covers them maximally); the fresh ones are compacted to the
	// front of the buffer, preserving their priority order.
	old := prev.R.Rel
	nf := 0
	for _, e := range edges {
		if old.Has(e.a, e.b) {
			m.AddEdge(e.a, e.b)
		} else {
			edges[nf] = e
			nf++
		}
	}
	fresh := edges[:nf]
	s.pairs = pairsInto(s.pairs, prev)
	m.Seed(s.pairs)

	for i := 0; i < len(fresh); {
		j := i
		for j < len(fresh) && fresh[j].prio == fresh[i].prio {
			m.AddEdge(fresh[j].a, fresh[j].b)
			j++
		}
		m.Augment()
		i = j
	}
	return n - m.Size()
}
