package measure

import (
	"crypto/sha256"
	"sync"

	"ursa/internal/dag"
	"ursa/internal/reuse"
)

// Cache is an incremental measurement cache: it memoizes Measure results
// keyed by a canonical DAG+resource fingerprint (the graph's content hash
// plus the resource's name). The URSA driver re-measures every resource
// after every tentative and committed transformation; most transformations
// leave most resources' reuse relations untouched, and the driver's
// tentative-apply loop measures the same transformed graph several times
// (once as a candidate, once more when the winner is committed, again in
// plateau scans). All of those repeats become cache hits that skip both
// the reuse-structure construction and the O(N³) prioritized matching.
//
// Cached results are shared: callers must treat a *Result obtained through
// the cache as immutable (every current consumer does — excess-set
// trimming and candidate generation copy what they modify). Node and item
// ids are content-determined, so a Result computed on one clone of a graph
// is valid verbatim for any other clone with equal fingerprint.
//
// A Cache is safe for concurrent use. Concurrent misses of the same key
// may compute the result twice; both computations are identical (Measure
// is deterministic), so whichever lands last wins harmlessly.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*Result
	bytes   int64 // approximate retained bytes across entries
	hits    uint64
	misses  uint64
}

type cacheKey struct {
	resource string
	graph    [sha256.Size]byte
}

// maxEntries bounds the cache's memory: when an insertion would exceed it,
// the whole map is dropped. Resets are count-based, hence deterministic.
const maxEntries = 8192

// NewCache returns an empty measurement cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*Result)}
}

// Measure returns the measurement of the named resource on the graph,
// reusing a cached result when the graph's fingerprint and resource match
// a previous call. On a miss, build constructs the resource's reuse
// structure (exactly core.Resource.Build) and the result is computed via
// Measure and stored.
func (c *Cache) Measure(g *dag.Graph, resource string, build func(*dag.Graph) *reuse.Reuse) *Result {
	if c == nil {
		return Measure(build(g))
	}
	key := cacheKey{resource: resource, graph: g.Fingerprint()}
	c.mu.Lock()
	if res, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return res
	}
	c.misses++
	c.mu.Unlock()

	res := Measure(build(g))

	c.mu.Lock()
	if len(c.entries) >= maxEntries {
		c.entries = make(map[cacheKey]*Result)
		c.bytes = 0
	}
	if _, dup := c.entries[key]; !dup {
		c.bytes += approxResultBytes(res)
	}
	c.entries[key] = res
	c.mu.Unlock()
	return res
}

// approxResultBytes estimates the memory a cached Result retains: the two
// n×n bit relations dominate, plus the items, kill map, and decomposition
// (all O(n) slices of machine words), plus fixed struct overhead.
func approxResultBytes(res *Result) int64 {
	if res == nil || res.R == nil {
		return 64
	}
	n := int64(len(res.R.Items))
	relBits := n * ((n + 63) / 64) * 8 // one bitset row per item
	return 2*relBits +                 // Rel + Reduced
		n*16 + // Items (node + reg)
		n*8 + // Kill
		n*8 + // ChainOf
		n*8 + // chain elements across the decomposition
		int64(len(res.Chains))*24 + // chain slice headers
		256 // struct and map-entry overhead
}

// Stats reports the hit and miss counts so far.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached measurements.
func (c *Cache) Len() int {
	n, _ := c.Entries()
	return n
}

// Entries reports the cache's current size: the number of cached
// measurements and the approximate bytes they retain. The byte figure is
// an estimate (dominated by the n×n reuse relations) intended for
// monitoring, not precise accounting; it resets to zero whenever the
// count-bounded cache drops its map.
func (c *Cache) Entries() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}
