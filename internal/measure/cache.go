package measure

import (
	"crypto/sha256"
	"sync"

	"ursa/internal/dag"
	"ursa/internal/reuse"
)

// Cache is an incremental measurement cache: it memoizes Measure results
// keyed by a canonical DAG+resource fingerprint (the graph's content hash
// plus the resource's name). The URSA driver re-measures every resource
// after every tentative and committed transformation; most transformations
// leave most resources' reuse relations untouched, and the driver's
// tentative-apply loop measures the same transformed graph several times
// (once as a candidate, once more when the winner is committed, again in
// plateau scans). All of those repeats become cache hits that skip both
// the reuse-structure construction and the O(N³) prioritized matching.
//
// Cached results are shared: callers must treat a *Result obtained through
// the cache as immutable (every current consumer does — excess-set
// trimming and candidate generation copy what they modify). Node and item
// ids are content-determined, so a Result computed on one clone of a graph
// is valid verbatim for any other clone with equal fingerprint.
//
// Memory is bounded by a byte budget: entries are evicted least recently
// used, one at a time, so a long-lived server process keeps its hot
// working set instead of periodically dropping everything.
//
// A Cache is safe for concurrent use. Concurrent misses of the same key
// coalesce: one goroutine builds the reuse structure and measures, the
// rest wait and share its result — under the parallel candidate evaluator
// N workers hitting one fresh fingerprint cost one O(N³) matching, not N.
type Cache struct {
	mu         sync.Mutex
	entries    map[cacheKey]*cacheEntry
	head, tail *cacheEntry // LRU list, head = most recently used
	bytes      int64       // approximate retained bytes across entries
	budget     int64
	hits       uint64
	misses     uint64
	evictions  uint64
	coalesced  uint64
	flight     map[cacheKey]*flightCall
}

type cacheKey struct {
	resource string
	graph    [sha256.Size]byte
}

// cacheEntry is one memoized measurement, threaded on the LRU list.
type cacheEntry struct {
	key        cacheKey
	res        *Result
	bytes      int64
	prev, next *cacheEntry
}

// flightCall is one in-progress measurement that concurrent misses of the
// same key wait on.
type flightCall struct {
	done chan struct{}
	res  *Result
}

// DefaultBudget bounds the cache's approximate retained bytes when
// NewCache is used. Sized so the steady-state working set of a busy
// server (thousands of mid-size reuse relations) stays resident.
const DefaultBudget = 128 << 20 // 128 MiB

// NewCache returns an empty measurement cache with the default byte
// budget.
func NewCache() *Cache { return NewCacheBudget(DefaultBudget) }

// NewCacheBudget returns an empty cache bounded to approximately budget
// retained bytes (<= 0 means DefaultBudget).
func NewCacheBudget(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{
		entries: make(map[cacheKey]*cacheEntry),
		budget:  budget,
		flight:  make(map[cacheKey]*flightCall),
	}
}

// SetBudget changes the byte budget, evicting immediately if the cache
// already exceeds it.
func (c *Cache) SetBudget(budget int64) {
	if c == nil || budget <= 0 {
		return
	}
	c.mu.Lock()
	c.budget = budget
	c.evictLocked()
	c.mu.Unlock()
}

// Measure returns the measurement of the named resource on the graph,
// reusing a cached result when the graph's fingerprint and resource match
// a previous call. On a miss, build constructs the resource's reuse
// structure (exactly core.Resource.Build) and the result is computed via
// Measure and stored. Concurrent misses of one key run build once.
func (c *Cache) Measure(g *dag.Graph, resource string, build func(*dag.Graph) *reuse.Reuse) *Result {
	if c == nil {
		return Measure(build(g))
	}
	key := cacheKey{resource: resource, graph: g.Fingerprint()}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.moveFront(e)
		c.mu.Unlock()
		return e.res
	}
	c.misses++
	if fc, ok := c.flight[key]; ok {
		// Another goroutine is already building this measurement; wait
		// for it rather than duplicating the O(N³) matching.
		c.coalesced++
		c.mu.Unlock()
		<-fc.done
		return fc.res
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[key] = fc
	c.mu.Unlock()

	res := Measure(build(g))

	c.mu.Lock()
	fc.res = res
	delete(c.flight, key)
	if _, dup := c.entries[key]; !dup {
		e := &cacheEntry{key: key, res: res, bytes: approxResultBytes(res)}
		c.entries[key] = e
		c.pushFront(e)
		c.bytes += e.bytes
		c.evictLocked()
	}
	c.mu.Unlock()
	close(fc.done)
	return res
}

// evictLocked drops least-recently-used entries until the cache fits its
// budget, always keeping the most recent entry so a single oversized
// measurement still caches. Called with c.mu held.
func (c *Cache) evictLocked() {
	for c.bytes > c.budget && c.tail != nil && c.tail != c.head {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// approxResultBytes estimates the memory a cached Result retains: the two
// n×n bit relations dominate, plus the items, kill map, and decomposition
// (all O(n) slices of machine words), plus fixed struct overhead.
func approxResultBytes(res *Result) int64 {
	if res == nil || res.R == nil {
		return 64
	}
	n := int64(len(res.R.Items))
	relBits := n * ((n + 63) / 64) * 8 // one bitset row per item
	return 2*relBits +                 // Rel + Reduced
		n*16 + // Items (node + reg)
		n*8 + // Kill
		n*8 + // ChainOf
		n*8 + // chain elements across the decomposition
		int64(len(res.Chains))*24 + // chain slice headers
		256 // struct and map-entry overhead
}

// Stats reports the hit and miss counts so far. A coalesced wait (see
// Measure) counts as a miss: the key was absent when the caller arrived.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports how many entries the byte budget has evicted.
func (c *Cache) Evictions() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Coalesced reports how many misses waited on a concurrent identical
// build instead of building themselves.
func (c *Cache) Coalesced() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Len returns the number of cached measurements.
func (c *Cache) Len() int {
	n, _ := c.Entries()
	return n
}

// Entries reports the cache's current size: the number of cached
// measurements and the approximate bytes they retain. The byte figure is
// an estimate (dominated by the n×n reuse relations) intended for
// monitoring, not precise accounting.
func (c *Cache) Entries() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}
