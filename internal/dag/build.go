package dag

import (
	"fmt"

	"ursa/internal/ir"
)

// Build constructs the dependence DAG for a straight-line block in
// single-assignment form. Edges added:
//
//   - data dependences def -> use for every register operand;
//   - memory-ordering dependences between conflicting memory operations
//     (store/store, store/load, load/store on possibly-aliasing addresses);
//   - sequence edges keeping a terminating branch last;
//   - root/leaf edges making the region a hammock.
//
// Registers defined but never used in the block are recorded as live-out:
// their lifetimes extend to the leaf, which the register Reuse DAG relies
// on. Extra live-outs (values a later trace block needs) can be passed in.
func Build(b *ir.Block, extraLiveOut ...ir.VReg) (*Graph, error) {
	if err := ir.VerifySSA(b); err != nil {
		return nil, fmt.Errorf("dag: %w", err)
	}
	f := b.Func
	g := New(f)

	defNode := make(map[ir.VReg]int)
	var memNodes []int // prior memory ops, in order
	var branch int = -1

	for _, in := range b.Instrs {
		// The graph owns a private copy: transformations rewrite operands
		// and must not corrupt the source block.
		id := g.AddInstr(in.Clone())

		// Data dependences.
		for _, u := range in.Uses() {
			if dn, ok := defNode[u]; ok {
				g.AddEdge(dn, id, EdgeData)
			}
		}
		if in.Dst != ir.NoReg {
			defNode[in.Dst] = id
		}

		// Memory ordering.
		if in.IsMem() {
			for _, prev := range memNodes {
				pin := g.Nodes[prev].Instr
				if (pin.IsStore() || in.IsStore()) && MayAlias(pin, in) {
					g.AddEdge(prev, id, EdgeMem)
				}
			}
			memNodes = append(memNodes, id)
		}

		if in.IsBranch() {
			branch = id
		}
	}

	// The branch, if any, must schedule after every other instruction.
	if branch >= 0 {
		for _, n := range g.InstrNodes() {
			if n != branch && !reachesVia(g, n, branch) {
				g.AddEdge(n, branch, EdgeSeq)
			}
		}
	}

	// Root/leaf hammock edges.
	for _, n := range g.InstrNodes() {
		hasInstrPred, hasInstrSucc := false, false
		for _, p := range g.Preds(n) {
			if p != g.Root {
				hasInstrPred = true
			}
		}
		for _, s := range g.Succs(n) {
			if s != g.Leaf {
				hasInstrSucc = true
			}
		}
		if !hasInstrPred {
			g.AddEdge(g.Root, n, EdgeSeq)
		}
		if !hasInstrSucc {
			g.AddEdge(n, g.Leaf, EdgeSeq)
		}
	}
	if len(g.InstrNodes()) == 0 {
		g.AddEdge(g.Root, g.Leaf, EdgeSeq)
	}

	// Live-out registers: defined but unused here, plus caller extras.
	used := make(map[ir.VReg]bool)
	for _, in := range b.Instrs {
		for _, u := range in.Uses() {
			used[u] = true
		}
	}
	for v := range defNode {
		if !used[v] {
			g.LiveOut[v] = true
		}
	}
	for _, v := range extraLiveOut {
		if _, ok := defNode[v]; ok {
			g.LiveOut[v] = true
		}
	}

	if err := g.Check(); err != nil {
		return nil, err
	}
	return g, nil
}

// reachesVia reports whether b is reachable from a by a DFS over successor
// edges. Used only during construction, before closure caches exist.
func reachesVia(g *Graph, a, b int) bool { return g.HasPath(a, b) }

// HasPath reports whether b is reachable from a (a == b counts as
// reachable) by DFS over the current edges. Transformations use this to
// avoid creating cycles; unlike Reach it reflects mutations immediately.
func (g *Graph) HasPath(a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []int{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.succ[n]...)
	}
	return false
}

// MayAlias reports whether two memory instructions can touch the same cell.
// Distinct symbolic bases never alias; equal bases with constant addresses
// alias iff the offsets are equal; an indexed access aliases everything in
// its base (except two accesses through the same index register with
// different constant offsets).
func MayAlias(a, b *ir.Instr) bool {
	if a.Sym != b.Sym {
		return false
	}
	if a.Index == ir.NoReg && b.Index == ir.NoReg {
		return a.Off == b.Off
	}
	if a.Index != ir.NoReg && b.Index != ir.NoReg && a.Index == b.Index {
		return a.Off == b.Off
	}
	return true
}
