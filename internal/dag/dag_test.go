package dag

import (
	"strings"
	"testing"

	"ursa/internal/ir"
)

// paperBlock builds the block of Figure 2: nodes A..K.
const paperSrc = `
func paper {
entry:
	v = load V[0]       ; A
	w = mul v, two      ; B
	x = mul v, three    ; C
	y = add v, five     ; D
	t1 = add w, x       ; E
	t2 = mul w, x       ; F
	t3 = mul y, two     ; G
	t4 = div y, three   ; H
	t5 = div t1, t2     ; I
	t6 = add t3, t4     ; J
	z = add t5, t6      ; K
}
`

func paperGraph(t *testing.T) *Graph {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// node returns the id of the node defining the named register.
func node(t *testing.T, g *Graph, name string) int {
	t.Helper()
	id := g.DefNode(g.Func.Reg(name))
	if id < 0 {
		t.Fatalf("no node defines %s", name)
	}
	return id
}

func TestBuildPaperExampleStructure(t *testing.T) {
	g := paperGraph(t)
	if got := len(g.InstrNodes()); got != 11 {
		t.Fatalf("instr nodes = %d, want 11", got)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	a := node(t, g, "v")
	b := node(t, g, "w")
	e := node(t, g, "t1")
	i := node(t, g, "t5")
	k := node(t, g, "z")
	for _, want := range [][2]int{{a, b}, {b, e}, {e, i}, {i, k}} {
		if !g.HasEdge(want[0], want[1]) {
			t.Errorf("missing edge %v", want)
		}
	}
	if g.HasEdge(a, e) {
		t.Error("unexpected transitive data edge A->E")
	}
	// z is live-out (defined, never used).
	if !g.LiveOut[g.Func.Reg("z")] {
		t.Error("z not detected live-out")
	}
	if g.LiveOut[g.Func.Reg("t1")] {
		t.Error("t1 wrongly live-out")
	}
}

func TestCriticalPathPaper(t *testing.T) {
	g := paperGraph(t)
	length, path := g.CriticalPath(UnitLatency)
	if length != 5 {
		t.Errorf("critical path = %d, want 5 (A B E I K)", length)
	}
	if path[0] != g.Root || path[len(path)-1] != g.Leaf {
		t.Errorf("path endpoints wrong: %v", path)
	}
	if len(path) != 7 { // root + 5 + leaf
		t.Errorf("path length = %d nodes, want 7", len(path))
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := paperGraph(t)
	topo := g.TopoOrder()
	if len(topo) != g.NumNodes() {
		t.Fatalf("topo covers %d of %d nodes", len(topo), g.NumNodes())
	}
	pos := make(map[int]int)
	for i, n := range topo {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topo order", e)
		}
	}
}

func TestDepthsHeights(t *testing.T) {
	g := paperGraph(t)
	d := g.Depths()
	h := g.Heights()
	a := node(t, g, "v")
	k := node(t, g, "z")
	if d[a] != 1 || d[k] != 5 {
		t.Errorf("depths: A=%d (want 1), K=%d (want 5)", d[a], d[k])
	}
	if h[k] != 1 || h[a] != 5 {
		t.Errorf("heights: K=%d (want 1), A=%d (want 5)", h[k], h[a])
	}
}

func TestReachClosure(t *testing.T) {
	g := paperGraph(t)
	reach := g.Reach()
	a := node(t, g, "v")
	k := node(t, g, "z")
	gg := node(t, g, "t3")
	hh := node(t, g, "t4")
	if !reach.Has(a, k) {
		t.Error("A should reach K")
	}
	if reach.Has(gg, hh) || reach.Has(hh, gg) {
		t.Error("G and H must be independent")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := paperGraph(t)
	dd := node(t, g, "y")
	desc := g.Descendants(dd)
	// D's descendants: G, H, J, K, leaf.
	want := []string{"t3", "t4", "t6", "z"}
	for _, name := range want {
		if !desc.Has(node(t, g, name)) {
			t.Errorf("descendants of D missing %s", name)
		}
	}
	if !desc.Has(g.Leaf) {
		t.Error("descendants of D missing leaf")
	}
	if desc.Has(node(t, g, "t1")) {
		t.Error("descendants of D wrongly contains E")
	}
	anc := g.Ancestors(dd)
	if !anc.Has(node(t, g, "v")) || !anc.Has(g.Root) {
		t.Error("ancestors of D must contain A and root")
	}
	if anc.Count() != 2 {
		t.Errorf("ancestors of D = %d nodes, want 2", anc.Count())
	}
}

func TestMemoryDependences(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = load A[0]
	store A[0], a    ; conflicts with the load (same cell)
	b = load A[1]    ; distinct constant cell: no conflict with store? same base, diff off -> no
	store B[0], a    ; different base: independent of A traffic
	c = load A[i]    ; indexed: conflicts with any A store
`)
	g, err := Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ld0, st0, ld1, stB, ldI := 2, 3, 4, 5, 6 // ids: 0=root,1=leaf, then in order
	if !g.HasEdge(ld0, st0) {
		t.Error("load A[0] -> store A[0] dependence missing")
	}
	if g.HasEdge(st0, ld1) {
		t.Error("store A[0] should not conflict with load A[1]")
	}
	if g.HasEdge(st0, stB) {
		t.Error("different bases must not conflict")
	}
	if !g.HasEdge(st0, ldI) {
		t.Error("store A[0] -> load A[i] dependence missing")
	}
	// ld0->st0 is also a data dependence (the store's operand), so its kind
	// is data; the store->indexed-load pair is pure memory ordering.
	if k, _ := g.EdgeKindOf(ld0, st0); k != EdgeData {
		t.Errorf("load->store edge kind = %v, want data (store reads a)", k)
	}
	if k, _ := g.EdgeKindOf(st0, ldI); k != EdgeMem {
		t.Errorf("store->indexed-load edge kind = %v, want mem", k)
	}
}

func TestSameIndexSameOffsetNoFalseIndependence(t *testing.T) {
	f := ir.MustParse(`
entry:
	store A[i+0], x
	b = load A[i+0]
	c = load A[i+4]
`)
	g, err := Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st, ldSame, ldOff := 2, 3, 4
	if !g.HasEdge(st, ldSame) {
		t.Error("store A[i] -> load A[i] must conflict")
	}
	if g.HasEdge(st, ldOff) {
		t.Error("store A[i] vs load A[i+4]: same index, different offset cannot alias")
	}
}

func TestBranchStaysLast(t *testing.T) {
	f := ir.MustParse(`
func b {
entry:
	x = const 1
	y = const 2
	z = add x, y
	store O[0], z
	br out
out:
	ret
}
`)
	g, err := Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var br int = -1
	for _, n := range g.InstrNodes() {
		if g.Nodes[n].Instr.IsBranch() {
			br = n
		}
	}
	if br < 0 {
		t.Fatal("no branch node")
	}
	reach := g.Reach()
	for _, n := range g.InstrNodes() {
		if n != br && !reach.Has(n, br) {
			t.Errorf("node %s does not precede the branch", g.Nodes[n].Name)
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	f := ir.NewFunc("empty")
	b := f.NewBlock("entry")
	g, err := Build(b)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.HasEdge(g.Root, g.Leaf) {
		t.Error("empty block must connect root to leaf")
	}
	if err := g.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestBuildRejectsNonSSA(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = const 1
	a = const 2
`)
	if _, err := Build(f.Blocks[0]); err == nil {
		t.Fatal("Build accepted non-SSA block")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperGraph(t)
	c := g.Clone()
	gg := node(t, g, "t3")
	hh := node(t, g, "t4")
	c.AddEdge(gg, hh, EdgeSeq)
	if g.HasEdge(gg, hh) {
		t.Error("AddEdge on clone mutated original")
	}
	c.Nodes[gg].Instr.Imm = 99
	if g.Nodes[gg].Instr.Imm == 99 {
		t.Error("clone shares instruction storage")
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := paperGraph(t)
	gg := node(t, g, "t3")
	hh := node(t, g, "t4")
	g.AddEdge(gg, hh, EdgeSeq)
	if !g.HasEdge(gg, hh) {
		t.Fatal("AddEdge failed")
	}
	before := g.NumEdges()
	g.AddEdge(gg, hh, EdgeData) // duplicate: ignored
	if g.NumEdges() != before {
		t.Error("duplicate AddEdge changed edge count")
	}
	if k, _ := g.EdgeKindOf(gg, hh); k != EdgeSeq {
		t.Error("duplicate AddEdge overwrote kind")
	}
	g.RemoveEdge(gg, hh)
	if g.HasEdge(gg, hh) {
		t.Error("RemoveEdge failed")
	}
	if err := g.Check(); err != nil {
		t.Errorf("Check after removal: %v", err)
	}
}

func TestDominators(t *testing.T) {
	g := paperGraph(t)
	dom := g.Dominators()
	pdom := g.PostDominators()
	a := node(t, g, "v")
	d := node(t, g, "y")
	j := node(t, g, "t6")
	k := node(t, g, "z")
	if dom[a] != g.Root {
		t.Errorf("idom(A) = %d, want root", dom[a])
	}
	if dom[d] != a {
		t.Errorf("idom(D) = %d, want A", dom[d])
	}
	if dom[j] != d {
		t.Errorf("idom(J) = %d, want D (both G and H come from D)", dom[j])
	}
	if pdom[d] != j {
		t.Errorf("ipdom(D) = %d, want J", pdom[d])
	}
	if pdom[k] != g.Leaf {
		t.Errorf("ipdom(K) = %d, want leaf", pdom[k])
	}
}

func TestHammocks(t *testing.T) {
	g := paperGraph(t)
	hs := g.Hammocks()
	if len(hs) == 0 {
		t.Fatal("no hammocks found")
	}
	// The whole graph must be present with level 0.
	whole := hs[len(hs)-1]
	if whole.Entry != g.Root || whole.Exit != g.Leaf || whole.Level != 0 {
		t.Errorf("largest hammock = (%d,%d) level %d, want (root,leaf) level 0",
			whole.Entry, whole.Exit, whole.Level)
	}
	// D..J is a hammock: D's subtree {D,G,H,J} exits only through J.
	d := node(t, g, "y")
	j := node(t, g, "t6")
	found := false
	for _, h := range hs {
		if h.Entry == d && h.Exit == j {
			found = true
			if h.Size() != 4 {
				t.Errorf("hammock D..J size = %d, want 4", h.Size())
			}
			if h.Level == 0 {
				t.Error("nested hammock D..J must have level > 0")
			}
		}
	}
	if !found {
		t.Error("hammock D..J not found")
	}
	// Levels must be consistent with NestLevels.
	levels := g.NestLevels(hs)
	gg := node(t, g, "t3")
	if levels[gg] == 0 {
		t.Errorf("G should sit in a nested hammock, level %d", levels[gg])
	}
}

func TestDotOutput(t *testing.T) {
	g := paperGraph(t)
	dot := g.Dot("paper")
	for _, want := range []string{"digraph", "root", "leaf", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}
