package dag

import (
	"testing"

	"ursa/internal/ir"
)

// TestBuildSchedulingAntiOutputDeps: register reuse must force WAR and WAW
// edges — the §1 mechanism by which postpass allocation restricts the
// scheduler.
func TestBuildSchedulingAntiOutputDeps(t *testing.T) {
	f := ir.NewFunc("ra")
	b := f.NewBlock("entry")
	r0 := f.NewReg("r0", ir.ClassInt)
	r1 := f.NewReg("r1", ir.ClassInt)
	// r0 = load; r1 = r0+1; r0 = load (WAW with def 0, WAR with use in 1);
	// store r0.
	i0 := b.Append(&ir.Instr{Op: ir.Load, Dst: r0, Sym: "A", Off: 0})
	i1 := b.Append(&ir.Instr{Op: ir.AddI, Dst: r1, Args: []ir.VReg{r0}, Imm: 1})
	i2 := b.Append(&ir.Instr{Op: ir.Load, Dst: r0, Sym: "A", Off: 1})
	i3 := b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{r0}, Sym: "O", Off: 0})
	_ = i3

	g, err := BuildScheduling(b)
	if err != nil {
		t.Fatalf("BuildScheduling: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Node ids: 0=root, 1=leaf, then 2,3,4,5 in order.
	n0, n1, n2 := 2, 3, 4
	if !g.HasEdge(n0, n1) {
		t.Error("RAW r0: load -> add missing")
	}
	if !g.HasEdge(n1, n2) {
		t.Error("WAR r0: add (reads old r0) -> second load (writes r0) missing")
	}
	if !g.HasEdge(n0, n2) {
		t.Error("WAW r0: first load -> second load missing")
	}
	// The reuse serializes: the two loads can never be concurrent.
	reach := g.Reach()
	if !reach.Has(n0, n2) {
		t.Error("loads not ordered")
	}
	_ = i0
	_ = i1
	_ = i2
	// The final value of r0 is live-out.
	if !g.LiveOut[r0] {
		t.Error("r0 not live-out")
	}
}

// TestBuildSchedulingVsSSAWidth: the same computation written with reuse
// has a narrower DAG (less parallelism) than its SSA form — quantifying the
// §1 claim.
func TestBuildSchedulingVsSSAWidth(t *testing.T) {
	// SSA form: four independent loads, pairwise sums.
	ssa := ir.MustParse(`
entry:
	a = load A[0]
	b = load A[1]
	c = load A[2]
	d = load A[3]
	s1 = add a, b
	s2 = add c, d
	s3 = add s1, s2
	store O[0], s3
`)
	gSSA, err := Build(ssa.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}

	// The same computation through two physical registers.
	f := ir.NewFunc("two")
	b := f.NewBlock("entry")
	r0 := f.NewReg("r0", ir.ClassInt)
	r1 := f.NewReg("r1", ir.ClassInt)
	r2 := f.NewReg("r2", ir.ClassInt)
	b.Append(&ir.Instr{Op: ir.Load, Dst: r0, Sym: "A", Off: 0})
	b.Append(&ir.Instr{Op: ir.Load, Dst: r1, Sym: "A", Off: 1})
	b.Append(&ir.Instr{Op: ir.Add, Dst: r2, Args: []ir.VReg{r0, r1}})
	b.Append(&ir.Instr{Op: ir.Load, Dst: r0, Sym: "A", Off: 2})
	b.Append(&ir.Instr{Op: ir.Load, Dst: r1, Sym: "A", Off: 3})
	b.Append(&ir.Instr{Op: ir.Add, Dst: r0, Args: []ir.VReg{r0, r1}})
	b.Append(&ir.Instr{Op: ir.Add, Dst: r0, Args: []ir.VReg{r2, r0}})
	b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{r0}, Sym: "O", Off: 0})
	gRA, err := BuildScheduling(b)
	if err != nil {
		t.Fatal(err)
	}

	critSSA, _ := gSSA.CriticalPath(UnitLatency)
	critRA, _ := gRA.CriticalPath(UnitLatency)
	if critRA <= critSSA {
		t.Errorf("register reuse should lengthen the critical path: SSA %d, reused %d",
			critSSA, critRA)
	}
}
