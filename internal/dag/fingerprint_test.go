package dag

import (
	"testing"

	"ursa/internal/ir"
)

func fpGraph(t *testing.T) (*ir.Func, *Graph) {
	t.Helper()
	f := ir.MustParse(`
func fp {
entry:
	a = load A[0]
	b = muli a, 2
	c = addi a, 3
	d = add b, c
	store OUT[0], d
}
`)
	g, err := Build(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	return f, g
}

// TestFingerprintStability: repeated calls and clones agree; the hash does
// not depend on map iteration order.
func TestFingerprintStability(t *testing.T) {
	_, g := fpGraph(t)
	first := g.Fingerprint()
	for i := 0; i < 10; i++ {
		if g.Fingerprint() != first {
			t.Fatal("fingerprint changed between calls on an unchanged graph")
		}
	}
	if g.Clone().Fingerprint() != first {
		t.Fatal("clone fingerprint differs")
	}
}

// TestFingerprintSensitivity: edges, live-out changes, and instruction
// changes all change the hash.
func TestFingerprintSensitivity(t *testing.T) {
	_, g := fpGraph(t)
	base := g.Fingerprint()

	withEdge := g.Clone()
	// b and c are independent siblings; sequencing them is a real change.
	nb, nc := g.Func.Reg("b"), g.Func.Reg("c")
	withEdge.AddEdge(withEdge.DefNode(nb), withEdge.DefNode(nc), EdgeSeq)
	if withEdge.Fingerprint() == base {
		t.Fatal("added edge did not change the fingerprint")
	}

	withLive := g.Clone()
	withLive.LiveOut[g.Func.Reg("d")] = true
	if withLive.Fingerprint() == base {
		t.Fatal("live-out change did not change the fingerprint")
	}

	withImm := g.Clone()
	for _, n := range withImm.Nodes {
		if n.Instr != nil && n.Instr.Op == ir.MulI {
			n.Instr.Imm = 5
		}
	}
	if withImm.Fingerprint() == base {
		t.Fatal("immediate change did not change the fingerprint")
	}
}
