package dag

import "ursa/internal/ir"

// BuildScheduling constructs a dependence DAG for a block that may reuse
// registers (post-register-allocation code). In addition to true (RAW) data
// dependences and memory ordering, it adds the anti (WAR) and output (WAW)
// dependences that register reuse forces — precisely the §1 effect of
// running register allocation before scheduling: the extra edges remove
// parallelism the SSA dependence DAG would have exposed.
//
// LiveOut is taken as every register whose last write is not followed by a
// later write (conservative: final values remain observable).
func BuildScheduling(b *ir.Block) (*Graph, error) {
	f := b.Func
	g := New(f)

	lastDef := make(map[ir.VReg]int)    // register -> most recent writer node
	lastUses := make(map[ir.VReg][]int) // register -> readers since last write
	var memNodes []int
	var branch int = -1

	for _, in := range b.Instrs {
		id := g.AddInstr(in.Clone())

		// RAW.
		for _, u := range in.Uses() {
			if dn, ok := lastDef[u]; ok {
				g.AddEdge(dn, id, EdgeData)
			}
			lastUses[u] = append(lastUses[u], id)
		}
		if in.Dst != ir.NoReg {
			// WAR: write after all reads of the previous value.
			for _, r := range lastUses[in.Dst] {
				if r != id {
					g.AddEdge(r, id, EdgeSeq)
				}
			}
			// WAW: write after the previous write.
			if dn, ok := lastDef[in.Dst]; ok && dn != id {
				g.AddEdge(dn, id, EdgeSeq)
			}
			lastDef[in.Dst] = id
			lastUses[in.Dst] = nil
		}

		if in.IsMem() {
			for _, prev := range memNodes {
				pin := g.Nodes[prev].Instr
				if (pin.IsStore() || in.IsStore()) && MayAlias(pin, in) {
					g.AddEdge(prev, id, EdgeMem)
				}
			}
			memNodes = append(memNodes, id)
		}
		if in.IsBranch() {
			branch = id
		}
	}

	if branch >= 0 {
		for _, n := range g.InstrNodes() {
			if n != branch && !g.HasPath(n, branch) {
				g.AddEdge(n, branch, EdgeSeq)
			}
		}
	}

	for _, n := range g.InstrNodes() {
		hasInstrPred, hasInstrSucc := false, false
		for _, p := range g.Preds(n) {
			if p != g.Root {
				hasInstrPred = true
			}
		}
		for _, s := range g.Succs(n) {
			if s != g.Leaf {
				hasInstrSucc = true
			}
		}
		if !hasInstrPred {
			g.AddEdge(g.Root, n, EdgeSeq)
		}
		if !hasInstrSucc {
			g.AddEdge(n, g.Leaf, EdgeSeq)
		}
	}
	if len(g.InstrNodes()) == 0 {
		g.AddEdge(g.Root, g.Leaf, EdgeSeq)
	}

	// Registers holding a final value are live-out.
	for v := range lastDef {
		g.LiveOut[v] = true
	}

	if err := g.Check(); err != nil {
		return nil, err
	}
	return g, nil
}
