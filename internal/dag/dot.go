package dag

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz DOT format. Data edges are solid,
// memory edges dashed, sequence edges dotted.
func (g *Graph) Dot(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		label := n.Name
		if n.Instr != nil {
			label = fmt.Sprintf("%s\\n%s", n.Name, g.Func.InstrString(n.Instr))
		}
		shape := ""
		if n.IsPseudo() {
			shape = ", shape=ellipse"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"%s];\n", n.ID, label, shape)
	}
	for e, kind := range g.kinds {
		style := ""
		switch kind {
		case EdgeMem:
			style = " [style=dashed]"
		case EdgeSeq:
			style = " [style=dotted]"
		}
		fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", e[0], e[1], style)
	}
	sb.WriteString("}\n")
	return sb.String()
}
