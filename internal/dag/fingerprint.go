package dag

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"ursa/internal/ir"
)

// Fingerprint returns a canonical content hash of the graph: its nodes
// (instruction opcode, operands with their register classes, immediates,
// memory symbol/offset), its edge set, and its live-out registers. Two
// graphs with equal fingerprints have identical dependence structure and
// identical resource semantics, so every measurement over them — reuse
// relations, chain decompositions, widths — is identical too. Edge kinds
// are deliberately excluded: data, memory and sequencing edges constrain
// scheduling the same way, so they do not affect measurement.
//
// The hash is the incremental measurement cache's key (see
// internal/measure.Cache). It is recomputed on every call — the graph is
// mutable and memoizing would need invalidation hooks in every transform.
func (g *Graph) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wStr := func(s string) {
		wInt(int64(len(s)))
		h.Write([]byte(s))
	}
	wReg := func(v ir.VReg) {
		wInt(int64(v))
		wInt(int64(g.Func.ClassOf(v)))
	}

	wInt(int64(len(g.Nodes)))
	wInt(int64(g.Root))
	wInt(int64(g.Leaf))
	for _, n := range g.Nodes {
		if n.Instr == nil {
			wInt(-1)
			continue
		}
		in := n.Instr
		wInt(int64(in.Op))
		wReg(in.Dst)
		wInt(int64(len(in.Args)))
		for _, a := range in.Args {
			wReg(a)
		}
		wInt(in.Imm)
		wInt(int64(math.Float64bits(in.FImm)))
		wStr(in.Sym)
		wInt(in.Off)
		wReg(in.Index)
		wInt(int64(in.Cluster))
	}

	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	wInt(int64(len(edges)))
	for _, e := range edges {
		wInt(int64(e[0]))
		wInt(int64(e[1]))
	}

	live := make([]ir.VReg, 0, len(g.LiveOut))
	for v, ok := range g.LiveOut {
		if ok {
			live = append(live, v)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	wInt(int64(len(live)))
	for _, v := range live {
		wReg(v)
	}

	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
