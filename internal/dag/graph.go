// Package dag implements the dependence DAG that URSA uses to represent a
// region of straight-line code (a basic block or trace) while measuring and
// transforming its resource requirements (paper §2).
//
// The graph has a single pseudo root and a single pseudo leaf representing
// entry to and exit from the region, so the whole graph is a hammock. Edges
// are data dependences, memory-ordering dependences, or sequentialization
// edges (added by the trace scheduler or by URSA's transformations). All
// three edge kinds constrain scheduling identically; the distinction is kept
// for reporting and for DOT output.
package dag

import (
	"fmt"

	"ursa/internal/ir"
	"ursa/internal/order"
)

// EdgeKind distinguishes why an edge exists.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeData EdgeKind = iota // true data dependence (def -> use)
	EdgeMem                  // memory ordering (store/load conflicts)
	EdgeSeq                  // sequentialization added by trace layout or URSA
)

// String returns the kind's name.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeMem:
		return "mem"
	case EdgeSeq:
		return "seq"
	}
	return fmt.Sprintf("edgekind(%d)", uint8(k))
}

// Node is a DAG node: one instruction, or the pseudo root/leaf.
type Node struct {
	ID    int
	Instr *ir.Instr // nil for pseudo nodes
	// Name is a display label; for pseudo nodes "root"/"leaf", otherwise
	// derived from the instruction.
	Name string
}

// IsPseudo reports whether the node is the root or leaf marker.
func (n *Node) IsPseudo() bool { return n.Instr == nil }

// Graph is the dependence DAG.
type Graph struct {
	Func  *ir.Func
	Nodes []*Node
	Root  int // pseudo entry node id
	Leaf  int // pseudo exit node id

	succ  [][]int
	pred  [][]int
	kinds map[[2]int]EdgeKind

	// LiveOut lists the registers whose values must survive the region:
	// their lifetimes extend to the leaf. Defaults to every register defined
	// but never used inside the region; Build callers may extend it.
	LiveOut map[ir.VReg]bool
}

// New returns a graph containing only the pseudo root and leaf, with no edge
// between them.
func New(f *ir.Func) *Graph {
	g := &Graph{
		Func:    f,
		kinds:   make(map[[2]int]EdgeKind),
		LiveOut: make(map[ir.VReg]bool),
	}
	g.Root = g.addNode(nil, "root")
	g.Leaf = g.addNode(nil, "leaf")
	return g
}

func (g *Graph) addNode(in *ir.Instr, name string) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, &Node{ID: id, Instr: in, Name: name})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddInstr appends a new node for the instruction and returns its id. The
// caller is responsible for wiring edges.
func (g *Graph) AddInstr(in *ir.Instr) int {
	name := fmt.Sprintf("n%d", len(g.Nodes))
	if in != nil {
		if in.Dst != ir.NoReg {
			name = g.Func.NameOf(in.Dst)
		} else {
			name = fmt.Sprintf("%s%d", in.Op, len(g.Nodes))
		}
	}
	return g.addNode(in, name)
}

// NumNodes returns the node count, including the two pseudo nodes.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Succs returns the successor ids of n. Callers must not mutate the result.
func (g *Graph) Succs(n int) []int { return g.succ[n] }

// Preds returns the predecessor ids of n. Callers must not mutate the result.
func (g *Graph) Preds(n int) []int { return g.pred[n] }

// HasEdge reports whether the edge (a, b) exists.
func (g *Graph) HasEdge(a, b int) bool {
	_, ok := g.kinds[[2]int{a, b}]
	return ok
}

// EdgeKindOf returns the kind of edge (a, b); ok is false if absent.
func (g *Graph) EdgeKindOf(a, b int) (EdgeKind, bool) {
	k, ok := g.kinds[[2]int{a, b}]
	return k, ok
}

// AddEdge inserts the edge (a, b) of the given kind. Duplicate insertions
// keep the first kind. Adding an edge that would create a cycle is the
// caller's responsibility to avoid (see Reaches).
func (g *Graph) AddEdge(a, b int, kind EdgeKind) {
	key := [2]int{a, b}
	if _, dup := g.kinds[key]; dup {
		return
	}
	g.kinds[key] = kind
	g.succ[a] = append(g.succ[a], b)
	g.pred[b] = append(g.pred[b], a)
}

// RemoveEdge deletes the edge (a, b) if present.
func (g *Graph) RemoveEdge(a, b int) {
	key := [2]int{a, b}
	if _, ok := g.kinds[key]; !ok {
		return
	}
	delete(g.kinds, key)
	g.succ[a] = removeFrom(g.succ[a], b)
	g.pred[b] = removeFrom(g.pred[b], a)
}

func removeFrom(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Edges returns all edges. The order is unspecified.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.kinds))
	for e := range g.kinds {
		out = append(out, e)
	}
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.kinds) }

// InstrNodes returns the ids of all non-pseudo nodes in id order.
func (g *Graph) InstrNodes() []int {
	out := make([]int, 0, len(g.Nodes)-2)
	for _, n := range g.Nodes {
		if !n.IsPseudo() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Clone deep-copies the graph structure. Instructions are cloned too, so
// transformations on the copy cannot disturb the original.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Func:    g.Func,
		Root:    g.Root,
		Leaf:    g.Leaf,
		kinds:   make(map[[2]int]EdgeKind, len(g.kinds)),
		LiveOut: make(map[ir.VReg]bool, len(g.LiveOut)),
	}
	c.Nodes = make([]*Node, len(g.Nodes))
	c.succ = make([][]int, len(g.succ))
	c.pred = make([][]int, len(g.pred))
	for i, n := range g.Nodes {
		cn := &Node{ID: n.ID, Name: n.Name}
		if n.Instr != nil {
			cn.Instr = n.Instr.Clone()
		}
		c.Nodes[i] = cn
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	for k, v := range g.kinds {
		c.kinds[k] = v
	}
	for k, v := range g.LiveOut {
		c.LiveOut[k] = v
	}
	return c
}

// TruncateNodes discards every node with id >= n, rewinding the graph to an
// earlier NumNodes snapshot. The caller must already have removed every
// edge touching a discarded node (RemoveEdge); the method panics if one
// survives. The candidate evaluator uses this to undo the store/load nodes
// a tentative spill added to its scratch graph.
func (g *Graph) TruncateNodes(n int) {
	if n < 2 || n >= len(g.Nodes) {
		return
	}
	for i := n; i < len(g.Nodes); i++ {
		if len(g.succ[i]) > 0 || len(g.pred[i]) > 0 {
			panic(fmt.Sprintf("dag: TruncateNodes(%d): node %d still has edges", n, i))
		}
	}
	g.Nodes = g.Nodes[:n]
	g.succ = g.succ[:n]
	g.pred = g.pred[:n]
}

// DefNode returns the id of the node defining register v, or -1.
func (g *Graph) DefNode(v ir.VReg) int {
	for _, n := range g.Nodes {
		if n.Instr != nil && n.Instr.Dst == v {
			return n.ID
		}
	}
	return -1
}

// UseNodes returns the ids of nodes that read register v, in id order.
func (g *Graph) UseNodes(v ir.VReg) []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		for _, u := range n.Instr.Uses() {
			if u == v {
				out = append(out, n.ID)
				break
			}
		}
	}
	return out
}

// Check validates structural invariants: acyclicity, single root/leaf
// connectivity (every node reachable from root and reaching leaf), and
// adjacency/kind consistency.
func (g *Graph) Check() error {
	for key := range g.kinds {
		if key[0] < 0 || key[0] >= len(g.Nodes) || key[1] < 0 || key[1] >= len(g.Nodes) {
			return fmt.Errorf("dag: edge %v out of range", key)
		}
	}
	rel := g.Relation()
	if !rel.IsAcyclic() {
		return fmt.Errorf("dag: graph has a cycle")
	}
	reach := rel.TransitiveClosure()
	for _, n := range g.Nodes {
		if n.ID == g.Root || n.ID == g.Leaf {
			continue
		}
		if !reach.Has(g.Root, n.ID) {
			return fmt.Errorf("dag: node %d (%s) unreachable from root", n.ID, n.Name)
		}
		if !reach.Has(n.ID, g.Leaf) {
			return fmt.Errorf("dag: node %d (%s) does not reach leaf", n.ID, n.Name)
		}
	}
	for a, ss := range g.succ {
		for _, b := range ss {
			if _, ok := g.kinds[[2]int{a, b}]; !ok {
				return fmt.Errorf("dag: adjacency edge (%d,%d) missing kind", a, b)
			}
		}
	}
	return nil
}

// Relation returns the edge set as an order.Relation over node ids.
func (g *Graph) Relation() *order.Relation {
	r := order.NewRelation(len(g.Nodes))
	for e := range g.kinds {
		r.Add(e[0], e[1])
	}
	return r
}

// ReplaceWith overwrites this graph's contents with another's (a shallow
// structural replacement; the other graph must not be used afterwards).
// The URSA driver uses this to commit the best of several transformation
// attempts back into the caller's graph.
func (g *Graph) ReplaceWith(o *Graph) {
	*g = *o
}
