package dag

import (
	"sort"

	"ursa/internal/order"
)

// TopoOrder returns the node ids in a deterministic topological order
// (ties broken by node id).
func (g *Graph) TopoOrder() []int {
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, ss := range g.succ {
		for _, b := range ss {
			indeg[b]++
		}
	}
	// Min-heap behaviour via sorted frontier keeps the order deterministic.
	frontier := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			frontier = append(frontier, i)
		}
	}
	sort.Ints(frontier)
	out := make([]int, 0, n)
	for len(frontier) > 0 {
		a := frontier[0]
		frontier = frontier[1:]
		out = append(out, a)
		added := false
		for _, b := range g.succ[a] {
			indeg[b]--
			if indeg[b] == 0 {
				frontier = append(frontier, b)
				added = true
			}
		}
		if added {
			sort.Ints(frontier)
		}
	}
	return out
}

// Reach returns the transitive closure of the graph's edges: Reach.Has(a,b)
// iff b is a proper descendant of a (or a==b is excluded; the relation is
// strict).
func (g *Graph) Reach() *order.Relation {
	return g.Relation().TransitiveClosure()
}

// CriticalPath returns the length of the longest root-to-leaf path where
// each node contributes latency(node) cycles (pseudo nodes contribute 0
// regardless), along with the path itself.
func (g *Graph) CriticalPath(latency func(*Node) int) (int, []int) {
	topo := g.TopoOrder()
	dist := make([]int, len(g.Nodes))
	prev := make([]int, len(g.Nodes))
	for i := range prev {
		prev[i] = -1
		dist[i] = -1 << 30
	}
	dist[g.Root] = 0
	for _, a := range topo {
		if dist[a] == -1<<30 {
			continue
		}
		la := 0
		if !g.Nodes[a].IsPseudo() && latency != nil {
			la = latency(g.Nodes[a])
		}
		for _, b := range g.succ[a] {
			if dist[a]+la > dist[b] {
				dist[b] = dist[a] + la
				prev[b] = a
			}
		}
	}
	var path []int
	for x := g.Leaf; x != -1; x = prev[x] {
		path = append([]int{x}, path...)
	}
	if dist[g.Leaf] < 0 {
		return 0, nil
	}
	return dist[g.Leaf], path
}

// UnitLatency assigns every instruction one cycle; the default critical-path
// metric used by transformation scoring when no machine is given.
func UnitLatency(*Node) int { return 1 }

// Depths returns, for each node, its distance from the root in edges
// (longest path, unit weights). Used by the "closest to hammock entry"
// heuristics of §4.
func (g *Graph) Depths() []int {
	topo := g.TopoOrder()
	depth := make([]int, len(g.Nodes))
	for i := range depth {
		depth[i] = -1 << 30
	}
	depth[g.Root] = 0
	for _, a := range topo {
		if depth[a] == -1<<30 {
			continue
		}
		for _, b := range g.succ[a] {
			if depth[a]+1 > depth[b] {
				depth[b] = depth[a] + 1
			}
		}
	}
	return depth
}

// Heights returns, for each node, its longest distance to the leaf in edges.
func (g *Graph) Heights() []int {
	topo := g.TopoOrder()
	height := make([]int, len(g.Nodes))
	for i := range height {
		height[i] = -1 << 30
	}
	height[g.Leaf] = 0
	for i := len(topo) - 1; i >= 0; i-- {
		a := topo[i]
		for _, b := range g.succ[a] {
			if height[b]+1 > height[a] {
				height[a] = height[b] + 1
			}
		}
	}
	return height
}

// Descendants returns the strict descendant set of n (excluding n).
func (g *Graph) Descendants(n int) *order.BitSet {
	s := order.NewBitSet(len(g.Nodes))
	stack := append([]int(nil), g.succ[n]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.Has(x) {
			continue
		}
		s.Set(x)
		stack = append(stack, g.succ[x]...)
	}
	return s
}

// Ancestors returns the strict ancestor set of n (excluding n).
func (g *Graph) Ancestors(n int) *order.BitSet {
	s := order.NewBitSet(len(g.Nodes))
	stack := append([]int(nil), g.pred[n]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.Has(x) {
			continue
		}
		s.Set(x)
		stack = append(stack, g.pred[x]...)
	}
	return s
}
