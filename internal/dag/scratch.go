package dag

import "sort"

// Scratch holds reusable buffers for the graph analyses the candidate
// evaluator runs once per tentative transformation: topological orders,
// critical-path lengths, and depths. One Scratch belongs to one worker;
// results computed through it are bit-identical to the allocating
// TopoOrder/CriticalPath/Depths equivalents, only the storage is reused.
// The zero value is ready to use.
type Scratch struct {
	indeg    []int
	frontier []int
	topo     []int
	dist     []int
	depth    []int
}

// grow resizes every buffer to hold n nodes.
func (s *Scratch) grow(n int) {
	if cap(s.indeg) < n {
		s.indeg = make([]int, n)
		s.frontier = make([]int, 0, n)
		s.topo = make([]int, 0, n)
		s.dist = make([]int, n)
		s.depth = make([]int, n)
	}
	s.indeg = s.indeg[:n]
	s.dist = s.dist[:n]
	s.depth = s.depth[:n]
}

// TopoInto computes the graph's deterministic topological order (the same
// order TopoOrder returns: ties broken by node id) into the scratch's
// buffer. The result is valid until the next call with the same scratch.
func (g *Graph) TopoInto(s *Scratch) []int {
	n := len(g.Nodes)
	s.grow(n)
	indeg := s.indeg
	clear(indeg)
	for _, ss := range g.succ {
		for _, b := range ss {
			indeg[b]++
		}
	}
	frontier := s.frontier[:0]
	for i, d := range indeg {
		if d == 0 {
			frontier = append(frontier, i)
		}
	}
	sort.Ints(frontier)
	out := s.topo[:0]
	for len(frontier) > 0 {
		a := frontier[0]
		frontier = frontier[1:]
		out = append(out, a)
		added := false
		for _, b := range g.succ[a] {
			indeg[b]--
			if indeg[b] == 0 {
				frontier = append(frontier, b)
				added = true
			}
		}
		if added {
			sort.Ints(frontier)
		}
	}
	s.topo = out
	return out
}

// CriticalPathLen returns the same length CriticalPath computes, without
// reconstructing the path and without allocating.
func (g *Graph) CriticalPathLen(latency func(*Node) int, s *Scratch) int {
	topo := g.TopoInto(s)
	dist := s.dist
	for i := range dist {
		dist[i] = -1 << 30
	}
	dist[g.Root] = 0
	for _, a := range topo {
		if dist[a] == -1<<30 {
			continue
		}
		la := 0
		if !g.Nodes[a].IsPseudo() && latency != nil {
			la = latency(g.Nodes[a])
		}
		for _, b := range g.succ[a] {
			if dist[a]+la > dist[b] {
				dist[b] = dist[a] + la
			}
		}
	}
	if dist[g.Leaf] < 0 {
		return 0
	}
	return dist[g.Leaf]
}

// DepthsInto computes the same longest-path-from-root depths Depths
// returns, into the scratch's buffer. The result is valid until the next
// call with the same scratch.
func (g *Graph) DepthsInto(s *Scratch) []int {
	topo := g.TopoInto(s)
	depth := s.depth
	for i := range depth {
		depth[i] = -1 << 30
	}
	depth[g.Root] = 0
	for _, a := range topo {
		if depth[a] == -1<<30 {
			continue
		}
		for _, b := range g.succ[a] {
			if depth[a]+1 > depth[b] {
				depth[b] = depth[a] + 1
			}
		}
	}
	return depth
}
