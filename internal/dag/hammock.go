package dag

import (
	"sort"

	"ursa/internal/order"
)

// A Hammock is a single-entry single-exit region of the DAG (paper §3.1):
// every path from outside the region enters through Entry and leaves through
// Exit. The modified DAG as a whole (root..leaf) is always a hammock.
// Interior holds the region's nodes including Entry and Exit.
type Hammock struct {
	Entry, Exit int
	Interior    *order.BitSet
	Level       int // nesting depth; 0 for the whole-graph hammock
}

// Size returns the number of nodes in the hammock including its endpoints.
func (h *Hammock) Size() int { return h.Interior.Count() }

// Contains reports whether node n lies in the hammock.
func (h *Hammock) Contains(n int) bool { return h.Interior.Has(n) }

// Dominators returns the immediate-dominator array of the DAG rooted at
// Root (idom[Root] == Root), computed by the Cooper–Harvey–Kennedy
// iterative algorithm specialized to acyclic graphs (one pass over a
// topological order suffices).
func (g *Graph) Dominators() []int {
	topo := g.TopoOrder()
	return idoms(len(g.Nodes), g.Root, topo, g.pred)
}

// PostDominators returns the immediate-postdominator array with respect to
// Leaf (ipdom[Leaf] == Leaf).
func (g *Graph) PostDominators() []int {
	topo := g.TopoOrder()
	rev := make([]int, len(topo))
	for i, n := range topo {
		rev[len(topo)-1-i] = n
	}
	return idoms(len(g.Nodes), g.Leaf, rev, g.succ)
}

func idoms(n, root int, topo []int, preds [][]int) []int {
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	pos := make([]int, n) // topological position, for intersect
	for i, v := range topo {
		pos[v] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	for _, v := range topo {
		if v == root {
			continue
		}
		newIdom := -1
		for _, p := range preds[v] {
			if idom[p] == -1 {
				continue
			}
			if newIdom == -1 {
				newIdom = p
			} else {
				newIdom = intersect(newIdom, p)
			}
		}
		idom[v] = newIdom
	}
	return idom
}

// Hammocks enumerates the graph's single-entry single-exit regions:
// candidate pairs (e, x) where x is on e's postdominator chain and e is on
// x's dominator chain, verified for closure (no edge crosses the region
// boundary except through e and x). The whole-graph hammock is always
// present. Results are sorted by increasing size, then entry id, and
// levels are assigned by containment (whole graph = level 0).
func (g *Graph) Hammocks() []*Hammock {
	n := len(g.Nodes)
	dom := g.Dominators()
	pdom := g.PostDominators()

	domBy := func(v, d int) bool { // d dominates v
		for {
			if v == d {
				return true
			}
			if v == dom[v] || dom[v] == -1 {
				return false
			}
			v = dom[v]
		}
	}
	pdomBy := func(v, p int) bool {
		for {
			if v == p {
				return true
			}
			if v == pdom[v] || pdom[v] == -1 {
				return false
			}
			v = pdom[v]
		}
	}

	var hs []*Hammock
	seen := make(map[[2]int]bool)
	tryRegion := func(e, x int) {
		if e == x || seen[[2]int{e, x}] {
			return
		}
		seen[[2]int{e, x}] = true
		if !domBy(x, e) || !pdomBy(e, x) {
			return
		}
		region := order.NewBitSet(n)
		for v := 0; v < n; v++ {
			if domBy(v, e) && pdomBy(v, x) {
				region.Set(v)
			}
		}
		if region.Count() < 3 && !(e == g.Root && x == g.Leaf) {
			return // trivial region: just the pair
		}
		// Closure check: edges may enter only at e and leave only at x.
		for edge := range g.kinds {
			u, v := edge[0], edge[1]
			if region.Has(v) && v != e && !region.Has(u) {
				return
			}
			if region.Has(u) && u != x && !region.Has(v) {
				return
			}
		}
		hs = append(hs, &Hammock{Entry: e, Exit: x, Interior: region})
	}

	// Whole graph first, then each node paired with its postdominator chain.
	tryRegion(g.Root, g.Leaf)
	for e := 0; e < n; e++ {
		for x := pdom[e]; x != -1 && x != pdom[x]; x = pdom[x] {
			tryRegion(e, x)
		}
		if pdom[e] != -1 {
			tryRegion(e, g.Leaf)
		}
	}

	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Size() != hs[j].Size() {
			return hs[i].Size() < hs[j].Size()
		}
		if hs[i].Entry != hs[j].Entry {
			return hs[i].Entry < hs[j].Entry
		}
		return hs[i].Exit < hs[j].Exit
	})

	// Nesting level = number of strictly larger hammocks containing this
	// one; the whole-graph hammock is contained by nothing, so it gets 0.
	for i, h := range hs {
		level := 0
		for j := i + 1; j < len(hs); j++ {
			o := hs[j]
			if o.Size() > h.Size() && containsAll(o.Interior, h.Interior) {
				level++
			}
		}
		h.Level = level
	}
	return hs
}

func containsAll(outer, inner *order.BitSet) bool {
	return inner.SubsetOf(outer)
}

// NestLevels returns, for every node, the nesting level of the smallest
// hammock containing it. Used to prioritize matching edges (§3.1): edges
// whose endpoints share a level are preferred over level-crossing edges.
func (g *Graph) NestLevels(hs []*Hammock) []int {
	levels := make([]int, len(g.Nodes))
	assigned := make([]bool, len(g.Nodes))
	// hs is sorted by increasing size, so the first hammock containing a
	// node is its smallest.
	for _, h := range hs {
		h.Interior.ForEach(func(i int) {
			if !assigned[i] {
				assigned[i] = true
				levels[i] = h.Level
			}
		})
	}
	return levels
}
