package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ursad_shed_total", "requests shed")
	g := r.Gauge("ursad_queue_depth", "waiting requests")
	c.Inc()
	c.Add(2)
	g.Set(5)
	g.Dec()

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP ursad_queue_depth waiting requests",
		"# TYPE ursad_queue_depth gauge",
		"ursad_queue_depth 4",
		"# TYPE ursad_shed_total counter",
		"ursad_shed_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: queue_depth before shed_total.
	if strings.Index(out, "ursad_queue_depth") > strings.Index(out, "ursad_shed_total") {
		t.Errorf("exposition not sorted by name:\n%s", out)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("compile_total", "compiles by method", "method")
	cv.With("ursa").Add(3)
	cv.With("prepass").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `compile_total{method="prepass"} 1`) ||
		!strings.Contains(out, `compile_total{method="ursa"} 3`) {
		t.Errorf("bad vec exposition:\n%s", out)
	}
	// Label values sorted.
	if strings.Index(out, `"prepass"`) > strings.Index(out, `"ursa"`) {
		t.Errorf("vec labels not sorted:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
		"lat_sum 56.05",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestFuncMetric(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.Func("cache_hits_total", "cache hits", "counter", func() float64 { return v })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "cache_hits_total 7") {
		t.Errorf("func metric missing:\n%s", sb.String())
	}
	v = 9
	sb.Reset()
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "cache_hits_total 9") {
		t.Errorf("func metric not re-evaluated at scrape:\n%s", sb.String())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("handler body:\n%s", rec.Body.String())
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "")
}

// TestConcurrentMutation exercises the lock-free paths under the race
// detector: concurrent Observe/Inc/Add against concurrent scrapes.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	cv := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 100)
				cv.With([]string{"a", "b"}[w%2]).Inc()
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("backend_healthy", "shard liveness", "backend")
	gv.With("http://b:1").Set(1)
	gv.With("http://a:1").Set(0)
	gv.With("http://b:1").Set(0) // same label returns the same gauge
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE backend_healthy gauge",
		`backend_healthy{backend="http://a:1"} 0`,
		`backend_healthy{backend="http://b:1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gauge vec missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, `"http://a:1"`) > strings.Index(out, `"http://b:1"`) {
		t.Errorf("gauge vec labels not sorted:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("backend_seconds", "per-shard latency", "backend", []float64{1, 10})
	hv.With("a").Observe(0.5)
	hv.With("a").Observe(5)
	hv.With("b").Observe(50)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE backend_seconds histogram",
		`backend_seconds_bucket{backend="a",le="1"} 1`,
		`backend_seconds_bucket{backend="a",le="10"} 2`,
		`backend_seconds_bucket{backend="a",le="+Inf"} 2`,
		`backend_seconds_bucket{backend="b",le="+Inf"} 1`,
		`backend_seconds_sum{backend="a"} 5.5`,
		`backend_seconds_count{backend="a"} 2`,
		`backend_seconds_count{backend="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram vec missing %q:\n%s", want, out)
		}
	}
}
